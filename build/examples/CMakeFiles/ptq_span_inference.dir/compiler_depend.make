# Empty compiler generated dependencies file for ptq_span_inference.
# This may be replaced when dependencies are built.
