file(REMOVE_RECURSE
  "CMakeFiles/ptq_span_inference.dir/ptq_span_inference.cpp.o"
  "CMakeFiles/ptq_span_inference.dir/ptq_span_inference.cpp.o.d"
  "ptq_span_inference"
  "ptq_span_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptq_span_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
