file(REMOVE_RECURSE
  "CMakeFiles/approx_softmax_playground.dir/approx_softmax_playground.cpp.o"
  "CMakeFiles/approx_softmax_playground.dir/approx_softmax_playground.cpp.o.d"
  "approx_softmax_playground"
  "approx_softmax_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_softmax_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
