# Empty dependencies file for approx_softmax_playground.
# This may be replaced when dependencies are built.
