# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lora_finetune_8bit.
