file(REMOVE_RECURSE
  "CMakeFiles/lora_finetune_8bit.dir/lora_finetune_8bit.cpp.o"
  "CMakeFiles/lora_finetune_8bit.dir/lora_finetune_8bit.cpp.o.d"
  "lora_finetune_8bit"
  "lora_finetune_8bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lora_finetune_8bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
