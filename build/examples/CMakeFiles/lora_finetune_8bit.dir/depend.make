# Empty dependencies file for lora_finetune_8bit.
# This may be replaced when dependencies are built.
