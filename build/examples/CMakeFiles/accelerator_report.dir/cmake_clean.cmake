file(REMOVE_RECURSE
  "CMakeFiles/accelerator_report.dir/accelerator_report.cpp.o"
  "CMakeFiles/accelerator_report.dir/accelerator_report.cpp.o.d"
  "accelerator_report"
  "accelerator_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
