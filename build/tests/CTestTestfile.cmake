# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/posit_test[1]_include.cmake")
include("/root/repo/build/tests/minifloat_test[1]_include.cmake")
include("/root/repo/build/tests/quantizer_test[1]_include.cmake")
include("/root/repo/build/tests/posit_ops_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/quant_config_test[1]_include.cmake")
include("/root/repo/build/tests/grad_check_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/loss_test[1]_include.cmake")
include("/root/repo/build/tests/decimal_accuracy_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/posit_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
