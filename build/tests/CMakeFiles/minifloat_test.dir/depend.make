# Empty dependencies file for minifloat_test.
# This may be replaced when dependencies are built.
