file(REMOVE_RECURSE
  "CMakeFiles/minifloat_test.dir/numerics/minifloat_test.cc.o"
  "CMakeFiles/minifloat_test.dir/numerics/minifloat_test.cc.o.d"
  "minifloat_test"
  "minifloat_test.pdb"
  "minifloat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifloat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
