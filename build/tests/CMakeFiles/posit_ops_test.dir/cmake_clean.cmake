file(REMOVE_RECURSE
  "CMakeFiles/posit_ops_test.dir/numerics/posit_ops_test.cc.o"
  "CMakeFiles/posit_ops_test.dir/numerics/posit_ops_test.cc.o.d"
  "posit_ops_test"
  "posit_ops_test.pdb"
  "posit_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posit_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
