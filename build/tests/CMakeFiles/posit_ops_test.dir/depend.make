# Empty dependencies file for posit_ops_test.
# This may be replaced when dependencies are built.
