# Empty compiler generated dependencies file for posit_property_test.
# This may be replaced when dependencies are built.
