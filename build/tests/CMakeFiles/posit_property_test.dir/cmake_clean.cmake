file(REMOVE_RECURSE
  "CMakeFiles/posit_property_test.dir/numerics/posit_property_test.cc.o"
  "CMakeFiles/posit_property_test.dir/numerics/posit_property_test.cc.o.d"
  "posit_property_test"
  "posit_property_test.pdb"
  "posit_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posit_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
