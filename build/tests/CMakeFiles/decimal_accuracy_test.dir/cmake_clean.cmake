file(REMOVE_RECURSE
  "CMakeFiles/decimal_accuracy_test.dir/numerics/decimal_accuracy_test.cc.o"
  "CMakeFiles/decimal_accuracy_test.dir/numerics/decimal_accuracy_test.cc.o.d"
  "decimal_accuracy_test"
  "decimal_accuracy_test.pdb"
  "decimal_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decimal_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
