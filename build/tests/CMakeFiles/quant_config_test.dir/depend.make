# Empty dependencies file for quant_config_test.
# This may be replaced when dependencies are built.
