file(REMOVE_RECURSE
  "CMakeFiles/quant_config_test.dir/quant/config_test.cc.o"
  "CMakeFiles/quant_config_test.dir/quant/config_test.cc.o.d"
  "quant_config_test"
  "quant_config_test.pdb"
  "quant_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quant_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
