file(REMOVE_RECURSE
  "CMakeFiles/qt8_data.dir/eval.cc.o"
  "CMakeFiles/qt8_data.dir/eval.cc.o.d"
  "CMakeFiles/qt8_data.dir/metrics.cc.o"
  "CMakeFiles/qt8_data.dir/metrics.cc.o.d"
  "CMakeFiles/qt8_data.dir/tasks.cc.o"
  "CMakeFiles/qt8_data.dir/tasks.cc.o.d"
  "libqt8_data.a"
  "libqt8_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
