# Empty compiler generated dependencies file for qt8_data.
# This may be replaced when dependencies are built.
