file(REMOVE_RECURSE
  "libqt8_data.a"
)
