file(REMOVE_RECURSE
  "CMakeFiles/qt8_quant.dir/config.cc.o"
  "CMakeFiles/qt8_quant.dir/config.cc.o.d"
  "libqt8_quant.a"
  "libqt8_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
