file(REMOVE_RECURSE
  "libqt8_quant.a"
)
