# Empty dependencies file for qt8_quant.
# This may be replaced when dependencies are built.
