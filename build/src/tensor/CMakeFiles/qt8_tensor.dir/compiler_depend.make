# Empty compiler generated dependencies file for qt8_tensor.
# This may be replaced when dependencies are built.
