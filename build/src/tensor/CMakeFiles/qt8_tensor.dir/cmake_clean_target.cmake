file(REMOVE_RECURSE
  "libqt8_tensor.a"
)
