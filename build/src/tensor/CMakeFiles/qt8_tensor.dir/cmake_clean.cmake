file(REMOVE_RECURSE
  "CMakeFiles/qt8_tensor.dir/ops.cc.o"
  "CMakeFiles/qt8_tensor.dir/ops.cc.o.d"
  "CMakeFiles/qt8_tensor.dir/random.cc.o"
  "CMakeFiles/qt8_tensor.dir/random.cc.o.d"
  "CMakeFiles/qt8_tensor.dir/tensor.cc.o"
  "CMakeFiles/qt8_tensor.dir/tensor.cc.o.d"
  "libqt8_tensor.a"
  "libqt8_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
