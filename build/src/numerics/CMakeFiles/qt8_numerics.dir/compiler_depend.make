# Empty compiler generated dependencies file for qt8_numerics.
# This may be replaced when dependencies are built.
