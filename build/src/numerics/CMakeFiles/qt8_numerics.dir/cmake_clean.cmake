file(REMOVE_RECURSE
  "CMakeFiles/qt8_numerics.dir/decimal_accuracy.cc.o"
  "CMakeFiles/qt8_numerics.dir/decimal_accuracy.cc.o.d"
  "CMakeFiles/qt8_numerics.dir/float_bits.cc.o"
  "CMakeFiles/qt8_numerics.dir/float_bits.cc.o.d"
  "CMakeFiles/qt8_numerics.dir/minifloat.cc.o"
  "CMakeFiles/qt8_numerics.dir/minifloat.cc.o.d"
  "CMakeFiles/qt8_numerics.dir/posit.cc.o"
  "CMakeFiles/qt8_numerics.dir/posit.cc.o.d"
  "CMakeFiles/qt8_numerics.dir/posit_ops.cc.o"
  "CMakeFiles/qt8_numerics.dir/posit_ops.cc.o.d"
  "CMakeFiles/qt8_numerics.dir/quantizer.cc.o"
  "CMakeFiles/qt8_numerics.dir/quantizer.cc.o.d"
  "libqt8_numerics.a"
  "libqt8_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
