
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/decimal_accuracy.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/decimal_accuracy.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/decimal_accuracy.cc.o.d"
  "/root/repo/src/numerics/float_bits.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/float_bits.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/float_bits.cc.o.d"
  "/root/repo/src/numerics/minifloat.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/minifloat.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/minifloat.cc.o.d"
  "/root/repo/src/numerics/posit.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/posit.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/posit.cc.o.d"
  "/root/repo/src/numerics/posit_ops.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/posit_ops.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/posit_ops.cc.o.d"
  "/root/repo/src/numerics/quantizer.cc" "src/numerics/CMakeFiles/qt8_numerics.dir/quantizer.cc.o" "gcc" "src/numerics/CMakeFiles/qt8_numerics.dir/quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
