file(REMOVE_RECURSE
  "libqt8_numerics.a"
)
