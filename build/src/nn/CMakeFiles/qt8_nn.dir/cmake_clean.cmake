file(REMOVE_RECURSE
  "CMakeFiles/qt8_nn.dir/attention.cc.o"
  "CMakeFiles/qt8_nn.dir/attention.cc.o.d"
  "CMakeFiles/qt8_nn.dir/block.cc.o"
  "CMakeFiles/qt8_nn.dir/block.cc.o.d"
  "CMakeFiles/qt8_nn.dir/checkpoint.cc.o"
  "CMakeFiles/qt8_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/qt8_nn.dir/embedding.cc.o"
  "CMakeFiles/qt8_nn.dir/embedding.cc.o.d"
  "CMakeFiles/qt8_nn.dir/layer_norm.cc.o"
  "CMakeFiles/qt8_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/qt8_nn.dir/linear.cc.o"
  "CMakeFiles/qt8_nn.dir/linear.cc.o.d"
  "CMakeFiles/qt8_nn.dir/loss.cc.o"
  "CMakeFiles/qt8_nn.dir/loss.cc.o.d"
  "CMakeFiles/qt8_nn.dir/model.cc.o"
  "CMakeFiles/qt8_nn.dir/model.cc.o.d"
  "CMakeFiles/qt8_nn.dir/optim.cc.o"
  "CMakeFiles/qt8_nn.dir/optim.cc.o.d"
  "libqt8_nn.a"
  "libqt8_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
