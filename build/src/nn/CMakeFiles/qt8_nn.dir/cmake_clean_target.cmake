file(REMOVE_RECURSE
  "libqt8_nn.a"
)
