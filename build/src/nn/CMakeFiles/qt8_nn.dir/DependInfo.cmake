
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/qt8_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/block.cc" "src/nn/CMakeFiles/qt8_nn.dir/block.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/block.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/qt8_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/qt8_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/qt8_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/qt8_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/qt8_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/qt8_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/qt8_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/qt8_nn.dir/optim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/qt8_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qt8_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/qt8_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
