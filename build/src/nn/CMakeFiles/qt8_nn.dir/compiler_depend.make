# Empty compiler generated dependencies file for qt8_nn.
# This may be replaced when dependencies are built.
