
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cc" "src/hw/CMakeFiles/qt8_hw.dir/accelerator.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/accelerator.cc.o.d"
  "/root/repo/src/hw/arith.cc" "src/hw/CMakeFiles/qt8_hw.dir/arith.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/arith.cc.o.d"
  "/root/repo/src/hw/memory_model.cc" "src/hw/CMakeFiles/qt8_hw.dir/memory_model.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/memory_model.cc.o.d"
  "/root/repo/src/hw/rtl.cc" "src/hw/CMakeFiles/qt8_hw.dir/rtl.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/rtl.cc.o.d"
  "/root/repo/src/hw/sim.cc" "src/hw/CMakeFiles/qt8_hw.dir/sim.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/sim.cc.o.d"
  "/root/repo/src/hw/units.cc" "src/hw/CMakeFiles/qt8_hw.dir/units.cc.o" "gcc" "src/hw/CMakeFiles/qt8_hw.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/qt8_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
