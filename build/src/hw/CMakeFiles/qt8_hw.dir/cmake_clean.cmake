file(REMOVE_RECURSE
  "CMakeFiles/qt8_hw.dir/accelerator.cc.o"
  "CMakeFiles/qt8_hw.dir/accelerator.cc.o.d"
  "CMakeFiles/qt8_hw.dir/arith.cc.o"
  "CMakeFiles/qt8_hw.dir/arith.cc.o.d"
  "CMakeFiles/qt8_hw.dir/memory_model.cc.o"
  "CMakeFiles/qt8_hw.dir/memory_model.cc.o.d"
  "CMakeFiles/qt8_hw.dir/rtl.cc.o"
  "CMakeFiles/qt8_hw.dir/rtl.cc.o.d"
  "CMakeFiles/qt8_hw.dir/sim.cc.o"
  "CMakeFiles/qt8_hw.dir/sim.cc.o.d"
  "CMakeFiles/qt8_hw.dir/units.cc.o"
  "CMakeFiles/qt8_hw.dir/units.cc.o.d"
  "libqt8_hw.a"
  "libqt8_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
