file(REMOVE_RECURSE
  "libqt8_hw.a"
)
