# Empty compiler generated dependencies file for qt8_hw.
# This may be replaced when dependencies are built.
