file(REMOVE_RECURSE
  "CMakeFiles/run_quantized_training.dir/run_quantized_training.cc.o"
  "CMakeFiles/run_quantized_training.dir/run_quantized_training.cc.o.d"
  "run_quantized_training"
  "run_quantized_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_quantized_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
