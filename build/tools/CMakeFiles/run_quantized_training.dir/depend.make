# Empty dependencies file for run_quantized_training.
# This may be replaced when dependencies are built.
