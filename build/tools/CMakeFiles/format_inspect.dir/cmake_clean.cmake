file(REMOVE_RECURSE
  "CMakeFiles/format_inspect.dir/format_inspect.cc.o"
  "CMakeFiles/format_inspect.dir/format_inspect.cc.o.d"
  "format_inspect"
  "format_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
