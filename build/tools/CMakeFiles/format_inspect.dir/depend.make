# Empty dependencies file for format_inspect.
# This may be replaced when dependencies are built.
