# Empty dependencies file for bench_fig06_activation_distribution.
# This may be replaced when dependencies are built.
