file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_activation_distribution.dir/bench_fig06_activation_distribution.cc.o"
  "CMakeFiles/bench_fig06_activation_distribution.dir/bench_fig06_activation_distribution.cc.o.d"
  "bench_fig06_activation_distribution"
  "bench_fig06_activation_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_activation_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
