# Empty dependencies file for bench_table7_lora_finetune.
# This may be replaced when dependencies are built.
