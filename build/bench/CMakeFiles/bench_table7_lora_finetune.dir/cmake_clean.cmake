file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_lora_finetune.dir/bench_table7_lora_finetune.cc.o"
  "CMakeFiles/bench_table7_lora_finetune.dir/bench_table7_lora_finetune.cc.o.d"
  "bench_table7_lora_finetune"
  "bench_table7_lora_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_lora_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
