# Empty compiler generated dependencies file for bench_ext_energy_per_token.
# This may be replaced when dependencies are built.
