file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_energy_per_token.dir/bench_ext_energy_per_token.cc.o"
  "CMakeFiles/bench_ext_energy_per_token.dir/bench_ext_energy_per_token.cc.o.d"
  "bench_ext_energy_per_token"
  "bench_ext_energy_per_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_energy_per_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
