# Empty dependencies file for bench_fig13_accelerator_hw.
# This may be replaced when dependencies are built.
