file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_int8.dir/bench_baseline_int8.cc.o"
  "CMakeFiles/bench_baseline_int8.dir/bench_baseline_int8.cc.o.d"
  "bench_baseline_int8"
  "bench_baseline_int8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_int8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
