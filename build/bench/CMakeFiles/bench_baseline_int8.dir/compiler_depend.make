# Empty compiler generated dependencies file for bench_baseline_int8.
# This may be replaced when dependencies are built.
