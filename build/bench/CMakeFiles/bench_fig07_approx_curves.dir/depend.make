# Empty dependencies file for bench_fig07_approx_curves.
# This may be replaced when dependencies are built.
