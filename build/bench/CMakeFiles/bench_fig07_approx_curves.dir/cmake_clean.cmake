file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_approx_curves.dir/bench_fig07_approx_curves.cc.o"
  "CMakeFiles/bench_fig07_approx_curves.dir/bench_fig07_approx_curves.cc.o.d"
  "bench_fig07_approx_curves"
  "bench_fig07_approx_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_approx_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
