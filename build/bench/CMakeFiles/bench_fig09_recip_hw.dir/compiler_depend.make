# Empty compiler generated dependencies file for bench_fig09_recip_hw.
# This may be replaced when dependencies are built.
