# Empty dependencies file for bench_fig10_tensor_distributions.
# This may be replaced when dependencies are built.
