file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tensor_distributions.dir/bench_fig10_tensor_distributions.cc.o"
  "CMakeFiles/bench_fig10_tensor_distributions.dir/bench_fig10_tensor_distributions.cc.o.d"
  "bench_fig10_tensor_distributions"
  "bench_fig10_tensor_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tensor_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
