# Empty compiler generated dependencies file for bench_table8_vector_unit.
# This may be replaced when dependencies are built.
