file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_vector_unit.dir/bench_table8_vector_unit.cc.o"
  "CMakeFiles/bench_table8_vector_unit.dir/bench_table8_vector_unit.cc.o.d"
  "bench_table8_vector_unit"
  "bench_table8_vector_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_vector_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
