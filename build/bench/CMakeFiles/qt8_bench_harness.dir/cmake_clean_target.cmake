file(REMOVE_RECURSE
  "libqt8_bench_harness.a"
)
