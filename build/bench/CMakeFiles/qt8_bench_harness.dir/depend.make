# Empty dependencies file for qt8_bench_harness.
# This may be replaced when dependencies are built.
