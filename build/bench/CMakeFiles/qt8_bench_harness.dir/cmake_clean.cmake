file(REMOVE_RECURSE
  "CMakeFiles/qt8_bench_harness.dir/harness.cc.o"
  "CMakeFiles/qt8_bench_harness.dir/harness.cc.o.d"
  "libqt8_bench_harness.a"
  "libqt8_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt8_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
