# Empty dependencies file for bench_fig08_exp_hw.
# This may be replaced when dependencies are built.
