file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_exp_hw.dir/bench_fig08_exp_hw.cc.o"
  "CMakeFiles/bench_fig08_exp_hw.dir/bench_fig08_exp_hw.cc.o.d"
  "bench_fig08_exp_hw"
  "bench_fig08_exp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_exp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
