# Empty dependencies file for bench_table2_fusion_sweep.
# This may be replaced when dependencies are built.
