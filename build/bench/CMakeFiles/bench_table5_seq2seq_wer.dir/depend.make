# Empty dependencies file for bench_table5_seq2seq_wer.
# This may be replaced when dependencies are built.
