file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_seq2seq_wer.dir/bench_table5_seq2seq_wer.cc.o"
  "CMakeFiles/bench_table5_seq2seq_wer.dir/bench_table5_seq2seq_wer.cc.o.d"
  "bench_table5_seq2seq_wer"
  "bench_table5_seq2seq_wer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_seq2seq_wer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
