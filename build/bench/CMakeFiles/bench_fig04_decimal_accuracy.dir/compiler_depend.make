# Empty compiler generated dependencies file for bench_fig04_decimal_accuracy.
# This may be replaced when dependencies are built.
