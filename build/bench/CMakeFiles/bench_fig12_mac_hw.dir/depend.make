# Empty dependencies file for bench_fig12_mac_hw.
# This may be replaced when dependencies are built.
