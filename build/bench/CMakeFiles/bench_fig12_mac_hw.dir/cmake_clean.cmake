file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mac_hw.dir/bench_fig12_mac_hw.cc.o"
  "CMakeFiles/bench_fig12_mac_hw.dir/bench_fig12_mac_hw.cc.o.d"
  "bench_fig12_mac_hw"
  "bench_fig12_mac_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mac_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
