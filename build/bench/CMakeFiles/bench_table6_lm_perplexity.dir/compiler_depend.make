# Empty compiler generated dependencies file for bench_table6_lm_perplexity.
# This may be replaced when dependencies are built.
