file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_lm_perplexity.dir/bench_table6_lm_perplexity.cc.o"
  "CMakeFiles/bench_table6_lm_perplexity.dir/bench_table6_lm_perplexity.cc.o.d"
  "bench_table6_lm_perplexity"
  "bench_table6_lm_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_lm_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
