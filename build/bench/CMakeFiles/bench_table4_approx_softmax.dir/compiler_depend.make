# Empty compiler generated dependencies file for bench_table4_approx_softmax.
# This may be replaced when dependencies are built.
