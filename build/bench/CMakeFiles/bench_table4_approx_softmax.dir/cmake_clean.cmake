file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_approx_softmax.dir/bench_table4_approx_softmax.cc.o"
  "CMakeFiles/bench_table4_approx_softmax.dir/bench_table4_approx_softmax.cc.o.d"
  "bench_table4_approx_softmax"
  "bench_table4_approx_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_approx_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
