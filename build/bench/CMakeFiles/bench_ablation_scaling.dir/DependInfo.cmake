
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_scaling.cc" "bench/CMakeFiles/bench_ablation_scaling.dir/bench_ablation_scaling.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_scaling.dir/bench_ablation_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/qt8_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qt8_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/qt8_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/qt8_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/qt8_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/qt8_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/qt8_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
