#!/bin/sh
# Build the library under AddressSanitizer and run the cross-thread test
# set (ctest label "sane"): the serve engine's scheduler, tracer
# buffers, the packed GEMM's parallel health merging, and the tiered
# KV spill/restore machinery (kv_spill_test + the soak test's spill-IO
# chaos producer) are the subjects. Usage:
#   tools/check_sanitize.sh [thread|address|undefined]
# Default is address. Exits nonzero on any build or test failure.
set -e
cd "$(dirname "$0")/.."

SAN="${1:-address}"
BUILD="build-${SAN}san"

cmake -B "$BUILD" -S . -DQT8_SANITIZE="$SAN"
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" -L sane --output-on-failure -j "$(nproc)"
