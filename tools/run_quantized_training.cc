/**
 * @file
 * Command-line fine-tuning driver mirroring the paper artifact's
 * `run_quantized_training.py` interface (Appendix A.6.2):
 *
 *   run_quantized_training --model <MODEL> --task <TASK>
 *       --run_job <JOB> [--seed N] [--steps N] [--lr F]
 *       [--op_fusion classifier] [--optimizer sgd|adamw]
 *       [--load ckpt.bin] [--save ckpt.bin] [--lora_rank N]
 *
 * Models: mobilebert-tiny-like | mobilebert-like | roberta-base-like |
 *         roberta-large-like
 * Tasks:  mnli | qnli | mrpc | sst2 | squad
 * Jobs:   fp32 | bf16 | posit8 | posit8-approx-shifted | fp8 |
 *         int8-per-tensor | int8-per-channel
 *
 * Like the artifact, a backbone is pre-trained first (here: on the
 * synthetic span+QNLI mix, standing in for a hub checkpoint) unless
 * --load provides one; LoRA adapters are then fine-tuned on the task
 * under the selected data type, and the task metric is printed.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "data/eval.h"
#include "nn/checkpoint.h"

using namespace qt8;

namespace {

struct Args
{
    std::string model = "mobilebert-tiny-like";
    std::string task = "sst2";
    std::string job = "posit8";
    uint64_t seed = 42;
    int steps = 400;
    int pretrain_steps = 900;
    double lr = 5e-3;
    bool fuse_head = false;
    bool sgd = false;
    int lora_rank = 8;
    std::string load;
    std::string save;
};

void
usage()
{
    std::printf(
        "usage: run_quantized_training --model <MODEL> --task <TASK> "
        "--run_job <JOB>\n"
        "  [--seed N] [--steps N] [--pretrain_steps N] [--lr F]\n"
        "  [--op_fusion classifier] [--optimizer sgd|adamw]\n"
        "  [--lora_rank N] [--load ckpt.bin] [--save ckpt.bin]\n"
        "models: mobilebert-tiny-like mobilebert-like roberta-base-like "
        "roberta-large-like\n"
        "tasks:  mnli qnli mrpc sst2 squad\n"
        "jobs:   fp32 bf16 posit8 posit8-approx-shifted fp8 "
        "int8-per-tensor int8-per-channel\n");
}

bool
parse(int argc, char **argv, Args *args)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--model") {
            args->model = next();
        } else if (a == "--task") {
            args->task = next();
        } else if (a == "--run_job") {
            args->job = next();
        } else if (a == "--seed") {
            args->seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--steps") {
            args->steps = std::atoi(next());
        } else if (a == "--pretrain_steps") {
            args->pretrain_steps = std::atoi(next());
        } else if (a == "--lr") {
            args->lr = std::atof(next());
        } else if (a == "--op_fusion") {
            args->fuse_head = std::string(next()) == "classifier" ||
                              true; // any head name fuses the head
        } else if (a == "--optimizer") {
            args->sgd = std::string(next()) == "sgd";
        } else if (a == "--lora_rank") {
            args->lora_rank = std::atoi(next());
        } else if (a == "--load") {
            args->load = next();
        } else if (a == "--save") {
            args->save = next();
        } else if (a == "--help" || a == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

ModelConfig
modelByName(const std::string &name)
{
    if (name == "mobilebert-tiny-like")
        return ModelConfig::mobileBertTinyLike();
    if (name == "mobilebert-like")
        return ModelConfig::mobileBertLike();
    if (name == "roberta-base-like")
        return ModelConfig::bertBaseLike();
    if (name == "roberta-large-like")
        return ModelConfig::bertLargeLike();
    throw std::invalid_argument("unknown model " + name);
}

QuantConfig
jobByName(const std::string &job)
{
    if (job == "fp32")
        return QuantConfig::fp32();
    if (job == "bf16")
        return QuantConfig::bf16();
    if (job == "posit8")
        return QuantConfig::posit8();
    if (job == "posit8-approx-shifted")
        return QuantConfig::posit8Approx();
    if (job == "fp8")
        return QuantConfig::fp8();
    if (job == "int8-per-tensor")
        return QuantConfig::int8PerTensor();
    if (job == "int8-per-channel")
        return QuantConfig::int8PerChannel();
    throw std::invalid_argument("unknown job " + job);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parse(argc, argv, &args)) {
        usage();
        return 1;
    }

    const ModelConfig cfg = modelByName(args.model);
    QuantConfig qcfg = jobByName(args.job);
    qcfg.fuse_head = args.fuse_head;
    const bool all_dense = args.model.rfind("mobilebert", 0) == 0;

    std::printf("model=%s task=%s job=%s seed=%llu\n", args.model.c_str(),
                args.task.c_str(), args.job.c_str(),
                static_cast<unsigned long long>(args.seed));

    // --- Backbone -----------------------------------------------------
    TransformerEncoder backbone(cfg, args.seed);
    {
        ParamList bp;
        backbone.collectParams(bp);
        bool loaded = false;
        if (!args.load.empty()) {
            loaded = loadCheckpoint(args.load, bp);
            std::printf("checkpoint %s: %s\n", args.load.c_str(),
                        loaded ? "loaded" : "failed, pre-training");
        }
        if (!loaded) {
            std::printf("pre-training backbone (%d span + %d qnli "
                        "steps, FP32)...\n",
                        args.pretrain_steps, args.pretrain_steps / 3);
            QuantSession fp32(QuantConfig::fp32());
            const SpanTask span(cfg.vocab, 24);
            EncoderSpanQA span_model(cfg, args.seed);
            TrainOptions sopts;
            sopts.steps = args.pretrain_steps;
            sopts.batch = 16;
            sopts.lr = 2e-3;
            sopts.data_seed = args.seed + 17;
            trainSpan(span_model, fp32, span, sopts);

            const PairTask qnli(PairTask::Kind::kQnli, cfg.vocab, 25);
            EncoderClassifier qnli_model(cfg, 2, args.seed + 1);
            ParamList se, qe;
            span_model.encoder.collectParams(se);
            qnli_model.encoder.collectParams(qe);
            copyParamValues(qe, se);
            TrainOptions qopts;
            qopts.steps = args.pretrain_steps / 3;
            qopts.batch = 16;
            qopts.lr = 1e-3;
            qopts.data_seed = args.seed + 31;
            trainCls(qnli_model, fp32, qnli, qopts);
            ParamList src;
            qnli_model.encoder.collectParams(src);
            copyParamValues(bp, src);
        }
        if (!args.save.empty()) {
            std::printf("saving backbone to %s: %s\n",
                        args.save.c_str(),
                        saveCheckpoint(args.save, bp) ? "ok" : "FAILED");
        }
    }

    // --- Fine-tune ------------------------------------------------------
    QuantSession qs(qcfg);
    TrainOptions opts;
    opts.steps = args.steps;
    opts.batch = 16;
    opts.lr = args.lr;
    opts.opt = args.sgd ? TrainOptions::Opt::kSgd
                        : TrainOptions::Opt::kAdamW;
    opts.data_seed = args.seed + 7;
    opts.log_every = std::max(1, args.steps / 10);

    if (args.task == "squad") {
        const SpanTask task(cfg.vocab, 24);
        EncoderSpanQA model(cfg, args.seed + 2);
        ParamList dst, src;
        model.encoder.collectParams(dst);
        backbone.collectParams(src);
        copyParamValues(dst, src);
        if (qcfg.anyQuant() || args.job == "bf16")
            model.enableLora(args.lora_rank, 2.0f, all_dense);
        const TrainResult r = trainSpan(model, qs, task, opts);
        QuantSession eval_qs(qcfg);
        std::printf("final loss %.4f (diverged=%d, skipped=%d)\n",
                    r.final_loss, r.diverged, r.skipped_steps);
        std::printf("F1 = %.2f\n",
                    evalSpanF1(model, eval_qs, task, 2024, 4, 32));
        return 0;
    }

    PairTask::Kind kind;
    if (args.task == "mnli")
        kind = PairTask::Kind::kMnli;
    else if (args.task == "qnli")
        kind = PairTask::Kind::kQnli;
    else if (args.task == "mrpc")
        kind = PairTask::Kind::kMrpc;
    else if (args.task == "sst2")
        kind = PairTask::Kind::kSst2;
    else {
        usage();
        return 1;
    }
    const PairTask task(kind, cfg.vocab, 25);
    EncoderClassifier model(cfg, task.numClasses(), args.seed + 2);
    ParamList dst, src;
    model.encoder.collectParams(dst);
    backbone.collectParams(src);
    copyParamValues(dst, src);
    if (qcfg.anyQuant() || args.job == "bf16")
        model.enableLora(args.lora_rank, 2.0f, all_dense);
    const TrainResult r = trainCls(model, qs, task, opts);
    QuantSession eval_qs(qcfg);
    std::printf("final loss %.4f (diverged=%d, skipped=%d)\n",
                r.final_loss, r.diverged, r.skipped_steps);
    std::printf("accuracy = %.2f\n",
                evalClsAccuracy(model, eval_qs, task, 2024, 4, 32));
    return 0;
}
