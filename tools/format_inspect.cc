/**
 * @file
 * Number-format inspector: dumps the full code table of a format
 * (posit / FP8), or quantizes values given on the command line,
 * showing the code, the rounded value and the relative error.
 *
 *   format_inspect --format posit8 --table
 *   format_inspect --format e4m3 3.14159 0.001 512
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "numerics/minifloat.h"
#include "numerics/posit.h"
#include "numerics/quantizer.h"

using namespace qt8;

namespace {

void
dumpPositTable(const PositSpec &spec)
{
    std::printf("%s: maxpos %g minpos %g NaR 0x%02X\n",
                spec.name().c_str(), spec.maxpos(), spec.minpos(),
                spec.narCode());
    std::printf("%6s %16s | %6s %16s\n", "code", "value", "code",
                "value");
    const uint32_t half = spec.numCodes() / 2;
    for (uint32_t c = 0; c < half; ++c) {
        std::printf("  0x%02X %16.9g |   0x%02X %16.9g\n", c,
                    spec.decode(c), c + half, spec.decode(c + half));
    }
}

void
dumpMinifloatTable(const MinifloatSpec &spec)
{
    std::printf("%s: max %g, min normal %g, min subnormal %g\n",
                spec.name.c_str(), spec.maxFinite(), spec.minNormal(),
                spec.minSubnormal());
    for (uint32_t c = 0; c < spec.numCodes(); ++c) {
        if (c % 4 == 0)
            std::printf("\n");
        std::printf("  0x%02X %12.6g", c, spec.decode(c));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string format = "posit8";
    bool table = false;
    std::vector<double> values;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--format" && i + 1 < argc) {
            format = argv[++i];
        } else if (a == "--table") {
            table = true;
        } else if (a == "--help" || a == "-h") {
            std::printf("usage: format_inspect [--format F] "
                        "[--table] [values...]\n"
                        "formats: posit8 posit(8,0) posit(8,2) posit16 "
                        "e4m3 e5m2 bf16 int8\n");
            return 0;
        } else {
            values.push_back(std::atof(a.c_str()));
        }
    }

    if (table) {
        if (format == "posit8" || format == "posit(8,1)")
            dumpPositTable(posit8_1());
        else if (format == "posit(8,0)")
            dumpPositTable(posit8_0());
        else if (format == "posit(8,2)")
            dumpPositTable(posit8_2());
        else if (format == "e4m3")
            dumpMinifloatTable(e4m3());
        else if (format == "e5m2")
            dumpMinifloatTable(e5m2());
        else
            std::printf("no table dump for %s\n", format.c_str());
        return 0;
    }

    const Quantizer q = Quantizer::byName(format);
    if (values.empty())
        values = {0.001, 0.1, 0.5, 1.0, 3.14159, 42.0, 1000.0};
    std::printf("%16s %16s %12s\n", "x", format.c_str(), "rel err");
    for (double x : values) {
        const double qx = q.quantize(static_cast<float>(x));
        const double err = x != 0.0 ? std::fabs(qx - x) / std::fabs(x)
                                    : std::fabs(qx);
        std::printf("%16.8g %16.8g %11.4f%%\n", x, qx, 100.0 * err);
    }
    return 0;
}
