/**
 * @file
 * Minimal serving-engine driver: builds a small CausalLM, submits a
 * handful of prompts with mixed sampling policies through the
 * continuous-batching ServeEngine, and prints each request's tokens
 * plus the engine's metrics dump.
 *
 *   serve_demo [--dtype fp32|bf16|posit8|e4m3] [--slots N]
 *              [--requests N] [--max-new N] [--seed S] [--packed 0|1]
 *              [--kv-packed 0|1] [--pages N] [--page-size N]
 *              [--prefix-cache 0|1] [--spill-dir PATH]
 *
 * --packed 1 serves from true packed 8-bit weight codes through the
 * fused gemmQuantized path (grid dtypes only; tokens stay bit-identical
 * to the fake-quantized default). --kv-packed 1 additionally stores the
 * KV-cache pool as packed 8-bit codes and decodes them inside the
 * attention GEMVs — 4x smaller resident KV, same tokens bit for bit.
 *
 * --pages N switches to the paged KV pool (DESIGN.md §14): N fixed-size
 * pages (0 = the slab-equivalent count) back per-request page tables,
 * prompts prefill in page-sized chunks, and --prefix-cache 1 (default)
 * shares identical prompt prefixes between requests through the radix
 * cache. Tokens stay bit-identical to the slab engine.
 *
 * --spill-dir PATH demos tiered KV session storage (DESIGN.md §15,
 * implies --pages): every request becomes a chat session, idle
 * sessions are spilled to integrity-checked files under PATH, and a
 * second turn per session reactivates them — printing whether each
 * came back resident, restored from spill, or recomputed.
 *
 * Greedy requests are bit-identical to a solo cached decode; sampled
 * requests replay identically from their per-request seed.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "util/trace.h"

using namespace qt8;

namespace {

QuantConfig
dtypeByName(const std::string &name)
{
    if (name == "fp32")
        return QuantConfig::fp32();
    if (name == "bf16")
        return QuantConfig::bf16();
    if (name == "e4m3" || name == "fp8")
        return QuantConfig::fp8();
    if (name == "posit8-approx")
        return QuantConfig::posit8Approx();
    return QuantConfig::posit8();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dtype = "posit8";
    int64_t n_slots = 3, n_requests = 8, max_new = 12;
    uint64_t seed = 7;
    bool packed = false;
    bool kv_packed = false;
    bool paged = false;
    int64_t n_pages = 0, page_size = 16;
    bool prefix_cache = true;
    std::string spill_dir;
    for (int i = 1; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--dtype")
            dtype = argv[i + 1];
        else if (flag == "--slots")
            n_slots = std::atoll(argv[i + 1]);
        else if (flag == "--requests")
            n_requests = std::atoll(argv[i + 1]);
        else if (flag == "--max-new")
            max_new = std::atoll(argv[i + 1]);
        else if (flag == "--seed")
            seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
        else if (flag == "--packed")
            packed = std::atoll(argv[i + 1]) != 0;
        else if (flag == "--kv-packed")
            kv_packed = std::atoll(argv[i + 1]) != 0;
        else if (flag == "--pages") {
            paged = true;
            n_pages = std::atoll(argv[i + 1]);
        } else if (flag == "--page-size") {
            paged = true;
            page_size = std::atoll(argv[i + 1]);
        } else if (flag == "--prefix-cache") {
            paged = true;
            prefix_cache = std::atoll(argv[i + 1]) != 0;
        } else if (flag == "--spill-dir") {
            paged = true; // sessions live on the paged pool
            spill_dir = argv[i + 1];
        }
    }

    ModelConfig cfg;
    cfg.name = "serve-demo-lm";
    cfg.vocab = 64;
    cfg.max_seq = 64;
    cfg.d_model = 64;
    cfg.d_ff = 128;
    cfg.n_heads = 4;
    cfg.n_layers = 2;

    CausalLM model(cfg, 2024);
    QuantConfig qc = dtypeByName(dtype);
    qc.weights_packed = packed;
    qc.kv_packed = kv_packed;
    QuantSession qs(qc);

    serve::EngineConfig ec;
    ec.n_slots = n_slots;
    ec.paged = paged;
    ec.n_pages = n_pages;
    ec.page_size = page_size;
    ec.prefix_cache = prefix_cache;
    if (!spill_dir.empty()) {
        ec.spill_dir = spill_dir;
        // Watermark above any arena: every idle session goes to disk,
        // so the demo actually exercises spill + restore.
        ec.spill_low_pages = 1 << 20;
    }
    serve::ServeEngine engine(model, qs, ec);

    std::printf("serve_demo: %s%s%s, %lld slots, %lld requests",
                dtype.c_str(), packed ? " (packed weights)" : "",
                qc.kvPackedFormat() != nullptr ? " (packed KV)" : "",
                static_cast<long long>(n_slots),
                static_cast<long long>(n_requests));
    if (paged)
        std::printf(", paged KV (%lld pages x %lld rows%s)",
                    static_cast<long long>(
                        engine.config().n_pages),
                    static_cast<long long>(engine.config().page_size),
                    prefix_cache ? ", prefix cache" : "");
    if (!spill_dir.empty())
        std::printf(", spill dir %s", spill_dir.c_str());
    std::printf("\n\n");

    Rng rng(seed);
    std::vector<std::shared_future<serve::RequestResult>> futs;
    std::vector<serve::Request> reqs;
    for (int64_t r = 0; r < n_requests; ++r) {
        serve::Request req;
        const int64_t plen = 3 + rng.randint(6);
        for (int64_t j = 0; j < plen; ++j)
            req.prompt.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(cfg.vocab - Vocab::kFirstContent)));
        req.max_new_tokens = max_new;
        req.eos = Vocab::kEos;
        if (r % 2 == 1) { // odd requests sample, even ones are greedy
            req.sampling.temperature = 0.9f;
            req.sampling.top_k = 16;
            req.sampling.seed = seed + static_cast<uint64_t>(r);
        }
        if (!spill_dir.empty()) // every request opens a chat session
            req.session_id = static_cast<uint64_t>(r) + 1;
        reqs.push_back(req);
        futs.push_back(engine.submit(std::move(req)));
    }
    // Production shape: the engine's owned scheduler thread decodes
    // while this thread waits on the futures; drain-stop joins it.
    engine.start();
    engine.stop(serve::StopMode::kDrain);

    for (int64_t r = 0; r < n_requests; ++r) {
        const serve::RequestResult res =
            futs[static_cast<size_t>(r)].get();
        std::printf("req %2lld [%s, %s] prompt=%zu ->",
                    static_cast<long long>(r),
                    reqs[static_cast<size_t>(r)].sampling.temperature > 0
                        ? "sampled"
                        : "greedy",
                    serve::toString(res.status),
                    reqs[static_cast<size_t>(r)].prompt.size());
        for (const int32_t tok : res.tokens)
            std::printf(" %d", tok);
        std::printf("   (ttft %.2fms, %.2fms total)\n", res.ttft_ms,
                    res.latency_ms);
    }

    if (!spill_dir.empty()) {
        // Idle steps sweep every retained session to the disk tier
        // (the demo watermark is above the arena), then each session
        // comes back for a second turn.
        engine.step();
        std::printf("\nsessions after turn 1: %lld resident, %lld on "
                    "disk under %s\n",
                    static_cast<long long>(
                        engine.spillManager()->residentSessions()),
                    static_cast<long long>(
                        engine.spillManager()->spilledSessions()),
                    spill_dir.c_str());

        std::vector<std::shared_future<serve::RequestResult>> futs2;
        for (int64_t r = 0; r < n_requests; ++r) {
            serve::Request req = reqs[static_cast<size_t>(r)];
            const serve::RequestResult t1 =
                futs[static_cast<size_t>(r)].get();
            req.prompt.insert(req.prompt.end(), t1.tokens.begin(),
                              t1.tokens.end());
            req.prompt.push_back(req.prompt.front()); // the user "replies"
            futs2.push_back(engine.submit(std::move(req)));
        }
        engine.start();
        engine.stop(serve::StopMode::kDrain);
        for (int64_t r = 0; r < n_requests; ++r) {
            const serve::RequestResult res =
                futs2[static_cast<size_t>(r)].get();
            std::printf("turn 2 req %2lld [%s] kv=%s reused=%lld ->",
                        static_cast<long long>(r),
                        serve::toString(res.status),
                        serve::toString(res.session_kv),
                        static_cast<long long>(
                            res.session_reused_tokens));
            for (const int32_t tok : res.tokens)
                std::printf(" %d", tok);
            std::printf("\n");
        }
    }

    std::printf("\n%s", engine.metricsSnapshot().dump().c_str());
    if (trace::collecting()) {
        const std::string health = trace::healthTable();
        if (!health.empty())
            std::printf("\n%s", health.c_str());
        std::printf("\ntrace: %s (written at exit; load in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    trace::activePath().c_str());
    }
    return 0;
}
