/**
 * @file
 * Fold a qt8 trace (util/trace.h JSON) into a per-op time report plus
 * the per-quant-point numeric-health table.
 *
 *   trace_summary <trace.json>   fold an existing trace file
 *   trace_summary --smoke        self-test: record a small traced run
 *                                (kernels + quant session), write the
 *                                trace to a temp file, parse it back,
 *                                verify the folded report is sane
 *
 * Per-op report: span count, total/mean wall time, share of the summed
 * span time (shares overlap for nested spans — "gemm" time is also
 * inside "attn/forward"). Counters report last value and max; notes
 * are echoed verbatim.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "quant/config.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "util/trace.h"
#include "util/trace_reader.h"

using namespace qt8;

namespace {

struct OpStat
{
    uint64_t count = 0;
    double total_us = 0.0;
};

struct CounterStat
{
    uint64_t count = 0;
    double last = 0.0;
    double max = 0.0;
};

struct Summary
{
    std::map<std::string, OpStat> ops;
    std::map<std::string, CounterStat> counters;
    std::vector<std::pair<std::string, std::string>> notes;
    /// point -> (count, saturated, underflow, nonfinite, amax, mean err)
    std::vector<json::Value> health;
    uint64_t n_events = 0;
};

bool
fold(const json::Value &root, Summary &sum, std::string *err)
{
    const json::Value *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        if (err != nullptr)
            *err = "no traceEvents array";
        return false;
    }
    for (const json::Value &e : events->arr) {
        if (!e.isObject())
            continue;
        ++sum.n_events;
        const std::string ph = e.stringAt("ph");
        const std::string name = e.stringAt("name");
        if (ph == "X") {
            OpStat &op = sum.ops[name];
            ++op.count;
            op.total_us += e.numberAt("dur");
        } else if (ph == "C") {
            CounterStat &c = sum.counters[name];
            ++c.count;
            const json::Value *args = e.find("args");
            const double v =
                args != nullptr ? args->numberAt("value") : 0.0;
            c.last = v;
            c.max = std::max(c.max, v);
        }
    }
    const json::Value *health = root.find("qt8_health");
    if (health != nullptr && health->isArray())
        sum.health = health->arr;
    const json::Value *notes = root.find("qt8_notes");
    if (notes != nullptr && notes->isArray()) {
        for (const json::Value &n : notes->arr)
            sum.notes.emplace_back(n.stringAt("key"), n.stringAt("text"));
    }
    return true;
}

void
print(const Summary &sum)
{
    double grand_total = 0.0;
    for (const auto &[name, op] : sum.ops)
        grand_total += op.total_us;

    std::printf("%llu events\n\n",
                static_cast<unsigned long long>(sum.n_events));
    if (!sum.ops.empty()) {
        // Sort descending by total time: the hot op leads the report.
        std::vector<std::pair<std::string, OpStat>> rows(sum.ops.begin(),
                                                         sum.ops.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.total_us > b.second.total_us;
                  });
        std::printf("%-24s %10s %14s %12s %7s\n", "span", "count",
                    "total_ms", "mean_us", "share");
        for (const auto &[name, op] : rows) {
            std::printf(
                "%-24s %10llu %14.3f %12.3f %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(op.count),
                op.total_us / 1000.0,
                op.total_us / static_cast<double>(op.count),
                grand_total > 0.0 ? 100.0 * op.total_us / grand_total
                                  : 0.0);
        }
        std::printf("(shares overlap: nested spans count their children"
                    " too)\n\n");
    }
    if (!sum.counters.empty()) {
        std::printf("%-24s %10s %12s %12s\n", "counter", "samples",
                    "last", "max");
        for (const auto &[name, c] : sum.counters)
            std::printf("%-24s %10llu %12g %12g\n", name.c_str(),
                        static_cast<unsigned long long>(c.count), c.last,
                        c.max);
        std::printf("\n");
    }
    if (!sum.health.empty()) {
        std::printf("%-20s %12s %10s %10s %10s %12s %14s\n",
                    "quant point", "count", "saturated", "underflow",
                    "nonfinite", "amax", "mean|err|");
        for (const json::Value &h : sum.health)
            std::printf("%-20s %12.0f %10.0f %10.0f %10.0f %12.5g "
                        "%14.5g\n",
                        h.stringAt("point").c_str(), h.numberAt("count"),
                        h.numberAt("saturated"), h.numberAt("underflow"),
                        h.numberAt("nonfinite"), h.numberAt("amax"),
                        h.numberAt("mean_abs_err"));
        std::printf("\n");
    }
    for (const auto &[key, text] : sum.notes)
        std::printf("note [%s]:\n%s\n", key.c_str(), text.c_str());
}

bool
loadAndFold(const std::string &path, Summary &sum)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_summary: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    json::Value root;
    std::string err;
    if (!json::parse(ss.str(), root, &err)) {
        std::fprintf(stderr, "trace_summary: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return fold(root, sum, &err) ||
           (std::fprintf(stderr, "trace_summary: %s: %s\n", path.c_str(),
                         err.c_str()),
            false);
}

/// Self-test: produce a trace from real instrumented code, read it
/// back, and verify the folded summary contains what the run did.
int
smoke()
{
    const std::string path = "trace_summary_smoke.json";
    trace::start(path);
    {
        Rng rng(42);
        Tensor a({32, 48}), b({48, 40}), c({32, 40});
        rng.fillUniform(a, -1.0, 1.0);
        rng.fillUniform(b, -1.0, 1.0);
        for (int i = 0; i < 3; ++i)
            gemm(a, false, b, false, c, 1.0f, 0.0f);
        softmaxRowsInPlace(c);
        geluInPlace(c);

        QuantSession qs(QuantConfig::posit8());
        Tensor act({16, 64});
        rng.fillUniform(act, -8.0, 8.0);
        qs.quantFwd(OpClass::kGemm, act);
        trace::counter("smoke/value", 3.0);
        trace::note("smoke", "trace_summary --smoke");
    }
    trace::stop();

    Summary sum;
    if (!loadAndFold(path, sum))
        return 1;
    print(sum);
    std::remove(path.c_str());

    auto expectSpan = [&sum](const char *name, uint64_t at_least) {
        const auto it = sum.ops.find(name);
        if (it == sum.ops.end() || it->second.count < at_least) {
            std::fprintf(stderr, "smoke: missing span %s\n", name);
            return false;
        }
        return true;
    };
    bool ok = expectSpan("gemm", 3) && expectSpan("softmax", 1) &&
              expectSpan("gelu", 1);
    if (sum.counters.find("smoke/value") == sum.counters.end()) {
        std::fprintf(stderr, "smoke: missing counter\n");
        ok = false;
    }
    bool saw_health = false;
    for (const json::Value &h : sum.health)
        if (h.stringAt("point") == "fwd/gemm" &&
            h.numberAt("count") == 16 * 64)
            saw_health = true;
    if (!saw_health) {
        std::fprintf(stderr, "smoke: missing fwd/gemm health row\n");
        ok = false;
    }
    if (sum.notes.empty()) {
        std::fprintf(stderr, "smoke: missing note\n");
        ok = false;
    }
    std::printf("trace_summary --smoke: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0)
        return smoke();
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: trace_summary <trace.json> | --smoke\n");
        return 2;
    }
    Summary sum;
    if (!loadAndFold(argv[1], sum))
        return 1;
    print(sum);
    return 0;
}
