#!/bin/sh
# Assemble bench_output.txt from per-bench logs in canonical order.
# Equivalent to: for b in build/bench/bench_*; do $b; done 2>&1 | tee bench_output.txt
cd "$(dirname "$0")"
: > bench_output.txt
for name in bench_fig04_decimal_accuracy bench_table1_op_ablation \
            bench_table2_fusion_sweep bench_fig06_activation_distribution \
            bench_fig07_approx_curves bench_table3_threshold_sweep \
            bench_table4_approx_softmax bench_fig08_exp_hw \
            bench_fig09_recip_hw bench_table5_seq2seq_wer \
            bench_table6_lm_perplexity bench_fig10_tensor_distributions \
            bench_table7_lora_finetune bench_fig12_mac_hw \
            bench_fig13_accelerator_hw bench_table8_vector_unit \
            bench_fig14_finetune_memory bench_baseline_int8 \
            bench_ablation_rounding bench_ablation_scaling \
            bench_ext_energy_per_token bench_kernels bench_decode \
            bench_serve; do
  if [ -s "bench_logs/$name.txt" ]; then
    cat "bench_logs/$name.txt" >> bench_output.txt
    echo >> bench_output.txt
  else
    echo "[$name: not completed in this run]" >> bench_output.txt
  fi
done

# Refresh the machine-readable artifacts committed at the repo root
# (BENCH_gemm.json, BENCH_kv.json, BENCH_serve.json) when the bench
# binaries are present; skip silently otherwise. bench_serve --kv-json
# also embeds the shared-prefix slab-vs-paged comparison at fixed KV
# RAM ("prefix_share"; same table as bench_serve --prefix-share), the
# RAM-only-vs-disk-tier session spill comparison ("spill"; same table
# as bench_serve --spill), and the three-class fair-share-vs-FIFO mix
# ("multi_tenant"; same table as bench_serve --multi-tenant), and
# exits non-zero if the paged engines' tokens ever diverge from slab,
# the spill modes' streams diverge from each other, or any request's
# tokens differ between the FIFO and fair-share scheduler runs.
[ -x build/bench/bench_kernels ] && build/bench/bench_kernels --gemm-json >/dev/null
[ -x build/bench/bench_decode ] && build/bench/bench_decode --kv-json >/dev/null
[ -x build/bench/bench_serve ] && build/bench/bench_serve --kv-json >/dev/null
exit 0
