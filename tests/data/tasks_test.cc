/**
 * @file
 * Tests for the synthetic task generators and evaluation metrics.
 */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/metrics.h"
#include "data/tasks.h"
#include "nn/loss.h"

namespace qt8 {
namespace {

TEST(Metrics, EditDistance)
{
    EXPECT_EQ(editDistance({1, 2, 3}, {1, 2, 3}), 0);
    EXPECT_EQ(editDistance({1, 2, 3}, {1, 3}), 1);
    EXPECT_EQ(editDistance({}, {1, 2}), 2);
    EXPECT_EQ(editDistance({1, 2, 3}, {4, 5, 6}), 3);
    EXPECT_EQ(editDistance({1, 2, 3, 4}, {2, 3, 4, 5}), 2);
}

TEST(Metrics, Wer)
{
    EXPECT_DOUBLE_EQ(wordErrorRate({{1, 2}}, {{1, 2}}), 0.0);
    EXPECT_DOUBLE_EQ(wordErrorRate({{1}}, {{1, 2}}), 0.5);
}

TEST(Metrics, SpanOverlapF1)
{
    EXPECT_DOUBLE_EQ(spanOverlapF1(3, 5, 3, 5), 1.0);
    EXPECT_DOUBLE_EQ(spanOverlapF1(0, 1, 5, 6), 0.0);
    // Pred [3,4], gold [4,5]: overlap 1, p=0.5, r=0.5 -> f1=0.5.
    EXPECT_DOUBLE_EQ(spanOverlapF1(3, 4, 4, 5), 0.5);
}

TEST(Metrics, Perplexity)
{
    EXPECT_NEAR(perplexity(std::log(8.0) * 10, 10), 8.0, 1e-9);
}

TEST(SpanTask, WellFormedExamples)
{
    SpanTask task(64, 32);
    Rng rng(42);
    const SpanBatch b = task.sample(rng, 32);
    for (int64_t i = 0; i < b.batch; ++i) {
        const int32_t *ids = b.ids.data() + i * b.seq;
        const int32_t s = b.start[static_cast<size_t>(i)];
        const int32_t e = b.end[static_cast<size_t>(i)];
        ASSERT_GE(s, 4);
        ASSERT_GE(e, s);
        ASSERT_LT(e, b.seq);
        EXPECT_EQ(ids[0], Vocab::kCls);
        const int32_t q = ids[1];
        // The answer span is exactly the run of query-token copies.
        int count = 0;
        for (int64_t j = 4; j < b.seq; ++j)
            count += (ids[j] == q);
        EXPECT_EQ(count, e - s + 1);
        for (int32_t j = s; j <= e; ++j)
            EXPECT_EQ(ids[j], q);
        // Span length encoded by the length token.
        EXPECT_EQ(ids[2], Vocab::kFirstLen + (e - s));
        // Answer inside the non-padded region.
        EXPECT_EQ(b.pad[static_cast<size_t>(i * b.seq + e)], 0);
    }
}

TEST(SpanTask, Deterministic)
{
    SpanTask task(64, 32);
    Rng a(7), b(7);
    const SpanBatch ba = task.sample(a, 4);
    const SpanBatch bb = task.sample(b, 4);
    EXPECT_EQ(ba.ids, bb.ids);
    EXPECT_EQ(ba.start, bb.start);
}

class PairTaskAll : public ::testing::TestWithParam<PairTask::Kind>
{};

TEST_P(PairTaskAll, LabelsConsistentWithConstruction)
{
    const PairTask task(GetParam(), 64, 33);
    Rng rng(3);
    const ClsBatch b = task.sample(rng, 64);
    ASSERT_EQ(static_cast<int>(b.label.size()), 64);
    // Labels use the full range.
    std::set<int32_t> seen(b.label.begin(), b.label.end());
    EXPECT_EQ(static_cast<int>(seen.size()), task.numClasses());
    for (int32_t l : b.label) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, task.numClasses());
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PairTaskAll,
                         ::testing::Values(PairTask::Kind::kMnli,
                                           PairTask::Kind::kQnli,
                                           PairTask::Kind::kMrpc,
                                           PairTask::Kind::kSst2));

TEST(PairTask, QnliLabelMatchesMembership)
{
    const PairTask task(PairTask::Kind::kQnli, 64, 33);
    Rng rng(5);
    const ClsBatch b = task.sample(rng, 32);
    const int64_t seg = (33 - 3) / 2;
    for (int64_t i = 0; i < b.batch; ++i) {
        const int32_t *ids = b.ids.data() + i * b.seq;
        // Question-first layout: CLS q(+pad)[seg] SEP passage[seg] SEP.
        const int32_t q = ids[1];
        bool found = false;
        for (int64_t j = seg + 2; j < 2 * seg + 2; ++j)
            found |= (ids[j] == q);
        EXPECT_EQ(found, b.label[static_cast<size_t>(i)] == 1);
    }
}

TEST(Seq2SeqTask, SourceDeduplicatesToTarget)
{
    const Seq2SeqTask task(64, 48, 16);
    Rng rng(6);
    const Seq2SeqBatch b = task.sample(rng, 16);
    for (int64_t i = 0; i < b.batch; ++i) {
        const auto &ref = b.refs[static_cast<size_t>(i)];
        ASSERT_GE(ref.size(), 2u);
        // Deduplicate the source (drop repeats and noise tokens); it
        // must reproduce a prefix of the reference (source may be
        // truncated at seq_src).
        std::vector<int32_t> dedup;
        int32_t prev = -1;
        for (int64_t j = 0; j < b.seq_src; ++j) {
            const int32_t t = b.src[static_cast<size_t>(i * b.seq_src + j)];
            if (t == Vocab::kPad || t == Vocab::kFirstLen)
                continue;
            if (t != prev)
                dedup.push_back(t);
            prev = t;
        }
        ASSERT_LE(dedup.size(), ref.size());
        for (size_t j = 0; j < dedup.size(); ++j)
            EXPECT_EQ(dedup[j], ref[j]);
        // Teacher tensors: BOS first, EOS after the reference.
        EXPECT_EQ(b.tgt_in[static_cast<size_t>(i * b.seq_tgt)], Vocab::kBos);
        const size_t lt = ref.size();
        if (static_cast<int64_t>(lt) < b.seq_tgt) {
            EXPECT_EQ(b.tgt_out[static_cast<size_t>(i * b.seq_tgt) + lt],
                      Vocab::kEos);
        }
    }
}

TEST(LmTask, StreamStatistics)
{
    LmTask task(96, 99);
    Rng rng(1);
    const auto s = task.stream(rng, 5000);
    ASSERT_EQ(s.size(), 5000u);
    for (int32_t t : s) {
        EXPECT_GE(t, Vocab::kFirstContent);
        EXPECT_LT(t, 96);
    }
    // Bigram structure: the empirical next-token entropy given prev
    // must be far below uniform (the chain is predictable).
    std::vector<std::vector<int>> counts(96, std::vector<int>(96, 0));
    for (size_t i = 0; i + 1 < s.size(); ++i)
        counts[static_cast<size_t>(s[i])][static_cast<size_t>(s[i + 1])]++;
    // For the most frequent previous token, the top successor should
    // hold a large share.
    int best_prev = Vocab::kFirstContent;
    int best_total = 0;
    for (int p = Vocab::kFirstContent; p < 96; ++p) {
        int tot = 0;
        for (int n = 0; n < 96; ++n)
            tot += counts[static_cast<size_t>(p)][static_cast<size_t>(n)];
        if (tot > best_total) {
            best_total = tot;
            best_prev = p;
        }
    }
    int top = 0, tot = 0;
    for (int n = 0; n < 96; ++n) {
        const int c =
            counts[static_cast<size_t>(best_prev)][static_cast<size_t>(n)];
        top = std::max(top, c);
        tot += c;
    }
    EXPECT_GT(static_cast<double>(top) / tot, 0.2);
}

TEST(LmTask, SameStructureSeedSameLanguage)
{
    LmTask a(96, 5), b(96, 5), c(96, 6);
    Rng ra(1), rb(1), rc(1), ra2(1);
    EXPECT_EQ(a.stream(ra, 100), b.stream(rb, 100));
    EXPECT_NE(a.stream(ra2, 100), c.stream(rc, 100));
}

} // namespace
} // namespace qt8
