/**
 * @file
 * Tests for the evaluation drivers: span loss/F1 plumbing and the
 * sliding-window perplexity bookkeeping.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "data/eval.h"
#include "nn/loss.h"

namespace qt8 {
namespace {

SpanBatch
tinyBatch()
{
    SpanBatch b;
    b.batch = 2;
    b.seq = 6;
    b.ids.assign(12, 10);
    b.pad.assign(12, 0);
    b.pad[5] = 1; // one padded position in the first item
    b.start = {2, 1};
    b.end = {3, 1};
    return b;
}

TEST(SpanEval, PerfectLogitsGiveFullF1AndSmallLoss)
{
    const SpanBatch b = tinyBatch();
    Tensor logits({12, 2});
    // Put large mass on the gold start/end positions.
    logits.at(0 * 6 + 2, 0) = 20.0f;
    logits.at(0 * 6 + 3, 1) = 20.0f;
    logits.at(1 * 6 + 1, 0) = 20.0f;
    logits.at(1 * 6 + 1, 1) = 20.0f;

    EXPECT_DOUBLE_EQ(spanF1Percent(logits, b), 100.0);
    const SpanLossResult l = spanLoss(logits, b);
    EXPECT_LT(l.loss, 0.01);
    EXPECT_TRUE(l.dlogits.sameShape(logits));
}

TEST(SpanEval, DisjointPredictionGivesZeroF1)
{
    const SpanBatch b = tinyBatch();
    Tensor logits({12, 2});
    logits.at(0 * 6 + 4, 0) = 20.0f; // gold span is [2,3]
    logits.at(0 * 6 + 4, 1) = 20.0f;
    logits.at(1 * 6 + 3, 0) = 20.0f; // gold span is [1,1]
    logits.at(1 * 6 + 3, 1) = 20.0f;
    EXPECT_DOUBLE_EQ(spanF1Percent(logits, b), 0.0);
}

TEST(SpanEval, PaddedPositionsNeverPredicted)
{
    const SpanBatch b = tinyBatch();
    Tensor logits({12, 2});
    // Biggest raw logit sits on the padded position of item 0...
    logits.at(0 * 6 + 5, 0) = 50.0f;
    logits.at(0 * 6 + 2, 0) = 1.0f;
    logits.at(0 * 6 + 3, 1) = 1.0f;
    logits.at(1 * 6 + 1, 0) = 1.0f;
    logits.at(1 * 6 + 1, 1) = 1.0f;
    // ...but the mask keeps it out, so item 0 still predicts [2,3].
    EXPECT_DOUBLE_EQ(spanF1Percent(logits, b), 100.0);
}

TEST(SpanEval, LossGradientMatchesFiniteDifference)
{
    const SpanBatch b = tinyBatch();
    Tensor logits({12, 2});
    Rng rng(5);
    rng.fillNormal(logits);
    const SpanLossResult l = spanLoss(logits, b);
    const float h = 1e-3f;
    for (int64_t i = 0; i < logits.numel(); ++i) {
        // Padded positions have zero grad by construction; skip the
        // masked entries (their logits are replaced by the mask).
        const int64_t pos = i / 2;
        if (b.pad[static_cast<size_t>(pos)])
            continue;
        const float orig = logits.at(i);
        logits.at(i) = orig + h;
        const double lp = spanLoss(logits, b).loss;
        logits.at(i) = orig - h;
        const double lm = spanLoss(logits, b).loss;
        logits.at(i) = orig;
        EXPECT_NEAR(l.dlogits.at(i), (lp - lm) / (2.0 * h), 1e-4)
            << "coord " << i;
    }
}

TEST(Perplexity, UntrainedModelNearUniform)
{
    const LmTask task(32, 3);
    ModelConfig cfg;
    cfg.vocab = 32;
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    CausalLM model(cfg, 9);
    QuantSession qs(QuantConfig::fp32());
    const double ppl = evalPerplexity(model, qs, task, 11, 600, 32, 16);
    // A fresh model should be within a factor ~3 of the uniform
    // perplexity over the 24 content tokens.
    EXPECT_GT(ppl, 8.0);
    EXPECT_LT(ppl, 80.0);
}

TEST(Wer, EmptyHypothesesGiveFullErrorRate)
{
    const Seq2SeqTask task(32, 24, 8);
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 32;
    Seq2Seq model(cfg, 10);
    QuantSession qs(QuantConfig::fp32());
    // Untrained model: WER should be high (up to >100 with
    // insertions) but finite.
    const double wer = evalWer(model, qs, task, 12, 1, 4);
    EXPECT_GT(wer, 40.0);
    EXPECT_TRUE(std::isfinite(wer));
}

} // namespace
} // namespace qt8
