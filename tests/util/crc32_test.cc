/**
 * @file
 * Contract tests for the shared CRC32 (util/crc32.h) — the one
 * implementation behind both QT8CKPT2 checkpoints and QT8SPILL1 KV
 * spill files. Pins the polynomial to the standard check vector so a
 * refactor can't silently change the on-disk format, and exercises the
 * seed-chaining property the incremental writers rely on.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/crc32.h"

namespace qt8 {
namespace {

TEST(Crc32, MatchesStandardCheckVector)
{
    // The canonical CRC-32/ISO-HDLC check value ("123456789").
    const char check[] = "123456789";
    EXPECT_EQ(0xCBF43926u, crc32(check, 9));
}

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(0u, crc32(nullptr, 0));
    EXPECT_EQ(0u, crc32("", 0));
}

TEST(Crc32, SeedChainingEqualsOneShot)
{
    std::vector<uint8_t> buf(1031);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>((i * 37 + 11) & 0xFF);

    const uint32_t whole = crc32(buf.data(), buf.size());
    // Chain across uneven splits, including zero-length middle chunks.
    for (const size_t cut : {size_t{0}, size_t{1}, size_t{513},
                             buf.size() - 1, buf.size()}) {
        uint32_t c = crc32(buf.data(), cut);
        c = crc32(buf.data() + cut, 0, c);
        c = crc32(buf.data() + cut, buf.size() - cut, c);
        EXPECT_EQ(whole, c) << "cut at " << cut;
    }
}

TEST(Crc32, DetectsSingleByteCorruption)
{
    std::string payload(257, '\0');
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i);
    const uint32_t good = crc32(payload.data(), payload.size());
    for (const size_t at : {size_t{0}, size_t{128}, payload.size() - 1}) {
        std::string bad = payload;
        bad[at] = static_cast<char>(bad[at] ^ 0x40);
        EXPECT_NE(good, crc32(bad.data(), bad.size()))
            << "flip at " << at;
    }
}

} // namespace
} // namespace qt8
