/**
 * @file
 * Tracer contract tests (util/trace.h):
 *
 *  - spans nested across interleaving threads export as valid Chrome
 *    JSON (parsed back with util/trace_reader.h), one tid per thread,
 *    inner spans contained in their outer span's interval;
 *  - off mode records nothing and the RAII scope is two words — the
 *    constructor's only work is one branch on an atomic flag;
 *  - the numeric-health channel matches a hand-computed quantization
 *    of a known tensor, both through the Quantizer overload directly
 *    and end-to-end through QuantSession into the JSON health table.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "numerics/quantizer.h"
#include "quant/config.h"
#include "tensor/tensor.h"
#include "util/trace.h"
#include "util/trace_reader.h"

namespace qt8 {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

json::Value
parseTrace(const std::string &path)
{
    json::Value root;
    std::string err;
    EXPECT_TRUE(json::parse(slurp(path), root, &err)) << err;
    std::remove(path.c_str());
    return root;
}

std::string
tracePath(const char *name)
{
    return ::testing::TempDir() + name;
}

TEST(Trace, OffModeRecordsNothingAndScopeIsTwoWords)
{
    // The whole point of the tracer is that instrumented kernels pay a
    // single branch when off: the scope holds one pointer + one time
    // point, and its constructor checks collecting() once.
    static_assert(sizeof(trace::Scope) <=
                      sizeof(const char *) +
                          sizeof(std::chrono::steady_clock::time_point),
                  "Scope must stay trivially small");
    ASSERT_FALSE(trace::collecting());
    {
        QT8_TRACE_SCOPE("off_mode_span");
        trace::counter("off_mode_counter", 1.0);
        trace::instant("off_mode_instant");
        trace::note("off", "dropped");
    }
    // A trace started *afterwards* must not contain any of it.
    const std::string path = tracePath("trace_off.json");
    trace::start(path);
    trace::stop();
    const json::Value root = parseTrace(path);
    const json::Value *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->arr.empty());
    const json::Value *notes = root.find("qt8_notes");
    ASSERT_NE(notes, nullptr);
    EXPECT_TRUE(notes->arr.empty());
}

TEST(Trace, SpansCountersNotesExportValidJson)
{
    const std::string path = tracePath("trace_basic.json");
    trace::start(path);
    EXPECT_TRUE(trace::collecting());
    EXPECT_EQ(trace::activePath(), path);
    {
        QT8_TRACE_SCOPE("alpha");
        {
            QT8_TRACE_SCOPE("beta");
        }
    }
    trace::counter("depth", 3.0);
    trace::counter("depth", 5.0);
    trace::instant("mark");
    trace::noteInstant(std::string("dynamic ") + "mark");
    trace::note("key1", "line1\nline2 \"quoted\"");
    trace::stop();
    EXPECT_FALSE(trace::collecting());

    const json::Value root = parseTrace(path);
    const json::Value *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::map<std::string, int> by_name;
    for (const json::Value &e : *&events->arr) {
        by_name[e.stringAt("name")]++;
        EXPECT_EQ(e.numberAt("pid"), 1.0);
        EXPECT_GE(e.numberAt("ts"), 0.0);
        const std::string ph = e.stringAt("ph");
        EXPECT_TRUE(ph == "X" || ph == "C" || ph == "i") << ph;
    }
    EXPECT_EQ(by_name["alpha"], 1);
    EXPECT_EQ(by_name["beta"], 1);
    EXPECT_EQ(by_name["depth"], 2);
    EXPECT_EQ(by_name["mark"], 1);
    EXPECT_EQ(by_name["dynamic mark"], 1);

    // Counter values survive, in order.
    std::vector<double> depths;
    for (const json::Value &e : events->arr)
        if (e.stringAt("name") == "depth") {
            const json::Value *args = e.find("args");
            ASSERT_NE(args, nullptr);
            depths.push_back(args->numberAt("value"));
        }
    ASSERT_EQ(depths.size(), 2u);
    EXPECT_EQ(depths[0], 3.0);
    EXPECT_EQ(depths[1], 5.0);

    // The escaped note round-trips through the parser.
    const json::Value *notes = root.find("qt8_notes");
    ASSERT_NE(notes, nullptr);
    ASSERT_EQ(notes->arr.size(), 1u);
    EXPECT_EQ(notes->arr[0].stringAt("key"), "key1");
    EXPECT_EQ(notes->arr[0].stringAt("text"), "line1\nline2 \"quoted\"");
}

TEST(Trace, ThreadInterleavingNestsPerTidAndKeepsAllSpans)
{
    constexpr int kThreads = 4;
    constexpr int kInner = 8;
    const std::string path = tracePath("trace_threads.json");
    trace::start(path);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            QT8_TRACE_SCOPE("outer");
            for (int i = 0; i < kInner; ++i) {
                QT8_TRACE_SCOPE("inner");
                // A touch of real work so spans have nonzero width.
                volatile double sink = 0.0;
                for (int j = 0; j < 500; ++j)
                    sink = sink + std::sqrt(static_cast<double>(j));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    trace::stop();

    struct Span
    {
        double ts, dur;
    };
    std::map<int, std::vector<Span>> inner_by_tid;
    std::map<int, Span> outer_by_tid;
    const json::Value root = parseTrace(path);
    const json::Value *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    for (const json::Value &e : events->arr) {
        const int tid = static_cast<int>(e.numberAt("tid", -1));
        const Span s{e.numberAt("ts"), e.numberAt("dur")};
        if (e.stringAt("name") == "outer") {
            EXPECT_EQ(outer_by_tid.count(tid), 0u)
                << "one outer per thread";
            outer_by_tid[tid] = s;
        } else if (e.stringAt("name") == "inner") {
            inner_by_tid[tid].push_back(s);
        }
    }
    // Nothing lost: every thread's spans all arrived, under its own tid.
    ASSERT_EQ(outer_by_tid.size(), static_cast<size_t>(kThreads));
    ASSERT_EQ(inner_by_tid.size(), static_cast<size_t>(kThreads));
    for (const auto &[tid, outer] : outer_by_tid) {
        const auto &inners = inner_by_tid[tid];
        ASSERT_EQ(inners.size(), static_cast<size_t>(kInner))
            << "tid " << tid;
        // Nesting: inners sit inside their outer's interval (eps for
        // the writer's 3-decimal microsecond formatting).
        constexpr double kEps = 0.0015;
        for (const Span &in : inners) {
            EXPECT_GE(in.ts + kEps, outer.ts);
            EXPECT_LE(in.ts + in.dur, outer.ts + outer.dur + kEps);
        }
    }
}

TEST(Trace, RestartDiscardsPreviousEvents)
{
    const std::string path1 = tracePath("trace_first.json");
    const std::string path2 = tracePath("trace_second.json");
    trace::start(path1);
    {
        QT8_TRACE_SCOPE("first_only");
    }
    trace::start(path2); // restart without stop: discard + repoint
    {
        QT8_TRACE_SCOPE("second_only");
    }
    trace::stop();
    const json::Value root = parseTrace(path2);
    std::remove(path1.c_str()); // never written, but be tidy
    const json::Value *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->arr.size(), 1u);
    EXPECT_EQ(events->arr[0].stringAt("name"), "second_only");
}

TEST(QuantHealthCounters, MatchHandComputedE4M3)
{
    // E4M3: maxFinite 448, min subnormal 2^-9. Hand-placed inputs:
    //   1.0    on-grid, zero error
    //   0.3    off-grid (between 0.296875 and 0.3125)
    //   1000   finite overflow -> saturates to 448
    //   1e-10  below minSubnormal/2 -> flushes to 0 (underflow)
    //   NaN    nonfinite
    //   +inf   nonfinite (saturates to 448 in value, not counted amax)
    //   -2.5   on-grid negative, zero error
    const Quantizer q = Quantizer::byName("e4m3");
    float buf[] = {1.0f,
                   0.3f,
                   1000.0f,
                   1e-10f,
                   std::numeric_limits<float>::quiet_NaN(),
                   std::numeric_limits<float>::infinity(),
                   -2.5f};
    QuantHealth h;
    q.quantizeInPlace(buf, 7, h);

    EXPECT_EQ(h.count, 7u);
    EXPECT_EQ(h.saturated, 1u);  // 1000 only
    EXPECT_EQ(h.underflow, 1u);  // 1e-10 only
    EXPECT_EQ(h.nonfinite, 2u);  // NaN + inf
    EXPECT_DOUBLE_EQ(h.amax, 1000.0);
    // |0.3 - q(0.3)| + |1000 - 448| + 1e-10; the exact values both
    // match the scalar quantizer.
    const double expected_err =
        std::fabs(static_cast<double>(0.3f) -
                  static_cast<double>(q.quantize(0.3f))) +
        (1000.0 - 448.0) + static_cast<double>(1e-10f);
    EXPECT_NEAR(h.abs_err_sum, expected_err, 1e-12);
    EXPECT_NEAR(h.meanAbsErr(), expected_err / 5.0, 1e-12);

    // The buffer itself was quantized identically to the plain path.
    EXPECT_EQ(buf[0], 1.0f);
    EXPECT_EQ(buf[2], 448.0f);
    EXPECT_EQ(buf[3], 0.0f);
    EXPECT_TRUE(std::isnan(buf[4]));
    EXPECT_EQ(buf[6], -2.5f);
}

TEST(QuantHealthCounters, MergeAccumulates)
{
    QuantHealth a, b;
    a.count = 10;
    a.saturated = 1;
    a.amax = 5.0;
    a.abs_err_sum = 0.5;
    b.count = 4;
    b.nonfinite = 2;
    b.underflow = 1;
    b.amax = 7.0;
    b.abs_err_sum = 0.25;
    a.merge(b);
    EXPECT_EQ(a.count, 14u);
    EXPECT_EQ(a.saturated, 1u);
    EXPECT_EQ(a.underflow, 1u);
    EXPECT_EQ(a.nonfinite, 2u);
    EXPECT_DOUBLE_EQ(a.amax, 7.0);
    EXPECT_DOUBLE_EQ(a.abs_err_sum, 0.75);
    // 14 total - 2 nonfinite = 12 finite elements.
    EXPECT_DOUBLE_EQ(a.meanAbsErr(), 0.75 / 12.0);
}

TEST(QuantHealthCounters, SessionFeedsJsonHealthTable)
{
    const std::string path = tracePath("trace_health.json");
    trace::start(path);

    QuantSession qs(QuantConfig::fp8()); // E4M3 forward
    Tensor t({2, 2});
    t.data()[0] = 1.0f;
    t.data()[1] = 1000.0f; // saturates
    t.data()[2] = 1e-10f;  // underflows
    t.data()[3] = -2.5f;
    qs.quantFwd(OpClass::kGemm, t);

    const std::string table = trace::healthTable();
    EXPECT_NE(table.find("fwd/gemm"), std::string::npos);
    trace::stop();
    EXPECT_TRUE(trace::healthTable().empty()) << "stop() resets health";

    const json::Value root = parseTrace(path);
    const json::Value *health = root.find("qt8_health");
    ASSERT_NE(health, nullptr);
    ASSERT_TRUE(health->isArray());
    bool found = false;
    for (const json::Value &row : health->arr) {
        if (row.stringAt("point") != "fwd/gemm")
            continue;
        found = true;
        EXPECT_EQ(row.numberAt("count"), 4.0);
        EXPECT_EQ(row.numberAt("saturated"), 1.0);
        EXPECT_EQ(row.numberAt("underflow"), 1.0);
        EXPECT_EQ(row.numberAt("nonfinite"), 0.0);
        EXPECT_EQ(row.numberAt("amax"), 1000.0);
    }
    EXPECT_TRUE(found);
    // And the tensor really was quantized on the way through.
    EXPECT_EQ(t.data()[1], 448.0f);
    EXPECT_EQ(t.data()[2], 0.0f);
}

TEST(QuantHealthCounters, HealthPathBitIdenticalToPlainPath)
{
    // The health overload must not change a single bit of the output:
    // run both paths over the same pseudo-random buffer per format.
    for (const char *name : {"posit8", "posit(8,2)", "e4m3", "e5m2",
                             "bf16", "int8"}) {
        const Quantizer q = Quantizer::byName(name);
        std::vector<float> plain(512), tracked(512);
        uint32_t state = 0x2468ace1u;
        for (size_t i = 0; i < plain.size(); ++i) {
            state = state * 1664525u + 1013904223u;
            // Spread magnitudes across ~2^±16 with both signs.
            const float mag = std::ldexp(
                1.0f + static_cast<float>(state & 0xffff) / 65536.0f,
                static_cast<int>((state >> 16) % 33) - 16);
            plain[i] = (state & 0x80000000u) ? -mag : mag;
            tracked[i] = plain[i];
        }
        q.quantizeInPlace(plain.data(), plain.size());
        QuantHealth h;
        q.quantizeInPlace(tracked.data(), tracked.size(), h);
        EXPECT_EQ(h.count, plain.size());
        for (size_t i = 0; i < plain.size(); ++i)
            ASSERT_EQ(plain[i], tracked[i])
                << name << " diverged at " << i;
    }
}

} // namespace
} // namespace qt8
