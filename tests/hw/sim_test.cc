/**
 * @file
 * Tests for the systolic GEMM simulator: functional correctness
 * against the reference GEMM (allowing for storage quantization and
 * BF16 accumulation), cycle accounting, and energy ordering.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "hw/sim.h"
#include "numerics/quantizer.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace qt8::hw {
namespace {

TEST(SystolicSim, Bf16AcceleratorMatchesReferenceGemm)
{
    AcceleratorConfig cfg;
    cfg.dtype = "bf16";
    cfg.array_n = 8;
    const SystolicGemmSim sim(cfg);

    Rng rng(31);
    Tensor a({12, 20}), b({20, 9}), c({12, 9});
    rng.fillNormal(a);
    rng.fillNormal(b);
    const SimStats s = sim.run(a, b, c);

    // Reference on bf16-rounded operands; wide accumulation.
    const qt8::Quantizer bf = qt8::Quantizer::bf16();
    Tensor aq = a, bq = b;
    bf.quantizeInPlace(aq.data(), static_cast<size_t>(aq.numel()));
    bf.quantizeInPlace(bq.data(), static_cast<size_t>(bq.numel()));
    const Tensor ref = matmul(aq, bq);
    for (int64_t i = 0; i < c.numel(); ++i)
        EXPECT_NEAR(c.at(i), ref.at(i), 1e-4f) << i;

    EXPECT_EQ(s.macs, 12 * 20 * 9);
    EXPECT_GT(s.cycles, 0);
}

TEST(SystolicSim, Posit8AcceleratorCloseToQuantizedReference)
{
    AcceleratorConfig cfg;
    cfg.dtype = "posit8";
    cfg.array_n = 8;
    const SystolicGemmSim sim(cfg);

    Rng rng(32);
    Tensor a({10, 16}), b({16, 10}), c({10, 10});
    rng.fillNormal(a);
    rng.fillNormal(b);
    sim.run(a, b, c);

    const qt8::Quantizer p8 = qt8::Quantizer::byName("posit8");
    Tensor aq = a, bq = b;
    p8.quantizeInPlace(aq.data(), static_cast<size_t>(aq.numel()));
    p8.quantizeInPlace(bq.data(), static_cast<size_t>(bq.numel()));
    const Tensor ref = matmul(aq, bq);
    for (int64_t i = 0; i < c.numel(); ++i) {
        // BF16 per-accumulate rounding: small relative deviation.
        EXPECT_NEAR(c.at(i), ref.at(i),
                    0.05f * std::max(1.0f, std::fabs(ref.at(i))));
    }
}

TEST(SystolicSim, CycleModelScalesWithTiles)
{
    AcceleratorConfig cfg;
    cfg.dtype = "fp8";
    cfg.array_n = 8;
    const SystolicGemmSim sim(cfg);
    const SimStats one = sim.cost(8, 8, 8);     // single tile
    const SimStats four = sim.cost(8, 16, 16);  // 2x2 tiles
    EXPECT_EQ(four.cycles, 4 * one.cycles);
    EXPECT_EQ(four.macs, 4 * one.macs);
}

TEST(SystolicSim, EightBitUsesLessEnergyThanBf16)
{
    AcceleratorConfig b16;
    b16.dtype = "bf16";
    AcceleratorConfig p8 = b16;
    p8.dtype = "posit8";
    AcceleratorConfig f8 = b16;
    f8.dtype = "fp8";
    const SimStats sb = SystolicGemmSim(b16).cost(128, 256, 256);
    const SimStats sp = SystolicGemmSim(p8).cost(128, 256, 256);
    const SimStats sf = SystolicGemmSim(f8).cost(128, 256, 256);
    EXPECT_LT(sp.energy_nj, sb.energy_nj);
    EXPECT_LT(sf.energy_nj, sb.energy_nj);
    // Posit pays a small codec overhead over hybrid FP8.
    EXPECT_GT(sp.energy_nj, sf.energy_nj);
    // 8-bit operand traffic is half of BF16's.
    EXPECT_LT(sp.sram_read_bits, sb.sram_read_bits);
}

TEST(SystolicSim, TransformerCostAggregates)
{
    AcceleratorConfig cfg;
    cfg.dtype = "posit8";
    cfg.array_n = 16;
    const InferenceCost c =
        transformerForwardCost(cfg, 64, 128, 2, 1, 32, 100);
    EXPECT_GT(c.gemm.macs, 0);
    EXPECT_GT(c.gemm.energy_nj, 0.0);
    EXPECT_GT(c.vector_energy_nj, 0.0);
    // More layers cost more.
    const InferenceCost c2 =
        transformerForwardCost(cfg, 64, 128, 4, 1, 32, 100);
    EXPECT_GT(c2.gemm.cycles, c.gemm.cycles);
}

} // namespace
} // namespace qt8::hw
