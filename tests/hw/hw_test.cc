/**
 * @file
 * Tests for the hardware cost model: unit monotonicity, the paper's
 * qualitative area/power orderings (section 7), and the bit-accurate
 * RTL datapath models against the numerics reference codec.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "hw/accelerator.h"
#include "hw/memory_model.h"
#include "hw/rtl.h"
#include "hw/units.h"
#include "numerics/float_bits.h"
#include "numerics/posit.h"
#include "tensor/random.h"

namespace qt8::hw {
namespace {

TEST(Arith, CostsGrowWithWidth)
{
    EXPECT_LT(adder(8).ge, adder(16).ge);
    EXPECT_LT(multiplier(4, 4).ge, multiplier(8, 8).ge);
    EXPECT_LT(barrelShifter(8).ge, barrelShifter(24).ge);
    EXPECT_GT(multiplier(8, 8).depth, adder(8).depth);
}

TEST(Synthesize, PipelineRegistersGrowWithFrequency)
{
    const UnitModel mac = macUnit(kE5M3, kBf16);
    const SynthReport slow = synthesize(mac, 100.0);
    const SynthReport fast = synthesize(mac, 800.0);
    EXPECT_GE(fast.stages, slow.stages);
    EXPECT_GE(fast.area_um2, slow.area_um2);
    EXPECT_GT(fast.dyn_power_mw, slow.dyn_power_mw);
}

TEST(Units, MacOrderingMatchesPaper)
{
    // Section 7.1: Posit8 (E5M4) MAC slightly larger than hybrid FP8
    // (E5M3) due to the extra fraction bit; both far smaller than BF16
    // with FP32 accumulation.
    const auto p8 = synthesize(macUnit(kE5M4, kBf16), 200.0);
    const auto f8 = synthesize(macUnit(kE5M3, kBf16), 200.0);
    const auto b16 = synthesize(macUnit(kBf16, kFp32), 200.0);
    EXPECT_GT(p8.area_um2, f8.area_um2);
    EXPECT_LT(p8.area_um2, 0.6 * b16.area_um2);
    EXPECT_LT(f8.area_um2, 0.6 * b16.area_um2);
    EXPECT_GT(p8.powerMw(), f8.powerMw());
    EXPECT_LT(p8.powerMw(), b16.powerMw());
}

TEST(Units, PositExpFarSmallerThanFloatExp)
{
    // Figure 8: at 200 MHz the 16-bit posit exponential is ~62% smaller
    // and ~44% lower power than the BFloat16 HLS unit.
    const auto pe = synthesize(positExpUnit(16, 1), 200.0);
    const auto fe = synthesize(floatExpUnit(kBf16), 200.0);
    const double area_red = 1.0 - pe.area_um2 / fe.area_um2;
    const double power_red = 1.0 - pe.powerMw() / fe.powerMw();
    EXPECT_GT(area_red, 0.45);
    EXPECT_LT(area_red, 0.80);
    EXPECT_GT(power_red, 0.35);
}

TEST(Units, PositRecipFarSmallerThanFloatRecip)
{
    // Figure 9: ~85% smaller, ~75% less power. The posit unit is NOT
    // gates plus IO registers.
    const auto pr = synthesize(positRecipUnit(16), 200.0);
    const auto fr = synthesize(floatRecipUnit(kBf16), 200.0);
    const double area_red = 1.0 - pr.area_um2 / fr.area_um2;
    const double power_red = 1.0 - pr.powerMw() / fr.powerMw();
    EXPECT_GT(area_red, 0.75);
    EXPECT_GT(power_red, 0.65);
}

TEST(Units, PositCodecsAreSmall)
{
    const auto dec = synthesize(positDecoder(8, 1), 200.0);
    const auto enc = synthesize(positEncoder(8, 1), 200.0);
    const auto mac = synthesize(macUnit(kE5M4, kBf16), 200.0);
    // Figure 12: codecs are a modest adder on top of the MAC.
    EXPECT_LT(dec.area_um2, mac.area_um2);
    EXPECT_LT(enc.area_um2, mac.area_um2);
}

TEST(VectorUnit, Posit8VsFp8MatchesTable8)
{
    // Table 8: the posit8 vector unit is ~33% smaller and ~35% lower
    // power than the FP8 one, consistently across 8/16/32 lanes.
    for (int lanes : {8, 16, 32}) {
        const auto vp = vectorUnitReport("posit8", lanes, 200.0);
        const auto vf = vectorUnitReport("fp8", lanes, 200.0);
        const double area_red = 1.0 - vp.area_um2 / vf.area_um2;
        const double power_red = 1.0 - vp.powerMw() / vf.powerMw();
        EXPECT_GT(area_red, 0.25) << lanes;
        EXPECT_LT(area_red, 0.45) << lanes;
        EXPECT_GT(power_red, 0.22) << lanes;
        EXPECT_LT(power_red, 0.45) << lanes;
    }
}

class AcceleratorSizes : public ::testing::TestWithParam<int>
{};

TEST_P(AcceleratorSizes, EightBitReductionsVsBf16)
{
    const int n = GetParam();
    AcceleratorConfig cfg;
    cfg.array_n = n;

    cfg.dtype = "bf16";
    const auto bf16 = buildAccelerator(cfg);
    cfg.dtype = "posit8";
    const auto p8 = buildAccelerator(cfg);
    cfg.dtype = "fp8";
    const auto f8 = buildAccelerator(cfg);

    // Figure 13: both 8-bit accelerators reduce area by ~30% and power
    // by ~26-32% versus BFloat16 (we accept a generous band).
    const double p8_area = 1.0 - p8.totalAreaMm2() / bf16.totalAreaMm2();
    const double f8_area = 1.0 - f8.totalAreaMm2() / bf16.totalAreaMm2();
    EXPECT_GT(p8_area, 0.2) << n;
    EXPECT_LT(p8_area, 0.5) << n;
    EXPECT_GT(f8_area, 0.2) << n;
    EXPECT_GT(1.0 - p8.totalPowerMw() / bf16.totalPowerMw(), 0.2) << n;
    EXPECT_GT(1.0 - f8.totalPowerMw() / bf16.totalPowerMw(), 0.2) << n;

    // The posit8 accelerator's vector unit is the smaller one...
    EXPECT_LT(p8.find("vector_unit").area_um2,
              f8.find("vector_unit").area_um2);
    // ...while its array (MAC with one more fraction bit) is larger.
    EXPECT_GT(p8.find("systolic_array").area_um2,
              f8.find("systolic_array").area_um2);
}

INSTANTIATE_TEST_SUITE_P(Ns, AcceleratorSizes,
                         ::testing::Values(8, 16, 32));

TEST(Accelerator, OnlyPositHasCodecs)
{
    AcceleratorConfig cfg;
    cfg.dtype = "posit8";
    const auto p8 = buildAccelerator(cfg);
    EXPECT_NO_THROW(p8.find("posit_codecs"));
    cfg.dtype = "fp8";
    const auto f8 = buildAccelerator(cfg);
    EXPECT_THROW(f8.find("posit_codecs"), std::invalid_argument);
}

TEST(RtlPosit, DecoderMatchesReferenceAllCodes)
{
    for (const auto &[n, es] :
         {std::pair{8, 0}, {8, 1}, {8, 2}, {16, 1}}) {
        const PositSpec spec(n, es);
        for (uint32_t c = 0; c < spec.numCodes(); ++c) {
            const DecodedPosit d = positDecodeRtl(c, n, es);
            const double ref = spec.decode(c);
            if (c == spec.narCode()) {
                EXPECT_TRUE(d.nar);
                continue;
            }
            if (c == 0) {
                EXPECT_TRUE(d.zero);
                continue;
            }
            const double mag =
                std::ldexp(1.0 + std::ldexp(static_cast<double>(d.frac),
                                            -d.frac_bits),
                           d.scale);
            EXPECT_DOUBLE_EQ(d.sign ? -mag : mag, ref)
                << "posit(" << n << "," << es << ") code " << c;
        }
    }
}

TEST(RtlPosit, EncoderRoundTripsAllCodes)
{
    for (const auto &[n, es] :
         {std::pair{8, 0}, {8, 1}, {8, 2}, {16, 1}}) {
        const PositSpec spec(n, es);
        for (uint32_t c = 0; c < spec.numCodes(); ++c) {
            if (c == 0 || c == spec.narCode())
                continue;
            const DecodedPosit d = positDecodeRtl(c, n, es);
            const uint32_t back = positEncodeRtl(
                d.sign, d.scale, d.frac, d.frac_bits, n, es);
            EXPECT_EQ(back, c) << "posit(" << n << "," << es << ")";
        }
    }
}

TEST(RtlPosit, EncoderRoundsToNearestEvenLikeReference)
{
    // Drive the RTL encoder with extra fraction precision and compare
    // against the reference double-path encoder.
    const PositSpec spec(8, 1);
    Rng rng(21);
    for (int i = 0; i < 5000; ++i) {
        const int scale = static_cast<int>(rng.randint(29)) - 14;
        const uint64_t frac = rng.next() & 0xFFFFFu; // 20 frac bits
        const bool sign = rng.next() & 1;
        const double mag = std::ldexp(
            1.0 + std::ldexp(static_cast<double>(frac), -20), scale);
        const uint32_t want = spec.encode(sign ? -mag : mag);
        const uint32_t got = positEncodeRtl(sign, scale, frac, 20, 8, 1);
        EXPECT_EQ(got, want) << "scale " << scale << " frac " << frac;
    }
}

TEST(RtlMac, Bf16AccumulatorBehaviour)
{
    MacBf16Rtl mac;
    mac.accumulate(1.0f, 1.0f);
    EXPECT_EQ(mac.value(), 1.0f);
    // 1 + 1/512 is below the BF16 resolution at 1.0: the accumulator
    // drops it (swamping), unlike an FP32 accumulator.
    mac.accumulate(1.0f / 512.0f, 1.0f);
    EXPECT_EQ(mac.value(), 1.0f);
    mac.reset();
    for (int i = 0; i < 256; ++i)
        mac.accumulate(0.5f, 0.5f);
    EXPECT_NEAR(mac.value(), 64.0f, 1.0f);
}

TEST(MemoryModel, Figure14Shape)
{
    const TransformerDims dims = TransformerDims::mobileBertTiny();
    // Parameter count in the MobileBERT_tiny ballpark.
    EXPECT_GT(dims.totalParams(), 8'000'000);
    EXPECT_LT(dims.totalParams(), 25'000'000);

    MemorySetup full;
    MemorySetup lora16;
    lora16.lora = true;
    MemorySetup lora8 = lora16;
    lora8.weight_bits = 8;
    lora8.act_bits = 8;
    lora8.error_bits = 8;

    const auto m_full = finetuneMemory(dims, full);
    const auto m_l16 = finetuneMemory(dims, lora16);
    const auto m_l8 = finetuneMemory(dims, lora8);

    // LoRA removes nearly all gradient/optimizer memory...
    EXPECT_LT(m_l16.weight_grad_mb, 0.1 * m_full.weight_grad_mb);
    EXPECT_LT(m_l16.optimizer_mb, 0.1 * m_full.optimizer_mb);
    // ...8-bit quantization halves activations...
    EXPECT_NEAR(m_l8.activations_mb, 0.5 * m_l16.activations_mb, 1.0);
    // ...and the total reduction is approximately 3x (Figure 14).
    const double reduction = m_full.totalMb() / m_l8.totalMb();
    EXPECT_GT(reduction, 2.2);
    EXPECT_LT(reduction, 4.0);
    // Activations dominate training memory (section 7.4).
    EXPECT_GT(m_full.activations_mb, 0.5 * m_full.totalMb());
}

} // namespace
} // namespace qt8::hw
