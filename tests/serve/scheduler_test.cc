/**
 * @file
 * Multi-tenant fair-share scheduler contract tests (DESIGN.md §16).
 *
 * Queue level: the deficit-round-robin drain converges to the
 * configured weight ratios under sustained backlog, a rate-limited
 * tenant's popped tokens never exceed its bucket budget at any point
 * in time, a flooded high-weight class cannot starve batch (every
 * class gets its quantum each round), and an SLO-threatened head
 * bypasses the round.
 *
 * Engine level: a full mixed three-class schedule replays
 * deterministically — two identical externally-stepped engines fed the
 * same workload produce byte-identical per-request tokens and statuses
 * (under QT8_THREADS=1 in sanitizer builds; the property holds
 * regardless because every kernel is row-independent).
 *
 * Also home of the workload-generator determinism contract: the same
 * seed yields a byte-identical schedule (fingerprint()), different
 * seeds diverge.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/request_queue.h"
#include "workload_gen.h"

namespace fs = std::filesystem;

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::PendingRequest;
using serve::PriorityClass;
using serve::Request;
using serve::RequestQueue;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SchedulerConfig;
using serve::ServeEngine;
using serve::TenantPolicy;

struct ScopedDir
{
    explicit ScopedDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }
    ~ScopedDir() { fs::remove_all(path); }
    std::string path;
};

PendingRequest
makePending(uint64_t id, PriorityClass cls, uint64_t tenant = 0,
            int64_t prompt_len = 4, int64_t budget = 4)
{
    PendingRequest p;
    p.id = id;
    p.request.prompt.assign(static_cast<size_t>(prompt_len), 7);
    p.request.max_new_tokens = budget;
    p.request.priority_class = cls;
    p.request.tenant_id = tenant;
    return p;
}

TEST(SchedulerTest, FairShareConvergesToWeightRatiosUnderBacklog)
{
    SchedulerConfig sc; // default weights 4 : 2 : 1
    RequestQueue q(0, sc);
    uint64_t id = 1;
    for (int i = 0; i < 100; ++i)
        for (int c = 0; c < serve::kNumClasses; ++c)
            ASSERT_EQ(q.tryPush(makePending(
                          id++, static_cast<PriorityClass>(c))),
                      RequestQueue::PushResult::kOk);

    // Pop a window in which every class stays backlogged; each request
    // costs 8 tokens (4 prompt + 4 budget).
    std::array<double, serve::kNumClasses> tokens{};
    double total = 0.0;
    PendingRequest out;
    for (int i = 0; i < 84; ++i) {
        ASSERT_TRUE(q.tryPop(0.0, out));
        const double cost = serve::tokenCost(out.request);
        tokens[static_cast<size_t>(out.request.priority_class)] += cost;
        total += cost;
    }
    const double wsum = 4.0 + 2.0 + 1.0;
    const double want[serve::kNumClasses] = {4.0 / wsum, 2.0 / wsum,
                                             1.0 / wsum};
    for (size_t c = 0; c < serve::kNumClasses; ++c) {
        const double share = tokens[c] / total;
        // A window cut mid-round can be off by up to one quantum
        // (64 tokens for interactive) over the 672-token window.
        EXPECT_NEAR(share, want[c], 0.12)
            << "class " << c << " share " << share;
    }
}

TEST(SchedulerTest, RateLimitedTenantNeverExceedsBudget)
{
    SchedulerConfig sc;
    TenantPolicy tp;
    tp.tokens_per_sec = 100.0;
    tp.burst_tokens = 50.0;
    sc.tenants[7] = tp;
    RequestQueue q(0, sc);
    const int n = 40;
    for (uint64_t id = 1; id <= n; ++id)
        ASSERT_EQ(q.tryPush(makePending(id, PriorityClass::kStandard,
                                        /*tenant=*/7, /*prompt_len=*/5,
                                        /*budget=*/5)),
                  RequestQueue::PushResult::kOk);

    // Walk simulated time forward; at every instant the cumulative
    // tokens released for tenant 7 must fit burst + rate * elapsed.
    double popped = 0.0;
    int drained = 0;
    uint64_t last_id = 0;
    for (double now = 0.0; now <= 4000.0; now += 25.0) {
        PendingRequest out;
        while (q.tryPop(now, out)) {
            popped += serve::tokenCost(out.request);
            ++drained;
            // Rate-holding never reorders the tenant's own requests.
            EXPECT_GT(out.id, last_id);
            last_id = out.id;
        }
        EXPECT_LE(popped, 50.0 + 100.0 * now / 1000.0 + 1e-6)
            << "budget exceeded at t=" << now;
    }
    // ... and the limit delays, never starves: the backlog drains.
    EXPECT_EQ(drained, n);
}

TEST(SchedulerTest, BatchIsNeverStarvedByInteractiveFlood)
{
    SchedulerConfig sc;
    RequestQueue q(0, sc);
    uint64_t id = 1;
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(
            q.tryPush(makePending(id++, PriorityClass::kInteractive)),
            RequestQueue::PushResult::kOk);
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(q.tryPush(makePending(id++, PriorityClass::kBatch)),
                  RequestQueue::PushResult::kOk);

    // Batch's quantum (16 tokens = 2 requests) lands every round, so
    // all three batch requests pop within the first two rounds
    // (~12 interactive + ~4 batch pops) despite the 100-deep flood.
    int batch_seen = 0;
    PendingRequest out;
    for (int i = 0; i < 20 && batch_seen < 3; ++i) {
        ASSERT_TRUE(q.tryPop(0.0, out));
        batch_seen += out.request.priority_class ==
                      PriorityClass::kBatch;
    }
    EXPECT_EQ(batch_seen, 3);
}

TEST(SchedulerTest, SloThreatenedHeadBypassesTheRound)
{
    SchedulerConfig sc;
    // A vanishing weight would make interactive wait many rounds
    // behind the batch backlog — unless its head turns SLO-threatened
    // (wait >= slo_threat_frac * ttft_slo = 50 ms) and bypasses.
    sc.classes[static_cast<size_t>(PriorityClass::kInteractive)]
        .weight = 1e-5;
    sc.classes[static_cast<size_t>(PriorityClass::kInteractive)]
        .ttft_slo_ms = 100.0;
    sc.slo_threat_frac = 0.5;

    { // Below the threat age the big-weight class wins the round.
        RequestQueue q(0, sc);
        ASSERT_EQ(
            q.tryPush(makePending(1, PriorityClass::kInteractive)),
            RequestQueue::PushResult::kOk);
        for (uint64_t id = 2; id <= 9; ++id)
            ASSERT_EQ(q.tryPush(makePending(id, PriorityClass::kBatch)),
                      RequestQueue::PushResult::kOk);
        PendingRequest out;
        ASSERT_TRUE(q.tryPop(10.0, out));
        EXPECT_EQ(out.request.priority_class, PriorityClass::kBatch);
    }
    { // Past the threat age the interactive head preempts the round.
        RequestQueue q(0, sc);
        ASSERT_EQ(
            q.tryPush(makePending(1, PriorityClass::kInteractive)),
            RequestQueue::PushResult::kOk);
        for (uint64_t id = 2; id <= 9; ++id)
            ASSERT_EQ(q.tryPush(makePending(id, PriorityClass::kBatch)),
                      RequestQueue::PushResult::kOk);
        PendingRequest out;
        ASSERT_TRUE(q.tryPop(60.0, out));
        EXPECT_EQ(out.request.priority_class,
                  PriorityClass::kInteractive);
        EXPECT_EQ(out.id, 1u);
    }
}

// --- Workload generator ----------------------------------------------

TEST(SchedulerTest, WorkloadGeneratorIsSeedDeterministic)
{
    const bench::WorkloadConfig cfg =
        bench::defaultMix(5, 500.0, 48, Vocab::kFirstContent);
    const auto a = bench::generate(cfg);
    const auto b = bench::generate(cfg);
    ASSERT_FALSE(a.empty());
    // Same seed => byte-identical schedule.
    EXPECT_EQ(bench::fingerprint(a), bench::fingerprint(b));
    // Different seed => a different schedule.
    const auto c = bench::generate(
        bench::defaultMix(6, 500.0, 48, Vocab::kFirstContent));
    EXPECT_NE(bench::fingerprint(a), bench::fingerprint(c));

    std::array<int, serve::kNumClasses> per_class{};
    for (const bench::GenRequest &g : a) {
        ++per_class[static_cast<size_t>(g.cls)];
        EXPECT_LT(g.arrival_ms, 500.0);
        EXPECT_GT(g.max_new_tokens, 0);
        ASSERT_FALSE(g.prompt.empty());
        for (const int32_t tok : g.prompt) {
            EXPECT_GE(tok, Vocab::kFirstContent);
            EXPECT_LT(tok, 48);
        }
    }
    for (size_t c = 0; c < serve::kNumClasses; ++c)
        EXPECT_GT(per_class[c], 0) << "class " << c << " generated 0";
}

// --- Engine determinism ----------------------------------------------

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "scheduler-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

struct ReplayOutcome
{
    std::vector<RequestStatus> status;
    std::vector<std::vector<int32_t>> tokens;
    int64_t sched_preemptions = 0;
};

ReplayOutcome
replayMixedSchedule(CausalLM &model,
                    const std::vector<bench::GenRequest> &gen,
                    const std::string &spill_dir)
{
    QuantSession qs{QuantConfig::posit8()};
    EngineConfig ec;
    ec.n_slots = 3;
    ec.slot_capacity = 64;
    ec.paged = true;
    ec.page_size = 8;
    ec.n_pages = 12; // tight: admission pressure + preemption in play
    ec.prefix_cache = false;
    ec.spill_dir = spill_dir;
    // No SLOs and no rate limits: the drain depends only on deficits
    // and page state, never the wall clock, so the schedule replays.
    ServeEngine eng(model, qs, ec);

    std::vector<std::shared_future<RequestResult>> futs;
    for (const bench::GenRequest &g : gen) {
        Request req;
        req.prompt = g.prompt;
        req.max_new_tokens = g.max_new_tokens;
        req.eos = -1;
        req.tenant_id = g.tenant_id;
        req.priority_class = g.cls;
        futs.push_back(eng.submit(req));
    }
    eng.runUntilIdle();
    eng.releaseSessions();

    ReplayOutcome out;
    for (auto &f : futs) {
        const RequestResult r = f.get();
        out.status.push_back(r.status);
        out.tokens.push_back(r.tokens);
    }
    out.sched_preemptions = eng.metricsSnapshot().sched_preemptions;
    return out;
}

TEST(SchedulerTest, MixedScheduleReplaysDeterministically)
{
    const auto gen = bench::generate(
        bench::defaultMix(11, 120.0, 48, Vocab::kFirstContent));
    ASSERT_FALSE(gen.empty());
    CausalLM model(tinyLmConfig(), 424242);

    ScopedDir d1("scheduler_test_replay_a");
    ScopedDir d2("scheduler_test_replay_b");
    const ReplayOutcome a = replayMixedSchedule(model, gen, d1.path);
    const ReplayOutcome b = replayMixedSchedule(model, gen, d2.path);

    ASSERT_EQ(a.status.size(), b.status.size());
    for (size_t i = 0; i < a.status.size(); ++i) {
        EXPECT_EQ(a.status[i], b.status[i]) << "request " << i;
        EXPECT_EQ(a.tokens[i], b.tokens[i]) << "request " << i;
        EXPECT_EQ(a.status[i], RequestStatus::kOk) << "request " << i;
    }
    EXPECT_EQ(a.sched_preemptions, b.sched_preemptions);
}

} // namespace
} // namespace qt8
