/**
 * @file
 * Preempt-spill-resume contract tests (DESIGN.md §16).
 *
 * The invariant under test: preemption may change *when* a request's
 * tokens are computed, never *which* tokens. A victim's decode state
 * is checkpointed through the session tier (endTurn + spill), its
 * pages freed, and the later resume — restored from disk, served
 * resident, or fully recomputed when the checkpoint died — must emit
 * the exact token stream of an uninterrupted solo decode, for packed
 * uint8 and fp32 KV panels alike.
 *
 * Also covered: injected spill IO faults during the preemptive
 * checkpoint degrade to typed recompute with identical tokens;
 * cancelled and deadline-expired preempted requests resolve with their
 * typed status without leaking pool pages or spill files; and forced
 * preemption churn (FaultConfig::preempt_rate) across a whole batch
 * keeps every request bit-identical.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/fault.h"
#include "serve/sampler.h"

namespace fs = std::filesystem;

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::FaultConfig;
using serve::FaultInjector;
using serve::PriorityClass;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;

struct ScopedDir
{
    explicit ScopedDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }
    ~ScopedDir() { fs::remove_all(path); }
    std::string path;
};

size_t
fileCount(const std::string &dir)
{
    if (!fs::exists(dir))
        return 0;
    size_t n = 0;
    for (const auto &e : fs::directory_iterator(dir))
        n += e.is_regular_file();
    return n;
}

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "preempt-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached decode — the uninterrupted ground truth.
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    const SamplingParams sp;
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (static_cast<int64_t>(out.size()) < max_new) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

/// A 6-page arena two requests cannot share at worst case: the batch
/// victim admits alone, and the later interactive arrival's admission
/// pressure forces the scheduler to preempt it.
EngineConfig
pressureConfig(const std::string &spill_dir)
{
    EngineConfig ec;
    ec.n_slots = 2;
    ec.slot_capacity = 32;
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 6;
    ec.prefix_cache = false;
    ec.spill_dir = spill_dir;
    return ec;
}

/// What to do with the victim once it has been preempted.
enum class VictimAction { kResume, kCancel, kDeadline };

struct SurgicalOutcome
{
    RequestResult victim;
    RequestResult interactive;
    serve::ServeMetrics metrics;
    int64_t free_pages_after = 0;
    size_t spill_files_after = 0;
};

/// Drive the deterministic preemption scenario: admit a batch request,
/// let it prefill a few steps, then submit an interactive request
/// whose worst-case demand cannot fit — the engine must preempt the
/// batch victim. Then resume / cancel / expire it per @p action.
SurgicalOutcome
runSurgical(CausalLM &model, bool packed, const std::string &spill_dir,
            VictimAction action, FaultInjector *fault = nullptr,
            double victim_timeout_ms = 0.0)
{
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = packed;
    QuantSession qs(qc);
    EngineConfig ec = pressureConfig(spill_dir);
    ec.fault = fault;
    ServeEngine eng(model, qs, ec);

    Rng rng(77);
    Request victim;
    victim.prompt = makePrompt(rng, 48, 10);
    victim.max_new_tokens = 10;
    victim.eos = -1;
    victim.priority_class = PriorityClass::kBatch;
    victim.timeout_ms = victim_timeout_ms;
    uint64_t victim_id = 0;
    auto vfut = eng.submit(victim, &victim_id);
    eng.step();
    eng.step(); // victim mid-prefill, holding pages

    Request inter;
    inter.prompt = makePrompt(rng, 48, 12);
    inter.max_new_tokens = 8;
    inter.eos = -1;
    inter.priority_class = PriorityClass::kInteractive;
    auto ifut = eng.submit(inter);

    // The interactive admission preempts the victim within a step or
    // two (worst-case gate: 5 + 5 pages into a 6-page arena).
    int64_t preempts = 0;
    for (int i = 0; i < 50 && preempts == 0; ++i) {
        eng.step();
        preempts = eng.metrics().sched_preemptions;
    }
    EXPECT_GE(preempts, 1) << "pressure never preempted the victim";

    if (action == VictimAction::kCancel) {
        EXPECT_TRUE(eng.cancel(victim_id));
    } else if (action == VictimAction::kDeadline) {
        // Let the victim's deadline lapse while it sits preempted.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int64_t>(victim_timeout_ms) + 20));
    }
    eng.runUntilIdle();
    eng.releaseSessions();

    SurgicalOutcome o;
    o.victim = vfut.get();
    o.interactive = ifut.get();
    o.metrics = eng.metricsSnapshot();
    o.free_pages_after = eng.freeSlots();
    o.spill_files_after = fileCount(spill_dir);
    return o;
}

TEST(PreemptTest, PreemptSpillResumeBitIdenticalPackedAndFp32)
{
    CausalLM model(tinyLmConfig(), 1234);
    for (const bool packed : {true, false}) {
        SCOPED_TRACE(packed ? "packed" : "fp32");
        ScopedDir dir("preempt_test_spill");
        const SurgicalOutcome o = runSurgical(
            model, packed, dir.path, VictimAction::kResume);

        ASSERT_EQ(o.victim.status, RequestStatus::kOk);
        ASSERT_EQ(o.interactive.status, RequestStatus::kOk);
        // The oracle: solo decodes of the exact same prompts.
        QuantConfig qc = QuantConfig::posit8();
        qc.kv_packed = packed;
        QuantSession qs(qc);
        Rng rng(77);
        const auto vprompt = makePrompt(rng, 48, 10);
        const auto iprompt = makePrompt(rng, 48, 12);
        EXPECT_EQ(o.victim.tokens, soloCausal(model, qs, vprompt, 10));
        EXPECT_EQ(o.interactive.tokens,
                  soloCausal(model, qs, iprompt, 8));

        EXPECT_GE(o.metrics.sched_preemptions, 1);
        EXPECT_GE(o.metrics.preempt_resumes, 1);
        bool victim_seen = false;
        for (const auto &r : o.metrics.requests) {
            if (r.priority_class == PriorityClass::kBatch) {
                EXPECT_GE(r.preemptions, 1);
                victim_seen = true;
            }
        }
        EXPECT_TRUE(victim_seen);
        // Quiesce: every page back, no checkpoint file left behind.
        EXPECT_EQ(o.free_pages_after, 6);
        EXPECT_EQ(o.spill_files_after, 0u);
    }
}

TEST(PreemptTest, RamOnlyPreemptDropsCheckpointAndRecomputes)
{
    CausalLM model(tinyLmConfig(), 1234);
    // No disk tier: the preemptive checkpoint is dropped outright and
    // the resume recomputes the replay — tokens must not change.
    const SurgicalOutcome o = runSurgical(
        model, /*packed=*/true, /*spill_dir=*/"", VictimAction::kResume);

    ASSERT_EQ(o.victim.status, RequestStatus::kOk);
    ASSERT_EQ(o.interactive.status, RequestStatus::kOk);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);
    Rng rng(77);
    const auto vprompt = makePrompt(rng, 48, 10);
    const auto iprompt = makePrompt(rng, 48, 12);
    EXPECT_EQ(o.victim.tokens, soloCausal(model, qs, vprompt, 10));
    EXPECT_EQ(o.interactive.tokens, soloCausal(model, qs, iprompt, 8));
    EXPECT_GE(o.metrics.sched_preemptions, 1);
    EXPECT_GE(o.metrics.sessions_dropped, 1);
    EXPECT_EQ(o.free_pages_after, 6);
}

TEST(PreemptTest, SpillIoFaultDuringPreemptDegradesToRecompute)
{
    CausalLM model(tinyLmConfig(), 1234);
    FaultConfig fc;
    fc.seed = 9;
    fc.spill_open_fail_rate = 1.0; // every checkpoint write fails
    FaultInjector fault(fc);
    ScopedDir dir("preempt_test_iofault");
    const SurgicalOutcome o =
        runSurgical(model, /*packed=*/true, dir.path,
                    VictimAction::kResume, &fault);

    // The checkpoint never reached disk, so the resume is a full
    // recompute — typed, counted, and bit-identical.
    ASSERT_EQ(o.victim.status, RequestStatus::kOk);
    ASSERT_EQ(o.interactive.status, RequestStatus::kOk);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);
    Rng rng(77);
    const auto vprompt = makePrompt(rng, 48, 10);
    const auto iprompt = makePrompt(rng, 48, 12);
    EXPECT_EQ(o.victim.tokens, soloCausal(model, qs, vprompt, 10));
    EXPECT_EQ(o.interactive.tokens, soloCausal(model, qs, iprompt, 8));
    EXPECT_GE(o.metrics.sched_preemptions, 1);
    EXPECT_GE(fault.stats().spill_open_fails, 1);
    EXPECT_EQ(o.free_pages_after, 6);
    EXPECT_EQ(o.spill_files_after, 0u);
}

TEST(PreemptTest, CancelledWhilePreemptedResolvesTypedAndLeaksNothing)
{
    CausalLM model(tinyLmConfig(), 1234);
    ScopedDir dir("preempt_test_cancel");
    const SurgicalOutcome o = runSurgical(
        model, /*packed=*/true, dir.path, VictimAction::kCancel);

    EXPECT_EQ(o.victim.status, RequestStatus::kCancelled);
    ASSERT_EQ(o.interactive.status, RequestStatus::kOk);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);
    Rng rng(77);
    (void)makePrompt(rng, 48, 10); // skip the victim's draw
    const auto iprompt = makePrompt(rng, 48, 12);
    EXPECT_EQ(o.interactive.tokens, soloCausal(model, qs, iprompt, 8));
    // The dropped checkpoint must not leak pages or spill files.
    EXPECT_EQ(o.free_pages_after, 6);
    EXPECT_EQ(o.spill_files_after, 0u);
    EXPECT_EQ(o.metrics.cancelled, 1);
}

TEST(PreemptTest, DeadlineExpiryWhilePreemptedResolvesTyped)
{
    CausalLM model(tinyLmConfig(), 1234);
    ScopedDir dir("preempt_test_deadline");
    const SurgicalOutcome o =
        runSurgical(model, /*packed=*/true, dir.path,
                    VictimAction::kDeadline, nullptr,
                    /*victim_timeout_ms=*/150.0);

    EXPECT_EQ(o.victim.status, RequestStatus::kDeadlineExceeded);
    ASSERT_EQ(o.interactive.status, RequestStatus::kOk);
    EXPECT_EQ(o.free_pages_after, 6);
    EXPECT_EQ(o.spill_files_after, 0u);
    EXPECT_EQ(o.metrics.expired, 1);
}

TEST(PreemptTest, ForcedPreemptionChurnStaysBitIdentical)
{
    CausalLM model(tinyLmConfig(), 4321);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);
    FaultConfig fc;
    fc.seed = 3;
    fc.preempt_rate = 0.35; // interrupt someone most steps
    FaultInjector fault(fc);
    ScopedDir dir("preempt_test_churn");
    EngineConfig ec;
    ec.n_slots = 3;
    ec.slot_capacity = 32;
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 24; // no memory pressure: every preempt is injected
    ec.prefix_cache = false;
    ec.spill_dir = dir.path;
    ec.fault = &fault;
    ServeEngine eng(model, qs, ec);

    Rng rng(55);
    std::vector<std::vector<int32_t>> prompts;
    std::vector<int64_t> budgets;
    std::vector<std::shared_future<RequestResult>> futs;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.prompt = makePrompt(rng, 48, 6 + (i % 5));
        req.max_new_tokens = 5 + (i % 4);
        req.eos = -1;
        req.priority_class =
            static_cast<PriorityClass>(i % serve::kNumClasses);
        prompts.push_back(req.prompt);
        budgets.push_back(req.max_new_tokens);
        futs.push_back(eng.submit(req));
    }
    eng.runUntilIdle();
    eng.releaseSessions();

    EXPECT_GE(fault.stats().forced_preempts, 1);
    EXPECT_GE(eng.metricsSnapshot().preempt_resumes, 1);
    for (size_t i = 0; i < futs.size(); ++i) {
        const RequestResult r = futs[i].get();
        ASSERT_EQ(r.status, RequestStatus::kOk) << "request " << i;
        EXPECT_EQ(r.tokens,
                  soloCausal(model, qs, prompts[i], budgets[i]))
            << "request " << i;
    }
    EXPECT_EQ(eng.freeSlots(), 24);
    EXPECT_EQ(fileCount(dir.path), 0u);
}

} // namespace
} // namespace qt8
