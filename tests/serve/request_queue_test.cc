/**
 * @file
 * Class-aware admission queue contract tests (DESIGN.md §16).
 *
 * Queue level: each PriorityClass gets its own bounded FIFO — depth
 * caps reject per class (and globally) with the typed kFull result,
 * pops preserve FIFO within a class under both the global-FIFO and
 * fair-share policies, closeAndDrain atomically refuses future pushes
 * while returning everything queued in arrival order, and reopen()
 * accepts again.
 *
 * Engine level: a class at its depth cap resolves kRejectedQueueFull
 * immediately (per-class rejected accounting) while other classes keep
 * admitting, stop(kDrain) finishes every queued request, and
 * stop(kAbort) resolves the backlog kEngineStopped.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/request_queue.h"

namespace qt8 {
namespace {

using serve::ClassPolicy;
using serve::EngineConfig;
using serve::PendingRequest;
using serve::PriorityClass;
using serve::Request;
using serve::RequestQueue;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SchedulerConfig;
using serve::ServeEngine;

PendingRequest
makePending(uint64_t id, PriorityClass cls, uint64_t tenant = 0,
            int64_t prompt_len = 4, int64_t budget = 4)
{
    PendingRequest p;
    p.id = id;
    p.request.prompt.assign(static_cast<size_t>(prompt_len), 7);
    p.request.max_new_tokens = budget;
    p.request.priority_class = cls;
    p.request.tenant_id = tenant;
    return p;
}

TEST(RequestQueueTest, FifoWithinClassBothPolicies)
{
    for (const auto policy : {SchedulerConfig::Policy::kFifo,
                              SchedulerConfig::Policy::kFairShare}) {
        SchedulerConfig sc;
        sc.policy = policy;
        RequestQueue q(0, sc);
        for (uint64_t id = 1; id <= 6; ++id)
            ASSERT_EQ(q.tryPush(makePending(id, PriorityClass::kBatch)),
                      RequestQueue::PushResult::kOk);
        PendingRequest out;
        for (uint64_t id = 1; id <= 6; ++id) {
            ASSERT_TRUE(q.tryPop(0.0, out));
            EXPECT_EQ(out.id, id);
        }
        EXPECT_FALSE(q.tryPop(0.0, out));
    }
}

TEST(RequestQueueTest, PerClassDepthCapRejectsOnlyThatClass)
{
    SchedulerConfig sc;
    sc.classes[static_cast<size_t>(PriorityClass::kInteractive)]
        .max_queue_depth = 2;
    RequestQueue q(0, sc);
    EXPECT_EQ(q.tryPush(makePending(1, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.tryPush(makePending(2, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.tryPush(makePending(3, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kFull);
    // The cap is per class: standard and batch still accept.
    EXPECT_EQ(q.tryPush(makePending(4, PriorityClass::kStandard)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.tryPush(makePending(5, PriorityClass::kBatch)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.sizeClass(PriorityClass::kInteractive), 2u);
    EXPECT_EQ(q.size(), 4u);
}

TEST(RequestQueueTest, GlobalDepthCapRejectsAcrossClasses)
{
    RequestQueue q(2, SchedulerConfig{});
    EXPECT_EQ(q.tryPush(makePending(1, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.tryPush(makePending(2, PriorityClass::kBatch)),
              RequestQueue::PushResult::kOk);
    EXPECT_EQ(q.tryPush(makePending(3, PriorityClass::kStandard)),
              RequestQueue::PushResult::kFull);
}

TEST(RequestQueueTest, CloseAndDrainIsAtomicAndReopens)
{
    RequestQueue q(0, SchedulerConfig{});
    ASSERT_EQ(q.tryPush(makePending(1, PriorityClass::kBatch)),
              RequestQueue::PushResult::kOk);
    ASSERT_EQ(q.tryPush(makePending(2, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kOk);
    ASSERT_EQ(q.tryPush(makePending(3, PriorityClass::kStandard)),
              RequestQueue::PushResult::kOk);

    const std::vector<PendingRequest> drained = q.closeAndDrain();
    ASSERT_EQ(drained.size(), 3u);
    // Global *arrival* order, not class order.
    EXPECT_EQ(drained[0].id, 1u);
    EXPECT_EQ(drained[1].id, 2u);
    EXPECT_EQ(drained[2].id, 3u);

    EXPECT_EQ(q.tryPush(makePending(4, PriorityClass::kBatch)),
              RequestQueue::PushResult::kClosed);
    EXPECT_TRUE(q.empty());

    q.reopen();
    EXPECT_EQ(q.tryPush(makePending(5, PriorityClass::kBatch)),
              RequestQueue::PushResult::kOk);
    PendingRequest out;
    ASSERT_TRUE(q.tryPop(0.0, out));
    EXPECT_EQ(out.id, 5u);
}

TEST(RequestQueueTest, BlockedClassIsSkippedWorkConserving)
{
    RequestQueue q(0, SchedulerConfig{});
    ASSERT_EQ(q.tryPush(makePending(1, PriorityClass::kInteractive)),
              RequestQueue::PushResult::kOk);
    ASSERT_EQ(q.tryPush(makePending(2, PriorityClass::kBatch)),
              RequestQueue::PushResult::kOk);
    std::array<bool, serve::kNumClasses> blocked{};
    blocked[static_cast<size_t>(PriorityClass::kInteractive)] = true;
    PendingRequest out;
    // Interactive would win the round; blocking it must not stall the
    // queue — batch pops instead, and interactive stays put.
    ASSERT_TRUE(q.tryPopScheduled(0.0, blocked, out));
    EXPECT_EQ(out.id, 2u);
    EXPECT_EQ(q.sizeClass(PriorityClass::kInteractive), 1u);
}

// --- Engine level ----------------------------------------------------

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "request-queue-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

Request
makeRequest(PriorityClass cls, int64_t prompt_len = 4,
            int64_t budget = 4)
{
    Request r;
    r.prompt.assign(static_cast<size_t>(prompt_len),
                    Vocab::kFirstContent);
    r.max_new_tokens = budget;
    r.eos = -1;
    r.priority_class = cls;
    return r;
}

TEST(RequestQueueTest, EngineRejectsPerClassQueueFullTyped)
{
    CausalLM model(tinyLmConfig(), 99);
    QuantSession qs{QuantConfig::posit8()};
    EngineConfig ec;
    ec.n_slots = 1;
    ec.slot_capacity = 32;
    ec.sched.classes[static_cast<size_t>(PriorityClass::kBatch)]
        .max_queue_depth = 1;
    ServeEngine eng(model, qs, ec); // externally stepped: nothing drains

    auto f1 = eng.submit(makeRequest(PriorityClass::kBatch));
    auto f2 = eng.submit(makeRequest(PriorityClass::kBatch));
    auto f3 = eng.submit(makeRequest(PriorityClass::kInteractive));
    // f2 overflowed batch's depth-1 queue and resolved immediately;
    // the interactive submission is untouched by batch's cap.
    ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f2.get().status, RequestStatus::kRejectedQueueFull);

    eng.runUntilIdle();
    EXPECT_EQ(f1.get().status, RequestStatus::kOk);
    EXPECT_EQ(f3.get().status, RequestStatus::kOk);

    const serve::ServeMetrics m = eng.metricsSnapshot();
    EXPECT_EQ(m.rejected, 1);
    EXPECT_EQ(m.per_class[static_cast<size_t>(PriorityClass::kBatch)]
                  .rejected,
              1);
    EXPECT_EQ(m.per_class[static_cast<size_t>(PriorityClass::kBatch)]
                  .submitted,
              1);
    EXPECT_EQ(
        m.per_class[static_cast<size_t>(PriorityClass::kInteractive)]
            .rejected,
        0);
}

TEST(RequestQueueTest, EngineDrainFinishesBacklogAbortResolvesTyped)
{
    CausalLM model(tinyLmConfig(), 99);
    QuantSession qs{QuantConfig::posit8()};
    EngineConfig ec;
    ec.n_slots = 1;
    ec.slot_capacity = 32;

    { // kDrain: every queued request across classes completes.
        ServeEngine eng(model, qs, ec);
        eng.start();
        std::vector<std::shared_future<RequestResult>> futs;
        for (int i = 0; i < 3; ++i) {
            futs.push_back(eng.submit(makeRequest(
                static_cast<PriorityClass>(i % serve::kNumClasses))));
        }
        eng.stop(serve::StopMode::kDrain);
        for (auto &f : futs)
            EXPECT_EQ(f.get().status, RequestStatus::kOk);
    }
    { // kAbort: the backlog resolves kEngineStopped, never hangs.
        ServeEngine eng(model, qs, ec);
        std::vector<std::shared_future<RequestResult>> futs;
        for (int i = 0; i < 4; ++i) {
            futs.push_back(eng.submit(makeRequest(
                static_cast<PriorityClass>(i % serve::kNumClasses),
                /*prompt_len=*/8, /*budget=*/16)));
        }
        eng.start();
        eng.stop(serve::StopMode::kAbort);
        int stopped = 0;
        for (auto &f : futs) {
            const RequestResult r = f.get();
            EXPECT_TRUE(r.status == RequestStatus::kEngineStopped ||
                        r.status == RequestStatus::kOk);
            stopped += r.status == RequestStatus::kEngineStopped;
        }
        EXPECT_GE(stopped, 1);
        // Submissions after the abort get the typed refusal.
        auto late = eng.submit(makeRequest(PriorityClass::kStandard));
        EXPECT_EQ(late.get().status, RequestStatus::kEngineStopped);
    }
}

} // namespace
} // namespace qt8
