/**
 * @file
 * Regression pin for the sampleToken top-k hot path. The original
 * implementation stable_sorted the entire candidate set per decoded
 * token (O(V log V)); the fixed path selects with nth_element under the
 * (logit desc, id asc) total order and sorts only the kept prefix.
 * These tests replay both against each other: same candidates in the
 * same order, hence the same inverse-CDF walk, hence bit-identical
 * token streams from the same seed — tie-heavy distributions included.
 */
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "serve/sampler.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8 {
namespace {

using serve::SamplingParams;

/// The pre-fix implementation, kept verbatim as the behavioral oracle.
int32_t
sampleTokenStableSort(const Tensor &logits, int64_t row,
                      const SamplingParams &params, Rng &rng)
{
    if (!(params.temperature > 0.0f))
        return static_cast<int32_t>(rowArgmax(logits, row));

    const int64_t vocab = logits.dim(1);
    const float *p = logits.data() + row * vocab;

    std::vector<int32_t> cand;
    cand.reserve(static_cast<size_t>(vocab));
    for (int64_t j = 0; j < vocab; ++j) {
        if (std::isfinite(p[j]))
            cand.push_back(static_cast<int32_t>(j));
    }
    if (cand.empty())
        return static_cast<int32_t>(rowArgmax(logits, row));
    if (params.top_k > 0 &&
        static_cast<size_t>(params.top_k) < cand.size()) {
        std::stable_sort(cand.begin(), cand.end(),
                         [p](int32_t a, int32_t b) { return p[a] > p[b]; });
        cand.resize(static_cast<size_t>(params.top_k));
    }

    double mx = -INFINITY;
    for (int32_t j : cand)
        mx = std::max(mx, static_cast<double>(p[j]));
    const double inv_t = 1.0 / static_cast<double>(params.temperature);
    std::vector<double> w(cand.size());
    double total = 0.0;
    for (size_t i = 0; i < cand.size(); ++i) {
        w[i] = std::exp((static_cast<double>(p[cand[i]]) - mx) * inv_t);
        total += w[i];
    }
    if (!(total > 0.0) || !std::isfinite(total))
        return static_cast<int32_t>(rowArgmax(logits, row));

    const double u = rng.uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < cand.size(); ++i) {
        acc += w[i];
        if (u < acc)
            return cand[i];
    }
    return cand.back();
}

/// Logits with deliberately heavy ties: values drawn from a tiny set of
/// levels so stable-sort tie-breaking (lower id first) is load-bearing.
Tensor
tieHeavyLogits(Rng &rng, int64_t rows, int64_t vocab, int levels)
{
    Tensor t({rows, vocab});
    float *p = t.data();
    for (int64_t i = 0; i < t.numel(); ++i)
        p[i] = static_cast<float>(rng.randint(levels)) * 0.5f;
    return t;
}

TEST(Sampler, SeededReplayBitIdenticalToStableSort)
{
    const int64_t vocab = 97;
    Rng gen(1234);
    for (const int top_k : {0, 1, 2, 5, 40, 96, 97, 200}) {
        for (const float temp : {0.0f, 0.3f, 1.0f, 2.5f}) {
            SamplingParams sp;
            sp.top_k = top_k;
            sp.temperature = temp;
            // Fresh tie-heavy logits per token, same RNG stream on both
            // sides: any divergence in the kept candidate order would
            // desynchronize the token streams immediately.
            Rng r_new(42), r_old(42);
            for (int step = 0; step < 64; ++step) {
                const Tensor logits =
                    tieHeavyLogits(gen, 2, vocab, 3 + step % 5);
                for (int64_t row = 0; row < 2; ++row) {
                    const int32_t want = sampleTokenStableSort(
                        logits, row, sp, r_old);
                    const int32_t got =
                        serve::sampleToken(logits, row, sp, r_new);
                    ASSERT_EQ(want, got)
                        << "top_k=" << top_k << " temp=" << temp
                        << " step=" << step << " row=" << row;
                }
            }
        }
    }
}

TEST(Sampler, SeededReplayWithNonfiniteLogits)
{
    const int64_t vocab = 50;
    Rng gen(77);
    SamplingParams sp;
    sp.top_k = 7;
    sp.temperature = 0.8f;
    Rng r_new(9), r_old(9);
    for (int step = 0; step < 32; ++step) {
        Tensor logits = tieHeavyLogits(gen, 1, vocab, 4);
        // Mask a changing subset to -inf (the engine's padding idiom)
        // and poison one slot with NaN; both must be excluded without
        // perturbing the candidate order.
        float *p = logits.data();
        for (int64_t j = 0; j < vocab; j += 3 + step % 4)
            p[j] = -std::numeric_limits<float>::infinity();
        p[(step * 13) % vocab] =
            std::numeric_limits<float>::quiet_NaN();
        const int32_t want = sampleTokenStableSort(logits, 0, sp, r_old);
        const int32_t got = serve::sampleToken(logits, 0, sp, r_new);
        ASSERT_EQ(want, got) << "step=" << step;
    }
}

TEST(Sampler, TopKOneIsGreedyWithLowestIdTieBreak)
{
    // Three-way tie at the max: top_k=1 must keep token 2 (lowest id
    // among the tied), matching the stable-sort prefix.
    Tensor logits({1, 6});
    float *p = logits.data();
    p[0] = 0.0f;
    p[1] = 1.0f;
    p[2] = 3.0f;
    p[3] = 3.0f;
    p[4] = 3.0f;
    p[5] = -1.0f;
    SamplingParams sp;
    sp.top_k = 1;
    sp.temperature = 1.0f;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed);
        EXPECT_EQ(2, serve::sampleToken(logits, 0, sp, rng));
    }
}

} // namespace
} // namespace qt8
