/**
 * @file
 * Paged KV pool + prefix-cache contract tests (DESIGN.md §14).
 *
 * Two layers of claims. Pool level: page-table growth is
 * all-or-nothing, the radix trie matches longest shared prefixes in
 * page_size-token chunks with copy-on-write inside a diverging page,
 * cache pages are refcounted (live sequences pin them against
 * eviction) and LRU reclamation only ever takes unreferenced leaves.
 * Engine level: the paged engine's token streams are bit-identical to
 * the slab engine — the acceptance oracle — across CausalLM and
 * Seq2Seq, fp32 and packed caches, greedy and seeded sampling, chunked
 * prefill, shared-prefix reuse, dirty-page recycling, and out-of-pages
 * backpressure/preemption.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/paged_kv.h"
#include "serve/sampler.h"
#include "tensor/ops.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::PagedKVPool;
using serve::PagedSeq;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "paged-kv-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

PagedKVPool::Config
tinyPoolConfig(int64_t n_pages, int64_t page_size)
{
    PagedKVPool::Config pc;
    pc.n_pages = n_pages;
    pc.page_size = page_size;
    pc.d_model = 8;
    pc.n_self_layers = 1;
    return pc;
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached decode (fp32 cache) — the ground-truth token stream.
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

// --- Pool level ------------------------------------------------------

TEST(PagedKvPool, EnsureTailIsAllOrNothingAndReleaseReturnsPages)
{
    PagedKVPool pool(tinyPoolConfig(/*n_pages=*/4, /*page_size=*/4));
    EXPECT_EQ(4, pool.freePages());
    EXPECT_EQ(0, pool.residentPages());

    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, 1));
    EXPECT_EQ(1u, s.pages.size());
    EXPECT_EQ(3, pool.freePages());
    // Rows 1..4 fit the same page: no growth.
    ASSERT_TRUE(pool.ensureTail(s, 4));
    EXPECT_EQ(1u, s.pages.size());
    ASSERT_TRUE(pool.ensureTail(s, 5));
    EXPECT_EQ(2u, s.pages.size());

    // 17 rows needs 5 pages > 4 total: refused without side effects.
    EXPECT_FALSE(pool.ensureTail(s, 17));
    EXPECT_EQ(2u, s.pages.size());
    EXPECT_EQ(2, pool.freePages());

    pool.releaseSeq(s);
    EXPECT_TRUE(s.pages.empty());
    EXPECT_EQ(0, s.len);
    EXPECT_EQ(4, pool.freePages());
}

TEST(PagedKvPool, RadixMatchRefcountsAndLeafOnlyEviction)
{
    PagedKVPool pool(tinyPoolConfig(/*n_pages=*/8, /*page_size=*/4));
    std::vector<int32_t> prompt_a(12);
    std::iota(prompt_a.begin(), prompt_a.end(), 100);

    // A sequence that prefilled the whole prompt donates its pages.
    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, 12));
    s.len = 12;
    pool.insertPrefix(prompt_a, 12, s);
    EXPECT_EQ(3, pool.cachedPages());
    for (const int32_t p : s.pages)
        EXPECT_EQ(2, pool.pageRef(p)) << "sequence + cache";

    // Longest match in whole chunks, with the tail as COW material.
    PagedKVPool::PrefixMatch m = pool.matchPrefix(prompt_a, 11);
    EXPECT_EQ(8, m.rows);
    ASSERT_EQ(2u, m.pages.size());
    EXPECT_EQ(s.pages[0], m.pages[0]);
    EXPECT_EQ(s.pages[2], m.partial_page);
    EXPECT_EQ(3, m.partial_rows);

    // Divergence at a chunk boundary: no partial page offered.
    std::vector<int32_t> prompt_b = prompt_a;
    prompt_b[8] = 7;
    m = pool.matchPrefix(prompt_b, 11);
    EXPECT_EQ(8, m.rows);
    EXPECT_EQ(-1, m.partial_page);

    const std::vector<int32_t> donor_pages = s.pages;
    pool.releaseSeq(s);
    for (const int32_t p : donor_pages)
        EXPECT_EQ(1, pool.pageRef(p)) << "cache keeps the pages alive";
    EXPECT_EQ(5, pool.freePages());
    EXPECT_EQ(8, pool.availablePages()) << "cache pages are reclaimable";

    // Adoption pins the matched pages against eviction.
    PagedSeq t;
    m = pool.matchPrefix(prompt_a, 12);
    EXPECT_EQ(12, m.rows);
    EXPECT_EQ(12, pool.adoptPrefix(t, m));
    EXPECT_EQ(12, t.shared_rows);
    EXPECT_EQ(2, pool.pageRef(t.pages[0]));
    EXPECT_FALSE(pool.evictOne()) << "no unreferenced leaf while free "
                                     "pages remain... ";
    pool.releaseSeq(t);

    // Leaf-only LRU: evicting once removes the deepest chunk, leaving
    // the shorter prefix intact.
    ASSERT_TRUE(pool.evictOne());
    EXPECT_EQ(2, pool.cachedPages());
    EXPECT_EQ(8, pool.matchPrefix(prompt_a, 12).rows);

    // Demand-driven eviction: a sequence needing every page drains the
    // cache through ensureTail.
    PagedSeq big;
    ASSERT_TRUE(pool.ensureTail(big, 32));
    EXPECT_EQ(8u, big.pages.size());
    EXPECT_EQ(0, pool.cachedPages());
    EXPECT_GE(pool.evictions(), 3);
    EXPECT_EQ(0, pool.matchPrefix(prompt_a, 12).rows);
}

TEST(PagedKvPool, CowCloneCopiesCoveredRowsBytewise)
{
    PagedKVPool::Config pc = tinyPoolConfig(/*n_pages=*/4,
                                            /*page_size=*/4);
    PagedKVPool pool(pc);
    std::vector<int32_t> prompt{1, 2, 3, 4};

    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, 4));
    std::vector<float> krow(static_cast<size_t>(pc.d_model));
    std::vector<float> vrow(static_cast<size_t>(pc.d_model));
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t j = 0; j < pc.d_model; ++j) {
            krow[static_cast<size_t>(j)] =
                static_cast<float>(r * 10 + j);
            vrow[static_cast<size_t>(j)] =
                static_cast<float>(-(r * 10 + j));
        }
        pool.selfLayers()[0].writeRow(s.pages[0], r, krow.data(),
                                      vrow.data());
    }
    s.len = 4;
    pool.insertPrefix(prompt, 4, s);
    pool.releaseSeq(s);

    // A prompt diverging inside the cached page gets a private clone
    // of the still-valid rows.
    PagedKVPool::PrefixMatch m = pool.matchPrefix(prompt, 3);
    ASSERT_EQ(0, m.rows);
    ASSERT_EQ(3, m.partial_rows);
    PagedSeq t;
    EXPECT_EQ(3, pool.adoptPrefix(t, m));
    EXPECT_EQ(1, pool.cowClones());
    ASSERT_EQ(1u, t.pages.size());

    const auto &panel = pool.selfLayers()[0];
    const float *src_k =
        panel.k.data() + m.partial_page * 4 * pc.d_model;
    const float *dst_k = panel.k.data() + t.pages[0] * 4 * pc.d_model;
    const float *src_v =
        panel.v.data() + m.partial_page * 4 * pc.d_model;
    const float *dst_v = panel.v.data() + t.pages[0] * 4 * pc.d_model;
    const size_t bytes =
        sizeof(float) * static_cast<size_t>(3 * pc.d_model);
    EXPECT_EQ(0, std::memcmp(src_k, dst_k, bytes));
    EXPECT_EQ(0, std::memcmp(src_v, dst_v, bytes));
}

// --- Engine level ----------------------------------------------------

/// Submit the same request mix to a slab and a paged engine and demand
/// byte-equal token streams (plus the solo oracle for good measure).
void
expectPagedMatchesSlabCausal(const QuantConfig &base, bool packed_kv)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 4242);
    QuantConfig qc = base;
    qc.kv_packed = packed_kv;
    QuantSession qs_slab(qc);
    QuantSession qs_paged(qc);
    QuantSession qs_plain(base);

    Rng rng(99);
    std::vector<Request> reqs;
    for (int64_t r = 0; r < 8; ++r) {
        Request req;
        // Prompts straddle page boundaries (page_size 4 below).
        req.prompt = makePrompt(rng, cfg.vocab, 3 + r * 2);
        req.max_new_tokens = 9 - r % 4;
        req.eos = Vocab::kEos;
        if (r % 2 == 1) {
            req.sampling.temperature = 0.8f;
            req.sampling.top_k = 8;
            req.sampling.seed = 500 + static_cast<uint64_t>(r);
        }
        reqs.push_back(req);
    }

    EngineConfig slab_ec{3, 32};
    ServeEngine slab(model, qs_slab, slab_ec);

    EngineConfig paged_ec{3, 32};
    paged_ec.paged = true;
    paged_ec.page_size = 4;
    paged_ec.prefill_chunk = 5; // deliberately != page_size
    ServeEngine paged(model, qs_paged, paged_ec);
    ASSERT_NE(nullptr, paged.pagedPool());
    EXPECT_EQ(packed_kv, paged.kvPacked());

    std::vector<std::shared_future<RequestResult>> slab_futs, paged_futs;
    for (size_t r = 0; r < reqs.size(); ++r) {
        slab_futs.push_back(slab.submit(reqs[r]));
        paged_futs.push_back(paged.submit(reqs[r]));
        if (r % 3 == 1) { // interleave admissions with decode steps
            slab.step();
            paged.step();
        }
    }
    slab.runUntilIdle();
    paged.runUntilIdle();

    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestResult sr = slab_futs[r].get();
        const RequestResult pr = paged_futs[r].get();
        ASSERT_EQ(RequestStatus::kOk, sr.status) << base.name;
        ASSERT_EQ(RequestStatus::kOk, pr.status) << base.name;
        EXPECT_EQ(sr.tokens, pr.tokens)
            << base.name << (packed_kv ? " packed" : " fp32")
            << " request " << r;
        EXPECT_EQ(static_cast<int64_t>(reqs[r].prompt.size()),
                  pr.prompt_tokens);
        EXPECT_LE(pr.ttft_ms, pr.latency_ms);
        const auto want =
            soloCausal(model, qs_plain, reqs[r].prompt,
                       reqs[r].max_new_tokens, reqs[r].eos,
                       reqs[r].sampling);
        EXPECT_EQ(want, pr.tokens) << base.name << " request " << r;
    }
    EXPECT_GT(paged.metrics().prefill_tokens_computed, 0);
}

TEST(PagedKvEngine, CausalTokensBitIdenticalToSlabFp32)
{
    expectPagedMatchesSlabCausal(QuantConfig::posit8(), false);
}

TEST(PagedKvEngine, CausalTokensBitIdenticalToSlabPacked)
{
    expectPagedMatchesSlabCausal(QuantConfig::posit8(), true);
    expectPagedMatchesSlabCausal(QuantConfig::fp8(), true);
}

TEST(PagedKvEngine, Seq2SeqTokensBitIdenticalToSlab)
{
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    const int64_t B = 5, S = 12;
    const Seq2SeqTask task(cfg.vocab, S, 8);
    Rng rng(77);
    const Seq2SeqBatch batch = task.sample(rng, B);

    for (const bool packed_kv : {false, true}) {
        QuantConfig qc = QuantConfig::posit8();
        qc.kv_packed = packed_kv;
        Seq2Seq model(cfg, 999);
        QuantSession qs_slab(qc);
        QuantSession qs_paged(qc);

        EngineConfig slab_ec{2, 24};
        slab_ec.cross_capacity = S;
        ServeEngine slab(model, qs_slab, slab_ec);

        EngineConfig paged_ec{2, 24};
        paged_ec.cross_capacity = S;
        paged_ec.paged = true;
        paged_ec.page_size = 4;
        ServeEngine paged(model, qs_paged, paged_ec);

        std::vector<std::shared_future<RequestResult>> sf, pf;
        for (int64_t b = 0; b < B; ++b) {
            Request req;
            req.prompt.assign(batch.src.begin() + b * S,
                              batch.src.begin() + (b + 1) * S);
            req.src_pad.assign(batch.src_pad.begin() + b * S,
                               batch.src_pad.begin() + (b + 1) * S);
            req.max_new_tokens = 10;
            req.eos = Vocab::kEos;
            req.bos = Vocab::kBos;
            sf.push_back(slab.submit(req));
            pf.push_back(paged.submit(req));
        }
        slab.runUntilIdle();
        paged.runUntilIdle();
        for (int64_t b = 0; b < B; ++b) {
            const RequestResult sr = sf[static_cast<size_t>(b)].get();
            const RequestResult pr = pf[static_cast<size_t>(b)].get();
            ASSERT_EQ(RequestStatus::kOk, sr.status);
            ASSERT_EQ(RequestStatus::kOk, pr.status);
            EXPECT_EQ(sr.tokens, pr.tokens)
                << (packed_kv ? "packed" : "fp32") << " request " << b;
        }
    }
}

TEST(PagedKvEngine, SharedPrefixReuseSkipsPrefillAndStaysIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 31337);
    QuantSession qs(QuantConfig::posit8());
    QuantSession qs_plain(QuantConfig::posit8());

    EngineConfig ec{4, 48};
    ec.paged = true;
    ec.page_size = 4;
    ServeEngine engine(model, qs, ec);

    Rng rng(5);
    const std::vector<int32_t> shared = makePrompt(rng, cfg.vocab, 14);
    std::vector<Request> reqs;
    for (int r = 0; r < 4; ++r) {
        Request req;
        req.prompt = shared;
        const auto tail = makePrompt(rng, cfg.vocab, 2 + r);
        req.prompt.insert(req.prompt.end(), tail.begin(), tail.end());
        req.max_new_tokens = 6;
        req.eos = Vocab::kEos;
        reqs.push_back(req);
    }

    // Sequential: each follower finds the predecessors' donated pages.
    std::vector<RequestResult> results;
    for (const Request &req : reqs) {
        auto fut = engine.submit(req);
        engine.runUntilIdle();
        results.push_back(fut.get());
    }

    const PagedKVPool *pool = engine.pagedPool();
    ASSERT_NE(nullptr, pool);
    EXPECT_GT(pool->hits(), 0);
    EXPECT_GT(pool->reusedRows(), 0);
    EXPECT_EQ(0, results[0].prefix_reused_tokens) << "cold cache";
    for (size_t r = 0; r < results.size(); ++r) {
        ASSERT_EQ(RequestStatus::kOk, results[r].status);
        EXPECT_EQ(static_cast<int64_t>(reqs[r].prompt.size()),
                  results[r].prompt_tokens)
            << "prompt_tokens counts the full prompt on cache hits";
        if (r > 0) {
            // The 14 shared tokens cover 3 full pages (12 rows) plus
            // 2 rows of COW material.
            EXPECT_GE(results[r].prefix_reused_tokens, 12)
                << "request " << r;
        }
        const auto want = soloCausal(model, qs_plain, reqs[r].prompt,
                                     reqs[r].max_new_tokens,
                                     reqs[r].eos, reqs[r].sampling);
        EXPECT_EQ(want, results[r].tokens)
            << "cache-reused rows must be bit-identical, request " << r;
    }
    EXPECT_EQ(pool->lookups(), engine.metrics().prefix_lookups);
    EXPECT_GT(engine.metrics().prefix_hits, 0);
}

TEST(PagedKvEngine, DirtyPageReuseStaysBitIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 2024);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);
    QuantSession qs_plain(QuantConfig::posit8());

    // Tiny arena, no prefix cache: every round recycles pages still
    // holding the predecessor's codes. Page tables alone define
    // visibility, so the stale bytes must never leak into a decode.
    EngineConfig ec{1, 24};
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 6;
    ec.prefix_cache = false;
    ServeEngine engine(model, qs, ec);

    Rng rng(8);
    for (int round = 0; round < 4; ++round) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 4 + round * 3);
        req.max_new_tokens = 6;
        req.eos = Vocab::kEos;
        auto fut = engine.submit(req);
        engine.runUntilIdle();
        const RequestResult res = fut.get();
        ASSERT_EQ(RequestStatus::kOk, res.status);
        EXPECT_EQ(0, res.prefix_reused_tokens);
        const auto want = soloCausal(model, qs_plain, req.prompt,
                                     req.max_new_tokens, req.eos,
                                     req.sampling);
        EXPECT_EQ(want, res.tokens) << "round " << round;
    }
    EXPECT_EQ(0, engine.metrics().prefix_hits);
}

TEST(PagedKvEngine, OutOfPagesBackpressureParksFifoAndPreempts)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 11);
    QuantSession qs(QuantConfig::posit8());

    // 3 pages of 4 rows = 12 KV rows total; every request wants
    // 6 prompt + 20 generated rows, so none can finish and each must
    // be preempted (typed truncation) to let the next one in.
    EngineConfig ec{1, 64};
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 3;
    ec.prefill_chunk = 8; // whole prompt in one chunk: 2 pages + 1
                          // headroom = the entire arena per request
    ec.prefix_cache = false;
    ServeEngine engine(model, qs, ec);

    Rng rng(3);
    std::vector<std::shared_future<RequestResult>> futs;
    std::vector<Request> reqs;
    for (int r = 0; r < 3; ++r) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 6);
        req.max_new_tokens = 20;
        req.eos = -1;
        reqs.push_back(req);
        futs.push_back(engine.submit(req));
    }

    engine.step();
    EXPECT_EQ(1u, engine.activeCount())
        << "page budget admits one request at a time";
    EXPECT_EQ(2u, engine.pendingCount()) << "backpressure keeps FIFO";

    engine.runUntilIdle();
    for (size_t r = 0; r < futs.size(); ++r) {
        const RequestResult res = futs[r].get();
        EXPECT_EQ(RequestStatus::kCapacityExceeded, res.status)
            << "request " << r;
        // 12 cacheable rows - 6 prompt rows = 6 decode rows, plus the
        // first token sampled when prefill completed.
        EXPECT_EQ(7u, res.tokens.size()) << "request " << r;
    }
    EXPECT_EQ(3, engine.metrics().preempted);
    EXPECT_EQ(3, engine.metrics().completed);
    EXPECT_LE(engine.metrics().pages_resident_peak, 3);
}

TEST(PagedKvEngine, SlabEquivalentRamDefaultsAndFootprint)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 7);
    QuantSession qs_a(QuantConfig::posit8());
    QuantSession qs_b(QuantConfig::posit8());

    EngineConfig slab_ec{4, 32};
    ServeEngine slab(model, qs_a, slab_ec);

    EngineConfig paged_ec{4, 32};
    paged_ec.paged = true;
    paged_ec.page_size = 16;
    ServeEngine paged(model, qs_b, paged_ec);

    // Defaults derive the slab-equivalent arena: same resident bytes,
    // same per-sequence worst case.
    EXPECT_EQ(slab.residentKVBytes(), paged.residentKVBytes());
    EXPECT_EQ(slab.kvBytesPerSlot(), paged.kvBytesPerSlot());
    EXPECT_EQ(8, paged.pagedPool()->pageCount());
}

} // namespace
} // namespace qt8
