/**
 * @file
 * Multi-threaded chaos soak for the serving engine (DESIGN.md §10).
 *
 * Several producer threads hammer submit() — with deadlines, a
 * canceller, and a metrics watcher racing alongside — while the owned
 * scheduler thread decodes under a seeded fault injector that flips
 * bits in cached KV panels, poisons logits rows with NaN, fails pool
 * acquisitions, and stalls steps. The robustness contract under test:
 *
 *  1. liveness — every submitted request resolves with a definite typed
 *     status (no hang, no assert, no abort), and after a drain-stop the
 *     engine is fully quiesced (no active slots, empty queue, every
 *     pool slot back on the free list);
 *  2. isolation — requests the injector never touched that finish kOk
 *     emit tokens bit-identical to a solo cached decode of the same
 *     prompt, no matter what happened to their batch neighbours.
 *
 * The whole schedule is seeded; runs shrink under ThreadSanitizer
 * (which also makes this the data-race gate for the engine).
 */
#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/fault.h"
#include "serve/sampler.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QT8_TSAN 1
#endif
#endif
#if !defined(QT8_TSAN) && defined(__SANITIZE_THREAD__)
#define QT8_TSAN 1
#endif

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::FaultConfig;
using serve::FaultInjector;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;
using serve::StopMode;

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "serve-soak-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

/// One producer-side record of a submitted request.
struct Submitted
{
    Request req;
    uint64_t id = 0;
    std::shared_future<RequestResult> fut;
    bool cancelled = false; ///< The canceller targeted this id.
};

TEST(ServeSoak, EveryRequestResolvesAndHealthyOnesStayBitIdentical)
{
#ifdef QT8_TSAN
    const int n_producers = 4, per_producer = 4;
    const double delay_ms = 0.2;
#else
    const int n_producers = 4, per_producer = 12;
    const double delay_ms = 0.5;
#endif

    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 20260806);
    QuantSession qs(QuantConfig::fp32());

    FaultConfig fc;
    fc.seed = 7;
    fc.nan_logit_rate = 0.03;    // poisons ~1 row / 33 steps
    fc.kv_bitflip_rate = 0.08;   // corrupts a random active slot
    fc.acquire_fail_rate = 0.10; // admission stalls, work not lost
    fc.delay_rate = 0.10;        // widen race windows
    fc.delay_ms = delay_ms;
    FaultInjector fault(fc);

    EngineConfig ec{/*n_slots=*/3, /*slot_capacity=*/32};
    ec.max_queue_depth = 6; // small enough to see kRejectedQueueFull
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);
    engine.start();

    // Producers: ragged prompts/budgets, occasional tight deadlines,
    // occasional junk requests that must reject typed.
    std::vector<std::vector<Submitted>> by_producer(
        static_cast<size_t>(n_producers));
    std::vector<std::thread> producers;
    for (int t = 0; t < n_producers; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(1000u + static_cast<uint64_t>(t));
            auto &mine = by_producer[static_cast<size_t>(t)];
            for (int r = 0; r < per_producer; ++r) {
                Submitted s;
                s.req.prompt =
                    makePrompt(rng, cfg.vocab, 2 + rng.randint(5));
                s.req.max_new_tokens = 3 + rng.randint(8);
                s.req.eos = Vocab::kEos;
                s.req.sampling.seed =
                    static_cast<uint64_t>(t) * 100u +
                    static_cast<uint64_t>(r);
                if (rng.randint(8) == 0)
                    s.req.timeout_ms = 1.0 + rng.uniform() * 3.0;
                if (rng.randint(10) == 0)
                    s.req.prompt.clear(); // must reject, not crash
                s.fut = engine.submit(s.req, &s.id);
                mine.push_back(std::move(s));
                if (rng.randint(3) == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    // Canceller: target a deterministic subset of just-submitted ids
    // while the engine is still chewing on them.
    Rng crng(77);
    for (auto &mine : by_producer)
        for (auto &s : mine)
            if (crng.randint(6) == 0)
                s.cancelled = engine.cancel(s.id);

    // Watcher: concurrent snapshot/counter reads must be safe and sane.
    std::atomic<bool> watch{true};
    std::thread watcher([&] {
        while (watch.load()) {
            const auto m = engine.metricsSnapshot();
            EXPECT_GE(m.completed, 0);
            EXPECT_LE(engine.activeCount(),
                      static_cast<size_t>(ec.n_slots));
            EXPECT_GE(engine.freeSlots(), 0);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    engine.stop(StopMode::kDrain);
    watch.store(false);
    watcher.join();

    // Liveness: everything resolved, the engine fully quiesced.
    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(0u, engine.pendingCount());
    EXPECT_EQ(ec.n_slots, engine.freeSlots());

    const auto m = engine.metricsSnapshot();
    int64_t resolved = 0, healthy_ok = 0;
    for (const auto &mine : by_producer) {
        for (const auto &s : mine) {
            ASSERT_EQ(std::future_status::ready,
                      s.fut.wait_for(std::chrono::seconds(0)))
                << "request " << s.id << " never resolved";
            const RequestResult res = s.fut.get();
            ++resolved;
            switch (res.status) {
            case RequestStatus::kOk:
            case RequestStatus::kCapacityExceeded:
            case RequestStatus::kCancelled:
            case RequestStatus::kDeadlineExceeded:
            case RequestStatus::kNumericFault:
            case RequestStatus::kRejectedQueueFull:
            case RequestStatus::kRejectedInvalid:
                break;
            default:
                FAIL() << "request " << s.id
                       << " resolved with an unexpected status";
            }
            if (s.req.prompt.empty()) {
                EXPECT_EQ(RequestStatus::kRejectedInvalid, res.status);
            }

            // Isolation: untouched requests that ran to completion are
            // bit-identical to a solo decode, chaos notwithstanding.
            if (res.status == RequestStatus::kOk &&
                !fault.wasFaulted(s.id)) {
                ++healthy_ok;
                EXPECT_EQ(soloCausal(model, qs, s.req.prompt,
                                     s.req.max_new_tokens, s.req.eos,
                                     s.req.sampling),
                          res.tokens)
                    << "request " << s.id;
            }
        }
    }
    EXPECT_EQ(n_producers * per_producer, resolved);
    // The accounting closes: every submission is a retirement or a
    // rejection, exactly once.
    EXPECT_EQ(resolved,
              m.completed + m.rejected + m.rejected_invalid);
    // The chaos actually happened, and plenty of requests rode it out.
    const auto fs = fault.stats();
    EXPECT_GT(fs.nan_injected + fs.bits_flipped + fs.acquire_fails +
                  fs.delays,
              0);
    EXPECT_GT(healthy_ok, 0);

    // The engine is reusable after the chaos: a follow-up request
    // resolves normally (the injector is still attached, so it may
    // legitimately draw a numeric fault — but nothing else).
    engine.start();
    Rng rng(9);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 5;
    uint64_t follow_id = 0;
    auto fut = engine.submit(req, &follow_id);
    engine.stop(StopMode::kDrain);
    const RequestResult follow = fut.get();
    if (fault.wasFaulted(follow_id))
        // A bit flip only perturbs numerics (kOk, different tokens);
        // a NaN injection retires the request typed.
        EXPECT_TRUE(follow.status == RequestStatus::kOk ||
                    follow.status == RequestStatus::kNumericFault);
    else
        EXPECT_EQ(RequestStatus::kOk, follow.status);
}

TEST(ServeSoak, PagedEnginePageFaultChaosKeepsIsolation)
{
#ifdef QT8_TSAN
    const int n_producers = 3, per_producer = 4;
    const double delay_ms = 0.2;
#else
    const int n_producers = 3, per_producer = 10;
    const double delay_ms = 0.5;
#endif

    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 20260807);
    QuantSession qs(QuantConfig::posit8());

    FaultConfig fc;
    fc.seed = 13;
    fc.nan_logit_rate = 0.02;
    fc.page_bitflip_rate = 0.10;     // corrupts a random mapped page
    fc.page_acquire_fail_rate = 0.10; // stalls chunked prefill / decode
    fc.delay_rate = 0.10;
    fc.delay_ms = delay_ms;
    FaultInjector fault(fc);

    EngineConfig ec{/*n_slots=*/3, /*slot_capacity=*/32};
    ec.paged = true;
    ec.page_size = 4;
    ec.prefill_chunk = 6;
    ec.max_active = 3;
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);
    engine.start();

    // Half the requests share a long prefix, so page-granularity
    // faults land on *shared* prefix-cache pages too — the injector
    // must attribute every sharer, or isolation checks below misfire.
    Rng seed_rng(21);
    const std::vector<int32_t> shared =
        makePrompt(seed_rng, cfg.vocab, 10);

    std::vector<std::vector<Submitted>> by_producer(
        static_cast<size_t>(n_producers));
    std::vector<std::thread> producers;
    for (int t = 0; t < n_producers; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(3000u + static_cast<uint64_t>(t));
            auto &mine = by_producer[static_cast<size_t>(t)];
            for (int r = 0; r < per_producer; ++r) {
                Submitted s;
                if (rng.randint(2) == 0) {
                    s.req.prompt = shared;
                    const auto tail =
                        makePrompt(rng, cfg.vocab, 1 + rng.randint(4));
                    s.req.prompt.insert(s.req.prompt.end(),
                                        tail.begin(), tail.end());
                } else {
                    s.req.prompt =
                        makePrompt(rng, cfg.vocab, 2 + rng.randint(7));
                }
                s.req.max_new_tokens = 3 + rng.randint(8);
                s.req.eos = Vocab::kEos;
                s.req.sampling.seed =
                    static_cast<uint64_t>(t) * 700u +
                    static_cast<uint64_t>(r);
                s.fut = engine.submit(s.req, &s.id);
                mine.push_back(std::move(s));
                if (rng.randint(3) == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }
        });
    }
    for (auto &p : producers)
        p.join();

    engine.stop(StopMode::kDrain);

    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(0u, engine.pendingCount());

    int64_t resolved = 0, healthy_ok = 0;
    for (const auto &mine : by_producer) {
        for (const auto &s : mine) {
            ASSERT_EQ(std::future_status::ready,
                      s.fut.wait_for(std::chrono::seconds(0)))
                << "request " << s.id << " never resolved";
            const RequestResult res = s.fut.get();
            ++resolved;
            ASSERT_TRUE(res.status == RequestStatus::kOk ||
                        res.status == RequestStatus::kCapacityExceeded ||
                        res.status == RequestStatus::kNumericFault)
                << "request " << s.id << ": "
                << serve::toString(res.status);
            // Isolation under page faults: untouched requests finish
            // bit-identically even when a *shared* page their
            // neighbour mapped was flipped (sharer attribution) or a
            // poisoned prefill was donated (it must not have been).
            if (res.status == RequestStatus::kOk &&
                !fault.wasFaulted(s.id)) {
                ++healthy_ok;
                EXPECT_EQ(soloCausal(model, qs, s.req.prompt,
                                     s.req.max_new_tokens, s.req.eos,
                                     s.req.sampling),
                          res.tokens)
                    << "request " << s.id;
            }
        }
    }
    EXPECT_EQ(n_producers * per_producer, resolved);
    EXPECT_GT(healthy_ok, 0);

    const auto fs = fault.stats();
    EXPECT_GT(fs.page_bits_flipped + fs.page_acquire_fails, 0)
        << "the page-level chaos must actually fire";

    // Quiesced pool: every page back on the free list or parked in
    // the (healthy remainder of the) prefix cache.
    const auto *pool = engine.pagedPool();
    ASSERT_NE(nullptr, pool);
    EXPECT_EQ(pool->pageCount(),
              pool->freePages() + pool->cachedPages());
}

TEST(ServeSoak, SpillIoChaosKeepsSessionsTypedAndBitIdentical)
{
#ifdef QT8_TSAN
    const int n_producers = 3, convos = 2;
    const double delay_ms = 0.2;
#else
    const int n_producers = 4, convos = 4;
    const double delay_ms = 0.4;
#endif

    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 20260808);
    QuantSession qs(QuantConfig::posit8());

    // IO chaos on every spill edge, plus a little numeric chaos so the
    // two fault families prove independent: IO faults may only move a
    // session between restored/recomputed/resident — never its tokens.
    FaultConfig fc;
    fc.seed = 29;
    fc.nan_logit_rate = 0.01;
    fc.spill_open_fail_rate = 0.20;
    fc.spill_enospc_rate = 0.20;
    fc.spill_torn_write_rate = 0.25;
    fc.spill_corrupt_rate = 0.25;
    fc.spill_short_read_rate = 0.30;
    fc.delay_rate = 0.10;
    fc.delay_ms = delay_ms;
    FaultInjector fault(fc);

    const std::string spill_dir = "serve_soak_spill_chaos";
    std::filesystem::remove_all(spill_dir);

    EngineConfig ec{/*n_slots=*/2, /*slot_capacity=*/32};
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 20;
    ec.spill_dir = spill_dir;
    ec.spill_low_pages = 21; // > n_pages: sweep every idle session,
                             // maximizing trips through the IO faults
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);
    engine.start();

    struct Turn
    {
        Request req;
        uint64_t id = 0;
        RequestResult res;
    };
    std::vector<std::vector<Turn>> by_producer(
        static_cast<size_t>(n_producers));
    std::vector<std::thread> producers;
    for (int t = 0; t < n_producers; ++t) {
        producers.emplace_back([&, t] {
            Rng rng(5000u + static_cast<uint64_t>(t));
            auto &mine = by_producer[static_cast<size_t>(t)];
            for (int r = 0; r < convos; ++r) {
                const uint64_t sid =
                    static_cast<uint64_t>(t) * 100u +
                    static_cast<uint64_t>(r) + 1u;
                // Turn 1 of the conversation.
                Turn t1;
                t1.req.prompt =
                    makePrompt(rng, cfg.vocab, 4 + rng.randint(5));
                t1.req.max_new_tokens = 4 + rng.randint(5);
                t1.req.eos = -1;
                t1.req.session_id = sid;
                auto f1 = engine.submit(t1.req, &t1.id);
                t1.res = f1.get(); // wait: turn 2 extends this result

                // Turn 2 extends turn 1's history; whatever the spill
                // tier did meanwhile, the tokens may not change.
                Turn t2;
                t2.req.prompt = t1.req.prompt;
                t2.req.prompt.insert(t2.req.prompt.end(),
                                     t1.res.tokens.begin(),
                                     t1.res.tokens.end());
                const auto extra =
                    makePrompt(rng, cfg.vocab, 1 + rng.randint(3));
                t2.req.prompt.insert(t2.req.prompt.end(), extra.begin(),
                                     extra.end());
                t2.req.max_new_tokens = 3 + rng.randint(4);
                t2.req.eos = -1;
                t2.req.session_id = sid;
                auto f2 = engine.submit(t2.req, &t2.id);
                t2.res = f2.get();
                mine.push_back(std::move(t1));
                mine.push_back(std::move(t2));
            }
        });
    }
    for (auto &p : producers)
        p.join();
    engine.stop(StopMode::kDrain);

    int64_t resolved = 0, healthy_ok = 0;
    int64_t session_turns = 0;
    for (const auto &mine : by_producer) {
        for (const auto &t : mine) {
            ++resolved;
            ASSERT_TRUE(t.res.status == RequestStatus::kOk ||
                        t.res.status == RequestStatus::kCapacityExceeded ||
                        t.res.status == RequestStatus::kNumericFault)
                << "request " << t.id << ": "
                << serve::toString(t.res.status);
            if (t.res.session_kv != serve::SessionKVSource::kNone)
                ++session_turns;
            // IO faults never touch numerics: every kOk request whose
            // numerics the injector left alone is bit-identical to a
            // solo decode of its full prompt, regardless of whether its
            // history was resident, restored, or recomputed.
            if (t.res.status == RequestStatus::kOk &&
                !fault.wasFaulted(t.id)) {
                ++healthy_ok;
                EXPECT_EQ(soloCausal(model, qs, t.req.prompt,
                                     t.req.max_new_tokens, t.req.eos,
                                     t.req.sampling),
                          t.res.tokens)
                    << "request " << t.id << " (session source "
                    << serve::toString(t.res.session_kv) << ")";
            }
        }
    }
    EXPECT_EQ(n_producers * convos * 2, resolved);
    EXPECT_GT(healthy_ok, 0);
    EXPECT_GT(session_turns, 0) << "some turn-2s must hit a session";

    const auto fs = fault.stats();
    EXPECT_GT(fs.spill_open_fails + fs.spill_enospc +
                  fs.spill_torn_writes + fs.spill_corruptions +
                  fs.spill_short_reads,
              0)
        << "the IO chaos must actually fire";

    // Quiesce: dropping every idle session returns its pages, so the
    // whole arena is free list + prefix cache — nothing leaked through
    // any spill/restore/recompute edge.
    engine.releaseSessions();
    const auto *pool = engine.pagedPool();
    ASSERT_NE(nullptr, pool);
    EXPECT_EQ(pool->pageCount(),
              pool->freePages() + pool->cachedPages());
    std::filesystem::remove_all(spill_dir);
}

TEST(ServeSoak, MultiTenantPreemptionChaosKeepsEveryClassTypedAndClean)
{
#ifdef QT8_TSAN
    const int per_class = 4;
    const double delay_ms = 0.2;
#else
    const int per_class = 10;
    const double delay_ms = 0.4;
#endif

    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 20260809);
    QuantSession qs(QuantConfig::posit8());

    // Three fault families at once: forced scheduler preemptions (the
    // checkpoint-spill-resume path under churn), IO faults on every
    // spill edge (checkpoints degrade to recompute), and NaN logits
    // (typed numeric retirement) — while three class producers race
    // the fair-share scheduler.
    FaultConfig fc;
    fc.seed = 43;
    fc.preempt_rate = 0.10;
    fc.nan_logit_rate = 0.02;
    fc.spill_open_fail_rate = 0.15;
    fc.spill_corrupt_rate = 0.15;
    fc.delay_rate = 0.10;
    fc.delay_ms = delay_ms;
    FaultInjector fault(fc);

    const std::string spill_dir = "serve_soak_mt_chaos";
    std::filesystem::remove_all(spill_dir);

    EngineConfig ec{/*n_slots=*/3, /*slot_capacity=*/32};
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 14; // tight enough for organic pressure preemptions
    ec.spill_dir = spill_dir;
    ec.fault = &fault; // sched defaults: fair share, preemption on
    ServeEngine engine(model, qs, ec);
    engine.start();

    const std::array<serve::PriorityClass, 3> classes{
        serve::PriorityClass::kInteractive,
        serve::PriorityClass::kStandard,
        serve::PriorityClass::kBatch,
    };
    std::vector<std::vector<Submitted>> by_class(classes.size());
    std::vector<std::thread> producers;
    for (size_t t = 0; t < classes.size(); ++t) {
        producers.emplace_back([&, t] {
            Rng rng(7000u + static_cast<uint64_t>(t));
            auto &mine = by_class[t];
            for (int r = 0; r < per_class; ++r) {
                Submitted s;
                s.req.prompt =
                    makePrompt(rng, cfg.vocab, 3 + rng.randint(6));
                s.req.max_new_tokens = 3 + rng.randint(7);
                s.req.eos = Vocab::kEos;
                s.req.priority_class = classes[t];
                s.req.tenant_id = static_cast<uint64_t>(t) + 1u;
                s.req.sampling.seed =
                    static_cast<uint64_t>(t) * 900u +
                    static_cast<uint64_t>(r);
                s.fut = engine.submit(s.req, &s.id);
                mine.push_back(std::move(s));
                if (rng.randint(3) == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
            }
        });
    }
    for (auto &p : producers)
        p.join();
    engine.stop(StopMode::kDrain);

    // Liveness: every class's every request resolved typed; the
    // engine quiesced.
    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(0u, engine.pendingCount());

    int64_t resolved = 0, healthy_ok = 0;
    for (const auto &mine : by_class) {
        for (const auto &s : mine) {
            ASSERT_EQ(std::future_status::ready,
                      s.fut.wait_for(std::chrono::seconds(0)))
                << "request " << s.id << " never resolved";
            const RequestResult res = s.fut.get();
            ++resolved;
            ASSERT_TRUE(res.status == RequestStatus::kOk ||
                        res.status == RequestStatus::kCapacityExceeded ||
                        res.status == RequestStatus::kNumericFault)
                << "request " << s.id << ": "
                << serve::toString(res.status);
            // Preemption (forced or organic) must be bit-invisible:
            // any kOk request the *numeric* chaos never touched is
            // identical to a solo decode, however many times its KV
            // was checkpointed, spilled, restored, or recomputed.
            if (res.status == RequestStatus::kOk &&
                !fault.wasFaulted(s.id)) {
                ++healthy_ok;
                EXPECT_EQ(soloCausal(model, qs, s.req.prompt,
                                     s.req.max_new_tokens, s.req.eos,
                                     s.req.sampling),
                          res.tokens)
                    << "request " << s.id;
            }
        }
    }
    EXPECT_EQ(static_cast<int64_t>(classes.size()) * per_class,
              resolved);
    EXPECT_GT(healthy_ok, 0);

    // The chaos fired: forced preemptions happened (the per-class
    // metrics must agree), and at least one spill edge faulted.
    const auto fs = fault.stats();
    const auto m = engine.metricsSnapshot();
    EXPECT_GT(fs.forced_preempts, 0) << "preempt chaos never fired";
    EXPECT_GE(m.sched_preemptions, fs.forced_preempts);
    EXPECT_LE(m.preempt_resumes, m.sched_preemptions);

    // Quiesce: no page leaked through any preempt/spill/fault edge,
    // and no orphaned checkpoint file survives the drain.
    engine.releaseSessions();
    const auto *pool = engine.pagedPool();
    ASSERT_NE(nullptr, pool);
    EXPECT_EQ(pool->pageCount(),
              pool->freePages() + pool->cachedPages());
    int64_t files = 0;
    if (std::filesystem::exists(spill_dir))
        for (const auto &e :
             std::filesystem::directory_iterator(spill_dir))
            files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(0, files) << "orphaned spill files after drain";
    std::filesystem::remove_all(spill_dir);
}

} // namespace
} // namespace qt8
