/**
 * @file
 * Tiered KV session storage contract tests (DESIGN.md §15).
 *
 * Store level: a spill is the exact page-panel bytes (packed codes or
 * fp32 rows), so restore is byte-for-byte identical; every damaged
 * file — truncated, corrupted, wrong geometry, missing, trailing
 * garbage — comes back as the right typed SpillStatus, and every
 * injected IO fault (open failure, ENOSPC, torn write, byte flip,
 * short read) lands on its typed edge.
 *
 * Engine level: a session resumed from RAM or restored from disk
 * decodes bit-identically to the never-spilled solo oracle; a dead
 * spill degrades to recompute with the same tokens and typed
 * accounting (kRecomputed + spill_failures); write-side failures keep
 * the session resident; hard memory pressure spills (disk tier) or
 * drops (RAM only) idle sessions instead of wedging admission; and a
 * restored session's pages are re-donated to the prefix cache.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/fault.h"
#include "serve/kv_spill.h"
#include "serve/paged_kv.h"
#include "serve/sampler.h"

namespace fs = std::filesystem;

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::FaultConfig;
using serve::FaultInjector;
using serve::KVSpillStore;
using serve::PagedKVPool;
using serve::PagedSeq;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;
using serve::SessionKVSource;
using serve::SpillStatus;

/// Unique cwd-relative scratch dir (ctest runs tests in the build
/// tree), wiped on both ends so reruns start clean.
struct ScopedDir
{
    explicit ScopedDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }
    ~ScopedDir() { fs::remove_all(path); }
    std::string path;
};

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "kv-spill-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached decode — the never-spilled ground truth.
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

RequestResult
runTurn(ServeEngine &eng, const std::vector<int32_t> &prompt,
        uint64_t sid, int64_t max_new)
{
    Request req;
    req.prompt = prompt;
    req.max_new_tokens = max_new;
    req.eos = -1;
    req.session_id = sid;
    auto fut = eng.submit(req);
    eng.runUntilIdle();
    return fut.get();
}

// --- Store level -----------------------------------------------------

PagedKVPool::Config
tinyPoolConfig(int64_t n_pages, int64_t page_size,
               const Quantizer *packed_fmt)
{
    PagedKVPool::Config pc;
    pc.n_pages = n_pages;
    pc.page_size = page_size;
    pc.d_model = 8;
    pc.n_self_layers = 2;
    pc.packed_fmt = packed_fmt;
    return pc;
}

/// Write @p rows distinct quantized rows through @p s's page table.
void
fillRows(PagedKVPool &pool, const PagedSeq &s, int64_t rows, float salt)
{
    const int64_t ps = pool.pageSize();
    for (auto &layer : pool.selfLayers()) {
        std::vector<float> k(static_cast<size_t>(layer.d_model));
        std::vector<float> v(static_cast<size_t>(layer.d_model));
        for (int64_t r = 0; r < rows; ++r) {
            for (int64_t j = 0; j < layer.d_model; ++j) {
                k[static_cast<size_t>(j)] =
                    salt + static_cast<float>(r) * 0.25f +
                    static_cast<float>(j) * 0.125f;
                v[static_cast<size_t>(j)] =
                    -salt - static_cast<float>(r) * 0.5f -
                    static_cast<float>(j) * 0.0625f;
            }
            layer.writeRow(s.pages[static_cast<size_t>(r / ps)],
                           r % ps, k.data(), v.data());
        }
    }
}

/// Payload blobs exactly as the spill file orders them: per logical
/// page, per layer, K then V, valid rows only.
std::vector<std::vector<uint8_t>>
snapshotPayload(PagedKVPool &pool, const std::vector<int32_t> &pages,
                int64_t rows)
{
    std::vector<std::vector<uint8_t>> blobs;
    const int64_t ps = pool.pageSize();
    const int64_t n_lpages = PagedKVPool::pagesFor(rows, ps);
    for (int64_t j = 0; j < n_lpages; ++j) {
        const int64_t rows_in = std::min(ps, rows - j * ps);
        for (auto &layer : pool.selfLayers()) {
            const size_t elem =
                layer.packed() ? 1 : sizeof(float);
            const size_t nbytes =
                static_cast<size_t>(rows_in * layer.d_model) * elem;
            const size_t off =
                static_cast<size_t>(pages[static_cast<size_t>(j)]) *
                static_cast<size_t>(ps * layer.d_model) * elem;
            const uint8_t *kb =
                layer.packed()
                    ? layer.k_codes.data()
                    : reinterpret_cast<const uint8_t *>(
                          layer.k.data());
            const uint8_t *vb =
                layer.packed()
                    ? layer.v_codes.data()
                    : reinterpret_cast<const uint8_t *>(
                          layer.v.data());
            blobs.emplace_back(kb + off, kb + off + nbytes);
            blobs.emplace_back(vb + off, vb + off + nbytes);
        }
    }
    return blobs;
}

void
expectSpillRestoreByteIdentical(const Quantizer *packed_fmt,
                                const std::string &dir)
{
    PagedKVPool pool(tinyPoolConfig(/*n_pages=*/8, /*page_size=*/4,
                                    packed_fmt));
    KVSpillStore store(KVSpillStore::Config{dir, nullptr});

    const int64_t rows = 10; // 2 full pages + a 2-row partial page
    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, rows));
    fillRows(pool, s, rows, 1.0f);
    const auto want = snapshotPayload(pool, s.pages, rows);

    ASSERT_EQ(SpillStatus::kOk,
              store.spill(42, s.pages, rows, pool.selfLayers()));
    EXPECT_TRUE(store.has(42));
    EXPECT_TRUE(fs::exists(store.pathFor(42)));
    EXPECT_GT(store.spilledBytes(), 0);
    pool.releaseSeq(s);

    // Fresh pages, deliberately dirtied with different rows: restore
    // must overwrite every valid byte (free pages are never scrubbed,
    // so this also models recycled-page reuse).
    PagedSeq t;
    ASSERT_TRUE(pool.ensureTail(t, rows));
    fillRows(pool, t, rows, 97.0f);
    ASSERT_EQ(SpillStatus::kOk,
              store.restore(42, t.pages, rows, pool.selfLayers()));
    EXPECT_EQ(want, snapshotPayload(pool, t.pages, rows))
        << (packed_fmt != nullptr ? "packed" : "fp32");
    EXPECT_GT(store.restoredBytes(), 0);

    store.drop(42);
    EXPECT_FALSE(store.has(42));
    EXPECT_FALSE(fs::exists(store.pathFor(42)));
    pool.releaseSeq(t);
}

TEST(KvSpillStore, SpillRestoreByteIdenticalFp32)
{
    ScopedDir dir("kv_spill_test_store_fp32");
    expectSpillRestoreByteIdentical(nullptr, dir.path);
}

TEST(KvSpillStore, SpillRestoreByteIdenticalPacked)
{
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    const Quantizer *fmt = qc.kvPackedFormat();
    ASSERT_NE(nullptr, fmt);
    ScopedDir dir("kv_spill_test_store_packed");
    expectSpillRestoreByteIdentical(fmt, dir.path);
}

TEST(KvSpillStore, DamagedFilesComeBackAsTypedStatuses)
{
    ScopedDir dir("kv_spill_test_store_damage");
    PagedKVPool pool(tinyPoolConfig(8, 4, nullptr));
    KVSpillStore store(KVSpillStore::Config{dir.path, nullptr});

    const int64_t rows = 10;
    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, rows));
    fillRows(pool, s, rows, 2.0f);

    EXPECT_EQ(SpillStatus::kMissing,
              store.restore(42, s.pages, rows, pool.selfLayers()))
        << "no spill was ever written for this key";

    // Geometry mismatch: a restore asking for different rows than the
    // header recorded must refuse before touching any page.
    ASSERT_EQ(SpillStatus::kOk,
              store.spill(42, s.pages, rows, pool.selfLayers()));
    std::vector<int32_t> two_pages(s.pages.begin(), s.pages.begin() + 2);
    EXPECT_EQ(SpillStatus::kBadHeader,
              store.restore(42, two_pages, 8, pool.selfLayers()));

    const std::string path = store.pathFor(42);
    const auto full_size = fs::file_size(path);

    // Truncation (a real torn write) surfaces as a short read.
    fs::resize_file(path, full_size - 3);
    EXPECT_EQ(SpillStatus::kShortRead,
              store.restore(42, s.pages, rows, pool.selfLayers()));

    // A flipped byte fails its page CRC.
    ASSERT_EQ(SpillStatus::kOk,
              store.spill(42, s.pages, rows, pool.selfLayers()));
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(nullptr, f);
        std::fseek(f, 80, SEEK_SET); // past the 57-byte header
        const int c = std::fgetc(f);
        std::fseek(f, 80, SEEK_SET);
        std::fputc(c ^ 0x40, f);
        std::fclose(f);
    }
    EXPECT_EQ(SpillStatus::kCrcMismatch,
              store.restore(42, s.pages, rows, pool.selfLayers()));

    // Trailing garbage means the file is not what was written.
    ASSERT_EQ(SpillStatus::kOk,
              store.spill(42, s.pages, rows, pool.selfLayers()));
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        ASSERT_NE(nullptr, f);
        std::fputc(0x5A, f);
        std::fclose(f);
    }
    EXPECT_EQ(SpillStatus::kBadHeader,
              store.restore(42, s.pages, rows, pool.selfLayers()));
    pool.releaseSeq(s);
}

TEST(KvSpillStore, InjectedIoFaultsLandOnTheirTypedEdges)
{
    PagedKVPool pool(tinyPoolConfig(8, 4, nullptr));
    const int64_t rows = 10;
    PagedSeq s;
    ASSERT_TRUE(pool.ensureTail(s, rows));
    fillRows(pool, s, rows, 3.0f);

    struct Case
    {
        const char *name;
        FaultConfig fc;
        SpillStatus spill;   ///< Expected spill() outcome.
        SpillStatus restore; ///< Expected restore() outcome after it.
    };
    std::vector<Case> cases;
    {
        Case c;
        c.name = "open-fail";
        c.fc.spill_open_fail_rate = 1.0;
        c.spill = SpillStatus::kOpenFail;
        c.restore = SpillStatus::kOpenFail; // injected on both sides
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "enospc";
        c.fc.spill_enospc_rate = 1.0;
        c.spill = SpillStatus::kNoSpace;
        c.restore = SpillStatus::kMissing; // partial file deleted
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "torn-write";
        c.fc.spill_torn_write_rate = 1.0;
        c.spill = SpillStatus::kOk; // damage is silent at write time
        c.restore = SpillStatus::kShortRead;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "corrupt";
        c.fc.spill_corrupt_rate = 1.0;
        c.spill = SpillStatus::kOk;
        c.restore = SpillStatus::kCrcMismatch;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "short-read";
        c.fc.spill_short_read_rate = 1.0;
        c.spill = SpillStatus::kOk;
        c.restore = SpillStatus::kShortRead;
        cases.push_back(c);
    }

    for (auto &c : cases) {
        ScopedDir dir(std::string("kv_spill_test_fault_") + c.name);
        FaultInjector fi(c.fc);
        KVSpillStore store(KVSpillStore::Config{dir.path, &fi});
        EXPECT_EQ(c.spill,
                  store.spill(7, s.pages, rows, pool.selfLayers()))
            << c.name;
        if (c.spill != SpillStatus::kOk)
            EXPECT_FALSE(fs::exists(store.pathFor(7)))
                << c.name << ": no partial file may survive";
        EXPECT_EQ(c.restore,
                  store.restore(7, s.pages, rows, pool.selfLayers()))
            << c.name;
    }
    pool.releaseSeq(s);
}

// --- Engine level ----------------------------------------------------

TEST(KvSpillEngine, ResidentSessionResumeIsBitIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 4242);
    QuantSession qs(QuantConfig::posit8());
    QuantSession qs_plain(QuantConfig::posit8());

    EngineConfig ec{2, 48};
    ec.paged = true;
    ec.page_size = 4;
    // No spill_dir: RAM-only sessions.
    ServeEngine engine(model, qs, ec);
    ASSERT_NE(nullptr, engine.spillManager());

    Rng rng(11);
    const auto prompt1 = makePrompt(rng, cfg.vocab, 6);
    const RequestResult r1 = runTurn(engine, prompt1, /*sid=*/7, 6);
    ASSERT_EQ(RequestStatus::kOk, r1.status);
    EXPECT_EQ(SessionKVSource::kNone, r1.session_kv) << "first turn";
    EXPECT_EQ(1, engine.spillManager()->residentSessions());

    std::vector<int32_t> prompt2 = prompt1;
    prompt2.insert(prompt2.end(), r1.tokens.begin(), r1.tokens.end());
    const auto extra = makePrompt(rng, cfg.vocab, 3);
    prompt2.insert(prompt2.end(), extra.begin(), extra.end());

    const RequestResult r2 = runTurn(engine, prompt2, 7, 6);
    ASSERT_EQ(RequestStatus::kOk, r2.status);
    EXPECT_EQ(SessionKVSource::kResident, r2.session_kv);
    EXPECT_GE(r2.session_reused_tokens,
              static_cast<int64_t>(prompt1.size()));
    EXPECT_EQ(soloCausal(model, qs_plain, prompt2, 6, -1, {}),
              r2.tokens)
        << "resident-session decode must equal the solo oracle";
    EXPECT_GE(engine.metrics().sessions_resident_reused, 1);

    // A prompt that does not extend the history drops the stale
    // session and runs fresh — same tokens a stateless request gets.
    auto prompt3 = makePrompt(rng, cfg.vocab, 5);
    prompt3[0] = prompt2[0] ^ 1; // guarantee divergence
    const RequestResult r3 = runTurn(engine, prompt3, 7, 4);
    ASSERT_EQ(RequestStatus::kOk, r3.status);
    EXPECT_EQ(SessionKVSource::kNone, r3.session_kv);
    EXPECT_EQ(soloCausal(model, qs_plain, prompt3, 4, -1, {}),
              r3.tokens);
    EXPECT_GE(engine.metrics().sessions_dropped, 1);
}

TEST(KvSpillEngine, SpilledSessionRestoreIsBitIdenticalAndRedonates)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 31337);
    QuantSession qs_plain(QuantConfig::posit8());

    int64_t spilled_bytes_fp32 = 0, spilled_bytes_packed = 0;
    for (const bool packed : {false, true}) {
        ScopedDir dir(packed ? "kv_spill_test_engine_packed"
                             : "kv_spill_test_engine_fp32");
        QuantConfig qc = QuantConfig::posit8();
        qc.kv_packed = packed;
        QuantSession qs(qc);

        EngineConfig ec{2, 48};
        ec.paged = true;
        ec.page_size = 4;
        ec.spill_dir = dir.path;
        // Low watermark above the arena: every idle session is swept
        // to disk on the next step — deterministic forced spilling.
        ec.n_pages = 24;
        ec.spill_low_pages = 25;
        ServeEngine engine(model, qs, ec);

        Rng rng(5);
        const auto prompt1 = makePrompt(rng, cfg.vocab, 6);
        const RequestResult r1 = runTurn(engine, prompt1, /*sid=*/5, 6);
        ASSERT_EQ(RequestStatus::kOk, r1.status);

        engine.step(); // idle step: watermark sweep spills the session
        ASSERT_EQ(1, engine.spillManager()->spilledSessions());
        EXPECT_EQ(0, engine.spillManager()->residentSessions());
        EXPECT_TRUE(engine.spillManager()->store().has(5));
        EXPECT_GT(engine.metrics().sessions_spilled, 0);
        EXPECT_GT(engine.metrics().spilled_bytes, 0);
        EXPECT_EQ(1, engine.metrics().sessions_on_disk);

        std::vector<int32_t> prompt2 = prompt1;
        prompt2.insert(prompt2.end(), r1.tokens.begin(),
                       r1.tokens.end());
        const auto extra = makePrompt(rng, cfg.vocab, 3);
        prompt2.insert(prompt2.end(), extra.begin(), extra.end());

        const RequestResult r2 = runTurn(engine, prompt2, 5, 6);
        ASSERT_EQ(RequestStatus::kOk, r2.status);
        EXPECT_EQ(SessionKVSource::kRestoredFromSpill, r2.session_kv)
            << (packed ? "packed" : "fp32");
        EXPECT_GE(r2.session_reused_tokens,
                  static_cast<int64_t>(prompt1.size()));
        EXPECT_EQ(soloCausal(model, qs_plain, prompt2, 6, -1, {}),
                  r2.tokens)
            << "restored decode must equal the never-spilled oracle ("
            << (packed ? "packed" : "fp32") << ")";
        EXPECT_FALSE(engine.spillManager()->store().has(5))
            << "a restore consumes the spill file";
        EXPECT_GT(engine.metrics().sessions_restored, 0);
        EXPECT_GT(engine.metrics().restored_bytes, 0);
        EXPECT_EQ(0, engine.metrics().spill_failures);

        // The restored turn's prefill completion re-donated its pages
        // (session rows included) to the radix prefix cache: a
        // stateless follower sharing the prompt reuses them.
        const RequestResult rf = runTurn(engine, prompt2, /*sid=*/0, 4);
        ASSERT_EQ(RequestStatus::kOk, rf.status);
        EXPECT_GE(rf.prefix_reused_tokens, 12)
            << "restored pages must be re-donated on restore";
        EXPECT_EQ(soloCausal(model, qs_plain, prompt2, 4, -1, {}),
                  rf.tokens);

        (packed ? spilled_bytes_packed : spilled_bytes_fp32) =
            engine.metrics().spilled_bytes;
    }
    // The packed cache spills codes, not floats: the spill artifact
    // inherits the paper's 4x compression (minus CRC/header overhead).
    EXPECT_LT(spilled_bytes_packed * 2, spilled_bytes_fp32);
}

TEST(KvSpillEngine, InjectedIoFaultsDegradeToTypedFallbacks)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 777);
    QuantSession qs_plain(QuantConfig::posit8());

    struct Case
    {
        const char *name;
        FaultConfig fc;
        /// Where turn 2's KV history should come from.
        SessionKVSource want_src;
    };
    std::vector<Case> cases;
    {
        Case c;
        c.name = "open-fail";
        c.fc.spill_open_fail_rate = 1.0;
        c.want_src = SessionKVSource::kResident;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "enospc";
        c.fc.spill_enospc_rate = 1.0;
        c.want_src = SessionKVSource::kResident;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "torn-write";
        c.fc.spill_torn_write_rate = 1.0;
        c.want_src = SessionKVSource::kRecomputed;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "corrupt";
        c.fc.spill_corrupt_rate = 1.0;
        c.want_src = SessionKVSource::kRecomputed;
        cases.push_back(c);
    }
    {
        Case c;
        c.name = "short-read";
        c.fc.spill_short_read_rate = 1.0;
        c.want_src = SessionKVSource::kRecomputed;
        cases.push_back(c);
    }

    for (auto &c : cases) {
        ScopedDir dir(std::string("kv_spill_test_chaos_") + c.name);
        QuantSession qs(QuantConfig::posit8());
        FaultInjector fi(c.fc);

        EngineConfig ec{2, 48};
        ec.paged = true;
        ec.page_size = 4;
        ec.spill_dir = dir.path;
        ec.n_pages = 24;
        ec.spill_low_pages = 25; // force the sweep every step
        ec.fault = &fi;
        ServeEngine engine(model, qs, ec);

        Rng rng(23);
        const auto prompt1 = makePrompt(rng, cfg.vocab, 6);
        const RequestResult r1 = runTurn(engine, prompt1, /*sid=*/9, 6);
        ASSERT_EQ(RequestStatus::kOk, r1.status) << c.name;
        engine.step(); // sweep: spill attempt under injected faults

        std::vector<int32_t> prompt2 = prompt1;
        prompt2.insert(prompt2.end(), r1.tokens.begin(),
                       r1.tokens.end());
        const auto extra = makePrompt(rng, cfg.vocab, 2);
        prompt2.insert(prompt2.end(), extra.begin(), extra.end());

        const RequestResult r2 = runTurn(engine, prompt2, 9, 5);
        ASSERT_EQ(RequestStatus::kOk, r2.status) << c.name;
        EXPECT_EQ(c.want_src, r2.session_kv) << c.name;
        EXPECT_EQ(soloCausal(model, qs_plain, prompt2, 5, -1, {}),
                  r2.tokens)
            << c.name
            << ": IO faults must never change tokens, only accounting";
        EXPECT_GE(engine.metrics().spill_failures, 1) << c.name;
        if (c.want_src == SessionKVSource::kRecomputed) {
            EXPECT_GE(engine.metrics().sessions_recomputed, 1)
                << c.name;
            EXPECT_EQ(0, r2.session_reused_tokens) << c.name;
        }
    }
}

TEST(KvSpillEngine, MissingSpillFileRecomputesWithIdenticalTokens)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 55);
    QuantSession qs(QuantConfig::posit8());
    QuantSession qs_plain(QuantConfig::posit8());
    ScopedDir dir("kv_spill_test_missing");

    EngineConfig ec{2, 48};
    ec.paged = true;
    ec.page_size = 4;
    ec.spill_dir = dir.path;
    ec.n_pages = 24;
    ec.spill_low_pages = 25;
    ServeEngine engine(model, qs, ec);

    Rng rng(31);
    const auto prompt1 = makePrompt(rng, cfg.vocab, 6);
    const RequestResult r1 = runTurn(engine, prompt1, /*sid=*/11, 6);
    ASSERT_EQ(RequestStatus::kOk, r1.status);
    engine.step();
    ASSERT_TRUE(engine.spillManager()->store().has(11));

    // The disk tier loses the file (operator wipe, tmp reaper, ...).
    fs::remove(engine.spillManager()->store().pathFor(11));

    std::vector<int32_t> prompt2 = prompt1;
    prompt2.insert(prompt2.end(), r1.tokens.begin(), r1.tokens.end());
    prompt2.push_back(prompt1[0]);

    const RequestResult r2 = runTurn(engine, prompt2, 11, 5);
    ASSERT_EQ(RequestStatus::kOk, r2.status);
    EXPECT_EQ(SessionKVSource::kRecomputed, r2.session_kv);
    EXPECT_EQ(soloCausal(model, qs_plain, prompt2, 5, -1, {}),
              r2.tokens);
    EXPECT_GE(engine.metrics().spill_failures, 1);
    EXPECT_GE(engine.metrics().sessions_recomputed, 1);
}

TEST(KvSpillEngine, HardPressureShedsIdleSessionsForAdmission)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 99);
    QuantSession qs_plain(QuantConfig::posit8());
    Rng rng(47);
    const auto prompt_a = makePrompt(rng, cfg.vocab, 8);
    const auto prompt_b = makePrompt(rng, cfg.vocab, 8);

    for (const bool disk : {false, true}) {
        ScopedDir dir(disk ? "kv_spill_test_pressure_disk"
                           : "kv_spill_test_pressure_ram");
        QuantSession qs(QuantConfig::posit8());
        // 6 pages of 4 rows; each 8-prompt/8-new turn worst-cases 4
        // pages, so the second session's first turn cannot admit while
        // the first sits idle — hard pressure must shed it.
        EngineConfig ec{1, 32};
        ec.paged = true;
        ec.page_size = 4;
        ec.n_pages = 6;
        ec.prefix_cache = false;
        if (disk)
            ec.spill_dir = dir.path;
        ServeEngine engine(model, qs, ec);

        const RequestResult ra = runTurn(engine, prompt_a, /*sid=*/1, 8);
        ASSERT_EQ(RequestStatus::kOk, ra.status);
        EXPECT_EQ(1, engine.spillManager()->residentSessions());

        const RequestResult rb = runTurn(engine, prompt_b, /*sid=*/2, 8);
        ASSERT_EQ(RequestStatus::kOk, rb.status);
        EXPECT_EQ(soloCausal(model, qs_plain, prompt_b, 8, -1, {}),
                  rb.tokens)
            << "admission pressure must not disturb tokens";

        std::vector<int32_t> prompt_a2 = prompt_a;
        prompt_a2.insert(prompt_a2.end(), ra.tokens.begin(),
                         ra.tokens.end());
        prompt_a2.push_back(prompt_a[0]);
        const RequestResult ra2 = runTurn(engine, prompt_a2, 1, 4);
        ASSERT_EQ(RequestStatus::kOk, ra2.status);
        EXPECT_EQ(soloCausal(model, qs_plain, prompt_a2, 4, -1, {}),
                  ra2.tokens)
            << (disk ? "disk" : "ram");
        if (disk) {
            // The disk tier preserves the session across the shed.
            EXPECT_EQ(SessionKVSource::kRestoredFromSpill,
                      ra2.session_kv);
            EXPECT_GE(engine.metrics().sessions_spilled, 1);
            EXPECT_GE(engine.metrics().sessions_restored, 1);
            EXPECT_EQ(0, engine.metrics().sessions_dropped);
        } else {
            // RAM-only: the shed session is gone; its turn runs fresh.
            EXPECT_EQ(SessionKVSource::kNone, ra2.session_kv);
            EXPECT_GE(engine.metrics().sessions_dropped, 1);
        }
    }
}

TEST(KvSpillEngine, ReleaseSessionsQuiescesPoolAndDeletesFiles)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 1234);
    QuantSession qs(QuantConfig::posit8());
    ScopedDir dir("kv_spill_test_release");

    EngineConfig ec{1, 32};
    ec.paged = true;
    ec.page_size = 4;
    ec.n_pages = 16;
    ec.prefix_cache = false;
    ec.spill_dir = dir.path;
    ec.spill_low_pages = 17; // sweep spills every idle session
    ServeEngine engine(model, qs, ec);

    Rng rng(61);
    for (const uint64_t sid : {21u, 22u}) {
        const auto prompt = makePrompt(rng, cfg.vocab, 5);
        const RequestResult r = runTurn(engine, prompt, sid, 4);
        ASSERT_EQ(RequestStatus::kOk, r.status);
    }
    engine.step();
    ASSERT_EQ(2, engine.spillManager()->spilledSessions());
    const std::string p21 = engine.spillManager()->store().pathFor(21);
    ASSERT_TRUE(fs::exists(p21));

    engine.releaseSessions();
    EXPECT_EQ(0, engine.spillManager()->residentSessions());
    EXPECT_EQ(0, engine.spillManager()->spilledSessions());
    EXPECT_FALSE(fs::exists(p21)) << "spill files deleted on release";
    EXPECT_EQ(engine.pagedPool()->pageCount(),
              engine.pagedPool()->freePages())
        << "no page may leak through the session table";
}

} // namespace
} // namespace qt8
