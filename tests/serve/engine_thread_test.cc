/**
 * @file
 * Serving-robustness tests (DESIGN.md §10): the owned scheduler thread
 * and both stop modes, per-request deadlines and cancellation, numeric
 * fault isolation via injected NaN logits, submit-time validation, the
 * pool's double-free guard, and the sampler's degenerate-row guards.
 * The multi-threaded chaos soak lives in serve_soak_test.cc; these are
 * the targeted single-mechanism tests.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/fault.h"
#include "serve/kv_pool.h"
#include "serve/sampler.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::FaultConfig;
using serve::FaultInjector;
using serve::KVCachePool;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;
using serve::StopMode;

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "serve-robust-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached decode — the bit-identity reference (same helper as
/// serve_engine_test.cc).
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

// ---------------------------------------------------------------------
// Owned scheduler thread
// ---------------------------------------------------------------------

TEST(EngineThread, StartSubmitDrainStopIsBitIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 808);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{2, 32});

    engine.start();
    EXPECT_TRUE(engine.running());

    Rng rng(5);
    std::vector<Request> reqs;
    std::vector<std::shared_future<RequestResult>> futs;
    for (int r = 0; r < 5; ++r) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 3 + r % 3);
        req.max_new_tokens = 6 + r % 4;
        req.eos = Vocab::kEos;
        reqs.push_back(req);
        futs.push_back(engine.submit(req));
    }
    engine.stop(StopMode::kDrain);
    EXPECT_FALSE(engine.running());

    for (size_t r = 0; r < reqs.size(); ++r) {
        // Drain guarantees resolution before stop() returns.
        ASSERT_EQ(std::future_status::ready,
                  futs[r].wait_for(std::chrono::seconds(0)));
        const RequestResult res = futs[r].get();
        ASSERT_EQ(RequestStatus::kOk, res.status);
        EXPECT_EQ(soloCausal(model, qs, reqs[r].prompt,
                             reqs[r].max_new_tokens, reqs[r].eos,
                             reqs[r].sampling),
                  res.tokens)
            << "request " << r;
    }
    const auto m = engine.metricsSnapshot();
    EXPECT_EQ(5, m.completed);
}

TEST(EngineThread, AbortResolvesInFlightWithEngineStopped)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 909);
    QuantSession qs(QuantConfig::fp32());

    // Slow every step down so the request is reliably still in flight
    // when the abort lands (slot capacity 128 ≈ 250 ms of decoding).
    FaultConfig fc;
    fc.delay_rate = 1.0;
    fc.delay_ms = 2.0;
    FaultInjector fault(fc);
    EngineConfig ec{/*n_slots=*/1, /*slot_capacity=*/0};
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);

    Rng rng(6);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 10000; // can only end by capacity or abort
    req.eos = -1;

    engine.start();
    auto fut = engine.submit(req);
    // Wait for some real progress (5 forward steps = 3-token prefill
    // plus at least 2 generated tokens), then pull the plug mid-decode.
    while (engine.metricsSnapshot().steps < 5)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    engine.stop(StopMode::kAbort);

    ASSERT_EQ(std::future_status::ready,
              fut.wait_for(std::chrono::seconds(0)));
    const RequestResult res = fut.get();
    EXPECT_EQ(RequestStatus::kEngineStopped, res.status);
    EXPECT_GE(res.tokens.size(), 1u); // partial output kept
    EXPECT_LT(static_cast<int64_t>(res.tokens.size()),
              req.max_new_tokens);

    // The queue is closed: post-abort submissions resolve immediately
    // with the same typed status instead of parking forever.
    auto late = engine.submit(req);
    EXPECT_EQ(std::future_status::ready,
              late.wait_for(std::chrono::seconds(0)));
    EXPECT_EQ(RequestStatus::kEngineStopped, late.get().status);

    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(1, engine.freeSlots()); // slot reclaimed by the abort
    EXPECT_GE(engine.metricsSnapshot().stopped, 2);
}

TEST(EngineThread, StopStartCyclesKeepWorking)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 1010);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 24});

    Rng rng(7);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 4;

    for (int cycle = 0; cycle < 3; ++cycle) {
        engine.start();
        engine.start(); // idempotent while running
        auto fut = engine.submit(req);
        engine.stop(cycle == 1 ? StopMode::kAbort : StopMode::kDrain);
        engine.stop(StopMode::kDrain); // idempotent when stopped
        ASSERT_EQ(std::future_status::ready,
                  fut.wait_for(std::chrono::seconds(0)))
            << "cycle " << cycle;
        const RequestStatus s = fut.get().status;
        // An abort may land before or after the tiny request finishes;
        // either way the status is typed and the engine restartable.
        EXPECT_TRUE(s == RequestStatus::kOk ||
                    s == RequestStatus::kEngineStopped)
            << "cycle " << cycle;
    }
}

// ---------------------------------------------------------------------
// Deadlines and cancellation
// ---------------------------------------------------------------------

TEST(EngineLifecycle, DeadlineExpiresMidDecode)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 111);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 64});

    Rng rng(8);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 1000; // never finishes on its own here
    req.eos = -1;
    req.timeout_ms = 20.0;
    auto fut = engine.submit(req);

    // A few steps of real progress before the deadline...
    for (int s = 0; s < 5; ++s)
        engine.step();
    EXPECT_EQ(1u, engine.activeCount());
    // ...then blow the deadline and step once more.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    engine.step();

    const RequestResult res = fut.get();
    EXPECT_EQ(RequestStatus::kDeadlineExceeded, res.status);
    EXPECT_GE(res.tokens.size(), 1u); // partial output kept
    // The truncated prefix is still the solo decode's prefix.
    const auto solo = soloCausal(model, qs, req.prompt, 10, -1, {});
    ASSERT_LE(res.tokens.size(), solo.size());
    EXPECT_TRUE(std::equal(res.tokens.begin(), res.tokens.end(),
                           solo.begin()));
    EXPECT_EQ(1, engine.freeSlots());
    EXPECT_EQ(1, engine.metrics().expired);
}

TEST(EngineLifecycle, QueuedRequestExpiresWhileSlotsBusy)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 222);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 64});

    Rng rng(9);
    Request hog;
    hog.prompt = makePrompt(rng, cfg.vocab, 3);
    hog.max_new_tokens = 40;
    hog.eos = -1;
    auto f_hog = engine.submit(hog);
    engine.step(); // hog owns the only slot

    Request late;
    late.prompt = makePrompt(rng, cfg.vocab, 3);
    late.max_new_tokens = 4;
    late.timeout_ms = 5.0;
    auto f_late = engine.submit(late);

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine.step(); // expiry runs before admission

    const RequestResult res = f_late.get();
    EXPECT_EQ(RequestStatus::kDeadlineExceeded, res.status);
    EXPECT_TRUE(res.tokens.empty()); // never admitted
    EXPECT_EQ(1u, engine.activeCount()); // hog unaffected
    engine.runUntilIdle();
    EXPECT_EQ(RequestStatus::kOk, f_hog.get().status);
}

TEST(EngineLifecycle, CancelBeforeAdmissionAndMidDecode)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 333);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 64});

    Rng rng(10);
    Request a;
    a.prompt = makePrompt(rng, cfg.vocab, 3);
    a.max_new_tokens = 100;
    a.eos = -1;
    Request b = a;

    uint64_t id_a = 0, id_b = 0;
    auto f_a = engine.submit(a, &id_a);
    auto f_b = engine.submit(b, &id_b); // queued behind a

    // Cancel b before it was ever admitted.
    EXPECT_TRUE(engine.cancel(id_b));
    engine.step();
    const RequestResult res_b = f_b.get();
    EXPECT_EQ(RequestStatus::kCancelled, res_b.status);
    EXPECT_TRUE(res_b.tokens.empty());

    // Cancel a mid-decode: partial output kept, bit-exact prefix.
    for (int s = 0; s < 6; ++s)
        engine.step();
    EXPECT_TRUE(engine.cancel(id_a));
    engine.step();
    const RequestResult res_a = f_a.get();
    EXPECT_EQ(RequestStatus::kCancelled, res_a.status);
    EXPECT_GE(res_a.tokens.size(), 1u);
    const auto solo = soloCausal(model, qs, a.prompt, 10, -1, {});
    ASSERT_LE(res_a.tokens.size(), solo.size());
    EXPECT_TRUE(std::equal(res_a.tokens.begin(), res_a.tokens.end(),
                           solo.begin()));

    EXPECT_EQ(1, engine.freeSlots());
    EXPECT_EQ(2, engine.metrics().cancelled);

    // Ids this engine never issued are refused; finished ids are an
    // accepted no-op.
    EXPECT_FALSE(engine.cancel(0));
    EXPECT_FALSE(engine.cancel(999999));
    EXPECT_TRUE(engine.cancel(id_a));
    engine.step(); // no effect, nothing active
    EXPECT_EQ(2, engine.metrics().cancelled);
}

// ---------------------------------------------------------------------
// Numeric-fault isolation
// ---------------------------------------------------------------------

TEST(EngineFaults, InjectedNanRetiresOnlyThePoisonedRequest)
{
    const ModelConfig cfg = tinyLmConfig();
    for (const QuantConfig &qc :
         {QuantConfig::fp32(), QuantConfig::posit8()}) {
        CausalLM model(cfg, 444);
        QuantSession qs(qc);

        // Poison whatever decodes in slot 0 on scheduler step 4 —
        // past the 3-token prefill, so the victim has partial output.
        FaultConfig fc;
        fc.nan_at.push_back({/*step=*/4, /*slot=*/0});
        FaultInjector fault(fc);
        EngineConfig ec{/*n_slots=*/3, /*slot_capacity=*/32};
        ec.fault = &fault;
        ServeEngine engine(model, qs, ec);

        Rng rng(11);
        std::vector<Request> reqs;
        std::vector<std::shared_future<RequestResult>> futs;
        for (int r = 0; r < 3; ++r) {
            Request req;
            req.prompt = makePrompt(rng, cfg.vocab, 3);
            req.max_new_tokens = 8;
            req.eos = -1;
            reqs.push_back(req);
            futs.push_back(engine.submit(req));
        }
        engine.runUntilIdle();

        int faulted = 0;
        for (size_t r = 0; r < futs.size(); ++r) {
            const RequestResult res = futs[r].get();
            if (res.status == RequestStatus::kNumericFault) {
                ++faulted;
                EXPECT_TRUE(fault.wasFaulted(res.id)) << qc.name;
                // Retired on step 4: prefill took 3 steps (the third
                // emitted token 1), step 3 emitted token 2, step 4 was
                // poisoned — 2 tokens of partial output survive.
                EXPECT_EQ(2u, res.tokens.size()) << qc.name;
            } else {
                // Neighbours decode on, bit-identical to solo.
                ASSERT_EQ(RequestStatus::kOk, res.status) << qc.name;
                EXPECT_FALSE(fault.wasFaulted(res.id)) << qc.name;
                EXPECT_EQ(soloCausal(model, qs, reqs[r].prompt,
                                     reqs[r].max_new_tokens,
                                     reqs[r].eos, reqs[r].sampling),
                          res.tokens)
                    << qc.name << " request " << r;
            }
        }
        EXPECT_EQ(1, faulted) << qc.name;
        EXPECT_EQ(1, engine.metrics().numeric_faults) << qc.name;
        EXPECT_EQ(1, fault.stats().nan_injected) << qc.name;
        EXPECT_EQ(3, engine.freeSlots()) << qc.name;
    }
}

TEST(EngineFaults, GuardDisabledLetsNanThrough)
{
    // With the guard off the engine must still not crash: rowArgmax
    // ignores non-finite entries and the sampler falls back to it, so
    // a poisoned row samples token 0 and decoding continues.
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 555);
    QuantSession qs(QuantConfig::fp32());

    FaultConfig fc;
    fc.nan_at.push_back({/*step=*/3, /*slot=*/0});
    FaultInjector fault(fc);
    EngineConfig ec{/*n_slots=*/1, /*slot_capacity=*/32};
    ec.guard_logits = false;
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);

    Rng rng(12);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 6;
    req.eos = -1;
    auto fut = engine.submit(req);
    engine.runUntilIdle();

    const RequestResult res = fut.get();
    EXPECT_EQ(RequestStatus::kOk, res.status);
    EXPECT_EQ(6u, res.tokens.size());
    EXPECT_EQ(0, engine.metrics().numeric_faults);
    EXPECT_EQ(1, fault.stats().nan_injected);
}

// ---------------------------------------------------------------------
// Submit-time validation
// ---------------------------------------------------------------------

TEST(EngineValidation, InvalidRequestsRejectTypedAndImmediate)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 666);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, /*slot_capacity=*/8});

    Rng rng(13);
    const std::vector<int32_t> good = makePrompt(rng, cfg.vocab, 3);

    Request empty_prompt;
    empty_prompt.max_new_tokens = 4;

    Request no_budget;
    no_budget.prompt = good;
    no_budget.max_new_tokens = 0;

    Request too_long;
    too_long.prompt = makePrompt(rng, cfg.vocab, 9); // > slot capacity
    too_long.max_new_tokens = 4;

    int callbacks = 0;
    for (Request *req : {&empty_prompt, &no_budget, &too_long}) {
        req->on_complete = [&](const RequestResult &r) {
            ++callbacks;
            EXPECT_EQ(RequestStatus::kRejectedInvalid, r.status);
        };
        uint64_t id = 0;
        auto fut = engine.submit(*req, &id);
        EXPECT_GT(id, 0u);
        ASSERT_EQ(std::future_status::ready,
                  fut.wait_for(std::chrono::seconds(0)));
        const RequestResult res = fut.get();
        EXPECT_EQ(RequestStatus::kRejectedInvalid, res.status);
        EXPECT_TRUE(res.tokens.empty());
        EXPECT_FALSE(serve::isRetirement(res.status));
    }
    EXPECT_EQ(3, callbacks);
    EXPECT_EQ(3, engine.metrics().rejected_invalid);
    EXPECT_EQ(0u, engine.pendingCount()); // never enqueued

    // A valid request still sails through the same engine.
    Request ok;
    ok.prompt = good;
    ok.max_new_tokens = 4;
    auto fut = engine.submit(ok);
    engine.runUntilIdle();
    EXPECT_EQ(RequestStatus::kOk, fut.get().status);
}

TEST(EngineValidation, Seq2SeqPadMismatchRejected)
{
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    Seq2Seq model(cfg, 777);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 16, /*cross=*/8});

    Request req;
    req.prompt.assign(6, Vocab::kFirstContent);
    req.src_pad.assign(4, 0); // wrong length
    req.max_new_tokens = 4;
    EXPECT_EQ(RequestStatus::kRejectedInvalid,
              engine.submit(req).get().status);

    req.src_pad.clear();
    req.prompt.assign(12, Vocab::kFirstContent); // > cross capacity
    EXPECT_EQ(RequestStatus::kRejectedInvalid,
              engine.submit(req).get().status);
}

// ---------------------------------------------------------------------
// Pool and sampler guards
// ---------------------------------------------------------------------

TEST(KVCachePoolGuard, DoubleFreeAndStrayReleaseRefused)
{
    KVCachePool pool(/*n_slots=*/2, /*capacity=*/4, /*d_model=*/8,
                     /*n_self_layers=*/1);
    const int32_t s0 = pool.acquire();
    const int32_t s1 = pool.acquire();
    ASSERT_GE(s0, 0);
    ASSERT_GE(s1, 0);
    EXPECT_TRUE(pool.inUse(s0));
    EXPECT_EQ(-1, pool.acquire()); // exhausted -> typed, no assert

    EXPECT_TRUE(pool.release(s0));
    EXPECT_FALSE(pool.inUse(s0));
    EXPECT_FALSE(pool.release(s0)); // double free refused
    EXPECT_EQ(1u, pool.freeCount()); // free list uncorrupted

    EXPECT_FALSE(pool.release(-1)); // stray releases refused
    EXPECT_FALSE(pool.release(2));
    EXPECT_FALSE(pool.release(99));
    EXPECT_EQ(1u, pool.freeCount());

    // The guarded pool still cycles normally.
    EXPECT_EQ(s0, pool.acquire());
    EXPECT_TRUE(pool.release(s0));
    EXPECT_TRUE(pool.release(s1));
    EXPECT_EQ(2u, pool.freeCount());
}

TEST(SamplerGuard, DegenerateRowsNeverCrash)
{
    Tensor logits({2, 8});
    // Row 0: all -inf (a fully masked row). Row 1: one finite entry.
    for (int64_t j = 0; j < 8; ++j) {
        logits.at(0 * 8 + j) = -INFINITY;
        logits.at(1 * 8 + j) = -INFINITY;
    }
    logits.at(1 * 8 + 5) = 0.25f;

    Rng rng(1);
    SamplingParams greedy; // temperature 0
    EXPECT_EQ(0, serve::sampleToken(logits, 0, greedy, rng));
    EXPECT_EQ(5, serve::sampleToken(logits, 1, greedy, rng));

    SamplingParams sampled;
    sampled.temperature = 1.0f;
    sampled.top_k = 4;
    // All-(-inf) row: no finite candidate -> argmax fallback, token 0.
    EXPECT_EQ(0, serve::sampleToken(logits, 0, sampled, rng));
    // Single candidate survives the filter regardless of top_k.
    EXPECT_EQ(5, serve::sampleToken(logits, 1, sampled, rng));

    // top_k far beyond vocab is clamped, not UB.
    Tensor uniform({1, 8});
    for (int64_t j = 0; j < 8; ++j)
        uniform.at(j) = 0.1f * static_cast<float>(j);
    sampled.top_k = 10000;
    for (int trial = 0; trial < 16; ++trial) {
        const int32_t tok = serve::sampleToken(uniform, 0, sampled, rng);
        EXPECT_GE(tok, 0);
        EXPECT_LT(tok, 8);
    }

    // NaN-riddled row with finite survivors: candidates exclude NaNs.
    Tensor mixed({1, 8});
    for (int64_t j = 0; j < 8; ++j)
        mixed.at(j) = std::numeric_limits<float>::quiet_NaN();
    mixed.at(3) = 1.0f;
    sampled.top_k = 2;
    EXPECT_EQ(3, serve::sampleToken(mixed, 0, sampled, rng));
}

} // namespace
} // namespace qt8
