/**
 * @file
 * Pins ServeMetrics: LatencyHistogram percentile math on known
 * distributions (linear interpolation between closest ranks), the
 * 0/1-sample edge cases, the out-of-range-p clamp (used to read past
 * the sorted array), recordRetirement counter bookkeeping, and
 * metricsSnapshot() consistency while the engine thread is retiring
 * requests concurrently.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/metrics.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::LatencyHistogram;
using serve::Request;
using serve::RequestRecord;
using serve::RequestStatus;
using serve::ServeEngine;
using serve::ServeMetrics;

TEST(LatencyHistogram, EmptyReturnsZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile)
{
    LatencyHistogram h;
    h.record(42.5);
    for (const double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), 42.5) << "p" << p;
    EXPECT_DOUBLE_EQ(h.mean(), 42.5);
}

TEST(LatencyHistogram, KnownDistributionInterpolates)
{
    // Samples 1..100 (recorded shuffled — percentile must sort).
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<double>((i * 37) % 100 + 1));
    // numpy-style linear interpolation: rank = p/100 * 99.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 95.05);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.01);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(LatencyHistogram, TwoSamplesMidpoint)
{
    LatencyHistogram h;
    h.record(10.0);
    h.record(20.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 20.0);
}

TEST(LatencyHistogram, OutOfRangePClampsInsteadOfReadingPastEnd)
{
    // Regression: p > 100 used to compute rank > n-1 and index past the
    // sorted vector (p < 0 wrapped through size_t). Now clamps.
    LatencyHistogram h;
    h.record(5.0);
    h.record(7.0);
    h.record(9.0);
    EXPECT_DOUBLE_EQ(h.percentile(150.0), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(1000.0), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(-50.0), 5.0);
}

TEST(ServeMetrics, RetirementCountersByStatus)
{
    ServeMetrics m;
    auto retire = [&m](RequestStatus s, int64_t gen) {
        RequestRecord r;
        r.status = s;
        r.generated_tokens = gen;
        r.prompt_tokens = 3;
        r.ttft_ms = 1.0;
        r.latency_ms = 2.0;
        m.recordRetirement(r);
    };
    retire(RequestStatus::kOk, 5);
    retire(RequestStatus::kOk, 7);
    retire(RequestStatus::kCapacityExceeded, 2);
    retire(RequestStatus::kCancelled, 1);
    retire(RequestStatus::kDeadlineExceeded, 0);
    retire(RequestStatus::kNumericFault, 4);
    retire(RequestStatus::kEngineStopped, 0);

    EXPECT_EQ(m.completed, 7);
    EXPECT_EQ(m.truncated, 1);
    EXPECT_EQ(m.cancelled, 1);
    EXPECT_EQ(m.expired, 1);
    EXPECT_EQ(m.numeric_faults, 1);
    EXPECT_EQ(m.stopped, 1);
    EXPECT_EQ(m.requests.size(), 7u);
    EXPECT_EQ(m.generated_tokens, 19);
    EXPECT_EQ(m.prompt_tokens, 21);
    EXPECT_EQ(m.ttft_ms.count(), 7u);
    EXPECT_EQ(m.request_latency_ms.count(), 7u);
}

TEST(ServeMetrics, TokensPerSecBusyGuardsZeroBusy)
{
    ServeMetrics m;
    m.generated_tokens = 100;
    EXPECT_DOUBLE_EQ(m.tokensPerSecBusy(), 0.0);
    m.busy_ms = 500.0;
    EXPECT_DOUBLE_EQ(m.tokensPerSecBusy(), 200.0);
}

TEST(ServeMetrics, DumpMentionsEveryHistogram)
{
    ServeMetrics m;
    RequestRecord r;
    r.status = RequestStatus::kOk;
    m.recordRetirement(r);
    const std::string d = m.dump();
    EXPECT_NE(d.find("ttft_ms"), std::string::npos);
    EXPECT_NE(d.find("request_latency_ms"), std::string::npos);
    EXPECT_NE(d.find("token_latency_ms"), std::string::npos);
    EXPECT_NE(d.find("1 completed"), std::string::npos);
}

/// Snapshot consistency under a live engine: a watcher thread pulls
/// metricsSnapshot() while the scheduler thread admits and retires.
/// Every snapshot must be internally consistent (a copy, not a torn
/// view): completed == per-status sum of the request records, and
/// counters never decrease between snapshots.
TEST(ServeMetrics, SnapshotConsistentUnderConcurrentRetirement)
{
    ModelConfig cfg;
    cfg.name = "metrics-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    CausalLM model(cfg, 321);
    QuantSession qs(QuantConfig::posit8());

    EngineConfig ec;
    ec.n_slots = 3;
    ServeEngine engine(model, qs, ec);

    constexpr int kRequests = 24;
    Rng rng(9);
    std::vector<std::shared_future<serve::RequestResult>> futs;
    for (int r = 0; r < kRequests; ++r) {
        Request req;
        const int64_t plen = 2 + rng.randint(4);
        for (int64_t j = 0; j < plen; ++j)
            req.prompt.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(cfg.vocab - Vocab::kFirstContent)));
        req.max_new_tokens = 6;
        req.eos = Vocab::kEos;
        futs.push_back(engine.submit(std::move(req)));
    }

    std::atomic<bool> stop_watch{false};
    std::atomic<int> snapshots{0};
    std::thread watcher([&] {
        int64_t last_completed = 0, last_steps = 0;
        while (!stop_watch.load()) {
            const ServeMetrics m = engine.metricsSnapshot();
            // Internal consistency: the records vector and the
            // aggregate counter were copied together.
            EXPECT_EQ(m.completed,
                      static_cast<int64_t>(m.requests.size()));
            int64_t by_status = 0;
            for (const RequestRecord &r : m.requests)
                by_status += (r.status != RequestStatus::kOk) ? 1 : 0;
            EXPECT_EQ(by_status, m.truncated + m.cancelled + m.expired +
                                     m.numeric_faults + m.stopped);
            // Monotone: counters only grow while the engine runs.
            EXPECT_GE(m.completed, last_completed);
            EXPECT_GE(m.steps, last_steps);
            last_completed = m.completed;
            last_steps = m.steps;
            ++snapshots;
        }
    });

    engine.start();
    engine.stop(serve::StopMode::kDrain);
    stop_watch.store(true);
    watcher.join();

    for (auto &f : futs)
        EXPECT_EQ(f.get().status, RequestStatus::kOk);
    const ServeMetrics final = engine.metricsSnapshot();
    EXPECT_EQ(final.completed, kRequests);
    EXPECT_EQ(final.requests.size(), static_cast<size_t>(kRequests));
    EXPECT_GT(snapshots.load(), 0);
    EXPECT_EQ(final.ttft_ms.count(), static_cast<size_t>(kRequests));
}

} // namespace
} // namespace qt8
