/**
 * @file
 * Packed 8-bit KV-cache contract tests.
 *
 * The central claim mirrors packed_gemm_test's, applied to the cache:
 * with `QuantConfig::kv_packed`, K/V panels live as uint8 grid codes
 * (packed on append/fill via Quantizer::gridIndex) and the decode-step
 * attention GEMVs decode those codes inside the micro-kernel — and the
 * result is bit-identical to the fp32 carrier-format cache at every
 * level: the GEMV kernels against extract+gemm, forwardIncremental
 * logits, cached greedy decode against the full-prefix reference, and
 * complete serve-engine token streams (including dirty slot reuse).
 * Ineligible formats (fp32, bf16, dynamic-scale int8) fall back to the
 * fp32 cache transparently, and a full cache refuses appends without
 * writing.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/sampler.h"
#include "tensor/ops.h"
#include "tensor/packed.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::FaultConfig;
using serve::FaultInjector;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "kv-packed-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

/// The element-wise-static grid formats packed KV must be exact on.
std::vector<QuantConfig>
packableConfigs()
{
    QuantConfig e5m2 = QuantConfig::eightBit(
        "e5m2", Quantizer::byName("e5m2"), Quantizer::byName("e5m2"));
    return {QuantConfig::posit8(), QuantConfig::posit8es2(),
            QuantConfig::fp8(), e5m2};
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached greedy decode on a *fp32-cache* session — the oracle the
/// packed-KV engine streams must reproduce bit for bit.
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(
        1, cap, qs.config().kvPackedFormat());
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

/// Fill a [rows, d_model] tensor with values on @p q's grid (what the
/// kGemm quant point leaves in the cache).
Tensor
onGridRows(Rng &rng, const Quantizer &q, int64_t rows, int64_t d_model)
{
    Tensor t({rows, d_model});
    for (int64_t i = 0; i < t.numel(); ++i)
        t.data()[i] = static_cast<float>(rng.uniform() * 8.0 - 4.0);
    q.quantizeInPlace(t.data(), static_cast<size_t>(t.numel()));
    return t;
}

// --- Kernel level ----------------------------------------------------

TEST(KvPacked, GemvKernelsBitIdenticalToExtractPlusGemm)
{
    const int64_t d_model = 48, d_head = 12, cap = 40;
    Rng rng(11);
    std::vector<QuantConfig> cfgs = packableConfigs();
    for (QuantConfig &qc : cfgs) {
        qc.kv_packed = true;
        const Quantizer *fmt = qc.kvPackedFormat();
        ASSERT_NE(nullptr, fmt) << qc.name;

        // Two caches fed identical rows: one packed, one fp32.
        KVCache packed, plain;
        packed.reset(1, cap, d_model, fmt);
        plain.reset(1, cap, d_model);
        EXPECT_TRUE(packed.packed());
        EXPECT_FALSE(plain.packed());

        // Ragged lengths exercise the 8-row/8-col remainder lanes.
        for (int64_t len : {1, 7, 8, 9, 31}) {
            packed.len = 0;
            plain.len = 0;
            for (int64_t t = 0; t < len; ++t) {
                const Tensor kr = onGridRows(rng, qc.fwd, 1, d_model);
                const Tensor vr = onGridRows(rng, qc.fwd, 1, d_model);
                ASSERT_TRUE(packed.append(kr, vr));
                ASSERT_TRUE(plain.append(kr, vr));
            }

            Tensor q({1, d_head});
            for (int64_t j = 0; j < d_head; ++j)
                q.data()[j] =
                    static_cast<float>(rng.uniform() * 2.0 - 1.0);

            PackedKvScratch scratch;
            for (int h = 0; h < d_model / d_head; ++h) {
                // Reference: extract the head slice to fp32, gemm.
                Tensor kh({len, d_head}), vh({len, d_head});
                for (int64_t r = 0; r < len; ++r) {
                    std::memcpy(kh.data() + r * d_head,
                                plain.k.data() + r * d_model +
                                    h * d_head,
                                sizeof(float) *
                                    static_cast<size_t>(d_head));
                    std::memcpy(vh.data() + r * d_head,
                                plain.v.data() + r * d_model +
                                    h * d_head,
                                sizeof(float) *
                                    static_cast<size_t>(d_head));
                }
                Tensor want_s({1, len}), got_s({1, len});
                gemm(q, false, kh, true, want_s);
                packedDotRows(q.data(),
                              packed.k_codes.data() + h * d_head,
                              packed.table.data(), len, d_head,
                              d_model, got_s.data(), scratch);
                ASSERT_EQ(0, std::memcmp(want_s.data(), got_s.data(),
                                         sizeof(float) *
                                             static_cast<size_t>(len)))
                    << qc.name << " len=" << len << " head=" << h;

                Tensor want_c({1, d_head}), got_c({1, d_head});
                gemm(want_s, false, vh, false, want_c);
                packedAccumRows(want_s.data(),
                                packed.v_codes.data() + h * d_head,
                                packed.table.data(), len, d_head,
                                d_model, got_c.data(), scratch);
                ASSERT_EQ(0,
                          std::memcmp(want_c.data(), got_c.data(),
                                      sizeof(float) *
                                          static_cast<size_t>(d_head)))
                    << qc.name << " len=" << len << " head=" << h;
            }
        }
    }
}

TEST(KvPacked, NaNRowsPackToReservedCodeAndDecodeNonFinite)
{
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    const Quantizer *fmt = qc.kvPackedFormat();
    ASSERT_NE(nullptr, fmt);

    const int64_t d_model = 8;
    KVCache cache;
    cache.reset(1, 4, d_model, fmt);

    Tensor kr({1, d_model}), vr({1, d_model});
    for (int64_t j = 0; j < d_model; ++j) {
        kr.data()[j] = 0.5f;
        vr.data()[j] = 0.25f;
    }
    kr.data()[3] = std::numeric_limits<float>::quiet_NaN();
    ASSERT_TRUE(cache.append(kr, vr));

    // The NaN element took an out-of-grid code whose table entry is
    // NaN, so the QK^T GEMV over this row goes non-finite — exactly
    // what the serving engine's per-row guard needs to see.
    EXPECT_GE(cache.k_codes[3],
              static_cast<uint8_t>(fmt->gridValues().size()));
    Tensor q({1, d_model});
    for (int64_t j = 0; j < d_model; ++j)
        q.data()[j] = 1.0f;
    float score = 0.0f;
    PackedKvScratch scratch;
    packedDotRows(q.data(), cache.k_codes.data(), cache.table.data(), 1,
                  d_model, d_model, &score, scratch);
    EXPECT_FALSE(std::isfinite(score));
}

// --- Cache level -----------------------------------------------------

TEST(KvPacked, CapacityOverflowAppendReturnsFalseWithoutWriting)
{
    QuantConfig qc = QuantConfig::fp8();
    qc.kv_packed = true;
    const Quantizer *fmt = qc.kvPackedFormat();
    ASSERT_NE(nullptr, fmt);

    const int64_t d_model = 8;
    Rng rng(5);
    KVCache cache;
    cache.reset(2, 2, d_model, fmt);
    ASSERT_TRUE(cache.append(onGridRows(rng, qc.fwd, 2, d_model),
                             onGridRows(rng, qc.fwd, 2, d_model)));
    ASSERT_TRUE(cache.append(onGridRows(rng, qc.fwd, 2, d_model),
                             onGridRows(rng, qc.fwd, 2, d_model)));
    EXPECT_FALSE(cache.canAppend());

    const std::vector<uint8_t> k_before = cache.k_codes;
    const std::vector<uint8_t> v_before = cache.v_codes;
    EXPECT_FALSE(cache.append(onGridRows(rng, qc.fwd, 2, d_model),
                              onGridRows(rng, qc.fwd, 2, d_model)));
    EXPECT_EQ(2, cache.len);
    EXPECT_EQ(k_before, cache.k_codes);
    EXPECT_EQ(v_before, cache.v_codes);

    // Same refusal on a full packed slot pool.
    KVSlots slots;
    slots.reset(1, 1, d_model, fmt);
    const Tensor kr = onGridRows(rng, qc.fwd, 1, d_model);
    ASSERT_TRUE(slots.append(0, kr.data(), kr.data()));
    EXPECT_FALSE(slots.append(0, kr.data(), kr.data()));
    EXPECT_EQ(1, slots.len[0]);
}

TEST(KvPacked, ResidentBytesQuartered)
{
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    const Quantizer *fmt = qc.kvPackedFormat();
    ASSERT_NE(nullptr, fmt);

    KVSlots packed, plain;
    packed.reset(4, 16, 32, fmt);
    plain.reset(4, 16, 32);
    EXPECT_EQ(plain.residentBytes(), 4u * packed.residentBytes());

    KVCache pc, pl;
    pc.reset(2, 16, 32, fmt);
    pl.reset(2, 16, 32);
    EXPECT_EQ(pl.residentBytes(), 4u * pc.residentBytes());
}

TEST(KvPacked, IneligibleFormatsFallBackToFp32Cache)
{
    for (QuantConfig qc :
         {QuantConfig::fp32(), QuantConfig::bf16(),
          QuantConfig::int8PerTensor(), QuantConfig::int8PerChannel()}) {
        qc.kv_packed = true;
        EXPECT_EQ(nullptr, qc.kvPackedFormat()) << qc.name;
    }
    // Eligible grids gate on the flag itself.
    QuantConfig on = QuantConfig::posit8();
    EXPECT_EQ(nullptr, on.kvPackedFormat());
    on.kv_packed = true;
    EXPECT_EQ(&on.fwd, on.kvPackedFormat());

    // reset(nullptr) is the fp32 path regardless of the flag upstream.
    KVCache cache;
    cache.reset(1, 4, 8, nullptr);
    EXPECT_FALSE(cache.packed());
    EXPECT_TRUE(cache.k_codes.empty());
}

// --- Model level -----------------------------------------------------

TEST(KvPacked, IncrementalLogitsBitIdenticalToFp32Cache)
{
    const ModelConfig cfg = tinyLmConfig();
    const int64_t B = 3, steps = 12;
    for (const QuantConfig &qc : packableConfigs()) {
        CausalLM model(cfg, 4242);
        QuantConfig packed_qc = qc;
        packed_qc.kv_packed = true;
        QuantSession qs_plain(qc);
        QuantSession qs_packed(packed_qc);

        DecodeState st_plain = model.beginDecode(B, steps + 1);
        DecodeState st_packed = model.beginDecode(
            B, steps + 1, qs_packed.config().kvPackedFormat());
        ASSERT_TRUE(st_packed.self_kv[0].packed()) << qc.name;

        Rng rng(303);
        std::vector<int32_t> toks(static_cast<size_t>(B));
        for (int64_t s = 0; s < steps; ++s) {
            for (auto &t : toks) {
                t = static_cast<int32_t>(
                    Vocab::kFirstContent +
                    rng.randint(cfg.vocab - Vocab::kFirstContent));
            }
            const Tensor a =
                model.forwardIncremental(qs_plain, toks, st_plain);
            const Tensor b =
                model.forwardIncremental(qs_packed, toks, st_packed);
            ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                                     sizeof(float) *
                                         static_cast<size_t>(a.numel())))
                << qc.name << " step " << s;
        }
    }
}

TEST(KvPacked, Seq2SeqGreedyDecodeMatchesReference)
{
    // Exercises the packed *cross*-attention prime (KVCache::fill) as
    // well as the self cache: greedyDecode runs on packed caches, the
    // reference re-runs full prefix forwards with no cache at all.
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    const int64_t B = 3, S = 12, max_new = 10;
    const Seq2SeqTask task(cfg.vocab, S, 8);
    Rng rng(77);
    const Seq2SeqBatch batch = task.sample(rng, B);

    for (const QuantConfig &base :
         {QuantConfig::posit8(), QuantConfig::fp8()}) {
        QuantConfig qc = base;
        qc.kv_packed = true;
        Seq2Seq model(cfg, 999);
        QuantSession qs(qc);
        const auto got = model.greedyDecode(
            qs, batch.src, B, S, batch.src_pad.data(), max_new,
            Vocab::kBos, Vocab::kEos);
        const auto want = model.greedyDecodeReference(
            qs, batch.src, B, S, batch.src_pad.data(), max_new,
            Vocab::kBos, Vocab::kEos);
        EXPECT_EQ(want, got) << base.name;
    }
}

// --- Serving level ---------------------------------------------------

TEST(KvPacked, EngineTokenStreamsBitIdenticalAcrossCacheModes)
{
    const ModelConfig cfg = tinyLmConfig();
    const int64_t n_requests = 6, max_new = 10;

    for (const QuantConfig &qc : packableConfigs()) {
        CausalLM model(cfg, 4242);
        QuantConfig packed_qc = qc;
        packed_qc.kv_packed = true;
        QuantSession qs_packed(packed_qc);
        QuantSession qs_plain(qc);

        Rng rng(99);
        std::vector<Request> reqs;
        for (int64_t r = 0; r < n_requests; ++r) {
            Request req;
            req.prompt = makePrompt(rng, cfg.vocab, 3 + r % 4);
            req.max_new_tokens = max_new - r % 3;
            req.eos = Vocab::kEos;
            if (r % 2 == 1) {
                req.sampling.temperature = 0.8f;
                req.sampling.top_k = 8;
                req.sampling.seed = 1000 + static_cast<uint64_t>(r);
            }
            reqs.push_back(req);
        }

        // Packed-KV engine, fewer slots than requests (dirty reuse).
        ServeEngine engine(model, qs_packed, EngineConfig{2, 32});
        std::vector<std::shared_future<RequestResult>> futs;
        for (size_t r = 0; r < reqs.size(); ++r) {
            futs.push_back(engine.submit(reqs[r]));
            if (r % 2 == 1)
                engine.step();
        }
        engine.runUntilIdle();

        for (size_t r = 0; r < reqs.size(); ++r) {
            const RequestResult res = futs[r].get();
            ASSERT_EQ(RequestStatus::kOk, res.status) << qc.name;
            // Oracle: solo decode on the *fp32* cache — cross-mode
            // identity, not just packed-vs-packed consistency.
            const auto want =
                soloCausal(model, qs_plain, reqs[r].prompt,
                           reqs[r].max_new_tokens, reqs[r].eos,
                           reqs[r].sampling);
            EXPECT_EQ(want, res.tokens) << qc.name << " request " << r;
        }
    }
}

TEST(KvPacked, DirtySlotReuseStaysBitIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    CausalLM model(cfg, 31337);
    QuantSession qs(qc);
    QuantSession qs_plain(QuantConfig::posit8());

    // One slot: every request after the first inherits a dirty slot
    // whose code panels still hold the predecessor's rows.
    ServeEngine engine(model, qs, EngineConfig{1, 24});
    Rng rng(8);
    for (int round = 0; round < 3; ++round) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 4 + round);
        req.max_new_tokens = 6;
        req.eos = Vocab::kEos;
        auto fut = engine.submit(req);
        engine.runUntilIdle();
        const RequestResult res = fut.get();
        ASSERT_EQ(RequestStatus::kOk, res.status);
        const auto want = soloCausal(model, qs_plain, req.prompt,
                                     req.max_new_tokens, req.eos,
                                     req.sampling);
        EXPECT_EQ(want, res.tokens) << "round " << round;
    }
}

TEST(KvPacked, FaultInjectorFlipsPackedCodesAndIsolationHolds)
{
    const ModelConfig cfg = tinyLmConfig();
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    CausalLM model(cfg, 2025);
    QuantSession qs(qc);
    QuantSession qs_plain(QuantConfig::posit8());

    FaultConfig fc;
    fc.seed = 42;
    fc.kv_bitflip_rate = 1.0; // flip one code bit every step
    FaultInjector fault(fc);

    EngineConfig ec{3, 32};
    ec.fault = &fault;
    ServeEngine engine(model, qs, ec);

    Rng rng(17);
    std::vector<Request> reqs;
    std::vector<std::shared_future<RequestResult>> futs;
    for (int r = 0; r < 6; ++r) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 3 + r % 3);
        req.max_new_tokens = 8;
        req.eos = Vocab::kEos;
        reqs.push_back(req);
        futs.push_back(engine.submit(req));
    }
    engine.runUntilIdle();

    EXPECT_GT(fault.stats().bits_flipped, 0);
    for (size_t r = 0; r < futs.size(); ++r) {
        const RequestResult res = futs[r].get();
        // Every future resolves typed: a corrupted code decodes to a
        // wrong grid value (kOk with divergent tokens) or to the NaN
        // tail (kNumericFault) — never a crash, never a hang.
        ASSERT_TRUE(res.status == RequestStatus::kOk ||
                    res.status == RequestStatus::kNumericFault)
            << serve::toString(res.status);
        if (!fault.wasFaulted(res.id)) {
            // Untouched neighbours decode on bit-identically.
            ASSERT_EQ(RequestStatus::kOk, res.status);
            const auto want = soloCausal(model, qs_plain, reqs[r].prompt,
                                         reqs[r].max_new_tokens,
                                         reqs[r].eos, reqs[r].sampling);
            EXPECT_EQ(want, res.tokens) << "request " << r;
        }
    }
}

} // namespace
} // namespace qt8
