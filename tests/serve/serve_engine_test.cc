/**
 * @file
 * Serving-engine contract tests.
 *
 * The central claim: a request decoded by the continuous-batching
 * engine — admitted into an arbitrary pool slot, stepped alongside an
 * ever-changing set of neighbours, possibly into a dirty reused slot —
 * emits exactly the tokens a solo KV-cached decode of the same prompt
 * emits, bit for bit, for every static-grid quant config (fp32, bf16,
 * posit(8,1), E4M3, approx-softmax posit). The scheduler edge cases
 * (idle steps, simultaneous retirement, slot reuse, queue-full
 * rejection, capacity overflow) and sampling determinism ride on top.
 */
#include <gtest/gtest.h>

#include "data/tasks.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/sampler.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::SamplingParams;
using serve::ServeEngine;

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "serve-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

ModelConfig
tinySeq2SeqConfig()
{
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    return cfg;
}

/// The quant configs the engine must be exact under (same set as
/// decode_cache_test; int8's row-coupled dynamic scaling is excluded
/// by design).
std::vector<QuantConfig>
serveConfigs()
{
    return {QuantConfig::fp32(),    QuantConfig::bf16(),
            QuantConfig::posit8(),  QuantConfig::fp8(),
            QuantConfig::posit8Approx()};
}

/// Deterministic per-request prompts over the content-token range.
std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

/// Solo cached decode through the rigid DecodeState path — the
/// reference the engine must reproduce bit-for-bit. Mirrors the
/// engine's emission rules exactly (EOS excluded, max_new_tokens cap,
/// one sampler draw per generated token).
std::vector<int32_t>
soloCausal(CausalLM &model, QuantSession &qs,
           const std::vector<int32_t> &prompt, int64_t max_new,
           int32_t eos, const SamplingParams &sp)
{
    const int64_t cap = std::min(
        model.body.config().max_seq,
        static_cast<int64_t>(prompt.size()) + max_new + 1);
    DecodeState st = model.beginDecode(1, cap);
    Rng rng(sp.seed);
    Tensor logits;
    for (const int32_t tok : prompt) {
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    std::vector<int32_t> out;
    while (true) {
        const int32_t tok = serve::sampleToken(logits, 0, sp, rng);
        if (eos >= 0 && tok == eos)
            break;
        out.push_back(tok);
        if (static_cast<int64_t>(out.size()) >= max_new)
            break;
        const std::vector<int32_t> step{tok};
        logits = model.forwardIncremental(qs, step, st);
    }
    return out;
}

TEST(ServeEngine, CausalRequestsBitIdenticalToSoloDecode)
{
    const ModelConfig cfg = tinyLmConfig();
    const int64_t n_requests = 6, prompt_lo = 3, max_new = 10;

    for (const QuantConfig &qc : serveConfigs()) {
        CausalLM model(cfg, 4242);
        QuantSession qs(qc);

        Rng rng(99);
        std::vector<Request> reqs;
        for (int64_t r = 0; r < n_requests; ++r) {
            Request req;
            // Ragged prompts and budgets so retirements stagger.
            req.prompt =
                makePrompt(rng, cfg.vocab, prompt_lo + r % 4);
            req.max_new_tokens = max_new - r % 3;
            req.eos = Vocab::kEos;
            reqs.push_back(req);
        }

        // Fewer slots than requests, staggered submission: the engine
        // must mix prefill and decode rows and reuse slots.
        ServeEngine engine(model, qs,
                           EngineConfig{/*n_slots=*/2,
                                        /*slot_capacity=*/32});
        std::vector<std::shared_future<RequestResult>> futs;
        for (size_t r = 0; r < reqs.size(); ++r) {
            futs.push_back(engine.submit(reqs[r]));
            if (r % 2 == 1)
                engine.step(); // interleave arrivals with decoding
        }
        engine.runUntilIdle();

        for (size_t r = 0; r < reqs.size(); ++r) {
            const RequestResult res = futs[r].get();
            ASSERT_EQ(RequestStatus::kOk, res.status) << qc.name;
            const auto want =
                soloCausal(model, qs, reqs[r].prompt,
                           reqs[r].max_new_tokens, reqs[r].eos,
                           reqs[r].sampling);
            EXPECT_EQ(want, res.tokens)
                << qc.name << " request " << r;
        }
    }
}

TEST(ServeEngine, Seq2SeqRequestsBitIdenticalToSoloGreedyDecode)
{
    const ModelConfig cfg = tinySeq2SeqConfig();
    const int64_t B = 5, S = 16, max_new = 12;
    const Seq2SeqTask task(cfg.vocab, S, 10);
    Rng rng(123);
    const Seq2SeqBatch batch = task.sample(rng, B);

    for (const QuantConfig &qc : serveConfigs()) {
        Seq2Seq model(cfg, 7777);
        QuantSession qs(qc);

        ServeEngine engine(model, qs,
                           EngineConfig{/*n_slots=*/2,
                                        /*slot_capacity=*/16,
                                        /*cross_capacity=*/S});
        std::vector<std::shared_future<RequestResult>> futs;
        for (int64_t b = 0; b < B; ++b) {
            Request req;
            req.prompt.assign(
                batch.src.begin() + b * S,
                batch.src.begin() + (b + 1) * S);
            req.src_pad.assign(
                batch.src_pad.begin() + b * S,
                batch.src_pad.begin() + (b + 1) * S);
            req.max_new_tokens = max_new;
            req.eos = Vocab::kEos;
            req.bos = Vocab::kBos;
            futs.push_back(engine.submit(req));
        }
        engine.runUntilIdle();

        for (int64_t b = 0; b < B; ++b) {
            const RequestResult res =
                futs[static_cast<size_t>(b)].get();
            ASSERT_EQ(RequestStatus::kOk, res.status) << qc.name;
            const std::vector<int32_t> src(
                batch.src.begin() + b * S,
                batch.src.begin() + (b + 1) * S);
            const std::vector<uint8_t> pad(
                batch.src_pad.begin() + b * S,
                batch.src_pad.begin() + (b + 1) * S);
            const auto want = model.greedyDecode(
                qs, src, 1, S, pad.data(), max_new, Vocab::kBos,
                Vocab::kEos);
            EXPECT_EQ(want[0], res.tokens)
                << qc.name << " request " << b;
        }
    }
}

TEST(ServeEngine, EmptyQueueIdleStep)
{
    CausalLM model(tinyLmConfig(), 1);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{2, 16});

    EXPECT_FALSE(engine.step());
    EXPECT_FALSE(engine.step());
    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(2, engine.freeSlots());
    EXPECT_EQ(2, engine.metrics().idle_steps);
    EXPECT_EQ(0, engine.metrics().steps);
}

TEST(ServeEngine, AllSequencesFinishOnSameStep)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 2);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{3, 16});

    Rng rng(7);
    std::vector<std::shared_future<RequestResult>> futs;
    for (int r = 0; r < 3; ++r) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 2); // same length
        req.max_new_tokens = 5;                     // same budget
        req.eos = -1;                               // never EOS-stops
        futs.push_back(engine.submit(req));
    }
    // The step feeding prompt[1] already emits token 1, so 6 forward
    // steps retire all three at once.
    for (int s = 0; s < 6; ++s)
        EXPECT_TRUE(engine.step());
    EXPECT_EQ(0u, engine.activeCount());
    EXPECT_EQ(3, engine.freeSlots());
    for (auto &f : futs) {
        const RequestResult res = f.get();
        EXPECT_EQ(RequestStatus::kOk, res.status);
        EXPECT_EQ(5u, res.tokens.size());
    }
    EXPECT_FALSE(engine.step()); // drained -> idle
}

TEST(ServeEngine, DirtySlotReuseStaysBitIdentical)
{
    const ModelConfig cfg = tinyLmConfig();
    for (const QuantConfig &qc :
         {QuantConfig::fp32(), QuantConfig::posit8(), QuantConfig::fp8()}) {
        CausalLM model(cfg, 31337);
        QuantSession qs(qc);
        // One slot: every request after the first inherits a dirty
        // slot whose panels still hold the predecessor's rows.
        ServeEngine engine(model, qs, EngineConfig{1, 24});

        Rng rng(55);
        for (int r = 0; r < 3; ++r) {
            Request req;
            req.prompt = makePrompt(rng, cfg.vocab, 4 + r);
            req.max_new_tokens = 8;
            req.eos = Vocab::kEos;
            auto fut = engine.submit(req);
            engine.runUntilIdle();
            const RequestResult res = fut.get();
            ASSERT_EQ(RequestStatus::kOk, res.status) << qc.name;
            const auto want = soloCausal(model, qs, req.prompt,
                                         req.max_new_tokens, req.eos,
                                         req.sampling);
            EXPECT_EQ(want, res.tokens)
                << qc.name << " request " << r;
        }
    }
}

TEST(ServeEngine, QueueFullRejectionIsTypedAndImmediate)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 3);
    QuantSession qs(QuantConfig::fp32());
    EngineConfig ec{/*n_slots=*/1, /*slot_capacity=*/16};
    ec.max_queue_depth = 1;
    ServeEngine engine(model, qs, ec);

    Rng rng(11);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 4;

    auto f1 = engine.submit(req); // queued
    auto f2 = engine.submit(req); // queue full -> rejected
    auto f3 = engine.submit(req); // still full -> rejected

    // Rejections resolve without any scheduling work.
    EXPECT_EQ(RequestStatus::kRejectedQueueFull, f2.get().status);
    EXPECT_EQ(RequestStatus::kRejectedQueueFull, f3.get().status);
    EXPECT_TRUE(f2.get().tokens.empty());
    EXPECT_EQ(2, engine.metrics().rejected);

    engine.runUntilIdle();
    EXPECT_EQ(RequestStatus::kOk, f1.get().status);
    EXPECT_EQ(4u, f1.get().tokens.size());

    // Capacity freed: a fresh submission is accepted again.
    auto f4 = engine.submit(req);
    engine.runUntilIdle();
    EXPECT_EQ(RequestStatus::kOk, f4.get().status);
}

TEST(ServeEngine, SlotCapacityOverflowRetiresTyped)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 4);
    QuantSession qs(QuantConfig::fp32());
    // 8 cached positions per slot; prompt 4 + budget 100 overflows.
    ServeEngine engine(model, qs, EngineConfig{2, 8});

    Rng rng(21);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 4);
    req.max_new_tokens = 100;
    req.eos = -1;
    auto fut = engine.submit(req);
    engine.runUntilIdle();

    const RequestResult res = fut.get();
    EXPECT_EQ(RequestStatus::kCapacityExceeded, res.status);
    // capacity rows = 4 prompt + 4 fed generations; the step feeding
    // the last one still emits its successor: 8 - 4 + 1 tokens.
    EXPECT_EQ(5u, res.tokens.size());
    EXPECT_EQ(1, engine.metrics().truncated);
    EXPECT_EQ(2, engine.freeSlots()); // slot returned

    // The truncated prefix matches the solo decode of the same budget.
    const auto want = soloCausal(model, qs, req.prompt, 5, -1, {});
    EXPECT_EQ(want, res.tokens);
}

TEST(ServeEngine, KVCacheAppendReportsOverflowInsteadOfAsserting)
{
    KVCache cache;
    cache.reset(/*batch=*/2, /*cap=*/2, /*d_model=*/4);
    Tensor k({2, 4}), v({2, 4});
    EXPECT_TRUE(cache.canAppend());
    EXPECT_TRUE(cache.append(k, v));
    EXPECT_TRUE(cache.append(k, v));
    EXPECT_FALSE(cache.canAppend());
    EXPECT_FALSE(cache.append(k, v)); // typed refusal, no crash
    EXPECT_EQ(2, cache.len);

    KVSlots slots;
    slots.reset(/*slots=*/2, /*cap=*/1, /*d_model=*/4);
    const float row[4] = {1, 2, 3, 4};
    EXPECT_TRUE(slots.append(0, row, row));
    EXPECT_FALSE(slots.append(0, row, row));
    EXPECT_TRUE(slots.append(1, row, row));
    slots.release(0);
    EXPECT_TRUE(slots.append(0, row, row)); // reusable after release
}

TEST(ServeEngine, SampledDecodeReplaysDeterministically)
{
    const ModelConfig cfg = tinyLmConfig();
    for (const QuantConfig &qc :
         {QuantConfig::fp32(), QuantConfig::posit8()}) {
        CausalLM model(cfg, 616);
        QuantSession qs(qc);

        Rng rng(42);
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 4);
        req.max_new_tokens = 12;
        req.eos = -1;
        req.sampling.temperature = 0.8f;
        req.sampling.top_k = 8;
        req.sampling.seed = 2026;

        // Two engine runs with different batch company, plus the solo
        // replay: the per-request RNG stream makes all three identical.
        ServeEngine solo_like(model, qs, EngineConfig{1, 32});
        auto f_a = solo_like.submit(req);
        solo_like.runUntilIdle();

        ServeEngine crowded(model, qs, EngineConfig{3, 32});
        Request filler;
        filler.prompt = makePrompt(rng, cfg.vocab, 6);
        filler.max_new_tokens = 9;
        filler.sampling.temperature = 1.2f;
        filler.sampling.seed = 7;
        crowded.submit(filler);
        auto f_b = crowded.submit(req);
        crowded.submit(filler);
        crowded.runUntilIdle();

        const auto want = soloCausal(model, qs, req.prompt,
                                     req.max_new_tokens, req.eos,
                                     req.sampling);
        EXPECT_EQ(want, f_a.get().tokens) << qc.name;
        EXPECT_EQ(want, f_b.get().tokens) << qc.name;

        // Greedy is the temperature->0 limit and a distinct policy.
        SamplingParams greedy;
        const auto greedy_tokens = soloCausal(
            model, qs, req.prompt, req.max_new_tokens, req.eos, greedy);
        EXPECT_EQ(12u, greedy_tokens.size()) << qc.name;
    }
}

TEST(ServeEngine, CompletionCallbackFires)
{
    const ModelConfig cfg = tinyLmConfig();
    CausalLM model(cfg, 5);
    QuantSession qs(QuantConfig::fp32());
    ServeEngine engine(model, qs, EngineConfig{1, 16});

    Rng rng(66);
    Request req;
    req.prompt = makePrompt(rng, cfg.vocab, 3);
    req.max_new_tokens = 4;
    int fired = 0;
    RequestStatus seen = RequestStatus::kRejectedQueueFull;
    req.on_complete = [&](const RequestResult &r) {
        ++fired;
        seen = r.status;
    };
    engine.submit(req);
    engine.runUntilIdle();
    EXPECT_EQ(1, fired);
    EXPECT_EQ(RequestStatus::kOk, seen);

    const auto &m = engine.metrics();
    EXPECT_EQ(1, m.completed);
    EXPECT_EQ(4, m.generated_tokens);
    EXPECT_EQ(3, m.prompt_tokens);
    EXPECT_FALSE(m.dump().empty());
}

} // namespace
} // namespace qt8
