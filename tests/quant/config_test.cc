/**
 * @file
 * Tests for the quantization policy: fusion schedule semantics, preset
 * configurations, session quantization behavior and gradient scaling.
 */
#include <gtest/gtest.h>

#include "quant/config.h"

namespace qt8 {
namespace {

TEST(QuantConfig, FusionScheduleOrder)
{
    // Fusion removes quantization in the paper's sensitivity order.
    QuantConfig cfg = QuantConfig::posit8();
    EXPECT_TRUE(cfg.activeFwd(OpClass::kGemm));
    EXPECT_TRUE(cfg.activeFwd(OpClass::kAttnScaling));
    EXPECT_TRUE(cfg.activeFwd(OpClass::kResidual));

    cfg = cfg.withFusion(FusionLevel::kAttnScaling);
    EXPECT_TRUE(cfg.activeFwd(OpClass::kGemm));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kAttnScaling));
    EXPECT_TRUE(cfg.activeFwd(OpClass::kActivation));

    cfg = cfg.withFusion(FusionLevel::kActivation);
    EXPECT_FALSE(cfg.activeFwd(OpClass::kAttnScaling));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kActivation));
    EXPECT_TRUE(cfg.activeFwd(OpClass::kLayerNorm));

    cfg = cfg.withFusion(FusionLevel::kResidual);
    EXPECT_TRUE(cfg.activeFwd(OpClass::kGemm)); // GEMM always quantized
    EXPECT_FALSE(cfg.activeFwd(OpClass::kLayerNorm));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kResidual));
}

TEST(QuantConfig, Presets)
{
    EXPECT_EQ(QuantConfig::fp8().fwd.name(), "E4M3");
    EXPECT_EQ(QuantConfig::fp8().bwd.name(), "E5M2");
    EXPECT_EQ(QuantConfig::posit8().fwd.name(), "posit(8,1)");
    EXPECT_TRUE(QuantConfig::bf16().fwd.isIdentity());
    EXPECT_FALSE(QuantConfig::bf16().carrier.isIdentity());
    EXPECT_EQ(QuantConfig::posit8Approx().softmax, SoftmaxMode::kApproxBoth);
    EXPECT_FALSE(QuantConfig::fp32().anyQuant());
    EXPECT_TRUE(QuantConfig::posit8().anyQuant());
}

TEST(QuantSession, QuantFwdRespectsFusion)
{
    QuantSession active(QuantConfig::posit8());
    Tensor t = Tensor::full({4}, 1.03f); // rounds to 1.0 in posit8
    active.quantFwd(OpClass::kAttnScaling, t);
    EXPECT_EQ(t.at(0), 1.0f);

    QuantSession fused(
        QuantConfig::posit8().withFusion(FusionLevel::kAttnScaling));
    Tensor t2 = Tensor::full({4}, 1.03f);
    fused.quantFwd(OpClass::kAttnScaling, t2);
    // Fused: only the BF16 carrier applies; 1.03 is representable
    // within bf16's 7-bit mantissa resolution of ~0.004.
    EXPECT_NEAR(t2.at(0), 1.03f, 0.004f);
    EXPECT_NE(t2.at(0), 1.0f);
}

TEST(QuantSession, GemmAlwaysQuantized)
{
    QuantSession qs(
        QuantConfig::posit8().withFusion(FusionLevel::kResidual));
    Tensor t = Tensor::full({4}, 1.03f);
    qs.quantFwd(OpClass::kGemm, t);
    EXPECT_EQ(t.at(0), 1.0f);
}

TEST(QuantSession, BwdUsesBackwardFormatWithScaling)
{
    QuantConfig cfg = QuantConfig::posit8();
    cfg.per_tensor_scaled_grads = true;
    QuantSession qs(cfg);
    // Gradients way below posit8 minpos survive thanks to scaling.
    Tensor g = Tensor::full({64}, 1e-6f);
    qs.quantBwd(OpClass::kGemm, g, 0);
    EXPECT_NEAR(g.at(0), 1e-6f, 1e-7f);

    QuantConfig unscaled = QuantConfig::posit8();
    unscaled.per_tensor_scaled_grads = false;
    QuantSession qs2(unscaled);
    Tensor g2 = Tensor::full({64}, 1e-6f);
    qs2.quantBwd(OpClass::kGemm, g2, 0);
    EXPECT_EQ(g2.at(0), 0.0f); // flushed (below 2^-13)
}

TEST(QuantSession, BwdRespectsFusionMirroring)
{
    QuantSession qs(
        QuantConfig::posit8().withFusion(FusionLevel::kActivation));
    Tensor g = Tensor::full({4}, 1.03f);
    qs.quantBwd(OpClass::kActivation, g, 1);
    EXPECT_NE(g.at(0), 1.0f); // fused away -> carrier only
}

TEST(QuantSession, TapsObservePreQuantValues)
{
    QuantSession qs(QuantConfig::posit8());
    float seen = 0.0f;
    qs.fwd_tap = [&seen](OpClass, const Tensor &t) { seen = t.at(0); };
    Tensor t = Tensor::full({2}, 1.03f);
    qs.quantFwd(OpClass::kGemm, t);
    EXPECT_EQ(seen, 1.03f);   // tap sees raw value
    EXPECT_EQ(t.at(0), 1.0f); // tensor got quantized
}

TEST(QuantSession, Table1AblationConfigs)
{
    // GEMM + exactly one extra class (Table 1 rows).
    QuantConfig cfg;
    cfg.fwd = Quantizer::byName("posit8");
    cfg.quant_gemm = true;
    cfg.quant_layernorm = true;
    EXPECT_TRUE(cfg.activeFwd(OpClass::kGemm));
    EXPECT_TRUE(cfg.activeFwd(OpClass::kLayerNorm));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kAttnScaling));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kActivation));
    EXPECT_FALSE(cfg.activeFwd(OpClass::kResidual));
}

} // namespace
} // namespace qt8
