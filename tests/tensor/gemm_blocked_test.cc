/**
 * @file
 * Bit-identical equivalence of the blocked GEMM against the reference
 * triple loop across shapes (including m=1 GEMVs and non-multiple-of-
 * block sizes), all transpose combinations, and alpha/beta variants.
 * The blocked kernel never splits the k loop, so every element must
 * match the naive accumulation exactly, not just approximately.
 */
#include <vector>

#include <gtest/gtest.h>

#include "numerics/float_bits.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

struct Shape {
    int64_t m, n, k;
};

void
expectBitIdentical(const Tensor &got, const Tensor &want,
                   const std::string &what)
{
    ASSERT_EQ(got.numel(), want.numel());
    for (int64_t i = 0; i < got.numel(); ++i) {
        ASSERT_EQ(bits_from_float(got.at(i)), bits_from_float(want.at(i)))
            << what << " at flat index " << i << ": " << got.at(i)
            << " != " << want.at(i);
    }
}

TEST(GemmBlocked, BitIdenticalToReference)
{
    const std::vector<Shape> shapes = {
        {1, 64, 64},    // decode GEMV, exact block multiple
        {1, 300, 128},  // decode GEMV, ragged n
        {7, 5, 3},      // smaller than one block
        {64, 64, 64},   // single full tile
        {65, 129, 66},  // every dimension ragged
        {128, 96, 33},  // mixed
        {3, 200, 1},    // k = 1
    };
    const std::vector<std::pair<float, float>> scales = {
        {1.0f, 0.0f}, {0.5f, 1.0f}, {2.0f, -0.5f}};

    Rng rng(17);
    for (const Shape &s : shapes) {
        for (const bool ta : {false, true}) {
            for (const bool tb : {false, true}) {
                Tensor a(ta ? std::vector<int64_t>{s.k, s.m}
                            : std::vector<int64_t>{s.m, s.k});
                Tensor b(tb ? std::vector<int64_t>{s.n, s.k}
                            : std::vector<int64_t>{s.k, s.n});
                rng.fillNormal(a);
                rng.fillNormal(b);
                for (const auto &[alpha, beta] : scales) {
                    Tensor c0({s.m, s.n});
                    rng.fillNormal(c0); // beta path must read old C
                    Tensor c1 = c0;
                    gemm(a, ta, b, tb, c0, alpha, beta);
                    gemmReference(a, ta, b, tb, c1, alpha, beta);
                    expectBitIdentical(
                        c0, c1,
                        "m=" + std::to_string(s.m) +
                            " n=" + std::to_string(s.n) +
                            " k=" + std::to_string(s.k) +
                            " ta=" + std::to_string(ta) +
                            " tb=" + std::to_string(tb) +
                            " alpha=" + std::to_string(alpha) +
                            " beta=" + std::to_string(beta));
                }
            }
        }
    }
}

TEST(GemmBlocked, MatmulStillWorks)
{
    // Identity sanity: A . I == A through the blocked path.
    Rng rng(19);
    Tensor a({70, 70});
    rng.fillNormal(a);
    Tensor eye({70, 70});
    for (int64_t i = 0; i < 70; ++i)
        eye.at(i, i) = 1.0f;
    const Tensor c = matmul(a, eye);
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(GemmBlocked, ShapeMismatchThrows)
{
    Tensor a({4, 5}), b({6, 7}), c({4, 7});
    EXPECT_THROW(gemm(a, false, b, false, c), std::invalid_argument);
}

TEST(SumRows, RowMajorTraversalMatchesOldKernel)
{
    // The cache-friendly rewrite must keep per-column ascending-row
    // accumulation (same rounding as the old column-major walk).
    Rng rng(23);
    Tensor t({37, 513}); // spans multiple column stripes
    rng.fillNormal(t);
    const Tensor s = sumRows(t);
    for (int64_t j = 0; j < t.dim(1); ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < t.dim(0); ++i)
            acc += t.at(i, j);
        EXPECT_EQ(s.at(j), static_cast<float>(acc)) << "col " << j;
    }
}

TEST(SumRows, AddVariantAccumulates)
{
    Rng rng(27);
    Tensor t({8, 300});
    rng.fillNormal(t);
    Tensor acc({300});
    rng.fillNormal(acc);
    // Reference: old two-step path.
    Tensor want = acc;
    addInPlace(want, sumRows(t));
    sumRowsAdd(acc, t);
    for (int64_t j = 0; j < acc.numel(); ++j)
        EXPECT_EQ(acc.at(j), want.at(j)) << "col " << j;
}

} // namespace
} // namespace qt8
