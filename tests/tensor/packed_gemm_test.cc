/**
 * @file
 * Contract tests for true 8-bit packed weights and the fused quantized
 * GEMM:
 *
 *  1. Exhaustive pack/unpack round trips per 8-bit grid format — every
 *     grid value and random data decode bit-identically to the fake-
 *     quantized fp32 tensor.
 *  2. gemmQuantized vs decode-then-blocked-gemm and vs the unfused
 *     reference, bit for bit, across shapes (decode GEMVs included),
 *     both transposes, and alpha/beta variants.
 *  3. Fused epilogue (bias, quant, GeLU, residual) vs the same stages
 *     run as separate full-tensor passes — values bit-identical, health
 *     counters exact (sums to tolerance: tile order differs).
 *  4. Model-level identity: CausalLM forward / incremental decode /
 *     the continuous-batching serve engine with weights_packed on emit
 *     bit-identical logits and tokens to the fake-quantized path.
 */
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/tasks.h"
#include "nn/model.h"
#include "numerics/float_bits.h"
#include "serve/engine.h"
#include "serve/sampler.h"
#include "tensor/ops.h"
#include "tensor/packed.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

using serve::EngineConfig;
using serve::Request;
using serve::RequestResult;
using serve::RequestStatus;
using serve::ServeEngine;

const std::vector<std::string> kPackedFormats = {
    "posit(8,1)", "posit(8,2)", "e4m3", "e5m2"};

void
expectBitIdentical(const Tensor &got, const Tensor &want,
                   const std::string &what)
{
    ASSERT_EQ(got.numel(), want.numel()) << what;
    for (int64_t i = 0; i < got.numel(); ++i) {
        ASSERT_EQ(bits_from_float(got.at(i)), bits_from_float(want.at(i)))
            << what << " at flat index " << i << ": " << got.at(i)
            << " != " << want.at(i);
    }
}

TEST(PackedTensor, ExhaustiveRoundTripPerFormat)
{
    for (const std::string &name : kPackedFormats) {
        const Quantizer q = Quantizer::byName(name);
        ASSERT_TRUE(PackedTensor::packable(q)) << name;
        const std::vector<float> &vals = q.gridValues();
        ASSERT_LE(vals.size(), 256u) << name;

        // Every representable value must survive pack -> unpack with
        // its own code (quantize is idempotent on grid points).
        Tensor grid({1, static_cast<int64_t>(vals.size())});
        for (size_t i = 0; i < vals.size(); ++i)
            grid.data()[i] = vals[i];
        const PackedTensor pg = PackedTensor::pack(grid, q);
        EXPECT_EQ(pg.packedBytes(), vals.size()) << name;
        EXPECT_EQ(pg.fp32Bytes(), vals.size() * sizeof(float)) << name;
        for (size_t i = 0; i < vals.size(); ++i)
            EXPECT_EQ(pg.codes()[i], i) << name << " value " << vals[i];
        expectBitIdentical(pg.unpack(), grid, name + " grid values");

        // Random data decodes to exactly the fake-quantized tensor.
        Rng rng(7);
        Tensor t({37, 23});
        rng.fillNormal(t, 4.0);
        t.data()[0] = 0.0f;
        t.data()[1] = -0.0f;
        t.data()[2] = 1e30f;  // saturates
        t.data()[3] = -1e30f;
        t.data()[4] = 1e-30f; // underflows
        Tensor want = t;
        q.quantizeInPlace(want.data(), static_cast<size_t>(want.numel()));
        expectBitIdentical(PackedTensor::pack(t, q).unpack(), want,
                           name + " random");
    }
}

TEST(PackedTensor, RejectsUnpackableInputs)
{
    const Quantizer q = Quantizer::byName("posit8");
    EXPECT_FALSE(PackedTensor::packable(Quantizer::identity()));
    EXPECT_FALSE(PackedTensor::packable(Quantizer::int8()));
    EXPECT_FALSE(PackedTensor::packable(Quantizer::bf16()));
    EXPECT_THROW(PackedTensor::pack(Tensor({4}), q),
                 std::invalid_argument);
    Tensor bad({2, 2});
    bad.data()[3] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_THROW(PackedTensor::pack(bad, q), std::invalid_argument);
}

struct Shape {
    int64_t m, n, k;
};

TEST(GemmQuantized, BitIdenticalToDecodeThenGemm)
{
    const std::vector<Shape> shapes = {
        {1, 64, 64},   // decode GEMV, exact tile
        {1, 300, 513}, // decode GEMV, ragged n, k split across chunks
        {7, 5, 3},     // smaller than one tile
        {64, 8, 256},  // exactly one tile and one k chunk
        {65, 129, 66}, // every dimension ragged
        {3, 200, 1},   // k = 1
    };
    const std::vector<std::pair<float, float>> scales = {
        {1.0f, 0.0f}, {0.5f, 1.0f}, {2.0f, -0.5f}};
    const Quantizer q = Quantizer::byName("posit8");

    Rng rng(17);
    for (const Shape &s : shapes) {
        for (const bool ta : {false, true}) {
            for (const bool tw : {false, true}) {
                Tensor a(ta ? std::vector<int64_t>{s.k, s.m}
                            : std::vector<int64_t>{s.m, s.k});
                Tensor w(tw ? std::vector<int64_t>{s.n, s.k}
                            : std::vector<int64_t>{s.k, s.n});
                rng.fillNormal(a);
                rng.fillNormal(w);
                const PackedTensor pw = PackedTensor::pack(w, q);
                const Tensor wf = pw.unpack();
                for (const auto &[alpha, beta] : scales) {
                    const std::string what =
                        "m=" + std::to_string(s.m) +
                        " n=" + std::to_string(s.n) +
                        " k=" + std::to_string(s.k) +
                        " ta=" + std::to_string(ta) +
                        " tw=" + std::to_string(tw) +
                        " alpha=" + std::to_string(alpha) +
                        " beta=" + std::to_string(beta);
                    Tensor c0({s.m, s.n});
                    rng.fillNormal(c0); // beta path must read old C
                    Tensor c1 = c0;
                    Tensor c2 = c0;
                    gemmQuantized(a, ta, pw, tw, c0, alpha, beta);
                    gemm(a, ta, wf, tw, c1, alpha, beta);
                    gemmQuantizedReference(a, ta, pw, tw, c2, alpha,
                                           beta);
                    expectBitIdentical(c0, c1, what + " vs blocked");
                    expectBitIdentical(c0, c2, what + " vs reference");
                }
            }
        }
    }
}

TEST(GemmQuantized, FusedEpilogueBitIdenticalToSeparatePasses)
{
    const Quantizer fwd = Quantizer::byName("e4m3");
    const Quantizer carrier = Quantizer::bf16();
    const int64_t m = 33, n = 70, k = 129;

    Rng rng(23);
    Tensor a({m, k}), w({n, k}), bias({n}), skip({m, n});
    rng.fillNormal(a);
    rng.fillNormal(w);
    rng.fillNormal(bias, 0.5);
    rng.fillNormal(skip);
    const PackedTensor pw = PackedTensor::pack(w, fwd);

    // The FFN fc1 tail: bias, carrier, activation-point quant, GeLU,
    // carrier — and the fc2 tail: bias, carrier, residual-point quant,
    // residual add, carrier.
    for (const bool residual_tail : {false, true}) {
        GemmEpilogue fused, unfused;
        QuantHealth hf[3], hu[3];
        for (GemmEpilogue *e : {&fused, &unfused}) {
            QuantHealth *h = (e == &fused) ? hf : hu;
            e->bias(bias.data());
            e->quant(&carrier, &h[0]);
            e->quant(&fwd, &h[1]);
            if (residual_tail)
                e->residual(skip.data());
            else
                e->gelu();
            e->quant(&carrier, &h[2]);
        }
        Tensor c0({m, n}), c1({m, n});
        gemmQuantized(a, false, pw, true, c0, 1.0f, 0.0f, &fused);
        gemmQuantizedReference(a, false, pw, true, c1, 1.0f, 0.0f,
                               &unfused);
        expectBitIdentical(c0, c1,
                           residual_tail ? "residual tail" : "gelu tail");
        for (int s = 0; s < 3; ++s) {
            EXPECT_EQ(hf[s].count, hu[s].count) << s;
            EXPECT_EQ(hf[s].saturated, hu[s].saturated) << s;
            EXPECT_EQ(hf[s].underflow, hu[s].underflow) << s;
            EXPECT_EQ(hf[s].nonfinite, hu[s].nonfinite) << s;
            EXPECT_DOUBLE_EQ(hf[s].amax, hu[s].amax) << s;
            // Tile-order double accumulation: equal to tolerance only.
            EXPECT_NEAR(hf[s].abs_err_sum, hu[s].abs_err_sum,
                        1e-9 * (1.0 + hu[s].abs_err_sum))
                << s;
        }
    }
}

// ---- Model-level identity ------------------------------------------

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "packed-test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

std::vector<QuantConfig>
packedConfigs()
{
    // Exercise both the activation/residual quant points (no fusion)
    // and the carrier-fallback epilogue branches (full fusion).
    return {QuantConfig::posit8(), QuantConfig::fp8(),
            QuantConfig::posit8().withFusion(FusionLevel::kResidual)};
}

std::vector<int32_t>
makePrompt(Rng &rng, int64_t vocab, int64_t len)
{
    std::vector<int32_t> p(static_cast<size_t>(len));
    for (auto &t : p) {
        t = static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent));
    }
    return p;
}

TEST(WeightsPacked, CausalForwardBitIdenticalToFakeQuant)
{
    const ModelConfig cfg = tinyLmConfig();
    for (const QuantConfig &qc : packedConfigs()) {
        CausalLM model(cfg, 4242);
        QuantSession qs_plain(qc);
        QuantConfig qc_packed = qc;
        qc_packed.weights_packed = true;
        QuantSession qs_packed(qc_packed);

        Rng rng(5);
        const int64_t batch = 2, seq = 6;
        std::vector<int32_t> ids;
        for (int64_t i = 0; i < batch * seq; ++i)
            ids.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(cfg.vocab - Vocab::kFirstContent)));

        const Tensor want = model.forward(qs_plain, ids, batch, seq);
        const Tensor got = model.forward(qs_packed, ids, batch, seq);
        expectBitIdentical(got, want, qc.name + " batched forward");

        // Incremental decode over the KV cache.
        DecodeState st0 = model.beginDecode(1, 16);
        DecodeState st1 = model.beginDecode(1, 16);
        const std::vector<int32_t> prompt =
            makePrompt(rng, cfg.vocab, 5);
        for (const int32_t tok : prompt) {
            const std::vector<int32_t> step{tok};
            const Tensor l0 =
                model.forwardIncremental(qs_plain, step, st0);
            const Tensor l1 =
                model.forwardIncremental(qs_packed, step, st1);
            expectBitIdentical(l1, l0, qc.name + " incremental");
        }
    }
}

TEST(WeightsPacked, ServeEngineBitIdenticalToFakeQuant)
{
    const ModelConfig cfg = tinyLmConfig();
    const int64_t n_requests = 4, max_new = 8;
    const QuantConfig qc = QuantConfig::posit8();
    QuantConfig qc_packed = qc;
    qc_packed.weights_packed = true;

    CausalLM model(cfg, 31337);
    QuantSession qs_plain(qc);
    QuantSession qs_packed(qc_packed);

    Rng rng(99);
    std::vector<Request> reqs;
    for (int64_t r = 0; r < n_requests; ++r) {
        Request req;
        req.prompt = makePrompt(rng, cfg.vocab, 3 + r % 3);
        req.max_new_tokens = max_new - r % 2;
        req.eos = Vocab::kEos;
        reqs.push_back(req);
    }

    // Packed-weight engine with slot reuse and mixed prefill/decode.
    ServeEngine engine(model, qs_packed,
                       EngineConfig{/*n_slots=*/2, /*slot_capacity=*/32});
    std::vector<std::shared_future<RequestResult>> futs;
    for (size_t r = 0; r < reqs.size(); ++r) {
        futs.push_back(engine.submit(reqs[r]));
        if (r % 2 == 1)
            engine.step();
    }
    engine.runUntilIdle();

    // Fake-quantized solo decode is the oracle.
    for (size_t r = 0; r < reqs.size(); ++r) {
        const RequestResult res = futs[r].get();
        ASSERT_EQ(RequestStatus::kOk, res.status) << r;
        DecodeState st = model.beginDecode(1, 32);
        Rng srng(reqs[r].sampling.seed);
        Tensor logits;
        for (const int32_t tok : reqs[r].prompt) {
            const std::vector<int32_t> step{tok};
            logits = model.forwardIncremental(qs_plain, step, st);
        }
        std::vector<int32_t> want;
        while (true) {
            const int32_t tok =
                serve::sampleToken(logits, 0, reqs[r].sampling, srng);
            if (tok == reqs[r].eos)
                break;
            want.push_back(tok);
            if (static_cast<int64_t>(want.size()) >=
                reqs[r].max_new_tokens)
                break;
            const std::vector<int32_t> step{tok};
            logits = model.forwardIncremental(qs_plain, step, st);
        }
        EXPECT_EQ(want, res.tokens) << "request " << r;
    }
}

TEST(WeightsPacked, FallsBackWhenNotPackable)
{
    // int8 (dynamic scale) and fp32 (identity) cannot pack; the flag
    // must be a transparent no-op rather than an error.
    const ModelConfig cfg = tinyLmConfig();
    for (QuantConfig qc :
         {QuantConfig::fp32(), QuantConfig::int8PerTensor()}) {
        CausalLM model(cfg, 7);
        QuantSession qs_plain(qc);
        QuantConfig qc_packed = qc;
        qc_packed.weights_packed = true;
        QuantSession qs_packed(qc_packed);

        const std::vector<int32_t> ids = {8, 9, 10, 11};
        const Tensor want = model.forward(qs_plain, ids, 1, 4);
        const Tensor got = model.forward(qs_packed, ids, 1, 4);
        expectBitIdentical(got, want, qc.name + " fallback");
    }
}

} // namespace
} // namespace qt8
