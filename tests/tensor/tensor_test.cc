/**
 * @file
 * Tests for the dense tensor container, kernels, and RNG.
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8 {
namespace {

TEST(Tensor, ShapeAndAccess)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.rank(), 2);
    t.at(1, 2) = 5.0f;
    EXPECT_EQ(t.at(1, 2), 5.0f);
    EXPECT_EQ(t.at(5), 5.0f); // row-major flat index
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3});
    for (int64_t i = 0; i < 6; ++i)
        t.at(i) = static_cast<float>(i);
    const Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.at(2, 1), 5.0f);
    EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FullFills)
{
    const Tensor t = Tensor::full({4}, 2.5f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.at(i), 2.5f);
}

// Reference GEMM for validation.
Tensor
refMatmul(const Tensor &a, const Tensor &b, bool ta, bool tb)
{
    const int64_t m = ta ? a.dim(1) : a.dim(0);
    const int64_t k = ta ? a.dim(0) : a.dim(1);
    const int64_t n = tb ? b.dim(0) : b.dim(1);
    Tensor c({m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0;
            for (int64_t t = 0; t < k; ++t) {
                const float av = ta ? a.at(t, i) : a.at(i, t);
                const float bv = tb ? b.at(j, t) : b.at(t, j);
                acc += static_cast<double>(av) * bv;
            }
            c.at(i, j) = static_cast<float>(acc);
        }
    return c;
}

class GemmTranspose
    : public ::testing::TestWithParam<std::pair<bool, bool>>
{};

TEST_P(GemmTranspose, MatchesReference)
{
    const auto [ta, tb] = GetParam();
    Rng rng(42);
    Tensor a(ta ? std::vector<int64_t>{7, 5} : std::vector<int64_t>{5, 7});
    Tensor b(tb ? std::vector<int64_t>{6, 7} : std::vector<int64_t>{7, 6});
    rng.fillNormal(a);
    rng.fillNormal(b);
    const Tensor got = matmul(a, b, ta, tb);
    const Tensor want = refMatmul(a, b, ta, tb);
    ASSERT_TRUE(got.sameShape(want));
    for (int64_t i = 0; i < got.numel(); ++i)
        EXPECT_NEAR(got.at(i), want.at(i), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmTranspose,
    ::testing::Values(std::make_pair(false, false),
                      std::make_pair(false, true),
                      std::make_pair(true, false),
                      std::make_pair(true, true)));

TEST(Gemm, AlphaBeta)
{
    Tensor a({2, 2}), b({2, 2}), c({2, 2});
    a.at(0, 0) = 1;
    a.at(1, 1) = 1; // identity
    b.at(0, 0) = 3;
    b.at(0, 1) = 4;
    b.at(1, 0) = 5;
    b.at(1, 1) = 6;
    c = Tensor::full({2, 2}, 10.0f);
    gemm(a, false, b, false, c, 2.0f, 1.0f);
    EXPECT_EQ(c.at(0, 0), 16.0f); // 2*3 + 10
    EXPECT_EQ(c.at(1, 1), 22.0f);
}

TEST(Ops, SoftmaxRowsStable)
{
    Tensor t({2, 3});
    t.at(0, 0) = 1000.0f; // large logits must not overflow
    t.at(0, 1) = 1000.0f;
    t.at(0, 2) = 0.0f;
    t.at(1, 0) = -5.0f;
    t.at(1, 1) = 0.0f;
    t.at(1, 2) = 5.0f;
    softmaxRowsInPlace(t);
    EXPECT_NEAR(t.at(0, 0), 0.5f, 1e-5f);
    EXPECT_NEAR(t.at(0, 2), 0.0f, 1e-5f);
    double sum = t.at(1, 0) + t.at(1, 1) + t.at(1, 2);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_GT(t.at(1, 2), t.at(1, 1));
}

TEST(Ops, GeluValuesAndGradient)
{
    EXPECT_NEAR(geluScalar(0.0f), 0.0f, 1e-6f);
    EXPECT_NEAR(geluScalar(10.0f), 10.0f, 1e-3f);
    EXPECT_NEAR(geluScalar(-10.0f), 0.0f, 1e-3f);
    // Finite-difference check of the gradient.
    for (float x : {-2.0f, -0.5f, 0.0f, 0.3f, 1.7f}) {
        const float h = 1e-3f;
        const float num =
            (geluScalar(x + h) - geluScalar(x - h)) / (2.0f * h);
        EXPECT_NEAR(geluGradScalar(x), num, 1e-3f) << "x=" << x;
    }
}

TEST(Ops, RowBiasAndSumRows)
{
    Tensor t({2, 3});
    Tensor bias({3});
    bias.at(0) = 1;
    bias.at(1) = 2;
    bias.at(2) = 3;
    addRowBias(t, bias);
    EXPECT_EQ(t.at(1, 2), 3.0f);
    const Tensor s = sumRows(t);
    EXPECT_EQ(s.at(0), 2.0f);
    EXPECT_EQ(s.at(2), 6.0f);
}

TEST(Ops, AmaxMeanFinite)
{
    Tensor t({3});
    t.at(0) = -7.0f;
    t.at(1) = 2.0f;
    t.at(2) = 5.0f;
    EXPECT_DOUBLE_EQ(amax(t), 7.0);
    EXPECT_DOUBLE_EQ(mean(t), 0.0);
    EXPECT_TRUE(allFinite(t));
    t.at(1) = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(allFinite(t));
}

TEST(Ops, AmaxSkipsNonFinite)
{
    Tensor t({4});
    t.at(0) = 3.0f;
    t.at(1) = std::numeric_limits<float>::quiet_NaN();
    t.at(2) = std::numeric_limits<float>::infinity();
    t.at(3) = -5.0f;
    EXPECT_DOUBLE_EQ(amax(t), 5.0);
    // All non-finite: amax falls back to 0 (same as an empty tensor).
    Tensor u({1});
    u.at(0) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_DOUBLE_EQ(amax(u), 0.0);
}

TEST(Ops, RowArgmaxSkipsNan)
{
    Tensor t({2, 4});
    t.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
    t.at(0, 1) = 1.0f;
    t.at(0, 2) = 9.0f;
    t.at(0, 3) = std::numeric_limits<float>::quiet_NaN();
    // A leading NaN used to freeze the answer at index 0.
    EXPECT_EQ(rowArgmax(t, 0), 2);
    for (int64_t j = 0; j < 4; ++j)
        t.at(1, j) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(rowArgmax(t, 1), 0); // all-NaN rows pick a fixed index
}

TEST(Ops, SoftmaxEmptyLastDimIsNoOp)
{
    Tensor t({3, 0});
    softmaxRowsInPlace(t); // used to divide by zero computing rows
    EXPECT_EQ(t.numel(), 0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0, sumsq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, RandintRange)
{
    Rng rng(77);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.randint(10);
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 10);
        counts[static_cast<size_t>(v)]++;
    }
    for (int c : counts)
        EXPECT_GT(c, 800); // roughly uniform
}

TEST(Rng, ForkIndependence)
{
    Rng a(123);
    Rng b = a.fork();
    // Forked stream differs from parent's continued stream.
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace qt8
