/**
 * @file
 * Tests for the posit bit-trick approximations (sigmoid, reciprocal,
 * exponential) and the approximate softmax with its custom backward.
 */
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "numerics/posit_ops.h"

namespace qt8 {
namespace {

TEST(ApproxSigmoid, KnownPointsP80)
{
    const PositSpec &p0 = posit8_0();
    // sigmoid(0) = 0.5 exactly under the bit trick.
    const uint32_t zero = p0.encode(0.0);
    EXPECT_DOUBLE_EQ(p0.decode(approxSigmoidP0Code(p0, zero)), 0.5);
    // Large positive -> close to 1; large negative -> 0.
    EXPECT_GT(p0.decode(approxSigmoidP0Code(p0, p0.encode(64.0))), 0.9);
    EXPECT_DOUBLE_EQ(p0.decode(approxSigmoidP0Code(p0, p0.encode(-64.0))),
                     0.0);
}

TEST(ApproxSigmoid, CloseToExactSigmoid)
{
    const PositSpec &p = posit8_1();
    for (double x = -6.0; x <= 6.0; x += 0.25) {
        const double approx = approxSigmoid(p, x);
        const double exact = 1.0 / (1.0 + std::exp(-x));
        EXPECT_NEAR(approx, exact, 0.08) << "x=" << x;
    }
}

TEST(ApproxSigmoid, Monotone)
{
    const PositSpec &p = posit8_1();
    double prev = -1.0;
    for (double x = -10.0; x <= 10.0; x += 0.125) {
        const double s = approxSigmoid(p, x);
        EXPECT_GE(s, prev) << "x=" << x;
        prev = s;
    }
}

TEST(ApproxReciprocal, ExactAtInverseGridStructure)
{
    const PositSpec &p = posit8_1();
    // The bitwise reciprocal is within one grid step of the true
    // reciprocal for in-range values (piece-wise linear, Figure 7).
    for (double x : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 3.0, 1.5, 0.75}) {
        const double r = approxReciprocal(p, x);
        EXPECT_NEAR(r, 1.0 / x, 0.13 / x) << "x=" << x;
    }
}

TEST(ApproxReciprocal, SignHandling)
{
    const PositSpec &p = posit8_1();
    EXPECT_LT(approxReciprocal(p, -2.0), 0.0);
    EXPECT_NEAR(approxReciprocal(p, -2.0), -0.5, 0.07);
}

TEST(ApproxReciprocal, IsBitwiseInvolutionOnNonSignBits)
{
    const PositSpec &p = posit8_1();
    for (uint32_t c = 0; c < 256; ++c) {
        EXPECT_EQ(approxReciprocalCode(p, approxReciprocalCode(p, c)), c);
    }
}

TEST(ApproxReciprocal, PiecewiseLinearBetweenPowersOfTwo)
{
    // Figure 7: segments connect points with x-values at powers of 2.
    // Check that the approximation within (2, 4) is (close to) linear:
    // sampled second differences vanish.
    const PositSpec &p = posit8_1();
    std::vector<double> xs, ys;
    for (double x = 2.0; x <= 4.0; x += 0.125) {
        xs.push_back(x);
        ys.push_back(approxReciprocal(p, x));
    }
    // The grid quantizes outputs, so require approximate linearity.
    const double slope_first = (ys[4] - ys[0]) / (xs[4] - xs[0]);
    const double slope_last =
        (ys.back() - ys[ys.size() - 5]) / (xs.back() - xs[xs.size() - 5]);
    EXPECT_NEAR(slope_first, slope_last, 0.02);
    EXPECT_LT(slope_first, 0.0);
}

TEST(ApproxReciprocalDerivative, MatchesSegmentSlope)
{
    // Eq. 5: f' = -2^(-floor(log2 s)*2 - 1). The segment through
    // (2^n, 2^-n) and (2^(n+1), 2^-(n+1)) has slope
    // (2^-(n+1) - 2^-n) / (2^(n+1) - 2^n) = -2^(-2n-1).
    EXPECT_DOUBLE_EQ(approxReciprocalDerivative(1.0), -0.5);
    EXPECT_DOUBLE_EQ(approxReciprocalDerivative(2.0), -0.125);
    EXPECT_DOUBLE_EQ(approxReciprocalDerivative(3.0), -0.125);
    EXPECT_DOUBLE_EQ(approxReciprocalDerivative(4.0), -1.0 / 32);
    EXPECT_DOUBLE_EQ(approxReciprocalDerivative(0.5), -2.0);
}

TEST(ApproxExp, RawApproximationFailsToConverge)
{
    // Figure 7: without thresholding, the approximation does not
    // converge to 0 for very negative inputs.
    const PositSpec &p = posit8_1();
    ApproxExpConfig raw;
    raw.theta = -1e9; // disable threshold
    raw.shift = false;
    // The raw curve plateaus well above the true exponential in the
    // tail (exp(-5) = 0.0067); the paper reports a 9.8% accuracy loss
    // from this before thresholding.
    EXPECT_GT(approxExp(p, -5.0, raw), 0.05);
    EXPECT_GT(approxExp(p, -4.0, raw), 0.05);
}

TEST(ApproxExp, ThresholdRestoresMasking)
{
    const PositSpec &p = posit8_1();
    ApproxExpConfig cfg; // theta = -4
    EXPECT_DOUBLE_EQ(approxExp(p, -12.0, cfg), 0.0);
    EXPECT_DOUBLE_EQ(approxExp(p, -4096.0, cfg), 0.0);
    EXPECT_GT(approxExp(p, -2.0, cfg), 0.0);
}

TEST(ApproxExp, ShiftedCurveTracksExp)
{
    const PositSpec &p = posit8_1();
    ApproxExpConfig cfg; // theta=-4, eps=1.125, shift on
    // The shifted curve tracks exp within the coarse Posit8/sigmoid-trick
    // resolution (the trick saturates below 1, so errors up to ~0.2 near
    // x=0 are inherent; Figure 7 shows the same qualitative gap).
    for (double x = -3.5; x <= 0.0; x += 0.25) {
        const double approx = approxExp(p, x, cfg);
        const double exact = std::exp(x);
        EXPECT_NEAR(approx, exact, 0.2) << "x=" << x;
    }
    // ...and the tail is pinned to ~0, unlike the raw curve.
    EXPECT_LT(approxExp(p, -3.9, cfg), 0.05);
    EXPECT_NEAR(approxExp(p, 0.0, cfg), 1.0, 0.2);
}

TEST(ApproxExp, ShiftReducesErrorVersusUnshifted)
{
    const PositSpec &p = posit8_1();
    ApproxExpConfig shifted;  // eps = 1.125
    ApproxExpConfig unshifted;
    unshifted.shift = false;  // subtract exactly 1

    double err_s = 0.0, err_u = 0.0;
    for (double x = -4.0; x <= 0.0; x += 0.125) {
        err_s += std::fabs(approxExp(p, x, shifted) - std::exp(x));
        err_u += std::fabs(approxExp(p, x, unshifted) - std::exp(x));
    }
    EXPECT_LT(err_s, err_u);
}

TEST(ApproxExp, NonNegativeOutputs)
{
    const PositSpec &p = posit8_1();
    ApproxExpConfig cfg;
    for (double x = -8.0; x <= 0.5; x += 0.0625)
        EXPECT_GE(approxExp(p, x, cfg), 0.0) << "x=" << x;
}

TEST(ApproxPositSoftmax, SumsToApproxOne)
{
    const PositSpec &p = posit8_1();
    ApproxPositSoftmax sm(p, ApproxExpConfig{});
    const int k = 8;
    std::vector<float> z = {0.5f, -1.0f, 2.0f, 0.0f,
                            1.0f, -0.5f, 0.25f, -2.0f};
    std::vector<float> out(k), e(k);
    double sum = 0.0;
    sm.forward(z.data(), out.data(), k, e.data(), &sum);
    double total = 0.0;
    for (float o : out) {
        EXPECT_GE(o, 0.0f);
        total += o;
    }
    EXPECT_NEAR(total, 1.0, 0.25);
    // Largest logit gets the largest probability.
    EXPECT_EQ(std::max_element(out.begin(), out.end()) - out.begin(), 2);
}

TEST(ApproxPositSoftmax, MaskedPositionsGetZero)
{
    const PositSpec &p = posit8_1();
    ApproxPositSoftmax sm(p, ApproxExpConfig{});
    const int k = 4;
    // -4096 models an attention mask (-inf saturated to -maxpos).
    std::vector<float> z = {1.0f, 0.5f, -4096.0f, -4096.0f};
    std::vector<float> out(k), e(k);
    double sum = 0.0;
    sm.forward(z.data(), out.data(), k, e.data(), &sum);
    EXPECT_EQ(out[2], 0.0f);
    EXPECT_EQ(out[3], 0.0f);
    EXPECT_GT(out[0], out[1]);
}

TEST(ApproxPositSoftmax, ExactModeMatchesStandardBackward)
{
    // With both approximations off, the backward must be the standard
    // softmax Jacobian action.
    const PositSpec &p = posit8_1();
    ApproxPositSoftmax sm(p, ApproxExpConfig{}, false, false);
    const int k = 5;
    std::vector<float> z = {0.1f, -0.4f, 0.9f, 0.0f, -1.2f};
    std::vector<float> out(k), e(k);
    double sum = 0.0;
    sm.forward(z.data(), out.data(), k, e.data(), &sum);

    std::vector<float> g = {0.3f, -0.7f, 0.2f, 0.05f, 1.0f};
    std::vector<float> gin(k);
    sm.backward(g.data(), out.data(), e.data(), sum, gin.data(), k);

    double dot = 0.0;
    for (int j = 0; j < k; ++j)
        dot += static_cast<double>(g[j]) * out[j];
    for (int i = 0; i < k; ++i) {
        EXPECT_NEAR(gin[i], out[i] * (g[i] - dot), 1e-5);
    }
}

TEST(ApproxPositSoftmax, ApproxBackwardMatchesEq4Formula)
{
    const PositSpec &p = posit8_1();
    ApproxPositSoftmax sm(p, ApproxExpConfig{});
    const int k = 4;
    std::vector<float> z = {0.5f, -0.25f, 1.5f, 0.0f};
    std::vector<float> out(k), e(k);
    double sum = 0.0;
    sm.forward(z.data(), out.data(), k, e.data(), &sum);

    std::vector<float> g = {1.0f, 0.0f, -0.5f, 0.25f};
    std::vector<float> gin(k);
    sm.backward(g.data(), out.data(), e.data(), sum, gin.data(), k);

    const double fp = approxReciprocalDerivative(sum);
    double dot = 0.0;
    for (int j = 0; j < k; ++j)
        dot += static_cast<double>(g[j]) * e[j];
    for (int i = 0; i < k; ++i) {
        const double want = static_cast<double>(g[i]) * out[i] +
                            dot * fp * e[i];
        EXPECT_NEAR(gin[i], want, 1e-5);
    }
}

} // namespace
} // namespace qt8
