/**
 * @file
 * Exhaustive per-code round-trip audits for the paper's 8-bit codecs:
 * posit(8,1), posit(8,2), E4M3, E5M2, E5M3. Every code is pushed
 * through decode -> encode and must come back *code*-identical (not
 * just value-identical: this pins ±0 and the sign of zero), and the
 * special codes — posit NaR, minifloat NaN/Inf — are checked against
 * the formats' documented conventions:
 *
 *  - posit: NaR decodes to NaN and NaN encodes to NaR; ±inf and
 *    finite overflow saturate to ±maxpos (posits never overflow to
 *    NaR, section 3 of the posit standard / paper section 4);
 *  - E4M3 (kFiniteNoInf): no infinities; only the all-ones mantissa
 *    pattern is NaN; inf inputs saturate to ±maxFinite;
 *  - E5M2/E5M3 (kIeee): top exponent holds Inf (mantissa 0) and NaN;
 *    encode never *produces* an Inf code (DNN saturation practice),
 *    and NaN encodes to the canonical quiet-NaN code.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numerics/minifloat.h"
#include "numerics/posit.h"

using namespace qt8;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

class PositCodec : public ::testing::TestWithParam<std::pair<int, int>>
{
  protected:
    PositSpec spec_{GetParam().first, GetParam().second};
};

TEST_P(PositCodec, All256CodesRoundTripCodeExact)
{
    ASSERT_EQ(spec_.numCodes(), 256u);
    for (uint32_t c = 0; c < spec_.numCodes(); ++c) {
        if (c == spec_.narCode())
            continue;
        const double v = spec_.decode(c);
        EXPECT_TRUE(std::isfinite(v)) << spec_.name() << " code " << c;
        EXPECT_EQ(spec_.encode(v), c)
            << spec_.name() << " code " << c << " value " << v;
    }
}

TEST_P(PositCodec, NaRIsTheOnlyNonFiniteCode)
{
    EXPECT_TRUE(std::isnan(spec_.decode(spec_.narCode())));
    EXPECT_EQ(spec_.encode(kNan), spec_.narCode());
    for (uint32_t c = 0; c < spec_.numCodes(); ++c) {
        if (c != spec_.narCode()) {
            EXPECT_TRUE(std::isfinite(spec_.decode(c))) << "code " << c;
        }
    }
}

TEST_P(PositCodec, InfinityAndOverflowSaturateToMaxpos)
{
    const uint32_t neg_maxpos =
        (spec_.numCodes() - spec_.maxposCode()) & (spec_.numCodes() - 1);
    EXPECT_EQ(spec_.encode(kInf), spec_.maxposCode());
    EXPECT_EQ(spec_.encode(-kInf), neg_maxpos);
    EXPECT_EQ(spec_.encode(spec_.maxpos() * 2.0), spec_.maxposCode());
    EXPECT_EQ(spec_.encode(-spec_.maxpos() * 2.0), neg_maxpos);
    // Saturation, never NaR: overflow must not alias the NaN code.
    EXPECT_NE(spec_.maxposCode(), spec_.narCode());
    EXPECT_NE(neg_maxpos, spec_.narCode());
}

TEST_P(PositCodec, ZeroIsCodeZeroOnly)
{
    EXPECT_EQ(spec_.encode(0.0), 0u);
    EXPECT_EQ(spec_.encode(-0.0), 0u); // posits have a single zero
    EXPECT_EQ(spec_.decode(0u), 0.0);
    for (uint32_t c = 1; c < spec_.numCodes(); ++c) {
        if (c != spec_.narCode()) {
            EXPECT_NE(spec_.decode(c), 0.0) << "code " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Paper8Bit, PositCodec,
                         ::testing::Values(std::make_pair(8, 1),
                                           std::make_pair(8, 2)));

class MinifloatCodec
    : public ::testing::TestWithParam<const MinifloatSpec *>
{
  protected:
    const MinifloatSpec &spec_ = *GetParam();
};

TEST_P(MinifloatCodec, AllCodesRoundTripCodeExact)
{
    // E4M3/E5M2 are 8-bit (256 codes); E5M3 is the paper's 9-bit
    // decode-side format (512 codes). Exhaustive either way.
    ASSERT_EQ(spec_.numCodes(), 1u << spec_.totalBits());
    for (uint32_t c = 0; c < spec_.numCodes(); ++c) {
        if (spec_.isNan(c) || spec_.isInf(c))
            continue;
        const double v = spec_.decode(c);
        EXPECT_TRUE(std::isfinite(v)) << spec_.name << " code " << c;
        // Code-exact: ±0 must keep their sign bit through the trip.
        EXPECT_EQ(spec_.encode(v), c)
            << spec_.name << " code " << c << " value " << v;
    }
}

TEST_P(MinifloatCodec, NanCodesDecodeToNanAndEncodeCanonical)
{
    uint32_t nan_codes = 0;
    for (uint32_t c = 0; c < spec_.numCodes(); ++c) {
        if (!spec_.isNan(c))
            continue;
        ++nan_codes;
        EXPECT_TRUE(std::isnan(spec_.decode(c)))
            << spec_.name << " code " << c;
    }
    ASSERT_GT(nan_codes, 0u);
    const uint32_t canonical = spec_.encode(kNan);
    EXPECT_TRUE(spec_.isNan(canonical));
    if (spec_.flavor == MinifloatFlavor::kFiniteNoInf) {
        // E4M3: exactly ±(all-ones) are NaN; everything else is finite.
        EXPECT_EQ(nan_codes, 2u);
    }
}

TEST_P(MinifloatCodec, InfHandlingMatchesFlavor)
{
    uint32_t inf_codes = 0;
    for (uint32_t c = 0; c < spec_.numCodes(); ++c) {
        if (!spec_.isInf(c))
            continue;
        ++inf_codes;
        EXPECT_TRUE(std::isinf(spec_.decode(c)))
            << spec_.name << " code " << c;
    }
    if (spec_.flavor == MinifloatFlavor::kFiniteNoInf) {
        EXPECT_EQ(inf_codes, 0u) << spec_.name << " must have no Inf";
    } else {
        EXPECT_EQ(inf_codes, 2u) << spec_.name << " has exactly ±Inf";
    }
    // Either flavor: encode saturates infinities to ±maxFinite rather
    // than producing an Inf (or NaN) code.
    const uint32_t pos = spec_.encode(kInf);
    const uint32_t neg = spec_.encode(-kInf);
    EXPECT_EQ(spec_.decode(pos), spec_.maxFinite());
    EXPECT_EQ(spec_.decode(neg), -spec_.maxFinite());
    EXPECT_EQ(spec_.encode(spec_.maxFinite() * 4.0), pos);
}

TEST_P(MinifloatCodec, SignedZerosKeepTheirCodes)
{
    const uint32_t sign_bit =
        1u << (spec_.exp_bits + spec_.man_bits);
    EXPECT_EQ(spec_.decode(0u), 0.0);
    EXPECT_EQ(spec_.decode(sign_bit), 0.0); // -0.0 compares == 0.0
    EXPECT_TRUE(std::signbit(spec_.decode(sign_bit)));
    EXPECT_EQ(spec_.encode(0.0), 0u);
    EXPECT_EQ(spec_.encode(-0.0), sign_bit);
}

INSTANTIATE_TEST_SUITE_P(Paper8Bit, MinifloatCodec,
                         ::testing::Values(&e4m3(), &e5m2(), &e5m3()));

} // namespace
