/**
 * @file
 * Exhaustive bit-exactness tests of the quantizer's LUT fast path
 * against the reference binary-search path: every grid code, every
 * rounding threshold +/- 1 ulp, every LUT bucket seam, and the special
 * values (+/-0, +/-inf, NaN), for the paper's 8-bit formats plus
 * posit16. quantize() and quantizeBySearch() must agree bit for bit.
 */
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "numerics/float_bits.h"
#include "numerics/quantizer.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

/// Bitwise agreement between the LUT path and the search path (NaN
/// agrees if both are NaN).
void
expectPathsAgree(const Quantizer &q, float x)
{
    const float fast = q.quantize(x);
    const float ref = q.quantizeBySearch(x);
    if (std::isnan(ref)) {
        EXPECT_TRUE(std::isnan(fast)) << q.name() << " x=" << x;
        return;
    }
    EXPECT_EQ(bits_from_float(fast), bits_from_float(ref))
        << q.name() << " x=" << x << " fast=" << fast << " ref=" << ref;
}

class QuantizerLutExactness : public ::testing::TestWithParam<std::string>
{};

TEST_P(QuantizerLutExactness, AllGridCodes)
{
    const Quantizer q = Quantizer::byName(GetParam());
    ASSERT_FALSE(q.gridValues().empty());
    for (const float v : q.gridValues()) {
        expectPathsAgree(q, v);
        // Grid values are fixed points of the rounding.
        EXPECT_EQ(q.quantize(v), v) << q.name();
    }
}

TEST_P(QuantizerLutExactness, ThresholdAdjacentFloats)
{
    const Quantizer q = Quantizer::byName(GetParam());
    const float huge = std::numeric_limits<float>::max();
    for (const float t : q.gridThresholds()) {
        expectPathsAgree(q, t);
        expectPathsAgree(q, std::nextafterf(t, huge));
        expectPathsAgree(q, std::nextafterf(t, -huge));
    }
}

TEST_P(QuantizerLutExactness, LutBucketSeams)
{
    // The first and last float of every top-16-bit bucket: any error in
    // the per-bucket index ranges shows up at a seam.
    const Quantizer q = Quantizer::byName(GetParam());
    for (uint32_t b = 0; b < (1u << 16); ++b) {
        for (const uint32_t bits : {b << 16, (b << 16) | 0xFFFFu}) {
            const float x = float_from_bits(bits);
            if (std::isnan(x))
                continue;
            expectPathsAgree(q, x);
        }
    }
}

TEST_P(QuantizerLutExactness, SpecialValues)
{
    const Quantizer q = Quantizer::byName(GetParam());
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (const float x : {0.0f, -0.0f, inf, -inf, nan, -nan})
        expectPathsAgree(q, x);
    // Saturation still lands on the extremes.
    EXPECT_EQ(q.quantize(inf), q.gridValues().back());
    EXPECT_EQ(q.quantize(-inf), q.gridValues().front());
    EXPECT_TRUE(std::isnan(q.quantize(nan)));
}

TEST_P(QuantizerLutExactness, RandomMixedMagnitudes)
{
    const Quantizer q = Quantizer::byName(GetParam());
    Rng rng(29);
    for (int i = 0; i < 200000; ++i) {
        float x;
        if (i % 2 == 0) {
            const double mag = std::exp2(rng.uniform(-40.0, 40.0));
            x = static_cast<float>(rng.uniform() < 0.5 ? -mag : mag);
        } else {
            x = static_cast<float>(rng.normal() * 8.0);
        }
        expectPathsAgree(q, x);
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantizerLutExactness,
                         ::testing::Values("posit8", "posit(8,2)", "e4m3",
                                           "e5m2", "posit16"));

TEST(QuantizerLut, InPlaceMatchesScalar)
{
    const Quantizer q = Quantizer::byName("posit8");
    Rng rng(31);
    std::vector<float> data(20000);
    for (auto &v : data)
        v = static_cast<float>(rng.normal() * 16.0);
    std::vector<float> copy = data;
    q.quantizeInPlace(copy.data(), copy.size());
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(bits_from_float(copy[i]),
                  bits_from_float(q.quantizeBySearch(data[i])));
}

TEST(AmaxHistory, RingOverwritesOldest)
{
    // The ring rewrite must keep the sliding-window semantics exactly.
    AmaxHistory h(3);
    h.push(10.0);
    h.push(2.0);
    h.push(3.0);
    EXPECT_DOUBLE_EQ(h.predict(), 10.0);
    h.push(1.0); // evicts 10.0
    EXPECT_DOUBLE_EQ(h.predict(), 3.0);
    h.push(1.0); // evicts 2.0
    h.push(1.0); // evicts 3.0
    EXPECT_DOUBLE_EQ(h.predict(), 1.0);
    h.push(7.0);
    EXPECT_DOUBLE_EQ(h.predict(), 7.0);
}

TEST(AmaxHistory, LongRunMatchesNaiveWindow)
{
    AmaxHistory h(5);
    std::vector<double> naive;
    Rng rng(37);
    for (int i = 0; i < 200; ++i) {
        const double v = std::fabs(rng.normal()) + 0.01;
        h.push(v);
        naive.push_back(v);
        if (naive.size() > 5)
            naive.erase(naive.begin());
        double want = naive[0];
        for (double u : naive)
            want = std::max(want, u);
        EXPECT_DOUBLE_EQ(h.predict(), want) << "step " << i;
    }
}

} // namespace
} // namespace qt8
