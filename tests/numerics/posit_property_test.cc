/**
 * @file
 * Property-based tests for posit arithmetic: algebraic identities that
 * must hold despite rounding, saturation behavior, and ordering.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "numerics/posit.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

class PositProperties : public ::testing::TestWithParam<std::pair<int, int>>
{
  protected:
    PositSpec spec() const
    {
        const auto [n, es] = GetParam();
        return PositSpec(n, es);
    }

    /// Random finite code (never NaR).
    uint32_t
    randomCode(Rng &rng, const PositSpec &s) const
    {
        uint32_t c;
        do {
            c = static_cast<uint32_t>(rng.next()) & (s.numCodes() - 1);
        } while (c == s.narCode());
        return c;
    }
};

TEST_P(PositProperties, AdditionCommutes)
{
    const PositSpec s = spec();
    Rng rng(101);
    for (int i = 0; i < 3000; ++i) {
        const uint32_t a = randomCode(rng, s);
        const uint32_t b = randomCode(rng, s);
        EXPECT_EQ(s.add(a, b), s.add(b, a));
    }
}

TEST_P(PositProperties, MultiplicationCommutes)
{
    const PositSpec s = spec();
    Rng rng(102);
    for (int i = 0; i < 3000; ++i) {
        const uint32_t a = randomCode(rng, s);
        const uint32_t b = randomCode(rng, s);
        EXPECT_EQ(s.mul(a, b), s.mul(b, a));
    }
}

TEST_P(PositProperties, ZeroAndOneAreIdentities)
{
    const PositSpec s = spec();
    const uint32_t zero = s.encode(0.0);
    const uint32_t one = s.encode(1.0);
    Rng rng(103);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t a = randomCode(rng, s);
        EXPECT_EQ(s.add(a, zero), a);
        EXPECT_EQ(s.mul(a, one), a);
    }
}

TEST_P(PositProperties, NegationIsInvolution)
{
    const PositSpec s = spec();
    for (uint32_t c = 0; c < s.numCodes(); ++c) {
        if (c == s.narCode())
            continue;
        EXPECT_EQ(s.neg(s.neg(c)), c);
    }
}

TEST_P(PositProperties, SubtractSelfIsZero)
{
    const PositSpec s = spec();
    Rng rng(104);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t a = randomCode(rng, s);
        EXPECT_EQ(s.sub(a, a), 0u);
    }
}

TEST_P(PositProperties, QuantizeIsIdempotent)
{
    const PositSpec s = spec();
    Rng rng(105);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.normal() * std::exp2(rng.randint(20) - 10);
        const double q = s.quantize(x);
        EXPECT_EQ(s.quantize(q), q);
    }
}

TEST_P(PositProperties, QuantizeIsMonotone)
{
    const PositSpec s = spec();
    Rng rng(106);
    for (int i = 0; i < 2000; ++i) {
        const double a = rng.normal() * 16.0;
        const double b = rng.normal() * 16.0;
        const double qa = s.quantize(std::min(a, b));
        const double qb = s.quantize(std::max(a, b));
        EXPECT_LE(qa, qb);
    }
}

TEST_P(PositProperties, QuantizePicksNearestNeighbor)
{
    const PositSpec s = spec();
    const auto vals = s.allValues();
    Rng rng(107);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.normal() * 8.0;
        const double q = s.quantize(x);
        // No representable value is strictly closer than q, except at
        // regime/exponent truncation boundaries where the posit
        // standard rounds on the bit string (geometric cut); there the
        // chosen value must still be one of the two bracketing
        // neighbors.
        const auto it =
            std::lower_bound(vals.begin(), vals.end(), x);
        const double above =
            it != vals.end() ? *it : vals.back();
        const double below =
            it != vals.begin() ? *(it - 1) : vals.front();
        EXPECT_TRUE(q == above || q == below)
            << "x=" << x << " q=" << q;
    }
}

TEST_P(PositProperties, DivThenMulBoundedError)
{
    const PositSpec s = spec();
    Rng rng(108);
    for (int i = 0; i < 1000; ++i) {
        const double x =
            std::exp2(rng.uniform(-3.0, 3.0)); // comfortably in range
        const uint32_t xc = s.encode(x);
        const uint32_t inv = s.div(s.encode(1.0), xc);
        const double prod = s.decode(s.mul(xc, inv));
        // One rounding in div, one in mul: within a few ulps of 1.
        EXPECT_NEAR(prod, 1.0, 0.15) << "x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PositProperties,
    ::testing::Values(std::make_pair(8, 0), std::make_pair(8, 1),
                      std::make_pair(8, 2), std::make_pair(16, 1)));

} // namespace
} // namespace qt8
