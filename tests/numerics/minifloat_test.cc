/**
 * @file
 * Unit tests for the FP8 minifloat formats (E4M3 NVIDIA-style, E5M2
 * IEEE-style, and the hybrid E5M3 / decoded-posit E5M4 containers).
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numerics/minifloat.h"

namespace qt8 {
namespace {

TEST(Minifloat, E4M3Constants)
{
    // NVIDIA E4M3: bias 7, no Inf, max finite 448, min subnormal 2^-9.
    EXPECT_DOUBLE_EQ(e4m3().maxFinite(), 448.0);
    EXPECT_DOUBLE_EQ(e4m3().minNormal(), std::exp2(-6));
    EXPECT_DOUBLE_EQ(e4m3().minSubnormal(), std::exp2(-9));
    EXPECT_EQ(e4m3().totalBits(), 8);
}

TEST(Minifloat, E5M2Constants)
{
    // E5M2: bias 15, IEEE-like, max finite 57344 (the paper's FP8
    // backward-pass scaling target), min subnormal 2^-16.
    EXPECT_DOUBLE_EQ(e5m2().maxFinite(), 57344.0);
    EXPECT_DOUBLE_EQ(e5m2().minNormal(), std::exp2(-14));
    EXPECT_DOUBLE_EQ(e5m2().minSubnormal(), std::exp2(-16));
}

TEST(Minifloat, E4M3NanCode)
{
    // 0x7F (and 0xFF) are the only NaN codes; no infinities exist.
    EXPECT_TRUE(e4m3().isNan(0x7F));
    EXPECT_TRUE(e4m3().isNan(0xFF));
    EXPECT_FALSE(e4m3().isNan(0x7E));
    for (uint32_t c = 0; c < 256; ++c)
        EXPECT_FALSE(e4m3().isInf(c));
    // 0x7E decodes to the max finite 448.
    EXPECT_DOUBLE_EQ(e4m3().decode(0x7E), 448.0);
}

TEST(Minifloat, E5M2InfNan)
{
    // exp=11111: mantissa 0 is Inf, else NaN.
    EXPECT_TRUE(e5m2().isInf(0x7C));
    EXPECT_TRUE(e5m2().isInf(0xFC));
    EXPECT_TRUE(e5m2().isNan(0x7D));
    EXPECT_TRUE(std::isinf(e5m2().decode(0x7C)));
    EXPECT_LT(e5m2().decode(0xFC), 0.0);
}

class MinifloatRoundTrip
    : public ::testing::TestWithParam<const MinifloatSpec *>
{};

TEST_P(MinifloatRoundTrip, EncodeDecodeIdentity)
{
    const MinifloatSpec &spec = *GetParam();
    for (uint32_t c = 0; c < spec.numCodes(); ++c) {
        if (spec.isNan(c) || spec.isInf(c))
            continue;
        const double v = spec.decode(c);
        const uint32_t back = spec.encode(v);
        EXPECT_DOUBLE_EQ(spec.decode(back), v)
            << spec.name << " code " << c;
    }
}

TEST_P(MinifloatRoundTrip, ValuesMonotonePerSign)
{
    const MinifloatSpec &spec = *GetParam();
    const uint32_t sign_bit = 1u << (spec.exp_bits + spec.man_bits);
    double prev = -1.0;
    for (uint32_t c = 0; c < sign_bit; ++c) {
        if (spec.isNan(c) || spec.isInf(c))
            continue;
        const double v = spec.decode(c);
        EXPECT_GT(v, prev) << spec.name << " code " << c;
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, MinifloatRoundTrip,
                         ::testing::Values(&e4m3(), &e5m2(), &e5m3(),
                                           &e5m4(), &fp16()));

TEST(MinifloatEncode, RoundToNearestEven)
{
    // E4M3 around 1.0: values 1.0 (mantissa 000) and 1.125 (001).
    // Midpoint 1.0625 rounds to even mantissa (1.0).
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(1.0625)), 1.0);
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(1.07)), 1.125);
    // Midpoint between 1.125 (001) and 1.25 (010) rounds up to even.
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(1.1875)), 1.25);
}

TEST(MinifloatEncode, SaturatesToMaxFinite)
{
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(1e9)), 448.0);
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(
                         std::numeric_limits<double>::infinity())),
                     448.0);
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(-1e9)), -448.0);
    EXPECT_DOUBLE_EQ(e5m2().decode(e5m2().encode(1e9)), 57344.0);
}

TEST(MinifloatEncode, SubnormalsAndUnderflow)
{
    const double min_sub = e4m3().minSubnormal(); // 2^-9
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(min_sub)), min_sub);
    // Below half the smallest subnormal -> 0.
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(min_sub * 0.25)), 0.0);
    // Tie at half rounds to even (0).
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(min_sub * 0.5)), 0.0);
    EXPECT_DOUBLE_EQ(e4m3().decode(e4m3().encode(min_sub * 0.75)), min_sub);
}

TEST(MinifloatEncode, NanEncodesToNanCode)
{
    const uint32_t c =
        e4m3().encode(std::numeric_limits<double>::quiet_NaN());
    EXPECT_TRUE(e4m3().isNan(c));
    const uint32_t c2 =
        e5m2().encode(std::numeric_limits<double>::quiet_NaN());
    EXPECT_TRUE(e5m2().isNan(c2));
}

TEST(Minifloat, Fp16Constants)
{
    EXPECT_DOUBLE_EQ(fp16().maxFinite(), 65504.0);
    EXPECT_DOUBLE_EQ(fp16().minNormal(), std::exp2(-14));
    EXPECT_DOUBLE_EQ(fp16().minSubnormal(), std::exp2(-24));
    EXPECT_EQ(fp16().totalBits(), 16);
}

TEST(Minifloat, E5M4ContainsPosit8DecodedRange)
{
    // Section 7.1: decoded Posit8 has at most 4 fraction bits and
    // exponent range [-12, 12]; E5M4 must represent all of these
    // normally.
    EXPECT_GE(e5m4().maxFinite(), std::exp2(12) * 1.9375);
    EXPECT_LE(e5m4().minNormal(), std::exp2(-12));
}

} // namespace
} // namespace qt8
