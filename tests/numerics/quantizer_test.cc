/**
 * @file
 * Tests for the table-driven fake-quantizer: exact equivalence with the
 * underlying codecs, idempotence, and per-tensor scaling behavior.
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numerics/float_bits.h"
#include "numerics/quantizer.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

TEST(Quantizer, IdentityPassesThrough)
{
    const Quantizer q = Quantizer::identity();
    EXPECT_TRUE(q.isIdentity());
    EXPECT_EQ(q.quantize(0.123456789f), 0.123456789f);
}

TEST(Quantizer, Bfloat16MatchesTruncationSemantics)
{
    const Quantizer q = Quantizer::bf16();
    // 1 + 2^-8 is exactly between bf16 values 1.0 and 1 + 2^-7;
    // RNE keeps 1.0 (even mantissa).
    EXPECT_EQ(q.quantize(1.0f + 0x1.0p-8f), 1.0f);
    EXPECT_EQ(q.quantize(1.0f + 0x1.8p-8f), 1.0f + 0x1.0p-7f);
    EXPECT_EQ(q.quantize(3.0f), 3.0f);
}

class QuantizerCodecEquivalence
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(QuantizerCodecEquivalence, MatchesReferenceOnRandomFloats)
{
    const std::string name = GetParam();
    const Quantizer q = Quantizer::byName(name);

    // Reference implementation straight from the codecs.
    auto ref = [&name](float x) -> double {
        if (name == "posit8")
            return posit8_1().quantize(x);
        if (name == "posit(8,0)")
            return posit8_0().quantize(x);
        if (name == "posit(8,2)")
            return posit8_2().quantize(x);
        if (name == "posit16")
            return posit16_1().quantize(x);
        if (name == "e4m3")
            return e4m3().decode(e4m3().encode(x));
        return e5m2().decode(e5m2().encode(x));
    };

    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        // Mix wide log-uniform magnitudes with gaussians.
        float x;
        if (i % 2 == 0) {
            const double mag = std::exp2(rng.uniform(-30.0, 30.0));
            x = static_cast<float>(rng.uniform() < 0.5 ? -mag : mag);
        } else {
            x = static_cast<float>(rng.normal() * 8.0);
        }
        const float got = q.quantize(x);
        const double want = ref(x);
        EXPECT_EQ(static_cast<double>(got), want)
            << name << " x=" << x;
    }
}

TEST_P(QuantizerCodecEquivalence, MatchesReferenceAtGridBoundaries)
{
    const std::string name = GetParam();
    const Quantizer q = Quantizer::byName(name);
    const PositSpec *spec = nullptr;
    if (name == "posit8")
        spec = &posit8_1();
    else if (name == "posit(8,2)")
        spec = &posit8_2();
    if (spec == nullptr)
        return; // posit-specific boundary walk

    const auto vals = spec->allValues();
    for (size_t i = 0; i + 1 < vals.size(); ++i) {
        const double mid = 0.5 * (vals[i] + vals[i + 1]);
        for (const float x : {static_cast<float>(mid),
                              std::nextafterf(static_cast<float>(mid), 1e30f),
                              std::nextafterf(static_cast<float>(mid),
                                              -1e30f)}) {
            EXPECT_EQ(static_cast<double>(q.quantize(x)),
                      spec->quantize(x))
                << name << " near boundary " << mid;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantizerCodecEquivalence,
                         ::testing::Values("posit8", "posit(8,0)",
                                           "posit(8,2)", "posit16", "e4m3",
                                           "e5m2"));

TEST(Quantizer, Idempotent)
{
    for (const char *name : {"posit8", "e4m3", "e5m2", "bf16"}) {
        const Quantizer q = Quantizer::byName(name);
        Rng rng(11);
        for (int i = 0; i < 2000; ++i) {
            const float x = static_cast<float>(rng.normal() * 100.0);
            const float once = q.quantize(x);
            EXPECT_EQ(q.quantize(once), once) << name;
        }
    }
}

TEST(Quantizer, SaturationLimits)
{
    EXPECT_EQ(Quantizer::byName("posit8").quantize(1e30f), 4096.0f);
    EXPECT_EQ(Quantizer::byName("posit8").quantize(-1e30f), -4096.0f);
    EXPECT_EQ(Quantizer::byName("e4m3").quantize(1e30f), 448.0f);
    EXPECT_EQ(Quantizer::byName("e5m2").quantize(1e30f), 57344.0f);
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(Quantizer::byName("posit8").quantize(inf), 4096.0f);
}

TEST(Quantizer, NanPropagates)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(Quantizer::byName("posit8").quantize(nan)));
    EXPECT_TRUE(std::isnan(Quantizer::byName("e4m3").quantize(nan)));
}

TEST(Quantizer, ScalingTargets)
{
    // Section 5.1: FP8 scales amax to the max representable; posit8
    // scales amax to 64 due to tapered precision.
    EXPECT_DOUBLE_EQ(Quantizer::byName("e5m2").scalingTargetAmax(),
                     57344.0);
    EXPECT_DOUBLE_EQ(Quantizer::byName("e4m3").scalingTargetAmax(), 448.0);
    EXPECT_DOUBLE_EQ(Quantizer::byName("posit8").scalingTargetAmax(), 64.0);
}

TEST(Quantizer, UnknownNameThrows)
{
    EXPECT_THROW(Quantizer::byName("int4"), std::invalid_argument);
}

TEST(AmaxHistory, PredictsWindowMax)
{
    AmaxHistory h(3);
    EXPECT_DOUBLE_EQ(h.predict(5.0), 5.0); // empty -> fallback
    h.push(1.0);
    h.push(4.0);
    h.push(2.0);
    EXPECT_DOUBLE_EQ(h.predict(), 4.0);
    h.push(0.5); // evicts 1.0
    EXPECT_DOUBLE_EQ(h.predict(), 4.0);
    h.push(0.5);
    h.push(0.5); // 4.0 now evicted
    EXPECT_DOUBLE_EQ(h.predict(), 0.5);
}

TEST(TensorScaler, PowerOfTwoScale)
{
    EXPECT_DOUBLE_EQ(TensorScaler::scaleFor(1.0, 64.0), 64.0);
    EXPECT_DOUBLE_EQ(TensorScaler::scaleFor(0.001, 64.0), 65536.0);
    EXPECT_DOUBLE_EQ(TensorScaler::scaleFor(0.0, 64.0), 1.0);
    // Scale is always a power of two ("per-tensor exponent bias").
    const double s = TensorScaler::scaleFor(3.7, 448.0);
    EXPECT_DOUBLE_EQ(std::exp2(std::round(std::log2(s))), s);
}

TEST(TensorScaler, RecoversSmallGradients)
{
    // Gradients around 1e-6 are far below posit8's minpos (2^-12);
    // unscaled quantization flushes them all to zero, the scaler keeps
    // them.
    const Quantizer q = Quantizer::byName("posit8");
    Rng rng(3);
    std::vector<float> grads(512);
    for (auto &g : grads)
        g = static_cast<float>(rng.normal() * 1e-6);

    std::vector<float> unscaled = grads;
    q.quantizeInPlace(unscaled.data(), unscaled.size());
    double unscaled_nonzero = 0;
    for (float g : unscaled)
        unscaled_nonzero += (g != 0.0f);
    EXPECT_EQ(unscaled_nonzero, 0.0);

    std::vector<float> scaled = grads;
    TensorScaler scaler(q);
    scaler.quantizeInPlace(scaled.data(), scaled.size());
    double err = 0.0, ref = 0.0;
    for (size_t i = 0; i < grads.size(); ++i) {
        err += std::fabs(static_cast<double>(scaled[i]) - grads[i]);
        ref += std::fabs(static_cast<double>(grads[i]));
    }
    EXPECT_LT(err / ref, 0.05); // small relative error after scaling
}

TEST(TensorScaler, UsesHistoryPrediction)
{
    const Quantizer q = Quantizer::byName("e4m3");
    TensorScaler scaler(q, 4);
    std::vector<float> t1(16, 100.0f);
    scaler.quantizeInPlace(t1.data(), t1.size());
    // E4M3 has 3 mantissa bits -> up to ~6% relative rounding error.
    EXPECT_NEAR(t1[0], 100.0f, 8.0f);
    // Second call predicts from history (amax=100) even though the new
    // tensor is tiny; values remain representable.
    std::vector<float> t2(16, 0.25f);
    scaler.quantizeInPlace(t2.data(), t2.size());
    EXPECT_NEAR(t2[0], 0.25f, 0.01f);
}

} // namespace
} // namespace qt8
