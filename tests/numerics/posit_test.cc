/**
 * @file
 * Unit and property tests for the posit codec (all formats the paper
 * uses), including the paper's custom sub-minpos rounding (section 3.4).
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numerics/posit.h"

namespace qt8 {
namespace {

TEST(PositSpec, BasicConstants)
{
    EXPECT_DOUBLE_EQ(posit8_1().maxpos(), 4096.0);     // 2^12
    EXPECT_DOUBLE_EQ(posit8_1().minpos(), 1.0 / 4096); // 2^-12
    EXPECT_DOUBLE_EQ(posit8_0().maxpos(), 64.0);       // 2^6
    EXPECT_DOUBLE_EQ(posit8_0().minpos(), 1.0 / 64);
    EXPECT_DOUBLE_EQ(posit8_2().maxpos(), std::exp2(24));
    EXPECT_EQ(posit8_1().narCode(), 0x80u);
    EXPECT_EQ(posit8_1().maxposCode(), 0x7Fu);
}

TEST(PositSpec, PaperFigure1Example)
{
    // Figure 1 decodes an 8-bit es=1 posit as 1.011 * 4^-2 * 2^1
    // = 0.171875. Reconstruct the bit pattern: sign 0, regime "001"
    // (k=-2), exponent 1, fraction 011 -> 0b0_00_1_1_011? Regime for
    // k=-2 is two zeros + terminator one: 001. Then e=1, f=011:
    // code = 0 001 1 011 = 0x1B.
    EXPECT_DOUBLE_EQ(posit8_1().decode(0x1B), 0.171875);
}

TEST(PositSpec, KnownCodes)
{
    const PositSpec &p = posit8_1();
    EXPECT_DOUBLE_EQ(p.decode(0x00), 0.0);
    EXPECT_DOUBLE_EQ(p.decode(0x40), 1.0);
    EXPECT_DOUBLE_EQ(p.decode(0x50), 2.0);
    EXPECT_DOUBLE_EQ(p.decode(0x30), 0.5);
    EXPECT_DOUBLE_EQ(p.decode(0x7F), 4096.0);
    EXPECT_DOUBLE_EQ(p.decode(0x01), 1.0 / 4096);
    EXPECT_TRUE(std::isnan(p.decode(0x80)));
    // Negation is two's complement: -1.0.
    EXPECT_DOUBLE_EQ(p.decode(0xC0), -1.0);
    EXPECT_DOUBLE_EQ(p.decode(0xFF), -1.0 / 4096);
    EXPECT_DOUBLE_EQ(p.decode(0x81), -4096.0);
}

class PositRoundTrip : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(PositRoundTrip, EncodeDecodeIdentity)
{
    const auto [nbits, es] = GetParam();
    const PositSpec spec(nbits, es);
    for (uint32_t c = 0; c < spec.numCodes(); ++c) {
        const double v = spec.decode(c);
        if (std::isnan(v)) {
            EXPECT_EQ(c, spec.narCode());
            continue;
        }
        EXPECT_EQ(spec.encode(v), c)
            << "code " << c << " value " << v << " in " << spec.name();
    }
}

TEST_P(PositRoundTrip, CodesMonotoneInValue)
{
    const auto [nbits, es] = GetParam();
    const PositSpec spec(nbits, es);
    // Positive codes 1..maxposCode must decode to increasing values.
    double prev = 0.0;
    for (uint32_t c = 1; c <= spec.maxposCode(); ++c) {
        const double v = spec.decode(c);
        EXPECT_GT(v, prev) << spec.name() << " code " << c;
        prev = v;
    }
}

TEST_P(PositRoundTrip, NegationIsTwosComplement)
{
    const auto [nbits, es] = GetParam();
    const PositSpec spec(nbits, es);
    for (uint32_t c = 1; c < spec.numCodes(); ++c) {
        if (c == spec.narCode())
            continue;
        const uint32_t n = spec.neg(c);
        EXPECT_DOUBLE_EQ(spec.decode(n), -spec.decode(c));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, PositRoundTrip,
    ::testing::Values(std::make_pair(8, 0), std::make_pair(8, 1),
                      std::make_pair(8, 2), std::make_pair(16, 1),
                      std::make_pair(6, 1), std::make_pair(12, 2)));

TEST(PositEncode, SaturatesAtMaxpos)
{
    const PositSpec &p = posit8_1();
    EXPECT_EQ(p.encode(1e30), p.maxposCode());
    EXPECT_EQ(p.encode(4096.0), p.maxposCode());
    EXPECT_EQ(p.encode(5000.0), p.maxposCode());
    EXPECT_EQ(p.encode(std::numeric_limits<double>::infinity()),
              p.maxposCode());
    EXPECT_EQ(p.encode(-1e30), p.neg(p.maxposCode()));
}

TEST(PositEncode, PaperSubMinposRoundToEven)
{
    // Section 3.4: for posit(8,1), values smaller than 2^-13 round to 0
    // instead of up to minpos = 2^-12; the tie at exactly 2^-13 also
    // rounds to zero (even code).
    const PositSpec paper(8, 1, SubMinposPolicy::kPaperRoundToEven);
    EXPECT_EQ(paper.encode(std::exp2(-14)), 0u);
    EXPECT_EQ(paper.encode(std::exp2(-13)), 0u);          // tie -> even
    EXPECT_EQ(paper.encode(std::exp2(-13) * 1.01), 0x01u);
    EXPECT_EQ(paper.encode(std::exp2(-12)), 0x01u);
    EXPECT_EQ(paper.encode(-std::exp2(-14)), 0u);
    EXPECT_EQ(paper.encode(-std::exp2(-12.5)), paper.neg(0x01u));
}

TEST(PositEncode, StandardSubMinposNeverUnderflows)
{
    const PositSpec std_posit(8, 1, SubMinposPolicy::kPositStandard);
    EXPECT_EQ(std_posit.encode(1e-30), 0x01u);
    EXPECT_EQ(std_posit.encode(std::exp2(-14)), 0x01u);
    EXPECT_EQ(std_posit.encode(-1e-30), std_posit.neg(0x01u));
    EXPECT_EQ(std_posit.encode(0.0), 0u);
}

TEST(PositEncode, RoundToNearestEvenInCodeSpace)
{
    const PositSpec &p = posit8_1();
    // Between 1.0 (0x40, even) and the next value 1.0625 (0x41, odd):
    // the midpoint 1.03125 must round to the even code.
    EXPECT_DOUBLE_EQ(p.decode(0x41), 1.0625);
    EXPECT_EQ(p.encode(1.03125), 0x40u);
    EXPECT_EQ(p.encode(1.032), 0x41u);
    EXPECT_EQ(p.encode(1.031), 0x40u);
    // Between 0x41 (odd) and 0x42 (even, 1.125): midpoint goes up.
    EXPECT_DOUBLE_EQ(p.decode(0x42), 1.125);
    EXPECT_EQ(p.encode(0.5 * (1.0625 + 1.125)), 0x42u);
}

TEST(PositEncode, TruncatedExponentRounding)
{
    // posit(8,1): 2048 = 2^11 lies exactly between 1024 (0x7E) and
    // 4096 (0x7F) in code space; tie rounds to the even code 0x7E.
    const PositSpec &p = posit8_1();
    EXPECT_DOUBLE_EQ(p.decode(0x7E), 1024.0);
    EXPECT_EQ(p.encode(2048.0), 0x7Eu);
    EXPECT_EQ(p.encode(2049.0), 0x7Fu);
    EXPECT_EQ(p.encode(2047.0), 0x7Eu);
}

TEST(PositArithmetic, ExactSmallCases)
{
    const PositSpec &p = posit8_1();
    const uint32_t one = p.encode(1.0);
    const uint32_t two = p.encode(2.0);
    EXPECT_EQ(p.add(one, one), two);
    EXPECT_EQ(p.mul(two, two), p.encode(4.0));
    EXPECT_EQ(p.sub(two, one), one);
    EXPECT_EQ(p.div(one, two), p.encode(0.5));
    EXPECT_EQ(p.div(one, p.encode(0.0)), p.narCode());
}

TEST(PositArithmetic, NaRPropagates)
{
    const PositSpec &p = posit8_1();
    EXPECT_EQ(p.add(p.narCode(), p.encode(1.0)), p.narCode());
    EXPECT_EQ(p.mul(p.encode(3.0), p.narCode()), p.narCode());
    EXPECT_EQ(p.neg(p.narCode()), p.narCode());
}

TEST(PositArithmetic, FusedDotSingleRounding)
{
    const PositSpec &p = posit8_1();
    // 3 * (1/3-ish values): fused accumulation rounds once, so adding
    // many small values does not lose them one at a time.
    std::vector<uint32_t> a(64, p.encode(1.0));
    std::vector<uint32_t> b(64, p.encode(1.0 / 64));
    const uint32_t fused = p.fusedDot(a.data(), b.data(), 64);
    // Exact result: 64 * q(1/64); q(1/64) = 1/64 exactly (power of 2).
    EXPECT_DOUBLE_EQ(p.decode(fused), 1.0);
}

TEST(PositSpec, AllValuesSortedAndSized)
{
    const auto vals = posit8_1().allValues();
    EXPECT_EQ(vals.size(), 255u); // 256 codes minus NaR
    EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
    EXPECT_DOUBLE_EQ(vals.front(), -4096.0);
    EXPECT_DOUBLE_EQ(vals.back(), 4096.0);
}

TEST(PositSpec, Posit82RangeIsWider)
{
    // Section 3: posit(8,2) spans 2^-24..2^24, needed for the largest
    // models' outliers; posit(8,0) only 2^-6..2^6.
    EXPECT_DOUBLE_EQ(posit8_2().maxpos(), std::exp2(24));
    EXPECT_DOUBLE_EQ(posit8_0().maxpos(), std::exp2(6));
}

} // namespace
} // namespace qt8
