/**
 * @file
 * Tests for the decimal-accuracy metric (paper Figure 4): posit's
 * tapered precision vs FP8's flat profile.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "numerics/decimal_accuracy.h"

namespace qt8 {
namespace {

TEST(DecimalAccuracy, ExactValuesHitTheCap)
{
    const Quantizer p8 = Quantizer::byName("posit8");
    EXPECT_DOUBLE_EQ(decimalAccuracy(p8, 1.0), 8.0);
    EXPECT_DOUBLE_EQ(decimalAccuracy(p8, 0.5), 8.0);
}

TEST(DecimalAccuracy, ZeroOrUnderflowGivesZero)
{
    const Quantizer p8 = Quantizer::byName("posit8");
    EXPECT_DOUBLE_EQ(decimalAccuracy(p8, 1e-30), 0.0); // flushes to 0
    EXPECT_DOUBLE_EQ(decimalAccuracy(p8, -1.0), 0.0);  // invalid input
}

TEST(DecimalAccuracy, Posit8TaperedVsFp8Flat)
{
    const Quantizer p8 = Quantizer::byName("posit8");
    const Quantizer e4 = Quantizer::byName("e4m3");

    const auto sp = decimalAccuracySweep(p8, -10, 10, 1.0);
    const auto se = decimalAccuracySweep(e4, -5, 5, 1.0);

    // Posit8 near 1 beats posit8 near its range ends (tapering).
    double acc_at_0 = 0, acc_at_9 = 0;
    for (const auto &pt : sp) {
        if (pt.log2_x == 0.0)
            acc_at_0 = pt.accuracy;
        if (pt.log2_x == 9.0)
            acc_at_9 = pt.accuracy;
    }
    EXPECT_GT(acc_at_0, acc_at_9 + 0.5);

    // E4M3 is flat across its normal range (same worst case in every
    // binade).
    double mn = 1e9, mx = -1e9;
    for (const auto &pt : se) {
        mn = std::min(mn, pt.accuracy);
        mx = std::max(mx, pt.accuracy);
    }
    EXPECT_LT(mx - mn, 0.15);

    // And posit8 near 1 beats E4M3 (one more effective fraction bit).
    EXPECT_GT(acc_at_0, mx);
}

TEST(DecimalAccuracy, E5M2TradesAccuracyForRange)
{
    const Quantizer e5 = Quantizer::byName("e5m2");
    const Quantizer e4 = Quantizer::byName("e4m3");
    // In-range worst-case accuracy: E4M3 > E5M2 (one more mantissa
    // bit). Compare binade worst cases rather than a single point.
    const auto we4 = decimalAccuracySweep(e4, 0, 1, 1.0, 256);
    const auto we5 = decimalAccuracySweep(e5, 0, 1, 1.0, 256);
    EXPECT_GT(we4.front().accuracy, we5.front().accuracy + 0.2);
    // Range: E5M2 still represents 2^14; E4M3 saturates at 448.
    EXPECT_GT(decimalAccuracy(e5, std::exp2(14) * 1.1), 0.4);
    EXPECT_LT(decimalAccuracy(e4, std::exp2(14) * 1.1), 0.2);
}

} // namespace
} // namespace qt8
