/**
 * @file
 * KV-cached incremental decoding must be *bit-identical* to the
 * full-prefix reference, and the batched (batch x head) parallel
 * attention loops must be bit-identical to the serial ones.
 *
 * Why bit-identity (not tolerance) is the right contract here: every
 * forward quant point rounds element-wise on a static grid (posit8,
 * E4M3, bf16 LUTs), the GEMM accumulates each output element in
 * ascending-k double precision independent of the row count, and
 * LayerNorm / softmax / GeLU / residual are row-wise. Row t of any
 * activation therefore does not depend on how many rows are computed
 * alongside it, so a cached single-row decode step must reproduce the
 * reference row exactly. int8 is deliberately absent: its dynamic
 * per-tensor amax scale couples rows and breaks this invariant.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "data/tasks.h"
#include "nn/model.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace qt8 {
namespace {

ModelConfig
tinySeq2SeqConfig()
{
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    return cfg;
}

ModelConfig
tinyLmConfig()
{
    ModelConfig cfg;
    cfg.name = "test-lm";
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

void
expectBitEqual(const Tensor &a, const Tensor &b, const char *what)
{
    ASSERT_EQ(a.numel(), b.numel()) << what;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             sizeof(float) * static_cast<size_t>(a.numel())))
        << what;
}

/// The quant configs the decode cache must be exact under. int8 is
/// excluded by design (dynamic per-tensor scaling is row-coupled).
std::vector<QuantConfig>
decodeConfigs()
{
    return {QuantConfig::fp32(),    QuantConfig::bf16(),
            QuantConfig::posit8(),  QuantConfig::fp8(),
            QuantConfig::posit8Approx()};
}

TEST(DecodeCache, GreedyDecodeMatchesUncachedReference)
{
    const ModelConfig cfg = tinySeq2SeqConfig();
    const Seq2SeqTask task(cfg.vocab, 20, 10);
    Rng rng(77);
    const Seq2SeqBatch batch = task.sample(rng, 4);

    for (const QuantConfig &qc : decodeConfigs()) {
        Seq2Seq model(cfg, 2024);
        QuantSession qs(qc);
        const auto ref = model.greedyDecodeReference(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/16, Vocab::kBos, Vocab::kEos);
        const auto got = model.greedyDecode(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/16, Vocab::kBos, Vocab::kEos);
        ASSERT_EQ(ref.size(), got.size()) << qc.name;
        for (size_t b = 0; b < ref.size(); ++b)
            EXPECT_EQ(ref[b], got[b]) << qc.name << " sequence " << b;
    }
}

TEST(DecodeCache, Seq2SeqStepLogitsMatchPrefixForward)
{
    const ModelConfig cfg = tinySeq2SeqConfig();
    const int64_t B = 3, S = 18, T = 12;
    const Seq2SeqTask task(cfg.vocab, S, T);
    Rng rng(78);
    const Seq2SeqBatch batch = task.sample(rng, B);

    for (const QuantConfig &qc : decodeConfigs()) {
        Seq2Seq model(cfg, 2025);
        QuantSession qs(qc);
        DecodeState st = model.beginDecode(qs, batch.src, B, S,
                                           batch.src_pad.data(), T);
        for (int64_t t = 1; t <= T; ++t) {
            // Teacher prefix [B, t] and its last-row logits.
            std::vector<int32_t> prefix(static_cast<size_t>(B * t));
            std::vector<int32_t> step(static_cast<size_t>(B));
            for (int64_t b = 0; b < B; ++b) {
                for (int64_t i = 0; i < t; ++i)
                    prefix[static_cast<size_t>(b * t + i)] =
                        batch.tgt_in[static_cast<size_t>(b * T + i)];
                step[static_cast<size_t>(b)] =
                    batch.tgt_in[static_cast<size_t>(b * T + t - 1)];
            }
            const Tensor full = model.forward(qs, batch.src, B, S,
                                              batch.src_pad.data(), prefix, t);
            const Tensor inc =
                model.forwardIncremental(qs, step, st, batch.src_pad.data());
            ASSERT_EQ(inc.dim(0), B) << qc.name;
            for (int64_t b = 0; b < B; ++b) {
                const float *pf = full.data() + (b * t + t - 1) * full.dim(1);
                const float *pi = inc.data() + b * inc.dim(1);
                EXPECT_EQ(0, std::memcmp(pf, pi,
                                         sizeof(float) *
                                             static_cast<size_t>(full.dim(1))))
                    << qc.name << " t=" << t << " b=" << b;
            }
        }
    }
}

TEST(DecodeCache, CausalLmStepLogitsMatchPrefixForward)
{
    const ModelConfig cfg = tinyLmConfig();
    const int64_t B = 3, T = 14;
    Rng rng(79);
    std::vector<int32_t> ids(static_cast<size_t>(B * T));
    for (auto &id : ids)
        id = static_cast<int32_t>(rng.randint(cfg.vocab));

    for (const QuantConfig &qc : decodeConfigs()) {
        CausalLM model(cfg, 2026);
        QuantSession qs(qc);
        DecodeState st = model.beginDecode(B, T);
        for (int64_t t = 1; t <= T; ++t) {
            std::vector<int32_t> prefix(static_cast<size_t>(B * t));
            std::vector<int32_t> step(static_cast<size_t>(B));
            for (int64_t b = 0; b < B; ++b) {
                for (int64_t i = 0; i < t; ++i)
                    prefix[static_cast<size_t>(b * t + i)] =
                        ids[static_cast<size_t>(b * T + i)];
                step[static_cast<size_t>(b)] =
                    ids[static_cast<size_t>(b * T + t - 1)];
            }
            const Tensor full = model.forward(qs, prefix, B, t);
            const Tensor inc = model.forwardIncremental(qs, step, st);
            for (int64_t b = 0; b < B; ++b) {
                const float *pf = full.data() + (b * t + t - 1) * full.dim(1);
                const float *pi = inc.data() + b * inc.dim(1);
                EXPECT_EQ(0, std::memcmp(pf, pi,
                                         sizeof(float) *
                                             static_cast<size_t>(full.dim(1))))
                    << qc.name << " t=" << t << " b=" << b;
            }
        }
    }
}

/// One serial + one parallel forward/backward pass over the same
/// attention module; returns (output, dx) and leaves param grads set.
struct AttnRun
{
    Tensor y, gx, gmem;
};

AttnRun
runAttention(MultiHeadAttention &attn, QuantSession &qs, const Tensor &x,
             int64_t batch, int64_t seq, const Tensor *memory,
             int64_t seq_kv, const uint8_t *pad, bool causal,
             const Tensor &gy)
{
    ParamList params;
    attn.collectParams(params);
    zeroGrads(params);
    AttnRun r;
    r.y = attn.forward(qs, x, batch, seq, memory, seq_kv, pad, causal);
    if (memory) {
        r.gmem = Tensor({memory->dim(0), memory->dim(1)});
        r.gx = attn.backward(qs, gy, &r.gmem);
    } else {
        r.gx = attn.backward(qs, gy);
    }
    return r;
}

void
compareSerialParallel(bool cross, bool causal, bool with_pad)
{
    // batch*heads = 24 and flops >> the 16384-element parallel
    // threshold, so the parallel path genuinely engages when the
    // machine has threads.
    const int64_t B = 6, S = 24, T = cross ? 20 : S, D = 32;
    const int H = 4;
    BuildCtx ctx(4242);
    MultiHeadAttention attn(D, H, ctx, "attn");

    Rng rng(4343);
    Tensor x({B * S, D}), gy({B * S, D}), mem({B * T, D});
    rng.fillNormal(x, 1.0);
    rng.fillNormal(gy, 0.5);
    rng.fillNormal(mem, 1.0);
    std::vector<uint8_t> pad(static_cast<size_t>(B * T), 0);
    if (with_pad) {
        // Mask the tail couple of keys in every sequence.
        for (int64_t b = 0; b < B; ++b)
            for (int64_t t = T - 2; t < T; ++t)
                pad[static_cast<size_t>(b * T + t)] = 1;
    }
    const Tensor *memory = cross ? &mem : nullptr;
    const uint8_t *pm = with_pad ? pad.data() : nullptr;

    QuantSession qs_serial(QuantConfig::posit8());
    MultiHeadAttention::force_serial = true;
    const AttnRun serial = runAttention(attn, qs_serial, x, B, S, memory,
                                        cross ? T : 0, pm, causal, gy);
    std::vector<Tensor> serial_grads;
    ParamList params;
    attn.collectParams(params);
    for (const Param *p : params)
        serial_grads.push_back(p->grad);

    QuantSession qs_par(QuantConfig::posit8());
    MultiHeadAttention::force_serial = false;
    const AttnRun par = runAttention(attn, qs_par, x, B, S, memory,
                                     cross ? T : 0, pm, causal, gy);

    expectBitEqual(serial.y, par.y, "forward output");
    expectBitEqual(serial.gx, par.gx, "input gradient");
    if (cross)
        expectBitEqual(serial.gmem, par.gmem, "memory gradient");
    for (size_t i = 0; i < params.size(); ++i)
        expectBitEqual(serial_grads[i], params[i]->grad,
                       params[i]->name.c_str());
}

TEST(ParallelAttention, SelfCausalMatchesSerialBitExact)
{
    compareSerialParallel(/*cross=*/false, /*causal=*/true,
                          /*with_pad=*/false);
}

TEST(ParallelAttention, CrossWithPadMaskMatchesSerialBitExact)
{
    compareSerialParallel(/*cross=*/true, /*causal=*/false,
                          /*with_pad=*/true);
}

} // namespace
} // namespace qt8
