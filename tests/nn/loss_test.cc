/**
 * @file
 * Tests for softmax cross-entropy (values, gradients, ignore index).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace qt8 {
namespace {

TEST(Loss, MatchesManualComputation)
{
    Tensor logits({1, 3});
    logits.at(0, 0) = 1.0f;
    logits.at(0, 1) = 2.0f;
    logits.at(0, 2) = 0.5f;
    const CEResult r = softmaxCrossEntropy(logits, {1});

    const double z = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
    EXPECT_NEAR(r.loss, std::log(z) - 2.0, 1e-6);
    EXPECT_EQ(r.count, 1);
    // Gradient is softmax - onehot.
    EXPECT_NEAR(r.dlogits.at(0, 0), std::exp(1.0) / z, 1e-6);
    EXPECT_NEAR(r.dlogits.at(0, 1), std::exp(2.0) / z - 1.0, 1e-6);
    // Gradient sums to zero per row.
    EXPECT_NEAR(r.dlogits.at(0, 0) + r.dlogits.at(0, 1) +
                    r.dlogits.at(0, 2),
                0.0, 1e-6);
}

TEST(Loss, IgnoreIndexSkipsRows)
{
    Tensor logits({3, 2});
    logits.at(0, 0) = 5.0f;
    logits.at(1, 0) = 5.0f;
    logits.at(2, 1) = 5.0f;
    const CEResult r =
        softmaxCrossEntropy(logits, {0, kIgnoreIndex, 1});
    EXPECT_EQ(r.count, 2);
    // Ignored row has exactly zero gradient.
    EXPECT_EQ(r.dlogits.at(1, 0), 0.0f);
    EXPECT_EQ(r.dlogits.at(1, 1), 0.0f);
    EXPECT_NE(r.dlogits.at(0, 0), 0.0f);
}

TEST(Loss, NumericallyStableWithHugeLogits)
{
    Tensor logits({1, 2});
    logits.at(0, 0) = 10000.0f;
    logits.at(0, 1) = -10000.0f;
    const CEResult r = softmaxCrossEntropy(logits, {0});
    EXPECT_NEAR(r.loss, 0.0, 1e-6);
    EXPECT_TRUE(std::isfinite(r.dlogits.at(0, 1)));
}

TEST(Loss, MeanOverCountedTargets)
{
    Tensor logits({2, 2});
    const CEResult r = softmaxCrossEntropy(logits, {0, 1});
    EXPECT_NEAR(r.loss, std::log(2.0), 1e-6); // uniform logits
    // dlogits scaled by 1/count.
    EXPECT_NEAR(r.dlogits.at(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
}

TEST(Loss, GradientMatchesFiniteDifference)
{
    Tensor logits({2, 4});
    logits.at(0, 0) = 0.3f;
    logits.at(0, 1) = -0.2f;
    logits.at(0, 2) = 1.1f;
    logits.at(0, 3) = 0.0f;
    logits.at(1, 0) = -0.5f;
    logits.at(1, 2) = 0.7f;
    const std::vector<int32_t> targets = {2, 0};
    const CEResult r = softmaxCrossEntropy(logits, targets);

    const float h = 1e-3f;
    for (int64_t i = 0; i < logits.numel(); ++i) {
        const float orig = logits.at(i);
        logits.at(i) = orig + h;
        const double lp = softmaxCrossEntropy(logits, targets).loss;
        logits.at(i) = orig - h;
        const double lm = softmaxCrossEntropy(logits, targets).loss;
        logits.at(i) = orig;
        EXPECT_NEAR(r.dlogits.at(i), (lp - lm) / (2.0 * h), 1e-4);
    }
}

} // namespace
} // namespace qt8
