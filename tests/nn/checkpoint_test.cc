/**
 * @file
 * Tests for checkpoint save/load round trips and failure modes.
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "nn/checkpoint.h"
#include "nn/model.h"

namespace qt8 {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg;
    cfg.name = "ckpt-test";
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    return cfg;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { path_ = "/tmp/qt8_ckpt_test.bin"; }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(CheckpointTest, RoundTripRestoresValues)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));

    // A different seed gives different weights...
    EncoderSpanQA b(tinyConfig(), 202);
    ParamList pb;
    b.collectParams(pb);
    bool any_diff = false;
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            any_diff |= pa[i]->value.at(j) != pb[i]->value.at(j);
    ASSERT_TRUE(any_diff);

    // ...until we load the checkpoint.
    ASSERT_TRUE(loadCheckpoint(path_, pb));
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            ASSERT_EQ(pa[i]->value.at(j), pb[i]->value.at(j))
                << pa[i]->name;
}

TEST_F(CheckpointTest, ArchitectureMismatchRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));

    ModelConfig other = tinyConfig();
    other.d_model = 32;
    other.d_ff = 64;
    EncoderSpanQA b(other, 202);
    ParamList pb;
    b.collectParams(pb);
    const float before = pb[0]->value.at(0);
    EXPECT_FALSE(loadCheckpoint(path_, pb));
    // Untouched on failure.
    EXPECT_EQ(pb[0]->value.at(0), before);
}

TEST_F(CheckpointTest, MissingFileRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    EXPECT_FALSE(loadCheckpoint("/tmp/definitely_missing_qt8.bin", pa));
}

TEST_F(CheckpointTest, CorruptMagicRejected)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACKPT", f);
    std::fclose(f);
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    EXPECT_FALSE(loadCheckpoint(path_, pa));
}

} // namespace
} // namespace qt8
