/**
 * @file
 * Tests for checkpoint save/load round trips and failure modes,
 * including a corruption/truncation matrix over the on-disk format.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "nn/checkpoint.h"
#include "nn/model.h"

namespace qt8 {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig cfg;
    cfg.name = "ckpt-test";
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    return cfg;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { path_ = "/tmp/qt8_ckpt_test.bin"; }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(CheckpointTest, RoundTripRestoresValues)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));

    // A different seed gives different weights...
    EncoderSpanQA b(tinyConfig(), 202);
    ParamList pb;
    b.collectParams(pb);
    bool any_diff = false;
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            any_diff |= pa[i]->value.at(j) != pb[i]->value.at(j);
    ASSERT_TRUE(any_diff);

    // ...until we load the checkpoint.
    ASSERT_TRUE(loadCheckpoint(path_, pb));
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            ASSERT_EQ(pa[i]->value.at(j), pb[i]->value.at(j))
                << pa[i]->name;
}

TEST_F(CheckpointTest, ArchitectureMismatchRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));

    ModelConfig other = tinyConfig();
    other.d_model = 32;
    other.d_ff = 64;
    EncoderSpanQA b(other, 202);
    ParamList pb;
    b.collectParams(pb);
    const float before = pb[0]->value.at(0);
    EXPECT_FALSE(loadCheckpoint(path_, pb));
    // Untouched on failure.
    EXPECT_EQ(pb[0]->value.at(0), before);
}

TEST_F(CheckpointTest, MissingFileRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    EXPECT_FALSE(loadCheckpoint("/tmp/definitely_missing_qt8.bin", pa));
}

TEST_F(CheckpointTest, CorruptMagicRejected)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACKPT", f);
    std::fclose(f);
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    std::string why;
    EXPECT_FALSE(loadCheckpoint(path_, pa, &why));
    EXPECT_NE(why.find("magic"), std::string::npos) << why;
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32Test, KnownVector)
{
    // IEEE 802.3 check value for the standard "123456789" input.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    // Incremental == one-shot.
    const uint32_t part = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, part), 0xCBF43926u);
}

/// Flip a single bit at sampled offsets across the whole file; every
/// flip must make the load fail (magic/count/name/shape mismatch, CRC
/// mismatch, or trailer damage) and leave the params untouched.
TEST_F(CheckpointTest, AnySingleBitFlipRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));
    const std::vector<uint8_t> good = readAll(path_);
    ASSERT_GT(good.size(), 64u);

    EncoderSpanQA b(tinyConfig(), 202);
    ParamList pb;
    b.collectParams(pb);
    const float sentinel = pb[0]->value.at(0);

    // Sample ~200 offsets, always covering the first and last 32 bytes
    // (magic / header and trailer).
    std::vector<size_t> offsets;
    for (size_t off = 0; off < 32 && off < good.size(); ++off)
        offsets.push_back(off);
    for (size_t off = good.size() - 32; off < good.size(); ++off)
        offsets.push_back(off);
    const size_t stride = good.size() / 200 + 1;
    for (size_t off = 32; off + 32 < good.size(); off += stride)
        offsets.push_back(off);

    for (size_t off : offsets) {
        std::vector<uint8_t> bad = good;
        bad[off] ^= uint8_t(1u << (off % 8));
        writeAll(path_, bad);
        std::string why;
        EXPECT_FALSE(loadCheckpoint(path_, pb, &why))
            << "bit flip at offset " << off << " loaded anyway";
        EXPECT_FALSE(why.empty()) << "no reason for flip at " << off;
        EXPECT_EQ(pb[0]->value.at(0), sentinel)
            << "params modified by failed load (offset " << off << ")";
    }

    // The pristine file still loads after all that.
    writeAll(path_, good);
    EXPECT_TRUE(loadCheckpoint(path_, pb));
}

/// Truncate at sampled lengths; a partial file must never load. The
/// end trailer is what catches clean cuts at record boundaries.
TEST_F(CheckpointTest, AnyTruncationRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));
    const std::vector<uint8_t> good = readAll(path_);

    EncoderSpanQA b(tinyConfig(), 202);
    ParamList pb;
    b.collectParams(pb);
    const float sentinel = pb[0]->value.at(0);

    std::vector<size_t> cuts = {0, 4, 8, 12, 16};
    const size_t stride = good.size() / 64 + 1;
    for (size_t cut = 17; cut < good.size(); cut += stride)
        cuts.push_back(cut);
    for (size_t back = 1; back <= 16; ++back)
        cuts.push_back(good.size() - back);

    for (size_t cut : cuts) {
        writeAll(path_, std::vector<uint8_t>(good.begin(),
                                             good.begin() + cut));
        std::string why;
        EXPECT_FALSE(loadCheckpoint(path_, pb, &why))
            << "truncation to " << cut << " bytes loaded anyway";
        EXPECT_EQ(pb[0]->value.at(0), sentinel);
    }
}

TEST_F(CheckpointTest, TrailingGarbageRejected)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);
    ASSERT_TRUE(saveCheckpoint(path_, pa));
    std::vector<uint8_t> bytes = readAll(path_);
    bytes.push_back(0xEE);
    writeAll(path_, bytes);
    std::string why;
    EXPECT_FALSE(loadCheckpoint(path_, pa, &why));
    EXPECT_NE(why.find("trailing"), std::string::npos) << why;
}

/// Version-1 files (no CRC, no trailer) predate the hardening and must
/// still load byte-exactly through the legacy path.
TEST_F(CheckpointTest, LegacyV1FileLoads)
{
    EncoderSpanQA a(tinyConfig(), 101);
    ParamList pa;
    a.collectParams(pa);

    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    auto put_u64 = [&](uint64_t v) {
        ASSERT_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
    };
    ASSERT_EQ(std::fwrite("QT8CKPT1", 8, 1, f), 1u);
    put_u64(pa.size());
    for (const Param *p : pa) {
        put_u64(p->name.size());
        ASSERT_EQ(std::fwrite(p->name.data(), 1, p->name.size(), f),
                  p->name.size());
        const auto &shape = p->value.shape();
        put_u64(shape.size());
        for (int64_t d : shape)
            put_u64(static_cast<uint64_t>(d));
        const size_t n = static_cast<size_t>(p->value.numel());
        ASSERT_EQ(std::fwrite(p->value.data(), sizeof(float), n, f), n);
    }
    std::fclose(f);

    EncoderSpanQA b(tinyConfig(), 202);
    ParamList pb;
    b.collectParams(pb);
    std::string why;
    ASSERT_TRUE(loadCheckpoint(path_, pb, &why)) << why;
    for (size_t i = 0; i < pa.size(); ++i)
        for (int64_t j = 0; j < pa[i]->value.numel(); ++j)
            ASSERT_EQ(pa[i]->value.at(j), pb[i]->value.at(j))
                << pa[i]->name;
}

} // namespace
} // namespace qt8
