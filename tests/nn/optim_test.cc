/**
 * @file
 * Tests for optimizers, gradient utilities and loss scaling.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "nn/optim.h"

namespace qt8 {
namespace {

Param
makeParam(std::vector<float> w)
{
    Param p;
    Tensor t({static_cast<int64_t>(w.size())});
    for (size_t i = 0; i < w.size(); ++i)
        t.at(static_cast<int64_t>(i)) = w[i];
    p.init("p", std::move(t));
    return p;
}

TEST(Optim, SgdDescendsQuadratic)
{
    // Minimize f(w) = 0.5 * w^2: gradient is w.
    Param p = makeParam({4.0f, -2.0f});
    ParamList params = {&p};
    Sgd sgd(0.1, 0.0);
    for (int i = 0; i < 200; ++i) {
        p.grad = p.value;
        sgd.step(params);
        zeroGrads(params);
    }
    EXPECT_NEAR(p.value.at(0), 0.0f, 1e-4f);
    EXPECT_NEAR(p.value.at(1), 0.0f, 1e-4f);
}

TEST(Optim, SgdMomentumAccelerates)
{
    Param plain = makeParam({4.0f});
    Param mom = makeParam({4.0f});
    ParamList lp = {&plain}, lm = {&mom};
    Sgd s_plain(0.01, 0.0), s_mom(0.01, 0.9);
    for (int i = 0; i < 30; ++i) {
        plain.grad = plain.value;
        mom.grad = mom.value;
        s_plain.step(lp);
        s_mom.step(lm);
        zeroGrads(lp);
        zeroGrads(lm);
    }
    EXPECT_LT(std::fabs(mom.value.at(0)), std::fabs(plain.value.at(0)));
}

TEST(Optim, AdamWConvergesAndDecays)
{
    Param p = makeParam({4.0f});
    ParamList params = {&p};
    AdamW adam(0.1, 0.9, 0.999, 1e-8, 0.0);
    for (int i = 0; i < 300; ++i) {
        p.grad = p.value;
        adam.step(params);
        zeroGrads(params);
    }
    EXPECT_NEAR(p.value.at(0), 0.0f, 1e-3f);

    // Pure weight decay shrinks weights even with zero gradients.
    Param q = makeParam({1.0f});
    ParamList ql = {&q};
    AdamW decay(0.1, 0.9, 0.999, 1e-8, 0.5);
    for (int i = 0; i < 10; ++i) {
        decay.step(ql);
        zeroGrads(ql);
    }
    EXPECT_LT(q.value.at(0), 1.0f);
    EXPECT_GT(q.value.at(0), 0.0f);
}

TEST(Optim, FrozenParamsUntouched)
{
    Param p = makeParam({2.0f});
    p.trainable = false;
    p.grad.at(0) = 1.0f;
    ParamList params = {&p};
    Sgd sgd(0.5);
    sgd.step(params);
    EXPECT_EQ(p.value.at(0), 2.0f);
    AdamW adam(0.5);
    adam.step(params);
    EXPECT_EQ(p.value.at(0), 2.0f);
}

TEST(Optim, GradNormAndClip)
{
    Param p = makeParam({3.0f, 4.0f});
    p.grad.at(0) = 3.0f;
    p.grad.at(1) = 4.0f;
    ParamList params = {&p};
    EXPECT_DOUBLE_EQ(gradNorm(params), 5.0);
    clipGradNorm(params, 1.0);
    EXPECT_NEAR(gradNorm(params), 1.0, 1e-6);
    EXPECT_NEAR(p.grad.at(0), 0.6f, 1e-6f);
    // Clipping below the threshold is a no-op.
    clipGradNorm(params, 10.0);
    EXPECT_NEAR(gradNorm(params), 1.0, 1e-6);
}

TEST(Optim, GradsFiniteDetection)
{
    Param p = makeParam({1.0f});
    ParamList params = {&p};
    p.grad.at(0) = 1.0f;
    EXPECT_TRUE(gradsFinite(params));
    p.grad.at(0) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(gradsFinite(params));
}

TEST(LossScaler, UnscalesAndSkipsNonFinite)
{
    Param p = makeParam({1.0f});
    ParamList params = {&p};
    LossScaler scaler(256.0);
    EXPECT_DOUBLE_EQ(scaler.scale(), 256.0);

    p.grad.at(0) = 256.0f; // scaled gradient
    EXPECT_TRUE(scaler.unscaleAndCheck(params));
    EXPECT_NEAR(p.grad.at(0), 1.0f, 1e-6f);

    p.grad.at(0) = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(scaler.unscaleAndCheck(params));
    EXPECT_DOUBLE_EQ(scaler.scale(), 128.0); // halved after overflow
}

TEST(LossScaler, DisabledIsTransparent)
{
    Param p = makeParam({1.0f});
    ParamList params = {&p};
    LossScaler scaler(1024.0, /*enabled=*/false);
    EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);
    p.grad.at(0) = 2.0f;
    EXPECT_TRUE(scaler.unscaleAndCheck(params));
    EXPECT_EQ(p.grad.at(0), 2.0f);
}

TEST(Param, CopyParamValues)
{
    Param a = makeParam({1.0f, 2.0f});
    Param b = makeParam({0.0f, 0.0f});
    ParamList src = {&a}, dst = {&b};
    copyParamValues(dst, src);
    EXPECT_EQ(b.value.at(1), 2.0f);
    // Copy is by value: changing the source afterwards is invisible.
    a.value.at(1) = 9.0f;
    EXPECT_EQ(b.value.at(1), 2.0f);
}

} // namespace
} // namespace qt8
