/**
 * @file
 * End-to-end training smoke tests: each model family must learn its
 * synthetic task well above chance in FP32, pretrained backbones must
 * transfer, LoRA must train with frozen bases, and 8-bit quantized
 * training must stay stable. These are the integration tests backing
 * the paper-reproduction benches.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "data/eval.h"

namespace qt8 {
namespace {

ModelConfig
tinyEncoderConfig()
{
    ModelConfig cfg;
    cfg.name = "test-enc";
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    return cfg;
}

TEST(Train, SpanModelLearnsTask)
{
    const SpanTask task(64, 24);
    EncoderSpanQA model(tinyEncoderConfig(), 1001);
    QuantSession qs(QuantConfig::fp32());

    TrainOptions opts;
    opts.steps = 400;
    opts.batch = 16;
    opts.lr = 2e-3;
    const double before = evalSpanF1(model, qs, task, 999, 4, 32);
    const TrainResult r = trainSpan(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const double after = evalSpanF1(model, qs, task, 999, 4, 32);
    // Chance F1 is a few percent; a trained model must be far above.
    EXPECT_GT(after, before + 20.0);
    EXPECT_GT(after, 60.0);
}

TEST(Train, ClassifierLearnsSst2Scratch)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1002);
    QuantSession qs(QuantConfig::fp32());

    TrainOptions opts;
    opts.steps = 250;
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 85.0); // chance = 50
}

TEST(Train, PretrainedEncoderTransfersToQnli)
{
    // The matching circuits learned on span extraction transfer to the
    // membership-classification task (the basis of the Table 7 bench).
    QuantSession qs(QuantConfig::fp32());
    const SpanTask span(64, 24);
    EncoderSpanQA pretrain(tinyEncoderConfig(), 1003);
    TrainOptions popts;
    popts.steps = 900;
    popts.batch = 16;
    popts.lr = 2e-3;
    trainSpan(pretrain, qs, span, popts);

    const PairTask task(PairTask::Kind::kQnli, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1004);
    ParamList src, dst;
    pretrain.encoder.collectParams(src);
    model.encoder.collectParams(dst);
    copyParamValues(dst, src);

    TrainOptions fopts;
    fopts.steps = 300;
    fopts.batch = 16;
    fopts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, fopts);
    EXPECT_FALSE(r.diverged);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 85.0);
}

TEST(Train, Seq2SeqLearnsTransduction)
{
    const Seq2SeqTask task(48, 36, 12);
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    cfg.vocab = 48;
    Seq2Seq model(cfg, 1005);
    QuantSession qs(QuantConfig::fp32());

    TrainOptions opts;
    opts.steps = 1000;
    opts.batch = 12;
    opts.lr = 2e-3;
    const TrainResult r = trainSeq2Seq(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    // Teacher-forced loss must be well below the ~3.7 nats of a
    // uniform predictor over the content vocabulary.
    EXPECT_LT(r.final_loss, 1.4);
    const double wer = evalWer(model, qs, task, 999, 2, 8);
    EXPECT_LT(wer, 45.0);
}

TEST(Train, CausalLmBeatsUnigram)
{
    const LmTask task(96, 7);
    ModelConfig cfg = ModelConfig::gpt2LargeLike();
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_layers = 2;
    CausalLM model(cfg, 1006);
    QuantSession qs(QuantConfig::fp32());

    TrainOptions opts;
    opts.steps = 250;
    opts.batch = 8;
    opts.lr = 2e-3;
    const TrainResult r = trainLm(model, qs, task, 32, opts);
    EXPECT_FALSE(r.diverged);
    const double ppl = evalPerplexity(model, qs, task, 999, 2000, 32, 16);
    // The bigram chain has low conditional entropy; the model must get
    // perplexity far below the 88-token uniform (and below ~30).
    EXPECT_LT(ppl, 30.0);
}

TEST(Train, LoraTrainsOnlyAdapters)
{
    const SpanTask task(64, 24);
    EncoderSpanQA model(tinyEncoderConfig(), 1007);
    model.enableLora(4, 2.0f, false);

    ParamList params;
    model.collectParams(params);
    const int64_t trainable = countTrainable(params);
    const int64_t total = countTotal(params);
    // LoRA trains a small fraction of the total (plus the task head).
    EXPECT_LT(trainable, total / 5);
    EXPECT_GT(trainable, 0);

    // Snapshot a frozen weight; it must not move during training.
    QuantSession qs(QuantConfig::fp32());
    const Tensor frozen_before = model.encoder.blocks[0]->attn
                                     .q_proj.weight.value;
    TrainOptions opts;
    opts.steps = 60;
    opts.batch = 8;
    opts.lr = 2e-3;
    const TrainResult r = trainSpan(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const Tensor &frozen_after =
        model.encoder.blocks[0]->attn.q_proj.weight.value;
    for (int64_t i = 0; i < frozen_before.numel(); ++i)
        ASSERT_EQ(frozen_before.at(i), frozen_after.at(i));
    // ...while the LoRA B factor moved off zero.
    double b_norm = 0.0;
    const Tensor &bval =
        model.encoder.blocks[0]->attn.q_proj.lora_b.value;
    for (int64_t i = 0; i < bval.numel(); ++i)
        b_norm += std::fabs(bval.at(i));
    EXPECT_GT(b_norm, 0.0);
}

TEST(Train, Posit8QuantizedTrainingIsStable)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1008);
    QuantSession qs(QuantConfig::posit8());

    TrainOptions opts;
    opts.steps = 200;
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    EXPECT_EQ(r.skipped_steps, 0);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 80.0);
}

TEST(Train, Fp8QuantizedTrainingIsStable)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1009);
    QuantSession qs(QuantConfig::fp8());

    TrainOptions opts;
    opts.steps = 200;
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 80.0);
}

TEST(Train, Posit8ApproxSoftmaxTrainingIsStable)
{
    // Section 5.2: training with the approximate softmax (including the
    // re-derived backward for the piece-wise-linear reciprocal).
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1010);
    QuantSession qs(QuantConfig::posit8Approx());

    TrainOptions opts;
    opts.steps = 200;
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 75.0);
}

TEST(Train, SgdAlsoConverges)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    EncoderClassifier model(tinyEncoderConfig(), task.numClasses(), 1011);
    QuantSession qs(QuantConfig::fp32());

    TrainOptions opts;
    opts.steps = 250;
    opts.batch = 16;
    opts.lr = 5e-2;
    opts.opt = TrainOptions::Opt::kSgd;
    const TrainResult r = trainCls(model, qs, task, opts);
    EXPECT_FALSE(r.diverged);
    const double acc = evalClsAccuracy(model, qs, task, 999, 4, 32);
    EXPECT_GT(acc, 85.0);
}

TEST(Train, QuantizedEvalOfFp32ModelIsDeterministic)
{
    const SpanTask task(64, 24);
    EncoderSpanQA model(tinyEncoderConfig(), 1012);
    QuantSession fp32(QuantConfig::fp32());
    TrainOptions opts;
    opts.steps = 120;
    opts.batch = 8;
    trainSpan(model, fp32, task, opts);

    QuantSession q1(QuantConfig::posit8());
    QuantSession q2(QuantConfig::posit8());
    const double f1a = evalSpanF1(model, q1, task, 999, 3, 16);
    const double f1b = evalSpanF1(model, q2, task, 999, 3, 16);
    EXPECT_DOUBLE_EQ(f1a, f1b);
}

} // namespace
} // namespace qt8
