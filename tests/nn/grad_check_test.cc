/**
 * @file
 * Finite-difference gradient checks for every module's manual backward
 * pass (run without quantization: the straight-through estimators make
 * quantized gradients intentionally biased).
 */
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/block.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "tensor/ops.h"

namespace qt8 {
namespace {

/// Scalar probe loss: L = sum(coefs * y).
double
probeLoss(const Tensor &y, const Tensor &coefs)
{
    double acc = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        acc += static_cast<double>(y.at(i)) * coefs.at(i);
    return acc;
}

/// Check analytic dL/dx against central differences at sampled coords.
void
checkInputGrad(const std::function<Tensor(const Tensor &)> &fwd,
               Tensor &x, const Tensor &analytic, int n_probes,
               double tol, Rng &rng)
{
    const float h = 1e-3f;
    for (int p = 0; p < n_probes; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        Tensor coefs_dummy; // unused
        const Tensor yp = fwd(x);
        x.at(i) = orig - h;
        const Tensor ym = fwd(x);
        x.at(i) = orig;
        double num = 0.0;
        (void)coefs_dummy;
        for (int64_t j = 0; j < yp.numel(); ++j)
            num += (yp.at(j) - ym.at(j));
        // fwd returns "coef-weighted" tensor already; see callers.
        num /= (2.0 * h);
        EXPECT_NEAR(analytic.at(i), num,
                    tol * std::max(1.0, std::fabs(num)))
            << "coord " << i;
    }
}

TEST(GradCheck, Linear)
{
    QuantSession qs(QuantConfig::fp32());
    Rng rng(1);
    Linear lin(6, 5, rng, "lin", 0);
    Tensor x({4, 6});
    rng.fillNormal(x);
    Tensor coefs({4, 5});
    rng.fillNormal(coefs);

    const Tensor y = lin.forward(qs, x);
    (void)probeLoss(y, coefs);
    const Tensor gx = lin.backward(qs, coefs);

    auto fwd = [&](const Tensor &xi) {
        Tensor out = lin.forward(qs, xi);
        for (int64_t j = 0; j < out.numel(); ++j)
            out.at(j) *= coefs.at(j);
        return out;
    };
    checkInputGrad(fwd, x, gx, 10, 2e-2, rng);

    // Weight gradient check.
    const float h = 1e-3f;
    for (int p = 0; p < 8; ++p) {
        const int64_t i = rng.randint(lin.weight.value.numel());
        const float orig = lin.weight.value.at(i);
        lin.weight.value.at(i) = orig + h;
        const double lp = probeLoss(lin.forward(qs, x), coefs);
        lin.weight.value.at(i) = orig - h;
        const double lm = probeLoss(lin.forward(qs, x), coefs);
        lin.weight.value.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(lin.weight.grad.at(i), num,
                    2e-2 * std::max(1.0, std::fabs(num)));
    }
    // Bias gradient: dL/db_j = sum_i coefs(i, j).
    for (int64_t j = 0; j < 5; ++j) {
        double want = 0.0;
        for (int64_t i = 0; i < 4; ++i)
            want += coefs.at(i, j);
        EXPECT_NEAR(lin.bias.grad.at(j), want, 1e-4);
    }
}

TEST(GradCheck, LayerNorm)
{
    QuantSession qs(QuantConfig::fp32());
    Rng rng(2);
    LayerNorm ln(8, "ln", 0);
    rng.fillNormal(ln.gamma.value, 0.3, 1.0);
    rng.fillNormal(ln.beta.value, 0.1);
    Tensor x({3, 8});
    rng.fillNormal(x, 2.0, 0.5);
    Tensor coefs({3, 8});
    rng.fillNormal(coefs);

    ln.forward(qs, x);
    const Tensor gx = ln.backward(qs, coefs);

    const float h = 1e-3f;
    for (int p = 0; p < 12; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp = probeLoss(ln.forward(qs, x), coefs);
        x.at(i) = orig - h;
        const double lm = probeLoss(ln.forward(qs, x), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 3e-2 * std::max(0.5, std::fabs(num)))
            << "coord " << i;
    }
}

TEST(GradCheck, FeedForward)
{
    QuantSession qs(QuantConfig::fp32());
    BuildCtx ctx(3);
    FeedForward ffn(6, 12, ctx, "ffn");
    Tensor x({4, 6});
    ctx.rng.fillNormal(x);
    Tensor coefs({4, 6});
    ctx.rng.fillNormal(coefs);

    ffn.forward(qs, x);
    const Tensor gx = ffn.backward(qs, coefs);

    const float h = 1e-3f;
    Rng rng(7);
    for (int p = 0; p < 12; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp = probeLoss(ffn.forward(qs, x), coefs);
        x.at(i) = orig - h;
        const double lm = probeLoss(ffn.forward(qs, x), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 3e-2 * std::max(0.5, std::fabs(num)));
    }
}

TEST(GradCheck, MultiHeadAttentionSelf)
{
    QuantSession qs(QuantConfig::fp32());
    BuildCtx ctx(4);
    MultiHeadAttention mha(8, 2, ctx, "mha");
    const int64_t b = 2, s = 5;
    Tensor x({b * s, 8});
    ctx.rng.fillNormal(x);
    Tensor coefs({b * s, 8});
    ctx.rng.fillNormal(coefs);

    mha.forward(qs, x, b, s);
    const Tensor gx = mha.backward(qs, coefs);

    const float h = 1e-3f;
    Rng rng(8);
    for (int p = 0; p < 16; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp = probeLoss(mha.forward(qs, x, b, s), coefs);
        x.at(i) = orig - h;
        const double lm = probeLoss(mha.forward(qs, x, b, s), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 3e-2 * std::max(0.5, std::fabs(num)))
            << "coord " << i;
    }
}

TEST(GradCheck, MultiHeadAttentionCausalMasked)
{
    QuantSession qs(QuantConfig::fp32());
    BuildCtx ctx(5);
    MultiHeadAttention mha(8, 2, ctx, "mha");
    const int64_t b = 1, s = 6;
    Tensor x({b * s, 8});
    ctx.rng.fillNormal(x);
    Tensor coefs({b * s, 8});
    ctx.rng.fillNormal(coefs);
    std::vector<uint8_t> pad(static_cast<size_t>(b * s), 0);
    pad[5] = 1; // last key padded

    auto fwd = [&](const Tensor &xi) {
        return mha.forward(qs, xi, b, s, nullptr, 0, pad.data(), true);
    };
    fwd(x);
    const Tensor gx = mha.backward(qs, coefs);

    const float h = 1e-3f;
    Rng rng(9);
    for (int p = 0; p < 16; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp = probeLoss(fwd(x), coefs);
        x.at(i) = orig - h;
        const double lm = probeLoss(fwd(x), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 3e-2 * std::max(0.5, std::fabs(num)));
    }
}

TEST(GradCheck, EncoderBlockStackedFfnNoInnerLn)
{
    // The MobileBERT-like arrangement (residual-only FFN stack).
    QuantSession qs(QuantConfig::fp32());
    BuildCtx ctx(6);
    EncoderBlock block(8, 2, 16, /*n_ffn=*/3, /*ln_inner=*/false, ctx,
                       "blk");
    const int64_t b = 2, s = 4;
    Tensor x({b * s, 8});
    ctx.rng.fillNormal(x);
    Tensor coefs({b * s, 8});
    ctx.rng.fillNormal(coefs);

    block.forward(qs, x, b, s, nullptr);
    const Tensor gx = block.backward(qs, coefs);

    const float h = 1e-3f;
    Rng rng(10);
    for (int p = 0; p < 16; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp =
            probeLoss(block.forward(qs, x, b, s, nullptr), coefs);
        x.at(i) = orig - h;
        const double lm =
            probeLoss(block.forward(qs, x, b, s, nullptr), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 4e-2 * std::max(0.5, std::fabs(num)))
            << "coord " << i;
    }
}

TEST(GradCheck, DecoderBlockCrossAttention)
{
    QuantSession qs(QuantConfig::fp32());
    BuildCtx ctx(7);
    DecoderBlock block(8, 2, 16, ctx, "dec");
    const int64_t b = 1, t = 4, s = 5;
    Tensor x({b * t, 8});
    ctx.rng.fillNormal(x);
    Tensor mem({b * s, 8});
    ctx.rng.fillNormal(mem);
    Tensor coefs({b * t, 8});
    ctx.rng.fillNormal(coefs);

    block.forward(qs, x, b, t, mem, s, nullptr);
    Tensor gmem({b * s, 8});
    const Tensor gx = block.backward(qs, coefs, gmem);

    const float h = 1e-3f;
    Rng rng(11);
    // Check gradient w.r.t. decoder input.
    for (int p = 0; p < 10; ++p) {
        const int64_t i = rng.randint(x.numel());
        const float orig = x.at(i);
        x.at(i) = orig + h;
        const double lp = probeLoss(
            block.forward(qs, x, b, t, mem, s, nullptr), coefs);
        x.at(i) = orig - h;
        const double lm = probeLoss(
            block.forward(qs, x, b, t, mem, s, nullptr), coefs);
        x.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gx.at(i), num, 4e-2 * std::max(0.5, std::fabs(num)));
    }
    // Check gradient w.r.t. encoder memory (cross-attention path).
    for (int p = 0; p < 10; ++p) {
        const int64_t i = rng.randint(mem.numel());
        const float orig = mem.at(i);
        mem.at(i) = orig + h;
        const double lp = probeLoss(
            block.forward(qs, x, b, t, mem, s, nullptr), coefs);
        mem.at(i) = orig - h;
        const double lm = probeLoss(
            block.forward(qs, x, b, t, mem, s, nullptr), coefs);
        mem.at(i) = orig;
        const double num = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(gmem.at(i), num, 4e-2 * std::max(0.5, std::fabs(num)))
            << "mem coord " << i;
    }
}

TEST(GradCheck, LoraFactors)
{
    QuantSession qs(QuantConfig::fp32());
    Rng rng(12);
    Linear lin(6, 5, rng, "lora_lin", 0);
    lin.enableLora(2, 1.5f, rng);
    // Give B nonzero values so gradients flow both ways.
    rng.fillNormal(lin.lora_b.value, 0.1);

    Tensor x({3, 6});
    rng.fillNormal(x);
    Tensor coefs({3, 5});
    rng.fillNormal(coefs);

    lin.forward(qs, x);
    lin.backward(qs, coefs);
    EXPECT_FALSE(lin.weight.trainable);
    EXPECT_TRUE(lin.lora_a.trainable);

    const float h = 1e-3f;
    for (Param *p : {&lin.lora_a, &lin.lora_b}) {
        for (int k = 0; k < 6; ++k) {
            const int64_t i = rng.randint(p->value.numel());
            const float orig = p->value.at(i);
            p->value.at(i) = orig + h;
            const double lp = probeLoss(lin.forward(qs, x), coefs);
            p->value.at(i) = orig - h;
            const double lm = probeLoss(lin.forward(qs, x), coefs);
            p->value.at(i) = orig;
            const double num = (lp - lm) / (2.0 * h);
            EXPECT_NEAR(p->grad.at(i), num,
                        3e-2 * std::max(0.5, std::fabs(num)))
                << p->name << " coord " << i;
        }
    }
}

} // namespace
} // namespace qt8
