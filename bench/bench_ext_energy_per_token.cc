/**
 * @file
 * Extension bench (beyond the paper's tables, built on its section 7
 * models): estimated cycles and energy of one Transformer forward pass
 * per accelerator data type, using the systolic GEMM simulator. Shows
 * where the 8-bit formats' energy win comes from (MAC energy + halved
 * SRAM traffic) and the posit codec overhead.
 */
#include <cstdio>

#include "harness.h"
#include "hw/sim.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Extension: per-forward-pass cycles & energy "
                  "(MobileBERT_tiny-scale, seq 128)");

    const int64_t d_model = 160, d_ff = 640, seq = 128, vocab = 30522;
    const int n_layers = 21, n_ffn = 2;

    std::printf("%-8s %14s %14s %14s %14s\n", "dtype", "Mcycles",
                "gemm uJ", "vector uJ", "total uJ");
    double bf16_total = 0.0;
    for (const char *d : {"bf16", "posit8", "fp8", "e4m3", "e5m2"}) {
        AcceleratorConfig cfg;
        cfg.dtype = d;
        cfg.array_n = 16;
        const InferenceCost c = transformerForwardCost(
            cfg, d_model, d_ff, n_layers, n_ffn, seq, vocab);
        const double total_uj = c.total_nj() * 1e-3;
        if (std::string(d) == "bf16")
            bf16_total = total_uj;
        std::printf("%-8s %14.1f %14.2f %14.2f %14.2f", d,
                    c.gemm.cycles / 1e6, c.gemm.energy_nj * 1e-3,
                    c.vector_energy_nj * 1e-3, total_uj);
        if (std::string(d) != "bf16")
            std::printf("   (-%4.1f%%)",
                        100.0 * (1.0 - total_uj / bf16_total));
        std::printf("\n");
    }
    std::printf("\n8-bit formats cut GEMM energy (smaller MACs) and "
                "halve operand SRAM traffic; the posit codec energy is "
                "a small overhead on top.\n");
    return 0;
}
