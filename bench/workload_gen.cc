#include "workload_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tensor/random.h"

namespace qt8::bench {
namespace {

int64_t
uniformIn(Rng &rng, int64_t lo, int64_t hi)
{
    if (hi <= lo)
        return lo;
    return lo + rng.randint(hi - lo + 1);
}

double
uniformIn(Rng &rng, double lo, double hi)
{
    if (hi <= lo)
        return lo;
    return lo + rng.uniform() * (hi - lo);
}

} // namespace

WorkloadConfig
defaultMix(uint64_t seed, double horizon_ms, int32_t vocab,
           int32_t first_token)
{
    WorkloadConfig cfg;
    cfg.seed = seed;
    cfg.horizon_ms = horizon_ms;
    cfg.vocab = vocab;
    cfg.first_token = first_token;

    // Interactive chat: short multi-turn sessions, many tenants, the
    // tightest TTFT SLO — the class preemption exists to protect.
    ClassSpec chat;
    chat.cls = serve::PriorityClass::kInteractive;
    chat.arrival_hz = 40.0;
    chat.prompt_lo = 4;
    chat.prompt_hi = 10;
    chat.budget_lo = 4;
    chat.budget_hi = 10;
    chat.n_tenants = 3;
    chat.tenant_base = 1;
    chat.turns_lo = 1;
    chat.turns_hi = 3;
    chat.think_ms_lo = 1.0;
    chat.think_ms_hi = 10.0;
    chat.ttft_slo_ms = 150.0;
    chat.latency_slo_ms = 1500.0;
    cfg.classes.push_back(chat);

    // Long-document analysis: prefill-heavy one-shots with a latency
    // SLO — big prompts, modest budgets.
    ClassSpec doc;
    doc.cls = serve::PriorityClass::kStandard;
    doc.arrival_hz = 15.0;
    doc.prompt_lo = 20;
    doc.prompt_hi = 40;
    doc.budget_lo = 4;
    doc.budget_hi = 8;
    doc.n_tenants = 2;
    doc.tenant_base = 10;
    doc.ttft_slo_ms = 600.0;
    doc.latency_slo_ms = 3000.0;
    cfg.classes.push_back(doc);

    // Offline batch: no SLO, the longest decode budgets, one bulk
    // tenant — pure goodput filler that must not starve.
    ClassSpec batch;
    batch.cls = serve::PriorityClass::kBatch;
    batch.arrival_hz = 10.0;
    batch.prompt_lo = 8;
    batch.prompt_hi = 16;
    batch.budget_lo = 12;
    batch.budget_hi = 24;
    batch.n_tenants = 1;
    batch.tenant_base = 20;
    cfg.classes.push_back(batch);
    return cfg;
}

std::vector<GenRequest>
generate(const WorkloadConfig &cfg)
{
    std::vector<GenRequest> out;
    uint64_t next_session = 1;
    for (size_t ci = 0; ci < cfg.classes.size(); ++ci) {
        const ClassSpec &cs = cfg.classes[ci];
        // One stream per class: adding or re-tuning a class never
        // perturbs another class's draws.
        Rng rng(cfg.seed * 2654435761u + ci + 1);
        double t = 0.0;
        int tenant_rr = 0;
        for (;;) {
            t += -std::log(1.0 - rng.uniform()) /
                 std::max(cs.arrival_hz, 1e-9) * 1000.0;
            if (t >= cfg.horizon_ms)
                break;
            const int turns = static_cast<int>(
                uniformIn(rng, static_cast<int64_t>(cs.turns_lo),
                          static_cast<int64_t>(cs.turns_hi)));
            const uint64_t sid = turns > 1 ? next_session++ : 0;
            const uint64_t tenant =
                cs.tenant_base +
                static_cast<uint64_t>(tenant_rr++ %
                                      std::max(cs.n_tenants, 1));
            for (int turn = 0; turn < turns; ++turn) {
                GenRequest g;
                g.arrival_ms = t;
                g.cls = cs.cls;
                g.tenant_id = tenant;
                g.session_id = sid;
                g.turn = turn;
                g.turns = turns;
                g.think_ms =
                    uniformIn(rng, cs.think_ms_lo, cs.think_ms_hi);
                const int64_t plen =
                    uniformIn(rng, cs.prompt_lo, cs.prompt_hi);
                for (int64_t j = 0; j < plen; ++j)
                    g.prompt.push_back(
                        cfg.first_token +
                        static_cast<int32_t>(rng.randint(
                            cfg.vocab - cfg.first_token)));
                g.max_new_tokens =
                    uniformIn(rng, cs.budget_lo, cs.budget_hi);
                out.push_back(std::move(g));
            }
        }
    }
    // Deterministic global order: arrival time, then session/turn so
    // equal timestamps (same session's turns) stay stable.
    std::stable_sort(out.begin(), out.end(),
                     [](const GenRequest &a, const GenRequest &b) {
                         if (a.arrival_ms != b.arrival_ms)
                             return a.arrival_ms < b.arrival_ms;
                         if (a.session_id != b.session_id)
                             return a.session_id < b.session_id;
                         return a.turn < b.turn;
                     });
    return out;
}

std::string
fingerprint(const std::vector<GenRequest> &reqs)
{
    std::string s;
    char buf[128];
    for (const GenRequest &g : reqs) {
        std::snprintf(buf, sizeof(buf),
                      "%.6f|%d|%llu|%llu|%d/%d|%.6f|%lld|",
                      g.arrival_ms, static_cast<int>(g.cls),
                      static_cast<unsigned long long>(g.tenant_id),
                      static_cast<unsigned long long>(g.session_id),
                      g.turn, g.turns, g.think_ms,
                      static_cast<long long>(g.max_new_tokens));
        s += buf;
        for (const int32_t tok : g.prompt) {
            std::snprintf(buf, sizeof(buf), "%d,", tok);
            s += buf;
        }
        s += '\n';
    }
    return s;
}

} // namespace qt8::bench
