/**
 * @file
 * Ablation (section 3.4): the paper's sub-minpos round-to-even policy
 * vs the posit-standard "never underflow to zero" rule, during 8-bit
 * training *without* per-tensor scaling. Standard posit rounds tiny
 * gradients up to minpos = 2^-12, inflating gradient noise; the paper
 * reports this can cause divergence.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

double
runTraining(SubMinposPolicy policy, double *final_loss)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    ModelConfig cfg;
    cfg.name = "ablation";
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    EncoderClassifier model(cfg, task.numClasses(), 7801);

    const PositSpec spec(8, 1, policy);
    QuantConfig qcfg = QuantConfig::eightBit(
        policy == SubMinposPolicy::kPaperRoundToEven
            ? "posit8-paper-rounding"
            : "posit8-standard-rounding",
        Quantizer::posit(spec), Quantizer::posit(spec));
    qcfg.per_tensor_scaled_grads = false; // isolate the rounding rule

    QuantSession qs(qcfg);
    TrainOptions opts;
    opts.steps = budget(300);
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    *final_loss = r.final_loss;
    QuantSession eval_qs(qcfg);
    return evalClsAccuracy(model, eval_qs, task, kEvalSeed, 4, 32);
}

} // namespace

int
main()
{
    banner("Ablation: sub-minpos rounding policy (section 3.4), "
           "no per-tensor scaling");

    double loss_paper = 0.0, loss_std = 0.0;
    const double acc_paper =
        runTraining(SubMinposPolicy::kPaperRoundToEven, &loss_paper);
    const double acc_std =
        runTraining(SubMinposPolicy::kPositStandard, &loss_std);

    std::printf("%-28s %12s %12s\n", "policy", "final loss", "accuracy");
    std::printf("%-28s %12.4f %12.2f\n",
                "paper round-to-even (<2^-13 -> 0)", loss_paper,
                acc_paper);
    std::printf("%-28s %12.4f %12.2f\n",
                "posit standard (round up to minpos)", loss_std,
                acc_std);
    std::printf("\nPaper claim: rounding all tiny gradients up to "
                "2^-12 'could easily lead to divergence'; the custom "
                "rule trains stably.\n");
    return 0;
}
