/**
 * @file
 * Figure 8: exponential unit area and post-synthesis power at 0.9 V
 * across target frequencies, for FP32 / BF16 HLS units vs the posit
 * approximate exponential (posit16 and posit8).
 */
#include <cstdio>

#include "harness.h"
#include "hw/units.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Figure 8: exponential unit area/power vs frequency");
    std::printf("%8s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n",
                "MHz", "fp32 um2", "mW", "bf16 um2", "mW", "posit16 um2",
                "mW", "posit8 um2", "mW");
    for (double f : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        const auto e32 = synthesize(floatExpUnit(kFp32), f);
        const auto e16 = synthesize(floatExpUnit(kBf16), f);
        const auto p16 = synthesize(positExpUnit(16, 1), f);
        const auto p8 = synthesize(positExpUnit(8, 1), f);
        std::printf("%8.0f | %10.0f %10.3f | %10.0f %10.3f | %10.0f "
                    "%10.3f | %10.0f %10.3f\n",
                    f, e32.area_um2, e32.powerMw(), e16.area_um2,
                    e16.powerMw(), p16.area_um2, p16.powerMw(),
                    p8.area_um2, p8.powerMw());
    }
    const auto e16 = synthesize(floatExpUnit(kBf16), 200.0);
    const auto p16 = synthesize(positExpUnit(16, 1), 200.0);
    std::printf("\nAt 200 MHz: posit16 exp is %.0f%% smaller and uses "
                "%.0f%% less power than BF16 (paper: 62%% / 44%%).\n",
                100.0 * (1.0 - p16.area_um2 / e16.area_um2),
                100.0 * (1.0 - p16.powerMw() / e16.powerMw()));
    return 0;
}
