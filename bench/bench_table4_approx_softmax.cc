/**
 * @file
 * Table 4: span F1 with softmax built from the posit approximate
 * exponential and/or the posit approximate reciprocal (MobileBERT-like
 * and BERT-like models, Posit8 quantization with the Table 2 fusion).
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Table 4: approximate softmax combinations (span F1)");

    const SpanTask task(64, 24);

    EncoderSpanQA mobile(ModelConfig::mobileBertLike(), 9000);
    trainSpanBaseline(mobile, task, budget(700));
    EncoderSpanQA bert(ModelConfig::bertBaseLike(), 7202);
    trainSpanBaseline(bert, task, budget(350));

    auto row = [&](const char *label, const QuantConfig &cfg) {
        QuantSession qs1(cfg);
        QuantSession qs2(cfg);
        std::printf("%-10s %6s %6s %14.1f %14.1f\n", label,
                    (cfg.softmax == SoftmaxMode::kApproxExp ||
                     cfg.softmax == SoftmaxMode::kApproxBoth)
                        ? "yes"
                        : "-",
                    (cfg.softmax == SoftmaxMode::kApproxRecip ||
                     cfg.softmax == SoftmaxMode::kApproxBoth)
                        ? "yes"
                        : "-",
                    evalSpanF1(mobile, qs1, task, kEvalSeed, 2, 32),
                    evalSpanF1(bert, qs2, task, kEvalSeed, 2, 32));
        std::fflush(stdout);
    };

    std::printf("%-10s %6s %6s %14s %14s\n", "dtype", "e^x", "1/x",
                "mobilebert", "bert-base");

    row("BF16", QuantConfig::bf16());

    const QuantConfig base =
        QuantConfig::posit8().withFusion(FusionLevel::kResidual);
    row("Posit8", base);

    QuantConfig exp_only = base;
    exp_only.softmax = SoftmaxMode::kApproxExp;
    row("Posit8", exp_only);

    QuantConfig recip_only = base;
    recip_only.softmax = SoftmaxMode::kApproxRecip;
    row("Posit8", recip_only);

    QuantConfig both = base;
    both.softmax = SoftmaxMode::kApproxBoth;
    row("Posit8", both);

    std::printf("\nPaper shape: each approximation costs a fraction of "
                "a point; the full posit softmax stays within ~1%% of "
                "the quantized baseline (0.8%% MobileBERT, 0.1%% "
                "BERT).\n");
    return 0;
}
