/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels:
 * fake-quantization throughput per format (LUT fast path vs the
 * reference binary search), blocked vs naive GEMM, exact vs approximate
 * posit softmax, and the posit codec.
 *
 * `bench_kernels --smoke` skips timing and instead exercises the fast
 * paths against their reference implementations (LUT vs search, blocked
 * vs naive GEMM), exiting nonzero on any mismatch — this is what the
 * ctest entry runs.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "numerics/float_bits.h"
#include "numerics/posit_ops.h"
#include "numerics/quantizer.h"
#include "tensor/ops.h"
#include "tensor/packed.h"
#include "tensor/packed_simd.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

std::vector<float>
mixedMagnitudeData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> data(n);
    for (size_t i = 0; i < n; ++i) {
        if (i % 2 == 0) {
            const double mag = std::exp2(rng.uniform(-20.0, 20.0));
            data[i] = static_cast<float>(rng.uniform() < 0.5 ? -mag : mag);
        } else {
            data[i] = static_cast<float>(rng.normal() * 4.0);
        }
    }
    return data;
}

void
BM_QuantizeTensor(benchmark::State &state, const char *format)
{
    const Quantizer q = Quantizer::byName(format);
    Rng rng(1);
    std::vector<float> data(16384);
    for (auto &v : data)
        v = static_cast<float>(rng.normal() * 4.0);
    for (auto _ : state) {
        std::vector<float> copy = data;
        q.quantizeInPlace(copy.data(), copy.size());
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK_CAPTURE(BM_QuantizeTensor, posit8, "posit8");
BENCHMARK_CAPTURE(BM_QuantizeTensor, posit16, "posit16");
BENCHMARK_CAPTURE(BM_QuantizeTensor, e4m3, "e4m3");
BENCHMARK_CAPTURE(BM_QuantizeTensor, e5m2, "e5m2");
BENCHMARK_CAPTURE(BM_QuantizeTensor, bf16, "bf16");

/// The seed binary-search path on the same data, for the LUT speedup
/// comparison.
void
BM_QuantizeTensorSearch(benchmark::State &state, const char *format)
{
    const Quantizer q = Quantizer::byName(format);
    Rng rng(1);
    std::vector<float> data(16384);
    for (auto &v : data)
        v = static_cast<float>(rng.normal() * 4.0);
    for (auto _ : state) {
        std::vector<float> copy = data;
        for (auto &v : copy)
            v = q.quantizeBySearch(v);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK_CAPTURE(BM_QuantizeTensorSearch, posit8, "posit8");
BENCHMARK_CAPTURE(BM_QuantizeTensorSearch, posit16, "posit16");
BENCHMARK_CAPTURE(BM_QuantizeTensorSearch, e4m3, "e4m3");

/// 1M-element quantizeInPlace (the acceptance-criteria size): LUT fast
/// path vs the seed binary search.
void
BM_Quantize1M(benchmark::State &state, const char *format, bool lut)
{
    const Quantizer q = Quantizer::byName(format);
    const std::vector<float> data = mixedMagnitudeData(1u << 20, 42);
    std::vector<float> copy(data.size());
    for (auto _ : state) {
        std::memcpy(copy.data(), data.data(),
                    data.size() * sizeof(float));
        if (lut) {
            q.quantizeInPlace(copy.data(), copy.size());
        } else {
            for (auto &v : copy)
                v = q.quantizeBySearch(v);
        }
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK_CAPTURE(BM_Quantize1M, posit8_lut, "posit8", true);
BENCHMARK_CAPTURE(BM_Quantize1M, posit8_search, "posit8", false);
BENCHMARK_CAPTURE(BM_Quantize1M, e4m3_lut, "e4m3", true);
BENCHMARK_CAPTURE(BM_Quantize1M, e4m3_search, "e4m3", false);

void
BM_PositEncodeDecode(benchmark::State &state)
{
    const PositSpec &spec = posit8_1();
    Rng rng(2);
    std::vector<double> values(4096);
    for (auto &v : values)
        v = rng.normal() * 8.0;
    for (auto _ : state) {
        double acc = 0.0;
        for (double v : values)
            acc += spec.decode(spec.encode(v));
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_PositEncodeDecode);

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a({n, n}), b({n, n}), c({n, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    for (auto _ : state) {
        gemm(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

/// The seed triple loop, for the blocked-vs-naive comparison.
void
BM_GemmNaive(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a({n, n}), b({n, n}), c({n, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    for (auto _ : state) {
        gemmReference(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(128)->Arg(512);

/// Decode-shaped GEMV (m = 1): the flattened tile space is what keeps
/// this parallel.
void
BM_GemvDecode(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    Tensor a({1, n}), b({n, n}), c({1, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    for (auto _ : state) {
        gemm(a, false, b, true, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n);
}
BENCHMARK(BM_GemvDecode)->Arg(512);

/// Packed 8-bit GEMM on the same square shapes as BM_Gemm: the fp32
/// operand is decoded from uint8 codes inside the tile micro-kernel.
void
BM_GemmQuantized(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const Quantizer q = Quantizer::byName("posit8");
    Rng rng(3);
    Tensor a({n, n}), b({n, n}), c({n, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    const PackedTensor pb = PackedTensor::pack(b, q);
    for (auto _ : state) {
        gemmQuantized(a, false, pb, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n * n);
}
BENCHMARK(BM_GemmQuantized)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

/// Decode-shaped packed GEMV (m = 1, weights in Linear's [out, in]
/// layout) — the serve engine's per-token hot call.
void
BM_GemvQuantizedDecode(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const Quantizer q = Quantizer::byName("posit8");
    Rng rng(5);
    Tensor a({1, n}), b({n, n}), c({1, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    const PackedTensor pb = PackedTensor::pack(b, q);
    for (auto _ : state) {
        gemmQuantized(a, false, pb, true, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n);
}
BENCHMARK(BM_GemvQuantizedDecode)->Arg(512);

void
BM_Softmax(benchmark::State &state, bool approx)
{
    const int k = 64;
    const PositSpec &spec = posit8_1();
    ApproxPositSoftmax sm(spec, ApproxExpConfig{}, approx, approx);
    Rng rng(4);
    std::vector<float> z(k), out(k), e(k);
    for (auto &v : z)
        v = static_cast<float>(rng.normal() * 2.0);
    double sum = 0.0;
    for (auto _ : state) {
        sm.forward(z.data(), out.data(), k, e.data(), &sum);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            k);
}
BENCHMARK_CAPTURE(BM_Softmax, exact_quantized, false);
BENCHMARK_CAPTURE(BM_Softmax, posit_approx, true);

/// --smoke: exercise (don't time) the fast paths against their
/// references; returns the process exit code.
int
smokeMain()
{
    int failures = 0;

    // LUT vs binary search on mixed-magnitude data, every grid format.
    for (const char *name :
         {"posit8", "posit(8,0)", "posit(8,2)", "e4m3", "e5m2",
          "posit16"}) {
        const Quantizer q = Quantizer::byName(name);
        std::vector<float> data = mixedMagnitudeData(1u << 16, 7);
        std::vector<float> fast = data;
        q.quantizeInPlace(fast.data(), fast.size());
        for (size_t i = 0; i < data.size(); ++i) {
            const float want = q.quantizeBySearch(data[i]);
            if (bits_from_float(fast[i]) != bits_from_float(want)) {
                std::fprintf(stderr,
                             "smoke: %s LUT mismatch at x=%a: %a != %a\n",
                             name, data[i], fast[i], want);
                ++failures;
                break;
            }
        }
    }

    // Blocked vs naive GEMM, all transpose combinations, odd shapes.
    {
        Rng rng(11);
        const int64_t m = 65, n = 130, k = 77;
        for (const bool ta : {false, true}) {
            for (const bool tb : {false, true}) {
                Tensor a(ta ? std::vector<int64_t>{k, m}
                            : std::vector<int64_t>{m, k});
                Tensor b(tb ? std::vector<int64_t>{n, k}
                            : std::vector<int64_t>{k, n});
                rng.fillNormal(a);
                rng.fillNormal(b);
                Tensor c0({m, n}), c1({m, n});
                rng.fillNormal(c0);
                c1 = c0;
                gemm(a, ta, b, tb, c0, 0.5f, 1.5f);
                gemmReference(a, ta, b, tb, c1, 0.5f, 1.5f);
                for (int64_t i = 0; i < c0.numel(); ++i) {
                    if (bits_from_float(c0.at(i)) !=
                        bits_from_float(c1.at(i))) {
                        std::fprintf(stderr,
                                     "smoke: gemm(ta=%d,tb=%d) mismatch "
                                     "at %lld\n",
                                     ta, tb,
                                     static_cast<long long>(i));
                        ++failures;
                        break;
                    }
                }
            }
        }
    }

    // Packed GEMM vs decode-then-blocked-gemm, with a fused epilogue
    // against the separate-pass reference.
    {
        const Quantizer q = Quantizer::byName("posit8");
        const Quantizer carrier = Quantizer::bf16();
        Rng rng(13);
        const int64_t m = 33, n = 130, k = 277;
        Tensor a({m, k}), w({n, k}), bias({n});
        rng.fillNormal(a);
        rng.fillNormal(w);
        rng.fillNormal(bias, 0.5);
        const PackedTensor pw = PackedTensor::pack(w, q);

        Tensor c0({m, n}), c1({m, n});
        gemmQuantized(a, false, pw, true, c0);
        gemm(a, false, pw.unpack(), true, c1);
        for (int64_t i = 0; i < c0.numel(); ++i) {
            if (bits_from_float(c0.at(i)) != bits_from_float(c1.at(i))) {
                std::fprintf(stderr,
                             "smoke: gemmQuantized mismatch at %lld\n",
                             static_cast<long long>(i));
                ++failures;
                break;
            }
        }

        GemmEpilogue fused, unfused;
        for (GemmEpilogue *e : {&fused, &unfused})
            e->bias(bias.data()).quant(&carrier).quant(&q).gelu().quant(
                &carrier);
        Tensor c2({m, n}), c3({m, n});
        gemmQuantized(a, false, pw, true, c2, 1.0f, 0.0f, &fused);
        gemmQuantizedReference(a, false, pw, true, c3, 1.0f, 0.0f,
                               &unfused);
        for (int64_t i = 0; i < c2.numel(); ++i) {
            if (bits_from_float(c2.at(i)) != bits_from_float(c3.at(i))) {
                std::fprintf(stderr,
                             "smoke: fused epilogue mismatch at %lld\n",
                             static_cast<long long>(i));
                ++failures;
                break;
            }
        }
    }

    if (failures == 0)
        std::printf("bench_kernels --smoke: OK\n");
    return failures == 0 ? 0 : 1;
}

/// Time one GEMM variant: average seconds per call over enough
/// iterations to cover ~0.2 s (2 warmup calls first).
template <typename Fn>
double
timeGemm(Fn &&fn)
{
    fn();
    fn();
    int iters = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++iters;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    } while (elapsed < 0.2 && iters < 1000);
    return elapsed / iters;
}

/// --gemm-json[=path]: packed-vs-fp32 sweep over decode-shaped GEMV and
/// prefill GEMM sizes, written as JSON (GFLOP/s, operand bytes moved,
/// resident weight bytes, speedup).
int
gemmJsonMain(const std::string &path)
{
    const Quantizer q = Quantizer::byName("posit8");
    struct Case {
        int64_t m, d;
    };
    // m = 1 / 8: single-stream and batched decode GEMVs; m = 64:
    // prefill-shaped. d covers the model ladder's hidden sizes.
    const std::vector<Case> cases = {
        {1, 256}, {1, 512}, {1, 1024}, {8, 512}, {64, 512}};

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"simd\": \"%s\",\n  \"sweep\": [\n",
                 detail::packedSimdName());
    std::printf("gemm sweep (simd=%s):\n", detail::packedSimdName());

    for (size_t ci = 0; ci < cases.size(); ++ci) {
        const int64_t m = cases[ci].m, n = cases[ci].d, k = cases[ci].d;
        Rng rng(21);
        Tensor a({m, k}), w({n, k}), c({m, n});
        rng.fillNormal(a);
        rng.fillNormal(w);
        const PackedTensor pw = PackedTensor::pack(w, q);
        // The fp32 baseline runs on the decoded (fake-quantized)
        // weights — the tensor the packed codes replace.
        const Tensor wf = pw.unpack();

        const double s_fp32 =
            timeGemm([&] { gemm(a, false, wf, true, c); });
        const double s_packed =
            timeGemm([&] { gemmQuantized(a, false, pw, true, c); });
        const double flops = 2.0 * static_cast<double>(m * n * k);
        const double g_fp32 = flops / s_fp32 / 1e9;
        const double g_packed = flops / s_packed / 1e9;
        // Operand traffic per call: activations + weights + output.
        const double mb_fp32 =
            4.0 * static_cast<double>(m * k + n * k + m * n);
        const double mb_packed =
            4.0 * static_cast<double>(m * k + m * n) +
            static_cast<double>(n * k);

        std::fprintf(
            f,
            "    {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
            "\"fp32_gflops\": %.3f, \"packed_gflops\": %.3f, "
            "\"speedup\": %.3f, \"fp32_weight_bytes\": %zu, "
            "\"packed_weight_bytes\": %zu, \"fp32_bytes_moved\": %.0f, "
            "\"packed_bytes_moved\": %.0f}%s\n",
            static_cast<long long>(m), static_cast<long long>(n),
            static_cast<long long>(k), g_fp32, g_packed,
            s_fp32 / s_packed, pw.fp32Bytes(), pw.packedBytes(), mb_fp32,
            mb_packed, ci + 1 < cases.size() ? "," : "");
        std::printf("  m=%-3lld d=%-5lld fp32 %8.3f GFLOP/s   packed "
                    "%8.3f GFLOP/s   speedup %.2fx\n",
                    static_cast<long long>(m), static_cast<long long>(n),
                    g_fp32, g_packed, s_fp32 / s_packed);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace
} // namespace qt8

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--smoke")
            return qt8::smokeMain();
        if (arg == "--gemm-json")
            return qt8::gemmJsonMain("BENCH_gemm.json");
        if (arg.rfind("--gemm-json=", 0) == 0)
            return qt8::gemmJsonMain(arg.substr(12));
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
