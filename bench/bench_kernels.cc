/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot kernels:
 * fake-quantization throughput per format, GEMM, exact vs approximate
 * posit softmax, and the posit codec.
 */
#include <benchmark/benchmark.h>

#include "numerics/posit_ops.h"
#include "numerics/quantizer.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace qt8 {
namespace {

void
BM_QuantizeTensor(benchmark::State &state, const char *format)
{
    const Quantizer q = Quantizer::byName(format);
    Rng rng(1);
    std::vector<float> data(16384);
    for (auto &v : data)
        v = static_cast<float>(rng.normal() * 4.0);
    for (auto _ : state) {
        std::vector<float> copy = data;
        q.quantizeInPlace(copy.data(), copy.size());
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK_CAPTURE(BM_QuantizeTensor, posit8, "posit8");
BENCHMARK_CAPTURE(BM_QuantizeTensor, posit16, "posit16");
BENCHMARK_CAPTURE(BM_QuantizeTensor, e4m3, "e4m3");
BENCHMARK_CAPTURE(BM_QuantizeTensor, e5m2, "e5m2");
BENCHMARK_CAPTURE(BM_QuantizeTensor, bf16, "bf16");

void
BM_PositEncodeDecode(benchmark::State &state)
{
    const PositSpec &spec = posit8_1();
    Rng rng(2);
    std::vector<double> values(4096);
    for (auto &v : values)
        v = rng.normal() * 8.0;
    for (auto _ : state) {
        double acc = 0.0;
        for (double v : values)
            acc += spec.decode(spec.encode(v));
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_PositEncodeDecode);

void
BM_Gemm(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(3);
    Tensor a({n, n}), b({n, n}), c({n, n});
    rng.fillNormal(a);
    rng.fillNormal(b);
    for (auto _ : state) {
        gemm(a, false, b, false, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void
BM_Softmax(benchmark::State &state, bool approx)
{
    const int k = 64;
    const PositSpec &spec = posit8_1();
    ApproxPositSoftmax sm(spec, ApproxExpConfig{}, approx, approx);
    Rng rng(4);
    std::vector<float> z(k), out(k), e(k);
    for (auto &v : z)
        v = static_cast<float>(rng.normal() * 2.0);
    double sum = 0.0;
    for (auto _ : state) {
        sm.forward(z.data(), out.data(), k, e.data(), &sum);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            k);
}
BENCHMARK_CAPTURE(BM_Softmax, exact_quantized, false);
BENCHMARK_CAPTURE(BM_Softmax, posit_approx, true);

} // namespace
} // namespace qt8

BENCHMARK_MAIN();
