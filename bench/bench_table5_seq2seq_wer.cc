/**
 * @file
 * Table 5: word error rate of the Whisper-like encoder-decoder ladder
 * on the synthetic transduction task, under posit(8,1), posit(8,2) and
 * E4M3 with incremental fusion. Larger models are more robust; the
 * widest-range format helps the smallest model.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Table 5: seq2seq WER vs fusion level");

    struct Row
    {
        ModelConfig cfg;
        int steps;
    };
    const std::vector<Row> rows = {
        {ModelConfig::whisperTinyLike(), budget(550)},
        {ModelConfig::whisperSmallLike(), budget(550)},
        {ModelConfig::whisperLargeLike(), budget(450)},
    };
    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"posit(8,1)", QuantConfig::posit8()},
        {"posit(8,2)", QuantConfig::posit8es2()},
        {"e4m3", QuantConfig::fp8()},
    };

    for (size_t i = 0; i < rows.size(); ++i) {
        const Seq2SeqTask task(rows[i].cfg.vocab, 36, 12);
        Seq2Seq model(rows[i].cfg, 7300 + i);
        QuantSession fp32(QuantConfig::fp32());
        TrainOptions opts;
        opts.steps = rows[i].steps;
        opts.batch = 12;
        opts.lr = 2e-3;
        trainSeq2Seq(model, fp32, task, opts);

        QuantSession bf(QuantConfig::bf16());
        const double bf16_wer =
            evalWer(model, bf, task, kEvalSeed, 1, 12);
        std::printf("\n%-20s BF16 WER %.2f\n", rows[i].cfg.name.c_str(),
                    bf16_wer);
        std::printf("  %-12s", "dtype");
        for (FusionLevel lvl : fusionLevels())
            std::printf(" %13s", toString(lvl));
        std::printf("\n");

        for (const auto &[label, cfg] : dtypes) {
            std::printf("  %-12s", label);
            for (FusionLevel lvl : fusionLevels()) {
                QuantSession qs(cfg.withFusion(lvl));
                std::printf(" %13.2f",
                            evalWer(model, qs, task, kEvalSeed, 1, 12));
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper shape: WER generally improves with fusion "
                "(with occasional non-monotonic bumps); larger models "
                "are more robust; the wider-range posit(8,2) helps the "
                "smallest model.\n");
    return 0;
}
