/**
 * @file
 * Decode throughput: KV-cached incremental greedy decoding vs the
 * uncached reference that re-runs the full teacher-forced forward (and
 * the encoder) for every emitted token.
 *
 * The uncached path is O(T^2) in decoded length T — step t pays a
 * forward over all t prefix positions — while the cached path is O(T):
 * each step projects and attends exactly one new position against the
 * cached quantized K/V panels. Both produce bit-identical tokens (the
 * quant grids are static and element-wise, so a row quantized alone
 * equals the same row quantized inside the full tensor).
 *
 * `bench_decode --smoke` skips timing and instead checks cached vs
 * uncached token equality across quant configs, exiting nonzero on any
 * mismatch — this is what the ctest entry runs.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "harness.h"
#include "tensor/ops.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/// Uncached: T full-prefix forwards, argmax-feeding like the cached
/// path, but without early EOS exit so both paths decode exactly
/// max_len positions (an untrained model rarely emits EOS anyway; the
/// fixed step count keeps the comparison honest).
double
timeUncached(Seq2Seq &model, QuantSession &qs, const Seq2SeqBatch &batch,
             int64_t max_len)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<int32_t> tgt(static_cast<size_t>(batch.batch), Vocab::kBos);
    for (int64_t t = 1; t <= max_len; ++t) {
        const Tensor logits =
            model.forward(qs, batch.src, batch.batch, batch.seq_src,
                          batch.src_pad.data(), tgt, t);
        std::vector<int32_t> next(
            static_cast<size_t>(batch.batch * (t + 1)));
        for (int64_t b = 0; b < batch.batch; ++b) {
            for (int64_t i = 0; i < t; ++i)
                next[static_cast<size_t>(b * (t + 1) + i)] =
                    tgt[static_cast<size_t>(b * t + i)];
            next[static_cast<size_t>(b * (t + 1) + t)] =
                static_cast<int32_t>(rowArgmax(logits, b * t + t - 1));
        }
        tgt = std::move(next);
    }
    return secondsSince(t0);
}

/// Cached: one encoder pass + max_len single-position steps.
double
timeCached(Seq2Seq &model, QuantSession &qs, const Seq2SeqBatch &batch,
           int64_t max_len)
{
    const auto t0 = std::chrono::steady_clock::now();
    DecodeState st =
        model.beginDecode(qs, batch.src, batch.batch, batch.seq_src,
                          batch.src_pad.data(), max_len);
    std::vector<int32_t> cur(static_cast<size_t>(batch.batch), Vocab::kBos);
    for (int64_t t = 1; t <= max_len; ++t) {
        const Tensor logits =
            model.forwardIncremental(qs, cur, st, batch.src_pad.data());
        for (int64_t b = 0; b < batch.batch; ++b)
            cur[static_cast<size_t>(b)] =
                static_cast<int32_t>(rowArgmax(logits, b));
    }
    return secondsSince(t0);
}

int
smokeMain()
{
    int failures = 0;
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    const Seq2SeqTask task(cfg.vocab, 20, 10);
    Rng rng(51);
    const Seq2SeqBatch batch = task.sample(rng, 3);

    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"bf16", QuantConfig::bf16()},
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
        {"posit8-approx", QuantConfig::posit8Approx()},
    };
    for (const auto &[label, qc] : dtypes) {
        Seq2Seq model(cfg, 9090);
        QuantSession qs(qc);
        const auto ref = model.greedyDecodeReference(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/12, Vocab::kBos, Vocab::kEos);
        const auto got = model.greedyDecode(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/12, Vocab::kBos, Vocab::kEos);
        if (ref != got) {
            std::fprintf(stderr,
                         "smoke: %s cached decode diverges from the "
                         "uncached reference\n",
                         label);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("bench_decode --smoke: OK\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            return smokeMain();
    }

    banner("Decode throughput: KV cache (O(T)) vs uncached (O(T^2))");

    ModelConfig cfg = ModelConfig::whisperTinyLike();
    const int64_t batch_size = 8, max_len = 64;
    const Seq2SeqTask task(cfg.vocab, 36, 12);
    Rng rng(52);
    const Seq2SeqBatch batch = task.sample(rng, batch_size);
    const int64_t tokens = batch_size * max_len;

    std::printf("model=%s batch=%lld max_len=%lld (uncached re-runs the "
                "full prefix per step: O(T^2); cached appends one "
                "position: O(T))\n\n",
                cfg.name.c_str(), static_cast<long long>(batch_size),
                static_cast<long long>(max_len));
    std::printf("%-14s %14s %14s %9s\n", "dtype", "uncached tok/s",
                "cached tok/s", "speedup");

    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"fp32", QuantConfig::fp32()},
        {"bf16", QuantConfig::bf16()},
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
    };
    for (const auto &[label, qc] : dtypes) {
        Seq2Seq model(cfg, 9191);
        QuantSession qs(qc);
        // Warm one cached pass so first-touch allocation is off the
        // clock for both variants.
        timeCached(model, qs, batch, 8);
        const double slow = timeUncached(model, qs, batch, max_len);
        const double fast = timeCached(model, qs, batch, max_len);
        std::printf("%-14s %14.0f %14.0f %8.1fx\n", label,
                    tokens / slow, tokens / fast, slow / fast);
    }
    return 0;
}
