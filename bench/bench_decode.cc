/**
 * @file
 * Decode throughput: KV-cached incremental greedy decoding vs the
 * uncached reference that re-runs the full teacher-forced forward (and
 * the encoder) for every emitted token.
 *
 * The uncached path is O(T^2) in decoded length T — step t pays a
 * forward over all t prefix positions — while the cached path is O(T):
 * each step projects and attends exactly one new position against the
 * cached quantized K/V panels. Both produce bit-identical tokens (the
 * quant grids are static and element-wise, so a row quantized alone
 * equals the same row quantized inside the full tensor).
 *
 * `bench_decode --smoke` skips timing and instead checks cached vs
 * uncached token equality across quant configs, exiting nonzero on any
 * mismatch — this is what the ctest entry runs. `--kv-packed-smoke`
 * repeats the check with `QuantConfig::kv_packed`, so CI decodes
 * through packed uint8 KV panels on every build. `--kv-json[=path]`
 * writes BENCH_kv.json: resident KV bytes per slot (packed vs fp32)
 * and decode-shaped attention-GEMV throughput (decode-in-kernel packed
 * reads vs extract+gemm over the fp32 cache).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "data/tasks.h"
#include "harness.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "tensor/packed.h"
#include "tensor/packed_simd.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/// Uncached: T full-prefix forwards, argmax-feeding like the cached
/// path, but without early EOS exit so both paths decode exactly
/// max_len positions (an untrained model rarely emits EOS anyway; the
/// fixed step count keeps the comparison honest).
double
timeUncached(Seq2Seq &model, QuantSession &qs, const Seq2SeqBatch &batch,
             int64_t max_len)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<int32_t> tgt(static_cast<size_t>(batch.batch), Vocab::kBos);
    for (int64_t t = 1; t <= max_len; ++t) {
        const Tensor logits =
            model.forward(qs, batch.src, batch.batch, batch.seq_src,
                          batch.src_pad.data(), tgt, t);
        std::vector<int32_t> next(
            static_cast<size_t>(batch.batch * (t + 1)));
        for (int64_t b = 0; b < batch.batch; ++b) {
            for (int64_t i = 0; i < t; ++i)
                next[static_cast<size_t>(b * (t + 1) + i)] =
                    tgt[static_cast<size_t>(b * t + i)];
            next[static_cast<size_t>(b * (t + 1) + t)] =
                static_cast<int32_t>(rowArgmax(logits, b * t + t - 1));
        }
        tgt = std::move(next);
    }
    return secondsSince(t0);
}

/// Cached: one encoder pass + max_len single-position steps.
double
timeCached(Seq2Seq &model, QuantSession &qs, const Seq2SeqBatch &batch,
           int64_t max_len)
{
    const auto t0 = std::chrono::steady_clock::now();
    DecodeState st =
        model.beginDecode(qs, batch.src, batch.batch, batch.seq_src,
                          batch.src_pad.data(), max_len);
    std::vector<int32_t> cur(static_cast<size_t>(batch.batch), Vocab::kBos);
    for (int64_t t = 1; t <= max_len; ++t) {
        const Tensor logits =
            model.forwardIncremental(qs, cur, st, batch.src_pad.data());
        for (int64_t b = 0; b < batch.batch; ++b)
            cur[static_cast<size_t>(b)] =
                static_cast<int32_t>(rowArgmax(logits, b));
    }
    return secondsSince(t0);
}

int
smokeMain(bool kv_packed)
{
    int failures = 0;
    ModelConfig cfg = ModelConfig::whisperTinyLike();
    const Seq2SeqTask task(cfg.vocab, 20, 10);
    Rng rng(51);
    const Seq2SeqBatch batch = task.sample(rng, 3);

    std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"bf16", QuantConfig::bf16()},
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
        {"posit8-approx", QuantConfig::posit8Approx()},
    };
    if (kv_packed) {
        // The packed sweep covers every packable grid plus bf16, which
        // must fall back to the fp32 cache transparently.
        dtypes.push_back({"posit(8,2)", QuantConfig::posit8es2()});
        dtypes.push_back(
            {"e5m2", QuantConfig::eightBit("e5m2", Quantizer::byName("e5m2"),
                                           Quantizer::byName("e5m2"))});
    }
    for (auto &[label, qc] : dtypes) {
        qc.kv_packed = kv_packed;
        Seq2Seq model(cfg, 9090);
        QuantSession qs(qc);
        const auto ref = model.greedyDecodeReference(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/12, Vocab::kBos, Vocab::kEos);
        const auto got = model.greedyDecode(
            qs, batch.src, batch.batch, batch.seq_src, batch.src_pad.data(),
            /*max_len=*/12, Vocab::kBos, Vocab::kEos);
        if (ref != got) {
            std::fprintf(stderr,
                         "smoke%s: %s cached decode diverges from the "
                         "uncached reference\n",
                         kv_packed ? " (kv-packed)" : "", label);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("bench_decode %s: OK\n",
                    kv_packed ? "--kv-packed-smoke" : "--smoke");
    return failures == 0 ? 0 : 1;
}

/// Median-free micro-timer: repeat until 0.2 s or 1000 iters.
template <typename F>
double
timeLoop(F &&fn)
{
    fn(); // warm
    int iters = 0;
    double elapsed = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    do {
        fn();
        ++iters;
        elapsed = secondsSince(t0);
    } while (elapsed < 0.2 && iters < 1000);
    return elapsed / iters;
}

/// --kv-json[=path]: BENCH_kv.json — resident KV bytes per slot and
/// m=1 decode-shaped attention-GEMV throughput, packed codes vs the
/// fp32 carrier cache (whose per-head path is extract + gemm, exactly
/// what forwardIncremental does when unpacked).
int
kvJsonMain(const std::string &path)
{
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    const Quantizer *fmt = qc.kvPackedFormat();
    if (fmt == nullptr) {
        std::fprintf(stderr, "posit8 must be kv-packable\n");
        return 1;
    }

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"simd\": \"%s\",\n", detail::packedSimdName());
    std::printf("KV memory (simd=%s):\n", detail::packedSimdName());

    // Resident bytes per slot across cache geometries: the serve-demo
    // shape and larger edge-model shapes.
    struct Geom {
        int64_t capacity, d_model;
    };
    const std::vector<Geom> geoms = {{64, 64}, {256, 256}, {256, 512}};
    std::fprintf(f, "  \"kv_bytes_per_slot\": [\n");
    for (size_t gi = 0; gi < geoms.size(); ++gi) {
        const Geom &g = geoms[gi];
        KVSlots packed, plain;
        packed.reset(1, g.capacity, g.d_model, fmt);
        plain.reset(1, g.capacity, g.d_model);
        const size_t pb = packed.residentBytes();
        const size_t fb = plain.residentBytes();
        std::fprintf(f,
                     "    {\"capacity\": %lld, \"d_model\": %lld, "
                     "\"fp32_bytes\": %zu, \"packed_bytes\": %zu, "
                     "\"ratio\": %.2f}%s\n",
                     static_cast<long long>(g.capacity),
                     static_cast<long long>(g.d_model), fb, pb,
                     static_cast<double>(fb) / static_cast<double>(pb),
                     gi + 1 < geoms.size() ? "," : "");
        std::printf("  cap=%-4lld d_model=%-4lld fp32 %8zu B/slot   "
                    "packed %7zu B/slot   %.2fx smaller\n",
                    static_cast<long long>(g.capacity),
                    static_cast<long long>(g.d_model), fb, pb,
                    static_cast<double>(fb) / static_cast<double>(pb));
    }
    std::fprintf(f, "  ],\n");

    // Attention-GEMV throughput on m=1 decode shapes: one step's QK^T +
    // attn·V over all heads against a cache of `len` positions.
    const int64_t d_model = 512, d_head = 64;
    const int64_t n_heads = d_model / d_head;
    Rng rng(23);
    std::printf("attention GEMV, one m=1 decode step over all %lld "
                "heads (d_model=%lld d_head=%lld):\n",
                static_cast<long long>(n_heads),
                static_cast<long long>(d_model),
                static_cast<long long>(d_head));
    std::fprintf(f, "  \"attn_gemv\": [\n");
    const std::vector<int64_t> lens = {64, 256, 1024};
    for (size_t li = 0; li < lens.size(); ++li) {
        const int64_t len = lens[li];
        KVCache packed, plain;
        packed.reset(1, len, d_model, fmt);
        plain.reset(1, len, d_model);
        for (int64_t t = 0; t < len; ++t) {
            Tensor kr({1, d_model}), vr({1, d_model});
            rng.fillNormal(kr);
            rng.fillNormal(vr);
            qc.fwd.quantizeInPlace(kr.data(),
                                   static_cast<size_t>(d_model));
            qc.fwd.quantizeInPlace(vr.data(),
                                   static_cast<size_t>(d_model));
            packed.append(kr, vr);
            plain.append(kr, vr);
        }
        Tensor q({1, d_head}), scores({1, len}), ctx({1, d_head});
        Tensor kh({len, d_head}), vh({len, d_head});
        rng.fillNormal(q);
        PackedKvScratch scratch;

        const double s_packed = timeLoop([&] {
            for (int64_t h = 0; h < n_heads; ++h) {
                packedDotRows(q.data(),
                              packed.k_codes.data() + h * d_head,
                              packed.table.data(), len, d_head, d_model,
                              scores.data(), scratch);
                packedAccumRows(scores.data(),
                                packed.v_codes.data() + h * d_head,
                                packed.table.data(), len, d_head,
                                d_model, ctx.data(), scratch);
            }
        });
        const double s_fp32 = timeLoop([&] {
            for (int64_t h = 0; h < n_heads; ++h) {
                for (int64_t r = 0; r < len; ++r) {
                    std::memcpy(kh.data() + r * d_head,
                                plain.k.data() + r * d_model + h * d_head,
                                sizeof(float) *
                                    static_cast<size_t>(d_head));
                    std::memcpy(vh.data() + r * d_head,
                                plain.v.data() + r * d_model + h * d_head,
                                sizeof(float) *
                                    static_cast<size_t>(d_head));
                }
                gemm(q, false, kh, true, scores);
                gemm(scores, false, vh, false, ctx);
            }
        });
        // Panel traffic per step: both GEMVs read the full K and V
        // panels once — 2*len*d_model cells at 4 B (fp32) or 1 B
        // (codes).
        const double cells = 2.0 * static_cast<double>(len * d_model);
        const double gb_fp32 = cells * 4.0 / s_fp32 / 1e9;
        const double gb_packed = cells * 1.0 / s_packed / 1e9;
        std::fprintf(f,
                     "    {\"len\": %lld, \"d_model\": %lld, "
                     "\"d_head\": %lld, \"fp32_us\": %.2f, "
                     "\"packed_us\": %.2f, \"speedup\": %.3f, "
                     "\"fp32_panel_gbps\": %.3f, "
                     "\"packed_panel_gbps\": %.3f}%s\n",
                     static_cast<long long>(len),
                     static_cast<long long>(d_model),
                     static_cast<long long>(d_head), s_fp32 * 1e6,
                     s_packed * 1e6, s_fp32 / s_packed, gb_fp32,
                     gb_packed, li + 1 < lens.size() ? "," : "");
        std::printf("  len=%-5lld fp32 %8.2f us   packed %8.2f us   "
                    "speedup %.2fx\n",
                    static_cast<long long>(len), s_fp32 * 1e6,
                    s_packed * 1e6, s_fp32 / s_packed);
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--smoke")
            return smokeMain(false);
        if (arg == "--kv-packed-smoke")
            return smokeMain(true);
        if (arg == "--kv-json")
            return kvJsonMain("BENCH_kv.json");
        if (arg.rfind("--kv-json=", 0) == 0)
            return kvJsonMain(arg.substr(10));
    }

    banner("Decode throughput: KV cache (O(T)) vs uncached (O(T^2))");

    ModelConfig cfg = ModelConfig::whisperTinyLike();
    const int64_t batch_size = 8, max_len = 64;
    const Seq2SeqTask task(cfg.vocab, 36, 12);
    Rng rng(52);
    const Seq2SeqBatch batch = task.sample(rng, batch_size);
    const int64_t tokens = batch_size * max_len;

    std::printf("model=%s batch=%lld max_len=%lld (uncached re-runs the "
                "full prefix per step: O(T^2); cached appends one "
                "position: O(T))\n\n",
                cfg.name.c_str(), static_cast<long long>(batch_size),
                static_cast<long long>(max_len));
    std::printf("%-14s %14s %14s %9s\n", "dtype", "uncached tok/s",
                "cached tok/s", "speedup");

    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"fp32", QuantConfig::fp32()},
        {"bf16", QuantConfig::bf16()},
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
    };
    for (const auto &[label, qc] : dtypes) {
        Seq2Seq model(cfg, 9191);
        QuantSession qs(qc);
        // Warm one cached pass so first-touch allocation is off the
        // clock for both variants.
        timeCached(model, qs, batch, 8);
        const double slow = timeUncached(model, qs, batch, max_len);
        const double fast = timeCached(model, qs, batch, max_len);
        std::printf("%-14s %14.0f %14.0f %8.1fx\n", label,
                    tokens / slow, tokens / fast, slow / fast);
    }
    return 0;
}
