#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "util/trace.h"

namespace qt8::bench {

bool
quickMode()
{
    const char *env = std::getenv("QT8_QUICK");
    return env != nullptr && env[0] == '1';
}

int
budget(int full_steps)
{
    return quickMode() ? std::max(20, full_steps / 8) : full_steps;
}

const std::vector<FusionLevel> &
fusionLevels()
{
    static const std::vector<FusionLevel> levels = {
        FusionLevel::kNone, FusionLevel::kAttnScaling,
        FusionLevel::kActivation, FusionLevel::kLayerNorm,
        FusionLevel::kResidual};
    return levels;
}

void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
    // Benches run under QT8_TRACE mark their sections in the trace, so
    // span clusters can be attributed to the bench that produced them.
    if (trace::collecting())
        trace::noteInstant("bench: " + title);
}

void
trainSpanBaseline(EncoderSpanQA &model, const SpanTask &task, int steps,
                  uint64_t data_seed)
{
    QuantSession qs(QuantConfig::fp32());
    TrainOptions opts;
    opts.steps = steps;
    opts.batch = 16;
    opts.lr = 2e-3;
    opts.data_seed = data_seed;
    trainSpan(model, qs, task, opts);
}

void
pretrainBackbone(TransformerEncoder &dst, const ModelConfig &cfg,
                 uint64_t seed, int span_steps, int qnli_steps)
{
    QuantSession qs(QuantConfig::fp32());

    const SpanTask span_task(cfg.vocab, 24);
    EncoderSpanQA span_model(cfg, seed);
    TrainOptions sopts;
    sopts.steps = span_steps;
    sopts.batch = 16;
    sopts.lr = 2e-3;
    sopts.data_seed = seed + 17;
    trainSpan(span_model, qs, span_task, sopts);

    const PairTask qnli(PairTask::Kind::kQnli, cfg.vocab, 25);
    EncoderClassifier qnli_model(cfg, qnli.numClasses(), seed + 1);
    ParamList se, qe;
    span_model.encoder.collectParams(se);
    qnli_model.encoder.collectParams(qe);
    copyParamValues(qe, se);
    TrainOptions qopts;
    qopts.steps = qnli_steps;
    qopts.batch = 16;
    qopts.lr = 1e-3;
    qopts.data_seed = seed + 31;
    trainCls(qnli_model, qs, qnli, qopts);

    ParamList dst_params, src_params;
    dst.collectParams(dst_params);
    qnli_model.encoder.collectParams(src_params);
    copyParamValues(dst_params, src_params);
}

} // namespace qt8::bench
