/**
 * @file
 * Figure 12: MAC unit area/power per data format (without codec logic)
 * plus the Posit8 encoder/decoder costs, across frequencies.
 */
#include <cstdio>

#include "harness.h"
#include "hw/accelerator.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Figure 12 (top): MAC area/power per format");
    std::printf("%8s", "MHz");
    for (const char *d : {"fp32", "bf16", "posit8", "fp8", "e4m3",
                          "e5m2"})
        std::printf(" | %9s um2/mW", d);
    std::printf("\n");

    for (double f : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        std::printf("%8.0f", f);
        const auto fp32 = synthesize(macUnit(kFp32, kFp32), f);
        std::printf(" | %8.0f/%6.3f", fp32.area_um2, fp32.powerMw());
        for (const char *d : {"bf16", "posit8", "fp8", "e4m3", "e5m2"}) {
            const auto m =
                synthesize(macUnit(macInputFormat(d), accumFormat(d)), f);
            std::printf(" | %8.0f/%6.3f", m.area_um2, m.powerMw());
        }
        std::printf("\n");
    }

    bench::banner("Figure 12 (bottom): Posit8 encoder/decoder");
    std::printf("%8s | %12s %8s | %12s %8s\n", "MHz", "decoder um2",
                "mW", "encoder um2", "mW");
    for (double f : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        const auto dec = synthesize(positDecoder(8, 1), f);
        const auto enc = synthesize(positEncoder(8, 1), f);
        std::printf("%8.0f | %12.0f %8.3f | %12.0f %8.3f\n", f,
                    dec.area_um2, dec.powerMw(), enc.area_um2,
                    enc.powerMw());
    }

    const auto p8 = synthesize(macUnit(kE5M4, kBf16), 200.0);
    const auto f8 = synthesize(macUnit(kE5M3, kBf16), 200.0);
    const auto b16 = synthesize(macUnit(kBf16, kFp32), 200.0);
    std::printf("\nPosit8 MAC is %.0f%% larger than hybrid FP8 (extra "
                "fraction bit); both are %.0f%%+ smaller than BF16.\n",
                100.0 * (p8.area_um2 / f8.area_um2 - 1.0),
                100.0 * (1.0 - p8.area_um2 / b16.area_um2));
    return 0;
}
