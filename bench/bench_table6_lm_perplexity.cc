/**
 * @file
 * Table 6: held-out perplexity of the causal-LM ladder (GPT-2-like and
 * LLaMA-like sizes) under posit(8,1), posit(8,2) and E4M3 with
 * incremental fusion, using sliding-window evaluation (window 64,
 * stride 32 — the scaled version of the paper's 1024/512).
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Table 6: LM perplexity vs fusion level");

    struct Row
    {
        ModelConfig cfg;
        int steps;
    };
    const std::vector<Row> rows = {
        {ModelConfig::gpt2LargeLike(), budget(320)},
        {ModelConfig::gpt2XlLike(), budget(320)},
        {ModelConfig::llamaLike(), budget(280)},
    };
    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"posit(8,1)", QuantConfig::posit8()},
        {"posit(8,2)", QuantConfig::posit8es2()},
        {"e4m3", QuantConfig::fp8()},
    };

    const int64_t kEvalTokens = 1200;
    const int64_t kWindow = 64;
    const int64_t kStride = 32;

    for (size_t i = 0; i < rows.size(); ++i) {
        const LmTask task(rows[i].cfg.vocab, 40 + i);
        CausalLM model(rows[i].cfg, 7400 + i);
        QuantSession fp32(QuantConfig::fp32());
        TrainOptions opts;
        opts.steps = rows[i].steps;
        opts.batch = 8;
        opts.lr = 2e-3;
        trainLm(model, fp32, task, kWindow, opts);

        QuantSession bf(QuantConfig::bf16());
        const double bf16_ppl = evalPerplexity(
            model, bf, task, kEvalSeed, kEvalTokens, kWindow, kStride);
        std::printf("\n%-18s BF16 perplexity %.2f\n",
                    rows[i].cfg.name.c_str(), bf16_ppl);
        std::printf("  %-12s", "dtype");
        for (FusionLevel lvl : fusionLevels())
            std::printf(" %13s", toString(lvl));
        std::printf("\n");

        for (const auto &[label, cfg] : dtypes) {
            std::printf("  %-12s", label);
            for (FusionLevel lvl : fusionLevels()) {
                QuantSession qs(cfg.withFusion(lvl));
                std::printf(" %13.2f",
                            evalPerplexity(model, qs, task, kEvalSeed,
                                           kEvalTokens, kWindow,
                                           kStride));
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper shape: perplexity decreases with fusion; "
                "larger models degrade less; posit formats edge out "
                "E4M3 on the largest model (outliers in residuals).\n");
    return 0;
}
