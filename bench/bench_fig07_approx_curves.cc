/**
 * @file
 * Figure 7: (left) the posit bitwise reciprocal as a piece-wise linear
 * function connecting powers of two; (right) the approximate
 * exponential raw / thresholded / thresholded+shifted against exp(x).
 */
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "numerics/posit_ops.h"

using namespace qt8;

int
main()
{
    bench::banner("Figure 7 (left): posit reciprocal vs exact 1/x");
    const PositSpec &p = posit8_1();
    std::printf("%8s %12s %12s\n", "x", "posit 1/x", "exact 1/x");
    for (double x = 0.25; x <= 8.0; x *= std::pow(2.0, 0.25)) {
        std::printf("%8.4f %12.6f %12.6f\n", p.quantize(x),
                    approxReciprocal(p, x), 1.0 / p.quantize(x));
    }

    bench::banner(
        "Figure 7 (right): approximate exponential variants vs exp(x)");
    ApproxExpConfig raw;
    raw.theta = -1e9;
    raw.shift = false;
    ApproxExpConfig thresholded;
    thresholded.theta = -4.0;
    thresholded.shift = false;
    ApproxExpConfig shifted; // theta=-4, eps=1.125

    std::printf("%7s %10s %12s %12s %10s\n", "x", "raw", "thresholded",
                "shifted", "exp(x)");
    for (double x = -8.0; x <= 0.01; x += 0.5) {
        std::printf("%7.2f %10.5f %12.5f %12.5f %10.5f\n", x,
                    approxExp(p, x, raw), approxExp(p, x, thresholded),
                    approxExp(p, x, shifted), std::exp(x));
    }
    std::printf("\nThe raw curve fails to converge to 0 (attention-mask "
                "leakage); thresholding pins the tail; the epsilon shift "
                "hugs exp(x) above the threshold.\n");
    return 0;
}
