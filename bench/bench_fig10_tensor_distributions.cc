/**
 * @file
 * Figure 10: value distributions of weights, activations and activation
 * gradients during fine-tuning, against the representable ranges of
 * E4M3 and Posit8. Weights/activations fit; raw activation gradients
 * largely underflow both formats, motivating per-tensor scaling
 * (section 5.1).
 */
#include <cmath>
#include <cstdio>
#include <map>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

/// log2-bucket histogram of |x| (bucket -inf for zeros).
class LogHistogram
{
  public:
    void
    add(const Tensor &t)
    {
        const float *p = t.data();
        for (int64_t i = 0; i < t.numel(); ++i) {
            const double a = std::fabs(static_cast<double>(p[i]));
            if (a == 0.0) {
                ++zeros_;
                continue;
            }
            const int b = static_cast<int>(std::floor(std::log2(a)));
            ++buckets_[std::clamp(b, -30, 14)];
            ++count_;
        }
    }

    void
    print(const char *name) const
    {
        std::printf("\n%s (nonzero count %lld, zero count %lld)\n", name,
                    static_cast<long long>(count_),
                    static_cast<long long>(zeros_));
        std::printf("  %-10s %10s %8s %s\n", "log2|x|", "count",
                    "share", "in-range");
        for (const auto &[b, c] : buckets_) {
            const double share =
                100.0 * static_cast<double>(c) /
                static_cast<double>(count_);
            if (share < 0.05)
                continue;
            const double lo = std::exp2(b);
            const bool in_e4m3 = lo >= std::exp2(-9) && lo < 448;
            const bool in_p8 =
                lo >= std::exp2(-12) && lo < std::exp2(12);
            std::printf("  [2^%-4d ) %10lld %7.2f%% %s%s\n", b,
                        static_cast<long long>(c), share,
                        in_e4m3 ? "e4m3 " : "     ",
                        in_p8 ? "posit8" : "");
        }
    }

    double
    fractionBelow(double threshold) const
    {
        int64_t below = zeros_;
        for (const auto &[b, c] : buckets_)
            if (std::exp2(b + 1) <= threshold)
                below += c;
        return static_cast<double>(below) /
               static_cast<double>(count_ + zeros_);
    }

  private:
    std::map<int, int64_t> buckets_;
    int64_t count_ = 0;
    int64_t zeros_ = 0;
};

} // namespace

int
main()
{
    banner("Figure 10: tensor distributions during fine-tuning");

    const ModelConfig cfg = ModelConfig::mobileBertTinyLike();
    TransformerEncoder backbone(cfg, 7701);
    pretrainBackbone(backbone, cfg, 7702, budget(450), budget(180));

    const SpanTask task(cfg.vocab, 24);
    EncoderSpanQA model(cfg, 7703);
    ParamList dst, src;
    model.encoder.collectParams(dst);
    backbone.collectParams(src);
    copyParamValues(dst, src);
    model.enableLora(8, 2.0f, true);

    LogHistogram weights, acts, grads;
    QuantSession qs(QuantConfig::fp32());
    qs.fwd_tap = [&acts](OpClass c, const Tensor &t) {
        if (c == OpClass::kGemm)
            acts.add(t);
    };
    qs.bwd_tap = [&grads](OpClass c, const Tensor &t) {
        if (c == OpClass::kGemm)
            grads.add(t);
    };

    // A few fine-tuning steps with taps armed.
    TrainOptions opts;
    opts.steps = 5;
    opts.batch = 16;
    opts.lr = 5e-3;
    trainSpan(model, qs, task, opts);

    ParamList params;
    model.collectParams(params);
    for (Param *p : params)
        weights.add(p->value);

    weights.print("weights");
    acts.print("activations (GEMM inputs)");
    grads.print("activation gradients (unscaled)");

    std::printf("\nFraction of activation-gradient values below posit8 "
                "minpos (2^-12): %.1f%%\n",
                100.0 * grads.fractionBelow(std::exp2(-12)));
    std::printf("Fraction below E4M3 min subnormal (2^-9): %.1f%%\n",
                100.0 * grads.fractionBelow(std::exp2(-9)));
    std::printf("=> raw 8-bit gradient storage underflows; per-tensor "
                "scaling (section 5.1) rescues it.\n");
    return 0;
}
