/**
 * @file
 * Figure 4: decimal accuracy of FP8 (E5M2, E4M3) vs Posit8 across the
 * representable magnitude range. Posit8 peaks around |x| = 1 (tapered
 * precision) while FP8 is flat across its normal range; E5M2 trades
 * accuracy for range versus E4M3.
 */
#include <cstdio>

#include "harness.h"
#include "numerics/decimal_accuracy.h"

using namespace qt8;

int
main()
{
    bench::banner("Figure 4: decimal accuracy vs magnitude");

    const Quantizer p8 = Quantizer::byName("posit8");
    const Quantizer e4 = Quantizer::byName("e4m3");
    const Quantizer e5 = Quantizer::byName("e5m2");

    std::printf("%8s %10s %10s %10s\n", "log2(x)", "posit8", "e4m3",
                "e5m2");
    const auto sp = decimalAccuracySweep(p8, -18, 18, 1.0);
    const auto s4 = decimalAccuracySweep(e4, -18, 18, 1.0);
    const auto s5 = decimalAccuracySweep(e5, -18, 18, 1.0);
    double peak_p8 = 0, peak_at = 0;
    for (size_t i = 0; i < sp.size(); ++i) {
        std::printf("%8.1f %10.3f %10.3f %10.3f\n", sp[i].log2_x,
                    sp[i].accuracy, s4[i].accuracy, s5[i].accuracy);
        if (sp[i].accuracy > peak_p8) {
            peak_p8 = sp[i].accuracy;
            peak_at = sp[i].log2_x;
        }
    }
    std::printf("\nposit8 peak accuracy %.3f decimals at log2|x| ~ %.0f "
                "(tapered precision, Figure 4)\n",
                peak_p8, peak_at);
    return 0;
}
