/**
 * @file
 * Table 7: LoRA fine-tuning accuracy across data types. Backbones are
 * pre-trained in FP32 (the stand-in for hub checkpoints); each task is
 * then fine-tuned with LoRA under BF16, Posit8, Posit8 with the full
 * approximate softmax, and FP8 (E4M3 fwd / E5M2 bwd), plus a full
 * FP32 fine-tuning reference. MobileBERT-like models put LoRA on every
 * dense layer; RoBERTa-like models adapt q/v only with rank 8
 * (section 6.1). Per-tensor scaling is on everywhere.
 */
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

struct TaskSpec
{
    const char *name;
    PairTask::Kind kind;
};

double
finetuneCls(const ModelConfig &cfg, TransformerEncoder &backbone,
            PairTask::Kind kind, const QuantConfig &qcfg, bool lora,
            bool all_dense, uint64_t seed)
{
    const PairTask task(kind, cfg.vocab, 25);
    EncoderClassifier model(cfg, task.numClasses(), seed);
    ParamList dst, src;
    model.encoder.collectParams(dst);
    backbone.collectParams(src);
    copyParamValues(dst, src);
    if (lora)
        model.enableLora(8, 2.0f, all_dense);

    QuantSession qs(qcfg);
    TrainOptions opts;
    opts.steps = budget(200);
    opts.batch = 16;
    opts.lr = lora ? 5e-3 : 2e-3;
    opts.data_seed = seed + 7;
    trainCls(model, qs, task, opts);
    QuantSession eval_qs(qcfg);
    return evalClsAccuracy(model, eval_qs, task, kEvalSeed, 3, 32);
}

double
finetuneSpan(const ModelConfig &cfg, TransformerEncoder &backbone,
             const QuantConfig &qcfg, bool lora, bool all_dense,
             uint64_t seed)
{
    const SpanTask task(cfg.vocab, 24);
    EncoderSpanQA model(cfg, seed);
    ParamList dst, src;
    model.encoder.collectParams(dst);
    backbone.collectParams(src);
    copyParamValues(dst, src);
    if (lora)
        model.enableLora(8, 2.0f, all_dense);

    QuantSession qs(qcfg);
    TrainOptions opts;
    opts.steps = budget(200);
    opts.batch = 16;
    opts.lr = lora ? 5e-3 : 2e-3;
    opts.data_seed = seed + 7;
    trainSpan(model, qs, task, opts);
    QuantSession eval_qs(qcfg);
    return evalSpanF1(model, eval_qs, task, kEvalSeed, 3, 32);
}

} // namespace

int
main()
{
    banner("Table 7: LoRA fine-tuning accuracy per data type");

    struct ModelRow
    {
        ModelConfig cfg;
        bool lora_all_dense; ///< MobileBERT recipe vs RoBERTa q/v-only.
    };
    std::vector<ModelRow> model_rows = {
        {ModelConfig::mobileBertTinyLike(), true},
    };
    // QT8_FULL=1 runs the paper's full four-model ladder.
    if (std::getenv("QT8_FULL") != nullptr) {
        model_rows.push_back({ModelConfig::mobileBertLike(), true});
        model_rows.push_back(
            {ModelConfig::bertBaseLike(), false}); // roberta-base-like
        model_rows.push_back(
            {ModelConfig::bertLargeLike(), false}); // roberta-large-like
    }
    const std::vector<TaskSpec> tasks = {
        {"mnli", PairTask::Kind::kMnli},
        {"qnli", PairTask::Kind::kQnli},
        {"mrpc", PairTask::Kind::kMrpc},
        {"sst2", PairTask::Kind::kSst2},
    };

    struct Method
    {
        const char *name;
        QuantConfig cfg;
        bool lora;
    };
    const std::vector<Method> methods = {
        {"Full Training FP32", QuantConfig::fp32(), false},
        {"LoRA BF16", QuantConfig::bf16(), true},
        {"LoRA Posit8", QuantConfig::posit8(), true},
        {"LoRA Posit8 Approx", QuantConfig::posit8Approx(), true},
        {"LoRA FP8", QuantConfig::fp8(), true},
    };

    for (size_t mi = 0; mi < model_rows.size(); ++mi) {
        const auto &row = model_rows[mi];
        std::printf("\n%s (LoRA on %s)\n", row.cfg.name.c_str(),
                    row.lora_all_dense ? "every dense layer"
                                       : "q/v projections, r=8");

        TransformerEncoder backbone(row.cfg, 8100 + mi);
        pretrainBackbone(backbone, row.cfg, 8200 + mi, budget(550),
                         budget(200));

        std::printf("  %-20s", "method");
        for (const auto &t : tasks)
            std::printf(" %7s", t.name);
        std::printf(" %7s\n", "squad");

        for (const auto &method : methods) {
            std::printf("  %-20s", method.name);
            for (const auto &t : tasks) {
                const double acc = finetuneCls(
                    row.cfg, backbone, t.kind, method.cfg, method.lora,
                    row.lora_all_dense, 8300 + mi * 100);
                std::printf(" %7.1f", acc);
                std::fflush(stdout);
            }
            const double f1 =
                finetuneSpan(row.cfg, backbone, method.cfg, method.lora,
                             row.lora_all_dense, 8350 + mi * 100);
            std::printf(" %7.1f\n", f1);
        }
    }

    std::printf("\nPaper shape: Posit8 / Posit8-approx / FP8 LoRA all "
                "land within ~1%% of BF16 LoRA, using identical "
                "hyperparameters; approximation does not hurt "
                "training.\n");
    return 0;
}
