/**
 * @file
 * Serving throughput: continuous batching (ServeEngine, pooled slot
 * KV cache) vs static batching (rigid DecodeState batches) under a
 * Poisson-arrival open-loop load.
 *
 * Both runners see the identical workload trace — the same prompts,
 * decode budgets and arrival times — and decode greedily on the same
 * model, so the serviced tokens are the same; only the scheduling
 * differs. The static runner waits for a full batch (or end of
 * arrivals), then steps the whole batch until its slowest member
 * finishes: rows that finished early are stepped anyway (wasted
 * compute) and queued requests wait for the entire batch to drain. The
 * continuous engine admits a request into any free slot on the very
 * next step and retires rows individually, so ragged decode lengths
 * cost nothing.
 *
 * `bench_serve --smoke` skips timing and instead checks that every
 * engine-decoded request is bit-identical to a solo cached decode
 * across quant configs (the serving analogue of bench_decode --smoke).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/tasks.h"
#include "harness.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "tensor/ops.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

ModelConfig
serveLmConfig()
{
    ModelConfig cfg;
    cfg.name = "serve-lm";
    cfg.vocab = 64;
    cfg.max_seq = 64;
    cfg.d_model = 64;
    cfg.d_ff = 128;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    return cfg;
}

struct Workload
{
    std::vector<serve::Request> requests;
    std::vector<double> arrival_ms;
    int64_t max_len = 0; ///< Largest prompt + budget (slot capacity).
};

/// Open-loop Poisson arrivals with ragged prompts (4..11) and ragged
/// decode budgets (8..31) — the raggedness is what static batching
/// pays for.
Workload
makeWorkload(uint64_t seed, int64_t n, double rate_hz, int64_t vocab)
{
    Workload w;
    Rng rng(seed);
    double t = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        t += -std::log(1.0 - rng.uniform()) / rate_hz * 1000.0;
        serve::Request req;
        const int64_t plen = 4 + rng.randint(8);
        for (int64_t j = 0; j < plen; ++j)
            req.prompt.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(vocab - Vocab::kFirstContent)));
        req.max_new_tokens = 8 + rng.randint(24);
        req.eos = -1; // fixed budgets: identical service in both modes
        w.max_len = std::max(w.max_len,
                             plen + req.max_new_tokens + 1);
        w.arrival_ms.push_back(t);
        w.requests.push_back(std::move(req));
    }
    return w;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct RunStats
{
    double makespan_ms = 0.0; ///< First arrival -> last completion.
    double p95_ms = 0.0;      ///< Request latency (arrival -> done).
    double mean_ms = 0.0;
    int64_t tokens = 0;
    double tokensPerSec() const
    {
        return makespan_ms > 0.0 ? tokens / (makespan_ms / 1000.0) : 0.0;
    }
};

/// Continuous batching: real-time drive of the ServeEngine. Requests
/// are submitted at their arrival times; the scheduler steps whenever
/// work is in flight.
RunStats
runContinuous(CausalLM &model, QuantSession &qs, const Workload &w,
              int64_t n_slots)
{
    serve::EngineConfig ec;
    ec.n_slots = n_slots;
    ec.slot_capacity = w.max_len;
    serve::ServeEngine engine(model, qs, ec);

    const size_t n = w.requests.size();
    std::vector<std::shared_future<serve::RequestResult>> futs;
    futs.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    size_t next = 0;
    while (futs.size() < n || engine.activeCount() > 0 ||
           engine.pendingCount() > 0) {
        while (next < n && msSince(t0) >= w.arrival_ms[next]) {
            futs.push_back(engine.submit(w.requests[next]));
            ++next;
        }
        if (engine.activeCount() > 0 || engine.pendingCount() > 0) {
            engine.step();
        } else if (next < n) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    RunStats s;
    s.makespan_ms = msSince(t0) - w.arrival_ms.front();
    const serve::ServeMetrics &m = engine.metrics();
    s.tokens = m.generated_tokens;
    s.p95_ms = m.request_latency_ms.percentile(95.0);
    s.mean_ms = m.request_latency_ms.mean();
    return s;
}

/// Static batching: collect arrivals until the batch is full (or the
/// trace is exhausted), then decode the whole batch through one rigid
/// DecodeState, stepping every row until the slowest member finishes.
RunStats
runStatic(CausalLM &model, QuantSession &qs, const Workload &w,
          int64_t batch_size)
{
    const size_t n = w.requests.size();
    serve::LatencyHistogram lat;
    RunStats s;
    const auto t0 = std::chrono::steady_clock::now();
    size_t next = 0;
    std::vector<size_t> ready;
    while (next < n || !ready.empty()) {
        while (next < n && msSince(t0) >= w.arrival_ms[next])
            ready.push_back(next++);
        const bool flush = next >= n && !ready.empty();
        if (ready.size() < static_cast<size_t>(batch_size) && !flush) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            continue;
        }
        const size_t b = std::min(ready.size(),
                                  static_cast<size_t>(batch_size));
        const std::vector<size_t> taken(ready.begin(),
                                        ready.begin() + b);
        ready.erase(ready.begin(), ready.begin() + b);

        DecodeState st = model.beginDecode(static_cast<int64_t>(b),
                                           w.max_len);
        std::vector<size_t> prompt_next(b, 0);
        std::vector<int64_t> emitted(b, 0);
        std::vector<int32_t> cur(b);
        std::vector<bool> done(b, false);
        for (size_t i = 0; i < b; ++i)
            cur[i] = w.requests[taken[i]].prompt[0];
        size_t n_done = 0;
        while (n_done < b) {
            // Every row steps, finished or not — the static-batching
            // waste this bench exists to measure.
            const Tensor logits = model.forwardIncremental(qs, cur, st);
            for (size_t i = 0; i < b; ++i) {
                const serve::Request &req = w.requests[taken[i]];
                if (done[i])
                    continue; // keep feeding the last token
                if (prompt_next[i] + 1 < req.prompt.size()) {
                    cur[i] = req.prompt[++prompt_next[i]];
                    continue;
                }
                cur[i] = static_cast<int32_t>(
                    rowArgmax(logits, static_cast<int64_t>(i)));
                ++emitted[i];
                s.tokens += 1;
                if (emitted[i] >= req.max_new_tokens) {
                    done[i] = true;
                    ++n_done;
                }
            }
        }
        const double now = msSince(t0);
        for (size_t i = 0; i < b; ++i)
            lat.record(now - w.arrival_ms[taken[i]]);
    }
    s.makespan_ms = msSince(t0) - w.arrival_ms.front();
    s.p95_ms = lat.percentile(95.0);
    s.mean_ms = lat.mean();
    return s;
}

int
smokeMain()
{
    int failures = 0;
    const ModelConfig cfg = serveLmConfig();
    const Workload w = makeWorkload(71, 5, 1e9, cfg.vocab);

    const std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"fp32", QuantConfig::fp32()},
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
    };
    for (const auto &[label, qc] : dtypes) {
        CausalLM model(cfg, 1234);
        QuantSession qs(qc);
        serve::EngineConfig ec;
        ec.n_slots = 2;
        ec.slot_capacity = w.max_len;
        serve::ServeEngine engine(model, qs, ec);
        std::vector<std::shared_future<serve::RequestResult>> futs;
        for (const serve::Request &req : w.requests)
            futs.push_back(engine.submit(req));
        engine.runUntilIdle();

        for (size_t r = 0; r < w.requests.size(); ++r) {
            const serve::Request &req = w.requests[r];
            DecodeState st = model.beginDecode(1, w.max_len);
            Tensor logits;
            for (const int32_t tok : req.prompt)
                logits = model.forwardIncremental(
                    qs, std::vector<int32_t>{tok}, st);
            std::vector<int32_t> want;
            while (static_cast<int64_t>(want.size()) <
                   req.max_new_tokens) {
                const int32_t tok =
                    static_cast<int32_t>(rowArgmax(logits, 0));
                want.push_back(tok);
                if (static_cast<int64_t>(want.size()) >=
                    req.max_new_tokens)
                    break;
                logits = model.forwardIncremental(
                    qs, std::vector<int32_t>{tok}, st);
            }
            if (futs[r].get().tokens != want) {
                std::fprintf(stderr,
                             "smoke: %s engine decode diverges from "
                             "solo cached decode (request %zu)\n",
                             label, r);
                ++failures;
            }
        }
    }
    if (failures == 0)
        std::printf("bench_serve --smoke: OK\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            return smokeMain();
    }

    banner("Serving: continuous batching vs static batching "
           "(Poisson arrivals)");

    const ModelConfig cfg = serveLmConfig();
    const int64_t n_requests = 64, n_slots = 4;
    const std::vector<double> rates_hz = {100.0, 300.0, 1000.0};

    std::printf("model=%s d_model=%lld layers=%d slots/batch=%lld "
                "requests=%lld prompt=4..11 budget=8..31 dtype=posit(8,1)\n",
                cfg.name.c_str(), static_cast<long long>(cfg.d_model),
                cfg.n_layers, static_cast<long long>(n_slots),
                static_cast<long long>(n_requests));
    std::printf("static fills a rigid batch and steps it until the "
                "slowest member finishes;\ncontinuous admits into any "
                "free KV slot and retires rows individually.\n\n");
    std::printf("%-10s %-12s %12s %12s %12s %10s\n", "rate", "mode",
                "tok/s", "p95 ms", "mean ms", "makespan");

    for (const double rate : rates_hz) {
        CausalLM model(cfg, 4321);
        QuantSession qs(QuantConfig::posit8());
        const Workload w = makeWorkload(17, n_requests, rate, cfg.vocab);

        // Warm both paths so first-touch allocation is off the clock.
        {
            const Workload warm = makeWorkload(3, 4, 1e9, cfg.vocab);
            runContinuous(model, qs, warm, n_slots);
            runStatic(model, qs, warm, n_slots);
        }
        const RunStats st = runStatic(model, qs, w, n_slots);
        const RunStats ct = runContinuous(model, qs, w, n_slots);

        char label[32];
        std::snprintf(label, sizeof label, "%g req/s", rate);
        std::printf("%-10s %-12s %12.0f %12.1f %12.1f %9.0fms\n", label,
                    "static", st.tokensPerSec(), st.p95_ms, st.mean_ms,
                    st.makespan_ms);
        std::printf("%-10s %-12s %12.0f %12.1f %12.1f %9.0fms  (%.2fx)\n",
                    "", "continuous", ct.tokensPerSec(), ct.p95_ms,
                    ct.mean_ms, ct.makespan_ms,
                    ct.tokensPerSec() / st.tokensPerSec());
    }
    return 0;
}
