/**
 * @file
 * Serving throughput: continuous batching (ServeEngine, pooled slot
 * KV cache) vs static batching (rigid DecodeState batches) under a
 * Poisson-arrival open-loop load.
 *
 * Both runners see the identical workload trace — the same prompts,
 * decode budgets and arrival times — and decode greedily on the same
 * model, so the serviced tokens are the same; only the scheduling
 * differs. The static runner waits for a full batch (or end of
 * arrivals), then steps the whole batch until its slowest member
 * finishes: rows that finished early are stepped anyway (wasted
 * compute) and queued requests wait for the entire batch to drain. The
 * continuous engine admits a request into any free slot on the very
 * next step and retires rows individually, so ragged decode lengths
 * cost nothing.
 *
 * `bench_serve --smoke` skips timing and instead checks that every
 * engine-decoded request is bit-identical to a solo cached decode
 * across quant configs (the serving analogue of bench_decode --smoke).
 * `--kv-packed-smoke` repeats the check with `QuantConfig::kv_packed`,
 * so the engine serves from packed uint8 KV panels (fp32 exercises the
 * transparent fallback). `--kv-json[=path]` writes BENCH_serve.json:
 * tok/s, TTFT/latency p95 and resident KV bytes for the fp32 cache vs
 * packed codes at equal concurrency, plus packed at equal KV RAM —
 * where the 4x smaller slots buy 4x the resident sequences.
 *
 * `--prefix-share` drives an open-loop burst of requests that all
 * share one long system prompt through three engines at *identical*
 * KV RAM: the slab pool, the paged pool (chunked prefill, no cache)
 * and the paged pool with the shared-prefix radix cache (DESIGN.md
 * §14). It reports peak resident requests, peak resident pages,
 * prefix hit rate and TTFT, and fails unless every mode's token
 * streams are bit-identical. `--kv-json` embeds the same comparison
 * as the "prefix_share" object in BENCH_serve.json.
 *
 * `--spill` drives a multi-turn chat-session workload (DESIGN.md §15)
 * at a fixed KV arena too small for every idle session: RAM-only
 * sessions get shed under pressure and reactivate by recompute, while
 * the disk tier spills and restores them. It reports sessions
 * preserved, reactivation latency split restore-vs-recompute, and
 * tok/s, failing unless both modes' token streams are bit-identical.
 * `--kv-json` embeds it as the "spill" object in BENCH_serve.json.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "data/tasks.h"
#include "harness.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "tensor/ops.h"
#include "tensor/packed_simd.h"
#include "workload_gen.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

ModelConfig
serveLmConfig()
{
    ModelConfig cfg;
    cfg.name = "serve-lm";
    cfg.vocab = 64;
    cfg.max_seq = 64;
    cfg.d_model = 64;
    cfg.d_ff = 128;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    return cfg;
}

struct Workload
{
    std::vector<serve::Request> requests;
    std::vector<double> arrival_ms;
    int64_t max_len = 0; ///< Largest prompt + budget (slot capacity).
};

/// Open-loop Poisson arrivals with ragged prompts (4..11) and ragged
/// decode budgets (8..31) — the raggedness is what static batching
/// pays for.
Workload
makeWorkload(uint64_t seed, int64_t n, double rate_hz, int64_t vocab)
{
    Workload w;
    Rng rng(seed);
    double t = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        t += -std::log(1.0 - rng.uniform()) / rate_hz * 1000.0;
        serve::Request req;
        const int64_t plen = 4 + rng.randint(8);
        for (int64_t j = 0; j < plen; ++j)
            req.prompt.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(vocab - Vocab::kFirstContent)));
        req.max_new_tokens = 8 + rng.randint(24);
        req.eos = -1; // fixed budgets: identical service in both modes
        w.max_len = std::max(w.max_len,
                             plen + req.max_new_tokens + 1);
        w.arrival_ms.push_back(t);
        w.requests.push_back(std::move(req));
    }
    return w;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct RunStats
{
    double makespan_ms = 0.0; ///< First arrival -> last completion.
    double p95_ms = 0.0;      ///< Request latency (arrival -> done).
    double mean_ms = 0.0;
    double ttft_p95_ms = 0.0; ///< Time to first token.
    int64_t tokens = 0;
    size_t kv_bytes = 0; ///< Resident KV pool footprint.
    double tokensPerSec() const
    {
        return makespan_ms > 0.0 ? tokens / (makespan_ms / 1000.0) : 0.0;
    }
};

/// Continuous batching: real-time drive of the ServeEngine. Requests
/// are submitted at their arrival times; the scheduler steps whenever
/// work is in flight.
RunStats
runContinuous(CausalLM &model, QuantSession &qs, const Workload &w,
              int64_t n_slots)
{
    serve::EngineConfig ec;
    ec.n_slots = n_slots;
    ec.slot_capacity = w.max_len;
    serve::ServeEngine engine(model, qs, ec);

    const size_t n = w.requests.size();
    std::vector<std::shared_future<serve::RequestResult>> futs;
    futs.reserve(n);
    const auto t0 = std::chrono::steady_clock::now();
    size_t next = 0;
    while (futs.size() < n || engine.activeCount() > 0 ||
           engine.pendingCount() > 0) {
        while (next < n && msSince(t0) >= w.arrival_ms[next]) {
            futs.push_back(engine.submit(w.requests[next]));
            ++next;
        }
        if (engine.activeCount() > 0 || engine.pendingCount() > 0) {
            engine.step();
        } else if (next < n) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    RunStats s;
    s.makespan_ms = msSince(t0) - w.arrival_ms.front();
    const serve::ServeMetrics &m = engine.metrics();
    s.tokens = m.generated_tokens;
    s.p95_ms = m.request_latency_ms.percentile(95.0);
    s.mean_ms = m.request_latency_ms.mean();
    s.ttft_p95_ms = m.ttft_ms.percentile(95.0);
    s.kv_bytes = engine.residentKVBytes();
    return s;
}

/// Static batching: collect arrivals until the batch is full (or the
/// trace is exhausted), then decode the whole batch through one rigid
/// DecodeState, stepping every row until the slowest member finishes.
RunStats
runStatic(CausalLM &model, QuantSession &qs, const Workload &w,
          int64_t batch_size)
{
    const size_t n = w.requests.size();
    serve::LatencyHistogram lat;
    RunStats s;
    const auto t0 = std::chrono::steady_clock::now();
    size_t next = 0;
    std::vector<size_t> ready;
    while (next < n || !ready.empty()) {
        while (next < n && msSince(t0) >= w.arrival_ms[next])
            ready.push_back(next++);
        const bool flush = next >= n && !ready.empty();
        if (ready.size() < static_cast<size_t>(batch_size) && !flush) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            continue;
        }
        const size_t b = std::min(ready.size(),
                                  static_cast<size_t>(batch_size));
        const std::vector<size_t> taken(ready.begin(),
                                        ready.begin() + b);
        ready.erase(ready.begin(), ready.begin() + b);

        DecodeState st = model.beginDecode(static_cast<int64_t>(b),
                                           w.max_len);
        std::vector<size_t> prompt_next(b, 0);
        std::vector<int64_t> emitted(b, 0);
        std::vector<int32_t> cur(b);
        std::vector<bool> done(b, false);
        for (size_t i = 0; i < b; ++i)
            cur[i] = w.requests[taken[i]].prompt[0];
        size_t n_done = 0;
        while (n_done < b) {
            // Every row steps, finished or not — the static-batching
            // waste this bench exists to measure.
            const Tensor logits = model.forwardIncremental(qs, cur, st);
            for (size_t i = 0; i < b; ++i) {
                const serve::Request &req = w.requests[taken[i]];
                if (done[i])
                    continue; // keep feeding the last token
                if (prompt_next[i] + 1 < req.prompt.size()) {
                    cur[i] = req.prompt[++prompt_next[i]];
                    continue;
                }
                cur[i] = static_cast<int32_t>(
                    rowArgmax(logits, static_cast<int64_t>(i)));
                ++emitted[i];
                s.tokens += 1;
                if (emitted[i] >= req.max_new_tokens) {
                    done[i] = true;
                    ++n_done;
                }
            }
        }
        const double now = msSince(t0);
        for (size_t i = 0; i < b; ++i)
            lat.record(now - w.arrival_ms[taken[i]]);
    }
    s.makespan_ms = msSince(t0) - w.arrival_ms.front();
    s.p95_ms = lat.percentile(95.0);
    s.mean_ms = lat.mean();
    return s;
}

int
smokeMain(bool kv_packed)
{
    int failures = 0;
    const ModelConfig cfg = serveLmConfig();
    const Workload w = makeWorkload(71, 5, 1e9, cfg.vocab);

    std::vector<std::pair<const char *, QuantConfig>> dtypes = {
        {"fp32", QuantConfig::fp32()}, // falls back unpacked under the flag
        {"posit(8,1)", QuantConfig::posit8()},
        {"e4m3", QuantConfig::fp8()},
    };
    for (auto &[label, qc] : dtypes) {
        qc.kv_packed = kv_packed;
        CausalLM model(cfg, 1234);
        QuantSession qs(qc);
        serve::EngineConfig ec;
        ec.n_slots = 2;
        ec.slot_capacity = w.max_len;
        serve::ServeEngine engine(model, qs, ec);
        std::vector<std::shared_future<serve::RequestResult>> futs;
        for (const serve::Request &req : w.requests)
            futs.push_back(engine.submit(req));
        engine.runUntilIdle();

        for (size_t r = 0; r < w.requests.size(); ++r) {
            const serve::Request &req = w.requests[r];
            DecodeState st = model.beginDecode(1, w.max_len);
            Tensor logits;
            for (const int32_t tok : req.prompt)
                logits = model.forwardIncremental(
                    qs, std::vector<int32_t>{tok}, st);
            std::vector<int32_t> want;
            while (static_cast<int64_t>(want.size()) <
                   req.max_new_tokens) {
                const int32_t tok =
                    static_cast<int32_t>(rowArgmax(logits, 0));
                want.push_back(tok);
                if (static_cast<int64_t>(want.size()) >=
                    req.max_new_tokens)
                    break;
                logits = model.forwardIncremental(
                    qs, std::vector<int32_t>{tok}, st);
            }
            if (futs[r].get().tokens != want) {
                std::fprintf(stderr,
                             "smoke%s: %s engine decode diverges from "
                             "solo cached decode (request %zu)\n",
                             kv_packed ? " (kv-packed)" : "", label, r);
                ++failures;
            }
        }
    }
    if (failures == 0)
        std::printf("bench_serve %s: OK\n",
                    kv_packed ? "--kv-packed-smoke" : "--smoke");
    return failures == 0 ? 0 : 1;
}

int prefixShareSection(std::FILE *f);
int spillSection(std::FILE *f);
int multiTenantSection(std::FILE *f, bool smoke);

/// --kv-json[=path]: BENCH_serve.json — continuous-batching serving
/// stats for the fp32 KV cache vs packed codes at equal concurrency,
/// and packed again with the slot count the fp32 KV RAM budget buys
/// (bytes/slot is 4x smaller, so 4x the sequences fit). Also embeds
/// the shared-prefix slab-vs-paged comparison ("prefix_share").
int
kvJsonMain(const std::string &path)
{
    const ModelConfig cfg = serveLmConfig();
    const int64_t n_requests = 64, base_slots = 4;
    const double rate_hz = 1000.0;

    struct Mode {
        const char *label;
        bool packed;
        int64_t slots;
    };
    QuantConfig plain_qc = QuantConfig::posit8();
    QuantConfig packed_qc = QuantConfig::posit8();
    packed_qc.kv_packed = true;

    // How many packed slots fit in the fp32 pool's KV RAM.
    const Workload probe = makeWorkload(3, 4, 1e9, cfg.vocab);
    int64_t ram_slots = base_slots;
    size_t ram_budget = 0;
    {
        CausalLM model(cfg, 4321);
        QuantSession qs_plain(plain_qc), qs_packed(packed_qc);
        serve::EngineConfig ec;
        ec.n_slots = base_slots;
        ec.slot_capacity = probe.max_len;
        serve::ServeEngine fp32_eng(model, qs_plain, ec);
        serve::ServeEngine packed_eng(model, qs_packed, ec);
        ram_budget = fp32_eng.residentKVBytes();
        ram_slots = static_cast<int64_t>(ram_budget /
                                         packed_eng.kvBytesPerSlot());
    }

    const std::vector<Mode> modes = {
        {"fp32-kv", false, base_slots},
        {"packed-kv", true, base_slots},
        {"packed-kv-equal-ram", true, ram_slots},
    };

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"simd\": \"%s\",\n  \"rate_hz\": %.0f,\n"
                 "  \"requests\": %lld,\n  \"kv_ram_budget_bytes\": %zu,\n"
                 "  \"modes\": [\n",
                 detail::packedSimdName(), rate_hz,
                 static_cast<long long>(n_requests), ram_budget);
    std::printf("serving, %g req/s Poisson, %lld requests "
                "(simd=%s, dtype=posit(8,1)):\n",
                rate_hz, static_cast<long long>(n_requests),
                detail::packedSimdName());
    std::printf("%-22s %6s %12s %10s %10s %14s\n", "mode", "slots",
                "tok/s", "ttft p95", "lat p95", "KV bytes");

    for (size_t mi = 0; mi < modes.size(); ++mi) {
        const Mode &m = modes[mi];
        CausalLM model(cfg, 4321);
        QuantSession qs(m.packed ? packed_qc : plain_qc);
        const Workload w = makeWorkload(17, n_requests, rate_hz, cfg.vocab);
        runContinuous(model, qs, probe, m.slots); // warm
        const RunStats s = runContinuous(model, qs, w, m.slots);
        std::fprintf(f,
                     "    {\"mode\": \"%s\", \"kv_packed\": %s, "
                     "\"slots\": %lld, \"tok_per_sec\": %.0f, "
                     "\"ttft_p95_ms\": %.2f, \"latency_p95_ms\": %.2f, "
                     "\"latency_mean_ms\": %.2f, "
                     "\"resident_kv_bytes\": %zu, "
                     "\"kv_bytes_per_slot\": %zu}%s\n",
                     m.label, m.packed ? "true" : "false",
                     static_cast<long long>(m.slots), s.tokensPerSec(),
                     s.ttft_p95_ms, s.p95_ms, s.mean_ms, s.kv_bytes,
                     s.kv_bytes / static_cast<size_t>(m.slots),
                     mi + 1 < modes.size() ? "," : "");
        std::printf("%-22s %6lld %12.0f %8.1fms %8.1fms %14zu\n",
                    m.label, static_cast<long long>(m.slots),
                    s.tokensPerSec(), s.ttft_p95_ms, s.p95_ms,
                    s.kv_bytes);
    }
    std::fprintf(f, "  ],\n");
    const int share_failures = prefixShareSection(f);
    std::fprintf(f, ",\n");
    const int spill_failures = spillSection(f);
    std::fprintf(f, ",\n");
    const int mt_failures = multiTenantSection(f, /*smoke=*/false);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return share_failures + spill_failures + mt_failures;
}

/// Shared-prefix workload: every request opens with the same
/// `shared_len`-token system prompt, then a short unique tail and a
/// ragged decode budget. Arrivals are a fast Poisson burst so the
/// engines queue — resident capacity is what's under test.
Workload
makeSharedPrefixWorkload(uint64_t seed, int64_t n, double rate_hz,
                         int64_t vocab, int64_t shared_len)
{
    Workload w;
    Rng rng(seed);
    std::vector<int32_t> shared;
    for (int64_t j = 0; j < shared_len; ++j)
        shared.push_back(static_cast<int32_t>(
            Vocab::kFirstContent +
            rng.randint(vocab - Vocab::kFirstContent)));
    double t = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        t += -std::log(1.0 - rng.uniform()) / rate_hz * 1000.0;
        serve::Request req;
        req.prompt = shared;
        const int64_t tail = 2 + rng.randint(4);
        for (int64_t j = 0; j < tail; ++j)
            req.prompt.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(vocab - Vocab::kFirstContent)));
        req.max_new_tokens = 4 + rng.randint(15);
        req.eos = -1;
        w.max_len = std::max(
            w.max_len, static_cast<int64_t>(req.prompt.size()) +
                           req.max_new_tokens + 1);
        w.arrival_ms.push_back(t);
        w.requests.push_back(std::move(req));
    }
    return w;
}

struct ShareRun
{
    RunStats s;
    int64_t residents_peak = 0; ///< Max concurrently admitted requests.
    int64_t pages_peak = 0;     ///< Paged: peak referenced pages.
    int64_t lookups = 0, hits = 0, reused_rows = 0;
    std::vector<std::vector<int32_t>> tokens; ///< Per-request output.
};

/// Real-time open-loop drive of one engine configuration, sampling the
/// resident-request peak between steps.
ShareRun
runShareMode(CausalLM &model, QuantSession &qs, const Workload &w,
             const serve::EngineConfig &ec)
{
    serve::ServeEngine engine(model, qs, ec);
    const size_t n = w.requests.size();
    std::vector<std::shared_future<serve::RequestResult>> futs;
    futs.reserve(n);
    ShareRun r;
    const auto t0 = std::chrono::steady_clock::now();
    size_t next = 0;
    while (futs.size() < n || engine.activeCount() > 0 ||
           engine.pendingCount() > 0) {
        while (next < n && msSince(t0) >= w.arrival_ms[next]) {
            futs.push_back(engine.submit(w.requests[next]));
            ++next;
        }
        r.residents_peak =
            std::max(r.residents_peak,
                     static_cast<int64_t>(engine.activeCount()));
        if (engine.activeCount() > 0 || engine.pendingCount() > 0) {
            engine.step();
        } else if (next < n) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    r.s.makespan_ms = msSince(t0) - w.arrival_ms.front();
    const serve::ServeMetrics &m = engine.metrics();
    r.s.tokens = m.generated_tokens;
    r.s.p95_ms = m.request_latency_ms.percentile(95.0);
    r.s.mean_ms = m.request_latency_ms.mean();
    r.s.ttft_p95_ms = m.ttft_ms.percentile(95.0);
    r.s.kv_bytes = engine.residentKVBytes();
    r.pages_peak = m.pages_resident_peak;
    r.lookups = m.prefix_lookups;
    r.hits = m.prefix_hits;
    r.reused_rows = m.prefix_reused_tokens;
    for (auto &f : futs)
        r.tokens.push_back(f.get().tokens);
    return r;
}

/// Shared-prefix capacity comparison at fixed KV RAM: slab vs paged
/// vs paged+prefix-cache. Prints the table; when @p f is non-null also
/// writes the `"prefix_share": {...}` JSON object (no trailing
/// newline). Returns non-zero if any mode's tokens diverge from slab.
int
prefixShareSection(std::FILE *f)
{
    const ModelConfig cfg = serveLmConfig();
    const int64_t n_requests = 48, base_slots = 4, page_size = 16,
                  shared_len = 2 * page_size;
    const double rate_hz = 1500.0;
    const Workload w = makeSharedPrefixWorkload(29, n_requests, rate_hz,
                                                cfg.vocab, shared_len);

    struct Mode {
        const char *label;
        bool paged;
        bool prefix_cache;
    };
    const std::vector<Mode> modes = {
        {"slab", false, false},
        {"paged", true, false},
        {"paged-prefix-cache", true, true},
    };

    CausalLM model(cfg, 4321);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;
    QuantSession qs(qc);

    std::printf("\nshared-prefix serving, %g req/s Poisson, %lld "
                "requests, %lld-token shared prompt, fixed KV RAM "
                "(dtype=posit(8,1), kv packed):\n",
                rate_hz, static_cast<long long>(n_requests),
                static_cast<long long>(shared_len));
    std::printf("%-20s %9s %10s %9s %10s %10s %12s\n", "mode",
                "residents", "pages peak", "hit rate", "ttft p95",
                "lat p95", "tok/s");

    // Round the slot capacity up to a whole page so the slab and paged
    // arenas are the same bytes — "fixed KV RAM" exactly, not modulo
    // page rounding.
    const int64_t capacity =
        serve::PagedKVPool::pagesFor(w.max_len, page_size) * page_size;

    std::vector<ShareRun> runs;
    for (const Mode &m : modes) {
        serve::EngineConfig ec;
        ec.n_slots = base_slots;
        ec.slot_capacity = capacity;
        ec.paged = m.paged;
        ec.page_size = page_size;
        ec.prefill_chunk = page_size;
        ec.prefix_cache = m.prefix_cache;
        { // Warm: first-touch arenas and quant caches off the clock.
            const Workload warm = makeSharedPrefixWorkload(
                5, 3, 1e9, cfg.vocab, shared_len);
            serve::EngineConfig wec = ec;
            wec.slot_capacity = std::max(wec.slot_capacity, warm.max_len);
            runShareMode(model, qs, warm, wec);
        }
        ShareRun r = runShareMode(model, qs, w, ec);
        const double hit_rate =
            r.lookups > 0 ? static_cast<double>(r.hits) / r.lookups : 0.0;
        std::printf("%-20s %9lld %10lld %8.0f%% %8.1fms %8.1fms %12.0f\n",
                    m.label, static_cast<long long>(r.residents_peak),
                    static_cast<long long>(r.pages_peak),
                    100.0 * hit_rate, r.s.ttft_p95_ms, r.s.p95_ms,
                    r.s.tokensPerSec());
        runs.push_back(std::move(r));
    }

    // Acceptance oracle: scheduling differs wildly across the three
    // engines, but greedy decode on static quant grids must emit the
    // same bits (DESIGN.md §9/§14).
    int failures = 0;
    for (size_t mi = 1; mi < runs.size(); ++mi)
        for (size_t ri = 0; ri < runs[0].tokens.size(); ++ri)
            if (runs[mi].tokens[ri] != runs[0].tokens[ri]) {
                const auto &got = runs[mi].tokens[ri];
                const auto &want = runs[0].tokens[ri];
                const bool is_prefix =
                    got.size() < want.size() &&
                    std::equal(got.begin(), got.end(), want.begin());
                std::fprintf(stderr,
                             "prefix-share: %s diverges from slab on "
                             "request %zu (%zu vs %zu tokens%s)\n",
                             modes[mi].label, ri, got.size(),
                             want.size(),
                             is_prefix ? ", truncated prefix" : "");
                ++failures;
            }
    std::printf("tokens bit-identical across modes: %s\n",
                failures == 0 ? "yes" : "NO");

    if (f != nullptr) {
        std::fprintf(f,
                     "  \"prefix_share\": {\n"
                     "    \"requests\": %lld, \"rate_hz\": %.0f,\n"
                     "    \"shared_prefix_tokens\": %lld,\n"
                     "    \"kv_ram_bytes\": %zu,\n"
                     "    \"tokens_bit_identical\": %s,\n"
                     "    \"modes\": [\n",
                     static_cast<long long>(n_requests), rate_hz,
                     static_cast<long long>(shared_len),
                     runs[0].s.kv_bytes,
                     failures == 0 ? "true" : "false");
        for (size_t mi = 0; mi < runs.size(); ++mi) {
            const ShareRun &r = runs[mi];
            const double hit_rate =
                r.lookups > 0 ? static_cast<double>(r.hits) / r.lookups
                              : 0.0;
            std::fprintf(
                f,
                "      {\"mode\": \"%s\", \"residents_peak\": %lld, "
                "\"pages_resident_peak\": %lld, "
                "\"prefix_hit_rate\": %.3f, "
                "\"prefix_reused_tokens\": %lld, "
                "\"ttft_p95_ms\": %.2f, \"latency_p95_ms\": %.2f, "
                "\"tok_per_sec\": %.0f, "
                "\"resident_kv_bytes\": %zu}%s\n",
                modes[mi].label,
                static_cast<long long>(r.residents_peak),
                static_cast<long long>(r.pages_peak), hit_rate,
                static_cast<long long>(r.reused_rows), r.s.ttft_p95_ms,
                r.s.p95_ms, r.s.tokensPerSec(), r.s.kv_bytes,
                mi + 1 < runs.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  }");
    }
    return failures == 0 ? 0 : 1;
}

/// Tiered KV session storage (DESIGN.md §15): N multi-turn chat
/// sessions at a KV arena far too small to keep every idle session
/// resident. "ram-only" sheds idle sessions under pressure (their next
/// turn runs fresh); "disk-spill" writes them to integrity-checked
/// spill files and restores on reactivation. Reports sessions
/// preserved, reactivation latency (restore vs recompute/fresh) and
/// tok/s at fixed KV RAM; fails unless both modes' token streams are
/// bit-identical (IO tiering must never change tokens). When @p f is
/// non-null also writes the `"spill": {...}` JSON object.
int
spillSection(std::FILE *f)
{
    const ModelConfig cfg = serveLmConfig();
    const int64_t n_sessions = 12;
    const int64_t page_size = 8, n_pages = 14, n_slots = 2;
    const int64_t capacity = 40; // rows; 5 pages of worst-case demand
    const std::string spill_dir = "bench_serve_spill_tmp";

    // Conversation starts, identical across modes. Turn 2 extends
    // turn 1's output, so it is built per mode and the streams are
    // compared at the end.
    Rng rng(107);
    std::vector<std::vector<int32_t>> prompts, extras;
    std::vector<int64_t> budgets;
    for (int64_t i = 0; i < n_sessions; ++i) {
        std::vector<int32_t> p;
        const int64_t plen = 6 + rng.randint(5);
        for (int64_t j = 0; j < plen; ++j)
            p.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(cfg.vocab - Vocab::kFirstContent)));
        prompts.push_back(std::move(p));
        std::vector<int32_t> e;
        for (int64_t j = 0; j < 2; ++j)
            e.push_back(static_cast<int32_t>(
                Vocab::kFirstContent +
                rng.randint(cfg.vocab - Vocab::kFirstContent)));
        extras.push_back(std::move(e));
        budgets.push_back(5 + rng.randint(5));
    }

    struct ModeRun
    {
        int64_t preserved = 0; ///< resident + restored reactivations.
        int64_t resident = 0, restored = 0, recomputed = 0, fresh = 0;
        double react_p50_ms = 0.0, react_p95_ms = 0.0;
        double restore_p95_ms = 0.0, recompute_p95_ms = 0.0;
        double tok_per_sec = 0.0;
        int64_t spilled_bytes = 0, restored_bytes = 0,
                spill_failures = 0;
        size_t kv_bytes = 0;
        std::vector<std::vector<int32_t>> t1_tokens, t2_tokens;
    };

    CausalLM model(cfg, 4321);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;

    struct Mode {
        const char *label;
        bool disk;
    };
    const std::vector<Mode> modes = {{"ram-only", false},
                                     {"disk-spill", true}};
    std::vector<ModeRun> runs;

    std::printf("\nmulti-turn chat sessions at fixed KV RAM "
                "(%lld sessions x 2 turns, %lld pages x %lld rows, "
                "dtype=posit(8,1), kv packed):\n",
                static_cast<long long>(n_sessions),
                static_cast<long long>(n_pages),
                static_cast<long long>(page_size));
    std::printf("%-12s %10s %9s %9s %11s %12s %12s %12s\n", "mode",
                "preserved", "restored", "fresh", "react p95",
                "restore p95", "recomp p95", "tok/s");

    for (const Mode &mode : modes) {
        std::filesystem::remove_all(spill_dir);
        QuantSession qs(qc);
        serve::EngineConfig ec;
        ec.n_slots = n_slots;
        ec.slot_capacity = capacity;
        ec.paged = true;
        ec.page_size = page_size;
        ec.n_pages = n_pages;
        // Keep the radix cache out of the accounting: idle sessions
        // are the only resident-page consumer under test.
        ec.prefix_cache = false;
        if (mode.disk)
            ec.spill_dir = spill_dir;
        serve::ServeEngine engine(model, qs, ec);

        ModeRun r;
        const auto t0 = std::chrono::steady_clock::now();
        // Turn 1 of every session: idle sessions pile up, and the
        // arena can hold only a few — pressure sheds (or spills) LRU.
        for (int64_t i = 0; i < n_sessions; ++i) {
            serve::Request req;
            req.prompt = prompts[static_cast<size_t>(i)];
            req.max_new_tokens = budgets[static_cast<size_t>(i)];
            req.eos = -1;
            req.session_id = static_cast<uint64_t>(i) + 1;
            auto fut = engine.submit(req);
            engine.runUntilIdle();
            r.t1_tokens.push_back(fut.get().tokens);
        }
        // Reactivation sweep: every session comes back for turn 2.
        serve::LatencyHistogram react, restore_lat, recompute_lat;
        for (int64_t i = 0; i < n_sessions; ++i) {
            serve::Request req;
            req.prompt = prompts[static_cast<size_t>(i)];
            const auto &t1 = r.t1_tokens[static_cast<size_t>(i)];
            req.prompt.insert(req.prompt.end(), t1.begin(), t1.end());
            const auto &e = extras[static_cast<size_t>(i)];
            req.prompt.insert(req.prompt.end(), e.begin(), e.end());
            req.max_new_tokens = 6;
            req.eos = -1;
            req.session_id = static_cast<uint64_t>(i) + 1;
            auto fut = engine.submit(req);
            engine.runUntilIdle();
            const serve::RequestResult res = fut.get();
            r.t2_tokens.push_back(res.tokens);
            react.record(res.latency_ms);
            switch (res.session_kv) {
            case serve::SessionKVSource::kResident:
                ++r.resident;
                restore_lat.record(res.latency_ms);
                break;
            case serve::SessionKVSource::kRestoredFromSpill:
                ++r.restored;
                restore_lat.record(res.latency_ms);
                break;
            case serve::SessionKVSource::kRecomputed:
                ++r.recomputed;
                recompute_lat.record(res.latency_ms);
                break;
            case serve::SessionKVSource::kNone:
                ++r.fresh;
                recompute_lat.record(res.latency_ms);
                break;
            }
        }
        const double makespan_ms = msSince(t0);
        r.preserved = r.resident + r.restored;
        r.react_p50_ms = react.percentile(50.0);
        r.react_p95_ms = react.percentile(95.0);
        r.restore_p95_ms = restore_lat.percentile(95.0);
        r.recompute_p95_ms = recompute_lat.percentile(95.0);
        const serve::ServeMetrics &m = engine.metrics();
        r.tok_per_sec = makespan_ms > 0.0
                            ? m.generated_tokens / (makespan_ms / 1000.0)
                            : 0.0;
        r.spilled_bytes = m.spilled_bytes;
        r.restored_bytes = m.restored_bytes;
        r.spill_failures = m.spill_failures;
        r.kv_bytes = engine.residentKVBytes();

        std::printf("%-12s %7lld/%-2lld %9lld %9lld %9.1fms %10.1fms "
                    "%10.1fms %12.0f\n",
                    mode.label, static_cast<long long>(r.preserved),
                    static_cast<long long>(n_sessions),
                    static_cast<long long>(r.restored),
                    static_cast<long long>(r.fresh + r.recomputed),
                    r.react_p95_ms, r.restore_p95_ms, r.recompute_p95_ms,
                    r.tok_per_sec);
        runs.push_back(std::move(r));
    }
    std::filesystem::remove_all(spill_dir);

    // Acceptance oracle: the disk tier may only change *where* KV
    // history comes from, never the tokens.
    int failures = 0;
    for (int64_t i = 0; i < n_sessions; ++i) {
        const auto si = static_cast<size_t>(i);
        if (runs[0].t1_tokens[si] != runs[1].t1_tokens[si] ||
            runs[0].t2_tokens[si] != runs[1].t2_tokens[si]) {
            std::fprintf(stderr,
                         "spill: session %lld tokens diverge between "
                         "ram-only and disk-spill\n",
                         static_cast<long long>(i) + 1);
            ++failures;
        }
    }
    const double ratio =
        runs[0].preserved > 0 ? static_cast<double>(runs[1].preserved) /
                                    static_cast<double>(runs[0].preserved)
                              : static_cast<double>(runs[1].preserved);
    std::printf("tokens bit-identical across modes: %s; disk tier "
                "preserves %.1fx the sessions at the same KV RAM\n",
                failures == 0 ? "yes" : "NO", ratio);

    if (f != nullptr) {
        std::fprintf(f,
                     "  \"spill\": {\n"
                     "    \"sessions\": %lld, \"turns\": 2,\n"
                     "    \"kv_ram_bytes\": %zu,\n"
                     "    \"tokens_bit_identical\": %s,\n"
                     "    \"preserved_ratio\": %.2f,\n"
                     "    \"modes\": [\n",
                     static_cast<long long>(n_sessions), runs[0].kv_bytes,
                     failures == 0 ? "true" : "false", ratio);
        for (size_t mi = 0; mi < runs.size(); ++mi) {
            const ModeRun &r = runs[mi];
            std::fprintf(
                f,
                "      {\"mode\": \"%s\", \"sessions_preserved\": %lld, "
                "\"resident\": %lld, \"restored\": %lld, "
                "\"recomputed\": %lld, \"fresh\": %lld, "
                "\"reactivate_p50_ms\": %.2f, "
                "\"reactivate_p95_ms\": %.2f, "
                "\"restore_p95_ms\": %.2f, \"recompute_p95_ms\": %.2f, "
                "\"tok_per_sec\": %.0f, \"spilled_bytes\": %lld, "
                "\"restored_bytes\": %lld, \"spill_failures\": %lld}%s\n",
                modes[mi].label, static_cast<long long>(r.preserved),
                static_cast<long long>(r.resident),
                static_cast<long long>(r.restored),
                static_cast<long long>(r.recomputed),
                static_cast<long long>(r.fresh), r.react_p50_ms,
                r.react_p95_ms, r.restore_p95_ms, r.recompute_p95_ms,
                r.tok_per_sec, static_cast<long long>(r.spilled_bytes),
                static_cast<long long>(r.restored_bytes),
                static_cast<long long>(r.spill_failures),
                mi + 1 < runs.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  }");
    }
    return failures == 0 ? 0 : 1;
}

/// Multi-tenant fair-share serving (DESIGN.md §16): the same seeded
/// three-class transaction mix (interactive chat sessions, long-doc
/// prefill, offline batch) driven through the paged engine twice — a
/// global-FIFO baseline and the weighted fair-share scheduler with
/// SLO-aware preemption — at an arena deliberately too small for the
/// offered load. Reports per-class goodput (SLO-met tokens/sec),
/// TTFT/latency p50/p95/p99, preemption counts and fairness ratios;
/// fails (non-zero) if any request's tokens differ between modes —
/// the preempt-spill-resume path must be bit-invisible. When @p f is
/// non-null also writes the `"multi_tenant": {...}` JSON object.
int
multiTenantSection(std::FILE *f, bool smoke)
{
    const ModelConfig cfg = serveLmConfig();
    const double horizon_ms = smoke ? 120.0 : 400.0;
    const WorkloadConfig wl = defaultMix(211, horizon_ms, cfg.vocab,
                                         Vocab::kFirstContent);
    const std::vector<GenRequest> gen = generate(wl);

    if (smoke) {
        // Generator determinism self-check: same seed, byte-identical
        // schedule.
        if (fingerprint(generate(wl)) != fingerprint(gen)) {
            std::fprintf(stderr,
                         "multi-tenant: workload generator is not "
                         "deterministic\n");
            return 1;
        }
    }

    // (session_id, turn) -> generated-request index, for chaining chat
    // follow-up turns after their predecessor resolves.
    std::map<std::pair<uint64_t, int>, size_t> turn_idx;
    for (size_t i = 0; i < gen.size(); ++i)
        if (gen[i].session_id != 0)
            turn_idx[{gen[i].session_id, gen[i].turn}] = i;

    struct MtRun
    {
        serve::ServeMetrics m;
        double makespan_ms = 0.0;
        std::vector<std::vector<int32_t>> tokens; ///< By gen index.
        std::vector<serve::RequestStatus> status;
    };
    struct Mode
    {
        const char *label;
        bool fair;
    };
    const std::vector<Mode> modes = {{"fifo", false},
                                     {"fair-share", true}};

    const std::string spill_dir = "bench_serve_mt_tmp";
    CausalLM model(cfg, 4321);
    QuantConfig qc = QuantConfig::posit8();
    qc.kv_packed = true;

    std::printf("\nmulti-tenant serving, three-class mix over %.0f ms "
                "(%zu requests, dtype=posit(8,1), kv packed):\n",
                horizon_ms, gen.size());

    std::vector<MtRun> runs;
    for (const Mode &mode : modes) {
        std::filesystem::remove_all(spill_dir);
        QuantSession qs(qc);
        serve::EngineConfig ec;
        ec.n_slots = 4;
        ec.slot_capacity = 64;
        ec.paged = true;
        ec.page_size = 8;
        ec.n_pages = 12; // ~2 worst-case residents: forced contention
        ec.prefix_cache = false;
        ec.spill_dir = spill_dir; // preemption checkpoints hit disk
        ec.sched.policy = mode.fair
                              ? serve::SchedulerConfig::Policy::kFairShare
                              : serve::SchedulerConfig::Policy::kFifo;
        ec.sched.preemption = mode.fair;
        for (const ClassSpec &cs : wl.classes) {
            serve::ClassPolicy &pol =
                ec.sched.classes[static_cast<size_t>(cs.cls)];
            pol.ttft_slo_ms = cs.ttft_slo_ms;
            pol.latency_slo_ms = cs.latency_slo_ms;
        }
        if (mode.fair) {
            // Token-rate cap on the bulk batch tenant: delay-only
            // backpressure (tokens never change, only when they run).
            serve::TenantPolicy tp;
            tp.tokens_per_sec = 2000.0;
            ec.sched.tenants[20] = tp;
        }
        serve::ServeEngine engine(model, qs, ec);

        struct Flight
        {
            size_t gi;
            std::shared_future<serve::RequestResult> fut;
            std::vector<int32_t> full_prompt;
        };
        struct Due
        {
            size_t gi;
            double due_ms;
            std::vector<int32_t> prompt;
        };
        std::vector<Due> due;
        for (size_t i = 0; i < gen.size(); ++i)
            if (gen[i].turn == 0)
                due.push_back(Due{i, gen[i].arrival_ms, gen[i].prompt});
        std::vector<Flight> flights;
        MtRun r;
        r.tokens.resize(gen.size());
        r.status.resize(gen.size(), serve::RequestStatus::kOk);
        size_t resolved = 0;
        const auto t0 = std::chrono::steady_clock::now();
        while (resolved < gen.size()) {
            const double now = msSince(t0);
            for (size_t i = due.size(); i-- > 0;) {
                if (now < due[i].due_ms)
                    continue;
                const GenRequest &g = gen[due[i].gi];
                serve::Request req;
                req.prompt = due[i].prompt;
                req.max_new_tokens = g.max_new_tokens;
                req.eos = -1;
                req.tenant_id = g.tenant_id;
                req.priority_class = g.cls;
                req.session_id = g.session_id;
                flights.push_back(Flight{due[i].gi,
                                         engine.submit(std::move(req)),
                                         std::move(due[i].prompt)});
                due.erase(due.begin() + static_cast<std::ptrdiff_t>(i));
            }
            if (engine.activeCount() > 0 || engine.pendingCount() > 0)
                engine.step();
            else
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            for (size_t i = flights.size(); i-- > 0;) {
                Flight &fl = flights[i];
                if (fl.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                    continue;
                const serve::RequestResult res = fl.fut.get();
                const GenRequest &g = gen[fl.gi];
                r.tokens[fl.gi] = res.tokens;
                r.status[fl.gi] = res.status;
                ++resolved;
                if (g.turn + 1 < g.turns) {
                    // Chain the follow-up chat turn: history + this
                    // turn's output + the next turn's new user tokens.
                    const size_t ni =
                        turn_idx.at({g.session_id, g.turn + 1});
                    std::vector<int32_t> next = fl.full_prompt;
                    next.insert(next.end(), res.tokens.begin(),
                                res.tokens.end());
                    next.insert(next.end(), gen[ni].prompt.begin(),
                                gen[ni].prompt.end());
                    due.push_back(Due{ni, msSince(t0) + g.think_ms,
                                      std::move(next)});
                }
                flights.erase(flights.begin() +
                              static_cast<std::ptrdiff_t>(i));
            }
        }
        r.makespan_ms = msSince(t0);
        engine.releaseSessions();
        r.m = engine.metricsSnapshot();
        runs.push_back(std::move(r));
    }
    std::filesystem::remove_all(spill_dir);

    // Acceptance oracle: scheduling (and preemption) may only change
    // *when* tokens run, never which tokens — every request must be
    // bit-identical across FIFO and fair-share, including every
    // preempt-spill-resume round trip.
    int failures = 0;
    for (size_t i = 0; i < gen.size(); ++i) {
        if (runs[0].tokens[i] != runs[1].tokens[i]) {
            std::fprintf(stderr,
                         "multi-tenant: request %zu (class %s) tokens "
                         "diverge between fifo (%s, %zu tok) and "
                         "fair-share (%s, %zu tok)\n",
                         i, toString(gen[i].cls),
                         serve::toString(runs[0].status[i]),
                         runs[0].tokens[i].size(),
                         serve::toString(runs[1].status[i]),
                         runs[1].tokens[i].size());
            ++failures;
        }
    }

    const double wsum = 4.0 + 2.0 + 1.0;
    const double weights[serve::kNumClasses] = {4.0, 2.0, 1.0};
    std::printf("%-11s %-12s %9s %8s %8s %8s %8s %9s %9s %8s\n", "mode",
                "class", "goodput/s", "ttft p50", "ttft p95",
                "ttft p99", "lat p95", "slo-met", "preempts", "fair");
    for (size_t mi = 0; mi < runs.size(); ++mi) {
        const MtRun &r = runs[mi];
        int64_t total_tokens = 0;
        for (const auto &cm : r.m.per_class)
            total_tokens += cm.generated_tokens;
        bool labeled = false;
        for (size_t c = 0; c < serve::kNumClasses; ++c) {
            const serve::ClassMetrics &cm = r.m.per_class[c];
            if (cm.completed == 0)
                continue;
            const double share =
                total_tokens > 0
                    ? static_cast<double>(cm.generated_tokens) /
                          static_cast<double>(total_tokens)
                    : 0.0;
            const double fair = share / (weights[c] / wsum);
            std::printf(
                "%-11s %-12s %9.0f %7.1fms %7.1fms %7.1fms %7.1fms "
                "%5lld/%-3lld %9lld %8.2f\n",
                labeled ? "" : modes[mi].label,
                toString(static_cast<serve::PriorityClass>(c)),
                r.makespan_ms > 0.0
                    ? cm.goodput_tokens / (r.makespan_ms / 1000.0)
                    : 0.0,
                cm.ttft_ms.percentile(50.0), cm.ttft_ms.percentile(95.0),
                cm.ttft_ms.percentile(99.0),
                cm.latency_ms.percentile(95.0),
                static_cast<long long>(cm.slo_met),
                static_cast<long long>(cm.ok),
                static_cast<long long>(cm.preemptions), fair);
            labeled = true;
        }
        std::printf("%-11s %-12s preemptions=%lld resumes=%lld\n", "",
                    "(sched)",
                    static_cast<long long>(r.m.sched_preemptions),
                    static_cast<long long>(r.m.preempt_resumes));
    }

    const auto &fifo_int =
        runs[0].m.per_class[static_cast<size_t>(
            serve::PriorityClass::kInteractive)];
    const auto &fair_int =
        runs[1].m.per_class[static_cast<size_t>(
            serve::PriorityClass::kInteractive)];
    const auto &fifo_batch = runs[0].m.per_class[static_cast<size_t>(
        serve::PriorityClass::kBatch)];
    const auto &fair_batch = runs[1].m.per_class[static_cast<size_t>(
        serve::PriorityClass::kBatch)];
    const double ttft_gain =
        fair_int.ttft_ms.percentile(95.0) > 0.0
            ? fifo_int.ttft_ms.percentile(95.0) /
                  fair_int.ttft_ms.percentile(95.0)
            : 0.0;
    const double fifo_bgood =
        runs[0].makespan_ms > 0.0
            ? fifo_batch.generated_tokens / (runs[0].makespan_ms / 1000.0)
            : 0.0;
    const double fair_bgood =
        runs[1].makespan_ms > 0.0
            ? fair_batch.generated_tokens / (runs[1].makespan_ms / 1000.0)
            : 0.0;
    const double batch_ratio =
        fifo_bgood > 0.0 ? fair_bgood / fifo_bgood : 1.0;
    std::printf("tokens bit-identical across modes: %s; interactive "
                "ttft p95 %.2fx better than fifo, batch goodput %.2fx\n",
                failures == 0 ? "yes" : "NO", ttft_gain, batch_ratio);

    if (f != nullptr) {
        std::fprintf(f,
                     "  \"multi_tenant\": {\n"
                     "    \"requests\": %zu, \"horizon_ms\": %.0f,\n"
                     "    \"tokens_bit_identical\": %s,\n"
                     "    \"interactive_ttft_p95_gain\": %.3f,\n"
                     "    \"batch_goodput_ratio\": %.3f,\n"
                     "    \"modes\": [\n",
                     gen.size(), horizon_ms,
                     failures == 0 ? "true" : "false", ttft_gain,
                     batch_ratio);
        for (size_t mi = 0; mi < runs.size(); ++mi) {
            const MtRun &r = runs[mi];
            int64_t total_tokens = 0;
            for (const auto &cm : r.m.per_class)
                total_tokens += cm.generated_tokens;
            std::fprintf(f,
                         "      {\"mode\": \"%s\", "
                         "\"makespan_ms\": %.1f, "
                         "\"sched_preemptions\": %lld, "
                         "\"preempt_resumes\": %lld, \"classes\": [\n",
                         modes[mi].label, r.makespan_ms,
                         static_cast<long long>(r.m.sched_preemptions),
                         static_cast<long long>(r.m.preempt_resumes));
            bool first = true;
            for (size_t c = 0; c < serve::kNumClasses; ++c) {
                const serve::ClassMetrics &cm = r.m.per_class[c];
                if (cm.completed == 0)
                    continue;
                const double share =
                    total_tokens > 0
                        ? static_cast<double>(cm.generated_tokens) /
                              static_cast<double>(total_tokens)
                        : 0.0;
                std::fprintf(
                    f,
                    "%s        {\"class\": \"%s\", \"completed\": %lld, "
                    "\"ok\": %lld, \"slo_met\": %lld, "
                    "\"goodput_tok_per_sec\": %.1f, "
                    "\"ttft_p50_ms\": %.2f, \"ttft_p95_ms\": %.2f, "
                    "\"ttft_p99_ms\": %.2f, \"latency_p50_ms\": %.2f, "
                    "\"latency_p95_ms\": %.2f, \"latency_p99_ms\": %.2f, "
                    "\"preemptions\": %lld, \"fairness_ratio\": %.3f}",
                    first ? "" : ",\n",
                    toString(static_cast<serve::PriorityClass>(c)),
                    static_cast<long long>(cm.completed),
                    static_cast<long long>(cm.ok),
                    static_cast<long long>(cm.slo_met),
                    r.makespan_ms > 0.0
                        ? cm.goodput_tokens / (r.makespan_ms / 1000.0)
                        : 0.0,
                    cm.ttft_ms.percentile(50.0),
                    cm.ttft_ms.percentile(95.0),
                    cm.ttft_ms.percentile(99.0),
                    cm.latency_ms.percentile(50.0),
                    cm.latency_ms.percentile(95.0),
                    cm.latency_ms.percentile(99.0),
                    static_cast<long long>(cm.preemptions),
                    share / (weights[c] / wsum));
                first = false;
            }
            std::fprintf(f, "\n      ]}%s\n",
                         mi + 1 < runs.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  }");
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, multi_tenant = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a(argv[i]);
        smoke = smoke || a == "--smoke";
        multi_tenant = multi_tenant || a == "--multi-tenant";
    }
    if (multi_tenant)
        return multiTenantSection(nullptr, smoke);
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--smoke")
            return smokeMain(false);
        if (arg == "--kv-packed-smoke")
            return smokeMain(true);
        if (arg == "--kv-json")
            return kvJsonMain("BENCH_serve.json");
        if (arg.rfind("--kv-json=", 0) == 0)
            return kvJsonMain(arg.substr(10));
        if (arg == "--prefix-share")
            return prefixShareSection(nullptr);
        if (arg == "--spill")
            return spillSection(nullptr);
    }

    banner("Serving: continuous batching vs static batching "
           "(Poisson arrivals)");

    const ModelConfig cfg = serveLmConfig();
    const int64_t n_requests = 64, n_slots = 4;
    const std::vector<double> rates_hz = {100.0, 300.0, 1000.0};

    std::printf("model=%s d_model=%lld layers=%d slots/batch=%lld "
                "requests=%lld prompt=4..11 budget=8..31 dtype=posit(8,1)\n",
                cfg.name.c_str(), static_cast<long long>(cfg.d_model),
                cfg.n_layers, static_cast<long long>(n_slots),
                static_cast<long long>(n_requests));
    std::printf("static fills a rigid batch and steps it until the "
                "slowest member finishes;\ncontinuous admits into any "
                "free KV slot and retires rows individually.\n\n");
    std::printf("%-10s %-12s %12s %12s %12s %10s\n", "rate", "mode",
                "tok/s", "p95 ms", "mean ms", "makespan");

    for (const double rate : rates_hz) {
        CausalLM model(cfg, 4321);
        QuantSession qs(QuantConfig::posit8());
        const Workload w = makeWorkload(17, n_requests, rate, cfg.vocab);

        // Warm both paths so first-touch allocation is off the clock.
        {
            const Workload warm = makeWorkload(3, 4, 1e9, cfg.vocab);
            runContinuous(model, qs, warm, n_slots);
            runStatic(model, qs, warm, n_slots);
        }
        const RunStats st = runStatic(model, qs, w, n_slots);
        const RunStats ct = runContinuous(model, qs, w, n_slots);

        char label[32];
        std::snprintf(label, sizeof label, "%g req/s", rate);
        std::printf("%-10s %-12s %12.0f %12.1f %12.1f %9.0fms\n", label,
                    "static", st.tokensPerSec(), st.p95_ms, st.mean_ms,
                    st.makespan_ms);
        std::printf("%-10s %-12s %12.0f %12.1f %12.1f %9.0fms  (%.2fx)\n",
                    "", "continuous", ct.tokensPerSec(), ct.p95_ms,
                    ct.mean_ms, ct.makespan_ms,
                    ct.tokensPerSec() / st.tokensPerSec());
    }
    // Shared-prefix, session-spill, and multi-tenant tables ride
    // along in the default run so bench_output.txt carries every
    // comparison.
    const int share_failures = prefixShareSection(nullptr);
    const int spill_failures = spillSection(nullptr);
    const int mt_failures = multiTenantSection(nullptr, /*smoke=*/false);
    return share_failures + spill_failures + mt_failures;
}
