/**
 * @file
 * Figure 9: reciprocal unit area and post-synthesis power at 0.9 V
 * across frequencies — HLS Newton-Raphson float units vs the posit
 * NOT-gate reciprocal.
 */
#include <cstdio>

#include "harness.h"
#include "hw/units.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Figure 9: reciprocal unit area/power vs frequency");
    std::printf("%8s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n",
                "MHz", "fp32 um2", "mW", "bf16 um2", "mW", "posit16 um2",
                "mW", "posit8 um2", "mW");
    for (double f : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        const auto r32 = synthesize(floatRecipUnit(kFp32), f);
        const auto r16 = synthesize(floatRecipUnit(kBf16), f);
        const auto p16 = synthesize(positRecipUnit(16), f);
        const auto p8 = synthesize(positRecipUnit(8), f);
        std::printf("%8.0f | %10.0f %10.3f | %10.0f %10.3f | %10.0f "
                    "%10.3f | %10.0f %10.3f\n",
                    f, r32.area_um2, r32.powerMw(), r16.area_um2,
                    r16.powerMw(), p16.area_um2, p16.powerMw(),
                    p8.area_um2, p8.powerMw());
    }
    const auto r16 = synthesize(floatRecipUnit(kBf16), 200.0);
    const auto p16 = synthesize(positRecipUnit(16), 200.0);
    std::printf("\nAt 200 MHz: posit16 reciprocal is %.0f%% smaller and "
                "uses %.0f%% less power than BF16 (paper: 85%% / 75%%).\n",
                100.0 * (1.0 - p16.area_um2 / r16.area_um2),
                100.0 * (1.0 - p16.powerMw() / r16.powerMw()));
    return 0;
}
