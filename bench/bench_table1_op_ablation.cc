/**
 * @file
 * Table 1: impact of quantizing GEMM plus one additional operation
 * class to Posit8, on span-extraction F1, for a MobileBERT-like model
 * (stacked FFNs, wide activations) vs a BERT-like model. The paper's
 * ordering: attention scaling hurts most, then activations, layernorm,
 * residual — and the MobileBERT-like model suffers far more.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

QuantConfig
gemmPlus(OpClass extra)
{
    QuantConfig cfg = QuantConfig::posit8();
    cfg.quant_attn_scaling = extra == OpClass::kAttnScaling;
    cfg.quant_activation = extra == OpClass::kActivation;
    cfg.quant_layernorm = extra == OpClass::kLayerNorm;
    cfg.quant_residual = extra == OpClass::kResidual;
    cfg.name = std::string("gemm+") + toString(extra);
    return cfg;
}

QuantConfig
gemmOnly()
{
    QuantConfig cfg = QuantConfig::posit8();
    cfg.quant_attn_scaling = false;
    cfg.quant_activation = false;
    cfg.quant_layernorm = false;
    cfg.quant_residual = false;
    cfg.name = "gemm-only";
    return cfg;
}

} // namespace

int
main()
{
    banner("Table 1: quantizing GEMM + one op class to Posit8 "
           "(span F1)");

    const std::vector<ModelConfig> models = {
        ModelConfig::mobileBertLike(), ModelConfig::bertBaseLike()};
    const int steps[] = {budget(600), budget(450)};

    std::printf("%-22s %14s %14s\n", "operations",
                models[0].name.c_str(), models[1].name.c_str());

    std::vector<std::unique_ptr<EncoderSpanQA>> trained;
    const SpanTask task(64, 24);
    for (size_t i = 0; i < models.size(); ++i) {
        auto model = std::make_unique<EncoderSpanQA>(models[i],
                                                     9000 + i);
        trainSpanBaseline(*model, task, steps[i]);
        trained.push_back(std::move(model));
    }

    auto evalRow = [&](const std::string &label, const QuantConfig &cfg) {
        std::printf("%-22s", label.c_str());
        for (auto &model : trained) {
            QuantSession qs(cfg);
            std::printf(" %14.1f",
                        evalSpanF1(*model, qs, task, kEvalSeed, 2, 32));
        }
        std::printf("\n");
    };

    evalRow("BF16", QuantConfig::bf16());
    evalRow("GEMM", gemmOnly());
    evalRow("GEMM + Residual", gemmPlus(OpClass::kResidual));
    evalRow("GEMM + LayerNorm", gemmPlus(OpClass::kLayerNorm));
    evalRow("GEMM + Activation", gemmPlus(OpClass::kActivation));
    evalRow("GEMM + Attn Scaling", gemmPlus(OpClass::kAttnScaling));

    std::printf("\nPaper shape: attention scaling worst, then "
                "activation, layernorm, residual; the MobileBERT-like "
                "model degrades far more than the BERT-like one.\n");
    return 0;
}
