/**
 * @file
 * Figure 6: per-layer activation distributions of the MobileBERT-like
 * model during span inference, against the value bands where Posit8
 * keeps 4, 3, 2 and 1 fraction bits. The stacked-FFN architecture
 * pushes activations into the low-precision bands, explaining its
 * quantization sensitivity (Table 1/2).
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

struct LayerStats
{
    std::vector<float> values;

    double
    percentileAbs(double p) const
    {
        std::vector<float> abs_vals;
        abs_vals.reserve(values.size());
        for (float v : values)
            abs_vals.push_back(std::fabs(v));
        std::sort(abs_vals.begin(), abs_vals.end());
        const size_t idx = static_cast<size_t>(
            p * static_cast<double>(abs_vals.size() - 1));
        return abs_vals[idx];
    }
};

} // namespace

int
main()
{
    banner("Figure 6: per-layer activation distribution vs Posit8 "
           "precision bands");

    // Posit(8,1) keeps 4 fraction bits for |x| in [1/4, 4), 3 bits in
    // [1/16, 1/4) u [4, 16), 2 bits in [1/64, 1/16) u [16, 64), etc.
    std::printf("Posit8 fraction-bit bands: 4b |x| in [0.25,4), "
                "3b in [0.0625,16), 2b in [0.015625,64), 1b beyond.\n\n");

    const ModelConfig cfg = ModelConfig::mobileBertLike();
    const SpanTask task(64, 24);
    EncoderSpanQA model(cfg, 9000);
    trainSpanBaseline(model, task, budget(700));

    // Capture each block's output during evaluation.
    QuantSession qs(QuantConfig::bf16());
    Rng rng(kEvalSeed);
    const SpanBatch batch = task.sample(rng, 32);

    std::vector<LayerStats> stats(
        static_cast<size_t>(cfg.n_layers) + 1);

    Tensor x = model.encoder.embed.forward(qs, batch.ids, batch.batch,
                                           batch.seq);
    x = model.encoder.embed_ln->forward(qs, x);
    for (int64_t i = 0; i < x.numel(); ++i)
        stats[0].values.push_back(x.at(i));
    for (size_t l = 0; l < model.encoder.blocks.size(); ++l) {
        x = model.encoder.blocks[l]->forward(qs, x, batch.batch,
                                             batch.seq,
                                             batch.pad.data(), false);
        for (int64_t i = 0; i < x.numel(); ++i)
            stats[l + 1].values.push_back(x.at(i));
    }

    std::printf("%-10s %10s %10s %10s %10s %14s\n", "layer", "p50|x|",
                "p90|x|", "p99|x|", "max|x|", "frac bits @p99");
    for (size_t l = 0; l < stats.size(); ++l) {
        const double p99 = stats[l].percentileAbs(0.99);
        int bits = 4;
        if (p99 >= 64 || p99 < 0.015625)
            bits = 1;
        else if (p99 >= 16 || p99 < 0.0625)
            bits = 2;
        else if (p99 >= 4 || p99 < 0.25)
            bits = 3;
        std::printf("%-10s %10.3f %10.3f %10.3f %10.3f %14d\n",
                    l == 0 ? "embed" :
                             ("block" + std::to_string(l - 1)).c_str(),
                    stats[l].percentileAbs(0.50),
                    stats[l].percentileAbs(0.90), p99,
                    stats[l].percentileAbs(1.0), bits);
    }

    // Also report the widest tensor in the attention path: the
    // unscaled Q.K^T scores that make attention-scaling quantization
    // the most damaging op class.
    QuantSession qs2(QuantConfig::bf16());
    model.forward(qs2, batch.ids, batch.batch, batch.seq,
                  batch.pad.data());
    double worst = 0.0;
    for (auto &block : model.encoder.blocks)
        worst = std::max(worst, block->attn.lastUnscaledAmax());
    std::printf("\nmax |unscaled attention| across layers: %.1f "
                "(posit8 keeps %s fraction bits there)\n",
                worst,
                worst >= 64 ? "<=1" : (worst >= 16 ? "2" : ">=3"));
    return 0;
}
