/**
 * @file
 * Shared plumbing for the paper-reproduction benches: the data-type
 * configurations, fusion schedule, backbone pre-training helpers and
 * table printing. Every bench prints the table/figure it regenerates
 * with the same rows/series the paper reports (see EXPERIMENTS.md).
 *
 * Set QT8_QUICK=1 in the environment to shrink training budgets for a
 * fast smoke run of all benches.
 */
#ifndef QT8_BENCH_HARNESS_H
#define QT8_BENCH_HARNESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/eval.h"
#include "nn/model.h"
#include "quant/config.h"

namespace qt8::bench {

/// True when QT8_QUICK=1 (shrunken training budgets).
bool quickMode();

/// steps in full mode, a reduced count in quick mode.
int budget(int full_steps);

/// The incremental fusion schedule, in table-column order.
const std::vector<FusionLevel> &fusionLevels();

/// Print a horizontal rule and a table title.
void banner(const std::string &title);

/**
 * Train a span-extraction baseline in FP32 (the stand-in for a
 * fine-tuned checkpoint downloaded from the hub).
 */
void trainSpanBaseline(EncoderSpanQA &model, const SpanTask &task,
                       int steps, uint64_t data_seed = 1234);

/**
 * Produce a pre-trained encoder backbone: span pre-training teaches
 * content matching; a QNLI-like phase teaches CLS aggregation. The
 * trained weights are copied into @p dst (which must share the config).
 */
void pretrainBackbone(TransformerEncoder &dst, const ModelConfig &cfg,
                      uint64_t seed, int span_steps, int qnli_steps);

/// The evaluation seed used by every bench (fixed for determinism).
inline constexpr uint64_t kEvalSeed = 20240427;

} // namespace qt8::bench

#endif // QT8_BENCH_HARNESS_H
