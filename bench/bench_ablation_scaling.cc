/**
 * @file
 * Ablation (section 5.1): per-tensor scaling amax target for Posit8
 * gradients. Scaling amax to posit maxpos (4096) wastes the format's
 * precision (values near maxpos have almost no fraction bits); the
 * paper found amax -> 64 best. Also includes the no-scaling baseline.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

namespace {

double
runTraining(double target, bool scaling, double *final_loss)
{
    const PairTask task(PairTask::Kind::kSst2, 64, 25);
    ModelConfig cfg;
    cfg.name = "ablation";
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    EncoderClassifier model(cfg, task.numClasses(), 7901);

    QuantConfig qcfg = QuantConfig::posit8();
    qcfg.per_tensor_scaled_grads = scaling;
    qcfg.scaling_target_override = target;

    QuantSession qs(qcfg);
    TrainOptions opts;
    opts.steps = budget(300);
    opts.batch = 16;
    opts.lr = 2e-3;
    const TrainResult r = trainCls(model, qs, task, opts);
    *final_loss = r.final_loss;
    QuantSession eval_qs(qcfg);
    return evalClsAccuracy(model, eval_qs, task, kEvalSeed, 4, 32);
}

} // namespace

int
main()
{
    banner("Ablation: Posit8 per-tensor scaling amax target "
           "(section 5.1)");

    std::printf("%-26s %12s %12s\n", "gradient scaling", "final loss",
                "accuracy");
    for (const auto &[label, target, scaling] :
         {std::tuple<const char *, double, bool>{"none", 0.0, false},
          {"amax -> 4096 (maxpos)", 4096.0, true},
          {"amax -> 512", 512.0, true},
          {"amax -> 64 (paper)", 64.0, true},
          {"amax -> 8", 8.0, true}}) {
        double loss = 0.0;
        const double acc = runTraining(target, scaling, &loss);
        std::printf("%-26s %12.4f %12.2f\n", label, loss, acc);
        std::fflush(stdout);
    }
    std::printf("\nPaper claim: scaling amax to maxpos is ineffective "
                "due to tapered precision; amax -> 64 works best.\n");
    return 0;
}
