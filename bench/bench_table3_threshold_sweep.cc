/**
 * @file
 * Table 3: the approximate-exponential threshold (theta) and shift
 * (epsilon) sweep on the MobileBERT-like span model. "Accuracy 1" uses
 * thresholding only; "Accuracy 2" additionally shifts the curve down by
 * epsilon = (approximate value at the threshold), aligning it with the
 * true exponential.
 */
#include <cstdio>

#include "harness.h"
#include "numerics/posit_ops.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Table 3: approximate exponential theta/epsilon sweep "
           "(span F1, MobileBERT-like)");

    const SpanTask task(64, 24);
    EncoderSpanQA model(ModelConfig::mobileBertLike(), 9000);
    trainSpanBaseline(model, task, budget(700));

    QuantSession bf(QuantConfig::bf16());
    const double baseline = evalSpanF1(model, bf, task, kEvalSeed, 2, 32);

    // Quantized-but-exact-softmax reference (posit8, full fusion as the
    // Table 2 bold configuration for MobileBERT).
    QuantSession p8(QuantConfig::posit8().withFusion(
        FusionLevel::kResidual));
    const double p8_exact =
        evalSpanF1(model, p8, task, kEvalSeed, 2, 32);

    std::printf("%-10s %12s %12s %12s\n", "theta", "epsilon",
                "accuracy 1", "accuracy 2");
    for (double theta : {-5.0, -4.0, -3.0, -2.0}) {
        // Epsilon aligns the curve to zero at the threshold:
        // eps = 1/S(-theta) under the bit tricks.
        const PositSpec &spec = posit8_1();
        const double eps = spec.decode(approxReciprocalCode(
            spec,
            approxSigmoidCode(spec, spec.encode(-theta))));

        QuantConfig thresh_only = QuantConfig::posit8().withFusion(
            FusionLevel::kResidual);
        thresh_only.softmax = SoftmaxMode::kApproxExp;
        thresh_only.approx_exp.theta = theta;
        thresh_only.approx_exp.shift = false;

        QuantConfig shifted = thresh_only;
        shifted.approx_exp.shift = true;
        shifted.approx_exp.epsilon = eps;

        QuantSession qs1(thresh_only);
        QuantSession qs2(shifted);
        std::printf("%-10.1f %12.4f %12.1f %12.1f\n", theta, eps,
                    evalSpanF1(model, qs1, task, kEvalSeed, 2, 32),
                    evalSpanF1(model, qs2, task, kEvalSeed, 2, 32));
        std::fflush(stdout);
    }
    std::printf("%-10s %12s %12.1f (BF16) / %.1f (posit8 exact "
                "softmax)\n",
                "baseline", "-", baseline, p8_exact);
    std::printf("\nPaper shape: accuracy 1 peaks at an intermediate "
                "theta; the epsilon shift recovers to within ~0.5%% of "
                "the quantized exact-softmax baseline.\n");
    return 0;
}
