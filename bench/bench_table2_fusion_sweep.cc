/**
 * @file
 * Table 2: span F1 under Posit8 and E4M3 with incremental operation
 * fusion, across the encoder model ladder (mobilebert-tiny-like ...
 * bert-large-like). Fusion is applied in sensitivity order; the paper
 * finds small stacked-FFN models need full fusion to stay within 1% of
 * BF16 while BERT-like models are robust even without fusion.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Table 2: F1 vs fusion level (Posit8 / E4M3)");

    struct Row
    {
        ModelConfig cfg;
        int steps;
    };
    const std::vector<Row> rows = {
        {ModelConfig::mobileBertTinyLike(), budget(400)},
        {ModelConfig::mobileBertLike(), budget(700)},
        {ModelConfig::distilBertLike(), budget(350)},
        {ModelConfig::bertBaseLike(), budget(350)},
        {ModelConfig::bertLargeLike(), budget(300)},
    };

    const SpanTask task(64, 24);

    std::printf("%-22s %6s |", "model", "bf16");
    for (FusionLevel lvl : fusionLevels())
        std::printf(" %13s(p8/e4m3)", toString(lvl));
    std::printf("\n");

    for (size_t i = 0; i < rows.size(); ++i) {
        EncoderSpanQA model(rows[i].cfg, 9000 + i);
        trainSpanBaseline(model, task, rows[i].steps);

        QuantSession bf(QuantConfig::bf16());
        const double bf16_f1 =
            evalSpanF1(model, bf, task, kEvalSeed, 2, 32);
        std::printf("%-22s %6.1f |", rows[i].cfg.name.c_str(), bf16_f1);

        for (FusionLevel lvl : fusionLevels()) {
            QuantSession p8(QuantConfig::posit8().withFusion(lvl));
            QuantSession e4(QuantConfig::fp8().withFusion(lvl));
            std::printf("     %6.1f/%6.1f",
                        evalSpanF1(model, p8, task, kEvalSeed, 2, 32),
                        evalSpanF1(model, e4, task, kEvalSeed, 2, 32));
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\nPaper shape: accuracy improves with fusion level; "
                "MobileBERT-like models need full fusion for <1%% drop; "
                "BERT-like models are robust even unfused.\n");
    return 0;
}
