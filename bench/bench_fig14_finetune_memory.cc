/**
 * @file
 * Figure 14: MobileBERT_tiny fine-tuning memory (sequence length 128,
 * batch 16, AdamW) for full 16-bit fine-tuning, LoRA in 16-bit, and
 * LoRA + 8-bit quantization. "Error" is the live activation gradient.
 */
#include <cstdio>

#include "harness.h"
#include "hw/memory_model.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Figure 14: fine-tuning memory breakdown (MB)");

    const TransformerDims dims = TransformerDims::mobileBertTiny();
    std::printf("model: %.1fM parameters, seq 128, batch 16, AdamW\n\n",
                dims.totalParams() / 1e6);

    MemorySetup full;
    MemorySetup lora16;
    lora16.lora = true;
    MemorySetup lora8 = lora16;
    lora8.weight_bits = 8;
    lora8.act_bits = 8;
    lora8.error_bits = 8;

    std::printf("%-18s %9s %9s %9s %9s %9s %10s\n", "setup", "params",
                "w-grad", "optim", "activ", "error", "total");
    const MemoryBreakdown m_full = finetuneMemory(dims, full);
    const MemoryBreakdown m_l16 = finetuneMemory(dims, lora16);
    const MemoryBreakdown m_l8 = finetuneMemory(dims, lora8);
    for (const auto &[name, m] :
         {std::pair<const char *, const MemoryBreakdown &>{
              "full FT (16b)", m_full},
          {"LoRA (16b)", m_l16},
          {"LoRA + 8-bit", m_l8}}) {
        std::printf("%-18s %9.1f %9.1f %9.1f %9.1f %9.1f %10.1f\n",
                    name, m.params_mb, m.weight_grad_mb,
                    m.optimizer_mb, m.activations_mb, m.error_mb,
                    m.totalMb());
    }
    std::printf("\nTotal reduction full -> LoRA+8bit: %.2fx "
                "(paper: approximately 3x).\n",
                m_full.totalMb() / m_l8.totalMb());
    return 0;
}
