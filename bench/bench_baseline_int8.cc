/**
 * @file
 * Baseline comparison (paper section 1 motivation): int8 post-training
 * quantization needs dynamic scaling factors — and usually per-channel
 * weight scaling — to stay accurate, whereas Posit8 and FP8 reach
 * BF16-level accuracy through operation fusion alone, with no scaling
 * factors at all.
 */
#include <cstdio>

#include "harness.h"

using namespace qt8;
using namespace qt8::bench;

int
main()
{
    banner("Baseline: int8 (per-tensor / per-channel) vs Posit8 / FP8 "
           "PTQ (span F1)");

    const std::vector<std::pair<ModelConfig, int>> models = {
        {ModelConfig::mobileBertLike(), budget(600)},
        {ModelConfig::bertBaseLike(), budget(450)},
    };

    const SpanTask task(64, 24);
    std::vector<std::unique_ptr<EncoderSpanQA>> trained;
    for (size_t i = 0; i < models.size(); ++i) {
        auto m = std::make_unique<EncoderSpanQA>(models[i].first,
                                                 9900 + i);
        trainSpanBaseline(*m, task, models[i].second);
        trained.push_back(std::move(m));
    }

    std::printf("%-26s %16s %16s\n", "config",
                models[0].first.name.c_str(),
                models[1].first.name.c_str());
    auto row = [&](const char *label, const QuantConfig &cfg) {
        std::printf("%-26s", label);
        for (auto &m : trained) {
            QuantSession qs(cfg);
            std::printf(" %16.1f",
                        evalSpanF1(*m, qs, task, kEvalSeed, 2, 32));
        }
        std::printf("\n");
        std::fflush(stdout);
    };

    row("BF16", QuantConfig::bf16());
    row("int8 per-tensor", QuantConfig::int8PerTensor());
    row("int8 per-channel W",
        QuantConfig::int8PerChannel());
    row("posit8 (full fusion)",
        QuantConfig::posit8().withFusion(FusionLevel::kResidual));
    row("e4m3 (full fusion)",
        QuantConfig::fp8().withFusion(FusionLevel::kResidual));
    row("posit8 (no fusion)", QuantConfig::posit8());
    row("e4m3 (no fusion)", QuantConfig::fp8());

    std::printf("\nPaper motivation: int8 requires scaling machinery "
                "(per-channel for weights) while the 8-bit float "
                "formats need none.\n");
    return 0;
}
