/**
 * @file
 * Figure 13: full-accelerator standard-cell + SRAM-macro area and
 * post-synthesis power at 200 MHz / 0.9 V, for 8x8, 16x16 and 32x32
 * arrays in BF16 / Posit8 / hybrid FP8 / E4M3 / E5M2.
 */
#include <cstdio>

#include "harness.h"
#include "hw/accelerator.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Figure 13: accelerator area & power @200MHz, 0.9V");

    for (int n : {8, 16, 32}) {
        std::printf("\n%dx%d array / %d-lane vector unit\n", n, n, n);
        std::printf("  %-8s %12s %12s %32s\n", "dtype", "area mm2",
                    "power mW", "breakdown (array/vu/sram/ctrl)");
        double bf16_area = 0.0;
        double bf16_power = 0.0;
        for (const char *d :
             {"bf16", "posit8", "fp8", "e4m3", "e5m2"}) {
            AcceleratorConfig cfg;
            cfg.dtype = d;
            cfg.array_n = n;
            const auto rep = buildAccelerator(cfg);
            double sram = 0.0, ctrl = 0.0;
            for (const auto &c : rep.components) {
                if (c.name.find("sram") != std::string::npos)
                    sram += c.area_um2;
                if (c.name == "control_logic")
                    ctrl += c.area_um2;
            }
            std::printf(
                "  %-8s %12.4f %12.2f   %6.3f/%6.3f/%6.3f/%6.3f mm2",
                d, rep.totalAreaMm2(), rep.totalPowerMw(),
                rep.find("systolic_array").area_um2 * 1e-6,
                rep.find("vector_unit").area_um2 * 1e-6, sram * 1e-6,
                ctrl * 1e-6);
            if (std::string(d) == "bf16") {
                bf16_area = rep.totalAreaMm2();
                bf16_power = rep.totalPowerMw();
                std::printf("   (baseline)\n");
            } else {
                std::printf("   (-%4.1f%% area, -%4.1f%% power)\n",
                            100.0 * (1.0 - rep.totalAreaMm2() /
                                               bf16_area),
                            100.0 * (1.0 - rep.totalPowerMw() /
                                               bf16_power));
            }
        }
    }
    std::printf("\nPaper headline: Posit8 -30%% area / -26%% power, FP8 "
                "-34%% / -32%% vs BF16 on average.\n");
    return 0;
}
