/**
 * @file
 * Table 8: vector unit area and power, Posit8 vs FP8 accelerators, at
 * 8/16/32 lanes (200 MHz, 0.9 V). The posit vector unit replaces the
 * HLS exponential and reciprocal with the bit-trick units.
 */
#include <cstdio>

#include "harness.h"
#include "hw/accelerator.h"

using namespace qt8;
using namespace qt8::hw;

int
main()
{
    bench::banner("Table 8: vector unit, Posit8 vs FP8");
    std::printf("%8s | %10s %10s %7s | %10s %10s %7s\n", "lanes",
                "posit8 mm2", "fp8 mm2", "area v", "posit8 mW",
                "fp8 mW", "power v");
    double sum_area = 0.0, sum_power = 0.0;
    for (int lanes : {8, 16, 32}) {
        const auto vp = vectorUnitReport("posit8", lanes, 200.0);
        const auto vf = vectorUnitReport("fp8", lanes, 200.0);
        const double da = 100.0 * (1.0 - vp.area_um2 / vf.area_um2);
        const double dp = 100.0 * (1.0 - vp.powerMw() / vf.powerMw());
        sum_area += da;
        sum_power += dp;
        std::printf("%8d | %10.4f %10.4f -%5.1f%% | %10.2f %10.2f "
                    "-%5.1f%%\n",
                    lanes, vp.areaMm2(), vf.areaMm2(), da, vp.powerMw(),
                    vf.powerMw(), dp);
    }
    std::printf("%8s | %21s -%5.1f%% | %21s -%5.1f%%\n", "average", "",
                sum_area / 3.0, "", sum_power / 3.0);
    std::printf("\nPaper: average -33%% area, -35%% power.\n");
    return 0;
}
