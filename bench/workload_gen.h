/**
 * @file
 * Seeded open-loop workload generator for the multi-tenant serving
 * bench (DESIGN.md §16): a three-class transaction mix in the TPC-C
 * spirit — short interactive chat turns with sessions, prefill-heavy
 * long-document requests, and offline batch jobs — each class with its
 * own Poisson arrival process, prompt/budget distributions, tenant
 * population, and SLO targets.
 *
 * Generation is fully deterministic: every draw comes from per-class
 * seeded xoshiro streams (never the wall clock), so the same config
 * produces a byte-identical schedule — `fingerprint()` serializes a
 * schedule so tests can assert exactly that. Chat sessions emit one
 * GenRequest per turn; turn n+1's prompt holds only the *new* user
 * tokens (the driver concatenates history + the model's turn-n output
 * before submitting), because the full prompt depends on runtime
 * decode results the generator cannot know.
 */
#ifndef QT8_BENCH_WORKLOAD_GEN_H
#define QT8_BENCH_WORKLOAD_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace qt8::bench {

/// One class of the transaction mix.
struct ClassSpec
{
    serve::PriorityClass cls = serve::PriorityClass::kStandard;
    double arrival_hz = 1.0; ///< Open-loop Poisson session-arrival rate.
    int64_t prompt_lo = 8;   ///< Prompt tokens, uniform [lo, hi].
    int64_t prompt_hi = 16;
    int64_t budget_lo = 4; ///< Decode budget, uniform [lo, hi].
    int64_t budget_hi = 8;
    int n_tenants = 1;        ///< Tenants cycle round-robin.
    uint64_t tenant_base = 1; ///< Ids [base, base + n_tenants).
    int turns_lo = 1; ///< Turns per session, uniform [lo, hi];
    int turns_hi = 1; ///< 1 = sessionless one-shot requests.
    double think_ms_lo = 0.0; ///< Uniform think time before the next
    double think_ms_hi = 0.0; ///< turn of the same session submits.
    double ttft_slo_ms = 0.0;    ///< Class TTFT target (0 = none).
    double latency_slo_ms = 0.0; ///< Class end-to-end target.
};

/// One generated arrival. For turn > 0 the prompt holds only the new
/// user tokens; arrival_ms is the *session* arrival (the driver
/// submits the turn after its predecessor resolves + think_ms).
struct GenRequest
{
    double arrival_ms = 0.0;
    serve::PriorityClass cls = serve::PriorityClass::kStandard;
    uint64_t tenant_id = 0;
    uint64_t session_id = 0; ///< 0 = sessionless.
    int turn = 0;            ///< 0-based turn index in its session.
    int turns = 1;           ///< Total turns in the session.
    double think_ms = 0.0;   ///< Delay before the next turn submits.
    std::vector<int32_t> prompt;
    int64_t max_new_tokens = 0;
};

struct WorkloadConfig
{
    uint64_t seed = 1;
    double horizon_ms = 1000.0; ///< Session arrivals land in [0, horizon).
    int32_t vocab = 64;         ///< Tokens drawn from [first, vocab).
    int32_t first_token = 8;    ///< Reserve the control-token range.
    std::vector<ClassSpec> classes;
};

/// The canonical three-class mix used by `bench_serve --multi-tenant`:
/// interactive chat (sessions, tight TTFT SLO), standard long-doc
/// prefill (latency SLO), and offline batch (no SLO, biggest budgets).
WorkloadConfig defaultMix(uint64_t seed, double horizon_ms,
                          int32_t vocab, int32_t first_token);

/// Deterministic generation, sorted by (arrival_ms, session, turn).
std::vector<GenRequest> generate(const WorkloadConfig &cfg);

/// Canonical byte serialization of a schedule: equal strings iff the
/// schedules are identical field-for-field (determinism tests).
std::string fingerprint(const std::vector<GenRequest> &reqs);

} // namespace qt8::bench

#endif // QT8_BENCH_WORKLOAD_GEN_H
