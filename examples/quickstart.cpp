/**
 * @file
 * Quickstart: the number formats, fake quantization, per-tensor
 * scaling, and running one quantized Transformer forward pass.
 *
 * Build: cmake -B build -G Ninja && cmake --build build
 * Run:   ./build/examples/quickstart
 */
#include <cstdio>

#include "data/tasks.h"
#include "nn/model.h"
#include "numerics/posit_ops.h"
#include "numerics/quantizer.h"
#include "quant/config.h"
#include "tensor/random.h"

using namespace qt8;

int
main()
{
    // --- 1. Number formats -------------------------------------------------
    std::printf("Posit8 = posit(8,1): maxpos %.0f, minpos 2^-12\n",
                posit8_1().maxpos());
    std::printf("  0x1B decodes to %.6f (paper Figure 1 example)\n",
                posit8_1().decode(0x1B));

    // Fake quantization: round any float onto a format's value grid.
    const Quantizer p8 = Quantizer::byName("posit8");
    const Quantizer e4m3 = Quantizer::byName("e4m3");
    for (float x : {0.1234f, 3.7f, 117.0f, 9999.0f}) {
        std::printf("  x=%9.4f -> posit8 %9.4f | e4m3 %9.4f\n", x,
                    p8.quantize(x), e4m3.quantize(x));
    }

    // Per-tensor scaling rescues tiny gradients (section 5.1).
    TensorScaler scaler(p8);
    std::vector<float> grads(8, 3e-6f);
    scaler.quantizeInPlace(grads.data(), grads.size());
    std::printf("  3e-6 gradient after scaled posit8 quantization: %g\n",
                grads[0]);

    // Posit bit tricks (section 3.3).
    std::printf("  approx sigmoid(1.0)=%.4f  approx 1/3=%.4f  "
                "approx exp(-1)=%.4f\n",
                approxSigmoid(posit8_1(), 1.0),
                approxReciprocal(posit8_1(), 3.0),
                approxExp(posit8_1(), -1.0, ApproxExpConfig{}));

    // --- 2. A quantized Transformer forward pass --------------------------
    ModelConfig cfg;
    cfg.name = "quickstart";
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    EncoderSpanQA model(cfg, /*seed=*/42);

    const SpanTask task(cfg.vocab, 24);
    Rng rng(7);
    const SpanBatch batch = task.sample(rng, 4);

    // Same weights, three data-type configurations.
    for (const QuantConfig &qcfg :
         {QuantConfig::bf16(), QuantConfig::posit8(),
          QuantConfig::fp8()}) {
        QuantSession qs(qcfg);
        const Tensor logits = model.forward(qs, batch.ids, batch.batch,
                                            batch.seq, batch.pad.data());
        std::printf("  %-8s first start-logit %8.4f\n",
                    qcfg.name.c_str(), logits.at(0, 0));
    }

    std::printf("\nSee examples/ptq_span_inference.cpp and "
                "examples/lora_finetune_8bit.cpp for end-to-end "
                "workflows.\n");
    return 0;
}
