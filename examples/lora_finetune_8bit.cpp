/**
 * @file
 * 8-bit LoRA fine-tuning workflow (paper section 5.3): load a
 * pre-trained backbone, attach LoRA adapters, and fine-tune entirely in
 * Posit8 — frozen base weights stored in 8 bits, LoRA factors in
 * 16 bits quantized and merged per Eq. 7, activations and gradients in
 * 8 bits with per-tensor scaling, and the posit approximate softmax.
 */
#include <cstdio>

#include "data/eval.h"

using namespace qt8;

int
main()
{
    ModelConfig cfg;
    cfg.name = "demo";
    cfg.d_model = 32;
    cfg.d_ff = 64;
    cfg.n_heads = 2;
    cfg.n_layers = 2;

    // --- "Pre-trained checkpoint": span-task training in FP32 -------------
    const SpanTask span(cfg.vocab, 24);
    EncoderSpanQA pretrained(cfg, 1);
    {
        QuantSession fp32(QuantConfig::fp32());
        TrainOptions opts;
        opts.steps = 900;
        opts.batch = 16;
        opts.lr = 2e-3;
        std::printf("pre-training backbone (FP32)...\n");
        trainSpan(pretrained, fp32, span, opts);
    }

    // --- Downstream task: QNLI-like classification ------------------------
    const PairTask task(PairTask::Kind::kQnli, cfg.vocab, 25);
    EncoderClassifier model(cfg, task.numClasses(), 2);
    ParamList dst, src;
    model.encoder.collectParams(dst);
    pretrained.encoder.collectParams(src);
    copyParamValues(dst, src);

    // LoRA rank 8 on q/v; base weights freeze.
    model.enableLora(8, 2.0f, /*all_dense=*/false);
    ParamList params;
    model.collectParams(params);
    std::printf("trainable params: %lld of %lld (%.1f%%)\n",
                static_cast<long long>(countTrainable(params)),
                static_cast<long long>(countTotal(params)),
                100.0 * countTrainable(params) / countTotal(params));

    // Fine-tune under Posit8 with the approximate softmax.
    QuantSession qs(QuantConfig::posit8Approx());
    TrainOptions opts;
    opts.steps = 500;
    opts.batch = 16;
    opts.lr = 5e-3;
    std::printf("fine-tuning with 8-bit LoRA (posit8 + approx "
                "softmax)...\n");
    const TrainResult r = trainCls(model, qs, task, opts);
    std::printf("final loss %.3f (diverged=%d)\n", r.final_loss,
                r.diverged);

    QuantSession eval_qs(QuantConfig::posit8Approx());
    std::printf("accuracy (8-bit inference): %.1f%%\n",
                evalClsAccuracy(model, eval_qs, task, 2024, 4, 32));
    return 0;
}
