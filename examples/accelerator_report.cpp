/**
 * @file
 * Accelerator design-space report (paper section 7): area and power of
 * the systolic-array + vector-unit accelerator for each data type, with
 * the component breakdown and the fine-tuning memory model.
 */
#include <cstdio>

#include "hw/accelerator.h"
#include "hw/memory_model.h"

using namespace qt8::hw;

int
main()
{
    AcceleratorConfig cfg;
    cfg.array_n = 16;
    cfg.freq_mhz = 200.0;

    for (const char *dtype : {"bf16", "posit8", "fp8"}) {
        cfg.dtype = dtype;
        const AcceleratorReport rep = buildAccelerator(cfg);
        std::printf("\n%s accelerator (%dx%d @ %.0f MHz):\n", dtype,
                    cfg.array_n, cfg.array_n, cfg.freq_mhz);
        for (const auto &c : rep.components) {
            std::printf("  %-16s %10.4f mm2 %10.3f mW\n",
                        c.name.c_str(), c.area_um2 * 1e-6, c.power_mw);
        }
        std::printf("  %-16s %10.4f mm2 %10.3f mW\n", "TOTAL",
                    rep.totalAreaMm2(), rep.totalPowerMw());
    }

    std::printf("\nFine-tuning memory (MobileBERT_tiny-scale, "
                "batch 16 x seq 128):\n");
    const TransformerDims dims = TransformerDims::mobileBertTiny();
    MemorySetup lora8;
    lora8.lora = true;
    lora8.weight_bits = 8;
    lora8.act_bits = 8;
    lora8.error_bits = 8;
    const MemoryBreakdown m = finetuneMemory(dims, lora8);
    std::printf("  LoRA + 8-bit: %.1f MB total (params %.1f, "
                "activations %.1f)\n",
                m.totalMb(), m.params_mb, m.activations_mb);
    return 0;
}
