/**
 * @file
 * Interactive-style tour of the posit approximate softmax (paper
 * section 4.1/5.2): compares exact, posit-quantized, and fully
 * approximate softmax on a row of attention scores, forward and
 * backward.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "numerics/posit_ops.h"

using namespace qt8;

int
main()
{
    const int k = 8;
    std::vector<float> z = {2.1f, 0.3f, -0.7f, 1.4f,
                            -3.2f, 0.0f, -1e9f, -1e9f}; // last two masked

    // Exact float softmax.
    std::vector<double> exact(k);
    double m = z[0];
    for (float v : z)
        m = std::max(m, static_cast<double>(v));
    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
        exact[static_cast<size_t>(i)] = std::exp(z[static_cast<size_t>(i)] - m);
        sum += exact[static_cast<size_t>(i)];
    }
    for (auto &e : exact)
        e /= sum;

    // Posit softmax variants.
    auto run = [&](bool ax, bool ar, const char *label) {
        ApproxPositSoftmax sm(posit8_1(), ApproxExpConfig{}, ax, ar);
        std::vector<float> out(k), e(k);
        double s = 0.0;
        sm.forward(z.data(), out.data(), k, e.data(), &s);
        std::printf("%-28s", label);
        for (int i = 0; i < k; ++i)
            std::printf(" %7.4f", out[static_cast<size_t>(i)]);
        std::printf("\n");
        return out;
    };

    std::printf("%-28s", "exact float softmax");
    for (int i = 0; i < k; ++i)
        std::printf(" %7.4f", exact[static_cast<size_t>(i)]);
    std::printf("\n");

    run(false, false, "posit8, exact exp+div");
    run(true, false, "posit8, approx exp");
    run(false, true, "posit8, approx recip");
    const auto out = run(true, true, "posit softmax (both)");

    // Backward with the re-derived gradient (Eq. 4/5).
    ApproxPositSoftmax sm(posit8_1(), ApproxExpConfig{});
    std::vector<float> out2(k), e(k), g(k, 0.0f), gin(k);
    double s = 0.0;
    sm.forward(z.data(), out2.data(), k, e.data(), &s);
    g[0] = 1.0f; // dL/d(sigma_0)
    sm.backward(g.data(), out2.data(), e.data(), s, gin.data(), k);
    std::printf("\nbackward (dL/dz for dL/dsigma_0 = 1):\n%-28s", "");
    for (int i = 0; i < k; ++i)
        std::printf(" %7.4f", gin[static_cast<size_t>(i)]);
    std::printf("\n\nMasked positions receive exactly zero probability "
                "and zero gradient (threshold optimization).\n");
    (void)out;
    return 0;
}
