/**
 * @file
 * Post-training quantization workflow (paper section 4): train a span
 * extraction model in FP32, then evaluate it under Posit8 and FP8 with
 * each operation-fusion level, reproducing the Table 2 methodology on
 * one model.
 */
#include <cstdio>

#include "data/eval.h"

using namespace qt8;

int
main()
{
    const ModelConfig cfg = ModelConfig::distilBertLike();
    const SpanTask task(cfg.vocab, 24);
    EncoderSpanQA model(cfg, 123);

    std::printf("training %s on the span task (FP32)...\n",
                cfg.name.c_str());
    QuantSession fp32(QuantConfig::fp32());
    TrainOptions opts;
    opts.steps = 800;
    opts.batch = 16;
    opts.lr = 2e-3;
    trainSpan(model, fp32, task, opts);

    QuantSession bf(QuantConfig::bf16());
    std::printf("BF16 F1: %.1f\n\n",
                evalSpanF1(model, bf, task, 2024, 3, 32));

    std::printf("%-16s %10s %10s\n", "fusion level", "posit8", "e4m3");
    for (FusionLevel lvl :
         {FusionLevel::kNone, FusionLevel::kAttnScaling,
          FusionLevel::kActivation, FusionLevel::kLayerNorm,
          FusionLevel::kResidual}) {
        QuantSession p8(QuantConfig::posit8().withFusion(lvl));
        QuantSession f8(QuantConfig::fp8().withFusion(lvl));
        std::printf("%-16s %10.1f %10.1f\n", toString(lvl),
                    evalSpanF1(model, p8, task, 2024, 3, 32),
                    evalSpanF1(model, f8, task, 2024, 3, 32));
    }
    return 0;
}
