/**
 * @file
 * Paged KV cache pool with shared-prefix radix reuse: the paging
 * analogue of KVCachePool. Instead of reserving `capacity` rows per
 * slot up front, the pool owns a global arena of fixed `page_size`-row
 * pages (per layer, K and V, self plus optional Seq2Seq cross panels)
 * and each request holds an ordered *page table*; logical row r lives
 * at physical row pages[r / page_size] * page_size + r % page_size of
 * every layer's panel. Peak concurrency is bound by rows actually
 * cached, not worst-case sequence length.
 *
 * Pages are refcounted, which enables the radix prefix cache: a trie
 * over page_size-token prompt chunks where each node owns one full
 * read-only page of that chunk's K/V rows. Requests whose prompt
 * shares a cached prefix map the same pages (O(1) admission for the
 * shared rows — the "millions of users hammering the same assistant
 * prompt" scenario), with copy-on-write when a request diverges inside
 * a cached page and LRU reclamation of unreferenced cache leaves when
 * the free list runs dry. Correctness leans on the repo-wide identity
 * discipline: a position-t KV row depends only on tokens 0..t (causal
 * attention, element-wise static-grid quantization), so a cached row
 * is bit-identical to the row the request would have computed itself.
 *
 * Free/evicted pages are never scrubbed — page tables alone define
 * visibility, so dirty-page reuse decodes identically (pinned by
 * paged_kv_test).
 */
#ifndef QT8_SERVE_PAGED_KV_H
#define QT8_SERVE_PAGED_KV_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/attention.h"

namespace qt8::serve {

/// Per-request paged cache state: the self-attention page table plus
/// (Seq2Seq) the privately-owned cross-attention pages.
struct PagedSeq
{
    std::vector<int32_t> pages; ///< Self page table, in logical order.
    int64_t len = 0;            ///< Cached self rows (visible prefix).
    int64_t shared_rows = 0;    ///< Leading rows adopted from the cache.
    std::vector<int32_t> cross_pages; ///< Cross table (primed once).
    int64_t cross_len = 0;            ///< Cached cross rows.
};

class PagedKVPool
{
  public:
    struct Config
    {
        int64_t n_pages = 0;    ///< Self-arena pages.
        int64_t page_size = 16; ///< Rows per page.
        int64_t d_model = 0;
        size_t n_self_layers = 0;
        size_t n_cross_layers = 0;  ///< Seq2Seq decoder layers (0 = LM).
        int64_t n_cross_pages = 0;  ///< Cross-arena pages.
        const Quantizer *packed_fmt = nullptr; ///< Borrowed; see KVSlots.
        bool prefix_cache = true;   ///< Enable the radix prefix cache.
    };

    explicit PagedKVPool(const Config &cfg);
    ~PagedKVPool();

    int64_t pageSize() const { return cfg_.page_size; }
    int64_t pageCount() const { return cfg_.n_pages; }
    bool packed() const { return cfg_.packed_fmt != nullptr; }
    bool prefixCacheEnabled() const { return cfg_.prefix_cache; }

    /// Pages needed to hold @p rows rows.
    static int64_t pagesFor(int64_t rows, int64_t page_size)
    {
        return (rows + page_size - 1) / page_size;
    }

    /// Self pages free right now.
    int64_t freePages() const
    {
        return static_cast<int64_t>(free_.size());
    }

    /// Cross-arena pages free right now (Seq2Seq admission check).
    int64_t crossFreePages() const
    {
        return static_cast<int64_t>(cross_free_.size());
    }

    /// Self pages obtainable on demand: free now plus cache-only leaf
    /// pages the LRU sweep could reclaim (admission headroom check).
    int64_t availablePages() const;

    /// Self pages referenced by at least one owner (live sequences or
    /// the prefix cache) — the "pages_resident" metric.
    int64_t residentPages() const
    {
        return cfg_.n_pages - freePages();
    }

    /// Pages currently owned (solely or jointly) by the prefix cache.
    int64_t cachedPages() const { return cached_pages_; }

    /// Refcount of self page @p page (tests / fault bookkeeping).
    int32_t pageRef(int32_t page) const
    {
        return ref_[static_cast<size_t>(page)];
    }

    /**
     * Grow @p seq's page table until it covers @p new_rows logical
     * rows, taking pages from the free list and — when that runs dry —
     * evicting least-recently-used unreferenced prefix-cache leaves.
     * All-or-nothing: on failure the sequence is untouched and false
     * is returned (the scheduler stalls or preempts). Never touches
     * rows already cached, so it is safe mid-decode.
     */
    bool ensureTail(PagedSeq &seq, int64_t new_rows);

    /// Release every page reference @p seq holds (self and cross) and
    /// reset it. Pages shared with the cache or other sequences stay
    /// resident; sole-owner pages return to the free lists unscrubbed.
    void releaseSeq(PagedSeq &seq);

    /// Allocate and privately own ceil(rows / page_size) cross pages
    /// for @p seq. All-or-nothing; false when the cross arena is dry.
    bool allocCross(PagedSeq &seq, int64_t rows);

    /// A prefix-cache lookup result. Full pages are only *named* here;
    /// adoptPrefix takes the references.
    struct PrefixMatch
    {
        std::vector<int32_t> pages; ///< Fully-matched cache pages.
        int64_t rows = 0;           ///< pages.size() * page_size.
        int32_t partial_page = -1;  ///< Cache page sharing a strict
                                    ///< prefix of the next chunk.
        int64_t partial_rows = 0;   ///< Usable rows of partial_page.
    };

    /**
     * Longest radix-trie match over the first @p max_rows tokens of
     * @p prompt (the scheduler passes prompt_len - 1: the final prompt
     * row must always be computed so first-token logits exist). Full
     * page_size-token chunks match trie edges exactly; at the first
     * mismatch, a child sharing >= 1 leading tokens yields a partial
     * (copy-on-write) match. Touches LRU stamps on the matched path.
     * Returns an empty match when the cache is disabled.
     */
    PrefixMatch matchPrefix(const std::vector<int32_t> &prompt,
                            int64_t max_rows);

    /**
     * Map @p m into @p seq: references every fully-matched page into
     * the page table, then clones the partial page's covered rows into
     * a freshly-allocated private page (copy-on-write — the clone is a
     * byte copy, so it is bit-identical to recomputing those rows).
     * Returns the rows now cached in @p seq (= seq.len); the partial
     * clone is skipped, not failed, when no page can be allocated.
     * Must be called on a fresh (empty) sequence.
     */
    int64_t adoptPrefix(PagedSeq &seq, const PrefixMatch &m);

    /**
     * Donate @p seq's fully-populated prompt pages to the prefix
     * cache: walks the trie along @p prompt's full chunks (first
     * @p prompt_rows rows, typically prompt_len - 1 so the chunk
     * covering the last prompt row is donatable once prefill wrote
     * it), creating nodes — and taking a cache reference on the
     * sequence's page — where the trie has none. Existing nodes are
     * left as-is (first donor wins; later duplicates stay private).
     */
    void insertPrefix(const std::vector<int32_t> &prompt,
                      int64_t prompt_rows, const PagedSeq &seq);

    /// Evict one LRU unreferenced cache leaf, freeing its page.
    /// Returns false when nothing is evictable.
    bool evictOne();

    /// Drop the cache node owning @p page, if any (fault cleanup): a
    /// fault-poisoned cache page must not be re-shared with future
    /// requests. Sequences already mapping it are unaffected. Interior
    /// nodes take their whole subtree with them (descendant prefixes
    /// are unreachable without the poisoned chunk anyway).
    void dropCachedPage(int32_t page);

    /// Prefix-cache hit statistics (monotonic).
    int64_t lookups() const { return lookups_; }
    int64_t hits() const { return hits_; }
    int64_t reusedRows() const { return reused_rows_; }
    int64_t evictions() const { return evictions_; }
    int64_t cowClones() const { return cow_clones_; }

    /// Fixed resident bytes of all arenas (pages are allocated
    /// upfront; occupancy is residentPages()).
    size_t residentKVBytes() const;
    size_t bytesPerPage() const;

    std::vector<KVPagePanels> &selfLayers() { return self_; }
    std::vector<KVPagePanels> &crossLayers() { return cross_; }

  private:
    struct Node; ///< Radix-trie node (one full page per edge).

    int32_t allocPage();       ///< -1 when dry (after LRU eviction).
    void derefPage(int32_t page);
    Node *findLeafLru(Node *n, Node **best) const;
    void removeNode(Node *n);

    Config cfg_;
    std::vector<KVPagePanels> self_;
    std::vector<KVPagePanels> cross_;

    std::vector<int32_t> ref_;   ///< Self-page refcounts.
    std::vector<int32_t> free_;  ///< Self free list (LIFO).
    std::vector<int32_t> cross_free_;

    std::unique_ptr<Node> root_;
    std::vector<Node *> node_of_page_; ///< Cache node per self page.
    int64_t cached_pages_ = 0;
    uint64_t clock_ = 0; ///< LRU stamp source.

    int64_t lookups_ = 0, hits_ = 0, reused_rows_ = 0, evictions_ = 0,
            cow_clones_ = 0;
};

} // namespace qt8::serve

#endif // QT8_SERVE_PAGED_KV_H
