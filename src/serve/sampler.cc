#include "serve/sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/ops.h"

namespace qt8::serve {

int32_t
sampleToken(const Tensor &logits, int64_t row,
            const SamplingParams &params, Rng &rng)
{
    if (!(params.temperature > 0.0f))
        return static_cast<int32_t>(rowArgmax(logits, row));

    const int64_t vocab = logits.dim(1);
    const float *p = logits.data() + row * vocab;

    // Candidate set: finite logits, optionally narrowed to the top_k
    // largest. (logit desc, id asc) is a total order, so selecting the
    // top_k with nth_element and then sorting just that prefix yields
    // exactly the old stable_sort-everything prefix — O(V + k log k)
    // per decoded token instead of O(V log V).
    std::vector<int32_t> cand;
    cand.reserve(static_cast<size_t>(vocab));
    for (int64_t j = 0; j < vocab; ++j) {
        if (std::isfinite(p[j]))
            cand.push_back(static_cast<int32_t>(j));
    }
    if (cand.empty())
        return static_cast<int32_t>(rowArgmax(logits, row));
    if (params.top_k > 0 &&
        static_cast<size_t>(params.top_k) < cand.size()) {
        const auto before = [p](int32_t a, int32_t b) {
            return p[a] > p[b] || (p[a] == p[b] && a < b);
        };
        const auto mid = cand.begin() + params.top_k;
        std::nth_element(cand.begin(), mid, cand.end(), before);
        std::sort(cand.begin(), mid, before);
        cand.resize(static_cast<size_t>(params.top_k));
    }

    // Softmax at temperature, in double, max-subtracted for stability.
    double mx = -INFINITY;
    for (int32_t j : cand)
        mx = std::max(mx, static_cast<double>(p[j]));
    const double inv_t = 1.0 / static_cast<double>(params.temperature);
    std::vector<double> w(cand.size());
    double total = 0.0;
    for (size_t i = 0; i < cand.size(); ++i) {
        w[i] = std::exp((static_cast<double>(p[cand[i]]) - mx) * inv_t);
        total += w[i];
    }
    if (!(total > 0.0) || !std::isfinite(total))
        return static_cast<int32_t>(rowArgmax(logits, row));

    // Inverse CDF with exactly one uniform draw per token, so a replay
    // from the same seed consumes the identical RNG stream.
    const double u = rng.uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < cand.size(); ++i) {
        acc += w[i];
        if (u < acc)
            return cand[i];
    }
    return cand.back();
}

} // namespace qt8::serve
