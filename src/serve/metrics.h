/**
 * @file
 * Built-in observability for the serving engine: per-request TTFT,
 * end-to-end latency and tokens/sec, per-token step latencies, and
 * p50/p95/p99 summaries over all of them, dumpable as text. Samples are
 * kept raw (doubles, milliseconds) and percentiles computed on demand —
 * at serving-bench scale this is cheaper than maintaining bucketed
 * histograms and loses nothing.
 */
#ifndef QT8_SERVE_METRICS_H
#define QT8_SERVE_METRICS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace qt8::serve {

/// Raw latency samples with percentile queries (linear interpolation
/// between closest ranks on the sorted samples, numpy-default style:
/// rank = p/100 * (n-1); a 1-sample histogram returns that sample for
/// every p).
class LatencyHistogram
{
  public:
    void record(double ms) { samples_.push_back(ms); }
    size_t count() const { return samples_.size(); }
    double percentile(double p) const; ///< p clamped to [0, 100].
    double mean() const;

  private:
    std::vector<double> samples_;
};

/// One retired request's timing record.
struct RequestRecord
{
    uint64_t id = 0;
    RequestStatus status = RequestStatus::kOk;
    int64_t prompt_tokens = 0;
    int64_t generated_tokens = 0;
    double ttft_ms = 0.0;
    double latency_ms = 0.0;
    double tokens_per_sec = 0.0; ///< generated / (latency - ttft)-ish.
    PriorityClass priority_class = PriorityClass::kStandard;
    uint64_t tenant_id = 0;
    /// kOk and inside the class SLO targets (a class with no SLO meets
    /// it trivially) — the goodput criterion.
    bool slo_met = false;
    int64_t preemptions = 0; ///< Scheduler preempt-resume round trips.
};

/// Per-priority-class slice of the serve metrics (fair-share and SLO
/// accounting, DESIGN.md §16).
struct ClassMetrics
{
    int64_t submitted = 0; ///< Accepted submissions (post-validation).
    int64_t completed = 0; ///< Retirements of any terminal status.
    int64_t ok = 0;
    int64_t slo_met = 0;
    int64_t rejected = 0; ///< kRejectedQueueFull for this class.
    int64_t preemptions = 0;
    int64_t generated_tokens = 0;
    int64_t goodput_tokens = 0; ///< Generated tokens of SLO-met requests.
    LatencyHistogram ttft_ms;
    LatencyHistogram latency_ms;
};

/// Aggregated engine metrics; filled by the scheduler as requests
/// retire and steps complete. Plain copyable data: the engine hands
/// out consistent copies through ServeEngine::metricsSnapshot() while
/// the scheduler thread keeps writing.
struct ServeMetrics
{
    std::vector<RequestRecord> requests;
    LatencyHistogram ttft_ms;
    LatencyHistogram request_latency_ms;
    LatencyHistogram token_latency_ms; ///< Per generated token.

    int64_t completed = 0;  ///< All retirements (any terminal status).
    int64_t truncated = 0;  ///< kCapacityExceeded retirements.
    int64_t cancelled = 0;  ///< kCancelled retirements.
    int64_t expired = 0;    ///< kDeadlineExceeded retirements.
    int64_t numeric_faults = 0; ///< kNumericFault retirements.
    int64_t stopped = 0;    ///< kEngineStopped resolutions (abort).
    int64_t rejected = 0;   ///< kRejectedQueueFull submissions.
    int64_t rejected_invalid = 0; ///< kRejectedInvalid submissions.
    int64_t steps = 0;      ///< Scheduler iterations that ran a forward.
    int64_t idle_steps = 0;
    int64_t generated_tokens = 0;
    int64_t prompt_tokens = 0;
    int64_t tap_nonfinite_steps = 0; ///< Activation-tap trips (§10).
    double busy_ms = 0.0; ///< Total forward/sample time across steps.

    // Paged-pool counters (zero on the slab engine).
    int64_t prefill_tokens_computed = 0; ///< Prompt rows run in chunks.
    int64_t prefix_lookups = 0; ///< Prefix-cache admissions probed.
    int64_t prefix_hits = 0;    ///< Probes matching >= 1 row.
    int64_t prefix_reused_tokens = 0; ///< Prompt rows skipped via cache.
    int64_t prefix_evictions = 0;     ///< LRU cache pages reclaimed.
    int64_t pages_resident_peak = 0;  ///< Max referenced pages seen.
    int64_t preempted = 0; ///< Out-of-pages forced retirements.

    // Multi-tenant scheduling (DESIGN.md §16).
    std::array<ClassMetrics, kNumClasses> per_class;
    int64_t sched_preemptions = 0; ///< Spill-and-requeue preemptions
                                   ///< (the victim resumes later —
                                   ///< distinct from `preempted`,
                                   ///< which destroys the request).
    int64_t preempt_resumes = 0;   ///< Preempted victims re-admitted.

    // Tiered KV session storage (zero without sessions; DESIGN.md §15).
    int64_t sessions_spilled = 0;   ///< Idle sessions written to disk.
    int64_t sessions_restored = 0;  ///< Resumes served from a spill file.
    int64_t sessions_recomputed = 0; ///< Resumes whose spill was dead
                                     ///< (recomputed via chunked prefill).
    int64_t sessions_resident_reused = 0; ///< Resumes served from RAM.
    int64_t sessions_dropped = 0;   ///< Sessions evicted outright (no
                                    ///< disk tier / table overflow).
    int64_t spill_failures = 0;     ///< Typed spill IO failures, both
                                    ///< write-side (abandoned) and
                                    ///< restore-side (fell back).
    int64_t spilled_bytes = 0;      ///< Bytes written to spill files.
    int64_t restored_bytes = 0;     ///< Bytes read back on restore.
    int64_t sessions_resident = 0;  ///< Gauge: idle sessions in RAM.
    int64_t sessions_on_disk = 0;   ///< Gauge: idle sessions spilled.

    void recordRetirement(const RequestRecord &r);

    /// Aggregate decode throughput over engine busy time.
    double tokensPerSecBusy() const;

    /// Human-readable multi-line summary.
    std::string dump() const;
};

} // namespace qt8::serve

#endif // QT8_SERVE_METRICS_H
