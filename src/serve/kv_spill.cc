#include "serve/kv_spill.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "util/crc32.h"

namespace qt8::serve {
namespace {

constexpr char kMagic[9] = {'Q', 'T', '8', 'S', 'P', 'I', 'L', 'L', '1'};
/// magic + 6 u64 header fields (key, n_layers, page_size, d_model,
/// rows, packed).
constexpr int64_t kHeaderBytes =
    static_cast<int64_t>(sizeof(kMagic)) + 6 * 8;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeU64(std::FILE *f, uint64_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, uint64_t *v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

int64_t
elemBytes(const KVPagePanels &layer)
{
    return layer.packed() ? 1 : static_cast<int64_t>(sizeof(float));
}

/// Raw bytes of one page's K (or V) rows inside a panel's arena.
const uint8_t *
pageBytes(const KVPagePanels &layer, int32_t page, bool key_panel)
{
    const int64_t off = static_cast<int64_t>(page) * layer.page_size *
                        layer.d_model;
    if (layer.packed()) {
        const std::vector<uint8_t> &codes =
            key_panel ? layer.k_codes : layer.v_codes;
        return codes.data() + off;
    }
    const Tensor &panel = key_panel ? layer.k : layer.v;
    return reinterpret_cast<const uint8_t *>(panel.data() + off);
}

uint8_t *
pageBytesMut(KVPagePanels &layer, int32_t page, bool key_panel)
{
    return const_cast<uint8_t *>(pageBytes(layer, page, key_panel));
}

} // namespace

const char *
toString(SpillStatus s)
{
    switch (s) {
    case SpillStatus::kOk:
        return "ok";
    case SpillStatus::kOpenFail:
        return "open-fail";
    case SpillStatus::kWriteFail:
        return "write-fail";
    case SpillStatus::kNoSpace:
        return "no-space";
    case SpillStatus::kBadHeader:
        return "bad-header";
    case SpillStatus::kShortRead:
        return "short-read";
    case SpillStatus::kCrcMismatch:
        return "crc-mismatch";
    case SpillStatus::kMissing:
        return "missing";
    }
    return "?";
}

KVSpillStore::KVSpillStore(Config cfg) : cfg_(std::move(cfg))
{
    if (!cfg_.dir.empty()) {
        // Best effort: a failure here surfaces as a typed kOpenFail on
        // the first spill, never an exception on the engine thread.
        std::error_code ec;
        std::filesystem::create_directories(cfg_.dir, ec);
    }
}

std::string
KVSpillStore::pathFor(uint64_t key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "/sess-%016llx.qt8spill",
                  static_cast<unsigned long long>(key));
    return cfg_.dir + name;
}

bool
KVSpillStore::has(uint64_t key) const
{
    std::error_code ec;
    return std::filesystem::exists(pathFor(key), ec);
}

void
KVSpillStore::drop(uint64_t key)
{
    std::remove(pathFor(key).c_str());
}

SpillStatus
KVSpillStore::spill(uint64_t key, const std::vector<int32_t> &pages,
                    int64_t rows,
                    const std::vector<KVPagePanels> &layers)
{
    if (rows <= 0 || layers.empty())
        return SpillStatus::kBadHeader;
    const int64_t page_size = layers[0].page_size;
    const int64_t d_model = layers[0].d_model;
    const int64_t n_pages = (rows + page_size - 1) / page_size;
    if (n_pages > static_cast<int64_t>(pages.size()))
        return SpillStatus::kBadHeader;

    const std::string path = pathFor(key);
    if (cfg_.fault != nullptr && cfg_.fault->onSpillOpen())
        return SpillStatus::kOpenFail;
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return SpillStatus::kOpenFail;
    // Any failure past this point abandons the spill: close, delete
    // the partial file, and let the caller keep the session resident.
    const auto abandon = [&](SpillStatus s) {
        f.reset();
        std::remove(path.c_str());
        return s;
    };
    const auto write_failed = [&] {
        return abandon(errno == ENOSPC ? SpillStatus::kNoSpace
                                       : SpillStatus::kWriteFail);
    };

    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1)
        return write_failed();
    if (!writeU64(f.get(), key) ||
        !writeU64(f.get(), static_cast<uint64_t>(layers.size())) ||
        !writeU64(f.get(), static_cast<uint64_t>(page_size)) ||
        !writeU64(f.get(), static_cast<uint64_t>(d_model)) ||
        !writeU64(f.get(), static_cast<uint64_t>(rows)) ||
        !writeU64(f.get(), layers[0].packed() ? 1 : 0))
        return write_failed();

    for (int64_t pi = 0; pi < n_pages; ++pi) {
        const int32_t page = pages[static_cast<size_t>(pi)];
        const int64_t page_rows =
            std::min(page_size, rows - pi * page_size);
        for (const KVPagePanels &layer : layers) {
            const size_t bytes = static_cast<size_t>(
                page_rows * d_model * elemBytes(layer));
            for (const bool key_panel : {true, false}) {
                const uint8_t *src = pageBytes(layer, page, key_panel);
                if (!writeU64(f.get(), crc32(src, bytes)))
                    return write_failed();
                if (std::fwrite(src, 1, bytes, f.get()) != bytes)
                    return write_failed();
            }
        }
    }
    const int64_t total = static_cast<int64_t>(std::ftell(f.get()));
    if (std::fclose(f.release()) != 0)
        return abandon(errno == ENOSPC ? SpillStatus::kNoSpace
                                       : SpillStatus::kWriteFail);

    if (cfg_.fault != nullptr) {
        std::error_code ec;
        switch (cfg_.fault->onSpillWrite()) {
        case FaultInjector::SpillWriteFault::kNoSpace:
            // Injected ENOSPC mid-spill: same contract as the real
            // thing — abandon, nothing half-written left behind.
            std::remove(path.c_str());
            return SpillStatus::kNoSpace;
        case FaultInjector::SpillWriteFault::kTorn:
            // Torn write: the spill *reports success* but the file is
            // truncated — the damage only surfaces as a short read on
            // the next restore, exactly like a crash between write
            // and durable flush.
            std::filesystem::resize_file(
                path, static_cast<uintmax_t>(total / 2), ec);
            break;
        case FaultInjector::SpillWriteFault::kCorrupt: {
            // Silent media corruption: flip one payload byte; the
            // per-page CRC catches it at restore.
            FilePtr g(std::fopen(path.c_str(), "r+b"));
            if (g) {
                const int64_t payload = total - kHeaderBytes;
                const int64_t off =
                    kHeaderBytes +
                    static_cast<int64_t>((key * 2654435761ull) %
                                         static_cast<uint64_t>(payload));
                std::fseek(g.get(), static_cast<long>(off), SEEK_SET);
                const int c = std::fgetc(g.get());
                std::fseek(g.get(), static_cast<long>(off), SEEK_SET);
                std::fputc((c ^ 0x40) & 0xFF, g.get());
            }
            break;
        }
        case FaultInjector::SpillWriteFault::kNone:
            break;
        }
    }
    spilled_bytes_ += total;
    return SpillStatus::kOk;
}

SpillStatus
KVSpillStore::restore(uint64_t key, const std::vector<int32_t> &pages,
                      int64_t rows, std::vector<KVPagePanels> &layers)
{
    if (rows <= 0 || layers.empty())
        return SpillStatus::kBadHeader;
    const int64_t page_size = layers[0].page_size;
    const int64_t d_model = layers[0].d_model;
    const int64_t n_pages = (rows + page_size - 1) / page_size;
    if (n_pages > static_cast<int64_t>(pages.size()))
        return SpillStatus::kBadHeader;

    const std::string path = pathFor(key);
    if (cfg_.fault != nullptr && cfg_.fault->onSpillOpen())
        return SpillStatus::kOpenFail;
    errno = 0;
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return errno == ENOENT ? SpillStatus::kMissing
                               : SpillStatus::kOpenFail;

    char magic[sizeof(kMagic)];
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1)
        return SpillStatus::kShortRead;
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return SpillStatus::kBadHeader;
    uint64_t h_key, h_layers, h_ps, h_dm, h_rows, h_packed;
    if (!readU64(f.get(), &h_key) || !readU64(f.get(), &h_layers) ||
        !readU64(f.get(), &h_ps) || !readU64(f.get(), &h_dm) ||
        !readU64(f.get(), &h_rows) || !readU64(f.get(), &h_packed))
        return SpillStatus::kShortRead;
    if (h_key != key || h_layers != layers.size() ||
        h_ps != static_cast<uint64_t>(page_size) ||
        h_dm != static_cast<uint64_t>(d_model) ||
        h_rows != static_cast<uint64_t>(rows) ||
        h_packed != (layers[0].packed() ? 1u : 0u))
        return SpillStatus::kBadHeader;

    // Injected short read: the file may be intact, but a read ends
    // early — same observable as a torn page.
    if (cfg_.fault != nullptr && cfg_.fault->onSpillRead())
        return SpillStatus::kShortRead;

    // The target pages may hold partial data after a failure below;
    // the caller releases them (free pages are never scrubbed — page
    // tables define visibility), so no cleanup is needed here.
    for (int64_t pi = 0; pi < n_pages; ++pi) {
        const int32_t page = pages[static_cast<size_t>(pi)];
        const int64_t page_rows =
            std::min(page_size, rows - pi * page_size);
        for (KVPagePanels &layer : layers) {
            const size_t bytes = static_cast<size_t>(
                page_rows * d_model * elemBytes(layer));
            for (const bool key_panel : {true, false}) {
                uint64_t want = 0;
                if (!readU64(f.get(), &want))
                    return SpillStatus::kShortRead;
                uint8_t *dst = pageBytesMut(layer, page, key_panel);
                if (std::fread(dst, 1, bytes, f.get()) != bytes)
                    return SpillStatus::kShortRead;
                // Full-u64 compare: the upper half must be the zero
                // padding spill wrote, so corruption there is caught.
                if (static_cast<uint64_t>(crc32(dst, bytes)) != want)
                    return SpillStatus::kCrcMismatch;
            }
        }
    }
    // Exact-size check: trailing garbage means the file is not the
    // spill we wrote (e.g. a longer stale spill overwritten short).
    if (std::fgetc(f.get()) != EOF)
        return SpillStatus::kBadHeader;
    restored_bytes_ += static_cast<int64_t>(std::ftell(f.get()));
    return SpillStatus::kOk;
}

// ---------------------------------------------------------------------
// SpillManager
// ---------------------------------------------------------------------

SpillManager::SpillManager(const Config &cfg, PagedKVPool &pool,
                           int64_t prompt_rows_cap)
    : cfg_(cfg), pool_(pool),
      store_(KVSpillStore::Config{cfg.dir, cfg.fault}),
      prompt_rows_cap_(prompt_rows_cap)
{
    if (cfg_.low_pages <= 0)
        cfg_.low_pages = std::max<int64_t>(1, pool_.pageCount() / 4);
    if (cfg_.high_pages < cfg_.low_pages)
        cfg_.high_pages =
            std::max(cfg_.low_pages, pool_.pageCount() / 2);
    if (cfg_.max_sessions == 0)
        cfg_.max_sessions = 64;
}

SpillManager::~SpillManager()
{
    releaseAll();
}

bool
SpillManager::promptExtends(const Session &s,
                            const std::vector<int32_t> &prompt) const
{
    // The retained rows must be a *strict* prefix of the new prompt:
    // the row past the history must exist so first-token logits do.
    if (prompt.size() <= s.history.size())
        return false;
    return std::equal(s.history.begin(), s.history.end(),
                      prompt.begin());
}

void
SpillManager::dropLocked(uint64_t sid, Session &s)
{
    if (s.state == Session::State::kResident)
        pool_.releaseSeq(s.seq);
    if (diskTier())
        store_.drop(sid);
}

uint64_t
SpillManager::lruResident() const
{
    uint64_t best = 0, best_stamp = 0;
    for (const auto &[sid, s] : sessions_) {
        if (s.state != Session::State::kResident)
            continue;
        if (best == 0 || s.stamp < best_stamp) {
            best = sid;
            best_stamp = s.stamp;
        }
    }
    return best;
}

void
SpillManager::endTurn(uint64_t sid, std::vector<int32_t> history,
                      PagedSeq &&seq)
{
    assert(static_cast<int64_t>(history.size()) == seq.len &&
           "history must key exactly the retained rows");
    // A history the capacity could never extend (prompt must be
    // strictly longer yet still fit the slot) is dead weight.
    if (seq.len <= 0 || seq.len >= prompt_rows_cap_) {
        pool_.releaseSeq(seq);
        return;
    }
    auto it = sessions_.find(sid);
    if (it != sessions_.end()) {
        // Replace: the new turn supersedes whatever was retained
        // (including a concurrent same-key duplicate's leftovers).
        dropLocked(sid, it->second);
        sessions_.erase(it);
    }
    Session s;
    s.state = Session::State::kResident;
    s.history = std::move(history);
    // Session provenance supersedes prefix-cache provenance: the next
    // turn reports its reuse through session_reused_tokens.
    seq.shared_rows = 0;
    s.seq = std::move(seq);
    s.stamp = ++clock_;
    sessions_.emplace(sid, std::move(s));

    // Table bound: spilling would not shrink the table, so overflow
    // drops the LRU idle entry outright (resident or spilled) — the
    // bound is on retained-session *count*, pages are the watermarks'
    // job.
    while (sessions_.size() > cfg_.max_sessions) {
        uint64_t best = 0, best_stamp = 0;
        for (const auto &[k, v] : sessions_) {
            if (k == sid || v.state == Session::State::kCheckedOut)
                continue;
            if (best == 0 || v.stamp < best_stamp) {
                best = k;
                best_stamp = v.stamp;
            }
        }
        if (best == 0)
            break; // only checked-out entries left
        dropLocked(best, sessions_[best]);
        sessions_.erase(best);
        ++stats_.sessions_dropped;
    }
}

void
SpillManager::dropSession(uint64_t sid)
{
    auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state == Session::State::kCheckedOut)
        return;
    dropLocked(sid, it->second);
    sessions_.erase(it);
}

SpillManager::Resume
SpillManager::resume(uint64_t sid, const std::vector<int32_t> &prompt)
{
    Resume r;
    auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state == Session::State::kCheckedOut)
        return r; // kNone: fresh path (checked-out = concurrent dup)
    Session &s = it->second;

    if (!promptExtends(s, prompt)) {
        // Stale key (edited history, unrelated reuse): the retained
        // rows are useless — drop them and run fresh.
        dropLocked(sid, s);
        sessions_.erase(it);
        ++stats_.sessions_dropped;
        return r;
    }
    const int64_t rows = static_cast<int64_t>(s.history.size());

    if (s.state == Session::State::kResident) {
        s.stamp = ++clock_;
        s.state = Session::State::kCheckedOut;
        s.checkout_src = SessionKVSource::kResident;
        r.source = SessionKVSource::kResident;
        r.seq = std::move(s.seq);
        s.seq = PagedSeq{};
        return r;
    }

    // Spilled: the pages must be re-allocatable before we touch disk
    // (+1 decode/chunk headroom so the admission that follows does
    // not immediately stall).
    const int64_t need =
        PagedKVPool::pagesFor(rows, pool_.pageSize());
    if (pool_.availablePages() < need + 1) {
        r.retry = true;
        return r;
    }
    PagedSeq seq;
    if (!pool_.ensureTail(seq, rows)) {
        pool_.releaseSeq(seq);
        r.retry = true;
        return r;
    }
    const SpillStatus st =
        store_.restore(sid, seq.pages, rows, pool_.selfLayers());
    if (st != SpillStatus::kOk) {
        // The spill is dead (torn, corrupt, missing, IO error): drop
        // it and fall back to recomputing the prompt via the ordinary
        // chunked-prefill path. Typed, accounted, tokens unchanged.
        pool_.releaseSeq(seq);
        store_.drop(sid);
        sessions_.erase(it);
        ++stats_.spill_failures;
        ++stats_.sessions_recomputed;
        r.source = SessionKVSource::kRecomputed;
        return r;
    }
    seq.len = rows;
    store_.drop(sid); // consumed; endTurn re-spills if needed
    s.stamp = ++clock_;
    s.state = Session::State::kCheckedOut;
    s.checkout_src = SessionKVSource::kRestoredFromSpill;
    r.source = SessionKVSource::kRestoredFromSpill;
    r.seq = std::move(seq);
    return r;
}

void
SpillManager::commitResume(uint64_t sid)
{
    auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state != Session::State::kCheckedOut)
        return;
    if (it->second.checkout_src == SessionKVSource::kResident)
        ++stats_.sessions_resident_reused;
    else if (it->second.checkout_src ==
             SessionKVSource::kRestoredFromSpill)
        ++stats_.sessions_restored;
    sessions_.erase(it);
}

void
SpillManager::abortResume(uint64_t sid, PagedSeq &&seq)
{
    auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state != Session::State::kCheckedOut) {
        // Defensive: an unknown checkout can only leak pages, never
        // lose a request — release and move on.
        pool_.releaseSeq(seq);
        return;
    }
    Session &s = it->second;
    s.state = Session::State::kResident;
    s.checkout_src = SessionKVSource::kNone;
    s.seq = std::move(seq);
    s.stamp = ++clock_; // MRU: hard pressure should evict others first
}

bool
SpillManager::evictResident(uint64_t sid, Session &s,
                            bool drop_on_failure)
{
    if (diskTier()) {
        const SpillStatus st = store_.spill(
            sid, s.seq.pages, s.seq.len, pool_.selfLayers());
        if (st == SpillStatus::kOk) {
            // Pages released only after the bytes are on disk; shared
            // prefix-cache pages stay resident (the cache holds its
            // own references) and simply become reclaimable.
            pool_.releaseSeq(s.seq);
            s.seq = PagedSeq{};
            s.state = Session::State::kSpilled;
            ++stats_.sessions_spilled;
            return true;
        }
        // ENOSPC / write / open failure: the spill was abandoned (no
        // partial file left) and the session is still whole in RAM.
        ++stats_.spill_failures;
        if (!drop_on_failure)
            return false;
    }
    // No disk tier, or disk refused under hard pressure: drop the
    // session outright — idle state is a luxury; forward progress of
    // admitted work is not.
    dropLocked(sid, s);
    sessions_.erase(sid);
    ++stats_.sessions_dropped;
    return true;
}

int
SpillManager::spillToWatermark()
{
    if (!diskTier() || pool_.availablePages() >= cfg_.low_pages)
        return 0;
    // Snapshot candidates LRU-first; a session whose spill fails is
    // not retried this sweep (soft pressure tolerates staying high).
    std::vector<std::pair<uint64_t, uint64_t>> order; // (stamp, sid)
    for (const auto &[sid, s] : sessions_)
        if (s.state == Session::State::kResident)
            order.emplace_back(s.stamp, sid);
    std::sort(order.begin(), order.end());
    int spilled = 0;
    for (const auto &[stamp, sid] : order) {
        if (pool_.availablePages() >= cfg_.high_pages)
            break;
        auto it = sessions_.find(sid);
        if (it == sessions_.end() ||
            it->second.state != Session::State::kResident)
            continue;
        if (evictResident(sid, it->second, /*drop_on_failure=*/false))
            ++spilled;
    }
    return spilled;
}

bool
SpillManager::spillOne()
{
    const uint64_t sid = lruResident();
    if (sid == 0)
        return false;
    return evictResident(sid, sessions_[sid], /*drop_on_failure=*/true);
}

bool
SpillManager::spillSession(uint64_t sid)
{
    auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state != Session::State::kResident)
        return false;
    return evictResident(sid, it->second, /*drop_on_failure=*/true);
}

void
SpillManager::releaseAll()
{
    for (auto &[sid, s] : sessions_)
        dropLocked(sid, s);
    sessions_.clear();
}

int64_t
SpillManager::residentSessions() const
{
    int64_t n = 0;
    for (const auto &[sid, s] : sessions_)
        n += s.state == Session::State::kResident ? 1 : 0;
    return n;
}

int64_t
SpillManager::spilledSessions() const
{
    int64_t n = 0;
    for (const auto &[sid, s] : sessions_)
        n += s.state == Session::State::kSpilled ? 1 : 0;
    return n;
}

int64_t
SpillManager::residentPages(uint64_t sid) const
{
    const auto it = sessions_.find(sid);
    if (it == sessions_.end() ||
        it->second.state != Session::State::kResident)
        return 0;
    return static_cast<int64_t>(it->second.seq.pages.size());
}

SpillManager::Stats
SpillManager::stats() const
{
    Stats s = stats_;
    s.spilled_bytes = store_.spilledBytes();
    s.restored_bytes = store_.restoredBytes();
    return s;
}

} // namespace qt8::serve
