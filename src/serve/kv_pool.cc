#include "serve/kv_pool.h"

#include <cassert>

namespace qt8::serve {

KVCachePool::KVCachePool(int64_t n_slots, int64_t capacity,
                         int64_t d_model, size_t n_self_layers,
                         size_t n_cross_layers, int64_t cross_capacity,
                         const Quantizer *packed_fmt)
    : n_slots_(n_slots), capacity_(capacity),
      cross_capacity_(cross_capacity)
{
    assert(n_slots > 0 && capacity > 0);
    self_.resize(n_self_layers);
    for (KVSlots &layer : self_)
        layer.reset(n_slots, capacity, d_model, packed_fmt);
    cross_.resize(n_cross_layers);
    for (KVSlots &layer : cross_)
        layer.reset(n_slots, cross_capacity, d_model, packed_fmt);
    in_use_.assign(static_cast<size_t>(n_slots), 0);
    free_.reserve(static_cast<size_t>(n_slots));
    // LIFO order: slot 0 is handed out first, which also maximizes how
    // often tests exercise dirty-slot reuse.
    for (int32_t s = static_cast<int32_t>(n_slots) - 1; s >= 0; --s)
        free_.push_back(s);
}

int32_t
KVCachePool::acquire()
{
    if (free_.empty())
        return -1;
    const int32_t slot = free_.back();
    free_.pop_back();
    in_use_[static_cast<size_t>(slot)] = 1;
    for (KVSlots &layer : self_)
        layer.release(slot); // len = 0, rows left dirty
    for (KVSlots &layer : cross_)
        layer.release(slot);
    return slot;
}

bool
KVCachePool::release(int32_t slot)
{
    if (slot < 0 || slot >= n_slots_ ||
        in_use_[static_cast<size_t>(slot)] == 0)
        return false; // out of range or double free: refuse, don't corrupt
    in_use_[static_cast<size_t>(slot)] = 0;
    for (KVSlots &layer : self_)
        layer.release(slot);
    for (KVSlots &layer : cross_)
        layer.release(slot);
    free_.push_back(slot);
    return true;
}

bool
KVCachePool::packed() const
{
    return !self_.empty() && self_[0].packed();
}

size_t
KVCachePool::residentKVBytes() const
{
    size_t bytes = 0;
    for (const KVSlots &layer : self_)
        bytes += layer.residentBytes();
    for (const KVSlots &layer : cross_)
        bytes += layer.residentBytes();
    return bytes;
}

size_t
KVCachePool::bytesPerSlot() const
{
    return residentKVBytes() / static_cast<size_t>(n_slots_);
}

} // namespace qt8::serve
