#include "serve/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "serve/sampler.h"
#include "util/trace.h"
#include "tensor/ops.h"

namespace qt8::serve {
namespace {

EngineConfig
normalized(EngineConfig cfg, int64_t max_seq)
{
    assert(cfg.n_slots > 0);
    if (cfg.slot_capacity <= 0 || cfg.slot_capacity > max_seq)
        cfg.slot_capacity = max_seq;
    if (cfg.cross_capacity <= 0)
        cfg.cross_capacity = cfg.slot_capacity;
    return cfg;
}

/// Non-finite scan of one logits row — the per-slot numeric guard.
bool
rowFinite(const Tensor &logits, int64_t row)
{
    const int64_t n = logits.dim(1);
    const float *p = logits.data() + row * n;
    for (int64_t j = 0; j < n; ++j)
        if (!std::isfinite(p[j]))
            return false;
    return true;
}

} // namespace

/// One in-flight request: its slot, decode cursor, prefill progress,
/// sampling stream, output so far, and timing marks.
struct ServeEngine::Active
{
    Active(PendingRequest &&p, int32_t slot_id)
        : id(p.id), req(std::move(p.request)), promise(std::move(p.promise)),
          slot(slot_id), rng(req.sampling.seed), submit_ms(p.submit_ms),
          deadline_ms(p.deadline_ms)
    {}

    uint64_t id;
    Request req;
    std::promise<RequestResult> promise;
    int32_t slot;
    int64_t pos = 0;        ///< Next decode position (rows in the slot).
    size_t prompt_next = 0; ///< CausalLM: next prompt index to feed.
    int32_t next_input = 0; ///< Token fed on the coming step.
    std::vector<int32_t> out;
    Rng rng;
    double submit_ms;
    double deadline_ms; ///< Engine-clock deadline; 0 = none.
    double first_token_ms = -1.0;
    double last_token_ms = -1.0;
};

ServeEngine::~ServeEngine()
{
    // An owned scheduler thread must never outlive the engine; abort
    // resolves whatever is still in flight with kEngineStopped.
    stop(StopMode::kAbort);
}

ServeEngine::ServeEngine(CausalLM &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(&model, nullptr, qs, cfg)
{}

ServeEngine::ServeEngine(Seq2Seq &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(nullptr, &model, qs, cfg)
{}

ServeEngine::ServeEngine(CausalLM *clm, Seq2Seq *s2s, QuantSession &qs,
                         EngineConfig cfg)
    : clm_(clm), s2s_(s2s), qs_(qs),
      cfg_(normalized(cfg, clm != nullptr
                               ? clm->body.config().max_seq
                               : s2s->encoder.config().max_seq)),
      queue_(cfg_.max_queue_depth),
      pool_(cfg_.n_slots, cfg_.slot_capacity,
            clm != nullptr ? clm->body.config().d_model
                           : s2s->encoder.config().d_model,
            clm != nullptr ? clm->body.blocks.size()
                           : s2s->dec_blocks.size(),
            s2s != nullptr ? s2s->dec_blocks.size() : 0,
            cfg_.cross_capacity, qs.config().kvPackedFormat()),
      start_(std::chrono::steady_clock::now())
{}

double
ServeEngine::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

int64_t
ServeEngine::freeSlots() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(pool_.freeCount());
}

ServeMetrics
ServeEngine::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
}

RequestStatus
ServeEngine::validate(const Request &req) const
{
    if (req.prompt.empty() || req.max_new_tokens <= 0)
        return RequestStatus::kRejectedInvalid;
    const int64_t plen = static_cast<int64_t>(req.prompt.size());
    if (clm_ != nullptr) {
        // The prompt alone must fit the slot, or prefill can never
        // complete and no token can be emitted.
        if (plen > cfg_.slot_capacity)
            return RequestStatus::kRejectedInvalid;
    } else {
        if (plen > cfg_.cross_capacity)
            return RequestStatus::kRejectedInvalid;
        if (!req.src_pad.empty() &&
            req.src_pad.size() != req.prompt.size())
            return RequestStatus::kRejectedInvalid;
    }
    return RequestStatus::kOk;
}

void
ServeEngine::deliver(std::vector<Resolution> &done)
{
    for (Resolution &d : done) {
        d.promise.set_value(d.result);
        if (d.callback)
            d.callback(d.result);
    }
    done.clear();
}

void
ServeEngine::wake()
{
    // Taking wake_mu_ (even empty) pairs the notify with the waiter's
    // predicate-to-sleep window, so a wakeup can never be lost.
    { std::lock_guard<std::mutex> lock(wake_mu_); }
    wake_cv_.notify_all();
}

std::shared_future<RequestResult>
ServeEngine::submit(Request req, uint64_t *id_out)
{
    PendingRequest p;
    p.id = next_id_.fetch_add(1);
    if (id_out != nullptr)
        *id_out = p.id;
    p.request = std::move(req);
    p.submit_ms = nowMs();
    p.deadline_ms = p.request.timeout_ms > 0.0
                        ? p.submit_ms + p.request.timeout_ms
                        : 0.0;
    std::shared_future<RequestResult> fut =
        p.promise.get_future().share();

    // Typed rejection instead of UB/asserts deeper in the stack: an
    // invalid request never touches the queue or the pool.
    const RequestStatus v = validate(p.request);
    if (v != RequestStatus::kOk) {
        RequestResult r;
        r.id = p.id;
        r.status = v;
        r.prompt_tokens = static_cast<int64_t>(p.request.prompt.size());
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.rejected_invalid;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }

    // A failed tryPush leaves p untouched (it only moves on success),
    // so the original promise can carry the typed rejection: the
    // future resolves immediately, nothing is admitted, and the caller
    // can retry or back off.
    switch (queue_.tryPush(std::move(p))) {
    case RequestQueue::PushResult::kOk:
        wake();
        return fut;
    case RequestQueue::PushResult::kFull: {
        RequestResult r;
        r.id = p.id;
        r.status = RequestStatus::kRejectedQueueFull;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.rejected;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }
    case RequestQueue::PushResult::kClosed:
    default: {
        // The engine aborted: resolve with the same status its
        // in-flight peers received instead of parking forever.
        RequestResult r;
        r.id = p.id;
        r.status = RequestStatus::kEngineStopped;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.stopped;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }
    }
}

bool
ServeEngine::cancel(uint64_t id)
{
    if (id == 0 || id >= next_id_.load())
        return false; // never issued by this engine
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        cancel_ids_.push_back(id);
    }
    wake();
    return true;
}

bool
ServeEngine::admitOneLocked(PendingRequest &&p,
                            std::vector<Resolution> &done)
{
    const int32_t slot = pool_.acquire();
    assert(slot >= 0 && "admitLocked checked freeCount");

    auto a = std::make_unique<Active>(std::move(p), slot);

    if (clm_ != nullptr) {
        // validate() guarantees a non-empty prompt and positive budget.
        a->next_input = a->req.prompt[0];
        active_.push_back(std::move(a));
        active_n_.store(active_.size());
        return true;
    }

    // Seq2Seq admission: encode the source once (batch 1 — identical
    // bits to any batch, rows being independent) and park the projected
    // K/V panels in this request's cross slots.
    const int64_t seq_src = static_cast<int64_t>(a->req.prompt.size());
    const uint8_t *pad =
        a->req.src_pad.empty() ? nullptr : a->req.src_pad.data();
    const Tensor memory = s2s_->encodeOne(qs_, a->req.prompt, seq_src, pad);
    if (!s2s_->primeCrossSlots(qs_, memory, seq_src, pool_.crossLayers(),
                               a->slot)) {
        // Source longer than the cross-attention pool (defensive —
        // validate() bounds it): typed error instead of an assert,
        // slot returned immediately.
        active_.push_back(std::move(a));
        active_n_.store(active_.size());
        retireLocked(active_.size() - 1, RequestStatus::kCapacityExceeded,
                     nowMs(), done);
        return true;
    }
    a->next_input = a->req.bos;
    active_.push_back(std::move(a));
    active_n_.store(active_.size());
    return true;
}

int
ServeEngine::admitLocked(std::vector<Resolution> &done)
{
    int admitted = 0;
    while (pool_.freeCount() > 0) {
        if (cfg_.fault != nullptr && cfg_.fault->onAcquire())
            break; // injected allocation failure: retry next step
        PendingRequest p;
        if (!queue_.tryPop(p))
            break;
        admitOneLocked(std::move(p), done);
        ++admitted;
    }
    return admitted;
}

void
ServeEngine::retireLocked(size_t idx, RequestStatus status, double now_ms,
                          std::vector<Resolution> &done)
{
    Active &a = *active_[idx];

    RequestResult r;
    r.id = a.id;
    r.status = status;
    r.tokens = a.out;
    r.prompt_tokens = static_cast<int64_t>(a.req.prompt.size());
    r.ttft_ms =
        a.first_token_ms >= 0.0 ? a.first_token_ms - a.submit_ms : 0.0;
    r.latency_ms = now_ms - a.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.generated_tokens = static_cast<int64_t>(r.tokens.size());
    rec.ttft_ms = r.ttft_ms;
    rec.latency_ms = r.latency_ms;
    rec.tokens_per_sec =
        r.latency_ms > 0.0
            ? static_cast<double>(rec.generated_tokens) /
                  (r.latency_ms / 1000.0)
            : 0.0;
    metrics_.recordRetirement(rec);

    pool_.release(a.slot);
    done.push_back(Resolution{std::move(a.promise), std::move(r),
                              std::move(a.req.on_complete)});
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
    active_n_.store(active_.size());
}

void
ServeEngine::resolveUnadmittedLocked(PendingRequest &&p,
                                     RequestStatus status,
                                     std::vector<Resolution> &done)
{
    RequestResult r;
    r.id = p.id;
    r.status = status;
    r.prompt_tokens = static_cast<int64_t>(p.request.prompt.size());
    r.latency_ms = nowMs() - p.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.latency_ms = r.latency_ms;
    metrics_.recordRetirement(rec);

    done.push_back(Resolution{std::move(p.promise), std::move(r),
                              std::move(p.request.on_complete)});
}

void
ServeEngine::processCancelsLocked(double now_ms,
                                  std::vector<Resolution> &done)
{
    std::vector<uint64_t> ids;
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        ids.swap(cancel_ids_);
    }
    for (const uint64_t id : ids) {
        bool found = false;
        for (size_t i = 0; i < active_.size(); ++i) {
            if (active_[i]->id == id) {
                retireLocked(i, RequestStatus::kCancelled, now_ms, done);
                found = true;
                break;
            }
        }
        if (found)
            continue;
        PendingRequest p;
        if (queue_.extract(id, p))
            resolveUnadmittedLocked(std::move(p), RequestStatus::kCancelled,
                                    done);
        // Unknown / already finished: no-op.
    }
}

void
ServeEngine::expireDeadlinesLocked(double now_ms,
                                   std::vector<Resolution> &done)
{
    for (size_t i = active_.size(); i-- > 0;) {
        if (active_[i]->deadline_ms > 0.0 &&
            now_ms >= active_[i]->deadline_ms)
            retireLocked(i, RequestStatus::kDeadlineExceeded, now_ms,
                         done);
    }
    // Queued requests expire too — even while every slot is busy.
    std::vector<PendingRequest> late =
        queue_.extractIf([now_ms](const PendingRequest &p) {
            return p.deadline_ms > 0.0 && now_ms >= p.deadline_ms;
        });
    for (PendingRequest &p : late)
        resolveUnadmittedLocked(std::move(p),
                                RequestStatus::kDeadlineExceeded, done);
}

bool
ServeEngine::step()
{
    std::vector<Resolution> done;
    bool ran;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ran = stepLocked(done);
    }
    // Promises/callbacks fire with no engine lock held, so a callback
    // may submit(), cancel(), or read a metrics snapshot.
    deliver(done);
    return ran;
}

bool
ServeEngine::stepLocked(std::vector<Resolution> &done)
{
    QT8_TRACE_SCOPE("serve/step");
    const int64_t retired_before = metrics_.completed;
    if (cfg_.fault != nullptr) {
        const double d = cfg_.fault->onStepDelayMs();
        if (d > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(d));
    }

    const double t0 = nowMs();
    processCancelsLocked(t0, done);
    expireDeadlinesLocked(t0, done);
    int admitted = admitLocked(done);

    // Sequences whose slot is full cannot take another position: retire
    // them with the typed overflow status (output kept, truncated).
    for (size_t i = active_.size(); i-- > 0;) {
        if (pool_.slotLen(active_[i]->slot) >= pool_.capacity())
            retireLocked(i, RequestStatus::kCapacityExceeded, nowMs(),
                         done);
    }
    // Retirements may have opened slots for queued work this same step.
    admitted += admitLocked(done);

    if (trace::collecting()) {
        trace::counter("serve/queue_depth",
                       static_cast<double>(queue_.size()));
        trace::counter("serve/active",
                       static_cast<double>(active_.size()));
        trace::counter("serve/admitted", admitted);
        trace::counter("serve/kv_bytes_resident",
                       static_cast<double>(pool_.residentKVBytes()));
    }

    if (active_.empty()) {
        ++metrics_.idle_steps;
        return false;
    }

    const size_t n = active_.size();
    std::vector<int32_t> ids(n);
    std::vector<uint64_t> req_ids(n);
    std::vector<int64_t> positions(n);
    std::vector<int32_t> slots(n);
    std::vector<const uint8_t *> pads(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
        const Active &a = *active_[i];
        ids[i] = a.next_input;
        req_ids[i] = a.id;
        positions[i] = a.pos;
        slots[i] = a.slot;
        if (s2s_ != nullptr && !a.req.src_pad.empty())
            pads[i] = a.req.src_pad.data();
    }

    // Optional activation tap: count steps where any pre-quantization
    // tensor went non-finite (diagnostic; forces serial attention).
    bool tap_tripped = false;
    std::function<void(OpClass, const Tensor &)> prev_tap;
    if (cfg_.tap_activations) {
        prev_tap = std::move(qs_.fwd_tap);
        qs_.fwd_tap = [&tap_tripped](OpClass, const Tensor &t) {
            if (!tap_tripped && !allFinite(t))
                tap_tripped = true;
        };
    }

    Tensor logits =
        clm_ != nullptr
            ? clm_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_.selfLayers())
            : s2s_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_.selfLayers(),
                                            pool_.crossLayers(),
                                            pads.data());

    if (cfg_.tap_activations) {
        qs_.fwd_tap = std::move(prev_tap);
        if (tap_tripped)
            ++metrics_.tap_nonfinite_steps;
    }

    if (cfg_.fault != nullptr) {
        cfg_.fault->onLogits(step_idx_, req_ids, slots, logits);
        cfg_.fault->onKvPanels(step_idx_, req_ids, slots,
                               pool_.selfLayers());
    }
    ++step_idx_;

    const double now = nowMs();
    ++metrics_.steps;
    metrics_.busy_ms += now - t0;

    // Consume logits back-to-front so retirements don't shift the rows
    // still to be processed (row i belongs to active_[i]).
    for (size_t i = n; i-- > 0;) {
        Active &a = *active_[i];
        ++a.pos;

        // Numeric-fault isolation: a non-finite row poisons only its
        // own request. Retire it with its partial output instead of
        // sampling garbage; rows are sequence-independent, so the
        // neighbours' bits are untouched (DESIGN.md §9/§10).
        if (cfg_.guard_logits &&
            !rowFinite(logits, static_cast<int64_t>(i))) {
            retireLocked(i, RequestStatus::kNumericFault, now, done);
            continue;
        }

        if (clm_ != nullptr && a.prompt_next + 1 < a.req.prompt.size()) {
            // Prefill row: this step consumed prompt[prompt_next]; the
            // logits predict a token the prompt already pins down.
            ++a.prompt_next;
            a.next_input = a.req.prompt[a.prompt_next];
            continue;
        }

        const int32_t tok =
            sampleToken(logits, static_cast<int64_t>(i), a.req.sampling,
                        a.rng);
        if (clm_ != nullptr)
            a.prompt_next = a.req.prompt.size(); // prefill done
        if (a.first_token_ms < 0.0) {
            a.first_token_ms = now;
            metrics_.token_latency_ms.record(now - a.submit_ms);
        } else {
            metrics_.token_latency_ms.record(now - a.last_token_ms);
        }
        a.last_token_ms = now;

        if (a.req.eos >= 0 && tok == a.req.eos) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.out.push_back(tok);
        if (static_cast<int64_t>(a.out.size()) >= a.req.max_new_tokens) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.next_input = tok;
    }
    if (trace::collecting())
        trace::counter("serve/retired",
                       static_cast<double>(metrics_.completed -
                                           retired_before));
    return true;
}

void
ServeEngine::runUntilIdle()
{
    while (activeCount() > 0 || pendingCount() > 0)
        step();
}

bool
ServeEngine::hasWork()
{
    if (active_n_.load() > 0 || queue_.size() > 0)
        return true;
    std::lock_guard<std::mutex> lock(cancel_mu_);
    return !cancel_ids_.empty();
}

void
ServeEngine::start()
{
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (thread_.joinable())
        return; // already running
    queue_.reopen();
    stop_request_.store(0);
    thread_running_.store(true);
    thread_ = std::thread(&ServeEngine::threadMain, this);
}

void
ServeEngine::stop(StopMode mode)
{
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!thread_.joinable())
        return;
    stop_request_.store(mode == StopMode::kAbort ? 2 : 1);
    wake();
    thread_.join();
    thread_running_.store(false);
}

void
ServeEngine::threadMain()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(wake_mu_);
            wake_cv_.wait(lk, [this] {
                return stop_request_.load() != 0 || hasWork();
            });
        }
        if (stop_request_.load() == 2)
            break; // abort: resolve in-flight below
        if (!hasWork()) {
            if (stop_request_.load() == 1)
                break; // drain complete
            continue;  // spurious wakeup
        }
        step();
    }
    if (stop_request_.load() == 2)
        abortAll();
}

void
ServeEngine::abortAll()
{
    std::vector<Resolution> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Close first: a submission either landed before this drain
        // (resolved here) or gets the typed kEngineStopped at submit().
        std::vector<PendingRequest> drained = queue_.closeAndDrain();
        for (PendingRequest &p : drained)
            resolveUnadmittedLocked(std::move(p),
                                    RequestStatus::kEngineStopped, done);
        const double now = nowMs();
        for (size_t i = active_.size(); i-- > 0;)
            retireLocked(i, RequestStatus::kEngineStopped, now, done);
    }
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        cancel_ids_.clear(); // everything they named is resolved
    }
    deliver(done);
}

} // namespace qt8::serve
