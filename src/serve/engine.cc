#include "serve/engine.h"

#include <algorithm>
#include <cassert>

#include "serve/sampler.h"

namespace qt8::serve {
namespace {

EngineConfig
normalized(EngineConfig cfg, int64_t max_seq)
{
    assert(cfg.n_slots > 0);
    if (cfg.slot_capacity <= 0 || cfg.slot_capacity > max_seq)
        cfg.slot_capacity = max_seq;
    if (cfg.cross_capacity <= 0)
        cfg.cross_capacity = cfg.slot_capacity;
    return cfg;
}

} // namespace

/// One in-flight request: its slot, decode cursor, prefill progress,
/// sampling stream, output so far, and timing marks.
struct ServeEngine::Active
{
    Active(PendingRequest &&p, int32_t slot_id)
        : id(p.id), req(std::move(p.request)), promise(std::move(p.promise)),
          slot(slot_id), rng(req.sampling.seed), submit_ms(p.submit_ms)
    {}

    uint64_t id;
    Request req;
    std::promise<RequestResult> promise;
    int32_t slot;
    int64_t pos = 0;        ///< Next decode position (rows in the slot).
    size_t prompt_next = 0; ///< CausalLM: next prompt index to feed.
    int32_t next_input = 0; ///< Token fed on the coming step.
    std::vector<int32_t> out;
    Rng rng;
    double submit_ms;
    double first_token_ms = -1.0;
    double last_token_ms = -1.0;
};

ServeEngine::~ServeEngine() = default;

ServeEngine::ServeEngine(CausalLM &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(&model, nullptr, qs, cfg)
{}

ServeEngine::ServeEngine(Seq2Seq &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(nullptr, &model, qs, cfg)
{}

ServeEngine::ServeEngine(CausalLM *clm, Seq2Seq *s2s, QuantSession &qs,
                         EngineConfig cfg)
    : clm_(clm), s2s_(s2s), qs_(qs),
      cfg_(normalized(cfg, clm != nullptr
                               ? clm->body.config().max_seq
                               : s2s->encoder.config().max_seq)),
      queue_(cfg_.max_queue_depth),
      pool_(cfg_.n_slots, cfg_.slot_capacity,
            clm != nullptr ? clm->body.config().d_model
                           : s2s->encoder.config().d_model,
            clm != nullptr ? clm->body.blocks.size()
                           : s2s->dec_blocks.size(),
            s2s != nullptr ? s2s->dec_blocks.size() : 0,
            cfg_.cross_capacity),
      start_(std::chrono::steady_clock::now())
{}

double
ServeEngine::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::shared_future<RequestResult>
ServeEngine::submit(Request req)
{
    PendingRequest p;
    {
        std::lock_guard<std::mutex> lock(submit_mu_);
        p.id = next_id_++;
    }
    p.request = std::move(req);
    p.submit_ms = nowMs();
    std::shared_future<RequestResult> fut =
        p.promise.get_future().share();

    // A failed tryPush leaves p untouched (it only moves on success),
    // so the original promise can carry the typed rejection: the
    // future resolves immediately, nothing is admitted, and the caller
    // can retry or back off.
    if (!queue_.tryPush(std::move(p))) {
        RequestResult r;
        r.id = p.id;
        r.status = RequestStatus::kRejectedQueueFull;
        {
            std::lock_guard<std::mutex> lock(submit_mu_);
            ++metrics_.rejected;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
    }
    return fut;
}

bool
ServeEngine::admitOne(PendingRequest &&p)
{
    const int32_t slot = pool_.acquire();
    assert(slot >= 0 && "admit() checked freeCount");

    auto a = std::make_unique<Active>(std::move(p), slot);

    if (clm_ != nullptr) {
        if (a->req.prompt.empty() || a->req.max_new_tokens <= 0) {
            // Degenerate request: nothing to decode.
            active_.push_back(std::move(a));
            retire(active_.size() - 1, RequestStatus::kOk, nowMs());
            return true;
        }
        a->next_input = a->req.prompt[0];
        active_.push_back(std::move(a));
        return true;
    }

    // Seq2Seq admission: encode the source once (batch 1 — identical
    // bits to any batch, rows being independent) and park the projected
    // K/V panels in this request's cross slots.
    const int64_t seq_src =
        static_cast<int64_t>(a->req.prompt.size());
    const uint8_t *pad =
        a->req.src_pad.empty() ? nullptr : a->req.src_pad.data();
    if (seq_src == 0 || a->req.max_new_tokens <= 0) {
        active_.push_back(std::move(a));
        retire(active_.size() - 1, RequestStatus::kOk, nowMs());
        return true;
    }
    const Tensor memory = s2s_->encodeOne(qs_, a->req.prompt, seq_src, pad);
    if (!s2s_->primeCrossSlots(qs_, memory, seq_src, pool_.crossLayers(),
                               a->slot)) {
        // Source longer than the cross-attention pool: typed error
        // instead of an assert, slot returned immediately.
        active_.push_back(std::move(a));
        retire(active_.size() - 1, RequestStatus::kCapacityExceeded,
               nowMs());
        return true;
    }
    a->next_input = a->req.bos;
    active_.push_back(std::move(a));
    return true;
}

void
ServeEngine::admit()
{
    while (pool_.freeCount() > 0) {
        PendingRequest p;
        if (!queue_.tryPop(p))
            break;
        admitOne(std::move(p));
    }
}

void
ServeEngine::retire(size_t idx, RequestStatus status, double now_ms)
{
    Active &a = *active_[idx];

    RequestResult r;
    r.id = a.id;
    r.status = status;
    r.tokens = a.out;
    r.prompt_tokens = static_cast<int64_t>(a.req.prompt.size());
    r.ttft_ms =
        a.first_token_ms >= 0.0 ? a.first_token_ms - a.submit_ms : 0.0;
    r.latency_ms = now_ms - a.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.generated_tokens = static_cast<int64_t>(r.tokens.size());
    rec.ttft_ms = r.ttft_ms;
    rec.latency_ms = r.latency_ms;
    rec.tokens_per_sec =
        r.latency_ms > 0.0
            ? static_cast<double>(rec.generated_tokens) /
                  (r.latency_ms / 1000.0)
            : 0.0;
    metrics_.recordRetirement(rec);

    pool_.release(a.slot);
    a.promise.set_value(r);
    if (a.req.on_complete)
        a.req.on_complete(r);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
}

bool
ServeEngine::step()
{
    const double t0 = nowMs();
    admit();

    // Sequences whose slot is full cannot take another position: retire
    // them with the typed overflow status (output kept, truncated).
    for (size_t i = active_.size(); i-- > 0;) {
        if (pool_.slotLen(active_[i]->slot) >= pool_.capacity())
            retire(i, RequestStatus::kCapacityExceeded, nowMs());
    }
    // Retirements may have opened slots for queued work this same step.
    admit();

    if (active_.empty()) {
        ++metrics_.idle_steps;
        return false;
    }

    const size_t n = active_.size();
    std::vector<int32_t> ids(n);
    std::vector<int64_t> positions(n);
    std::vector<int32_t> slots(n);
    std::vector<const uint8_t *> pads(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
        const Active &a = *active_[i];
        ids[i] = a.next_input;
        positions[i] = a.pos;
        slots[i] = a.slot;
        if (s2s_ != nullptr && !a.req.src_pad.empty())
            pads[i] = a.req.src_pad.data();
    }

    const Tensor logits =
        clm_ != nullptr
            ? clm_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_.selfLayers())
            : s2s_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_.selfLayers(),
                                            pool_.crossLayers(),
                                            pads.data());

    const double now = nowMs();
    ++metrics_.steps;
    metrics_.busy_ms += now - t0;

    // Consume logits back-to-front so retirements don't shift the rows
    // still to be processed (row i belongs to active_[i]).
    for (size_t i = n; i-- > 0;) {
        Active &a = *active_[i];
        ++a.pos;

        if (clm_ != nullptr && a.prompt_next + 1 < a.req.prompt.size()) {
            // Prefill row: this step consumed prompt[prompt_next]; the
            // logits predict a token the prompt already pins down.
            ++a.prompt_next;
            a.next_input = a.req.prompt[a.prompt_next];
            continue;
        }

        const int32_t tok =
            sampleToken(logits, static_cast<int64_t>(i), a.req.sampling,
                        a.rng);
        if (clm_ != nullptr)
            a.prompt_next = a.req.prompt.size(); // prefill done
        if (a.first_token_ms < 0.0) {
            a.first_token_ms = now;
            metrics_.token_latency_ms.record(now - a.submit_ms);
        } else {
            metrics_.token_latency_ms.record(now - a.last_token_ms);
        }
        a.last_token_ms = now;

        if (a.req.eos >= 0 && tok == a.req.eos) {
            retire(i, RequestStatus::kOk, now);
            continue;
        }
        a.out.push_back(tok);
        if (static_cast<int64_t>(a.out.size()) >= a.req.max_new_tokens) {
            retire(i, RequestStatus::kOk, now);
            continue;
        }
        a.next_input = tok;
    }
    return true;
}

void
ServeEngine::runUntilIdle()
{
    while (activeCount() > 0 || pendingCount() > 0)
        step();
}

} // namespace qt8::serve
