#include "serve/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "serve/sampler.h"
#include "util/trace.h"
#include "tensor/ops.h"

namespace qt8::serve {
namespace {

EngineConfig
normalized(EngineConfig cfg, int64_t max_seq)
{
    assert(cfg.n_slots > 0);
    if (cfg.slot_capacity <= 0 || cfg.slot_capacity > max_seq)
        cfg.slot_capacity = max_seq;
    if (cfg.cross_capacity <= 0)
        cfg.cross_capacity = cfg.slot_capacity;
    if (cfg.paged) {
        if (cfg.page_size <= 0)
            cfg.page_size = 16;
        if (cfg.prefill_chunk <= 0)
            cfg.prefill_chunk = cfg.page_size;
        // Default arenas match the slab pool's footprint exactly, so
        // paged-vs-slab comparisons run at identical KV RAM.
        if (cfg.n_pages <= 0)
            cfg.n_pages = cfg.n_slots *
                          PagedKVPool::pagesFor(cfg.slot_capacity,
                                                cfg.page_size);
        if (cfg.n_cross_pages <= 0)
            cfg.n_cross_pages = cfg.n_slots *
                                PagedKVPool::pagesFor(cfg.cross_capacity,
                                                      cfg.page_size);
    }
    return cfg;
}

/// Session-table key for a preemption checkpoint: the high bit keeps
/// engine-generated keys disjoint from any user session_id (whose ids
/// the engine never mints), so a victim's spilled rows can ride the
/// normal tiered-KV table without colliding with real sessions.
constexpr uint64_t kPreemptKeyBit = 1ull << 63;

/// Non-finite scan of one logits row — the per-slot numeric guard.
bool
rowFinite(const Tensor &logits, int64_t row)
{
    const int64_t n = logits.dim(1);
    const float *p = logits.data() + row * n;
    for (int64_t j = 0; j < n; ++j)
        if (!std::isfinite(p[j]))
            return false;
    return true;
}

} // namespace

/// One in-flight request: its slot, decode cursor, prefill progress,
/// sampling stream, output so far, and timing marks.
struct ServeEngine::Active
{
    Active(PendingRequest &&p, int32_t slot_id)
        : id(p.id), req(std::move(p.request)), promise(std::move(p.promise)),
          slot(slot_id), session_kv(p.session_kv_hint),
          rng(req.sampling.seed), submit_ms(p.submit_ms),
          deadline_ms(p.deadline_ms)
    {}

    uint64_t id;
    Request req;
    std::promise<RequestResult> promise;
    int32_t slot; ///< Slab: pool slot. Paged: virtual slot id (fault
                  ///< targeting / metric parity with the slab engine).
    int64_t pos = 0;        ///< Next decode position (rows in the slot).
    size_t prompt_next = 0; ///< CausalLM: next prompt index to feed.
    PagedSeq pseq;          ///< Paged mode: page tables.
    int64_t prefill_pos = 0; ///< Paged CausalLM: next prompt row to
                             ///< compute (rows below are cached).
    bool kv_poisoned = false; ///< Paged: a fault hit one of our pages;
                              ///< never donate them to the cache.
    int64_t worst_pages = 0;  ///< Paged: worst-case self-page demand
                              ///< (clamped to the arena), reserved
                              ///< against at admission.
    /// Tiered KV sessions: where this request's history rows came
    /// from, and how many were reused without recompute.
    SessionKVSource session_kv = SessionKVSource::kNone;
    int64_t session_reused = 0;
    int32_t next_input = 0; ///< Token fed on the coming step.
    std::vector<int32_t> out;
    /// Preemption replay: after a spill-and-requeue round trip the
    /// "prompt" the engine prefills is the original prompt plus every
    /// token generated before the interrupt — the KV rows and the
    /// sampling stream (rng lives in this object, untouched) continue
    /// exactly where they stopped, so the full output is bit-identical
    /// to the uninterrupted decode. Empty = never preempted.
    std::vector<int32_t> replay;
    int64_t preemptions = 0;     ///< Preempt-resume round trips.
    int64_t min_victim_step = 0; ///< Cooldown: not a victim again
                                 ///< before this step (anti-livelock).
    const std::vector<int32_t> &effPrompt() const
    {
        return replay.empty() ? req.prompt : replay;
    }
    Rng rng;
    double submit_ms;
    double deadline_ms; ///< Engine-clock deadline; 0 = none.
    double first_token_ms = -1.0;
    double last_token_ms = -1.0;
};

ServeEngine::~ServeEngine()
{
    // An owned scheduler thread must never outlive the engine; abort
    // resolves whatever is still in flight with kEngineStopped.
    stop(StopMode::kAbort);
}

ServeEngine::ServeEngine(CausalLM &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(&model, nullptr, qs, cfg)
{}

ServeEngine::ServeEngine(Seq2Seq &model, QuantSession &qs,
                         EngineConfig cfg)
    : ServeEngine(nullptr, &model, qs, cfg)
{}

ServeEngine::ServeEngine(CausalLM *clm, Seq2Seq *s2s, QuantSession &qs,
                         EngineConfig cfg)
    : clm_(clm), s2s_(s2s), qs_(qs),
      cfg_(normalized(cfg, clm != nullptr
                               ? clm->body.config().max_seq
                               : s2s->encoder.config().max_seq)),
      queue_(cfg_.max_queue_depth, cfg_.sched),
      start_(std::chrono::steady_clock::now())
{
    const int64_t d_model = clm != nullptr
                                ? clm->body.config().d_model
                                : s2s->encoder.config().d_model;
    const size_t n_self = clm != nullptr ? clm->body.blocks.size()
                                         : s2s->dec_blocks.size();
    const size_t n_cross = s2s != nullptr ? s2s->dec_blocks.size() : 0;
    if (cfg_.paged) {
        PagedKVPool::Config pc;
        pc.n_pages = cfg_.n_pages;
        pc.page_size = cfg_.page_size;
        pc.d_model = d_model;
        pc.n_self_layers = n_self;
        pc.n_cross_layers = n_cross;
        pc.n_cross_pages = n_cross > 0 ? cfg_.n_cross_pages : 0;
        pc.packed_fmt = qs.config().kvPackedFormat();
        // The radix cache only applies to CausalLM prompts (a Seq2Seq
        // source primes cross panels, never the self cache).
        pc.prefix_cache = cfg_.prefix_cache && clm != nullptr;
        ppool_ = std::make_unique<PagedKVPool>(pc);
        if (clm != nullptr) {
            // Tiered KV sessions ride on the paged CausalLM pool; an
            // empty table costs nothing when no request carries a
            // session_id.
            SpillManager::Config sc;
            sc.dir = cfg_.spill_dir;
            sc.low_pages = cfg_.spill_low_pages;
            sc.high_pages = cfg_.spill_high_pages;
            sc.max_sessions = cfg_.max_sessions > 0
                                  ? static_cast<size_t>(cfg_.max_sessions)
                                  : 64;
            sc.fault = cfg_.fault;
            smgr_ = std::make_unique<SpillManager>(sc, *ppool_,
                                                   cfg_.slot_capacity);
        }
    } else {
        pool_ = std::make_unique<KVCachePool>(
            cfg_.n_slots, cfg_.slot_capacity, d_model, n_self, n_cross,
            cfg_.cross_capacity, qs.config().kvPackedFormat());
    }
}

double
ServeEngine::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

int64_t
ServeEngine::freeSlots() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ppool_ != nullptr)
        return ppool_->availablePages();
    return static_cast<int64_t>(pool_->freeCount());
}

size_t
ServeEngine::kvBytesPerSlot() const
{
    if (ppool_ != nullptr)
        return ppool_->bytesPerPage() *
               static_cast<size_t>(PagedKVPool::pagesFor(
                   cfg_.slot_capacity, cfg_.page_size));
    return pool_->bytesPerSlot();
}

ServeMetrics
ServeEngine::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_;
}

RequestStatus
ServeEngine::validate(const Request &req) const
{
    if (req.prompt.empty() || req.max_new_tokens <= 0)
        return RequestStatus::kRejectedInvalid;
    // A rate-limited tenant whose single request exceeds its bucket
    // capacity could never become eligible: typed rejection now
    // instead of queueing forever.
    if (tokenCost(req) > cfg_.sched.burstFor(req.tenant_id))
        return RequestStatus::kRejectedInvalid;
    const int64_t plen = static_cast<int64_t>(req.prompt.size());
    if (clm_ != nullptr) {
        // The prompt alone must fit the slot, or prefill can never
        // complete and no token can be emitted.
        if (plen > cfg_.slot_capacity)
            return RequestStatus::kRejectedInvalid;
        // Paged: the first prefill chunk (plus one decode headroom
        // page) must be admittable even with every page free, or the
        // request would park forever.
        if (cfg_.paged &&
            PagedKVPool::pagesFor(std::min(plen, cfg_.prefill_chunk),
                                  cfg_.page_size) +
                    1 >
                cfg_.n_pages)
            return RequestStatus::kRejectedInvalid;
    } else {
        if (plen > cfg_.cross_capacity)
            return RequestStatus::kRejectedInvalid;
        if (!req.src_pad.empty() &&
            req.src_pad.size() != req.prompt.size())
            return RequestStatus::kRejectedInvalid;
        if (cfg_.paged &&
            (PagedKVPool::pagesFor(plen, cfg_.page_size) >
                 cfg_.n_cross_pages ||
             cfg_.n_pages < 1))
            return RequestStatus::kRejectedInvalid;
    }
    return RequestStatus::kOk;
}

void
ServeEngine::deliver(std::vector<Resolution> &done)
{
    for (Resolution &d : done) {
        d.promise.set_value(d.result);
        if (d.callback)
            d.callback(d.result);
    }
    done.clear();
}

void
ServeEngine::wake()
{
    // Taking wake_mu_ (even empty) pairs the notify with the waiter's
    // predicate-to-sleep window, so a wakeup can never be lost.
    { std::lock_guard<std::mutex> lock(wake_mu_); }
    wake_cv_.notify_all();
}

std::shared_future<RequestResult>
ServeEngine::submit(Request req, uint64_t *id_out)
{
    PendingRequest p;
    p.id = next_id_.fetch_add(1);
    if (id_out != nullptr)
        *id_out = p.id;
    p.request = std::move(req);
    p.submit_ms = nowMs();
    p.deadline_ms = p.request.timeout_ms > 0.0
                        ? p.submit_ms + p.request.timeout_ms
                        : 0.0;
    std::shared_future<RequestResult> fut =
        p.promise.get_future().share();

    // Typed rejection instead of UB/asserts deeper in the stack: an
    // invalid request never touches the queue or the pool.
    const RequestStatus v = validate(p.request);
    if (v != RequestStatus::kOk) {
        RequestResult r;
        r.id = p.id;
        r.status = v;
        r.prompt_tokens = static_cast<int64_t>(p.request.prompt.size());
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.rejected_invalid;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }

    // A failed tryPush leaves p untouched (it only moves on success),
    // so the original promise can carry the typed rejection: the
    // future resolves immediately, nothing is admitted, and the caller
    // can retry or back off.
    const size_t cls = static_cast<size_t>(p.request.priority_class);
    switch (queue_.tryPush(std::move(p))) {
    case RequestQueue::PushResult::kOk: {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.per_class[cls].submitted;
        }
        wake();
        return fut;
    }
    case RequestQueue::PushResult::kFull: {
        RequestResult r;
        r.id = p.id;
        r.status = RequestStatus::kRejectedQueueFull;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.rejected;
            ++metrics_.per_class[cls].rejected;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }
    case RequestQueue::PushResult::kClosed:
    default: {
        // The engine aborted: resolve with the same status its
        // in-flight peers received instead of parking forever.
        RequestResult r;
        r.id = p.id;
        r.status = RequestStatus::kEngineStopped;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.stopped;
        }
        p.promise.set_value(r);
        if (p.request.on_complete)
            p.request.on_complete(r);
        return fut;
    }
    }
}

bool
ServeEngine::cancel(uint64_t id)
{
    if (id == 0 || id >= next_id_.load())
        return false; // never issued by this engine
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        cancel_ids_.push_back(id);
    }
    wake();
    return true;
}

bool
ServeEngine::admitOneLocked(PendingRequest &&p,
                            std::vector<Resolution> &done)
{
    const int32_t slot = pool_->acquire();
    assert(slot >= 0 && "admitLocked checked freeCount");

    auto a = std::make_unique<Active>(std::move(p), slot);

    if (clm_ != nullptr) {
        // validate() guarantees a non-empty prompt and positive budget.
        a->next_input = a->req.prompt[0];
        active_.push_back(std::move(a));
        active_n_.store(active_.size());
        return true;
    }

    // Seq2Seq admission: encode the source once (batch 1 — identical
    // bits to any batch, rows being independent) and park the projected
    // K/V panels in this request's cross slots.
    const int64_t seq_src = static_cast<int64_t>(a->req.prompt.size());
    const uint8_t *pad =
        a->req.src_pad.empty() ? nullptr : a->req.src_pad.data();
    const Tensor memory = s2s_->encodeOne(qs_, a->req.prompt, seq_src, pad);
    if (!s2s_->primeCrossSlots(qs_, memory, seq_src, pool_->crossLayers(),
                               a->slot)) {
        // Source longer than the cross-attention pool (defensive —
        // validate() bounds it): typed error instead of an assert,
        // slot returned immediately.
        active_.push_back(std::move(a));
        active_n_.store(active_.size());
        retireLocked(active_.size() - 1, RequestStatus::kCapacityExceeded,
                     nowMs(), done);
        return true;
    }
    a->next_input = a->req.bos;
    active_.push_back(std::move(a));
    active_n_.store(active_.size());
    return true;
}

int
ServeEngine::admitLocked(std::vector<Resolution> &done)
{
    int admitted = 0;
    while (pool_->freeCount() > 0) {
        if (cfg_.fault != nullptr && cfg_.fault->onAcquire())
            break; // injected allocation failure: retry next step
        PendingRequest p;
        if (!queue_.tryPop(nowMs(), p))
            break;
        admitOneLocked(std::move(p), done);
        ++admitted;
    }
    return admitted;
}

void
ServeEngine::retireLocked(size_t idx, RequestStatus status, double now_ms,
                          std::vector<Resolution> &done)
{
    Active &a = *active_[idx];

    RequestResult r;
    r.id = a.id;
    r.status = status;
    r.tokens = a.out;
    r.prompt_tokens = static_cast<int64_t>(a.req.prompt.size());
    r.prefix_reused_tokens = a.pseq.shared_rows;
    r.session_kv = a.session_kv;
    r.session_reused_tokens = a.session_reused;
    r.ttft_ms =
        a.first_token_ms >= 0.0 ? a.first_token_ms - a.submit_ms : 0.0;
    r.latency_ms = now_ms - a.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.generated_tokens = static_cast<int64_t>(r.tokens.size());
    rec.ttft_ms = r.ttft_ms;
    rec.latency_ms = r.latency_ms;
    rec.tokens_per_sec =
        r.latency_ms > 0.0
            ? static_cast<double>(rec.generated_tokens) /
                  (r.latency_ms / 1000.0)
            : 0.0;
    rec.priority_class = a.req.priority_class;
    rec.tenant_id = a.req.tenant_id;
    rec.preemptions = a.preemptions;
    if (status == RequestStatus::kOk) {
        const ClassPolicy &pol =
            cfg_.sched.policyFor(a.req.priority_class);
        rec.slo_met =
            (pol.ttft_slo_ms <= 0.0 || r.ttft_ms <= pol.ttft_slo_ms) &&
            (pol.latency_slo_ms <= 0.0 ||
             r.latency_ms <= pol.latency_slo_ms);
    }
    metrics_.recordRetirement(rec);

    if (ppool_ != nullptr) {
        if (status == RequestStatus::kNumericFault) {
            // A numeric fault may have poisoned any of this request's
            // K/V pages; pages it donated to the prefix cache must not
            // be re-shared with future requests. Pages still mapped by
            // concurrent sequences stay resident (those sequences were
            // flagged by the injector's sharer scan).
            for (const int32_t pg : a.pseq.pages)
                ppool_->dropCachedPage(pg);
        }
        // Tiered KV sessions: a clean kOk retirement retains its pages
        // as the idle session for this key; the history tokens (prompt
        // ++ generated, truncated to the cached rows) key the next
        // turn's resume. Any other status — and any poisoned pages —
        // drops the session instead: a partial or corrupt history must
        // never silently seed a future turn.
        bool retained = false;
        const uint64_t sid = a.req.session_id;
        if (smgr_ != nullptr && sid != 0) {
            if (status == RequestStatus::kOk && !a.kv_poisoned &&
                a.pseq.len > 0) {
                std::vector<int32_t> hist = a.req.prompt;
                hist.insert(hist.end(), a.out.begin(), a.out.end());
                if (static_cast<int64_t>(hist.size()) >= a.pseq.len) {
                    hist.resize(static_cast<size_t>(a.pseq.len));
                    smgr_->endTurn(sid, std::move(hist),
                                   std::move(a.pseq));
                    retained = true;
                }
            }
            if (!retained)
                smgr_->dropSession(sid);
        }
        if (!retained)
            ppool_->releaseSeq(a.pseq);
        vslot_free_.push_back(a.slot);
    } else {
        pool_->release(a.slot);
    }
    done.push_back(Resolution{std::move(a.promise), std::move(r),
                              std::move(a.req.on_complete)});
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
    active_n_.store(active_.size());
}

void
ServeEngine::resolveUnadmittedLocked(PendingRequest &&p,
                                     RequestStatus status,
                                     std::vector<Resolution> &done)
{
    RequestResult r;
    r.id = p.id;
    r.status = status;
    r.prompt_tokens = static_cast<int64_t>(p.request.prompt.size());
    r.latency_ms = nowMs() - p.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.latency_ms = r.latency_ms;
    rec.priority_class = p.request.priority_class;
    rec.tenant_id = p.request.tenant_id;
    metrics_.recordRetirement(rec);

    done.push_back(Resolution{std::move(p.promise), std::move(r),
                              std::move(p.request.on_complete)});
}

void
ServeEngine::resolvePreemptedLocked(size_t idx, RequestStatus status,
                                    double now_ms,
                                    std::vector<Resolution> &done)
{
    Active &a = *preempted_[idx];
    // The checkpoint session — and its spill file, if the rows made it
    // to disk — dies with the request: a cancelled or expired victim
    // must leak neither pages nor files.
    if (smgr_ != nullptr)
        smgr_->dropSession(kPreemptKeyBit | a.id);

    RequestResult r;
    r.id = a.id;
    r.status = status;
    r.tokens = a.out;
    r.prompt_tokens = static_cast<int64_t>(a.req.prompt.size());
    r.session_kv = a.session_kv;
    r.session_reused_tokens = a.session_reused;
    r.ttft_ms =
        a.first_token_ms >= 0.0 ? a.first_token_ms - a.submit_ms : 0.0;
    r.latency_ms = now_ms - a.submit_ms;

    RequestRecord rec;
    rec.id = r.id;
    rec.status = status;
    rec.prompt_tokens = r.prompt_tokens;
    rec.generated_tokens = static_cast<int64_t>(r.tokens.size());
    rec.ttft_ms = r.ttft_ms;
    rec.latency_ms = r.latency_ms;
    rec.priority_class = a.req.priority_class;
    rec.tenant_id = a.req.tenant_id;
    rec.preemptions = a.preemptions;
    metrics_.recordRetirement(rec);

    done.push_back(Resolution{std::move(a.promise), std::move(r),
                              std::move(a.req.on_complete)});
    preempted_.erase(preempted_.begin() +
                     static_cast<std::ptrdiff_t>(idx));
    syncParkedCountLocked();
}

void
ServeEngine::processCancelsLocked(double now_ms,
                                  std::vector<Resolution> &done)
{
    std::vector<uint64_t> ids;
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        ids.swap(cancel_ids_);
    }
    for (const uint64_t id : ids) {
        bool found = false;
        for (size_t i = 0; i < active_.size(); ++i) {
            if (active_[i]->id == id) {
                retireLocked(i, RequestStatus::kCancelled, now_ms, done);
                found = true;
                break;
            }
        }
        if (found)
            continue;
        for (size_t i = 0; i < preempted_.size(); ++i) {
            if (preempted_[i]->id == id) {
                resolvePreemptedLocked(i, RequestStatus::kCancelled,
                                       now_ms, done);
                found = true;
                break;
            }
        }
        if (found)
            continue;
        for (auto &park : parked_) {
            if (park.has_value() && park->id == id) {
                PendingRequest p = std::move(*park);
                park.reset();
                syncParkedCountLocked();
                resolveUnadmittedLocked(std::move(p),
                                        RequestStatus::kCancelled, done);
                found = true;
                break;
            }
        }
        if (found)
            continue;
        PendingRequest p;
        if (queue_.extract(id, p))
            resolveUnadmittedLocked(std::move(p), RequestStatus::kCancelled,
                                    done);
        // Unknown / already finished: no-op.
    }
}

void
ServeEngine::expireDeadlinesLocked(double now_ms,
                                   std::vector<Resolution> &done)
{
    for (size_t i = active_.size(); i-- > 0;) {
        if (active_[i]->deadline_ms > 0.0 &&
            now_ms >= active_[i]->deadline_ms)
            retireLocked(i, RequestStatus::kDeadlineExceeded, now_ms,
                         done);
    }
    // Preempted victims carry their deadline through the round trip.
    for (size_t i = preempted_.size(); i-- > 0;) {
        if (preempted_[i]->deadline_ms > 0.0 &&
            now_ms >= preempted_[i]->deadline_ms)
            resolvePreemptedLocked(i, RequestStatus::kDeadlineExceeded,
                                   now_ms, done);
    }
    // Queued requests expire too — even while every slot is busy.
    for (auto &park : parked_) {
        if (park.has_value() && park->deadline_ms > 0.0 &&
            now_ms >= park->deadline_ms) {
            PendingRequest p = std::move(*park);
            park.reset();
            syncParkedCountLocked();
            resolveUnadmittedLocked(std::move(p),
                                    RequestStatus::kDeadlineExceeded,
                                    done);
        }
    }
    std::vector<PendingRequest> late =
        queue_.extractIf([now_ms](const PendingRequest &p) {
            return p.deadline_ms > 0.0 && now_ms >= p.deadline_ms;
        });
    for (PendingRequest &p : late)
        resolveUnadmittedLocked(std::move(p),
                                RequestStatus::kDeadlineExceeded, done);
}

bool
ServeEngine::step()
{
    std::vector<Resolution> done;
    bool ran;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ran = stepLocked(done);
    }
    // Promises/callbacks fire with no engine lock held, so a callback
    // may submit(), cancel(), or read a metrics snapshot.
    deliver(done);
    return ran;
}

bool
ServeEngine::stepLocked(std::vector<Resolution> &done)
{
    if (cfg_.paged)
        return stepPagedLocked(done);

    QT8_TRACE_SCOPE("serve/step");
    const int64_t retired_before = metrics_.completed;
    if (cfg_.fault != nullptr) {
        const double d = cfg_.fault->onStepDelayMs();
        if (d > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(d));
    }

    const double t0 = nowMs();
    processCancelsLocked(t0, done);
    expireDeadlinesLocked(t0, done);
    int admitted = admitLocked(done);

    // Sequences whose slot is full cannot take another position: retire
    // them with the typed overflow status (output kept, truncated).
    for (size_t i = active_.size(); i-- > 0;) {
        if (pool_->slotLen(active_[i]->slot) >= pool_->capacity())
            retireLocked(i, RequestStatus::kCapacityExceeded, nowMs(),
                         done);
    }
    // Retirements may have opened slots for queued work this same step.
    admitted += admitLocked(done);

    if (trace::collecting()) {
        trace::counter("serve/queue_depth",
                       static_cast<double>(queue_.size()));
        trace::counter("serve/active",
                       static_cast<double>(active_.size()));
        trace::counter("serve/admitted", admitted);
        trace::counter("serve/kv_bytes_resident",
                       static_cast<double>(pool_->residentKVBytes()));
    }

    if (active_.empty()) {
        ++metrics_.idle_steps;
        return false;
    }

    const size_t n = active_.size();
    std::vector<int32_t> ids(n);
    std::vector<uint64_t> req_ids(n);
    std::vector<int64_t> positions(n);
    std::vector<int32_t> slots(n);
    std::vector<const uint8_t *> pads(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
        const Active &a = *active_[i];
        ids[i] = a.next_input;
        req_ids[i] = a.id;
        positions[i] = a.pos;
        slots[i] = a.slot;
        if (s2s_ != nullptr && !a.req.src_pad.empty())
            pads[i] = a.req.src_pad.data();
    }

    // Optional activation tap: count steps where any pre-quantization
    // tensor went non-finite (diagnostic; forces serial attention).
    bool tap_tripped = false;
    std::function<void(OpClass, const Tensor &)> prev_tap;
    if (cfg_.tap_activations) {
        prev_tap = std::move(qs_.fwd_tap);
        qs_.fwd_tap = [&tap_tripped](OpClass, const Tensor &t) {
            if (!tap_tripped && !allFinite(t))
                tap_tripped = true;
        };
    }

    Tensor logits =
        clm_ != nullptr
            ? clm_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_->selfLayers())
            : s2s_->forwardIncrementalSlots(qs_, ids, positions, slots,
                                            pool_->selfLayers(),
                                            pool_->crossLayers(),
                                            pads.data());

    if (cfg_.tap_activations) {
        qs_.fwd_tap = std::move(prev_tap);
        if (tap_tripped)
            ++metrics_.tap_nonfinite_steps;
    }

    if (cfg_.fault != nullptr) {
        cfg_.fault->onLogits(step_idx_, req_ids, slots, logits);
        cfg_.fault->onKvPanels(step_idx_, req_ids, slots,
                               pool_->selfLayers());
    }
    ++step_idx_;

    const double now = nowMs();
    ++metrics_.steps;
    metrics_.busy_ms += now - t0;

    // Consume logits back-to-front so retirements don't shift the rows
    // still to be processed (row i belongs to active_[i]).
    for (size_t i = n; i-- > 0;) {
        Active &a = *active_[i];
        ++a.pos;

        // Numeric-fault isolation: a non-finite row poisons only its
        // own request. Retire it with its partial output instead of
        // sampling garbage; rows are sequence-independent, so the
        // neighbours' bits are untouched (DESIGN.md §9/§10).
        if (cfg_.guard_logits &&
            !rowFinite(logits, static_cast<int64_t>(i))) {
            retireLocked(i, RequestStatus::kNumericFault, now, done);
            continue;
        }

        if (clm_ != nullptr && a.prompt_next + 1 < a.req.prompt.size()) {
            // Prefill row: this step consumed prompt[prompt_next]; the
            // logits predict a token the prompt already pins down.
            ++a.prompt_next;
            a.next_input = a.req.prompt[a.prompt_next];
            continue;
        }

        const int32_t tok =
            sampleToken(logits, static_cast<int64_t>(i), a.req.sampling,
                        a.rng);
        if (clm_ != nullptr)
            a.prompt_next = a.req.prompt.size(); // prefill done
        if (a.first_token_ms < 0.0) {
            a.first_token_ms = now;
            metrics_.token_latency_ms.record(now - a.submit_ms);
        } else {
            metrics_.token_latency_ms.record(now - a.last_token_ms);
        }
        a.last_token_ms = now;

        if (a.req.eos >= 0 && tok == a.req.eos) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.out.push_back(tok);
        if (static_cast<int64_t>(a.out.size()) >= a.req.max_new_tokens) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.next_input = tok;
    }
    if (trace::collecting())
        trace::counter("serve/retired",
                       static_cast<double>(metrics_.completed -
                                           retired_before));
    return true;
}

int32_t
ServeEngine::acquireVSlotLocked()
{
    // Virtual slot ids keep fault targeting and trace parity with the
    // slab engine even though pages, not slots, back the KV rows.
    if (!vslot_free_.empty()) {
        const int32_t s = vslot_free_.back();
        vslot_free_.pop_back();
        return s;
    }
    return vslot_next_++;
}

bool
ServeEngine::admitPagedOneLocked(PendingRequest &p)
{
    const int64_t plen = static_cast<int64_t>(p.request.prompt.size());

    if (clm_ != nullptr) {
        // Cheap pre-check before touching the cache, so a parked
        // request retried every step doesn't spin the lookup counters:
        // the first chunk always needs at least one new page (the
        // match is capped at plen - 1), plus one page of decode
        // headroom so admission doesn't immediately stall.
        if (ppool_->availablePages() < 2)
            return false;

        // Worst-case page demand, needed both for the resume pre-gate
        // below and the admission gate proper: actual prompt + budget
        // length (the capacity win over the slab's flat slot_capacity
        // reservation), clamped to the arena.
        const int64_t worst_rows =
            std::min(plen + p.request.max_new_tokens, cfg_.slot_capacity);
        const int64_t worst =
            std::min(PagedKVPool::pagesFor(worst_rows, cfg_.page_size),
                     cfg_.n_pages);
        int64_t debt = 0;
        for (const auto &o : active_)
            debt += std::max<int64_t>(
                0, o->worst_pages -
                       static_cast<int64_t>(o->pseq.pages.size()));

        // Tiered KV sessions: a session-keyed request whose prompt
        // extends its retained history resumes those rows instead of
        // recomputing them — resident from RAM, restored from a spill
        // file, or (dead spill) falling through to the fresh path
        // below with a sticky kRecomputed provenance. The checkout is
        // committed only after every admission gate passes; a parked
        // resume goes back as a resident session.
        PagedSeq ps;
        SessionKVSource session_src = SessionKVSource::kNone;
        const uint64_t sid = p.request.session_id;
        if (smgr_ != nullptr && sid != 0) {
            // Pre-gate (mirrors admitPreemptedOneLocked): if the
            // admission gate is bound to reject this request, say so
            // *before* resume() drags a spilled session through the
            // pool — otherwise a parked head retried every step
            // restores the file, fails the gate, re-parks the pages
            // resident, stalls the actives (which spill the session
            // right back) and the engine livelocks doing disk IO with
            // zero token progress. Algebraically equivalent to the
            // post-restore gate: restored pages shrink availablePages
            // and the held count in lockstep; residentPages(sid) is 0
            // for a spilled session, and a stale entry it would have
            // dropped only ever frees pages (h >= 0), so a pre-gate
            // park is never a request the gate would have admitted.
            if (debt + worst >
                ppool_->availablePages() + smgr_->residentPages(sid))
                return false;
            SpillManager::Resume r =
                smgr_->resume(sid, p.request.prompt);
            if (r.retry)
                return false; // pool can't hold the restore yet: park
            if (r.source == SessionKVSource::kRecomputed)
                p.session_kv_hint = SessionKVSource::kRecomputed;
            if (r.source == SessionKVSource::kResident ||
                r.source == SessionKVSource::kRestoredFromSpill) {
                session_src = r.source;
                ps = std::move(r.seq);
            }
        }
        const auto unwind = [&] {
            if (session_src != SessionKVSource::kNone)
                smgr_->abortResume(sid, std::move(ps));
            else
                ppool_->releaseSeq(ps);
        };
        const int64_t session_rows = ps.len;

        if (session_src == SessionKVSource::kNone) {
            const PagedKVPool::PrefixMatch m =
                ppool_->matchPrefix(p.request.prompt, plen - 1);
            const int64_t len0 =
                m.rows + (m.partial_page >= 0 ? m.partial_rows : 0);
            const int64_t chunk_end =
                std::min(plen, len0 + cfg_.prefill_chunk);
            const int64_t need =
                PagedKVPool::pagesFor(chunk_end, cfg_.page_size) -
                static_cast<int64_t>(m.pages.size());
            if (ppool_->availablePages() < need + 1)
                return false;
            ppool_->adoptPrefix(ps, m);
        }

        // Reserve the first chunk's pages *now*: admission commits
        // real pages (the paged analogue of a slab slot), so a burst
        // of admissions can't collectively overcommit the arena
        // before any of them builds a row.
        if (!ppool_->ensureTail(
                ps, std::min(plen, ps.len + cfg_.prefill_chunk))) {
            unwind();
            return false;
        }

        // Worst-case gate: admit only while every in-flight request's
        // remaining worst-case growth still fits in obtainable pages.
        // Page draws and the gated sum shrink in lockstep, so a
        // request admitted under this invariant never stalls and is
        // never preempted: its tokens match the slab oracle bit for
        // bit. A request whose lone demand exceeds the arena is
        // clamped (best effort, may truncate kCapacityExceeded).
        if (debt + std::max<int64_t>(
                       0, worst - static_cast<int64_t>(ps.pages.size())) >
            ppool_->availablePages()) {
            unwind();
            return false;
        }
        if (session_src != SessionKVSource::kNone)
            smgr_->commitResume(sid); // admitted: entry consumed

        auto a = std::make_unique<Active>(std::move(p),
                                          acquireVSlotLocked());
        a->worst_pages = worst;
        a->pseq = std::move(ps);
        a->pos = a->prefill_pos = a->pseq.len;
        a->next_input = a->req.prompt[0];
        if (session_src != SessionKVSource::kNone) {
            a->session_kv = session_src;
            a->session_reused = session_rows;
        }
        active_.push_back(std::move(a));
        active_n_.store(active_.size());
        return true;
    }

    // Seq2Seq: the source must fit the cross arena now (primed once,
    // never grown) and at least one self page must be obtainable for
    // the first decode row. Checks precede the encode so a parked
    // request never pays the encoder twice... per admission attempt.
    const int64_t need_cross = PagedKVPool::pagesFor(plen, cfg_.page_size);
    if (ppool_->crossFreePages() < need_cross ||
        ppool_->availablePages() < 2)
        return false;
    PagedSeq ps;
    if (!ppool_->ensureTail(ps, 1)) { // reserve the first decode page
        ppool_->releaseSeq(ps);
        return false;
    }

    // Same worst-case gate as the CausalLM path, over decode rows
    // (self pages hold only target positions here).
    const int64_t worst_rows =
        std::min(p.request.max_new_tokens + 1, cfg_.slot_capacity);
    const int64_t worst = std::min(
        PagedKVPool::pagesFor(worst_rows, cfg_.page_size), cfg_.n_pages);
    int64_t debt = 0;
    for (const auto &o : active_)
        debt += std::max<int64_t>(
            0, o->worst_pages - static_cast<int64_t>(o->pseq.pages.size()));
    if (debt + std::max<int64_t>(
                   0, worst - static_cast<int64_t>(ps.pages.size())) >
        ppool_->availablePages()) {
        ppool_->releaseSeq(ps);
        return false;
    }

    auto a = std::make_unique<Active>(std::move(p), acquireVSlotLocked());
    a->worst_pages = worst;
    a->pseq = std::move(ps);
    const uint8_t *pad =
        a->req.src_pad.empty() ? nullptr : a->req.src_pad.data();
    const Tensor memory = s2s_->encodeOne(qs_, a->req.prompt, plen, pad);
    const bool ok = ppool_->allocCross(a->pseq, plen);
    assert(ok && "crossFreePages checked above");
    (void)ok;
    a->pseq.cross_len = plen;
    s2s_->primeCrossPages(qs_, memory, plen, ppool_->crossLayers(),
                          a->pseq.cross_pages.data(),
                          static_cast<int64_t>(a->pseq.cross_pages.size()));
    a->next_input = a->req.bos;
    active_.push_back(std::move(a));
    active_n_.store(active_.size());
    return true;
}

void
ServeEngine::syncParkedCountLocked()
{
    size_t n = preempted_.size();
    for (const auto &park : parked_)
        n += park.has_value() ? 1 : 0;
    parked_n_.store(n);
}

bool
ServeEngine::admitPagedWithPressureLocked(PendingRequest &p)
{
    if (admitPagedOneLocked(p))
        return true;
    // Hard memory pressure, first escalation: idle sessions are the
    // cheapest page consumer the scheduler can shed. Spill (or drop)
    // LRU idle sessions one at a time until the request admits or no
    // candidate remains. Bounded by the resident count at entry,
    // because an aborted resume re-parks as resident — without the
    // bound a restore/abort/spill cycle could spin.
    bool ok = false;
    int64_t budget = smgr_ != nullptr ? smgr_->residentSessions() : 0;
    while (!ok && budget-- > 0 && smgr_->spillOne())
        ok = admitPagedOneLocked(p);
    if (ok)
        return true;
    // Second escalation: preempt a strictly-lower-class in-flight
    // decode, spilling its rows through the session tier and parking
    // it for a bit-identical resume (DESIGN.md §16). Each round frees
    // the victim's pages immediately, after which the idle-spill loop
    // gets another bounded run. Bounded by the active set: every
    // round removes one victim.
    if (!cfg_.sched.preemption || smgr_ == nullptr || clm_ == nullptr)
        return false;
    while (!ok &&
           preemptLowestLocked(
               static_cast<int>(p.request.priority_class))) {
        ok = admitPagedOneLocked(p);
        int64_t b2 = ok ? 0 : smgr_->residentSessions();
        while (!ok && b2-- > 0 && smgr_->spillOne())
            ok = admitPagedOneLocked(p);
    }
    return ok;
}

bool
ServeEngine::preemptLowestLocked(int below_class)
{
    // Victim: the numerically largest (least urgent) class above
    // below_class; ties broken toward the most cached rows (frees the
    // most pages per interrupt). Freshly resumed requests are immune
    // for a couple of steps so two classes can't ping-pong one victim.
    int64_t best = -1;
    for (size_t i = 0; i < active_.size(); ++i) {
        const Active &a = *active_[i];
        if (static_cast<int>(a.req.priority_class) <= below_class)
            continue;
        if (step_idx_ < a.min_victim_step)
            continue;
        if (best < 0) {
            best = static_cast<int64_t>(i);
            continue;
        }
        const Active &b = *active_[static_cast<size_t>(best)];
        const int ca = static_cast<int>(a.req.priority_class);
        const int cb = static_cast<int>(b.req.priority_class);
        if (ca > cb || (ca == cb && a.pseq.len > b.pseq.len))
            best = static_cast<int64_t>(i);
    }
    if (best < 0)
        return false;
    preemptActiveLocked(static_cast<size_t>(best));
    return true;
}

void
ServeEngine::preemptActiveLocked(size_t idx)
{
    std::unique_ptr<Active> a = std::move(active_[idx]);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
    active_n_.store(active_.size());
    vslot_free_.push_back(a->slot);

    // Canonical token stream: everything the request has consumed or
    // emitted so far. At a step boundary the cache holds exactly its
    // first pseq.len rows (decode keeps the cache one row behind the
    // pending next_input), so rows [0, pseq.len) checkpoint as the
    // session history and the full stream becomes the replay prompt.
    std::vector<int32_t> stream = a->req.prompt;
    stream.insert(stream.end(), a->out.begin(), a->out.end());

    const uint64_t pkey = kPreemptKeyBit | a->id;
    if (a->pseq.len > 0 && !a->kv_poisoned &&
        static_cast<int64_t>(stream.size()) > a->pseq.len &&
        a->pseq.len < cfg_.slot_capacity) {
        std::vector<int32_t> hist(
            stream.begin(),
            stream.begin() + static_cast<std::ptrdiff_t>(a->pseq.len));
        smgr_->endTurn(pkey, std::move(hist), std::move(a->pseq));
        // Free the pages *now*: preemption exists to relieve pressure,
        // so the checkpoint goes straight to the disk tier — or is
        // dropped when spilling fails, in which case the resume
        // recomputes the rows (tokens unchanged either way).
        smgr_->spillSession(pkey);
    } else {
        // Poisoned or degenerate rows never seed a resume.
        ppool_->releaseSeq(a->pseq);
    }
    a->pseq = PagedSeq{};
    a->replay = std::move(stream);
    ++a->preemptions;
    ++metrics_.sched_preemptions;
    preempted_.push_back(std::move(a));
    syncParkedCountLocked();
}

bool
ServeEngine::admitPreemptedOneLocked(Active &a)
{
    if (cfg_.fault != nullptr && cfg_.fault->onAcquire())
        return false;
    if (ppool_->availablePages() < 2)
        return false;
    const std::vector<int32_t> &prompt = a.replay;
    const int64_t plen = static_cast<int64_t>(prompt.size());
    const uint64_t pkey = kPreemptKeyBit | a.id;

    // Pre-gate before touching the pool: the post-restore admission
    // gate reduces to debt + worst <= available + checkpoint-resident
    // pages (restored pages shrink both sides of the real gate in
    // lockstep), so a doomed resume can be rejected here *without*
    // restoring the spill — otherwise each retry would drag the
    // checkpoint into RAM, starve the very actives whose debt blocks
    // it, and ping-pong the pages back out every step.
    {
        int64_t debt = 0;
        for (const auto &o : active_)
            debt += std::max<int64_t>(
                0, o->worst_pages -
                       static_cast<int64_t>(o->pseq.pages.size()));
        if (debt + a.worst_pages >
            ppool_->availablePages() + smgr_->residentPages(pkey))
            return false;
    }

    // The checkout protocol mirrors session resume in
    // admitPagedOneLocked: the replay strictly extends the checkpoint
    // history, so a live checkpoint restores its rows (RAM or disk)
    // and a dead one falls through to a fresh chunked prefill —
    // either way the tokens replayed are the tokens checkpointed.
    PagedSeq ps;
    bool checked_out = false;
    SpillManager::Resume r = smgr_->resume(pkey, prompt);
    if (r.retry)
        return false; // pool can't hold the restore yet
    if (r.source == SessionKVSource::kResident ||
        r.source == SessionKVSource::kRestoredFromSpill) {
        ps = std::move(r.seq);
        checked_out = true;
    }
    const auto unwind = [&] {
        if (checked_out)
            smgr_->abortResume(pkey, std::move(ps));
        else
            ppool_->releaseSeq(ps);
    };

    if (!checked_out) {
        const PagedKVPool::PrefixMatch m =
            ppool_->matchPrefix(prompt, plen - 1);
        const int64_t len0 =
            m.rows + (m.partial_page >= 0 ? m.partial_rows : 0);
        const int64_t chunk_end = std::min(plen, len0 + cfg_.prefill_chunk);
        const int64_t need =
            PagedKVPool::pagesFor(chunk_end, cfg_.page_size) -
            static_cast<int64_t>(m.pages.size());
        if (ppool_->availablePages() < need + 1)
            return false;
        ppool_->adoptPrefix(ps, m);
    }
    if (!ppool_->ensureTail(
            ps, std::min(plen, ps.len + cfg_.prefill_chunk))) {
        unwind();
        return false;
    }
    // Same worst-case demand gate as first admission; worst_pages is
    // unchanged because the stream's final length is the same whether
    // or not it was interrupted.
    int64_t debt = 0;
    for (const auto &o : active_)
        debt += std::max<int64_t>(
            0, o->worst_pages -
                   static_cast<int64_t>(o->pseq.pages.size()));
    if (debt + std::max<int64_t>(
                   0, a.worst_pages -
                          static_cast<int64_t>(ps.pages.size())) >
        ppool_->availablePages()) {
        unwind();
        return false;
    }
    if (checked_out)
        smgr_->commitResume(pkey); // entry consumed

    a.pseq = std::move(ps);
    a.pos = a.prefill_pos = a.pseq.len;
    a.slot = acquireVSlotLocked();
    a.min_victim_step = step_idx_ + 2;
    return true;
}

int
ServeEngine::admitPagedLocked()
{
    int admitted = 0;
    const double now = nowMs();
    const auto capReached = [this] {
        return cfg_.max_active > 0 &&
               static_cast<int64_t>(active_.size()) >= cfg_.max_active;
    };
    std::array<bool, kNumClasses> blocked{};

    // Phase A, per class in priority order: resume preempted victims,
    // then retry the parked head. A class whose head is blocked stops
    // admitting (FIFO within the class) without blocking the others
    // (work conservation across classes).
    for (size_t c = 0; c < kNumClasses && !capReached(); ++c) {
        for (size_t i = 0; i < preempted_.size() && !capReached();) {
            Active &a = *preempted_[i];
            if (static_cast<size_t>(a.req.priority_class) != c) {
                ++i;
                continue;
            }
            if (!admitPreemptedOneLocked(a)) {
                blocked[c] = true;
                break;
            }
            active_.push_back(std::move(preempted_[i]));
            active_n_.store(active_.size());
            preempted_.erase(preempted_.begin() +
                             static_cast<std::ptrdiff_t>(i));
            ++metrics_.preempt_resumes;
            ++admitted;
        }
        if (blocked[c])
            continue;
        auto &park = parked_[c];
        if (park.has_value() && !capReached()) {
            if (admitPagedWithPressureLocked(*park)) {
                park.reset();
                ++admitted;
            } else {
                blocked[c] = true;
            }
        }
    }
    syncParkedCountLocked();

    // Phase B: fresh pops under the fair-share schedule (or global
    // FIFO), skipping classes whose head is already parked.
    while (!capReached()) {
        if (cfg_.fault != nullptr && cfg_.fault->onAcquire())
            break; // injected allocation failure: retry next step
        PendingRequest p;
        if (!queue_.tryPopScheduled(now, blocked, p))
            break;
        if (admitPagedWithPressureLocked(p)) {
            ++admitted;
            continue;
        }
        // Does not fit right now: park as this class's head so
        // backpressure never reorders requests within the class.
        const size_t c = static_cast<size_t>(p.request.priority_class);
        parked_[c] = std::move(p);
        blocked[c] = true;
        syncParkedCountLocked();
    }
    return admitted;
}

bool
ServeEngine::stepPagedLocked(std::vector<Resolution> &done)
{
    QT8_TRACE_SCOPE("serve/step_paged");
    const int64_t retired_before = metrics_.completed;
    if (cfg_.fault != nullptr) {
        const double d = cfg_.fault->onStepDelayMs();
        if (d > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(d));
    }

    const double t0 = nowMs();
    processCancelsLocked(t0, done);
    expireDeadlinesLocked(t0, done);
    // Injected forced preemption: interrupt a victim with no memory
    // pressure at all, exercising the checkpoint-resume identity path
    // at arbitrary points of the decode (chaos tests).
    if (cfg_.fault != nullptr && cfg_.sched.preemption &&
        smgr_ != nullptr && clm_ != nullptr && !active_.empty() &&
        cfg_.fault->onPreempt())
        preemptLowestLocked(-1);
    // Soft memory pressure: below the low watermark, write LRU idle
    // sessions out to the disk tier before admission competes for the
    // remaining pages (DESIGN.md §15).
    if (smgr_ != nullptr)
        smgr_->spillToWatermark();
    int admitted = admitPagedLocked();

    // slot_capacity still bounds every sequence, so truncation points
    // (and thus emitted tokens) match the slab oracle exactly.
    for (size_t i = active_.size(); i-- > 0;) {
        if (active_[i]->pos >= cfg_.slot_capacity)
            retireLocked(i, RequestStatus::kCapacityExceeded, nowMs(),
                         done);
    }
    admitted += admitPagedLocked();

    const auto syncPoolCounters = [this] {
        metrics_.prefix_lookups = ppool_->lookups();
        metrics_.prefix_hits = ppool_->hits();
        metrics_.prefix_reused_tokens = ppool_->reusedRows();
        metrics_.prefix_evictions = ppool_->evictions();
        metrics_.pages_resident_peak = std::max(
            metrics_.pages_resident_peak, ppool_->residentPages());
        if (smgr_ != nullptr) {
            const SpillManager::Stats ss = smgr_->stats();
            metrics_.sessions_spilled = ss.sessions_spilled;
            metrics_.sessions_restored = ss.sessions_restored;
            metrics_.sessions_recomputed = ss.sessions_recomputed;
            metrics_.sessions_resident_reused =
                ss.sessions_resident_reused;
            metrics_.sessions_dropped = ss.sessions_dropped;
            metrics_.spill_failures = ss.spill_failures;
            metrics_.spilled_bytes = ss.spilled_bytes;
            metrics_.restored_bytes = ss.restored_bytes;
            metrics_.sessions_resident = smgr_->residentSessions();
            metrics_.sessions_on_disk = smgr_->spilledSessions();
        }
    };

    if (trace::collecting()) {
        trace::counter("serve/queue_depth",
                       static_cast<double>(pendingCount()));
        trace::counter("serve/active",
                       static_cast<double>(active_.size()));
        trace::counter("serve/admitted", admitted);
        trace::counter("serve/pages_resident",
                       static_cast<double>(ppool_->residentPages()));
        trace::counter("serve/pages_cached",
                       static_cast<double>(ppool_->cachedPages()));
        if (smgr_ != nullptr) {
            const SpillManager::Stats ss = smgr_->stats();
            trace::counter("serve/spilled_bytes",
                           static_cast<double>(ss.spilled_bytes));
            trace::counter("serve/restored_bytes",
                           static_cast<double>(ss.restored_bytes));
            trace::counter(
                "serve/sessions_resident",
                static_cast<double>(smgr_->residentSessions()));
            trace::counter(
                "serve/sessions_on_disk",
                static_cast<double>(smgr_->spilledSessions()));
        }
    }

    if (active_.empty()) {
        ++metrics_.idle_steps;
        syncPoolCounters();
        return false;
    }

    // Build this step's row batch: one decode row per decoding
    // request, a whole prompt chunk per prefilling request. A request
    // whose tail pages can't be obtained this step stalls (skipped,
    // retried next step) — its neighbours still run.
    const size_t n_active = active_.size();
    std::vector<int32_t> ids;
    std::vector<int64_t> positions;
    std::vector<PagedRowRef> self_rows;
    std::vector<PagedRowRef> cross_rows;
    std::vector<const uint8_t *> pads;
    std::vector<int64_t> logit_rows; // CausalLM: rows fed to lm_head.
    struct Sample
    {
        size_t active_idx;
        int64_t logits_row;
    };
    std::vector<Sample> samples;
    std::vector<uint64_t> sample_req_ids;
    std::vector<int32_t> sample_vslots;
    std::vector<size_t> stalled;
    // Visible rows each active will have after this step's writes;
    // -1 = stalled (no rows built, cache untouched).
    std::vector<int64_t> planned_end(n_active, -1);

    for (size_t i = 0; i < n_active; ++i) {
        Active &a = *active_[i];
        // After a preempt-resume round trip the effective prompt is
        // the original prompt plus the tokens generated before the
        // interrupt (the replay); sampling resumes when the replay is
        // fully prefilled.
        const std::vector<int32_t> &eprompt = a.effPrompt();
        const int64_t plen = static_cast<int64_t>(eprompt.size());

        if (clm_ != nullptr && a.prefill_pos < plen) {
            const int64_t chunk_end =
                std::min(plen, a.prefill_pos + cfg_.prefill_chunk);
            const bool grows =
                PagedKVPool::pagesFor(chunk_end, cfg_.page_size) >
                static_cast<int64_t>(a.pseq.pages.size());
            if ((grows && cfg_.fault != nullptr &&
                 cfg_.fault->onPageAcquire()) ||
                !ppool_->ensureTail(a.pseq, chunk_end)) {
                stalled.push_back(i);
                continue;
            }
            planned_end[i] = chunk_end;
            for (int64_t t = a.prefill_pos; t < chunk_end; ++t) {
                ids.push_back(eprompt[static_cast<size_t>(t)]);
                positions.push_back(t);
                self_rows.push_back(PagedRowRef{
                    a.pseq.pages.data(),
                    static_cast<int64_t>(a.pseq.pages.size()), t, t + 1});
            }
            if (chunk_end == plen) {
                // The row consuming the last prompt token predicts the
                // first generated token: it is this request's only
                // sampled row of the step.
                logit_rows.push_back(
                    static_cast<int64_t>(ids.size()) - 1);
                samples.push_back(Sample{
                    i, static_cast<int64_t>(logit_rows.size()) - 1});
                sample_req_ids.push_back(a.id);
                sample_vslots.push_back(a.slot);
            }
            continue;
        }

        // Decode row.
        const bool grows =
            PagedKVPool::pagesFor(a.pos + 1, cfg_.page_size) >
            static_cast<int64_t>(a.pseq.pages.size());
        if ((grows && cfg_.fault != nullptr &&
             cfg_.fault->onPageAcquire()) ||
            !ppool_->ensureTail(a.pseq, a.pos + 1)) {
            stalled.push_back(i);
            continue;
        }
        planned_end[i] = a.pos + 1;
        ids.push_back(a.next_input);
        positions.push_back(a.pos);
        self_rows.push_back(PagedRowRef{
            a.pseq.pages.data(),
            static_cast<int64_t>(a.pseq.pages.size()), a.pos, a.pos + 1});
        if (clm_ != nullptr) {
            logit_rows.push_back(static_cast<int64_t>(ids.size()) - 1);
            samples.push_back(
                Sample{i, static_cast<int64_t>(logit_rows.size()) - 1});
        } else {
            cross_rows.push_back(PagedRowRef{
                a.pseq.cross_pages.data(),
                static_cast<int64_t>(a.pseq.cross_pages.size()), 0,
                a.pseq.cross_len});
            pads.push_back(a.req.src_pad.empty() ? nullptr
                                                 : a.req.src_pad.data());
            samples.push_back(
                Sample{i, static_cast<int64_t>(ids.size()) - 1});
        }
        sample_req_ids.push_back(a.id);
        sample_vslots.push_back(a.slot);
    }

    if (ids.empty()) {
        if (!stalled.empty()) {
            // Every buildable request is out of pages and nothing else
            // can run. Escalate before giving anything up: idle
            // resident sessions (retained turn KV, or pages stranded
            // when a restored session's re-admission failed its gate)
            // are pure caches — spill one and retry the step. Next,
            // under the fair-share policy, preempt-spill a whole
            // in-flight request: its checkpoint resumes bit-identical
            // later, so no output is lost. Only then truncate the
            // newest stalled request (most recent admission keeps
            // FIFO fairness) as a typed kCapacityExceeded with its
            // partial output — reachable only when a lone demand
            // exceeds the whole arena (clamped best-effort admission)
            // or injected page-acquire faults pin the pool.
            if (smgr_ != nullptr && smgr_->residentSessions() > 0 &&
                smgr_->spillOne()) {
                syncPoolCounters();
                return true; // freed pages: real progress
            }
            if (cfg_.sched.preemption && smgr_ != nullptr &&
                clm_ != nullptr && active_.size() > 1 &&
                preemptLowestLocked(-1)) {
                syncPoolCounters();
                return true;
            }
            retireLocked(stalled.back(),
                         RequestStatus::kCapacityExceeded, nowMs(), done);
            ++metrics_.preempted;
            syncPoolCounters();
            return true; // freed pages: real progress
        }
        ++metrics_.idle_steps;
        syncPoolCounters();
        return false;
    }

    bool tap_tripped = false;
    std::function<void(OpClass, const Tensor &)> prev_tap;
    if (cfg_.tap_activations) {
        prev_tap = std::move(qs_.fwd_tap);
        qs_.fwd_tap = [&tap_tripped](OpClass, const Tensor &t) {
            if (!tap_tripped && !allFinite(t))
                tap_tripped = true;
        };
    }

    Tensor logits =
        clm_ != nullptr
            ? clm_->forwardPagedRows(qs_, ids, positions, self_rows,
                                     ppool_->selfLayers(), logit_rows)
            : s2s_->forwardPagedRows(qs_, ids, positions, self_rows,
                                     ppool_->selfLayers(), cross_rows,
                                     ppool_->crossLayers(), pads.data());

    if (cfg_.tap_activations) {
        qs_.fwd_tap = std::move(prev_tap);
        if (tap_tripped)
            ++metrics_.tap_nonfinite_steps;
    }

    if (cfg_.fault != nullptr) {
        cfg_.fault->onLogits(step_idx_, sample_req_ids, sample_vslots,
                             logits);
        std::vector<PagedSeqView> views;
        views.reserve(n_active);
        for (size_t i = 0; i < n_active; ++i) {
            const Active &a = *active_[i];
            // Rows written this step are already in the panels, so
            // they are fair fault targets too; a stalled request only
            // exposes rows it actually cached.
            const int64_t rows =
                planned_end[i] >= 0 ? planned_end[i] : a.pseq.len;
            if (rows > 0 && !a.pseq.pages.empty())
                views.push_back(PagedSeqView{a.id, &a.pseq.pages, rows});
        }
        const int32_t pg = cfg_.fault->onKvPages(
            step_idx_, views, ppool_->selfLayers(), ppool_->pageSize());
        if (pg >= 0) {
            ppool_->dropCachedPage(pg); // never re-share poison
            for (const auto &ap : active_) {
                if (std::find(ap->pseq.pages.begin(),
                              ap->pseq.pages.end(),
                              pg) != ap->pseq.pages.end())
                    ap->kv_poisoned = true;
            }
        }
    }
    ++step_idx_;

    const double now = nowMs();
    ++metrics_.steps;
    metrics_.busy_ms += now - t0;

    // Pass 1 (ascending): commit cache growth. Rows are in the panels
    // whether or not their request survives pass 2.
    for (size_t i = 0; i < n_active; ++i) {
        Active &a = *active_[i];
        const std::vector<int32_t> &eprompt = a.effPrompt();
        const int64_t plen = static_cast<int64_t>(eprompt.size());
        if (planned_end[i] < 0)
            continue; // stalled: nothing was written
        if (clm_ != nullptr && a.prefill_pos < plen) {
            const int64_t ce = planned_end[i];
            metrics_.prefill_tokens_computed += ce - a.prefill_pos;
            a.pseq.len = ce;
            a.prefill_pos = ce;
            a.pos = ce;
            if (ce == plen) {
                a.prompt_next = eprompt.size();
                // Donate the now-complete prompt pages so followers
                // sharing this prefix skip the prefill work — unless a
                // fault touched any of them.
                if (!a.kv_poisoned)
                    ppool_->insertPrefix(eprompt, plen, a.pseq);
            }
        } else {
            a.pseq.len = a.pos + 1;
            ++a.pos;
        }
    }

    // Pass 2 (descending): sample / retire, so erasures never shift a
    // row still to be processed.
    for (size_t k = samples.size(); k-- > 0;) {
        const size_t i = samples[k].active_idx;
        const int64_t row = samples[k].logits_row;
        Active &a = *active_[i];

        if (cfg_.guard_logits && !rowFinite(logits, row)) {
            retireLocked(i, RequestStatus::kNumericFault, now, done);
            continue;
        }

        const int32_t tok = sampleToken(logits, row, a.req.sampling,
                                        a.rng);
        // TTFT counts the first *generated* token: prefill chunk rows
        // never sample, so first_token_ms can only land here.
        if (a.first_token_ms < 0.0) {
            a.first_token_ms = now;
            metrics_.token_latency_ms.record(now - a.submit_ms);
        } else {
            metrics_.token_latency_ms.record(now - a.last_token_ms);
        }
        a.last_token_ms = now;

        if (a.req.eos >= 0 && tok == a.req.eos) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.out.push_back(tok);
        if (static_cast<int64_t>(a.out.size()) >= a.req.max_new_tokens) {
            retireLocked(i, RequestStatus::kOk, now, done);
            continue;
        }
        a.next_input = tok;
    }

    syncPoolCounters();
    if (trace::collecting())
        trace::counter("serve/retired",
                       static_cast<double>(metrics_.completed -
                                           retired_before));
    return true;
}

void
ServeEngine::releaseSessions()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (smgr_ != nullptr)
        smgr_->releaseAll();
}

void
ServeEngine::runUntilIdle()
{
    while (activeCount() > 0 || pendingCount() > 0)
        step();
}

bool
ServeEngine::hasWork()
{
    if (active_n_.load() > 0 || queue_.size() > 0 ||
        parked_n_.load() > 0)
        return true;
    std::lock_guard<std::mutex> lock(cancel_mu_);
    return !cancel_ids_.empty();
}

void
ServeEngine::start()
{
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (thread_.joinable())
        return; // already running
    queue_.reopen();
    stop_request_.store(0);
    thread_running_.store(true);
    thread_ = std::thread(&ServeEngine::threadMain, this);
}

void
ServeEngine::stop(StopMode mode)
{
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!thread_.joinable())
        return;
    stop_request_.store(mode == StopMode::kAbort ? 2 : 1);
    wake();
    thread_.join();
    thread_running_.store(false);
}

void
ServeEngine::threadMain()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(wake_mu_);
            wake_cv_.wait(lk, [this] {
                return stop_request_.load() != 0 || hasWork();
            });
        }
        if (stop_request_.load() == 2)
            break; // abort: resolve in-flight below
        if (!hasWork()) {
            if (stop_request_.load() == 1)
                break; // drain complete
            continue;  // spurious wakeup
        }
        if (!step()) {
            // Work exists but the step had nothing to run (rate-held
            // queue heads, stalled admissions waiting on pages): sleep
            // briefly instead of spinning the scheduler thread hot.
            std::unique_lock<std::mutex> lk(wake_mu_);
            wake_cv_.wait_for(lk, std::chrono::milliseconds(1), [this] {
                return stop_request_.load() == 2;
            });
        }
    }
    if (stop_request_.load() == 2)
        abortAll();
}

void
ServeEngine::abortAll()
{
    std::vector<Resolution> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Close first: a submission either landed before this drain
        // (resolved here) or gets the typed kEngineStopped at submit().
        std::vector<PendingRequest> drained = queue_.closeAndDrain();
        for (PendingRequest &p : drained)
            resolveUnadmittedLocked(std::move(p),
                                    RequestStatus::kEngineStopped, done);
        for (auto &park : parked_) {
            if (park.has_value()) {
                PendingRequest p = std::move(*park);
                park.reset();
                resolveUnadmittedLocked(std::move(p),
                                        RequestStatus::kEngineStopped,
                                        done);
            }
        }
        const double now = nowMs();
        for (size_t i = preempted_.size(); i-- > 0;)
            resolvePreemptedLocked(i, RequestStatus::kEngineStopped, now,
                                   done);
        syncParkedCountLocked();
        for (size_t i = active_.size(); i-- > 0;)
            retireLocked(i, RequestStatus::kEngineStopped, now, done);
    }
    {
        std::lock_guard<std::mutex> lock(cancel_mu_);
        cancel_ids_.clear(); // everything they named is resolved
    }
    deliver(done);
}

} // namespace qt8::serve
