/**
 * @file
 * Request/response types for the in-process serving engine: what a
 * client submits (prompt, decode budget, sampling policy, optional
 * deadline), the typed terminal statuses, and the per-request result
 * delivered through a future and/or completion callback.
 *
 * The status taxonomy is the robustness contract of the serving stack:
 * every submitted request resolves with exactly one of these statuses —
 * never an assert, never a hang — and anything that goes wrong is
 * isolated to the request it happened to (DESIGN.md §10).
 */
#ifndef QT8_SERVE_REQUEST_H
#define QT8_SERVE_REQUEST_H

#include <cstdint>
#include <functional>
#include <vector>

namespace qt8::serve {

/// Scheduling class of a request (DESIGN.md §16). Classes order by
/// urgency: an interactive chat turn outranks a standard request,
/// which outranks offline batch work. The scheduler drains per-class
/// queues by weighted fair share and — when memory pressure or an
/// SLO-threatened interactive arrival demands it — preempts the
/// lowest-class in-flight decode first.
enum class PriorityClass : int {
    kInteractive = 0,
    kStandard = 1,
    kBatch = 2,
};

/// Number of priority classes (array extent for per-class state).
inline constexpr int kNumClasses = 3;

const char *toString(PriorityClass c);

/// Token-sampling policy for the cached decode path. temperature == 0
/// is greedy (argmax, the default); otherwise logits are divided by the
/// temperature and sampled from the softmax, optionally restricted to
/// the top_k highest logits. Every request carries its own RNG seed, so
/// a sampled decode replays deterministically regardless of how the
/// scheduler interleaved it with other requests.
struct SamplingParams
{
    float temperature = 0.0f; ///< 0 = greedy argmax.
    int top_k = 0;            ///< 0 = no truncation (clamped to vocab).
    uint64_t seed = 0;        ///< Per-request RNG stream seed.
};

/// Why a request left the engine. Statuses up to kCapacityExceeded
/// carry whatever output was produced before the terminal event;
/// rejections never produce output.
enum class RequestStatus {
    kOk,                ///< Finished on EOS or max_new_tokens.
    kCapacityExceeded,  ///< Hit its KV slot capacity; output truncated.
    kCancelled,         ///< cancel(id) landed; partial output kept.
    kDeadlineExceeded,  ///< timeout_ms expired (queued or mid-decode).
    kNumericFault,      ///< Non-finite logits in this request's row;
                        ///< partial output kept, slot freed, the other
                        ///< in-flight requests untouched.
    kEngineStopped,     ///< stop(kAbort) resolved it while in flight
                        ///< (or queued); partial output kept.
    kRejectedQueueFull, ///< Never admitted: pending queue at max depth.
    kRejectedInvalid,   ///< Never admitted: request failed validation
                        ///< (empty prompt, max_new_tokens <= 0, prompt
                        ///< longer than slot capacity).
};

const char *toString(RequestStatus s);

/// Where a session-resuming request's KV history came from (tiered KV
/// storage, DESIGN.md §15). Whatever the source, emitted tokens are
/// bit-identical: resident and restored pages hold the exact bytes the
/// request would have computed, and a recompute is a fresh prefill.
enum class SessionKVSource {
    kNone = 0,          ///< No session (or a first turn / stale key).
    kResident,          ///< History pages were still in RAM.
    kRestoredFromSpill, ///< History pages read back from a spill file.
    kRecomputed,        ///< Spill was dead (CRC / short read / missing
                        ///< / IO error): prompt recomputed via chunked
                        ///< prefill.
};

const char *toString(SessionKVSource s);

/// True for the statuses a request can retire with after admission
/// (i.e. it may carry partial output).
inline bool
isRetirement(RequestStatus s)
{
    return s != RequestStatus::kRejectedQueueFull &&
           s != RequestStatus::kRejectedInvalid;
}

struct RequestResult
{
    uint64_t id = 0;
    RequestStatus status = RequestStatus::kOk;
    /// Generated ids (EOS excluded), matching a solo cached decode.
    /// Partial for kCancelled/kDeadlineExceeded/kNumericFault/
    /// kEngineStopped/kCapacityExceeded.
    std::vector<int32_t> tokens;
    int64_t prompt_tokens = 0;
    /// Paged engine: prompt rows satisfied from the shared-prefix
    /// cache instead of prefill compute (0 on the slab engine or on a
    /// cache miss). prompt_tokens always counts the full prompt.
    int64_t prefix_reused_tokens = 0;
    /// Tiered KV sessions (paged CausalLM engine): how this request's
    /// KV history was obtained. kNone unless Request::session_id
    /// matched a retained session.
    SessionKVSource session_kv = SessionKVSource::kNone;
    /// Rows of KV history reused without recompute (resident or
    /// restored sessions; 0 for kNone/kRecomputed).
    int64_t session_reused_tokens = 0;
    double ttft_ms = 0.0;    ///< Submit -> first *generated* token
                             ///< (prefill steps never count as first
                             ///< token, chunked or not).
    double latency_ms = 0.0; ///< Submit -> completion.
};

/// One inference request. For a CausalLM engine `prompt` is the token
/// prefix to continue (>= 1 token); for a Seq2Seq engine it is the
/// source sequence (with optional padding mask) and decoding starts
/// from `bos`.
struct Request
{
    std::vector<int32_t> prompt;
    std::vector<uint8_t> src_pad; ///< Seq2Seq only; empty = no padding.
    int64_t max_new_tokens = 16;
    int32_t eos = -1; ///< Stop token; -1 decodes to max_new_tokens.
    int32_t bos = 3;  ///< Seq2Seq first decoder input (Vocab::kBos).
    /// Per-request deadline on the engine's steady clock, measured from
    /// submit(). 0 = no deadline. An expired request retires with
    /// kDeadlineExceeded at the next scheduler step — whether it is
    /// still queued or mid-decode — keeping any partial output.
    double timeout_ms = 0.0;
    /**
     * Multi-turn session key (0 = stateless request). On a paged
     * CausalLM engine, a request that retires kOk leaves its KV pages
     * retained under this key; a later request with the same key whose
     * prompt *extends* the retained history (prior prompt + generated
     * tokens as a strict prefix) skips recomputing those rows —
     * serving them resident from RAM, restored from a disk spill, or
     * recomputed when the spill is dead (RequestResult::session_kv).
     * A non-extending prompt drops the stale session and runs fresh.
     * Ignored by slab and Seq2Seq engines.
     */
    uint64_t session_id = 0;
    /// Tenant owning this request (0 = the anonymous default tenant).
    /// Tenants with a configured token-rate limit (SchedulerConfig)
    /// are held in their class queue while over budget; unknown
    /// tenants are never rate-limited.
    uint64_t tenant_id = 0;
    /// Scheduling class (weight, SLO targets, preemption rank). The
    /// default kStandard keeps single-class workloads byte-identical
    /// to the historical FIFO behaviour.
    PriorityClass priority_class = PriorityClass::kStandard;
    SamplingParams sampling;
    /// Optional completion hook, invoked from the scheduler thread
    /// right after the result future is fulfilled (never with an
    /// engine lock held, so it may call back into the engine).
    std::function<void(const RequestResult &)> on_complete;
};

} // namespace qt8::serve

#endif // QT8_SERVE_REQUEST_H
