/**
 * @file
 * Next-token selection for the cached decode path: greedy argmax (the
 * default, bit-identical to Seq2Seq::greedyDecode) plus temperature and
 * top-k sampling driven by a caller-owned deterministic Rng
 * (tensor/random's xoshiro256++), so a request replays identically from
 * its seed no matter how it was batched.
 */
#ifndef QT8_SERVE_SAMPLER_H
#define QT8_SERVE_SAMPLER_H

#include <cstdint>

#include "serve/request.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8::serve {

/**
 * Pick the next token from row @p row of a [*, vocab] logits tensor.
 *
 * temperature == 0 (or a degenerate distribution) falls back to greedy
 * rowArgmax. Otherwise the kept logits (all, or the top_k largest —
 * ties broken toward the lower token id) are softmaxed at the given
 * temperature in double precision and sampled by inverse-CDF with one
 * rng.uniform() draw, consuming exactly one draw per generated token.
 */
int32_t sampleToken(const Tensor &logits, int64_t row,
                    const SamplingParams &params, Rng &rng);

} // namespace qt8::serve

#endif // QT8_SERVE_SAMPLER_H
