#include "serve/request_queue.h"

#include <algorithm>
#include <limits>

namespace qt8::serve {

namespace {

/// Weights are configuration input; clamp so a zero/negative weight
/// degrades to "very small share" instead of starving the DRR loop.
double
clampedWeight(double w)
{
    return std::max(w, 1e-6);
}

} // namespace

double
SchedulerConfig::burstFor(uint64_t tenant_id) const
{
    const auto it = tenants.find(tenant_id);
    if (it == tenants.end() || it->second.tokens_per_sec <= 0.0)
        return std::numeric_limits<double>::infinity();
    return it->second.burst_tokens > 0.0 ? it->second.burst_tokens
                                         : it->second.tokens_per_sec;
}

RequestQueue::RequestQueue(size_t max_depth, SchedulerConfig sched)
    : max_depth_(max_depth), sched_(std::move(sched))
{
}

RequestQueue::PushResult
RequestQueue::tryPush(PendingRequest &&p)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return PushResult::kClosed;
    if (max_depth_ != 0) {
        size_t total = 0;
        for (const auto &q : q_)
            total += q.size();
        if (total >= max_depth_)
            return PushResult::kFull;
    }
    const size_t c = static_cast<size_t>(p.request.priority_class);
    const ClassPolicy &pol = sched_.classes[c];
    if (pol.max_queue_depth != 0 && q_[c].size() >= pol.max_queue_depth)
        return PushResult::kFull;
    q_[c].push_back(Item{next_seq_++, std::move(p)});
    return PushResult::kOk;
}

bool
RequestQueue::tenantEligible(uint64_t tenant, double cost, double now_ms)
{
    const auto it = sched_.tenants.find(tenant);
    if (it == sched_.tenants.end() || it->second.tokens_per_sec <= 0.0)
        return true;
    const double rate = it->second.tokens_per_sec;
    const double burst = sched_.burstFor(tenant);
    Bucket &b = buckets_[tenant];
    if (!b.primed) {
        b.balance = burst;
        b.last_ms = now_ms;
        b.primed = true;
    } else if (now_ms > b.last_ms) {
        b.balance = std::min(
            burst, b.balance + rate * (now_ms - b.last_ms) / 1000.0);
        b.last_ms = now_ms;
    }
    return b.balance + 1e-9 >= cost;
}

void
RequestQueue::tenantCharge(uint64_t tenant, double cost)
{
    const auto it = sched_.tenants.find(tenant);
    if (it == sched_.tenants.end() || it->second.tokens_per_sec <= 0.0)
        return;
    buckets_[tenant].balance -= cost;
}

int64_t
RequestQueue::firstEligible(size_t c, double now_ms)
{
    for (size_t i = 0; i < q_[c].size(); ++i) {
        const Request &r = q_[c][i].p.request;
        if (tenantEligible(r.tenant_id, tokenCost(r), now_ms))
            return static_cast<int64_t>(i);
    }
    return -1;
}

bool
RequestQueue::popFifo(double now_ms,
                      const std::array<bool, kNumClasses> &blocked,
                      PendingRequest &out)
{
    // Global arrival order among the bucket-eligible heads: within a
    // class firstEligible() already yields the lowest sequence number,
    // so the overall winner is the min across classes.
    int64_t best_c = -1, best_i = -1;
    uint64_t best_seq = 0;
    for (size_t c = 0; c < kNumClasses; ++c) {
        if (blocked[c])
            continue;
        const int64_t i = firstEligible(c, now_ms);
        if (i < 0)
            continue;
        const uint64_t seq = q_[c][static_cast<size_t>(i)].seq;
        if (best_c < 0 || seq < best_seq) {
            best_c = static_cast<int64_t>(c);
            best_i = i;
            best_seq = seq;
        }
    }
    if (best_c < 0)
        return false;
    auto &dq = q_[static_cast<size_t>(best_c)];
    auto it = dq.begin() + best_i;
    tenantCharge(it->p.request.tenant_id, tokenCost(it->p.request));
    out = std::move(it->p);
    dq.erase(it);
    return true;
}

bool
RequestQueue::tryPopScheduled(double now_ms,
                              const std::array<bool, kNumClasses> &blocked,
                              PendingRequest &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (sched_.policy == SchedulerConfig::Policy::kFifo)
        return popFifo(now_ms, blocked, out);

    // SLO-threat bypass, highest class first: a head whose wait has
    // eaten slo_threat_frac of its class TTFT budget jumps the round.
    // Its cost is still charged against the class deficit (which may
    // go negative), so the bypass borrows from — not escapes — the
    // long-run fair share.
    std::array<int64_t, kNumClasses> elig;
    for (size_t c = 0; c < kNumClasses; ++c)
        elig[c] = (blocked[c] || q_[c].empty())
                      ? -1
                      : firstEligible(c, now_ms);
    if (sched_.slo_threat_frac > 0.0) {
        for (size_t c = 0; c < kNumClasses; ++c) {
            const ClassPolicy &pol = sched_.classes[c];
            if (elig[c] < 0 || pol.ttft_slo_ms <= 0.0)
                continue;
            auto it = q_[c].begin() + elig[c];
            const double wait = now_ms - it->p.submit_ms;
            if (wait < sched_.slo_threat_frac * pol.ttft_slo_ms)
                continue;
            const double cost = tokenCost(it->p.request);
            deficit_[c] -= cost;
            tenantCharge(it->p.request.tenant_id, cost);
            out = std::move(it->p);
            q_[c].erase(it);
            return true;
        }
    }

    bool any = false;
    for (size_t c = 0; c < kNumClasses; ++c)
        any = any || elig[c] >= 0;
    if (!any)
        return false;

    // Deficit round robin: a class is granted quantum x weight credit
    // once per *visit* — when the rotation advances onto it — and the
    // rotation stays parked on a class across calls until its credit
    // no longer covers its head, so a heavy class drains several
    // requests per visit while a light one drains few: under backlog
    // the served token mix converges to the weight ratios. (Granting
    // per lap instead would let every class serve once per rotation —
    // plain round robin, weights ignored.) Guaranteed to terminate
    // (some eligible class gains credit every lap), but bounded anyway
    // against pathological configs — the fallback serves the
    // most-credited class.
    const double quantum = std::max(sched_.quantum_tokens, 1e-3);
    if (!drr_primed_) {
        deficit_[rr_] +=
            quantum * clampedWeight(sched_.classes[rr_].weight);
        drr_primed_ = true;
    }
    for (int spins = 0; spins < 1000000; ++spins) {
        const size_t c = rr_;
        if (elig[c] >= 0) {
            auto it = q_[c].begin() + elig[c];
            const double cost = tokenCost(it->p.request);
            if (deficit_[c] + 1e-9 >= cost) {
                deficit_[c] -= cost;
                tenantCharge(it->p.request.tenant_id, cost);
                out = std::move(it->p);
                q_[c].erase(it);
                return true; // rr_ stays: the visit continues next call
            }
        } else if (q_[c].empty()) {
            // Classic DRR: an emptied class forfeits leftover credit
            // so idle classes cannot hoard and burst later.
            deficit_[c] = 0.0;
        }
        rr_ = (rr_ + 1) % kNumClasses;
        deficit_[rr_] +=
            quantum * clampedWeight(sched_.classes[rr_].weight);
    }
    size_t best = 0;
    for (size_t c = 1; c < kNumClasses; ++c)
        if (elig[c] >= 0 && (elig[best] < 0 || deficit_[c] > deficit_[best]))
            best = c;
    if (elig[best] < 0)
        return false;
    auto it = q_[best].begin() + elig[best];
    deficit_[best] -= tokenCost(it->p.request);
    tenantCharge(it->p.request.tenant_id, tokenCost(it->p.request));
    out = std::move(it->p);
    q_[best].erase(it);
    return true;
}

bool
RequestQueue::tryPop(double now_ms, PendingRequest &out)
{
    return tryPopScheduled(now_ms, std::array<bool, kNumClasses>{},
                           out);
}

bool
RequestQueue::extract(uint64_t id, PendingRequest &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &dq : q_) {
        for (auto it = dq.begin(); it != dq.end(); ++it) {
            if (it->p.id == id) {
                out = std::move(it->p);
                dq.erase(it);
                return true;
            }
        }
    }
    return false;
}

std::vector<PendingRequest>
RequestQueue::extractIf(
    const std::function<bool(const PendingRequest &)> &pred)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Item> hits;
    for (auto &dq : q_) {
        std::deque<Item> keep;
        for (auto &item : dq) {
            if (pred(item.p))
                hits.push_back(std::move(item));
            else
                keep.push_back(std::move(item));
        }
        dq = std::move(keep);
    }
    std::sort(hits.begin(), hits.end(),
              [](const Item &a, const Item &b) { return a.seq < b.seq; });
    std::vector<PendingRequest> out;
    out.reserve(hits.size());
    for (auto &h : hits)
        out.push_back(std::move(h.p));
    return out;
}

std::vector<PendingRequest>
RequestQueue::closeAndDrain()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<Item> all;
    for (auto &dq : q_) {
        for (auto &item : dq)
            all.push_back(std::move(item));
        dq.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const Item &a, const Item &b) { return a.seq < b.seq; });
    std::vector<PendingRequest> out;
    out.reserve(all.size());
    for (auto &item : all)
        out.push_back(std::move(item.p));
    return out;
}

void
RequestQueue::reopen()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    deficit_.fill(0.0);
    drr_primed_ = false;
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto &dq : q_)
        total += dq.size();
    return total;
}

size_t
RequestQueue::sizeClass(PriorityClass c) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_[static_cast<size_t>(c)].size();
}

double
RequestQueue::headWaitMs(PriorityClass c, double now_ms) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto &dq = q_[static_cast<size_t>(c)];
    if (dq.empty())
        return -1.0;
    return now_ms - dq.front().p.submit_ms;
}

} // namespace qt8::serve
