#include "serve/request_queue.h"

namespace qt8::serve {

RequestQueue::PushResult
RequestQueue::tryPush(PendingRequest &&p)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
        return PushResult::kClosed;
    if (max_depth_ != 0 && q_.size() >= max_depth_)
        return PushResult::kFull;
    q_.push_back(std::move(p));
    return PushResult::kOk;
}

bool
RequestQueue::tryPop(PendingRequest &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

bool
RequestQueue::extract(uint64_t id, PendingRequest &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = q_.begin(); it != q_.end(); ++it) {
        if (it->id == id) {
            out = std::move(*it);
            q_.erase(it);
            return true;
        }
    }
    return false;
}

std::vector<PendingRequest>
RequestQueue::extractIf(
    const std::function<bool(const PendingRequest &)> &pred)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PendingRequest> out;
    std::deque<PendingRequest> keep;
    for (auto &p : q_) {
        if (pred(p))
            out.push_back(std::move(p));
        else
            keep.push_back(std::move(p));
    }
    q_ = std::move(keep);
    return out;
}

std::vector<PendingRequest>
RequestQueue::closeAndDrain()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<PendingRequest> out;
    out.reserve(q_.size());
    for (auto &p : q_)
        out.push_back(std::move(p));
    q_.clear();
    return out;
}

void
RequestQueue::reopen()
{
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

} // namespace qt8::serve
