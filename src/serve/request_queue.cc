#include "serve/request_queue.h"

namespace qt8::serve {

bool
RequestQueue::tryPush(PendingRequest &&p)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (max_depth_ != 0 && q_.size() >= max_depth_)
        return false;
    q_.push_back(std::move(p));
    return true;
}

bool
RequestQueue::tryPop(PendingRequest &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
}

} // namespace qt8::serve
