/**
 * @file
 * FIFO admission queue for the serving engine, with an optional maximum
 * depth: past it, submissions are rejected immediately (typed
 * kRejectedQueueFull) instead of growing an unbounded backlog. Mutexed
 * so producers on other threads can submit while the scheduler drains.
 *
 * The queue can also be *closed* (engine abort): a closed queue refuses
 * every push with PushResult::kClosed under the same lock that guards
 * the final drain, so no submission can race past an abort and sit in
 * the queue forever — either it lands before the drain (and is resolved
 * kEngineStopped with the rest) or the producer gets the typed refusal.
 */
#ifndef QT8_SERVE_REQUEST_QUEUE_H
#define QT8_SERVE_REQUEST_QUEUE_H

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace qt8::serve {

/// A queued request with its pre-created result promise.
struct PendingRequest
{
    uint64_t id = 0;
    Request request;
    std::promise<RequestResult> promise;
    double submit_ms = 0.0;   ///< Engine-clock submission time.
    double deadline_ms = 0.0; ///< Engine-clock deadline; 0 = none.
    /// Sticky session provenance: set to kRecomputed when a resume
    /// found a dead spill (the session is consumed at that moment), so
    /// the eventual result reports the fallback even if the request
    /// parks and is re-admitted on a later step.
    SessionKVSource session_kv_hint = SessionKVSource::kNone;
};

class RequestQueue
{
  public:
    enum class PushResult {
        kOk,     ///< Enqueued.
        kFull,   ///< At max depth -> kRejectedQueueFull.
        kClosed, ///< Engine stopped accepting -> kEngineStopped.
    };

    /// @param max_depth 0 = unbounded.
    explicit RequestQueue(size_t max_depth = 0) : max_depth_(max_depth) {}

    /// FIFO push; leaves @p p untouched unless it returns kOk.
    PushResult tryPush(PendingRequest &&p);

    /// Pop the oldest pending request into @p out; false when empty.
    bool tryPop(PendingRequest &out);

    /// Remove the pending request with @p id (cancellation of a request
    /// that was never admitted); false when not queued.
    bool extract(uint64_t id, PendingRequest &out);

    /// Remove every pending request matching @p pred, preserving FIFO
    /// order among survivors (deadline sweeps, abort drains).
    std::vector<PendingRequest>
    extractIf(const std::function<bool(const PendingRequest &)> &pred);

    /// Refuse all future pushes (kClosed) and return everything queued,
    /// atomically — nothing can slip in between drain and close.
    std::vector<PendingRequest> closeAndDrain();

    /// Accept pushes again (engine restart after a stop).
    void reopen();

    size_t size() const;
    bool empty() const { return size() == 0; }
    size_t maxDepth() const { return max_depth_; }

  private:
    mutable std::mutex mu_;
    std::deque<PendingRequest> q_;
    size_t max_depth_;
    bool closed_ = false;
};

} // namespace qt8::serve

#endif // QT8_SERVE_REQUEST_QUEUE_H
