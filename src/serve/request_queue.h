/**
 * @file
 * Class-aware admission queue for the serving engine (DESIGN.md §16).
 *
 * Requests land in one bounded FIFO deque per PriorityClass and are
 * drained by deficit-round-robin weighted fair share: each class
 * accumulates credit in proportion to its configured weight and pays
 * for a request with its token cost (prompt + decode budget), so under
 * sustained backlog the served token mix converges to the weight
 * ratios while an idle class costs nothing (work conservation).
 * Per-tenant token buckets hold a rate-limited tenant's requests in
 * queue — FIFO among the still-eligible survivors of the same class —
 * and an SLO-threatened interactive head may bypass a round entirely.
 * A single configured class degenerates to the historical global FIFO.
 *
 * Depth limits are enforced globally and per class: past either,
 * submissions are rejected immediately (typed kRejectedQueueFull)
 * instead of growing an unbounded backlog. Mutexed so producers on
 * other threads can submit while the scheduler drains.
 *
 * The queue can also be *closed* (engine abort): a closed queue refuses
 * every push with PushResult::kClosed under the same lock that guards
 * the final drain, so no submission can race past an abort and sit in
 * the queue forever — either it lands before the drain (and is resolved
 * kEngineStopped with the rest) or the producer gets the typed refusal.
 */
#ifndef QT8_SERVE_REQUEST_QUEUE_H
#define QT8_SERVE_REQUEST_QUEUE_H

#include <array>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace qt8::serve {

/// Scheduling knobs for one priority class.
struct ClassPolicy
{
    double weight = 1.0;         ///< Fair-share weight (> 0).
    double ttft_slo_ms = 0.0;    ///< TTFT target; 0 = no SLO.
    double latency_slo_ms = 0.0; ///< End-to-end target; 0 = no SLO.
    size_t max_queue_depth = 0;  ///< Per-class depth cap; 0 = none.
};

/// Token-rate limit for one tenant. A tenant's bucket refills at
/// tokens_per_sec up to burst_tokens (0 = one second's worth); a
/// request is eligible for admission only when the bucket covers its
/// token cost, which is deducted exactly once at pop.
struct TenantPolicy
{
    double tokens_per_sec = 0.0; ///< 0 = unlimited.
    double burst_tokens = 0.0;   ///< Bucket capacity; 0 = 1 s worth.
};

/// Scheduler configuration: drain policy, per-class weights/SLOs, and
/// per-tenant rate limits. Defaults give interactive : standard :
/// batch a 4 : 2 : 1 token share under contention and no SLOs/limits,
/// which keeps a single-class workload byte-identical to the old FIFO.
struct SchedulerConfig
{
    enum class Policy {
        kFifo,      ///< Global arrival order (the PR-3 behaviour).
        kFairShare, ///< Deficit-round-robin weighted fair share.
    };

    Policy policy = Policy::kFairShare;
    std::array<ClassPolicy, kNumClasses> classes{
        ClassPolicy{4.0, 0.0, 0.0, 0},
        ClassPolicy{2.0, 0.0, 0.0, 0},
        ClassPolicy{1.0, 0.0, 0.0, 0},
    };
    std::map<uint64_t, TenantPolicy> tenants;

    /// Allow the engine to preempt a lower-class in-flight decode when
    /// admission is blocked (spilling its session; DESIGN.md §16).
    bool preemption = true;

    /// A waiting request whose age exceeds this fraction of its class
    /// TTFT SLO bypasses the fair-share round (and, for a class that
    /// outranks an in-flight decode, justifies preemption). <= 0
    /// disables the bypass.
    double slo_threat_frac = 0.5;

    /// DRR credit granted per visit, scaled by the class weight.
    double quantum_tokens = 16.0;

    const ClassPolicy &policyFor(PriorityClass c) const
    {
        return classes[static_cast<size_t>(c)];
    }

    /// Effective bucket capacity for @p tenant_id; infinity when the
    /// tenant has no (or an unlimited) policy.
    double burstFor(uint64_t tenant_id) const;
};

/// A queued request with its pre-created result promise.
struct PendingRequest
{
    uint64_t id = 0;
    Request request;
    std::promise<RequestResult> promise;
    double submit_ms = 0.0;   ///< Engine-clock submission time.
    double deadline_ms = 0.0; ///< Engine-clock deadline; 0 = none.
    /// Sticky session provenance: set to kRecomputed when a resume
    /// found a dead spill (the session is consumed at that moment), so
    /// the eventual result reports the fallback even if the request
    /// parks and is re-admitted on a later step.
    SessionKVSource session_kv_hint = SessionKVSource::kNone;
};

/// Admission token cost of a request: every prompt row it must prefill
/// plus every token it may decode (the unit fair share is paid in).
inline double
tokenCost(const Request &r)
{
    return static_cast<double>(r.prompt.size()) +
           static_cast<double>(r.max_new_tokens > 0 ? r.max_new_tokens
                                                    : 0);
}

class RequestQueue
{
  public:
    enum class PushResult {
        kOk,     ///< Enqueued.
        kFull,   ///< At max depth -> kRejectedQueueFull.
        kClosed, ///< Engine stopped accepting -> kEngineStopped.
    };

    /// @param max_depth global depth cap across classes; 0 = unbounded.
    explicit RequestQueue(size_t max_depth = 0,
                          SchedulerConfig sched = SchedulerConfig{});

    /// FIFO push into the request's class queue; leaves @p p untouched
    /// unless it returns kOk.
    PushResult tryPush(PendingRequest &&p);

    /**
     * Pop the next request the schedule selects into @p out; false when
     * nothing is eligible (empty, every class blocked, or every head
     * rate-held). @p now_ms drives token-bucket refill and SLO-threat
     * ages; @p blocked marks classes the engine cannot admit right now
     * (a parked head — skipping them preserves FIFO within the class
     * while the others stay work-conserving).
     */
    bool tryPopScheduled(double now_ms,
                         const std::array<bool, kNumClasses> &blocked,
                         PendingRequest &out);

    /// tryPopScheduled with no blocked classes.
    bool tryPop(double now_ms, PendingRequest &out);

    /// Remove the pending request with @p id (cancellation of a request
    /// that was never admitted); false when not queued.
    bool extract(uint64_t id, PendingRequest &out);

    /// Remove every pending request matching @p pred, preserving FIFO
    /// order among survivors (deadline sweeps, abort drains).
    std::vector<PendingRequest>
    extractIf(const std::function<bool(const PendingRequest &)> &pred);

    /// Refuse all future pushes (kClosed) and return everything queued
    /// in global arrival order, atomically — nothing can slip in
    /// between drain and close.
    std::vector<PendingRequest> closeAndDrain();

    /// Accept pushes again (engine restart after a stop). Fair-share
    /// deficits reset; tenant buckets persist (a restart is not a
    /// rate-limit amnesty).
    void reopen();

    size_t size() const;
    bool empty() const { return size() == 0; }
    size_t sizeClass(PriorityClass c) const;
    size_t maxDepth() const { return max_depth_; }
    const SchedulerConfig &sched() const { return sched_; }

    /// Oldest eligible wait age (ms) in @p c at @p now_ms, or -1 when
    /// the class has no pending request (SLO-threat probes).
    double headWaitMs(PriorityClass c, double now_ms) const;

  private:
    struct Item
    {
        uint64_t seq = 0; ///< Global arrival order.
        PendingRequest p;
    };
    struct Bucket
    {
        double balance = 0.0;
        double last_ms = 0.0;
        bool primed = false; ///< First refill starts the clock full.
    };

    /// Refill-and-test: can @p tenant pay @p cost at @p now_ms?
    bool tenantEligible(uint64_t tenant, double cost, double now_ms);
    void tenantCharge(uint64_t tenant, double cost);
    /// Index of the first bucket-eligible item in class @p c; -1 when
    /// none (rate-held heads are skipped, FIFO among the eligible).
    int64_t firstEligible(size_t c, double now_ms);
    bool popFifo(double now_ms,
                 const std::array<bool, kNumClasses> &blocked,
                 PendingRequest &out);

    mutable std::mutex mu_;
    std::array<std::deque<Item>, kNumClasses> q_;
    std::array<double, kNumClasses> deficit_{};
    std::map<uint64_t, Bucket> buckets_;
    size_t max_depth_;
    SchedulerConfig sched_;
    size_t rr_ = 0; ///< Class the DRR rotation is parked on.
    bool drr_primed_ = false; ///< rr_'s first visit credit granted?
    uint64_t next_seq_ = 0;
    bool closed_ = false;
};

} // namespace qt8::serve

#endif // QT8_SERVE_REQUEST_QUEUE_H
