/**
 * @file
 * FIFO admission queue for the serving engine, with an optional maximum
 * depth: past it, submissions are rejected immediately (typed
 * kRejectedQueueFull) instead of growing an unbounded backlog. Mutexed
 * so producers on other threads can submit while the scheduler drains.
 */
#ifndef QT8_SERVE_REQUEST_QUEUE_H
#define QT8_SERVE_REQUEST_QUEUE_H

#include <cstddef>
#include <deque>
#include <future>
#include <mutex>

#include "serve/request.h"

namespace qt8::serve {

/// A queued request with its pre-created result promise.
struct PendingRequest
{
    uint64_t id = 0;
    Request request;
    std::promise<RequestResult> promise;
    double submit_ms = 0.0; ///< Engine-clock submission time.
};

class RequestQueue
{
  public:
    /// @param max_depth 0 = unbounded.
    explicit RequestQueue(size_t max_depth = 0) : max_depth_(max_depth) {}

    /// FIFO push; returns false (leaving @p p untouched) when the queue
    /// is at max depth.
    bool tryPush(PendingRequest &&p);

    /// Pop the oldest pending request into @p out; false when empty.
    bool tryPop(PendingRequest &out);

    size_t size() const;
    bool empty() const { return size() == 0; }
    size_t maxDepth() const { return max_depth_; }

  private:
    mutable std::mutex mu_;
    std::deque<PendingRequest> q_;
    size_t max_depth_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_REQUEST_QUEUE_H
