#include "serve/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/trace.h"

namespace qt8::serve {

const char *
toString(RequestStatus s)
{
    switch (s) {
    case RequestStatus::kOk:
        return "ok";
    case RequestStatus::kCapacityExceeded:
        return "capacity-exceeded";
    case RequestStatus::kCancelled:
        return "cancelled";
    case RequestStatus::kDeadlineExceeded:
        return "deadline-exceeded";
    case RequestStatus::kNumericFault:
        return "numeric-fault";
    case RequestStatus::kEngineStopped:
        return "engine-stopped";
    case RequestStatus::kRejectedQueueFull:
        return "rejected-queue-full";
    case RequestStatus::kRejectedInvalid:
        return "rejected-invalid";
    }
    return "?";
}

const char *
toString(SessionKVSource s)
{
    switch (s) {
    case SessionKVSource::kNone:
        return "none";
    case SessionKVSource::kResident:
        return "resident";
    case SessionKVSource::kRestoredFromSpill:
        return "restored-from-spill";
    case SessionKVSource::kRecomputed:
        return "recomputed";
    }
    return "?";
}

const char *
toString(PriorityClass c)
{
    switch (c) {
    case PriorityClass::kInteractive:
        return "interactive";
    case PriorityClass::kStandard:
        return "standard";
    case PriorityClass::kBatch:
        return "batch";
    }
    return "?";
}

double
LatencyHistogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    // Clamp: p outside [0,100] used to compute an out-of-range rank and
    // read past the sorted array (pinned by metrics_test).
    p = std::min(100.0, std::max(0.0, p));
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
LatencyHistogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    double total = 0.0;
    for (double s : samples_)
        total += s;
    return total / static_cast<double>(samples_.size());
}

void
ServeMetrics::recordRetirement(const RequestRecord &r)
{
    requests.push_back(r);
    ttft_ms.record(r.ttft_ms);
    request_latency_ms.record(r.latency_ms);
    generated_tokens += r.generated_tokens;
    prompt_tokens += r.prompt_tokens;
    switch (r.status) {
    case RequestStatus::kCapacityExceeded:
        ++truncated;
        break;
    case RequestStatus::kCancelled:
        ++cancelled;
        break;
    case RequestStatus::kDeadlineExceeded:
        ++expired;
        break;
    case RequestStatus::kNumericFault:
        ++numeric_faults;
        break;
    case RequestStatus::kEngineStopped:
        ++stopped;
        break;
    default:
        break;
    }
    ++completed;

    ClassMetrics &cm =
        per_class[static_cast<size_t>(r.priority_class)];
    ++cm.completed;
    cm.generated_tokens += r.generated_tokens;
    cm.preemptions += r.preemptions;
    cm.ttft_ms.record(r.ttft_ms);
    cm.latency_ms.record(r.latency_ms);
    if (r.status == RequestStatus::kOk) {
        ++cm.ok;
        if (r.slo_met) {
            ++cm.slo_met;
            cm.goodput_tokens += r.generated_tokens;
        }
    }
}

double
ServeMetrics::tokensPerSecBusy() const
{
    if (busy_ms <= 0.0)
        return 0.0;
    return static_cast<double>(generated_tokens) / (busy_ms / 1000.0);
}

std::string
ServeMetrics::dump() const
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "serve: %lld completed (%lld truncated), %lld rejected "
                  "(%lld invalid), %lld steps (%lld idle)\n",
                  static_cast<long long>(completed),
                  static_cast<long long>(truncated),
                  static_cast<long long>(rejected),
                  static_cast<long long>(rejected_invalid),
                  static_cast<long long>(steps),
                  static_cast<long long>(idle_steps));
    out += buf;
    if (cancelled + expired + numeric_faults + stopped +
            tap_nonfinite_steps >
        0) {
        std::snprintf(buf, sizeof(buf),
                      "faults: %lld cancelled, %lld deadline-expired, "
                      "%lld numeric, %lld engine-stopped, %lld tap "
                      "trips\n",
                      static_cast<long long>(cancelled),
                      static_cast<long long>(expired),
                      static_cast<long long>(numeric_faults),
                      static_cast<long long>(stopped),
                      static_cast<long long>(tap_nonfinite_steps));
        out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "tokens: %lld generated, %lld prompt; %.0f tok/s over "
                  "%.1f ms busy\n",
                  static_cast<long long>(generated_tokens),
                  static_cast<long long>(prompt_tokens), tokensPerSecBusy(),
                  busy_ms);
    out += buf;
    if (prefix_lookups + pages_resident_peak > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "paged: %lld/%lld prefix hits, %lld rows reused, %lld "
            "prefill rows computed, %lld evictions, %lld pages peak, "
            "%lld preempted\n",
            static_cast<long long>(prefix_hits),
            static_cast<long long>(prefix_lookups),
            static_cast<long long>(prefix_reused_tokens),
            static_cast<long long>(prefill_tokens_computed),
            static_cast<long long>(prefix_evictions),
            static_cast<long long>(pages_resident_peak),
            static_cast<long long>(preempted));
        out += buf;
    }
    if (sessions_spilled + sessions_restored + sessions_recomputed +
            sessions_resident_reused + sessions_dropped + spill_failures >
        0) {
        std::snprintf(
            buf, sizeof(buf),
            "spill: %lld spilled / %lld restored / %lld recomputed / "
            "%lld resident-reused / %lld dropped, %lld IO failures, "
            "%lld B out, %lld B in; idle now %lld RAM + %lld disk\n",
            static_cast<long long>(sessions_spilled),
            static_cast<long long>(sessions_restored),
            static_cast<long long>(sessions_recomputed),
            static_cast<long long>(sessions_resident_reused),
            static_cast<long long>(sessions_dropped),
            static_cast<long long>(spill_failures),
            static_cast<long long>(spilled_bytes),
            static_cast<long long>(restored_bytes),
            static_cast<long long>(sessions_resident),
            static_cast<long long>(sessions_on_disk));
        out += buf;
    }
    // Per-class rows only when more than one class actually retired
    // something (single-class workloads keep the old dump byte-shape).
    int active_classes = 0;
    for (const auto &cm : per_class)
        active_classes += cm.completed > 0 ? 1 : 0;
    if (active_classes > 1 || sched_preemptions > 0) {
        for (size_t c = 0; c < per_class.size(); ++c) {
            const ClassMetrics &cm = per_class[c];
            if (cm.completed == 0 && cm.rejected == 0)
                continue;
            std::snprintf(
                buf, sizeof(buf),
                "class %-11s %lld done (%lld ok, %lld slo-met, %lld "
                "rejected), %lld tok (%lld goodput), %lld preempts, "
                "ttft p95 %.1f ms, latency p95 %.1f ms\n",
                toString(static_cast<PriorityClass>(c)),
                static_cast<long long>(cm.completed),
                static_cast<long long>(cm.ok),
                static_cast<long long>(cm.slo_met),
                static_cast<long long>(cm.rejected),
                static_cast<long long>(cm.generated_tokens),
                static_cast<long long>(cm.goodput_tokens),
                static_cast<long long>(cm.preemptions),
                cm.ttft_ms.percentile(95.0),
                cm.latency_ms.percentile(95.0));
            out += buf;
        }
        if (sched_preemptions > 0) {
            std::snprintf(
                buf, sizeof(buf),
                "sched: %lld preemptions (%lld resumed)\n",
                static_cast<long long>(sched_preemptions),
                static_cast<long long>(preempt_resumes));
            out += buf;
        }
    }
    const struct
    {
        const char *name;
        const LatencyHistogram &h;
    } rows[] = {
        {"ttft_ms", ttft_ms},
        {"request_latency_ms", request_latency_ms},
        {"token_latency_ms", token_latency_ms},
    };
    for (const auto &row : rows) {
        std::snprintf(buf, sizeof(buf),
                      "%-20s n=%-6zu mean=%-8.3f p50=%-8.3f p95=%-8.3f "
                      "p99=%.3f\n",
                      row.name, row.h.count(), row.h.mean(),
                      row.h.percentile(50.0), row.h.percentile(95.0),
                      row.h.percentile(99.0));
        out += buf;
    }
    // Park the dump next to the spans it explains, so a trace file is a
    // self-contained record of the run.
    if (trace::collecting())
        trace::note("serve_metrics", out);
    return out;
}

} // namespace qt8::serve
