/**
 * @file
 * Tiered KV session storage (DESIGN.md §15): integrity-checked disk
 * spill of idle sessions' KV pages, with restore-or-recompute fallback
 * and graceful degradation under memory pressure.
 *
 * Two layers:
 *
 *  - KVSpillStore — the mechanism. Serializes the resident page bytes
 *    of one session (packed uint8 grid codes or fp32 rows, exactly as
 *    held by PagedKVPool's panels) to a per-session "QT8SPILL1" file:
 *    a geometry header plus, per page per layer, a CRC32 of the K/V
 *    payload followed by the payload itself. Because the paper's 8-bit
 *    formats make the page itself the compressed artifact, a packed
 *    spill is already 4x smaller than the fp32 carrier — disk tiering
 *    at zero extra numeric cost. Restore is a byte-for-byte read into
 *    freshly allocated pages, so a restored session's subsequent
 *    decode is bit-identical to the never-spilled oracle. Every
 *    failure is a typed SpillStatus, never an assert.
 *
 *  - SpillManager — the policy. An LRU table of idle sessions (KV
 *    pages retained after a kOk retirement, keyed by
 *    Request::session_id). Low/high watermarks on the pool's
 *    availablePages() trigger spilling LRU idle sessions to disk; a
 *    returning request resumes its history resident from RAM, restored
 *    from disk, or — when the spill is dead (CRC mismatch, short read,
 *    missing file, IO error) — recomputed through the ordinary chunked
 *    prefill path. Write-side failures (ENOSPC, open/write error)
 *    abandon the spill and keep the session resident; under hard
 *    pressure (admission blocked) a session that cannot be spilled is
 *    dropped outright, trading idle-session state for forward
 *    progress. The failure lattice is exhaustive: no IO outcome can
 *    lose a request or change its tokens, only its accounting.
 *
 * Both layers are scheduler-side objects: the engine calls them with
 * its lock held, exactly like PagedKVPool. Neither takes locks.
 */
#ifndef QT8_SERVE_KV_SPILL_H
#define QT8_SERVE_KV_SPILL_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/fault.h"
#include "serve/paged_kv.h"
#include "serve/request.h"

namespace qt8::serve {

/// Typed outcome of a spill-store operation — the IO half of the
/// robustness contract. Restore-side failures mark the spill dead and
/// fall back to recompute; spill-side failures abandon the file and
/// keep the session resident.
enum class SpillStatus {
    kOk = 0,
    kOpenFail,    ///< Could not open the spill file (either side).
    kWriteFail,   ///< Write error other than ENOSPC mid-spill.
    kNoSpace,     ///< ENOSPC mid-spill (real or injected).
    kBadHeader,   ///< Magic/geometry mismatch, or trailing garbage.
    kShortRead,   ///< Truncated file (torn write discovered at restore).
    kCrcMismatch, ///< A page payload failed its CRC32.
    kMissing,     ///< No spill file for this session key.
};

const char *toString(SpillStatus s);

/**
 * Serializes one session's resident KV pages to a per-key spill file
 * and restores them byte-for-byte. File format ("QT8SPILL1"):
 *
 *   magic[9] | key u64 | n_layers u64 | page_size u64 | d_model u64 |
 *   rows u64 | packed u64 |
 *   then per logical page (ceil(rows / page_size) of them, in order),
 *   per layer: crc32(K payload) u64, K payload, crc32(V payload) u64,
 *   V payload — where a payload is rows_in_page * d_model elements
 *   (1 byte each packed, 4 bytes fp32) read straight out of the
 *   panel's arena. The last page carries only its valid rows, so a
 *   file's size is exact and any truncation is a typed kShortRead.
 *
 * Integers are host-endian (a spill never outlives the host, unlike a
 * checkpoint); CRCs use the shared util/crc32.h implementation.
 */
class KVSpillStore
{
  public:
    struct Config
    {
        std::string dir; ///< Spill directory (created on demand).
        /// Borrowed IO fault injector; may be null (see serve/fault.h).
        FaultInjector *fault = nullptr;
    };

    explicit KVSpillStore(Config cfg);

    /**
     * Write the first @p rows logical rows mapped by @p pages out of
     * @p layers to the file for @p key (replacing any previous spill).
     * On any failure the partial file is removed and the panels are
     * untouched — the caller keeps the session resident.
     */
    SpillStatus spill(uint64_t key, const std::vector<int32_t> &pages,
                      int64_t rows,
                      const std::vector<KVPagePanels> &layers);

    /**
     * Read the spill for @p key back into the physical pages named by
     * @p pages (freshly allocated by the caller), verifying the header
     * against @p layers' geometry and every payload against its CRC.
     * @p rows must match the header (the manager knows each session's
     * row count). On failure the target pages may hold partial data —
     * the caller releases them and recomputes.
     */
    SpillStatus restore(uint64_t key, const std::vector<int32_t> &pages,
                        int64_t rows, std::vector<KVPagePanels> &layers);

    /// Delete the spill file for @p key, if any.
    void drop(uint64_t key);

    bool has(uint64_t key) const;
    std::string pathFor(uint64_t key) const;

    int64_t spilledBytes() const { return spilled_bytes_; }
    int64_t restoredBytes() const { return restored_bytes_; }

  private:
    Config cfg_;
    int64_t spilled_bytes_ = 0;  ///< File bytes successfully written.
    int64_t restored_bytes_ = 0; ///< File bytes successfully read back.
};

/**
 * Idle-session table + spill policy for the paged CausalLM engine.
 * A session is the KV history of a finished turn (pages + the tokens
 * that keyed them); a resuming request whose prompt strictly extends
 * that history skips recomputing the retained rows.
 *
 * Resume protocol (all under the engine lock): resume() checks the
 * session out (restoring from disk if spilled); the engine then runs
 * its normal admission gates and either commitResume()s (request
 * admitted — the entry is consumed) or abortResume()s (request parked
 * — the pages go back as a resident session). kRecomputed resumes
 * consume the entry immediately: the history is gone, the request
 * falls through to the ordinary fresh-admission path.
 */
class SpillManager
{
  public:
    struct Config
    {
        std::string dir; ///< "" = no disk tier: under pressure, idle
                         ///< sessions are dropped (recomputed later)
                         ///< instead of spilled.
        /// Watermark sweep: when availablePages() < low, spill LRU
        /// idle sessions until it reaches high (0 = n_pages / 4 and
        /// n_pages / 2 respectively).
        int64_t low_pages = 0;
        int64_t high_pages = 0;
        size_t max_sessions = 64; ///< Idle-session table bound; LRU
                                  ///< overflow spills (or drops).
        FaultInjector *fault = nullptr; ///< Borrowed; may be null.
    };

    struct Stats
    {
        int64_t sessions_spilled = 0;
        int64_t sessions_restored = 0;
        int64_t sessions_recomputed = 0;
        int64_t sessions_resident_reused = 0;
        int64_t sessions_dropped = 0;
        int64_t spill_failures = 0;
        int64_t spilled_bytes = 0;
        int64_t restored_bytes = 0;
    };

    SpillManager(const Config &cfg, PagedKVPool &pool,
                 int64_t prompt_rows_cap);
    ~SpillManager(); ///< releaseAll(): pages returned, files deleted.

    bool diskTier() const { return !cfg_.dir.empty(); }

    /// Retain a finished turn's pages as the idle session for @p sid
    /// (replacing any previous entry). @p history must key exactly
    /// @p seq.len rows (prompt ++ generated tokens, truncated).
    void endTurn(uint64_t sid, std::vector<int32_t> history,
                 PagedSeq &&seq);

    /// Forget @p sid entirely: pages released, spill file deleted.
    /// No-op for unknown or checked-out ids.
    void dropSession(uint64_t sid);

    struct Resume
    {
        SessionKVSource source = SessionKVSource::kNone;
        /// True: the session exists on disk but the pool cannot hold
        /// its pages right now — park the request and retry (the
        /// entry is untouched).
        bool retry = false;
        /// kResident / kRestoredFromSpill: the history pages, len =
        /// retained rows. The caller owns them until commit or abort.
        PagedSeq seq;
    };

    /// Attempt to resume @p sid for @p prompt. kNone: no session, or
    /// the prompt does not extend the history (the stale entry is
    /// dropped) — run the fresh path. kRecomputed: the spill was dead;
    /// ditto, but accounted as a fallback.
    Resume resume(uint64_t sid, const std::vector<int32_t> &prompt);

    /// The checked-out resume was admitted: consume the entry.
    void commitResume(uint64_t sid);

    /// The checked-out resume could not be admitted (pages or gate):
    /// re-park @p seq as a resident session, MRU-stamped.
    void abortResume(uint64_t sid, PagedSeq &&seq);

    /// Watermark sweep: while availablePages() < low, spill LRU idle
    /// resident sessions (disk tier only) until >= high or no
    /// candidates remain. Spill failures keep the session resident
    /// (soft pressure tolerates it). Returns sessions spilled.
    int spillToWatermark();

    /**
     * Hard pressure (admission blocked): free the LRU idle resident
     * session's pages — spill it if the disk tier accepts it, else
     * drop it outright (graceful degradation: the next turn
     * recomputes). Returns false when no resident session remains.
     */
    bool spillOne();

    /**
     * Preemptive checkout (scheduler preemption, DESIGN.md §16): free
     * the pages of the *specific* resident session @p sid right now —
     * spilling it if the disk tier accepts the bytes, dropping it
     * outright otherwise (the preempted request recomputes on
     * resume). Returns true when pages were freed; false when @p sid
     * is unknown, already spilled, or checked out.
     */
    bool spillSession(uint64_t sid);

    /// Drop every session (pages released, files deleted). Engine
    /// abort/shutdown, or tests asserting pool quiescence.
    void releaseAll();

    int64_t residentSessions() const;
    int64_t spilledSessions() const;
    /// Pages @p sid holds in the pool right now (0 when unknown,
    /// spilled, or checked out). Lets the engine pre-gate a preempt
    /// resume *before* restoring from disk: restoring a checkpoint the
    /// admission gate is bound to reject would thrash pool pages.
    int64_t residentPages(uint64_t sid) const;
    /// Counters above, with byte totals pulled from the store.
    Stats stats() const;
    const KVSpillStore &store() const { return store_; }

  private:
    struct Session
    {
        enum class State {
            kResident,   ///< Pages live in the pool (seq valid).
            kSpilled,    ///< Pages on disk; seq empty.
            kCheckedOut, ///< Mid-resume; seq handed to the engine.
        };
        State state = State::kResident;
        std::vector<int32_t> history; ///< Tokens keying rows 0..rows-1.
        PagedSeq seq;
        uint64_t stamp = 0; ///< LRU clock.
        SessionKVSource checkout_src = SessionKVSource::kNone;
    };

    bool promptExtends(const Session &s,
                       const std::vector<int32_t> &prompt) const;
    /// Spill (disk tier) or drop one resident session; true = its
    /// pages were freed. @p drop_on_failure distinguishes the hard-
    /// pressure path from the tolerant watermark sweep.
    bool evictResident(uint64_t sid, Session &s, bool drop_on_failure);
    void dropLocked(uint64_t sid, Session &s);
    uint64_t lruResident() const; ///< 0 = none.

    Config cfg_;
    PagedKVPool &pool_;
    KVSpillStore store_;
    int64_t prompt_rows_cap_; ///< slot_capacity: retained rows beyond
                              ///< this could never be resumed.
    std::unordered_map<uint64_t, Session> sessions_;
    uint64_t clock_ = 0;
    Stats stats_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_KV_SPILL_H
