#include "serve/fault.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace qt8::serve {

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed)
{}

bool
FaultInjector::onAcquire()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.acquire_fail_rate <= 0.0 ||
        rng_.uniform() >= cfg_.acquire_fail_rate)
        return false;
    ++stats_.acquire_fails;
    return true;
}

double
FaultInjector::onStepDelayMs()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.delay_rate <= 0.0 || cfg_.delay_ms <= 0.0 ||
        rng_.uniform() >= cfg_.delay_rate)
        return 0.0;
    ++stats_.delays;
    return cfg_.delay_ms;
}

void
FaultInjector::onLogits(int64_t step, const std::vector<uint64_t> &ids,
                        const std::vector<int32_t> &slots, Tensor &logits)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t vocab = logits.dim(1);
    const float nan = std::numeric_limits<float>::quiet_NaN();

    auto poison = [&](size_t row) {
        float *p = logits.data() + static_cast<int64_t>(row) * vocab;
        for (int64_t j = 0; j < vocab; ++j)
            p[j] = nan;
        faulted_.insert(ids[row]);
        ++stats_.nan_injected;
    };

    for (const FaultConfig::NanAt &t : cfg_.nan_at) {
        if (t.step != step)
            continue;
        for (size_t i = 0; i < slots.size(); ++i)
            if (slots[i] == t.slot)
                poison(i);
    }
    if (cfg_.nan_logit_rate > 0.0 && !ids.empty() &&
        rng_.uniform() < cfg_.nan_logit_rate) {
        poison(static_cast<size_t>(
            rng_.randint(static_cast<int64_t>(ids.size()))));
    }
}

void
FaultInjector::onKvPanels(int64_t /*step*/,
                          const std::vector<uint64_t> &ids,
                          const std::vector<int32_t> &slots,
                          std::vector<KVSlots> &self_layers)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.kv_bitflip_rate <= 0.0 || ids.empty() || self_layers.empty())
        return;
    if (rng_.uniform() >= cfg_.kv_bitflip_rate)
        return;

    // Victim: a random active row whose slot has cached positions.
    const size_t victim = static_cast<size_t>(
        rng_.randint(static_cast<int64_t>(ids.size())));
    const int32_t slot = slots[victim];
    KVSlots &layer = self_layers[static_cast<size_t>(
        rng_.randint(static_cast<int64_t>(self_layers.size())))];
    const int64_t len = layer.len[static_cast<size_t>(slot)];
    if (len <= 0)
        return;

    const bool pick_k = rng_.uniform() < 0.5;
    const int64_t d_model = layer.d_model;
    const int64_t row = slot * layer.capacity + rng_.randint(len);
    const int64_t cell_idx = row * d_model + rng_.randint(d_model);

    if (layer.packed()) {
        // Packed storage: the panel is uint8 grid codes. Flip one of
        // the 8 code bits — the corrupted code decodes to a wrong grid
        // value, or to NaN when it lands past the format's grid size
        // (the table's NaN tail), exactly the hardware bit-rot the
        // non-finite guard exists for.
        std::vector<uint8_t> &codes =
            pick_k ? layer.k_codes : layer.v_codes;
        codes[static_cast<size_t>(cell_idx)] ^=
            static_cast<uint8_t>(1u << rng_.randint(8));
    } else {
        Tensor &panel = pick_k ? layer.k : layer.v;
        float *cell = panel.data() + cell_idx;
        uint32_t bits;
        std::memcpy(&bits, cell, sizeof(bits));
        bits ^= 1u << rng_.randint(32);
        std::memcpy(cell, &bits, sizeof(bits));
    }

    faulted_.insert(ids[victim]);
    ++stats_.bits_flipped;
}

bool
FaultInjector::onPageAcquire()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.page_acquire_fail_rate <= 0.0 ||
        rng_.uniform() >= cfg_.page_acquire_fail_rate)
        return false;
    ++stats_.page_acquire_fails;
    return true;
}

int32_t
FaultInjector::onKvPages(int64_t /*step*/,
                         const std::vector<PagedSeqView> &seqs,
                         std::vector<KVPagePanels> &self_layers,
                         int64_t page_size)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.page_bitflip_rate <= 0.0 || seqs.empty() ||
        self_layers.empty())
        return -1;
    if (rng_.uniform() >= cfg_.page_bitflip_rate)
        return -1;

    // Victim: a random visible row of a random active sequence —
    // logical addressing, so shared prefix pages are in range too.
    const PagedSeqView &seq = seqs[static_cast<size_t>(
        rng_.randint(static_cast<int64_t>(seqs.size())))];
    if (seq.rows <= 0)
        return -1;
    const int64_t r = rng_.randint(seq.rows);
    const int32_t page =
        (*seq.pages)[static_cast<size_t>(r / page_size)];
    const int64_t phys = static_cast<int64_t>(page) * page_size +
                         r % page_size;

    KVPagePanels &layer = self_layers[static_cast<size_t>(
        rng_.randint(static_cast<int64_t>(self_layers.size())))];
    const bool pick_k = rng_.uniform() < 0.5;
    const int64_t cell_idx =
        phys * layer.d_model + rng_.randint(layer.d_model);

    if (layer.packed()) {
        std::vector<uint8_t> &codes =
            pick_k ? layer.k_codes : layer.v_codes;
        codes[static_cast<size_t>(cell_idx)] ^=
            static_cast<uint8_t>(1u << rng_.randint(8));
    } else {
        Tensor &panel = pick_k ? layer.k : layer.v;
        float *cell = panel.data() + cell_idx;
        uint32_t bits;
        std::memcpy(&bits, cell, sizeof(bits));
        bits ^= 1u << rng_.randint(32);
        std::memcpy(cell, &bits, sizeof(bits));
    }

    // Per-request isolation accounting: the flip corrupts every
    // sequence whose page table maps this physical page (one victim
    // for private pages, all sharers for a prefix-cache page).
    for (const PagedSeqView &s : seqs) {
        const int64_t used = (s.rows + page_size - 1) / page_size;
        for (int64_t j = 0; j < used; ++j) {
            if ((*s.pages)[static_cast<size_t>(j)] == page) {
                faulted_.insert(s.id);
                break;
            }
        }
    }
    ++stats_.page_bits_flipped;
    return page;
}

bool
FaultInjector::onPreempt()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.preempt_rate <= 0.0 ||
        rng_.uniform() >= cfg_.preempt_rate)
        return false;
    ++stats_.forced_preempts;
    return true;
}

bool
FaultInjector::onSpillOpen()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.spill_open_fail_rate <= 0.0 ||
        rng_.uniform() >= cfg_.spill_open_fail_rate)
        return false;
    ++stats_.spill_open_fails;
    return true;
}

FaultInjector::SpillWriteFault
FaultInjector::onSpillWrite()
{
    std::lock_guard<std::mutex> lock(mu_);
    // One draw per family, ENOSPC first: the failure the caller *sees*
    // (abandon) beats the silent ones (torn / corrupt) when both fire.
    if (cfg_.spill_enospc_rate > 0.0 &&
        rng_.uniform() < cfg_.spill_enospc_rate) {
        ++stats_.spill_enospc;
        return SpillWriteFault::kNoSpace;
    }
    if (cfg_.spill_torn_write_rate > 0.0 &&
        rng_.uniform() < cfg_.spill_torn_write_rate) {
        ++stats_.spill_torn_writes;
        return SpillWriteFault::kTorn;
    }
    if (cfg_.spill_corrupt_rate > 0.0 &&
        rng_.uniform() < cfg_.spill_corrupt_rate) {
        ++stats_.spill_corruptions;
        return SpillWriteFault::kCorrupt;
    }
    return SpillWriteFault::kNone;
}

bool
FaultInjector::onSpillRead()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (cfg_.spill_short_read_rate <= 0.0 ||
        rng_.uniform() >= cfg_.spill_short_read_rate)
        return false;
    ++stats_.spill_short_reads;
    return true;
}

FaultInjector::Stats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::unordered_set<uint64_t>
FaultInjector::faultedIds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return faulted_;
}

bool
FaultInjector::wasFaulted(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return faulted_.count(id) != 0;
}

} // namespace qt8::serve
