/**
 * @file
 * Deterministic, seeded fault injection for the serving engine — the
 * chaos half of the robustness contract in DESIGN.md §10.
 *
 * A FaultInjector is handed to the engine through
 * EngineConfig::fault and consulted at fixed points of the scheduler
 * step. Every decision is drawn from one seeded xoshiro256++ stream
 * (never the wall clock or OS entropy), so a given (seed, step
 * sequence) replays the identical fault schedule. The hooks are always
 * compiled in; a null injector costs one pointer test per site.
 *
 * Supported faults:
 *  - NaN logits: overwrite one active row's step logits with NaN,
 *    either at scheduled (step, slot) trigger points or at a per-step
 *    rate. Exercises the engine's non-finite scan (kNumericFault).
 *  - KV bit flips: flip one random bit inside a random cached K/V row
 *    of a random active slot. Corrupts exactly that request's numerics
 *    (rows are sequence-independent), so its tokens may diverge — the
 *    soak test asserts everyone *else* stays bit-identical.
 *  - Allocation failure: make KVCachePool::acquire look exhausted for
 *    one admission attempt, delaying admission without losing work.
 *  - Step delay: stall the scheduler inside a step, widening race
 *    windows for submit/cancel/stop under ThreadSanitizer.
 *  - IO faults (KV spill store): open failure, ENOSPC mid-write, torn
 *    writes (success reported, file truncated), single-byte payload
 *    corruption, and short reads — every failure edge of the tiered
 *    KV storage in DESIGN.md §15. IO faults never touch numerics, so
 *    they must *never* change a request's tokens, only its
 *    restore-vs-recompute accounting.
 *
 * Requests whose numerics were touched (NaN or bit flip) are recorded
 * by id, so tests can separate "faulted" from "healthy" requests when
 * checking bit-identity against solo decodes.
 */
#ifndef QT8_SERVE_FAULT_H
#define QT8_SERVE_FAULT_H

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "nn/attention.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8::serve {

/// The fault schedule. Rates are per-opportunity probabilities in
/// [0, 1]; all zero (the default) disables every fault.
struct FaultConfig
{
    uint64_t seed = 1;

    /// Per-step probability of poisoning one active row's logits.
    double nan_logit_rate = 0.0;
    /// Scheduled NaN triggers: poison the row decoding in pool slot
    /// `slot` on scheduler step `step` (fires iff that slot is active
    /// then). Deterministic complement to nan_logit_rate.
    struct NanAt
    {
        int64_t step = 0;
        int32_t slot = 0;
    };
    std::vector<NanAt> nan_at;

    /// Per-step probability of flipping one bit in a random active
    /// slot's cached K/V panel row.
    double kv_bitflip_rate = 0.0;

    /// Per-admission-attempt probability of a simulated pool
    /// allocation failure (admission retries on a later step).
    double acquire_fail_rate = 0.0;

    /// Paged pool: per-step probability of flipping one bit inside a
    /// random resident page (shared prefix pages included — *every*
    /// request mapping the page is recorded as faulted).
    double page_bitflip_rate = 0.0;

    /// Paged pool: per-ensureTail probability of a simulated
    /// page-allocation failure (the request stalls one step).
    double page_acquire_fail_rate = 0.0;

    /// Per-step probability of sleeping delay_ms inside the step.
    double delay_rate = 0.0;
    double delay_ms = 0.0;

    /// Per-step probability of a *forced scheduler preemption*: the
    /// engine preempts its lowest-class in-flight decode even without
    /// memory pressure (spill-and-requeue through the session tier,
    /// DESIGN.md §16). Stresses the preempt-resume identity path; it
    /// never touches numerics, so tokens must never change.
    double preempt_rate = 0.0;

    // --- IO fault family (KV spill store, DESIGN.md §15) -------------

    /// Per-open probability that a spill-file open fails (spill side:
    /// the spill is abandoned and the session stays resident; restore
    /// side: the spill is marked dead and the prompt recomputes).
    double spill_open_fail_rate = 0.0;
    /// Per-spill probability of ENOSPC mid-write: the partial file is
    /// deleted and the session stays resident.
    double spill_enospc_rate = 0.0;
    /// Per-spill probability of a *torn write*: the spill reports
    /// success but the file is truncated at a random byte — the damage
    /// surfaces as a short read on the next restore.
    double spill_torn_write_rate = 0.0;
    /// Per-spill probability of flipping one payload byte on disk
    /// after a successful write (caught by the per-page CRC on
    /// restore).
    double spill_corrupt_rate = 0.0;
    /// Per-restore probability of a simulated short read (truncated
    /// file / torn page) even when the file is intact.
    double spill_short_read_rate = 0.0;
};

/// A scheduler-side view of one active request's self page table, for
/// page-granularity fault targeting and sharer attribution.
struct PagedSeqView
{
    uint64_t id = 0;
    const std::vector<int32_t> *pages = nullptr;
    int64_t rows = 0; ///< Cached (visible) rows.
};

class FaultInjector
{
  public:
    struct Stats
    {
        int64_t nan_injected = 0;
        int64_t bits_flipped = 0;
        int64_t acquire_fails = 0;
        int64_t delays = 0;
        int64_t page_bits_flipped = 0;
        int64_t page_acquire_fails = 0;
        int64_t spill_open_fails = 0;
        int64_t spill_enospc = 0;
        int64_t spill_torn_writes = 0;
        int64_t spill_corruptions = 0;
        int64_t spill_short_reads = 0;
        int64_t forced_preempts = 0;
    };

    explicit FaultInjector(FaultConfig cfg);

    // --- Hooks, called by the scheduler (engine lock held) -----------

    /// True = pretend the pool has no free slot for this admission.
    bool onAcquire();

    /// Milliseconds to stall this step (0 = none).
    double onStepDelayMs();

    /// Poison logits rows per nan_at / nan_logit_rate. Row i of
    /// @p logits belongs to request ids[i] decoding in slots[i].
    void onLogits(int64_t step, const std::vector<uint64_t> &ids,
                  const std::vector<int32_t> &slots, Tensor &logits);

    /// Maybe flip one bit in the cached panels of a random active slot
    /// (positions < the slot's current length only).
    void onKvPanels(int64_t step, const std::vector<uint64_t> &ids,
                    const std::vector<int32_t> &slots,
                    std::vector<KVSlots> &self_layers);

    /// True = pretend the paged pool has no free page for this
    /// ensureTail (the request stalls and retries next step).
    bool onPageAcquire();

    /// Paged analogue of onKvPanels: maybe flip one bit inside a
    /// random visible page row of a random active sequence. Because a
    /// page may be mapped by several sequences (shared prefix), every
    /// sequence whose table contains the flipped physical page is
    /// recorded as faulted. Returns the flipped physical page id (so
    /// the scheduler can expel it from the prefix cache), or -1 when
    /// nothing was flipped.
    int32_t onKvPages(int64_t step, const std::vector<PagedSeqView> &seqs,
                      std::vector<KVPagePanels> &self_layers,
                      int64_t page_size);

    /// True = force a scheduler preemption this step (preempt_rate).
    bool onPreempt();

    // --- IO hooks, called by the KV spill store ----------------------

    /// What a spill-side write should pretend happened.
    enum class SpillWriteFault {
        kNone,
        kNoSpace, ///< ENOSPC mid-write: abandon, session stays resident.
        kTorn,    ///< Report success, truncate the file behind the
                  ///< caller's back (discovered at restore).
        kCorrupt, ///< Report success, flip one payload byte on disk.
    };

    /// True = pretend the spill-file open failed (EMFILE/EACCES class).
    bool onSpillOpen();
    /// Drawn once per spill after the payload is staged.
    SpillWriteFault onSpillWrite();
    /// True = pretend a read came up short during restore.
    bool onSpillRead();

    // --- Test-side accessors (thread-safe) ---------------------------

    Stats stats() const;

    /// Ids of every request whose numerics were touched (NaN logits or
    /// KV bit flip): their tokens may legitimately diverge from a solo
    /// decode, or retire kNumericFault.
    std::unordered_set<uint64_t> faultedIds() const;

    bool wasFaulted(uint64_t id) const;

  private:
    mutable std::mutex mu_; ///< Hooks run on the scheduler thread while
                            ///< tests read stats from theirs.
    FaultConfig cfg_;
    Rng rng_;
    Stats stats_;
    std::unordered_set<uint64_t> faulted_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_FAULT_H
