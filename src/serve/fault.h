/**
 * @file
 * Deterministic, seeded fault injection for the serving engine — the
 * chaos half of the robustness contract in DESIGN.md §10.
 *
 * A FaultInjector is handed to the engine through
 * EngineConfig::fault and consulted at fixed points of the scheduler
 * step. Every decision is drawn from one seeded xoshiro256++ stream
 * (never the wall clock or OS entropy), so a given (seed, step
 * sequence) replays the identical fault schedule. The hooks are always
 * compiled in; a null injector costs one pointer test per site.
 *
 * Supported faults:
 *  - NaN logits: overwrite one active row's step logits with NaN,
 *    either at scheduled (step, slot) trigger points or at a per-step
 *    rate. Exercises the engine's non-finite scan (kNumericFault).
 *  - KV bit flips: flip one random bit inside a random cached K/V row
 *    of a random active slot. Corrupts exactly that request's numerics
 *    (rows are sequence-independent), so its tokens may diverge — the
 *    soak test asserts everyone *else* stays bit-identical.
 *  - Allocation failure: make KVCachePool::acquire look exhausted for
 *    one admission attempt, delaying admission without losing work.
 *  - Step delay: stall the scheduler inside a step, widening race
 *    windows for submit/cancel/stop under ThreadSanitizer.
 *
 * Requests whose numerics were touched (NaN or bit flip) are recorded
 * by id, so tests can separate "faulted" from "healthy" requests when
 * checking bit-identity against solo decodes.
 */
#ifndef QT8_SERVE_FAULT_H
#define QT8_SERVE_FAULT_H

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "nn/attention.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8::serve {

/// The fault schedule. Rates are per-opportunity probabilities in
/// [0, 1]; all zero (the default) disables every fault.
struct FaultConfig
{
    uint64_t seed = 1;

    /// Per-step probability of poisoning one active row's logits.
    double nan_logit_rate = 0.0;
    /// Scheduled NaN triggers: poison the row decoding in pool slot
    /// `slot` on scheduler step `step` (fires iff that slot is active
    /// then). Deterministic complement to nan_logit_rate.
    struct NanAt
    {
        int64_t step = 0;
        int32_t slot = 0;
    };
    std::vector<NanAt> nan_at;

    /// Per-step probability of flipping one bit in a random active
    /// slot's cached K/V panel row.
    double kv_bitflip_rate = 0.0;

    /// Per-admission-attempt probability of a simulated pool
    /// allocation failure (admission retries on a later step).
    double acquire_fail_rate = 0.0;

    /// Per-step probability of sleeping delay_ms inside the step.
    double delay_rate = 0.0;
    double delay_ms = 0.0;
};

class FaultInjector
{
  public:
    struct Stats
    {
        int64_t nan_injected = 0;
        int64_t bits_flipped = 0;
        int64_t acquire_fails = 0;
        int64_t delays = 0;
    };

    explicit FaultInjector(FaultConfig cfg);

    // --- Hooks, called by the scheduler (engine lock held) -----------

    /// True = pretend the pool has no free slot for this admission.
    bool onAcquire();

    /// Milliseconds to stall this step (0 = none).
    double onStepDelayMs();

    /// Poison logits rows per nan_at / nan_logit_rate. Row i of
    /// @p logits belongs to request ids[i] decoding in slots[i].
    void onLogits(int64_t step, const std::vector<uint64_t> &ids,
                  const std::vector<int32_t> &slots, Tensor &logits);

    /// Maybe flip one bit in the cached panels of a random active slot
    /// (positions < the slot's current length only).
    void onKvPanels(int64_t step, const std::vector<uint64_t> &ids,
                    const std::vector<int32_t> &slots,
                    std::vector<KVSlots> &self_layers);

    // --- Test-side accessors (thread-safe) ---------------------------

    Stats stats() const;

    /// Ids of every request whose numerics were touched (NaN logits or
    /// KV bit flip): their tokens may legitimately diverge from a solo
    /// decode, or retire kNumericFault.
    std::unordered_set<uint64_t> faultedIds() const;

    bool wasFaulted(uint64_t id) const;

  private:
    mutable std::mutex mu_; ///< Hooks run on the scheduler thread while
                            ///< tests read stats from theirs.
    FaultConfig cfg_;
    Rng rng_;
    Stats stats_;
    std::unordered_set<uint64_t> faulted_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_FAULT_H
