#include "serve/paged_kv.h"

#include <algorithm>
#include <cassert>

namespace qt8::serve {

/// Radix-trie node: the edge from the parent is one full
/// page_size-token prompt chunk, and the node owns exactly one
/// read-only page holding that chunk's K/V rows in every self layer.
struct PagedKVPool::Node
{
    std::vector<int32_t> tok; ///< The edge's token chunk (page_size).
    int32_t page = -1;        ///< Owned self page (-1 only at root).
    Node *parent = nullptr;
    std::vector<std::unique_ptr<Node>> kids;
    uint64_t stamp = 0; ///< Last-touched LRU stamp.
};

PagedKVPool::PagedKVPool(const Config &cfg) : cfg_(cfg)
{
    assert(cfg_.n_pages > 0 && cfg_.page_size > 0 && cfg_.d_model > 0);
    self_.resize(cfg_.n_self_layers);
    for (auto &p : self_)
        p.reset(cfg_.n_pages, cfg_.page_size, cfg_.d_model,
                cfg_.packed_fmt);
    cross_.resize(cfg_.n_cross_layers);
    for (auto &p : cross_)
        p.reset(cfg_.n_cross_pages, cfg_.page_size, cfg_.d_model,
                cfg_.packed_fmt);

    ref_.assign(static_cast<size_t>(cfg_.n_pages), 0);
    node_of_page_.assign(static_cast<size_t>(cfg_.n_pages), nullptr);
    free_.reserve(static_cast<size_t>(cfg_.n_pages));
    // LIFO free lists, seeded so page 0 pops first (matches the slab
    // pool's slot order, which keeps traces easy to read).
    for (int64_t p = cfg_.n_pages - 1; p >= 0; --p)
        free_.push_back(static_cast<int32_t>(p));
    for (int64_t p = cfg_.n_cross_pages - 1; p >= 0; --p)
        cross_free_.push_back(static_cast<int32_t>(p));

    root_ = std::make_unique<Node>();
}

PagedKVPool::~PagedKVPool() = default;

int32_t
PagedKVPool::allocPage()
{
    if (free_.empty() && !evictOne())
        return -1;
    const int32_t p = free_.back();
    free_.pop_back();
    assert(ref_[static_cast<size_t>(p)] == 0);
    ref_[static_cast<size_t>(p)] = 1;
    return p;
}

void
PagedKVPool::derefPage(int32_t page)
{
    int32_t &r = ref_[static_cast<size_t>(page)];
    assert(r > 0);
    if (--r == 0)
        free_.push_back(page);
}

bool
PagedKVPool::ensureTail(PagedSeq &seq, int64_t new_rows)
{
    const int64_t have = static_cast<int64_t>(seq.pages.size());
    const int64_t need = pagesFor(new_rows, cfg_.page_size) - have;
    if (need <= 0)
        return true;
    std::vector<int32_t> got;
    got.reserve(static_cast<size_t>(need));
    for (int64_t i = 0; i < need; ++i) {
        const int32_t p = allocPage();
        if (p < 0) {
            // All-or-nothing: hand the partial grab back untouched.
            for (const int32_t q : got)
                derefPage(q);
            return false;
        }
        got.push_back(p);
    }
    seq.pages.insert(seq.pages.end(), got.begin(), got.end());
    return true;
}

void
PagedKVPool::releaseSeq(PagedSeq &seq)
{
    for (const int32_t p : seq.pages)
        derefPage(p);
    // Cross pages are always privately owned: straight to the free
    // list, unscrubbed (the page table defines visibility).
    for (const int32_t p : seq.cross_pages)
        cross_free_.push_back(p);
    seq = PagedSeq{};
}

bool
PagedKVPool::allocCross(PagedSeq &seq, int64_t rows)
{
    const int64_t need = pagesFor(rows, cfg_.page_size);
    if (static_cast<int64_t>(cross_free_.size()) < need)
        return false;
    for (int64_t i = 0; i < need; ++i) {
        seq.cross_pages.push_back(cross_free_.back());
        cross_free_.pop_back();
    }
    return true;
}

PagedKVPool::PrefixMatch
PagedKVPool::matchPrefix(const std::vector<int32_t> &prompt,
                         int64_t max_rows)
{
    PrefixMatch out;
    if (!cfg_.prefix_cache)
        return out;
    ++lookups_;
    const int64_t ps = cfg_.page_size;
    max_rows = std::min(max_rows, static_cast<int64_t>(prompt.size()));

    Node *cur = root_.get();
    int64_t r = 0;
    while (max_rows - r > 0) {
        const int64_t remaining = max_rows - r;
        Node *full = nullptr;
        Node *best_partial = nullptr;
        int64_t best_m = 0;
        for (auto &kid : cur->kids) {
            int64_t m = 0;
            const int64_t lim = std::min(remaining, ps);
            while (m < lim &&
                   kid->tok[static_cast<size_t>(m)] ==
                       prompt[static_cast<size_t>(r + m)])
                ++m;
            if (m == ps) {
                full = kid.get();
                break;
            }
            if (m > best_m) {
                best_m = m;
                best_partial = kid.get();
            }
        }
        if (full != nullptr) {
            full->stamp = ++clock_;
            out.pages.push_back(full->page);
            out.rows += ps;
            r += ps;
            cur = full;
            continue;
        }
        if (best_partial != nullptr) {
            // The request diverges (or its budget ends) inside this
            // cached page: its first best_m rows are still exact —
            // copy-on-write material.
            best_partial->stamp = ++clock_;
            out.partial_page = best_partial->page;
            out.partial_rows = best_m;
        }
        break;
    }
    if (out.rows + out.partial_rows > 0)
        ++hits_;
    return out;
}

int64_t
PagedKVPool::adoptPrefix(PagedSeq &seq, const PrefixMatch &m)
{
    assert(seq.pages.empty() && seq.len == 0 &&
           "adoptPrefix needs a fresh sequence");
    for (const int32_t p : m.pages) {
        ++ref_[static_cast<size_t>(p)];
        seq.pages.push_back(p);
    }
    seq.len = m.rows;
    if (m.partial_page >= 0) {
        const int32_t np = allocPage();
        if (np >= 0) {
            // Clone the covered rows byte-for-byte: a position-t row
            // depends only on tokens 0..t, so the copy is identical
            // to recomputing them (and the page is now private — the
            // request appends its own divergent rows after them). The
            // LRU sweep inside allocPage may hand back the partial
            // page itself (it was unreferenced cache); its rows are
            // already in place then — free lists never scrub.
            if (np != m.partial_page)
                for (auto &panel : self_)
                    panel.copyPageRows(m.partial_page, np,
                                       m.partial_rows);
            seq.pages.push_back(np);
            seq.len += m.partial_rows;
            ++cow_clones_;
        }
        // Allocation failure just forgoes the partial rows; the full
        // pages above are already adopted.
    }
    seq.shared_rows = seq.len;
    reused_rows_ += seq.len;
    return seq.len;
}

void
PagedKVPool::insertPrefix(const std::vector<int32_t> &prompt,
                          int64_t prompt_rows, const PagedSeq &seq)
{
    if (!cfg_.prefix_cache)
        return;
    const int64_t ps = cfg_.page_size;
    assert(prompt_rows <= seq.len);
    const int64_t n_chunks =
        std::min(prompt_rows, static_cast<int64_t>(prompt.size())) / ps;

    Node *cur = root_.get();
    for (int64_t c = 0; c < n_chunks; ++c) {
        const auto chunk_begin =
            prompt.begin() + static_cast<ptrdiff_t>(c * ps);
        Node *next = nullptr;
        for (auto &kid : cur->kids) {
            if (std::equal(kid->tok.begin(), kid->tok.end(),
                           chunk_begin)) {
                next = kid.get();
                break;
            }
        }
        if (next == nullptr) {
            // First donor of this chunk: the cache co-owns the
            // sequence's page from here on (read-only by convention —
            // a sequence never rewrites rows below its prompt).
            const int32_t page = seq.pages[static_cast<size_t>(c)];
            auto node = std::make_unique<Node>();
            node->tok.assign(chunk_begin, chunk_begin + ps);
            node->page = page;
            node->parent = cur;
            node->stamp = ++clock_;
            ++ref_[static_cast<size_t>(page)];
            node_of_page_[static_cast<size_t>(page)] = node.get();
            ++cached_pages_;
            next = node.get();
            cur->kids.push_back(std::move(node));
        } else {
            next->stamp = ++clock_;
        }
        cur = next;
    }
}

PagedKVPool::Node *
PagedKVPool::findLeafLru(Node *n, Node **best) const
{
    for (auto &kid : n->kids)
        findLeafLru(kid.get(), best);
    if (n != root_.get() && n->kids.empty() &&
        ref_[static_cast<size_t>(n->page)] == 1 &&
        (*best == nullptr || n->stamp < (*best)->stamp))
        *best = n;
    return *best;
}

bool
PagedKVPool::evictOne()
{
    Node *victim = nullptr;
    findLeafLru(root_.get(), &victim);
    if (victim == nullptr)
        return false;
    removeNode(victim);
    ++evictions_;
    return true;
}

void
PagedKVPool::removeNode(Node *n)
{
    // Post-order: a subtree goes as a unit (descendant chunks are
    // unreachable without this edge). Pages still mapped by live
    // sequences survive via their remaining refs.
    while (!n->kids.empty())
        removeNode(n->kids.back().get());
    node_of_page_[static_cast<size_t>(n->page)] = nullptr;
    --cached_pages_;
    derefPage(n->page);
    Node *parent = n->parent;
    auto it = std::find_if(
        parent->kids.begin(), parent->kids.end(),
        [n](const std::unique_ptr<Node> &k) { return k.get() == n; });
    assert(it != parent->kids.end());
    parent->kids.erase(it);
}

void
PagedKVPool::dropCachedPage(int32_t page)
{
    Node *n = node_of_page_[static_cast<size_t>(page)];
    if (n != nullptr)
        removeNode(n);
}

int64_t
PagedKVPool::availablePages() const
{
    // Free now, plus the closure of cache nodes reclaimable by
    // repeated LRU leaf eviction: a node's page frees iff the cache is
    // its sole owner *and* its whole subtree is reclaimable (eviction
    // works leaf-upward). Reclaimable descendants under a blocked
    // branch still count — they were tallied bottom-up.
    struct Walk
    {
        const PagedKVPool *pool;
        int64_t total = 0;
        bool visit(const Node *n) // whole subtree reclaimable?
        {
            bool all = true;
            for (const auto &kid : n->kids)
                all = visit(kid.get()) && all;
            if (!all || pool->ref_[static_cast<size_t>(n->page)] != 1)
                return false;
            ++total;
            return true;
        }
    };
    Walk w{this};
    for (const auto &kid : root_->kids)
        w.visit(kid.get());
    return freePages() + w.total;
}

size_t
PagedKVPool::residentKVBytes() const
{
    size_t total = 0;
    for (const auto &p : self_)
        total += p.residentBytes();
    for (const auto &p : cross_)
        total += p.residentBytes();
    return total;
}

size_t
PagedKVPool::bytesPerPage() const
{
    const size_t per_row = static_cast<size_t>(cfg_.d_model) * 2 *
                           (packed() ? 1 : sizeof(float));
    return per_row * static_cast<size_t>(cfg_.page_size) *
           (cfg_.n_self_layers + cfg_.n_cross_layers);
}

} // namespace qt8::serve
