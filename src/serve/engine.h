/**
 * @file
 * In-process serving engine: continuous batching over a pooled,
 * slot-addressed KV cache.
 *
 * Clients submit per-request prompts (CausalLM prefixes or Seq2Seq
 * sources) through a FIFO RequestQueue; the scheduler loop admits
 * pending requests into free KVCachePool slots the moment they open,
 * steps *all* in-flight sequences one position per iteration through
 * the slot-indexed forwardIncrementalSlots entry points, and retires a
 * sequence on EOS / max_new_tokens / slot-capacity overflow — freeing
 * its slot for the next admission on the same step. CausalLM prompts
 * prefill token-by-token inside the shared step batch, so prefill and
 * decode rows mix freely like any continuous-batching server.
 *
 * Every request's emitted tokens are bit-identical to a solo cached
 * decode of the same prompt (greedy) or to a replay from the same
 * sampling seed: all forward quant points round element-wise on static
 * grids and every kernel is row-independent, so gathering arbitrary
 * slot subsets into a step never changes a row's bits (DESIGN.md §9).
 * int8's dynamic per-tensor scaling is row-coupled and stays excluded,
 * exactly as in the DecodeState path.
 */
#ifndef QT8_SERVE_ENGINE_H
#define QT8_SERVE_ENGINE_H

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/model.h"
#include "serve/kv_pool.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace qt8::serve {

struct EngineConfig
{
    int64_t n_slots = 4;       ///< Concurrent in-flight sequences.
    int64_t slot_capacity = 64; ///< Max positions per sequence
                                ///< (clamped to the model's max_seq).
    int64_t cross_capacity = 0; ///< Seq2Seq max source length
                                ///< (0 = slot_capacity).
    size_t max_queue_depth = 0; ///< Pending-queue bound (0 = unbounded).
};

class ServeEngine
{
  public:
    /// The engine borrows the model and session; both must outlive it.
    /// Decoding through the engine is inference-only and does not
    /// disturb training state.
    ServeEngine(CausalLM &model, QuantSession &qs, EngineConfig cfg);
    ServeEngine(Seq2Seq &model, QuantSession &qs, EngineConfig cfg);
    ~ServeEngine(); // out-of-line: Active is incomplete here

    /**
     * Enqueue a request. Always returns a future; when the pending
     * queue is at max depth the future is already fulfilled with
     * status kRejectedQueueFull. Thread-safe.
     */
    std::shared_future<RequestResult> submit(Request req);

    /**
     * One scheduler iteration: admit pending requests into free slots,
     * run one pooled decode step over every in-flight sequence, sample
     * / retire. Returns true when a forward ran (false = idle step).
     */
    bool step();

    /// Step until both the queue and the in-flight set are empty.
    void runUntilIdle();

    size_t pendingCount() const { return queue_.size(); }
    size_t activeCount() const { return active_.size(); }
    int64_t freeSlots() const
    {
        return static_cast<int64_t>(pool_.freeCount());
    }

    const ServeMetrics &metrics() const { return metrics_; }
    const EngineConfig &config() const { return cfg_; }

  private:
    struct Active; // One in-flight request's decode state.

    ServeEngine(CausalLM *clm, Seq2Seq *s2s, QuantSession &qs,
                EngineConfig cfg);

    double nowMs() const;
    void admit();
    void retire(size_t idx, RequestStatus status, double now_ms);
    bool admitOne(PendingRequest &&p);

    CausalLM *clm_ = nullptr;
    Seq2Seq *s2s_ = nullptr;
    QuantSession &qs_;
    EngineConfig cfg_;
    RequestQueue queue_;
    KVCachePool pool_;
    std::vector<std::unique_ptr<Active>> active_;
    ServeMetrics metrics_;
    uint64_t next_id_ = 1;
    std::mutex submit_mu_; ///< Guards next_id_ / rejection count so
                           ///< producers may submit from any thread.
    std::chrono::steady_clock::time_point start_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_ENGINE_H
