/**
 * @file
 * In-process serving engine: continuous batching over a pooled,
 * slot-addressed KV cache, with an owned scheduler thread and
 * per-request lifecycle control.
 *
 * Clients submit per-request prompts (CausalLM prefixes or Seq2Seq
 * sources) through a FIFO RequestQueue; the scheduler admits pending
 * requests into free KVCachePool slots the moment they open, steps
 * *all* in-flight sequences one position per iteration through the
 * slot-indexed forwardIncrementalSlots entry points, and retires a
 * sequence on EOS / max_new_tokens / slot-capacity overflow — freeing
 * its slot for the next admission on the same step. CausalLM prompts
 * prefill token-by-token inside the shared step batch, so prefill and
 * decode rows mix freely like any continuous-batching server.
 *
 * The scheduler runs in either of two modes:
 *  - **owned thread** (production): start() launches it; it sleeps on a
 *    condition variable while idle, wakes on submit()/cancel()/stop(),
 *    and stop() either drains (kDrain: finish everything, then join) or
 *    aborts (kAbort: resolve every in-flight and queued request with
 *    kEngineStopped, then join).
 *  - **externally stepped** (tests, benches): the caller drives step()
 *    / runUntilIdle() itself. The two modes are mutually exclusive —
 *    don't call step() while the thread runs.
 *
 * Robustness contract (DESIGN.md §10): every submitted request resolves
 * with exactly one typed RequestStatus — validation failures and
 * queue overflow immediately at submit(), deadline expiry and
 * cancellation at the next step (partial output kept), non-finite
 * logits in a request's row retire *only* that request with
 * kNumericFault while its neighbours decode on bit-identically, and an
 * abort resolves everything in flight with kEngineStopped. Promises and
 * completion callbacks always fire with no engine lock held.
 *
 * Every request's emitted tokens are bit-identical to a solo cached
 * decode of the same prompt (greedy) or to a replay from the same
 * sampling seed: all forward quant points round element-wise on static
 * grids and every kernel is row-independent, so gathering arbitrary
 * slot subsets into a step never changes a row's bits (DESIGN.md §9).
 * int8's dynamic per-tensor scaling is row-coupled and stays excluded,
 * exactly as in the DecodeState path.
 */
#ifndef QT8_SERVE_ENGINE_H
#define QT8_SERVE_ENGINE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "nn/model.h"
#include "serve/fault.h"
#include "serve/kv_pool.h"
#include "serve/kv_spill.h"
#include "serve/metrics.h"
#include "serve/paged_kv.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace qt8::serve {

/// How stop() winds the scheduler thread down.
enum class StopMode {
    kDrain, ///< Finish every queued + in-flight request, then join.
    kAbort, ///< Resolve everything in flight/queued with
            ///< kEngineStopped (partial output kept), then join.
};

struct EngineConfig
{
    int64_t n_slots = 4;       ///< Concurrent in-flight sequences.
    int64_t slot_capacity = 64; ///< Max positions per sequence
                                ///< (clamped to the model's max_seq).
    int64_t cross_capacity = 0; ///< Seq2Seq max source length
                                ///< (0 = slot_capacity).
    size_t max_queue_depth = 0; ///< Pending-queue bound (0 = unbounded).

    /// Multi-tenant scheduling (DESIGN.md §16): per-class weights and
    /// SLO targets, per-tenant token-rate limits, drain policy, and
    /// preemption. The default — fair share over a single implicit
    /// kStandard class, no limits — behaves exactly like the
    /// historical FIFO queue.
    SchedulerConfig sched;

    /// Scan every step's logits rows for non-finite values and retire
    /// poisoned requests with kNumericFault instead of sampling
    /// garbage. O(n_active * vocab) per step — noise next to the
    /// forward pass.
    bool guard_logits = true;

    /// Diagnostic: install a QuantSession forward tap during engine
    /// steps that counts steps in which *any* pre-quantization
    /// activation tensor went non-finite (metrics.tap_nonfinite_steps).
    /// Attribution and retirement still happen at the logits scan;
    /// note a tap forces the serial attention path (DESIGN.md §8), so
    /// this is off by default.
    bool tap_activations = false;

    /// Optional fault injector (borrowed; may be null). See
    /// serve/fault.h — zero cost when null.
    FaultInjector *fault = nullptr;

    // --- Paged pool (DESIGN.md §14) ---------------------------------

    /// Use the paged KV pool (PagedKVPool) instead of the slab
    /// KVCachePool: per-request page tables, chunked prefill, and the
    /// shared-prefix radix cache. Tokens stay bit-identical to the
    /// slab engine; `slot_capacity` still caps per-request length (so
    /// truncation points match the slab oracle exactly).
    bool paged = false;

    int64_t page_size = 16; ///< Rows per KV page.

    /// Self-arena page count; 0 derives the slab-equivalent footprint
    /// (n_slots * ceil(slot_capacity / page_size) pages), so paged and
    /// slab engines compare at identical KV RAM by default.
    int64_t n_pages = 0;

    /// Seq2Seq cross-arena page count; 0 derives
    /// n_slots * ceil(cross_capacity / page_size).
    int64_t n_cross_pages = 0;

    /// Paged: cap on concurrently in-flight requests (0 = unbounded —
    /// admission is gated by worst-case page demand alone, sized by
    /// each request's actual prompt + budget, the point of paging).
    int64_t max_active = 0;

    /// Paged CausalLM: enable the shared-prefix radix cache.
    bool prefix_cache = true;

    /// Paged CausalLM: prompt rows consumed per engine step during
    /// prefill (<= 0 = page_size). The slab engine prefills 1/step.
    int64_t prefill_chunk = 0;

    // --- Tiered KV session storage (DESIGN.md §15) ------------------
    // Paged CausalLM only: requests carrying Request::session_id leave
    // their KV pages retained as idle sessions; these knobs size the
    // spill policy. Always active on a paged CausalLM engine — with no
    // session-keyed requests the table stays empty and costs nothing.

    /// Disk-tier directory for idle-session spill files ("" = RAM-only
    /// sessions: under memory pressure idle sessions are dropped and
    /// their next turn recomputes).
    std::string spill_dir;

    /// Watermark sweep at each step: when availablePages() < low,
    /// spill LRU idle sessions until >= high (0 = n_pages / 4 and
    /// n_pages / 2).
    int64_t spill_low_pages = 0;
    int64_t spill_high_pages = 0;

    /// Idle-session table bound (LRU overflow is dropped).
    int64_t max_sessions = 64;
};

class ServeEngine
{
  public:
    /// The engine borrows the model and session; both must outlive it.
    /// Decoding through the engine is inference-only and does not
    /// disturb training state.
    ServeEngine(CausalLM &model, QuantSession &qs, EngineConfig cfg);
    ServeEngine(Seq2Seq &model, QuantSession &qs, EngineConfig cfg);
    ~ServeEngine(); // joins (abort) if the scheduler thread still runs

    /**
     * Enqueue a request. Always returns a future that is guaranteed to
     * resolve with a typed status; invalid requests (empty prompt,
     * max_new_tokens <= 0, prompt longer than the slot / cross
     * capacity, mismatched src_pad) resolve immediately with
     * kRejectedInvalid, a full queue with kRejectedQueueFull, and a
     * closed (aborted) engine with kEngineStopped. Thread-safe.
     *
     * @param id_out Optional: receives the engine-assigned request id
     *   (valid even for rejected requests), usable with cancel().
     */
    std::shared_future<RequestResult> submit(Request req,
                                             uint64_t *id_out = nullptr);

    /**
     * Request cancellation of a queued or in-flight request. Applied at
     * the next scheduler step: a queued request resolves kCancelled
     * with no output, an in-flight one retires kCancelled keeping its
     * partial output. Unknown, finished, or foreign ids are a no-op.
     * Returns false only for ids this engine never issued. Thread-safe.
     */
    bool cancel(uint64_t id);

    /// Launch the owned scheduler thread (idempotent while running).
    /// Re-opens the queue after a previous stop, so stop()/start()
    /// cycles are valid.
    void start();

    /**
     * Stop the scheduler thread and join it. kDrain finishes all
     * queued and in-flight work first (unbounded if producers keep
     * submitting); kAbort closes the queue — subsequent submissions
     * resolve kEngineStopped immediately — and resolves everything in
     * flight with kEngineStopped. No-op when the thread isn't running.
     * Safe to call from multiple threads; one caller joins, the rest
     * wait.
     */
    void stop(StopMode mode = StopMode::kDrain);

    /// Is the owned scheduler thread running?
    bool running() const { return thread_running_.load(); }

    /**
     * One scheduler iteration: apply cancellations and deadline
     * expiries, admit pending requests into free slots, run one pooled
     * decode step over every in-flight sequence, scan for numeric
     * faults, sample / retire. Returns true when a forward ran (false =
     * idle step). For externally-stepped use only — never call while
     * the owned thread runs.
     */
    bool step();

    /// Step until both the queue and the in-flight set are empty
    /// (externally-stepped mode).
    void runUntilIdle();

    size_t pendingCount() const
    {
        return queue_.size() + parked_n_.load();
    }
    size_t activeCount() const { return active_n_.load(); }

    /// Slab: free pool slots. Paged: pages obtainable right now
    /// (free + evictable prefix-cache pages).
    int64_t freeSlots() const;

    /// Consistent copy of the metrics, safe to call from any thread
    /// while the scheduler runs.
    ServeMetrics metricsSnapshot() const;

    /// Borrowed reference for single-threaded (externally-stepped)
    /// use; racy while the scheduler thread runs — prefer
    /// metricsSnapshot() there.
    const ServeMetrics &metrics() const { return metrics_; }
    const EngineConfig &config() const { return cfg_; }

    /// KV pool footprint. Geometry (and hence these values) is fixed at
    /// construction, so they are safe to read without the engine lock.
    bool kvPacked() const
    {
        return ppool_ != nullptr ? ppool_->packed() : pool_->packed();
    }
    size_t residentKVBytes() const
    {
        return ppool_ != nullptr ? ppool_->residentKVBytes()
                                 : pool_->residentKVBytes();
    }
    /// Slab: bytes one slot reserves. Paged: bytes a full-length
    /// (slot_capacity-row) sequence would occupy in whole pages.
    size_t kvBytesPerSlot() const;

    /// Paged engine only (null otherwise): the paging pool, for tests
    /// and benches reading occupancy / prefix-cache statistics.
    const PagedKVPool *pagedPool() const { return ppool_.get(); }

    /// Paged CausalLM only (null otherwise): the tiered-KV session
    /// manager, for tests and benches reading spill statistics. Racy
    /// while the scheduler thread runs — prefer metricsSnapshot().
    const SpillManager *spillManager() const { return smgr_.get(); }

    /// Drop every idle session (pages released, spill files deleted).
    /// Ops hook for reclaiming memory, and lets tests assert pool
    /// quiescence after a drain. Thread-safe.
    void releaseSessions();

  private:
    struct Active; // One in-flight request's decode state.

    /// A resolved promise + callback, fired only after every engine
    /// lock is released (callbacks may re-enter the engine).
    struct Resolution
    {
        std::promise<RequestResult> promise;
        RequestResult result;
        std::function<void(const RequestResult &)> callback;
    };

    ServeEngine(CausalLM *clm, Seq2Seq *s2s, QuantSession &qs,
                EngineConfig cfg);

    double nowMs() const;
    RequestStatus validate(const Request &req) const;
    static void deliver(std::vector<Resolution> &done);
    void wake();

    bool stepLocked(std::vector<Resolution> &done);
    bool stepPagedLocked(std::vector<Resolution> &done);
    /// Admit queued requests into free slots; returns the number admitted.
    int admitLocked(std::vector<Resolution> &done);
    bool admitOneLocked(PendingRequest &&p, std::vector<Resolution> &done);
    /// Paged admission (DESIGN.md §16): per class in priority order,
    /// resume preempted victims and retry the parked head; then pop
    /// fresh requests under the fair-share schedule, skipping classes
    /// whose head is parked (FIFO within a class, work conservation
    /// across classes).
    int admitPagedLocked();
    /// Returns false — leaving @p p intact for parking — when the pool
    /// cannot take the request right now (first chunk unobtainable, or
    /// the worst-case page-demand gate would overcommit the arena).
    bool admitPagedOneLocked(PendingRequest &p);
    /// Escalating admission: plain gate, then idle-session spill, then
    /// preemption of strictly-lower-class in-flight decodes.
    bool admitPagedWithPressureLocked(PendingRequest &p);
    /// Re-admit a preempted victim by resuming its checkpoint session
    /// (resident / restored / recomputed); false = still blocked.
    bool admitPreemptedOneLocked(Active &a);
    /// Checkpoint active_[idx]'s rows through the session tier
    /// (spill-or-drop, pages freed now) and move it to preempted_.
    void preemptActiveLocked(size_t idx);
    /// Preempt the best victim whose class value is strictly greater
    /// than @p below_class (-1 = any active); false = no candidate.
    bool preemptLowestLocked(int below_class);
    /// Resolve preempted_[idx] with a terminal status (cancel,
    /// deadline, abort), dropping its checkpoint session.
    void resolvePreemptedLocked(size_t idx, RequestStatus status,
                                double now_ms,
                                std::vector<Resolution> &done);
    void syncParkedCountLocked();
    int32_t acquireVSlotLocked();
    void retireLocked(size_t idx, RequestStatus status, double now_ms,
                      std::vector<Resolution> &done);
    void resolveUnadmittedLocked(PendingRequest &&p, RequestStatus status,
                                 std::vector<Resolution> &done);
    void processCancelsLocked(double now_ms, std::vector<Resolution> &done);
    void expireDeadlinesLocked(double now_ms, std::vector<Resolution> &done);

    void threadMain();
    bool hasWork();
    void abortAll();

    CausalLM *clm_ = nullptr;
    Seq2Seq *s2s_ = nullptr;
    QuantSession &qs_;
    EngineConfig cfg_;
    RequestQueue queue_;

    mutable std::mutex mu_; ///< Guards the pools, active_, metrics_
                            ///< and serializes scheduler steps.
    std::unique_ptr<KVCachePool> pool_;  ///< Slab mode (else null).
    std::unique_ptr<PagedKVPool> ppool_; ///< Paged mode (else null).
    /// Paged CausalLM: tiered KV sessions (declared after ppool_ so it
    /// releases its pages into a still-live pool on destruction).
    std::unique_ptr<SpillManager> smgr_;
    /// Paged: per-class admission-order heads that did not fit the
    /// pool last step — retried before fresh pops so backpressure
    /// stays FIFO within each class while the others keep admitting.
    std::array<std::optional<PendingRequest>, kNumClasses> parked_;
    /// Paged CausalLM: preempted in-flight requests awaiting
    /// re-admission; their KV rows live in the session tier under
    /// kPreemptKeyBit | id (or were dropped, to be recomputed).
    std::vector<std::unique_ptr<Active>> preempted_;
    std::atomic<size_t> parked_n_{0}; ///< parked_ + preempted_ mirror.
    std::vector<int32_t> vslot_free_; ///< Paged: recycled virtual slots.
    int32_t vslot_next_ = 0;          ///< Paged: next fresh virtual slot.
    std::vector<std::unique_ptr<Active>> active_;
    ServeMetrics metrics_;
    std::atomic<size_t> active_n_{0}; ///< Lock-free activeCount mirror.

    std::atomic<uint64_t> next_id_{1};
    std::mutex cancel_mu_;
    std::vector<uint64_t> cancel_ids_; ///< Pending cancellations.

    std::thread thread_;
    std::mutex stop_mu_; ///< Serializes concurrent stop() callers.
    std::atomic<bool> thread_running_{false};
    std::atomic<int> stop_request_{0}; ///< 0 none, 1 drain, 2 abort.
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    int64_t step_idx_ = 0; ///< Scheduler step counter (fault triggers).
    std::chrono::steady_clock::time_point start_;
};

} // namespace qt8::serve

#endif // QT8_SERVE_ENGINE_H
