/**
 * @file
 * Slot-addressed KV cache pool shared by every in-flight request of the
 * serving engine: per-decoder-layer self-attention KVSlots panels plus
 * (Seq2Seq) per-layer cross-attention panels, with O(1) slot
 * acquire/release so a finished sequence's memory is reusable on the
 * very next scheduler step. Released slots are not scrubbed — the
 * per-slot length alone defines visibility, which the dirty-slot-reuse
 * test pins down.
 */
#ifndef QT8_SERVE_KV_POOL_H
#define QT8_SERVE_KV_POOL_H

#include <cstdint>
#include <vector>

#include "nn/attention.h"

namespace qt8::serve {

class KVCachePool
{
  public:
    /**
     * @param n_slots Concurrent sequences the pool can hold.
     * @param capacity Max cached positions per slot (prompt+generated).
     * @param n_self_layers Decoder layers (one self panel each).
     * @param n_cross_layers Seq2Seq decoder layers (0 for CausalLM).
     * @param cross_capacity Max source positions per cross slot.
     * @param packed_fmt Non-null (QuantConfig::kvPackedFormat()): every
     *   layer stores packed uint8 KV codes — 4x more slots per GB.
     *   Borrowed; must outlive the pool.
     */
    KVCachePool(int64_t n_slots, int64_t capacity, int64_t d_model,
                size_t n_self_layers, size_t n_cross_layers = 0,
                int64_t cross_capacity = 0,
                const Quantizer *packed_fmt = nullptr);

    /// Claim a free slot (its lengths reset to 0); -1 when none free.
    int32_t acquire();

    /// Return a slot to the free list; its cached rows become invisible
    /// immediately and are overwritten by the next occupant. Returns
    /// false — leaving the pool untouched — for an out-of-range slot or
    /// one that is not currently allocated (double free), so a scheduler
    /// bug corrupts no free-list invariant and is visible to tests.
    bool release(int32_t slot);

    /// Is @p slot currently allocated?
    bool inUse(int32_t slot) const
    {
        return slot >= 0 && slot < n_slots_ &&
               in_use_[static_cast<size_t>(slot)] != 0;
    }

    int64_t slotCount() const { return n_slots_; }
    int64_t capacity() const { return capacity_; }
    int64_t crossCapacity() const { return cross_capacity_; }
    size_t freeCount() const { return free_.size(); }

    /// Self-attention length of a slot (identical across layers).
    int64_t slotLen(int32_t slot) const
    {
        return self_.empty() ? 0
                             : self_[0].len[static_cast<size_t>(slot)];
    }

    std::vector<KVSlots> &selfLayers() { return self_; }
    std::vector<KVSlots> &crossLayers() { return cross_; }

    /// Is the pool storing packed uint8 KV codes?
    bool packed() const;

    /// Total resident bytes of every layer's K+V panels (codes when
    /// packed, fp32 otherwise) — the serving stack's dominant
    /// allocation, surfaced as the `serve/kv_bytes_resident` counter.
    size_t residentKVBytes() const;

    /// residentKVBytes() / n_slots: what one concurrent sequence costs.
    size_t bytesPerSlot() const;

  private:
    int64_t n_slots_;
    int64_t capacity_;
    int64_t cross_capacity_;
    std::vector<KVSlots> self_;
    std::vector<KVSlots> cross_;
    std::vector<int32_t> free_;    ///< LIFO free list.
    std::vector<uint8_t> in_use_;  ///< Double-free / stray-release guard.
};

} // namespace qt8::serve

#endif // QT8_SERVE_KV_POOL_H
