#include "hw/sim.h"

#include <cassert>

#include "hw/rtl.h"
#include "hw/units.h"
#include "numerics/float_bits.h"
#include "numerics/quantizer.h"

namespace qt8::hw {
namespace {

/// Storage-format quantizer for an accelerator data type.
const Quantizer &
storageQuantizer(const std::string &dtype)
{
    static const Quantizer bf16 = Quantizer::bf16();
    static const Quantizer p8 = Quantizer::byName("posit8");
    static const Quantizer e4m3 = Quantizer::byName("e4m3");
    static const Quantizer e5m2 = Quantizer::byName("e5m2");
    if (dtype == "bf16")
        return bf16;
    if (dtype == "posit8")
        return p8;
    if (dtype == "e5m2")
        return e5m2;
    return e4m3; // fp8 hybrid defaults to the E4M3 forward format
}

} // namespace

SystolicGemmSim::SystolicGemmSim(const AcceleratorConfig &cfg)
    : cfg_(cfg), acc_is_bf16_(cfg.dtype != "bf16")
{
    // Energy per MAC from the synthesized unit at the configured
    // frequency: dynamic power / frequency = energy per cycle.
    const SynthReport mac = synthesize(
        macUnit(macInputFormat(cfg.dtype), accumFormat(cfg.dtype)),
        cfg.freq_mhz);
    mac_energy_pj_ = mac.dyn_power_mw / cfg.freq_mhz * 1e3; // mW/MHz->pJ
    if (cfg.dtype == "posit8") {
        const SynthReport dec =
            synthesize(positDecoder(8, 1), cfg.freq_mhz);
        codec_energy_pj_ = dec.dyn_power_mw / cfg.freq_mhz * 1e3;
    } else {
        codec_energy_pj_ = 0.0;
    }
}

SimStats
SystolicGemmSim::cost(int64_t m, int64_t k, int64_t n) const
{
    SimStats s;
    const int64_t pe = cfg_.array_n;
    const int64_t k_tiles = (k + pe - 1) / pe;
    const int64_t n_tiles = (n + pe - 1) / pe;

    // Weight-stationary: for each (k_tile, n_tile), load PE weights
    // (pe cycles), stream all M rows (m cycles), plus array drain.
    const int64_t cycles_per_tile = pe + m + 2 * pe;
    s.cycles = k_tiles * n_tiles * cycles_per_tile;
    s.macs = m * k * n;

    const int store_bits = storageBits(cfg_.dtype);
    const int acc_bits = accumFormat(cfg_.dtype).width();
    // Each A element is read once per n_tile; B once; C written (and
    // re-read for accumulation across k_tiles).
    s.sram_read_bits = (m * k * n_tiles + k * n) * store_bits +
                       m * n * (k_tiles - 1) * acc_bits;
    s.sram_write_bits = m * n * k_tiles * acc_bits;

    const double sram_energy_nj =
        static_cast<double>(s.sram_read_bits + s.sram_write_bits) *
        Tech::kSramAccessFjPerBit * 1e-6;
    const double mac_energy_nj =
        static_cast<double>(s.macs) * mac_energy_pj_ * 1e-3;
    const double codec_energy_nj =
        codec_energy_pj_ > 0.0
            ? static_cast<double>(m * k * n_tiles + k * n) *
                  codec_energy_pj_ * 1e-3
            : 0.0;
    s.energy_nj = sram_energy_nj + mac_energy_nj + codec_energy_nj;
    return s;
}

SimStats
SystolicGemmSim::run(const Tensor &a, const Tensor &b, Tensor &c) const
{
    assert(a.rank() == 2 && b.rank() == 2 && c.rank() == 2);
    const int64_t m = a.dim(0);
    const int64_t k = a.dim(1);
    const int64_t n = b.dim(1);
    assert(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n);

    // Round operands to the storage format at the buffer boundary.
    const Quantizer &q = storageQuantizer(cfg_.dtype);
    Tensor aq = a;
    q.quantizeInPlace(aq.data(), static_cast<size_t>(aq.numel()));
    Tensor bq = b;
    q.quantizeInPlace(bq.data(), static_cast<size_t>(bq.numel()));

    const int64_t pe = cfg_.array_n;
    const int64_t k_tiles = (k + pe - 1) / pe;

    // Functional execution with per-accumulate rounding in the
    // accumulator format (BF16 for 8-bit accelerators).
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t kt = 0; kt < k_tiles; ++kt) {
                MacBf16Rtl mac;
                const int64_t k0 = kt * pe;
                const int64_t k1 = std::min(k, k0 + pe);
                if (acc_is_bf16_) {
                    mac.reset();
                    for (int64_t t = k0; t < k1; ++t)
                        mac.accumulate(aq.at(i, t), bq.at(t, j));
                    // Partial sums merge through the BF16 accumulator
                    // buffer.
                    acc = Bfloat16::quantize(acc + mac.value());
                } else {
                    double wide = acc;
                    for (int64_t t = k0; t < k1; ++t)
                        wide += static_cast<double>(aq.at(i, t)) *
                                bq.at(t, j);
                    acc = static_cast<float>(wide);
                }
            }
            c.at(i, j) = acc;
        }
    }
    return cost(m, k, n);
}

InferenceCost
transformerForwardCost(const AcceleratorConfig &accel, int64_t d_model,
                       int64_t d_ff, int n_layers, int n_ffn,
                       int64_t seq, int64_t vocab)
{
    const SystolicGemmSim sim(accel);
    InferenceCost cost;

    for (int l = 0; l < n_layers; ++l) {
        // QKV + output projections.
        for (int p = 0; p < 4; ++p)
            cost.gemm += sim.cost(seq, d_model, d_model);
        // Q.K^T and P.V.
        cost.gemm += sim.cost(seq, d_model, seq);
        cost.gemm += sim.cost(seq, seq, d_model);
        // FFN stack.
        for (int f = 0; f < n_ffn; ++f) {
            cost.gemm += sim.cost(seq, d_model, d_ff);
            cost.gemm += sim.cost(seq, d_ff, d_model);
        }
    }
    // LM/task head.
    cost.gemm += sim.cost(seq, d_model, vocab);

    // Vector unit energy: softmax (exp+recip per attention element)
    // and the element-wise traffic, from the synthesized lane power.
    const SynthReport lane = synthesize(vectorLane(accel.dtype),
                                        accel.freq_mhz);
    const double lane_pj = lane.dyn_power_mw / accel.freq_mhz * 1e3;
    const double elementwise_ops =
        static_cast<double>(n_layers) *
        (static_cast<double>(seq) * seq      // softmax elements
         + 6.0 * static_cast<double>(seq) * d_model
         + 2.0 * static_cast<double>(n_ffn) * seq * d_ff);
    cost.vector_energy_nj =
        elementwise_ops / accel.array_n * lane_pj * 1e-3 *
        static_cast<double>(accel.array_n);
    return cost;
}

} // namespace qt8::hw
