/**
 * @file
 * Gate-count and logic-depth estimates for standard arithmetic
 * components, in NAND2 equivalents (GE). Numbers follow textbook
 * synthesis-oriented estimates (full adder ~ 5-6 GE, 2:1 mux ~ 2.5 GE,
 * DFF ~ 5.5 GE) with log-depth carry/prefix structures.
 */
#ifndef QT8_HW_ARITH_H
#define QT8_HW_ARITH_H

namespace qt8::hw {

/// Combinational block cost: gate count plus critical-path depth in
/// gate delays.
struct GateCost
{
    double ge = 0.0;
    double depth = 0.0;

    GateCost operator+(const GateCost &o) const
    {
        // Serial composition: depths add.
        return {ge + o.ge, depth + o.depth};
    }

    /// Parallel composition: areas add, depth is the max.
    GateCost parallelWith(const GateCost &o) const
    {
        return {ge + o.ge, depth > o.depth ? depth : o.depth};
    }

    GateCost scaled(double k) const { return {ge * k, depth}; }
};

/// n-bit carry-lookahead/prefix adder.
GateCost adder(int n);

/// n x m array multiplier with a Wallace-style reduction.
GateCost multiplier(int n, int m);

/// n-bit leading-zero (or leading-one) counter.
GateCost leadingZeroCount(int n);

/// n-bit barrel shifter (log stages of 2:1 muxes).
GateCost barrelShifter(int n);

/// n-bit magnitude comparator.
GateCost comparator(int n);

/// w-bit wide s-way multiplexer.
GateCost mux(int ways, int width);

/// Bitwise inverter bank (NOT gates).
GateCost inverter(int n);

/// Bitwise XOR bank.
GateCost xorBank(int n);

/// Two's-complement negate (invert + increment).
GateCost negate(int n);

/// Lookup table with the given entry count and output width.
GateCost lut(int entries, int width);

/// Register bits (DFFs); depth contribution is zero (sequential).
double regGe(double bits);

} // namespace qt8::hw

#endif // QT8_HW_ARITH_H
