#include "hw/accelerator.h"

#include <stdexcept>

namespace qt8::hw {

double
AcceleratorReport::totalAreaMm2() const
{
    double a = 0.0;
    for (const auto &c : components)
        a += c.area_um2;
    return a * 1e-6;
}

double
AcceleratorReport::totalPowerMw() const
{
    double p = 0.0;
    for (const auto &c : components)
        p += c.power_mw;
    return p;
}

const Component &
AcceleratorReport::find(const std::string &name) const
{
    for (const auto &c : components)
        if (c.name == name)
            return c;
    throw std::invalid_argument("no component " + name);
}

int
storageBits(const std::string &dtype)
{
    if (dtype == "bf16")
        return 16;
    return 8;
}

const FloatFmt &
macInputFormat(const std::string &dtype)
{
    if (dtype == "bf16") {
        static constexpr FloatFmt f = kBf16;
        return f;
    }
    if (dtype == "posit8") {
        // Decoded Posit8 operands fit in E5M4 (section 7.1).
        static constexpr FloatFmt f = kE5M4;
        return f;
    }
    if (dtype == "fp8") {
        static constexpr FloatFmt f = kE5M3; // hybrid container
        return f;
    }
    if (dtype == "e4m3") {
        static constexpr FloatFmt f = kE4M3;
        return f;
    }
    if (dtype == "e5m2") {
        static constexpr FloatFmt f = kE5M2;
        return f;
    }
    throw std::invalid_argument("unknown accelerator dtype " + dtype);
}

const FloatFmt &
accumFormat(const std::string &dtype)
{
    if (dtype == "bf16") {
        static constexpr FloatFmt f = kFp32;
        return f;
    }
    static constexpr FloatFmt f = kBf16;
    return f;
}

namespace {

/// SRAM macro area/power for a given bit capacity.
Component
sramMacro(const std::string &name, double bits, double freq_mhz,
          double access_fraction)
{
    Component c;
    c.name = name;
    c.area_um2 = bits * Tech::kSramUm2PerBit;
    // Per cycle, a row of `access_width` bits is accessed with some
    // duty cycle; model energy as fraction * width * per-bit energy.
    const double access_bits_per_cycle = access_fraction * 128.0;
    c.power_mw =
        access_bits_per_cycle * Tech::kSramAccessFjPerBit * freq_mhz *
            1e-6 +
        bits * Tech::kSramLeakNwPerBit * 1e-6;
    return c;
}

} // namespace

AcceleratorReport
buildAccelerator(const AcceleratorConfig &cfg)
{
    AcceleratorReport rep;
    rep.config = cfg;
    const int n = cfg.array_n;
    const FloatFmt &in_fmt = macInputFormat(cfg.dtype);
    const FloatFmt &acc_fmt = accumFormat(cfg.dtype);
    const int store_bits = storageBits(cfg.dtype);

    // Systolic array: N*N PEs.
    const UnitModel pe = processingElement(in_fmt, acc_fmt);
    SynthReport pe_synth = synthesize(pe, cfg.freq_mhz);
    rep.components.push_back({"systolic_array",
                              pe_synth.area_um2 * n * n,
                              pe_synth.powerMw() * n * n});

    // Posit codecs at the array boundary: decoders on both operand
    // streams (2N) and encoders on the output stream (N).
    if (cfg.dtype == "posit8") {
        const SynthReport dec =
            synthesize(positDecoder(8, 1), cfg.freq_mhz);
        const SynthReport enc =
            synthesize(positEncoder(8, 1), cfg.freq_mhz);
        rep.components.push_back(
            {"posit_codecs",
             dec.area_um2 * 2 * n + enc.area_um2 * n,
             dec.powerMw() * 2 * n + enc.powerMw() * n});
    }

    // Vector unit: N lanes.
    const SynthReport vu = vectorUnitReport(cfg.dtype, n, cfg.freq_mhz);
    rep.components.push_back({"vector_unit", vu.area_um2, vu.powerMw()});

    // SRAM buffers: activation and weight buffers store the packed
    // data type; the accumulator buffer stores the accumulation type.
    rep.components.push_back(sramMacro(
        "act_sram",
        static_cast<double>(cfg.act_buffer_elems) * store_bits,
        cfg.freq_mhz, 0.9));
    rep.components.push_back(sramMacro(
        "weight_sram",
        static_cast<double>(cfg.weight_buffer_elems) * store_bits,
        cfg.freq_mhz, 0.4));
    rep.components.push_back(sramMacro(
        "accum_sram",
        static_cast<double>(cfg.accum_buffer_elems) * acc_fmt.width(),
        cfg.freq_mhz, 0.5));

    // Data-type-independent infrastructure: instruction/configuration
    // memory, DMA staging buffers, host interface and global control.
    // Sized to scale with the array (larger arrays need deeper staging)
    // but not with the compute data type.
    const double fixed_sram_bits =
        (128.0 + 1.25 * n * n) * 1024.0 * 8.0;
    Component ctrl_sram = sramMacro("ctrl_dma_sram", fixed_sram_bits,
                                    cfg.freq_mhz, 0.3);
    rep.components.push_back(ctrl_sram);
    const double ctrl_ge = 150000.0 + 3500.0 * n;
    rep.components.push_back(
        {"control_logic", ctrl_ge * Tech::kUm2PerGe,
         ctrl_ge * (Tech::kSwitchEnergyFj * 0.08 * cfg.freq_mhz * 1e-6 +
                    Tech::kLeakNwPerGe * 1e-6)});

    return rep;
}

SynthReport
vectorUnitReport(const std::string &dtype, int lanes, double freq_mhz)
{
    const UnitModel lane = vectorLane(dtype);
    SynthReport one = synthesize(lane, freq_mhz);
    SynthReport all = one;
    all.name = "vector_unit_" + dtype;
    all.total_ge *= lanes;
    all.area_um2 *= lanes;
    all.dyn_power_mw *= lanes;
    all.leak_power_mw *= lanes;
    return all;
}

} // namespace qt8::hw
