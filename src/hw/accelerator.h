/**
 * @file
 * Full accelerator model (paper Figure 11): an N x N weight-stationary
 * systolic array of MAC processing elements, an N-lane vector unit for
 * element-wise operations and softmax, posit encoders/decoders at the
 * array boundary (posit accelerators only), and SRAM buffers for
 * activations, weights and accumulators. Reports standard-cell plus
 * SRAM-macro area and post-synthesis power (section 7.3, Figure 13 and
 * Table 8).
 */
#ifndef QT8_HW_ACCELERATOR_H
#define QT8_HW_ACCELERATOR_H

#include <string>
#include <vector>

#include "hw/units.h"

namespace qt8::hw {

/// Accelerator data-type variants evaluated in Figure 13.
/// One of: "bf16", "posit8", "fp8" (hybrid E5M3), "e4m3", "e5m2".
struct AcceleratorConfig
{
    std::string dtype = "bf16";
    int array_n = 16;        ///< Systolic array is N x N; N vector lanes.
    double freq_mhz = 200.0; ///< Nominal frequency at 0.9 V.

    /// SRAM capacities in *elements* (scaled by the storage width).
    int64_t act_buffer_elems = 32768;
    int64_t weight_buffer_elems = 32768;
    int64_t accum_buffer_elems = 8192;
};

/// One named area/power component.
struct Component
{
    std::string name;
    double area_um2 = 0.0;
    double power_mw = 0.0;
};

struct AcceleratorReport
{
    AcceleratorConfig config;
    std::vector<Component> components;

    double totalAreaMm2() const;
    double totalPowerMw() const;
    const Component &find(const std::string &name) const;
};

/// Storage width (bits) of the activation/weight data type.
int storageBits(const std::string &dtype);

/// MAC input format of an accelerator data type (section 7.1: Posit8
/// decodes to E5M4; hybrid FP8 uses E5M3).
const FloatFmt &macInputFormat(const std::string &dtype);

/// Accumulator format (FP32 for bf16 accelerators, BF16 for 8-bit).
const FloatFmt &accumFormat(const std::string &dtype);

/// Build the full accelerator report.
AcceleratorReport buildAccelerator(const AcceleratorConfig &cfg);

/// Vector unit (N lanes) only — Table 8.
SynthReport vectorUnitReport(const std::string &dtype, int lanes,
                             double freq_mhz);

} // namespace qt8::hw

#endif // QT8_HW_ACCELERATOR_H
