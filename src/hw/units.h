/**
 * @file
 * Structural models of the paper's hardware units (section 7): MAC
 * units per data format, posit encoders/decoders, exponential and
 * reciprocal function units (float HLS-style vs. posit bit-trick), and
 * the vector-unit lane variants. Each unit is a gate-count + depth
 * description; synthesize() inserts pipeline registers for a target
 * frequency and reports area and power at 0.9 V.
 */
#ifndef QT8_HW_UNITS_H
#define QT8_HW_UNITS_H

#include <string>

#include "hw/arith.h"
#include "hw/tech.h"

namespace qt8::hw {

/// Floating-point format geometry (exponent/mantissa field widths).
struct FloatFmt
{
    const char *name;
    int e;
    int m;

    int width() const { return 1 + e + m; }
};

inline constexpr FloatFmt kFp32{"fp32", 8, 23};
inline constexpr FloatFmt kBf16{"bf16", 8, 7};
inline constexpr FloatFmt kE4M3{"e4m3", 4, 3};
inline constexpr FloatFmt kE5M2{"e5m2", 5, 2};
/// Hybrid FP8 container (supports both E4M3 and E5M2 operands).
inline constexpr FloatFmt kE5M3{"e5m3", 5, 3};
/// Decoded Posit8: at most 4 fraction bits, exponent in [-12, 12].
inline constexpr FloatFmt kE5M4{"e5m4", 5, 4};

/// A hardware block: combinational gates, unpipelined depth, plus
/// architectural registers and the datapath width used when inserting
/// pipeline registers.
struct UnitModel
{
    std::string name;
    double logic_ge = 0.0;
    double depth = 0.0;
    double arch_reg_bits = 0.0;
    double pipe_width_bits = 16.0;
    double activity = Tech::kActivity;

    UnitModel &operator+=(const GateCost &c)
    {
        logic_ge += c.ge;
        depth += c.depth;
        return *this;
    }

    /// Add a block that operates in parallel with the current critical
    /// path (area adds, depth maxes).
    void
    addParallel(const GateCost &c)
    {
        logic_ge += c.ge;
        if (c.depth > depth)
            depth = c.depth;
    }
};

/// Post-"synthesis" report at a target frequency.
struct SynthReport
{
    std::string name;
    double freq_mhz = 0.0;
    int stages = 1;
    double total_ge = 0.0;
    double area_um2 = 0.0;
    double dyn_power_mw = 0.0;
    double leak_power_mw = 0.0;

    double powerMw() const { return dyn_power_mw + leak_power_mw; }
    double areaMm2() const { return area_um2 * 1e-6; }
};

/// Insert pipeline registers to meet the frequency and report area and
/// power.
SynthReport synthesize(const UnitModel &unit, double freq_mhz);

// --- Arithmetic units ---------------------------------------------------

/// Floating-point adder in the given format.
UnitModel floatAdder(const FloatFmt &fmt);

/// Floating-point multiplier in the given format.
UnitModel floatMultiplier(const FloatFmt &fmt);

/// Fused MAC: multiply in `in` format, accumulate in `acc` format
/// (section 7.1: Posit8 -> E5M4 inputs with BF16 accumulation; hybrid
/// FP8 -> E5M3; BF16/FP32 accumulate in FP32).
UnitModel macUnit(const FloatFmt &in, const FloatFmt &acc);

/// HLS-library-style exponential: range reduction, table, polynomial.
UnitModel floatExpUnit(const FloatFmt &fmt);

/// HLS-library-style reciprocal: table seed + Newton-Raphson.
UnitModel floatRecipUnit(const FloatFmt &fmt);

// --- Posit-specific units ------------------------------------------------

/// Posit decoder: two's complement, leading-run count, field extract.
UnitModel positDecoder(int nbits, int es);

/// Posit encoder: regime/exponent assembly, shift, round-to-even.
UnitModel positEncoder(int nbits, int es);

/// Approximate sigmoid on posit(N,es): conversion to posit(N,0),
/// MSB invert + shift (section 3.3).
UnitModel positSigmoidUnit(int nbits, int es);

/// Approximate reciprocal: NOT gates on the non-sign bits.
UnitModel positRecipUnit(int nbits);

/// Approximate exponential built per Eq. 3: negate, sigmoid trick,
/// bitwise reciprocal, posit subtract (epsilon), threshold mask.
UnitModel positExpUnit(int nbits, int es);

// --- Composite units ------------------------------------------------------

/// Processing element: MAC + operand/weight/result registers.
UnitModel processingElement(const FloatFmt &in, const FloatFmt &acc);

/// One vector-unit lane. The lane always carries an ALU (add/mul) in
/// the vector data type plus the softmax special-function units:
///   - "bf16" accelerator: FP32 ALU, FP32 exp + recip (HLS).
///   - "fp8" accelerators: BF16 ALU, BF16 exp + recip (HLS).
///   - "posit8" accelerator: BF16 ALU, posit approximate exp + recip,
///     plus posit8 decode/encode at the lane boundary.
UnitModel vectorLane(const std::string &accel_dtype);

} // namespace qt8::hw

#endif // QT8_HW_UNITS_H
