/**
 * @file
 * Bit-accurate functional models of the posit datapath blocks, written
 * the way the hardware computes them (two's complement, leading-run
 * count, shifts, field packing) rather than via double-precision math.
 * Verified against the numerics reference codec in the tests; these
 * are the functional counterparts of the area/power models in units.h.
 */
#ifndef QT8_HW_RTL_H
#define QT8_HW_RTL_H

#include <cstdint>

namespace qt8::hw {

/// Decoded posit fields as they leave the hardware decoder.
struct DecodedPosit
{
    bool nar = false;   ///< Not-a-real.
    bool zero = false;
    bool sign = false;
    int scale = 0;      ///< Power-of-two scale (k*2^es + e).
    uint32_t frac = 0;  ///< Fraction bits, left-aligned in frac_bits.
    int frac_bits = 0;  ///< Number of valid fraction bits.
};

/**
 * Hardware posit decoder: two's complement of negatives, leading-run
 * count on the regime, shift, exponent/fraction extraction.
 */
DecodedPosit positDecodeRtl(uint32_t code, int nbits, int es);

/**
 * Hardware posit encoder: regime/exponent assembly from the scale,
 * fraction placement, round-to-nearest-even on the dropped bits,
 * saturation at maxpos, two's complement for negatives.
 *
 * @param frac Fraction field (without hidden bit), left-aligned in
 *   frac_bits bits of precision.
 */
uint32_t positEncodeRtl(bool sign, int scale, uint64_t frac,
                        int frac_bits, int nbits, int es);

/**
 * Functional model of the accelerator MAC with a BF16 accumulator:
 * the product of two (exactly decoded) 8-bit operands is added into a
 * BF16 register, with BF16 round-to-nearest-even after every
 * accumulation — the behavior of the E5M4/E5M3 MAC of section 7.1.
 */
class MacBf16Rtl
{
  public:
    void reset() { acc_ = 0.0f; }

    /// Accumulate a*b (both values already decoded to float).
    void accumulate(float a, float b);

    float value() const { return acc_; }

  private:
    float acc_ = 0.0f; // always holds a BF16-representable value
};

} // namespace qt8::hw

#endif // QT8_HW_RTL_H
