#include "hw/units.h"

#include <cmath>

namespace qt8::hw {

SynthReport
synthesize(const UnitModel &unit, double freq_mhz)
{
    SynthReport r;
    r.name = unit.name;
    r.freq_mhz = freq_mhz;

    const double period_ps = 1e6 / freq_mhz;
    const double path_ps = unit.depth * Tech::kGateDelayPs;
    r.stages = std::max(1, static_cast<int>(std::ceil(path_ps /
                                                      period_ps)));

    const double pipe_bits =
        static_cast<double>(r.stages - 1) * unit.pipe_width_bits;
    const double reg_bits = unit.arch_reg_bits + pipe_bits;
    r.total_ge = unit.logic_ge + regGe(reg_bits);
    r.area_um2 = r.total_ge * Tech::kUm2PerGe;

    // Dynamic power: logic switches with the datapath activity, flops
    // with the clock-derived activity.
    const double logic_fj =
        unit.logic_ge * Tech::kSwitchEnergyFj * unit.activity;
    const double flop_fj =
        regGe(reg_bits) * Tech::kSwitchEnergyFj * Tech::kFlopActivity;
    r.dyn_power_mw = (logic_fj + flop_fj) * freq_mhz * 1e-6;
    r.leak_power_mw = r.total_ge * Tech::kLeakNwPerGe * 1e-6;
    return r;
}

UnitModel
floatAdder(const FloatFmt &fmt)
{
    UnitModel u;
    u.name = std::string(fmt.name) + "_add";
    u.pipe_width_bits = fmt.width() + 8;
    const int mw = fmt.m + 4; // mantissa + guard/round/sticky + hidden
    u += comparator(fmt.e);
    u += barrelShifter(mw);          // alignment
    u += adder(mw);                  // significand add
    u += leadingZeroCount(mw);       // renormalization
    u += barrelShifter(mw);          // normalize shift
    u += adder(fmt.e);               // exponent adjust
    u += adder(mw).scaled(0.4);      // rounding increment
    u.logic_ge += 30;                // sign/exception logic
    return u;
}

UnitModel
floatMultiplier(const FloatFmt &fmt)
{
    UnitModel u;
    u.name = std::string(fmt.name) + "_mul";
    u.pipe_width_bits = fmt.width() + 8;
    u += multiplier(fmt.m + 1, fmt.m + 1);
    u += adder(fmt.e + 1);           // exponent add
    u += adder(fmt.m + 2).scaled(0.4); // rounding
    u.logic_ge += 25;
    return u;
}

UnitModel
macUnit(const FloatFmt &in, const FloatFmt &acc)
{
    UnitModel u;
    u.name = std::string(in.name) + "_mac_" + acc.name;
    u.pipe_width_bits = acc.width() + 8;
    // Multiply in the input format (exact product, 2(m+1) bits).
    u += multiplier(in.m + 1, in.m + 1);
    u += adder(in.e + 1); // exponent add
    // Align the product to the accumulator and add.
    const int aw = acc.m + 6;
    u += barrelShifter(aw);
    u += adder(aw);
    // Renormalize + round into the accumulator format.
    u += leadingZeroCount(aw);
    u += barrelShifter(aw);
    u += adder(aw).scaled(0.3);
    u.logic_ge += 35; // sign/exception/control
    u.arch_reg_bits = acc.width(); // accumulator register
    return u;
}

UnitModel
floatExpUnit(const FloatFmt &fmt)
{
    // HLS-library exponential: range reduction, 2^frac via table +
    // polynomial, exponent insertion. HLS math libraries evaluate in a
    // widened internal precision to guarantee the output ulp bound, so
    // the datapath width is bounded below even for narrow formats.
    UnitModel u;
    u.name = std::string(fmt.name) + "_exp";
    const int mw = std::max(fmt.m + 4, 14); // internal precision
    u.pipe_width_bits = mw + fmt.e + 2;
    u += multiplier(mw, mw);                    // x * log2(e)
    u += adder(mw);                             // int/frac split
    u += lut(64, mw);                           // 2^frac seed table
    u += multiplier(mw, mw);                    // polynomial term 1
    u += multiplier(mw, mw);                    // polynomial term 2
    u += adder(mw);
    u += adder(mw);
    u += barrelShifter(mw);                     // exponent insertion
    u.logic_ge += 120;                          // range/special cases
    u.arch_reg_bits += 2.0 * fmt.width();       // IO registers
    return u;
}

UnitModel
floatRecipUnit(const FloatFmt &fmt)
{
    // Seed table + Newton-Raphson, again in widened HLS-internal
    // precision.
    UnitModel u;
    u.name = std::string(fmt.name) + "_recip";
    const int mw = std::max(fmt.m + 3, 12);
    u.pipe_width_bits = mw + fmt.e + 2;
    const int iters = fmt.m > 8 ? 2 : 1;
    u += lut(64, mw);
    for (int i = 0; i < iters; ++i) {
        u += multiplier(mw, mw); // d * x
        u += adder(mw);          // 2 - d*x
        u += multiplier(mw, mw); // x * (2 - d*x)
    }
    u += adder(fmt.e); // exponent negate/adjust
    u.logic_ge += 80;
    u.arch_reg_bits += 2.0 * fmt.width(); // IO registers
    return u;
}

UnitModel
positDecoder(int nbits, int es)
{
    UnitModel u;
    u.name = "posit" + std::to_string(nbits) + "_decoder";
    u.pipe_width_bits = nbits + 6;
    u += negate(nbits);             // two's complement for negatives
    u += leadingZeroCount(nbits);   // regime run length
    u += barrelShifter(nbits);      // strip regime, align exp/frac
    u += adder(es + 4);             // scale = k*2^es + e
    u.logic_ge += 12;
    return u;
}

UnitModel
positEncoder(int nbits, int es)
{
    UnitModel u;
    u.name = "posit" + std::to_string(nbits) + "_encoder";
    u.pipe_width_bits = nbits + 6;
    u += adder(es + 4);             // split scale into regime/exponent
    u += barrelShifter(2 * nbits);  // regime/exp/frac assembly
    u += adder(nbits).scaled(0.5);  // round-to-even increment
    u += negate(nbits);             // sign application
    u.logic_ge += 15;               // saturation/special cases
    return u;
}

UnitModel
positSigmoidUnit(int nbits, int es)
{
    UnitModel u;
    u.name = "posit" + std::to_string(nbits) + "_sigmoid";
    u.pipe_width_bits = nbits;
    if (es != 0) {
        // Convert posit(N,es) -> posit(N,0) and back (section 3.3).
        // The conversion is a regime re-pack: run-length decode, scale
        // adjust, re-shift — cheaper than a full decode + encode pair.
        const UnitModel dec = positDecoder(nbits, es);
        u.logic_ge += dec.logic_ge;
        u.depth += dec.depth;
        u += barrelShifter(nbits);     // regime re-pack
        u += adder(es + 4).scaled(0.5);
    }
    u += inverter(1); // MSB flip; the >>2 shift is wiring
    return u;
}

UnitModel
positRecipUnit(int nbits)
{
    UnitModel u;
    u.name = "posit" + std::to_string(nbits) + "_recip";
    u.pipe_width_bits = nbits;
    u += inverter(nbits - 1);            // NOT everything but the sign
    u.logic_ge += comparator(nbits).ge;  // NaR / zero special cases
    u.logic_ge += 60;                    // valid/handshake control
    u.arch_reg_bits += 2.0 * nbits;      // IO registers
    return u;
}

UnitModel
positExpUnit(int nbits, int es)
{
    // Eq. 3: f(x) = 1/S(-x) - eps for x >= theta else 0.
    UnitModel u;
    u.name = "posit" + std::to_string(nbits) + "_exp";
    u.pipe_width_bits = nbits + 4;
    u += negate(nbits); // -x

    const UnitModel sig = positSigmoidUnit(nbits, es);
    u.logic_ge += sig.logic_ge;
    u.depth += sig.depth;

    u += inverter(nbits - 1); // bitwise reciprocal

    // Posit subtraction of epsilon: decode both operands, small float
    // add, encode (the epsilon operand's decode constant-folds away).
    const UnitModel dec = positDecoder(nbits, es);
    const UnitModel enc = positEncoder(nbits, es);
    u.logic_ge += dec.logic_ge + enc.logic_ge;
    u.depth += dec.depth + enc.depth;
    u += adder(nbits + 2);

    u += comparator(nbits); // threshold test against theta
    u.logic_ge += 0.7 * nbits; // zero-mask AND gates
    u.arch_reg_bits += 2.0 * nbits; // IO registers
    return u;
}

UnitModel
processingElement(const FloatFmt &in, const FloatFmt &acc)
{
    UnitModel u = macUnit(in, acc);
    u.name = std::string("pe_") + in.name;
    // Operand forwarding registers (activation + weight in, activation
    // out) as in a weight-stationary systolic array.
    u.arch_reg_bits += 3.0 * in.width();
    return u;
}

UnitModel
vectorLane(const std::string &accel_dtype)
{
    UnitModel u;
    u.name = "vlane_" + accel_dtype;

    auto addUnit = [&u](const UnitModel &m) {
        u.logic_ge += m.logic_ge;
        u.arch_reg_bits += m.arch_reg_bits;
        if (m.depth > u.depth)
            u.depth = m.depth;
    };

    if (accel_dtype == "bf16") {
        // FP32 vector data type (section 7.3).
        addUnit(floatAdder(kFp32));
        addUnit(floatMultiplier(kFp32));
        addUnit(floatExpUnit(kFp32));
        addUnit(floatRecipUnit(kFp32));
        u.arch_reg_bits += 4 * 32; // small vector register file
        u.pipe_width_bits = 40;
    } else if (accel_dtype == "posit8") {
        // BF16 ALU + posit approximate special functions + codecs.
        addUnit(floatAdder(kBf16));
        addUnit(floatMultiplier(kBf16));
        addUnit(positExpUnit(8, 1));
        addUnit(positRecipUnit(8));
        addUnit(positDecoder(8, 1));
        addUnit(positEncoder(8, 1));
        u.arch_reg_bits += 4 * 16;
        u.pipe_width_bits = 24;
    } else {
        // fp8 / e4m3 / e5m2: BF16 ALU + BF16 special functions.
        addUnit(floatAdder(kBf16));
        addUnit(floatMultiplier(kBf16));
        addUnit(floatExpUnit(kBf16));
        addUnit(floatRecipUnit(kBf16));
        u.arch_reg_bits += 4 * 16;
        u.pipe_width_bits = 24;
    }
    // Data-type-independent lane infrastructure: a 32-entry vector
    // register file, the max-reduction comparator and second adder the
    // softmax/LayerNorm sequences need, operand muxing and the lane's
    // share of instruction decode/control.
    const int w = accel_dtype == "bf16" ? 32 : 16;
    u.arch_reg_bits += 32.0 * w;        // vector register file
    u.logic_ge += comparator(w).ge;     // max reduction
    u.logic_ge += adder(w).ge;          // second ALU op
    u.logic_ge += barrelShifter(w).ge;  // shift/pack ops
    u.logic_ge += mux(8, w).ge * 2.0;   // operand routing
    u.logic_ge += 5200;                 // sequencer/decode share
    return u;
}

} // namespace qt8::hw
