#include "hw/memory_model.h"

namespace qt8::hw {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

double
bitsToMb(double count, int bits)
{
    return count * bits / 8.0 / kMb;
}

} // namespace

TransformerDims
TransformerDims::mobileBertTiny()
{
    return TransformerDims{};
}

int64_t
TransformerDims::embeddingParams() const
{
    return vocab * d_model + max_seq * d_model;
}

int64_t
TransformerDims::perLayerParams() const
{
    const int64_t attn = 4 * d_model * d_model + 4 * d_model;
    const int64_t ffn = n_ffn * (2 * d_model * d_ff + d_ff + d_model);
    const int64_t ln = 2 * 2 * d_model;
    return attn + ffn + ln;
}

int64_t
TransformerDims::totalParams() const
{
    return embeddingParams() + n_layers * perLayerParams();
}

int64_t
TransformerDims::loraParams(int rank, bool all_dense) const
{
    // Each adapted weight W[out, in] adds rank*(in + out) parameters.
    const int64_t attn = 4 * rank * (2 * d_model); // q, k, v, o
    const int64_t qv_only = 2 * rank * (2 * d_model);
    const int64_t ffn = n_ffn * 2 * rank * (d_model + d_ff);
    const int64_t per_layer = all_dense ? (attn + ffn) : qv_only;
    return n_layers * per_layer;
}

MemoryBreakdown
finetuneMemory(const TransformerDims &dims, const MemorySetup &setup)
{
    MemoryBreakdown m;
    const double base_params = static_cast<double>(dims.totalParams());
    const double lora_params =
        setup.lora ? static_cast<double>(dims.loraParams(
                         setup.lora_rank, setup.lora_all_dense))
                   : 0.0;
    const double trainable =
        setup.lora ? lora_params : base_params;

    // Parameters: the base model in weight_bits; LoRA factors in their
    // own (16-bit) precision on top. Full mixed-precision fine-tuning
    // additionally holds an FP32 master copy of the trainable weights.
    m.params_mb = bitsToMb(base_params, setup.weight_bits) +
                  bitsToMb(lora_params, setup.lora_factor_bits);
    if (!setup.lora && setup.master_weights)
        m.params_mb += bitsToMb(base_params, 32);

    // Gradient accumulators exist only for trainable parameters.
    m.weight_grad_mb = bitsToMb(trainable, setup.weight_grad_bits);

    // AdamW: two FP32 moments per trainable parameter.
    m.optimizer_mb = setup.adamw ? bitsToMb(2.0 * trainable, 32) : 0.0;

    // Saved activations per layer (what backward() actually caches):
    //  attention: 5 tensors of B*S*d (xq + quantized q/k/v + out-proj
    //  input) and 2 of B*H*S*S (probs + quantized probs);
    //  each FFN: B*S*d input + 2 * B*S*d_ff intermediates;
    //  LayerNorms: B*S*d normalized cache each.
    const double bs = static_cast<double>(setup.batch) * setup.seq;
    const double attn_acts =
        5.0 * bs * dims.d_model +
        static_cast<double>(setup.batch) * dims.n_heads * setup.seq *
            setup.seq;
    const double ffn_acts =
        static_cast<double>(dims.n_ffn) *
        (bs * dims.d_model + 2.0 * bs * dims.d_ff);
    const double ln_count = 1.0 + static_cast<double>(dims.n_ffn);
    const double ln_acts = ln_count * bs * dims.d_model;
    const double acts_per_layer = attn_acts + ffn_acts + ln_acts;
    const double embed_acts = bs * dims.d_model;
    m.activations_mb = bitsToMb(
        embed_acts + dims.n_layers * acts_per_layer, setup.act_bits);

    // Live activation-gradient buffers ("error"): the backward pass
    // keeps a handful of B*S-sized tensors alive at once.
    const double error_elems =
        2.0 * bs * dims.d_model + 2.0 * bs * dims.d_ff +
        2.0 * static_cast<double>(setup.batch) * dims.n_heads *
            setup.seq * setup.seq;
    m.error_mb = bitsToMb(error_elems, setup.error_bits);

    return m;
}

} // namespace qt8::hw
