#include "hw/rtl.h"

#include <cassert>

#include "numerics/float_bits.h"

namespace qt8::hw {

DecodedPosit
positDecodeRtl(uint32_t code, int nbits, int es)
{
    const uint32_t mask =
        nbits >= 32 ? 0xFFFFFFFFu : ((1u << nbits) - 1);
    code &= mask;

    DecodedPosit d;
    if (code == 0) {
        d.zero = true;
        return d;
    }
    if (code == (1u << (nbits - 1))) {
        d.nar = true;
        return d;
    }

    d.sign = (code >> (nbits - 1)) & 1;
    const uint32_t body = d.sign ? ((~code + 1) & mask) : code;

    // Leading-run count on the regime field.
    int i = nbits - 2;
    const int r0 = (body >> i) & 1;
    int run = 0;
    while (i >= 0 && static_cast<int>((body >> i) & 1) == r0) {
        ++run;
        --i;
    }
    const int k = r0 ? run - 1 : -run;
    if (i >= 0)
        --i; // regime terminator

    int e = 0;
    int ebits = 0;
    while (ebits < es && i >= 0) {
        e = (e << 1) | ((body >> i) & 1);
        ++ebits;
        --i;
    }
    e <<= (es - ebits);

    d.scale = (k << es) + e;
    d.frac_bits = i + 1;
    d.frac = d.frac_bits > 0 ? (body & ((1u << d.frac_bits) - 1)) : 0;
    return d;
}

uint32_t
positEncodeRtl(bool sign, int scale, uint64_t frac, int frac_bits,
               int nbits, int es)
{
    const uint32_t mask =
        nbits >= 32 ? 0xFFFFFFFFu : ((1u << nbits) - 1);
    const uint32_t maxpos_code = (1u << (nbits - 1)) - 1;
    const int min_scale = -((nbits - 2) << es);
    const int max_scale = (nbits - 2) << es;

    uint32_t body;
    if (scale >= max_scale) {
        body = maxpos_code; // saturate
    } else if (scale < min_scale) {
        // Sub-minpos handling (paper section 3.4 round-to-even): a
        // value in [minpos/2, minpos) rounds up to minpos except the
        // exact tie at minpos/2, which rounds to the even code (zero).
        if (scale == min_scale - 1 && frac != 0)
            body = 1;
        else
            return 0;
    } else {
        const int k = scale >> es; // arithmetic shift = floor division
        const int e = scale - (k << es);

        unsigned __int128 acc = 0;
        int pos = 0;
        auto put = [&acc, &pos](uint64_t bits, int width) {
            acc |= static_cast<unsigned __int128>(bits)
                   << (128 - pos - width);
            pos += width;
        };
        if (k >= 0) {
            put((1ull << (k + 1)) - 1, k + 1);
            put(0, 1);
        } else {
            put(0, -k);
            put(1, 1);
        }
        if (es > 0)
            put(static_cast<uint64_t>(e), es);
        if (frac_bits > 0)
            put(frac, frac_bits);

        const int body_bits = nbits - 1;
        body = static_cast<uint32_t>(acc >> (128 - body_bits));
        const int guard =
            static_cast<int>((acc >> (128 - body_bits - 1)) & 1);
        const bool sticky = (acc << (body_bits + 1)) != 0;
        if (guard && (sticky || (body & 1)))
            ++body;
        if (body > maxpos_code)
            body = maxpos_code;
    }

    return sign ? ((~body + 1) & mask) : body;
}

void
MacBf16Rtl::accumulate(float a, float b)
{
    // Wide product, BF16 round after the accumulate (the accumulator
    // register is BF16).
    acc_ = Bfloat16::quantize(acc_ + a * b);
}

} // namespace qt8::hw
