#include "hw/arith.h"

#include <algorithm>
#include <cmath>

namespace qt8::hw {
namespace {

double
log2ceil(int n)
{
    return std::ceil(std::log2(std::max(2, n)));
}

} // namespace

GateCost
adder(int n)
{
    // Prefix adder: ~6 GE/bit plus log-depth prefix tree.
    return {6.0 * n + 2.0 * n * log2ceil(n) * 0.5,
            2.0 * log2ceil(n) + 3.0};
}

GateCost
multiplier(int n, int m)
{
    // Partial products (AND array) + Wallace reduction (FAs) + final
    // carry-propagate adder.
    const double pp = 1.2 * n * m;
    const double reduce = 5.0 * n * m;
    const GateCost final_add = adder(n + m);
    return {pp + reduce + final_add.ge,
            1.0 + 2.0 * log2ceil(std::min(n, m)) + final_add.depth};
}

GateCost
leadingZeroCount(int n)
{
    return {1.8 * n, 1.5 * log2ceil(n)};
}

GateCost
barrelShifter(int n)
{
    const double stages = log2ceil(n);
    return {2.5 * n * stages, stages};
}

GateCost
comparator(int n)
{
    return {2.2 * n, log2ceil(n) + 1.0};
}

GateCost
mux(int ways, int width)
{
    const double stages = log2ceil(ways);
    return {2.5 * width * (ways - 1), stages};
}

GateCost
inverter(int n)
{
    return {0.7 * n, 1.0};
}

GateCost
xorBank(int n)
{
    return {2.2 * n, 1.0};
}

GateCost
negate(int n)
{
    const GateCost inc = adder(n);
    return {0.7 * n + inc.ge, 1.0 + inc.depth};
}

GateCost
lut(int entries, int width)
{
    // Synthesized ROM: roughly 0.35 GE per bit plus decode.
    return {0.35 * entries * width + 1.5 * entries / 4.0,
            2.0 + log2ceil(entries)};
}

double
regGe(double bits)
{
    return 5.5 * bits;
}

} // namespace qt8::hw
