/**
 * @file
 * 40 nm technology constants for the structural area/power model
 * (paper section 7: units are synthesized with Design Compiler in a
 * 40 nm technology at 0.9 V; we substitute a gate-level cost model —
 * see DESIGN.md section 2).
 *
 * All area is expressed in NAND2-gate equivalents (GE) and converted
 * with a per-GE area constant; dynamic power is per-GE switching energy
 * times frequency and activity; leakage is per-GE. Absolute values are
 * representative of a 40 nm LP process; the experiments target the
 * *ratios between data-type variants*, which depend only on the gate
 * decomposition.
 */
#ifndef QT8_HW_TECH_H
#define QT8_HW_TECH_H

namespace qt8::hw {

struct Tech
{
    /// Area of one gate equivalent (NAND2) in um^2.
    static constexpr double kUm2PerGe = 0.71;
    /// Dynamic energy per GE per clock at 0.9 V, in fJ (at activity 1).
    static constexpr double kSwitchEnergyFj = 1.1;
    /// Leakage power per GE in nW.
    static constexpr double kLeakNwPerGe = 1.5;
    /// Default switching activity factor of datapath logic.
    static constexpr double kActivity = 0.18;
    /// DFF cost in GE per bit.
    static constexpr double kGePerFlop = 5.5;
    /// Flops toggle with activity ~ clock; effective activity factor.
    static constexpr double kFlopActivity = 0.35;
    /// Single gate delay (FO4-loaded) in ps, used for pipelining depth.
    static constexpr double kGateDelayPs = 28.0;
    /// SRAM macro density, um^2 per bit.
    static constexpr double kSramUm2PerBit = 0.32;
    /// SRAM access energy per bit, fJ.
    static constexpr double kSramAccessFjPerBit = 0.5;
    /// SRAM leakage per bit, nW.
    static constexpr double kSramLeakNwPerBit = 0.012;
};

} // namespace qt8::hw

#endif // QT8_HW_TECH_H
