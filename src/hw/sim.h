/**
 * @file
 * Functional + cycle/energy simulator for the accelerator's systolic
 * GEMM (Figure 11). Complements the static area/power model: it
 * executes a quantized GEMM the way the array does — weight-stationary
 * tiling, operands rounded to the storage format at the buffer
 * boundary, and BF16 accumulation via the bit-accurate MAC datapath —
 * and reports cycles, MAC counts and energy.
 *
 * This enables end-to-end "energy per inference" estimates per data
 * type (an extension beyond the paper's tables; see
 * bench_ext_energy_per_token).
 */
#ifndef QT8_HW_SIM_H
#define QT8_HW_SIM_H

#include <cstdint>

#include "hw/accelerator.h"
#include "tensor/tensor.h"

namespace qt8::hw {

/// Execution statistics of one simulated operation.
struct SimStats
{
    int64_t cycles = 0;
    int64_t macs = 0;
    int64_t sram_read_bits = 0;
    int64_t sram_write_bits = 0;
    double energy_nj = 0.0;

    SimStats &
    operator+=(const SimStats &o)
    {
        cycles += o.cycles;
        macs += o.macs;
        sram_read_bits += o.sram_read_bits;
        sram_write_bits += o.sram_write_bits;
        energy_nj += o.energy_nj;
        return *this;
    }
};

/**
 * Weight-stationary systolic GEMM simulator.
 *
 * Functional semantics: C = A . B with both operands rounded to the
 * accelerator's storage format on load and partial sums accumulated in
 * BF16 (8-bit accelerators) or FP32 (BF16 accelerator), rounding after
 * every accumulate — exactly what the MAC datapath of section 7.1
 * produces.
 */
class SystolicGemmSim
{
  public:
    explicit SystolicGemmSim(const AcceleratorConfig &cfg);

    /**
     * Run C = A . B. A is [M, K], B is [K, N]; C must be [M, N].
     * Returns the cycle/energy statistics of the tiled execution.
     */
    SimStats run(const Tensor &a, const Tensor &b, Tensor &c) const;

    /// Cycle count alone (no functional execution) for a GEMM shape.
    SimStats cost(int64_t m, int64_t k, int64_t n) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;
    bool acc_is_bf16_;
    double mac_energy_pj_;   ///< Energy per MAC operation.
    double codec_energy_pj_; ///< Posit decode energy per operand.
};

/// Rough per-token inference cost of a Transformer configuration on
/// the accelerator: sums the cycle/energy cost of every GEMM in one
/// forward pass (attention projections, attention matmuls, FFNs, head).
struct InferenceCost
{
    SimStats gemm;
    double vector_energy_nj = 0.0; ///< Element-wise ops (softmax etc).
    double total_nj() const { return gemm.energy_nj + vector_energy_nj; }
};

InferenceCost transformerForwardCost(const AcceleratorConfig &accel,
                                     int64_t d_model, int64_t d_ff,
                                     int n_layers, int n_ffn,
                                     int64_t seq, int64_t vocab);

} // namespace qt8::hw

#endif // QT8_HW_SIM_H
