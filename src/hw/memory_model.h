/**
 * @file
 * Fine-tuning memory model (paper section 7.4 / Figure 14): accounts
 * for parameters, weight gradients, optimizer states, saved
 * activations, and live activation gradients ("error") for full
 * fine-tuning vs. LoRA vs. LoRA + 8-bit quantization. The accounting
 * matches what this library's backward pass actually caches per layer.
 */
#ifndef QT8_HW_MEMORY_MODEL_H
#define QT8_HW_MEMORY_MODEL_H

#include <cstdint>

namespace qt8::hw {

/// Transformer dimensions for the memory accounting.
struct TransformerDims
{
    int64_t vocab = 30522;
    int64_t max_seq = 512;
    int64_t d_model = 160;
    int64_t d_ff = 640;
    int64_t n_heads = 4;
    int64_t n_layers = 21;
    int64_t n_ffn = 2; ///< Stacked FFNs per block (MobileBERT).

    /// MobileBERT_tiny-scale dims (~15-16M parameters), used by the
    /// Figure 14 experiment.
    static TransformerDims mobileBertTiny();

    int64_t embeddingParams() const;
    int64_t perLayerParams() const;
    int64_t totalParams() const;

    /// Trainable parameters under LoRA with the given rank on every
    /// dense layer (the MobileBERT recipe) or on q/v only.
    int64_t loraParams(int rank, bool all_dense) const;
};

/// Precision/optimizer setup for one Figure 14 bar.
struct MemorySetup
{
    int64_t batch = 16;
    int64_t seq = 128;
    bool lora = false;
    int lora_rank = 8;
    bool lora_all_dense = true;
    int weight_bits = 16;      ///< Stored parameters.
    int act_bits = 16;         ///< Saved activations.
    int error_bits = 16;       ///< Activation gradients.
    int weight_grad_bits = 16; ///< Gradient accumulators.
    int lora_factor_bits = 16; ///< LoRA A/B storage.
    bool adamw = true;         ///< Two FP32 states per trainable param.
    /// Full (non-LoRA) mixed-precision fine-tuning keeps an FP32
    /// master copy of every trainable weight.
    bool master_weights = true;
};

/// Per-category bytes (reported in MB).
struct MemoryBreakdown
{
    double params_mb = 0.0;
    double weight_grad_mb = 0.0;
    double optimizer_mb = 0.0;
    double activations_mb = 0.0;
    double error_mb = 0.0;

    double
    totalMb() const
    {
        return params_mb + weight_grad_mb + optimizer_mb +
               activations_mb + error_mb;
    }
};

/// Compute the Figure 14 breakdown.
MemoryBreakdown finetuneMemory(const TransformerDims &dims,
                               const MemorySetup &setup);

} // namespace qt8::hw

#endif // QT8_HW_MEMORY_MODEL_H
