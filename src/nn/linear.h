/**
 * @file
 * Dense layer with quantization hooks and optional LoRA (paper
 * section 5.3). In LoRA mode the base weight W0 is frozen and stored in
 * the 8-bit forward format, the low-rank factors A and B are carried in
 * 16-bit, and the effective weight follows Eq. 7:
 *
 *     W = quant( W0_8 + alpha * quant(B_16) * quant(A_16) )
 *
 * so that the GEMM runs on a single 8-bit data type, unlike int8 LoRA
 * which must upconvert and merge in high precision.
 */
#ifndef QT8_NN_LINEAR_H
#define QT8_NN_LINEAR_H

#include "nn/param.h"
#include "quant/config.h"
#include "tensor/packed.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8 {

/**
 * Element-wise consumer fused into a packed Linear's GEMM epilogue
 * (QuantConfig::weights_packed mode). At most one of the two options:
 *
 *  - activation_gelu: the FFN fc1 tail — activation-point quantization,
 *    GeLU, carrier — runs inside the GEMM's output tiles.
 *  - residual: the FFN fc2 tail — branch-side residual-point
 *    quantization, the residual addition against @p residual, carrier.
 *    @p residual is the skip operand [m, out], *already quantized at
 *    the residual point* by the caller, and must outlive the call.
 */
struct LinearFusedTail
{
    bool activation_gelu = false;
    const float *residual = nullptr;
};

/// y = x . W^T + b, with explicit backward.
class Linear
{
  public:
    /**
     * @param in Input features.
     * @param out Output features.
     * @param rng Initializer stream (Gaussian, std 0.02-like scaled).
     * @param name Parameter name prefix.
     * @param slot Backward-scaling slot id (unique per instance).
     */
    Linear(int64_t in, int64_t out, Rng &rng, const std::string &name,
           int slot);

    /**
     * Enable LoRA with the given rank and scaling alpha: freezes the
     * base weight and bias, initializes A ~ N(0, 0.02), B = 0.
     */
    void enableLora(int rank, float alpha, Rng &rng);

    /// Forward: x is [m, in]; returns [m, out]. Caches activations.
    /// Routes to the packed 8-bit path when packedUsable().
    Tensor forward(QuantSession &qs, const Tensor &x);

    /**
     * True when this forward can run on packed 8-bit weight codes:
     * QuantConfig::weights_packed is set, the forward format is a
     * packable (<=256-value) grid, GEMM quantization is on, and the
     * layer is neither LoRA-merged nor a fused head (both re-derive the
     * effective weight per forward in fp32).
     */
    bool packedUsable(const QuantSession &qs) const;

    /**
     * Inference forward over packed weight codes via gemmQuantized,
     * with bias + carrier (and optionally @p tail) fused into the GEMM
     * epilogue. Bit-identical to forward() followed by the tail's
     * separate passes. Does not cache activations: a subsequent
     * backward() throws std::logic_error.
     */
    Tensor forwardPacked(QuantSession &qs, const Tensor &x,
                         const LinearFusedTail *tail = nullptr);

    /// Drop the packed weight cache (call after mutating weight.value,
    /// e.g. an optimizer step, before the next packed forward).
    void invalidatePacked() { packed_ = PackedTensor(); }

    /// Backward: gy is [m, out]; accumulates parameter gradients and
    /// returns dL/dx [m, in].
    Tensor backward(QuantSession &qs, const Tensor &gy);

    void collectParams(ParamList &out);

    /// Mark as the model's task head: when QuantConfig::fuse_head is
    /// set, this layer's inputs/weights skip 8-bit quantization (the
    /// artifact's "--op_fusion classifier" training-stability option).
    void markAsHead() { is_head_ = true; }

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }
    bool loraEnabled() const { return lora_rank_ > 0; }

    Param weight; ///< [out, in]
    Param bias;   ///< [out]
    Param lora_a; ///< [r, in]
    Param lora_b; ///< [out, r]

  private:
    /// Effective (quantized) weight for this forward pass.
    Tensor effectiveWeight(QuantSession &qs);

    /// (Re)build the packed code cache for format @p q if stale.
    void ensurePacked(const Quantizer &q);

    int64_t in_;
    int64_t out_;
    int slot_;
    int lora_rank_ = 0;
    float lora_alpha_ = 1.0f;
    bool is_head_ = false;

    // Forward cache.
    Tensor xq_;      ///< Quantized input.
    Tensor wq_;      ///< Quantized effective weight.
    Tensor aq_, bq_; ///< Quantized LoRA factors (LoRA mode).
    bool packed_fwd_ = false; ///< Last forward ran the packed path.

    // Packed 8-bit weight codes, cached across forwards (weights are
    // static at inference; invalidatePacked() after mutating them).
    PackedTensor packed_;
};

} // namespace qt8

#endif // QT8_NN_LINEAR_H
