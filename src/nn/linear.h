/**
 * @file
 * Dense layer with quantization hooks and optional LoRA (paper
 * section 5.3). In LoRA mode the base weight W0 is frozen and stored in
 * the 8-bit forward format, the low-rank factors A and B are carried in
 * 16-bit, and the effective weight follows Eq. 7:
 *
 *     W = quant( W0_8 + alpha * quant(B_16) * quant(A_16) )
 *
 * so that the GEMM runs on a single 8-bit data type, unlike int8 LoRA
 * which must upconvert and merge in high precision.
 */
#ifndef QT8_NN_LINEAR_H
#define QT8_NN_LINEAR_H

#include "nn/param.h"
#include "quant/config.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace qt8 {

/// y = x . W^T + b, with explicit backward.
class Linear
{
  public:
    /**
     * @param in Input features.
     * @param out Output features.
     * @param rng Initializer stream (Gaussian, std 0.02-like scaled).
     * @param name Parameter name prefix.
     * @param slot Backward-scaling slot id (unique per instance).
     */
    Linear(int64_t in, int64_t out, Rng &rng, const std::string &name,
           int slot);

    /**
     * Enable LoRA with the given rank and scaling alpha: freezes the
     * base weight and bias, initializes A ~ N(0, 0.02), B = 0.
     */
    void enableLora(int rank, float alpha, Rng &rng);

    /// Forward: x is [m, in]; returns [m, out]. Caches activations.
    Tensor forward(QuantSession &qs, const Tensor &x);

    /// Backward: gy is [m, out]; accumulates parameter gradients and
    /// returns dL/dx [m, in].
    Tensor backward(QuantSession &qs, const Tensor &gy);

    void collectParams(ParamList &out);

    /// Mark as the model's task head: when QuantConfig::fuse_head is
    /// set, this layer's inputs/weights skip 8-bit quantization (the
    /// artifact's "--op_fusion classifier" training-stability option).
    void markAsHead() { is_head_ = true; }

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }
    bool loraEnabled() const { return lora_rank_ > 0; }

    Param weight; ///< [out, in]
    Param bias;   ///< [out]
    Param lora_a; ///< [r, in]
    Param lora_b; ///< [out, r]

  private:
    /// Effective (quantized) weight for this forward pass.
    Tensor effectiveWeight(QuantSession &qs);

    int64_t in_;
    int64_t out_;
    int slot_;
    int lora_rank_ = 0;
    float lora_alpha_ = 1.0f;
    bool is_head_ = false;

    // Forward cache.
    Tensor xq_;      ///< Quantized input.
    Tensor wq_;      ///< Quantized effective weight.
    Tensor aq_, bq_; ///< Quantized LoRA factors (LoRA mode).
};

} // namespace qt8

#endif // QT8_NN_LINEAR_H
