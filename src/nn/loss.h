/**
 * @file
 * Softmax cross-entropy loss over logits with an ignore index, returning
 * both the mean loss and the logits gradient.
 */
#ifndef QT8_NN_LOSS_H
#define QT8_NN_LOSS_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace qt8 {

/// Targets equal to kIgnoreIndex contribute neither loss nor gradient.
constexpr int32_t kIgnoreIndex = -100;

struct CEResult
{
    double loss = 0.0;  ///< Mean loss over counted targets.
    Tensor dlogits;     ///< d(mean loss)/d(logits).
    int64_t count = 0;  ///< Number of counted targets.
};

/**
 * Numerically stable softmax cross-entropy.
 *
 * @param logits [N, C].
 * @param targets N class indices (or kIgnoreIndex).
 */
CEResult softmaxCrossEntropy(const Tensor &logits,
                             const std::vector<int32_t> &targets);

} // namespace qt8

#endif // QT8_NN_LOSS_H
