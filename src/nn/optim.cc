#include "nn/optim.h"

#include <cmath>

namespace qt8 {

void
zeroGrads(const ParamList &params)
{
    for (Param *p : params)
        p->zeroGrad();
}

double
gradNorm(const ParamList &params)
{
    double acc = 0.0;
    for (const Param *p : params) {
        if (!p->trainable)
            continue;
        const float *g = p->grad.data();
        for (int64_t i = 0; i < p->grad.numel(); ++i)
            acc += static_cast<double>(g[i]) * g[i];
    }
    return std::sqrt(acc);
}

void
clipGradNorm(const ParamList &params, double max_norm)
{
    const double norm = gradNorm(params);
    if (norm <= max_norm || norm == 0.0)
        return;
    const float s = static_cast<float>(max_norm / norm);
    for (Param *p : params) {
        if (!p->trainable)
            continue;
        float *g = p->grad.data();
        for (int64_t i = 0; i < p->grad.numel(); ++i)
            g[i] *= s;
    }
}

bool
gradsFinite(const ParamList &params)
{
    for (const Param *p : params) {
        if (!p->trainable)
            continue;
        const float *g = p->grad.data();
        for (int64_t i = 0; i < p->grad.numel(); ++i)
            if (!std::isfinite(g[i]))
                return false;
    }
    return true;
}

void
Sgd::step(const ParamList &params)
{
    for (Param *p : params) {
        if (!p->trainable)
            continue;
        Tensor &vel = velocity_[p];
        if (vel.numel() == 0)
            vel = Tensor(p->value.shape());
        float *w = p->value.data();
        const float *g = p->grad.data();
        float *v = vel.data();
        const float mu = static_cast<float>(momentum_);
        const float lr = static_cast<float>(lr_);
        for (int64_t i = 0; i < p->value.numel(); ++i) {
            v[i] = mu * v[i] + g[i];
            w[i] -= lr * v[i];
        }
    }
}

void
AdamW::step(const ParamList &params)
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (Param *p : params) {
        if (!p->trainable)
            continue;
        Tensor &m = m_[p];
        Tensor &v = v_[p];
        if (m.numel() == 0) {
            m = Tensor(p->value.shape());
            v = Tensor(p->value.shape());
        }
        float *w = p->value.data();
        const float *g = p->grad.data();
        float *pm = m.data();
        float *pv = v.data();
        for (int64_t i = 0; i < p->value.numel(); ++i) {
            pm[i] = static_cast<float>(beta1_ * pm[i] +
                                       (1.0 - beta1_) * g[i]);
            pv[i] = static_cast<float>(
                beta2_ * pv[i] +
                (1.0 - beta2_) * static_cast<double>(g[i]) * g[i]);
            const double mh = pm[i] / bc1;
            const double vh = pv[i] / bc2;
            w[i] -= static_cast<float>(
                lr_ * (mh / (std::sqrt(vh) + eps_) + weight_decay_ * w[i]));
        }
    }
}

bool
LossScaler::unscaleAndCheck(const ParamList &params)
{
    if (!enabled_)
        return gradsFinite(params);

    const float inv = static_cast<float>(1.0 / scale_);
    bool finite = true;
    for (Param *p : params) {
        if (!p->trainable)
            continue;
        float *g = p->grad.data();
        for (int64_t i = 0; i < p->grad.numel(); ++i) {
            g[i] *= inv;
            finite &= std::isfinite(g[i]) != 0;
        }
    }
    if (!finite) {
        scale_ = std::max(1.0, scale_ * 0.5);
        good_steps_ = 0;
        return false;
    }
    if (++good_steps_ >= 512) {
        scale_ *= 2.0;
        good_steps_ = 0;
    }
    return true;
}

} // namespace qt8
