/**
 * @file
 * Model configurations and the four Transformer model families the
 * paper evaluates, scaled for CPU experiments:
 *
 *  - encoder models for span extraction (SQuAD-like F1) and
 *    classification (GLUE-like accuracy), with MobileBERT-style
 *    (stacked-FFN, no inner LayerNorm) and BERT-style variants;
 *  - decoder-only causal LMs (GPT-2 / LLaMA-2-like, perplexity);
 *  - encoder-decoder seq2seq (Whisper-like, WER).
 */
#ifndef QT8_NN_MODEL_H
#define QT8_NN_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "nn/block.h"
#include "nn/embedding.h"

namespace qt8 {

/// Architecture hyperparameters.
struct ModelConfig
{
    std::string name = "model";
    int64_t vocab = 64;
    int64_t max_seq = 128;
    int64_t d_model = 64;
    int64_t d_ff = 128;
    int n_heads = 4;
    int n_layers = 2;
    /// Stacked FFN sublayers per block (MobileBERT architecture).
    int n_ffn = 1;
    /// LayerNorm after each stacked FFN (true = BERT-like) or only after
    /// the last one (false = MobileBERT-like, wider activations).
    bool ln_inner = true;
    /// Decoder layers (seq2seq models only).
    int n_dec_layers = 0;

    // --- The paper's encoder ladder (Table 2), scaled down -----------
    static ModelConfig mobileBertTinyLike();
    static ModelConfig mobileBertLike();
    static ModelConfig distilBertLike();
    static ModelConfig bertBaseLike();
    static ModelConfig bertLargeLike();
    // --- Whisper-like seq2seq ladder (Table 5) ------------------------
    static ModelConfig whisperTinyLike();
    static ModelConfig whisperSmallLike();
    static ModelConfig whisperLargeLike();
    // --- Causal LM ladder (Table 6) ------------------------------------
    static ModelConfig gpt2LargeLike();
    static ModelConfig gpt2XlLike();
    static ModelConfig llamaLike();
};

/**
 * Per-decode-session state for KV-cached incremental decoding: one
 * self-attention cache per layer (append-one-row-per-step), plus — for
 * seq2seq — one cross-attention cache per decoder layer (primed once
 * from the encoder memory) and the memory itself.
 *
 * Created by beginDecode(); each forwardIncremental() call consumes one
 * target position and advances pos. Steps are bit-identical to the last
 * row of the corresponding full-prefix forward.
 */
struct DecodeState
{
    std::vector<KVCache> self_kv;
    std::vector<KVCache> cross_kv; ///< Seq2Seq only.
    Tensor memory;                 ///< Seq2Seq only: encoder output.
    int64_t batch = 0;
    int64_t seq_src = 0; ///< Seq2Seq only.
    int64_t pos = 0;     ///< Next target position to decode.
};

/// Embedding + stack of encoder blocks.
class TransformerEncoder
{
  public:
    TransformerEncoder(const ModelConfig &cfg, uint64_t seed);

    Tensor forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq,
                   const uint8_t *pad_mask = nullptr, bool causal = false);

    /// Start a KV-cached causal decode session (capacity = maximum
    /// number of positions, bounded by cfg.max_seq). @p kv_fmt non-null
    /// (typically QuantConfig::kvPackedFormat()): store the caches as
    /// packed uint8 grid codes; must outlive the DecodeState.
    DecodeState beginDecode(int64_t batch, int64_t capacity,
                            const Quantizer *kv_fmt = nullptr) const;

    /// Causal single-step forward: ids holds one token per sequence
    /// (position state.pos); returns [B, d] and advances state.pos.
    Tensor forwardIncremental(QuantSession &qs,
                              const std::vector<int32_t> &ids,
                              DecodeState &state);

    /**
     * Slot-indexed causal single-step forward for continuous batching:
     * entry i embeds ids[i] at absolute position positions[i] and
     * attends the pooled cache rows of slot slots[i] in every layer of
     * @p self_kv (one KVSlots per block). Returns [n_active, d]; row i
     * is bit-identical to a solo DecodeState decode of the same
     * sequence. Cache lengths advance; the caller tracks positions.
     */
    Tensor forwardIncrementalSlots(QuantSession &qs,
                                   const std::vector<int32_t> &ids,
                                   const std::vector<int64_t> &positions,
                                   const std::vector<int32_t> &slots,
                                   std::vector<KVSlots> &self_kv);

    /**
     * Page-table forward for the paged pool (chunked prefill +
     * decode): entry i embeds ids[i] at absolute position
     * positions[i] and attends through rows[i]'s page table in every
     * layer of @p self_kv (one KVPagePanels per block). Rows of the
     * same sequence may appear in ascending-position runs (a prefill
     * chunk); each sees exactly its prefix. Returns [n_rows, d]; row
     * i is bit-identical to a solo/slab decode of the same history.
     */
    Tensor forwardPagedRows(QuantSession &qs,
                            const std::vector<int32_t> &ids,
                            const std::vector<int64_t> &positions,
                            const std::vector<PagedRowRef> &rows,
                            std::vector<KVPagePanels> &self_kv);

    Tensor backward(QuantSession &qs, const Tensor &gy);
    void collectParams(ParamList &out);

    /// LoRA on attention projections (all_dense=false: q/v only, the
    /// RoBERTa recipe) or on every dense layer (the MobileBERT recipe).
    /// Freezes embeddings and LayerNorms.
    void enableLora(int rank, float alpha, bool all_dense);

    const ModelConfig &config() const { return cfg_; }
    BuildCtx &buildCtx() { return ctx_; }

    Embedding embed;
    std::unique_ptr<LayerNorm> embed_ln; ///< Embedding LayerNorm (BERT).
    std::vector<std::unique_ptr<EncoderBlock>> blocks;

  private:
    ModelConfig cfg_;
    BuildCtx ctx_;
    int64_t b_ = 0, s_ = 0;
    bool causal_ = false;
    const uint8_t *pad_ = nullptr;
};

/// Encoder + per-token start/end span head (SQuAD-style QA).
class EncoderSpanQA
{
  public:
    EncoderSpanQA(const ModelConfig &cfg, uint64_t seed);

    /// Returns logits [B*S, 2] (column 0 start, column 1 end).
    Tensor forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq,
                   const uint8_t *pad_mask = nullptr);
    void backward(QuantSession &qs, const Tensor &dlogits);
    void collectParams(ParamList &out);
    void enableLora(int rank, float alpha, bool all_dense);

    TransformerEncoder encoder;
    Linear head;
};

/// Encoder + first-token classification head (GLUE-style).
class EncoderClassifier
{
  public:
    EncoderClassifier(const ModelConfig &cfg, int n_classes, uint64_t seed);

    /// Returns logits [B, n_classes].
    Tensor forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq,
                   const uint8_t *pad_mask = nullptr);
    void backward(QuantSession &qs, const Tensor &dlogits);
    void collectParams(ParamList &out);
    void enableLora(int rank, float alpha, bool all_dense);

    TransformerEncoder encoder;
    Linear head;

  private:
    int64_t b_ = 0, s_ = 0;
};

/// Decoder-only causal language model.
class CausalLM
{
  public:
    CausalLM(const ModelConfig &cfg, uint64_t seed);

    /// Returns next-token logits [B*S, vocab].
    Tensor forward(QuantSession &qs, const std::vector<int32_t> &ids,
                   int64_t batch, int64_t seq);

    /// Start a KV-cached decode session. @p kv_fmt as in
    /// TransformerEncoder::beginDecode (packed 8-bit KV panels).
    DecodeState beginDecode(int64_t batch, int64_t capacity,
                            const Quantizer *kv_fmt = nullptr) const;

    /// Single-step forward over the KV cache: ids holds one token per
    /// sequence; returns next-token logits [B, vocab].
    Tensor forwardIncremental(QuantSession &qs,
                              const std::vector<int32_t> &ids,
                              DecodeState &state);

    /// Slot-indexed single-step forward (continuous batching): returns
    /// next-token logits [n_active, vocab]; see
    /// TransformerEncoder::forwardIncrementalSlots.
    Tensor forwardIncrementalSlots(QuantSession &qs,
                                   const std::vector<int32_t> &ids,
                                   const std::vector<int64_t> &positions,
                                   const std::vector<int32_t> &slots,
                                   std::vector<KVSlots> &self_kv);

    /**
     * Page-table forward (paged pool, chunked prefill): runs the body
     * over all rows but the LM head only over @p logit_rows (row
     * indices into the body output — the rows a scheduler samples
     * from: decode rows plus each prompt's final row). Returns
     * [logit_rows.size(), vocab]; because lm_head and every quant
     * point are row-independent, row j is bit-identical to the
     * corresponding row of the full-head slab forward.
     */
    Tensor forwardPagedRows(QuantSession &qs,
                            const std::vector<int32_t> &ids,
                            const std::vector<int64_t> &positions,
                            const std::vector<PagedRowRef> &rows,
                            std::vector<KVPagePanels> &self_kv,
                            const std::vector<int64_t> &logit_rows);

    void backward(QuantSession &qs, const Tensor &dlogits);
    void collectParams(ParamList &out);

    TransformerEncoder body;
    Linear lm_head;
};

/// Encoder-decoder sequence-to-sequence model (Whisper-like).
class Seq2Seq
{
  public:
    Seq2Seq(const ModelConfig &cfg, uint64_t seed);

    /// Teacher-forced forward: returns logits [B*T, vocab].
    Tensor forward(QuantSession &qs, const std::vector<int32_t> &src_ids,
                   int64_t batch, int64_t seq_src,
                   const uint8_t *src_pad_mask,
                   const std::vector<int32_t> &tgt_ids, int64_t seq_tgt);
    void backward(QuantSession &qs, const Tensor &dlogits);
    void collectParams(ParamList &out);

    /**
     * Run the encoder once and set up the per-layer KV caches for an
     * incremental decode of up to @p max_len target positions.
     */
    DecodeState beginDecode(QuantSession &qs,
                            const std::vector<int32_t> &src_ids,
                            int64_t batch, int64_t seq_src,
                            const uint8_t *src_pad_mask,
                            int64_t max_len);

    /**
     * Decode one target position over the KV caches: @p tgt_ids holds
     * one token per sequence (position state.pos). Returns next-token
     * logits [B, vocab], bit-identical to the last target row of the
     * teacher-forced forward() over the same prefix.
     */
    Tensor forwardIncremental(QuantSession &qs,
                              const std::vector<int32_t> &tgt_ids,
                              DecodeState &state,
                              const uint8_t *src_pad_mask);

    /// Run the encoder over a single sequence ([1, seq_src] input) and
    /// return its memory [seq_src, d] (continuous-batching admission).
    Tensor encodeOne(QuantSession &qs, const std::vector<int32_t> &src_ids,
                     int64_t seq_src, const uint8_t *src_pad_mask);

    /// Park one sequence's encoder memory in cross-attention pool slot
    /// @p slot of every decoder layer (@p cross_kv holds one KVSlots
    /// per decoder block). Returns false if seq_src exceeds capacity.
    bool primeCrossSlots(QuantSession &qs, const Tensor &memory,
                         int64_t seq_src, std::vector<KVSlots> &cross_kv,
                         int32_t slot);

    /// Park one sequence's encoder memory in the given cross-attention
    /// pages of every decoder layer (@p cross_kv holds one
    /// KVPagePanels per decoder block). Returns false if seq_src
    /// exceeds the page span.
    bool primeCrossPages(QuantSession &qs, const Tensor &memory,
                         int64_t seq_src,
                         std::vector<KVPagePanels> &cross_kv,
                         const int32_t *pages, int64_t n_pages);

    /**
     * Slot-indexed single-step decode for continuous batching: entry i
     * embeds tgt_ids[i] at target position positions[i], runs causal
     * self-attention over pooled slot slots[i] and cross-attention over
     * the primed memory slot. @p mem_pad_masks has one source padding
     * mask pointer per active row (entries or the array itself may be
     * null). Returns next-token logits [n_active, vocab].
     */
    Tensor forwardIncrementalSlots(QuantSession &qs,
                                   const std::vector<int32_t> &tgt_ids,
                                   const std::vector<int64_t> &positions,
                                   const std::vector<int32_t> &slots,
                                   std::vector<KVSlots> &self_kv,
                                   std::vector<KVSlots> &cross_kv,
                                   const uint8_t *const *mem_pad_masks);

    /// Page-table single-step decode (paged pools): self rows grow
    /// through self_rows' page tables, cross-attention reads the
    /// pages primed by primeCrossPages. Returns next-token logits
    /// [n_rows, vocab].
    Tensor forwardPagedRows(QuantSession &qs,
                            const std::vector<int32_t> &tgt_ids,
                            const std::vector<int64_t> &positions,
                            const std::vector<PagedRowRef> &self_rows,
                            std::vector<KVPagePanels> &self_kv,
                            const std::vector<PagedRowRef> &cross_rows,
                            std::vector<KVPagePanels> &cross_kv,
                            const uint8_t *const *mem_pad_masks);

    /// Greedy autoregressive decode; returns B sequences of ids
    /// (without BOS, terminated at EOS or max_len). Runs O(T)
    /// single-token steps over the KV caches.
    std::vector<std::vector<int32_t>>
    greedyDecode(QuantSession &qs, const std::vector<int32_t> &src_ids,
                 int64_t batch, int64_t seq_src,
                 const uint8_t *src_pad_mask, int64_t max_len, int32_t bos,
                 int32_t eos);

    /// The uncached reference: re-runs the full teacher-forced forward
    /// over the whole prefix at every step (O(T^2) forwards). Kept for
    /// the decode-cache bit-identity tests and bench_decode.
    std::vector<std::vector<int32_t>>
    greedyDecodeReference(QuantSession &qs,
                          const std::vector<int32_t> &src_ids,
                          int64_t batch, int64_t seq_src,
                          const uint8_t *src_pad_mask, int64_t max_len,
                          int32_t bos, int32_t eos);

    TransformerEncoder encoder;
    Embedding dec_embed;
    std::unique_ptr<LayerNorm> dec_embed_ln;
    std::vector<std::unique_ptr<DecoderBlock>> dec_blocks;
    Linear lm_head;

  private:
    ModelConfig cfg_;
    int64_t b_ = 0, st_ = 0, ss_ = 0;
    Tensor memory_; ///< Cached encoder output.
};

} // namespace qt8

#endif // QT8_NN_MODEL_H
