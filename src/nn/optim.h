/**
 * @file
 * Optimizers (SGD with momentum, AdamW) and loss scaling. Optimizer
 * state is kept in FP32, matching the paper's fine-tuning setup (the
 * 8-bit formats apply to activations/gradients; optimizer states are
 * counted in 32-bit in the Figure 14 memory model). The paper notes
 * that AdamW diverged on MobileBERT SQuAD fine-tuning while SGD
 * recovered accuracy (section 6.3) — both are provided.
 */
#ifndef QT8_NN_OPTIM_H
#define QT8_NN_OPTIM_H

#include <unordered_map>

#include "nn/param.h"

namespace qt8 {

/// Zero the gradient of every parameter.
void zeroGrads(const ParamList &params);

/// Global L2 norm of trainable-parameter gradients.
double gradNorm(const ParamList &params);

/// Scale gradients so the global norm does not exceed max_norm.
void clipGradNorm(const ParamList &params, double max_norm);

/// True if every trainable gradient is finite.
bool gradsFinite(const ParamList &params);

/// SGD with classical momentum.
class Sgd
{
  public:
    explicit Sgd(double lr, double momentum = 0.9)
        : lr_(lr), momentum_(momentum)
    {}

    void step(const ParamList &params);
    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    double lr_;
    double momentum_;
    std::unordered_map<const Param *, Tensor> velocity_;
};

/// AdamW (decoupled weight decay).
class AdamW
{
  public:
    AdamW(double lr, double beta1 = 0.9, double beta2 = 0.999,
          double eps = 1e-8, double weight_decay = 0.01)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
          weight_decay_(weight_decay)
    {}

    void step(const ParamList &params);
    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    double weight_decay_;
    int64_t t_ = 0;
    std::unordered_map<const Param *, Tensor> m_;
    std::unordered_map<const Param *, Tensor> v_;
};

/**
 * Dynamic loss scaling (section 5.1 cites loss scaling as the simplest
 * single-scaling-factor approach). Multiply the loss gradient by
 * scale(), call unscaleAndCheck() before the optimizer step; a
 * non-finite gradient skips the step and halves the scale, while a long
 * streak of good steps doubles it.
 */
class LossScaler
{
  public:
    explicit LossScaler(double initial = 1024.0, bool enabled = true)
        : scale_(initial), enabled_(enabled)
    {}

    double scale() const { return enabled_ ? scale_ : 1.0; }

    /// Divide all trainable grads by the scale. Returns false (skip the
    /// step) when any gradient is non-finite.
    bool unscaleAndCheck(const ParamList &params);

  private:
    double scale_;
    bool enabled_;
    int good_steps_ = 0;
};

} // namespace qt8

#endif // QT8_NN_OPTIM_H
