/**
 * @file
 * Binary checkpointing of parameter lists, so pre-trained backbones
 * (the stand-ins for hub checkpoints) can be saved once and reused by
 * examples and experiments.
 *
 * Format: "QT8CKPT1" magic, parameter count, then per parameter the
 * name, shape and raw float32 data, in collectParams order.
 */
#ifndef QT8_NN_CHECKPOINT_H
#define QT8_NN_CHECKPOINT_H

#include <string>

#include "nn/param.h"

namespace qt8 {

/// Write all parameter values to @p path. Returns false on IO error.
bool saveCheckpoint(const std::string &path, const ParamList &params);

/**
 * Load parameter values from @p path into @p params. Names and shapes
 * must match exactly (same architecture and traversal order).
 * Returns false on IO error or mismatch; params are untouched on
 * failure.
 */
bool loadCheckpoint(const std::string &path, const ParamList &params);

} // namespace qt8

#endif // QT8_NN_CHECKPOINT_H
