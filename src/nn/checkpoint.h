/**
 * @file
 * Binary checkpointing of parameter lists, so pre-trained backbones
 * (the stand-ins for hub checkpoints) can be saved once and reused by
 * examples and experiments.
 *
 * Format (version 2, "QT8CKPT2"): magic, parameter count, then per
 * parameter the name, shape, a CRC32 of the raw float32 payload, and
 * the payload itself, in collectParams order; an end-of-file trailer
 * marker closes the file. The CRC catches bit corruption in tensor
 * data (names and shapes are self-checking against the target model),
 * and the trailer catches truncation at any record boundary — a
 * partial file can never load silently. Version-1 files ("QT8CKPT1",
 * no CRC/trailer) still load through a legacy path.
 */
#ifndef QT8_NN_CHECKPOINT_H
#define QT8_NN_CHECKPOINT_H

#include <string>

#include "nn/param.h"
// The payload checksum lives in util/ (one implementation shared with
// the serve-side KV spill store); kept in this header's include set so
// existing crc32 callers keep compiling.
#include "util/crc32.h"

namespace qt8 {

/// Write all parameter values to @p path (version-2 format). Returns
/// false on IO error.
bool saveCheckpoint(const std::string &path, const ParamList &params);

/**
 * Load parameter values from @p path into @p params. Names and shapes
 * must match exactly (same architecture and traversal order); for
 * version-2 files every tensor's CRC32 must verify and the trailer
 * must be present and final.
 *
 * Returns false on IO error, version/architecture mismatch, CRC
 * failure, truncation, or trailing garbage; params are untouched on
 * failure. When @p why is non-null it receives a one-line reason for
 * the failure.
 */
bool loadCheckpoint(const std::string &path, const ParamList &params,
                    std::string *why = nullptr);

} // namespace qt8

#endif // QT8_NN_CHECKPOINT_H
