#include "nn/block.h"

#include "tensor/ops.h"

namespace qt8 {

Tensor
residualAdd(QuantSession &qs, const Tensor &skip, const Tensor &branch)
{
    Tensor a = skip;
    qs.quantFwd(OpClass::kResidual, a);
    Tensor b = branch;
    qs.quantFwd(OpClass::kResidual, b);
    addInPlace(a, b);
    qs.carrier(a);
    return a;
}

void
residualBackward(QuantSession &qs, Tensor &g, int slot)
{
    qs.quantBwd(OpClass::kResidual, g, slot);
}

FeedForward::FeedForward(int64_t d_model, int64_t d_ff, BuildCtx &ctx,
                         const std::string &name)
    : fc1(d_model, d_ff, ctx.rng, name + ".fc1", ctx.slot()),
      fc2(d_ff, d_model, ctx.rng, name + ".fc2", ctx.slot()),
      slot_act_(ctx.slot())
{
}

Tensor
FeedForward::forward(QuantSession &qs, const Tensor &x, const Tensor *skip)
{
    // Packed-weight fast path: the GeLU tail runs inside fc1's GEMM
    // tiles and (when the residual is requested) the residual tail
    // inside fc2's. Gated on fwd_tap because the fused epilogue has no
    // pre-quantization tensor to hand to an observation hook.
    if (!qs.fwd_tap && fc1.packedUsable(qs) && fc2.packedUsable(qs)) {
        LinearFusedTail gelu_tail;
        gelu_tail.activation_gelu = true;
        const Tensor h = fc1.forwardPacked(qs, x, &gelu_tail);
        if (skip == nullptr)
            return fc2.forward(qs, h);
        // Skip side of residualAdd, quantized up front; the branch side
        // + addition + carrier fuse into fc2's epilogue.
        Tensor a = *skip;
        qs.quantFwd(OpClass::kResidual, a);
        LinearFusedTail res_tail;
        res_tail.residual = a.data();
        return fc2.forwardPacked(qs, h, &res_tail);
    }

    Tensor h = fc1.forward(qs, x);
    qs.quantFwd(OpClass::kActivation, h); // GeLU input quant point
    hq_ = h;
    geluInPlace(h);
    qs.carrier(h);
    Tensor y = fc2.forward(qs, h);
    if (skip != nullptr)
        return residualAdd(qs, *skip, y);
    return y;
}

Tensor
FeedForward::backward(QuantSession &qs, const Tensor &gy)
{
    Tensor gh = fc2.backward(qs, gy);
    qs.quantBwd(OpClass::kActivation, gh, slot_act_);
    float *pg = gh.data();
    const float *ph = hq_.data();
    for (int64_t i = 0; i < gh.numel(); ++i)
        pg[i] *= geluGradScalar(ph[i]);
    qs.carrier(gh);
    return fc1.backward(qs, gh);
}

void
FeedForward::collectParams(ParamList &out)
{
    fc1.collectParams(out);
    fc2.collectParams(out);
}

void
FeedForward::enableLora(int rank, float alpha, Rng &rng)
{
    fc1.enableLora(rank, alpha, rng);
    fc2.enableLora(rank, alpha, rng);
}

void
FeedForward::freeze()
{
    fc1.weight.trainable = false;
    fc1.bias.trainable = false;
    fc2.weight.trainable = false;
    fc2.bias.trainable = false;
}

EncoderBlock::EncoderBlock(int64_t d_model, int n_heads, int64_t d_ff,
                           int n_ffn, bool ln_inner, BuildCtx &ctx,
                           const std::string &name)
    : attn(d_model, n_heads, ctx, name + ".attn"),
      ln_attn(d_model, name + ".ln_attn", ctx.slot()), ln_inner_(ln_inner),
      slot_res_attn_(ctx.slot())
{
    for (int f = 0; f < n_ffn; ++f) {
        ffns.push_back(std::make_unique<FeedForward>(
            d_model, d_ff, ctx, name + ".ffn" + std::to_string(f)));
        slot_res_ffn_.push_back(ctx.slot());
        if (ln_inner || f == n_ffn - 1) {
            ffn_lns.push_back(std::make_unique<LayerNorm>(
                d_model, name + ".ln_ffn" + std::to_string(f), ctx.slot()));
        } else {
            ffn_lns.push_back(nullptr);
        }
    }
}

Tensor
EncoderBlock::ffnStack(QuantSession &qs, Tensor cur)
{
    for (size_t f = 0; f < ffns.size(); ++f) {
        // Residual handled inside forward so the packed path can fuse
        // it into fc2's GEMM epilogue.
        cur = ffns[f]->forward(qs, cur, &cur);
        if (ffn_lns[f])
            cur = ffn_lns[f]->forward(qs, cur);
    }
    return cur;
}

Tensor
EncoderBlock::forward(QuantSession &qs, const Tensor &x, int64_t batch,
                      int64_t seq, const uint8_t *key_pad_mask, bool causal)
{
    const Tensor a =
        attn.forward(qs, x, batch, seq, nullptr, 0, key_pad_mask, causal);
    return ffnStack(qs, ln_attn.forward(qs, residualAdd(qs, x, a)));
}

Tensor
EncoderBlock::forwardIncremental(QuantSession &qs, const Tensor &x,
                                 int64_t batch, KVCache &self_kv)
{
    const Tensor a = attn.forwardIncremental(qs, x, batch, self_kv);
    return ffnStack(qs, ln_attn.forward(qs, residualAdd(qs, x, a)));
}

Tensor
EncoderBlock::forwardIncrementalSlots(QuantSession &qs, const Tensor &x,
                                      const std::vector<int32_t> &slots,
                                      KVSlots &self_kv)
{
    const Tensor a =
        attn.forwardIncrementalSlots(qs, x, slots, self_kv, /*self=*/true);
    return ffnStack(qs, ln_attn.forward(qs, residualAdd(qs, x, a)));
}

Tensor
EncoderBlock::forwardPagedRows(QuantSession &qs, const Tensor &x,
                               const std::vector<PagedRowRef> &rows,
                               KVPagePanels &self_kv)
{
    const Tensor a =
        attn.forwardPagedRows(qs, x, rows, self_kv, /*self=*/true);
    return ffnStack(qs, ln_attn.forward(qs, residualAdd(qs, x, a)));
}

Tensor
EncoderBlock::backward(QuantSession &qs, const Tensor &gy)
{
    Tensor g = gy;
    for (int f = static_cast<int>(ffns.size()) - 1; f >= 0; --f) {
        if (ffn_lns[static_cast<size_t>(f)])
            g = ffn_lns[static_cast<size_t>(f)]->backward(qs, g);
        residualBackward(qs, g, slot_res_ffn_[static_cast<size_t>(f)]);
        const Tensor gh = ffns[static_cast<size_t>(f)]->backward(qs, g);
        addInPlace(g, gh); // skip path + branch path
        qs.carrier(g);
    }
    g = ln_attn.backward(qs, g);
    residualBackward(qs, g, slot_res_attn_);
    const Tensor ga = attn.backward(qs, g);
    addInPlace(g, ga);
    qs.carrier(g);
    return g;
}

void
EncoderBlock::collectParams(ParamList &out)
{
    attn.collectParams(out);
    ln_attn.collectParams(out);
    for (size_t f = 0; f < ffns.size(); ++f) {
        ffns[f]->collectParams(out);
        if (ffn_lns[f])
            ffn_lns[f]->collectParams(out);
    }
}

void
EncoderBlock::enableLora(int rank, float alpha, Rng &rng, bool all_dense)
{
    attn.enableLora(rank, alpha, rng, all_dense);
    for (auto &ffn : ffns) {
        if (all_dense)
            ffn->enableLora(rank, alpha, rng);
        else
            ffn->freeze();
    }
    // LayerNorm affine parameters are frozen in LoRA mode.
    ln_attn.gamma.trainable = false;
    ln_attn.beta.trainable = false;
    for (auto &ln : ffn_lns) {
        if (ln) {
            ln->gamma.trainable = false;
            ln->beta.trainable = false;
        }
    }
}

void
EncoderBlock::freeze()
{
    ParamList params;
    collectParams(params);
    for (Param *p : params)
        p->trainable = false;
}

DecoderBlock::DecoderBlock(int64_t d_model, int n_heads, int64_t d_ff,
                           BuildCtx &ctx, const std::string &name)
    : self_attn(d_model, n_heads, ctx, name + ".self"),
      ln_self(d_model, name + ".ln_self", ctx.slot()),
      cross_attn(d_model, n_heads, ctx, name + ".cross"),
      ln_cross(d_model, name + ".ln_cross", ctx.slot()),
      ffn(d_model, d_ff, ctx, name + ".ffn"),
      ln_ffn(d_model, name + ".ln_ffn", ctx.slot()),
      slot_res_self_(ctx.slot()), slot_res_cross_(ctx.slot()),
      slot_res_ffn_(ctx.slot())
{
}

Tensor
DecoderBlock::forward(QuantSession &qs, const Tensor &x, int64_t batch,
                      int64_t seq_tgt, const Tensor &memory,
                      int64_t seq_src, const uint8_t *mem_pad_mask)
{
    const Tensor a = self_attn.forward(qs, x, batch, seq_tgt, nullptr, 0,
                                       nullptr, /*causal=*/true);
    Tensor cur = ln_self.forward(qs, residualAdd(qs, x, a));

    const Tensor c = cross_attn.forward(qs, cur, batch, seq_tgt, &memory,
                                        seq_src, mem_pad_mask, false);
    cur = ln_cross.forward(qs, residualAdd(qs, cur, c));

    cur = ln_ffn.forward(qs, ffn.forward(qs, cur, &cur));
    return cur;
}

Tensor
DecoderBlock::forwardIncremental(QuantSession &qs, const Tensor &x,
                                 int64_t batch, KVCache &self_kv,
                                 KVCache &cross_kv, const Tensor &memory,
                                 int64_t seq_src,
                                 const uint8_t *mem_pad_mask)
{
    const Tensor a = self_attn.forwardIncremental(qs, x, batch, self_kv);
    Tensor cur = ln_self.forward(qs, residualAdd(qs, x, a));

    const Tensor c = cross_attn.forwardIncremental(
        qs, cur, batch, cross_kv, &memory, seq_src, mem_pad_mask);
    cur = ln_cross.forward(qs, residualAdd(qs, cur, c));

    cur = ln_ffn.forward(qs, ffn.forward(qs, cur, &cur));
    return cur;
}

Tensor
DecoderBlock::forwardIncrementalSlots(QuantSession &qs, const Tensor &x,
                                      const std::vector<int32_t> &slots,
                                      KVSlots &self_kv, KVSlots &cross_kv,
                                      const uint8_t *const *mem_pad_masks)
{
    const Tensor a = self_attn.forwardIncrementalSlots(qs, x, slots,
                                                       self_kv,
                                                       /*self=*/true);
    Tensor cur = ln_self.forward(qs, residualAdd(qs, x, a));

    const Tensor c = cross_attn.forwardIncrementalSlots(
        qs, cur, slots, cross_kv, /*self=*/false, mem_pad_masks);
    cur = ln_cross.forward(qs, residualAdd(qs, cur, c));

    cur = ln_ffn.forward(qs, ffn.forward(qs, cur, &cur));
    return cur;
}

bool
DecoderBlock::primeCrossSlot(QuantSession &qs, const Tensor &memory,
                             int64_t seq_src, KVSlots &cross_kv,
                             int32_t slot)
{
    return cross_attn.primeSlot(qs, memory, seq_src, cross_kv, slot);
}

Tensor
DecoderBlock::forwardPagedRows(QuantSession &qs, const Tensor &x,
                               const std::vector<PagedRowRef> &self_rows,
                               KVPagePanels &self_kv,
                               const std::vector<PagedRowRef> &cross_rows,
                               KVPagePanels &cross_kv,
                               const uint8_t *const *mem_pad_masks)
{
    const Tensor a = self_attn.forwardPagedRows(qs, x, self_rows,
                                                self_kv, /*self=*/true);
    Tensor cur = ln_self.forward(qs, residualAdd(qs, x, a));

    const Tensor c = cross_attn.forwardPagedRows(
        qs, cur, cross_rows, cross_kv, /*self=*/false, mem_pad_masks);
    cur = ln_cross.forward(qs, residualAdd(qs, cur, c));

    cur = ln_ffn.forward(qs, ffn.forward(qs, cur, &cur));
    return cur;
}

bool
DecoderBlock::primeCrossPages(QuantSession &qs, const Tensor &memory,
                              int64_t seq_src, KVPagePanels &cross_kv,
                              const int32_t *pages, int64_t n_pages)
{
    return cross_attn.primePages(qs, memory, seq_src, cross_kv, pages,
                                 n_pages);
}

Tensor
DecoderBlock::backward(QuantSession &qs, const Tensor &gy, Tensor &gmemory)
{
    Tensor g = ln_ffn.backward(qs, gy);
    residualBackward(qs, g, slot_res_ffn_);
    const Tensor gh = ffn.backward(qs, g);
    addInPlace(g, gh);
    qs.carrier(g);

    g = ln_cross.backward(qs, g);
    residualBackward(qs, g, slot_res_cross_);
    const Tensor gc = cross_attn.backward(qs, g, &gmemory);
    addInPlace(g, gc);
    qs.carrier(g);

    g = ln_self.backward(qs, g);
    residualBackward(qs, g, slot_res_self_);
    const Tensor ga = self_attn.backward(qs, g);
    addInPlace(g, ga);
    qs.carrier(g);
    return g;
}

void
DecoderBlock::collectParams(ParamList &out)
{
    self_attn.collectParams(out);
    ln_self.collectParams(out);
    cross_attn.collectParams(out);
    ln_cross.collectParams(out);
    ffn.collectParams(out);
    ln_ffn.collectParams(out);
}

void
DecoderBlock::freeze()
{
    ParamList params;
    collectParams(params);
    for (Param *p : params)
        p->trainable = false;
}

} // namespace qt8
