#include "nn/checkpoint.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace qt8 {
namespace {

constexpr char kMagicV1[8] = {'Q', 'T', '8', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'Q', 'T', '8', 'C', 'K', 'P', 'T', '2'};
constexpr char kTrailer[8] = {'Q', 'T', '8', 'E', 'N', 'D', '.', '2'};

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeU64(std::FILE *f, uint64_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, uint64_t *v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

void
explain(std::string *why, const std::string &reason)
{
    if (why != nullptr)
        *why = reason;
}

/// Shared v1/v2 record loader: stages every tensor, verifying names,
/// shapes and (v2) CRCs as it goes. On success `staged` holds one
/// tensor per param.
bool
stageParams(std::FILE *f, const ParamList &params, bool with_crc,
            std::vector<Tensor> &staged, std::string *why)
{
    staged.reserve(params.size());
    for (const Param *p : params) {
        uint64_t name_len = 0;
        if (!readU64(f, &name_len) || name_len > 4096)
            return explain(why, "truncated or implausible name length"),
                   false;
        std::string name(name_len, '\0');
        if (name_len > 0 &&
            std::fread(name.data(), 1, name_len, f) != name_len)
            return explain(why, "truncated reading name"), false;
        if (name != p->name)
            return explain(why, "parameter name mismatch: file has '" +
                                    name + "', model wants '" + p->name +
                                    "'"),
                   false;
        uint64_t rank = 0;
        if (!readU64(f, &rank) || rank > 8)
            return explain(why, "truncated or implausible rank for '" +
                                    name + "'"),
                   false;
        std::vector<int64_t> shape(rank);
        for (auto &d : shape) {
            uint64_t v = 0;
            if (!readU64(f, &v))
                return explain(why, "truncated reading shape of '" +
                                        name + "'"),
                       false;
            d = static_cast<int64_t>(v);
        }
        if (shape != p->value.shape())
            return explain(why, "shape mismatch for '" + name + "'"),
                   false;
        uint64_t want_crc = 0;
        if (with_crc && !readU64(f, &want_crc))
            return explain(why, "truncated reading CRC of '" + name + "'"),
                   false;
        Tensor t(shape);
        const size_t n = static_cast<size_t>(t.numel());
        if (n > 0 && std::fread(t.data(), sizeof(float), n, f) != n)
            return explain(why, "truncated reading data of '" + name + "'"),
                   false;
        if (with_crc) {
            // Full-u64 compare: the field's upper half must be the
            // zero padding save wrote, so corruption there is caught.
            const uint64_t got =
                crc32(t.data(), n * sizeof(float));
            if (got != want_crc)
                return explain(why, "CRC mismatch for '" + name +
                                        "' (corrupt data)"),
                       false;
        }
        staged.push_back(std::move(t));
    }
    return true;
}

} // namespace

bool
saveCheckpoint(const std::string &path, const ParamList &params)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (std::fwrite(kMagicV2, sizeof(kMagicV2), 1, f.get()) != 1)
        return false;
    if (!writeU64(f.get(), params.size()))
        return false;
    for (const Param *p : params) {
        if (!writeU64(f.get(), p->name.size()))
            return false;
        if (!p->name.empty() &&
            std::fwrite(p->name.data(), 1, p->name.size(), f.get()) !=
                p->name.size())
            return false;
        const auto &shape = p->value.shape();
        if (!writeU64(f.get(), shape.size()))
            return false;
        for (int64_t d : shape)
            if (!writeU64(f.get(), static_cast<uint64_t>(d)))
                return false;
        const size_t n = static_cast<size_t>(p->value.numel());
        if (!writeU64(f.get(),
                      crc32(p->value.data(), n * sizeof(float))))
            return false;
        if (n > 0 && std::fwrite(p->value.data(), sizeof(float), n,
                                 f.get()) != n)
            return false;
    }
    if (std::fwrite(kTrailer, sizeof(kTrailer), 1, f.get()) != 1)
        return false;
    return std::fflush(f.get()) == 0;
}

bool
loadCheckpoint(const std::string &path, const ParamList &params,
               std::string *why)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return explain(why, "cannot open '" + path + "'"), false;
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1)
        return explain(why, "file shorter than the magic"), false;
    const bool v2 = std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
    const bool v1 = std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0;
    if (!v1 && !v2)
        return explain(why, "not a qt8 checkpoint (bad magic)"), false;
    uint64_t count = 0;
    if (!readU64(f.get(), &count))
        return explain(why, "truncated reading parameter count"), false;
    if (count != params.size())
        return explain(why, "parameter count mismatch"), false;

    // Stage everything first so params stay untouched on failure.
    std::vector<Tensor> staged;
    if (!stageParams(f.get(), params, /*with_crc=*/v2, staged, why))
        return false;

    if (v2) {
        char trailer[8];
        if (std::fread(trailer, sizeof(trailer), 1, f.get()) != 1 ||
            std::memcmp(trailer, kTrailer, sizeof(kTrailer)) != 0)
            return explain(why, "missing end trailer (truncated file)"),
                   false;
        // Anything after the trailer is not ours: refuse rather than
        // silently accept a file that was appended to or mis-spliced.
        if (std::fgetc(f.get()) != EOF)
            return explain(why, "trailing bytes after end trailer"),
                   false;
    }

    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = std::move(staged[i]);
    return true;
}

} // namespace qt8
