#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace qt8 {
namespace {

constexpr char kMagic[8] = {'Q', 'T', '8', 'C', 'K', 'P', 'T', '1'};

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeU64(std::FILE *f, uint64_t v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, uint64_t *v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

} // namespace

bool
saveCheckpoint(const std::string &path, const ParamList &params)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1)
        return false;
    if (!writeU64(f.get(), params.size()))
        return false;
    for (const Param *p : params) {
        if (!writeU64(f.get(), p->name.size()))
            return false;
        if (!p->name.empty() &&
            std::fwrite(p->name.data(), 1, p->name.size(), f.get()) !=
                p->name.size())
            return false;
        const auto &shape = p->value.shape();
        if (!writeU64(f.get(), shape.size()))
            return false;
        for (int64_t d : shape)
            if (!writeU64(f.get(), static_cast<uint64_t>(d)))
                return false;
        const size_t n = static_cast<size_t>(p->value.numel());
        if (n > 0 && std::fwrite(p->value.data(), sizeof(float), n,
                                 f.get()) != n)
            return false;
    }
    return true;
}

bool
loadCheckpoint(const std::string &path, const ParamList &params)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    uint64_t count = 0;
    if (!readU64(f.get(), &count) || count != params.size())
        return false;

    // Stage everything first so params stay untouched on failure.
    std::vector<Tensor> staged;
    staged.reserve(params.size());
    for (const Param *p : params) {
        uint64_t name_len = 0;
        if (!readU64(f.get(), &name_len) || name_len > 4096)
            return false;
        std::string name(name_len, '\0');
        if (name_len > 0 &&
            std::fread(name.data(), 1, name_len, f.get()) != name_len)
            return false;
        if (name != p->name)
            return false;
        uint64_t rank = 0;
        if (!readU64(f.get(), &rank) || rank > 8)
            return false;
        std::vector<int64_t> shape(rank);
        for (auto &d : shape) {
            uint64_t v = 0;
            if (!readU64(f.get(), &v))
                return false;
            d = static_cast<int64_t>(v);
        }
        if (shape != p->value.shape())
            return false;
        Tensor t(shape);
        const size_t n = static_cast<size_t>(t.numel());
        if (n > 0 &&
            std::fread(t.data(), sizeof(float), n, f.get()) != n)
            return false;
        staged.push_back(std::move(t));
    }
    for (size_t i = 0; i < params.size(); ++i)
        params[i]->value = std::move(staged[i]);
    return true;
}

} // namespace qt8
