#include "nn/layer_norm.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace qt8 {

LayerNorm::LayerNorm(int64_t dim, const std::string &name, int slot)
    : dim_(dim), slot_(slot)
{
    gamma.init(name + ".gamma", Tensor::full({dim}, 1.0f));
    beta.init(name + ".beta", Tensor({dim}));
}

Tensor
LayerNorm::forward(QuantSession &qs, const Tensor &x)
{
    QT8_TRACE_SCOPE("layernorm_fwd");
    Tensor xq = x;
    qs.quantFwd(OpClass::kLayerNorm, xq);

    const int64_t m = xq.dim(0);
    norm_ = Tensor({m, dim_});
    invstd_ = Tensor({m});
    Tensor y({m, dim_});

    const float *px = xq.data();
    float *pn = norm_.data();
    float *py = y.data();
    const float *pg = gamma.value.data();
    const float *pb = beta.value.data();

    // Rows normalize independently; invstd_/norm_/y writes are disjoint.
#pragma omp parallel for schedule(static) if (useParallel(m * dim_))
    for (int64_t i = 0; i < m; ++i) {
        const float *row = px + i * dim_;
        double mu = 0.0;
        for (int64_t j = 0; j < dim_; ++j)
            mu += row[j];
        mu /= static_cast<double>(dim_);
        double var = 0.0;
        for (int64_t j = 0; j < dim_; ++j) {
            const double d = row[j] - mu;
            var += d * d;
        }
        var /= static_cast<double>(dim_);
        const float is = static_cast<float>(1.0 / std::sqrt(var + eps_));
        invstd_.at(i) = is;
        for (int64_t j = 0; j < dim_; ++j) {
            const float n =
                (row[j] - static_cast<float>(mu)) * is;
            pn[i * dim_ + j] = n;
            py[i * dim_ + j] = pg[j] * n + pb[j];
        }
    }
    qs.carrier(y);
    return y;
}

Tensor
LayerNorm::backward(QuantSession &qs, const Tensor &gy)
{
    QT8_TRACE_SCOPE("layernorm_bwd");
    Tensor gyq = gy;
    qs.quantBwd(OpClass::kLayerNorm, gyq, slot_);

    const int64_t m = gyq.dim(0);
    Tensor gx({m, dim_});
    const float *pg = gamma.value.data();
    const float *pgy = gyq.data();
    const float *pn = norm_.data();
    float *pgx = gx.data();
    float *pgg = gamma.grad.data();
    float *pgb = beta.grad.data();

    for (int64_t i = 0; i < m; ++i) {
        const float is = invstd_.at(i);
        // dnorm = gy * gamma; gx = (dnorm - mean(dnorm)
        //         - norm * mean(dnorm * norm)) * invstd
        double sum_dn = 0.0;
        double sum_dn_n = 0.0;
        for (int64_t j = 0; j < dim_; ++j) {
            const float dn = pgy[i * dim_ + j] * pg[j];
            sum_dn += dn;
            sum_dn_n += static_cast<double>(dn) * pn[i * dim_ + j];
        }
        const double mean_dn = sum_dn / static_cast<double>(dim_);
        const double mean_dn_n = sum_dn_n / static_cast<double>(dim_);
        for (int64_t j = 0; j < dim_; ++j) {
            const float dn = pgy[i * dim_ + j] * pg[j];
            pgx[i * dim_ + j] = static_cast<float>(
                (dn - mean_dn - pn[i * dim_ + j] * mean_dn_n) * is);
        }
        if (gamma.trainable) {
            for (int64_t j = 0; j < dim_; ++j) {
                pgg[j] += pgy[i * dim_ + j] * pn[i * dim_ + j];
                pgb[j] += pgy[i * dim_ + j];
            }
        }
    }
    qs.carrier(gx);
    return gx;
}

void
LayerNorm::collectParams(ParamList &out)
{
    out.push_back(&gamma);
    out.push_back(&beta);
}

} // namespace qt8
