#include "nn/model.h"

#include <cassert>

#include "tensor/ops.h"
#include "util/trace.h"

namespace qt8 {

ModelConfig
ModelConfig::mobileBertTinyLike()
{
    ModelConfig c;
    c.name = "mobilebert-tiny-like";
    c.d_model = 48;
    c.d_ff = 96;
    c.n_heads = 4;
    c.n_layers = 3;
    c.n_ffn = 2; // two fewer stacked FFNs than mobilebert-like
    c.ln_inner = false;
    return c;
}

ModelConfig
ModelConfig::mobileBertLike()
{
    ModelConfig c;
    c.name = "mobilebert-like";
    c.d_model = 48;
    c.d_ff = 96;
    c.n_heads = 4;
    c.n_layers = 3;
    c.n_ffn = 4; // stacked FFNs -> wide activation distributions
    c.ln_inner = false;
    return c;
}

ModelConfig
ModelConfig::distilBertLike()
{
    ModelConfig c;
    c.name = "distilbert-like";
    c.d_model = 64;
    c.d_ff = 128;
    c.n_heads = 4;
    c.n_layers = 3;
    return c;
}

ModelConfig
ModelConfig::bertBaseLike()
{
    ModelConfig c;
    c.name = "bert-base-like";
    c.d_model = 80;
    c.d_ff = 160;
    c.n_heads = 4;
    c.n_layers = 3;
    return c;
}

ModelConfig
ModelConfig::bertLargeLike()
{
    ModelConfig c;
    c.name = "bert-large-like";
    c.d_model = 96;
    c.d_ff = 192;
    c.n_heads = 4;
    c.n_layers = 4;
    return c;
}

ModelConfig
ModelConfig::whisperTinyLike()
{
    ModelConfig c;
    c.name = "whisper-tiny-like";
    c.d_model = 32;
    c.d_ff = 64;
    c.n_heads = 2;
    c.n_layers = 2;
    c.n_dec_layers = 2;
    return c;
}

ModelConfig
ModelConfig::whisperSmallLike()
{
    ModelConfig c;
    c.name = "whisper-small-like";
    c.d_model = 64;
    c.d_ff = 128;
    c.n_heads = 4;
    c.n_layers = 3;
    c.n_dec_layers = 3;
    return c;
}

ModelConfig
ModelConfig::whisperLargeLike()
{
    ModelConfig c;
    c.name = "whisper-large-like";
    c.d_model = 80;
    c.d_ff = 160;
    c.n_heads = 4;
    c.n_layers = 3;
    c.n_dec_layers = 3;
    return c;
}

ModelConfig
ModelConfig::gpt2LargeLike()
{
    ModelConfig c;
    c.name = "gpt2-large-like";
    c.vocab = 96;
    c.d_model = 64;
    c.d_ff = 128;
    c.n_heads = 4;
    c.n_layers = 3;
    return c;
}

ModelConfig
ModelConfig::gpt2XlLike()
{
    ModelConfig c;
    c.name = "gpt2-xl-like";
    c.vocab = 96;
    c.d_model = 80;
    c.d_ff = 160;
    c.n_heads = 4;
    c.n_layers = 4;
    return c;
}

ModelConfig
ModelConfig::llamaLike()
{
    ModelConfig c;
    c.name = "llama-like";
    c.vocab = 96;
    c.d_model = 96;
    c.d_ff = 192;
    c.n_heads = 4;
    c.n_layers = 4;
    return c;
}

TransformerEncoder::TransformerEncoder(const ModelConfig &cfg,
                                       uint64_t seed)
    : cfg_(cfg), ctx_(seed)
{
    embed = Embedding(cfg.vocab, cfg.max_seq, cfg.d_model, ctx_.rng,
                      cfg.name + ".embed");
    embed_ln = std::make_unique<LayerNorm>(
        cfg.d_model, cfg.name + ".embed_ln", ctx_.slot());
    for (int l = 0; l < cfg.n_layers; ++l) {
        blocks.push_back(std::make_unique<EncoderBlock>(
            cfg.d_model, cfg.n_heads, cfg.d_ff, cfg.n_ffn, cfg.ln_inner,
            ctx_, cfg.name + ".block" + std::to_string(l)));
    }
}

Tensor
TransformerEncoder::forward(QuantSession &qs,
                            const std::vector<int32_t> &ids, int64_t batch,
                            int64_t seq, const uint8_t *pad_mask,
                            bool causal)
{
    b_ = batch;
    s_ = seq;
    pad_ = pad_mask;
    causal_ = causal;
    Tensor x = embed.forward(qs, ids, batch, seq);
    x = embed_ln->forward(qs, x);
    for (auto &block : blocks)
        x = block->forward(qs, x, batch, seq, pad_mask, causal);
    return x;
}

DecodeState
TransformerEncoder::beginDecode(int64_t batch, int64_t capacity,
                                const Quantizer *kv_fmt) const
{
    assert(capacity <= cfg_.max_seq);
    DecodeState st;
    st.batch = batch;
    st.self_kv.resize(blocks.size());
    for (auto &kv : st.self_kv)
        kv.reset(batch, capacity, cfg_.d_model, kv_fmt);
    return st;
}

Tensor
TransformerEncoder::forwardIncremental(QuantSession &qs,
                                       const std::vector<int32_t> &ids,
                                       DecodeState &state)
{
    Tensor x = embed.forward(qs, ids, state.batch, 1, state.pos);
    x = embed_ln->forward(qs, x);
    for (size_t l = 0; l < blocks.size(); ++l)
        x = blocks[l]->forwardIncremental(qs, x, state.batch,
                                          state.self_kv[l]);
    ++state.pos;
    return x;
}

Tensor
TransformerEncoder::forwardIncrementalSlots(
    QuantSession &qs, const std::vector<int32_t> &ids,
    const std::vector<int64_t> &positions,
    const std::vector<int32_t> &slots, std::vector<KVSlots> &self_kv)
{
    assert(self_kv.size() == blocks.size());
    Tensor x = embed.forwardAt(qs, ids, positions);
    x = embed_ln->forward(qs, x);
    for (size_t l = 0; l < blocks.size(); ++l)
        x = blocks[l]->forwardIncrementalSlots(qs, x, slots, self_kv[l]);
    return x;
}

Tensor
TransformerEncoder::forwardPagedRows(QuantSession &qs,
                                     const std::vector<int32_t> &ids,
                                     const std::vector<int64_t> &positions,
                                     const std::vector<PagedRowRef> &rows,
                                     std::vector<KVPagePanels> &self_kv)
{
    assert(self_kv.size() == blocks.size());
    Tensor x = embed.forwardAt(qs, ids, positions);
    x = embed_ln->forward(qs, x);
    for (size_t l = 0; l < blocks.size(); ++l)
        x = blocks[l]->forwardPagedRows(qs, x, rows, self_kv[l]);
    return x;
}

Tensor
TransformerEncoder::backward(QuantSession &qs, const Tensor &gy)
{
    Tensor g = gy;
    for (auto it = blocks.rbegin(); it != blocks.rend(); ++it)
        g = (*it)->backward(qs, g);
    g = embed_ln->backward(qs, g);
    embed.backward(qs, g);
    return g;
}

void
TransformerEncoder::collectParams(ParamList &out)
{
    embed.collectParams(out);
    embed_ln->collectParams(out);
    for (auto &block : blocks)
        block->collectParams(out);
}

void
TransformerEncoder::enableLora(int rank, float alpha, bool all_dense)
{
    embed.freeze();
    embed_ln->gamma.trainable = false;
    embed_ln->beta.trainable = false;
    for (auto &block : blocks)
        block->enableLora(rank, alpha, ctx_.rng, all_dense);
}

EncoderSpanQA::EncoderSpanQA(const ModelConfig &cfg, uint64_t seed)
    : encoder(cfg, seed),
      head(cfg.d_model, 2, encoder.buildCtx().rng, cfg.name + ".qa_head",
           encoder.buildCtx().slot())
{
    head.markAsHead();
}

Tensor
EncoderSpanQA::forward(QuantSession &qs, const std::vector<int32_t> &ids,
                       int64_t batch, int64_t seq, const uint8_t *pad_mask)
{
    const Tensor x = encoder.forward(qs, ids, batch, seq, pad_mask);
    return head.forward(qs, x);
}

void
EncoderSpanQA::backward(QuantSession &qs, const Tensor &dlogits)
{
    const Tensor gx = head.backward(qs, dlogits);
    encoder.backward(qs, gx);
}

void
EncoderSpanQA::collectParams(ParamList &out)
{
    encoder.collectParams(out);
    head.collectParams(out);
}

void
EncoderSpanQA::enableLora(int rank, float alpha, bool all_dense)
{
    encoder.enableLora(rank, alpha, all_dense);
    // The task head stays trainable (it is new for the downstream task).
}

EncoderClassifier::EncoderClassifier(const ModelConfig &cfg, int n_classes,
                                     uint64_t seed)
    : encoder(cfg, seed),
      head(cfg.d_model, n_classes, encoder.buildCtx().rng,
           cfg.name + ".classifier", encoder.buildCtx().slot())
{
    head.markAsHead();
}

Tensor
EncoderClassifier::forward(QuantSession &qs,
                           const std::vector<int32_t> &ids, int64_t batch,
                           int64_t seq, const uint8_t *pad_mask)
{
    b_ = batch;
    s_ = seq;
    const Tensor x = encoder.forward(qs, ids, batch, seq, pad_mask);
    // Pool the first token of each sequence ([CLS]-style).
    Tensor pooled({batch, encoder.config().d_model});
    for (int64_t b = 0; b < batch; ++b)
        for (int64_t j = 0; j < encoder.config().d_model; ++j)
            pooled.at(b, j) = x.at(b * seq, j);
    return head.forward(qs, pooled);
}

void
EncoderClassifier::backward(QuantSession &qs, const Tensor &dlogits)
{
    const Tensor gpooled = head.backward(qs, dlogits);
    Tensor gx({b_ * s_, encoder.config().d_model});
    for (int64_t b = 0; b < b_; ++b)
        for (int64_t j = 0; j < encoder.config().d_model; ++j)
            gx.at(b * s_, j) = gpooled.at(b, j);
    encoder.backward(qs, gx);
}

void
EncoderClassifier::collectParams(ParamList &out)
{
    encoder.collectParams(out);
    head.collectParams(out);
}

void
EncoderClassifier::enableLora(int rank, float alpha, bool all_dense)
{
    encoder.enableLora(rank, alpha, all_dense);
}

CausalLM::CausalLM(const ModelConfig &cfg, uint64_t seed)
    : body(cfg, seed),
      lm_head(cfg.d_model, cfg.vocab, body.buildCtx().rng,
              cfg.name + ".lm_head", body.buildCtx().slot())
{
    lm_head.markAsHead();
}

Tensor
CausalLM::forward(QuantSession &qs, const std::vector<int32_t> &ids,
                  int64_t batch, int64_t seq)
{
    const Tensor x =
        body.forward(qs, ids, batch, seq, nullptr, /*causal=*/true);
    return lm_head.forward(qs, x);
}

DecodeState
CausalLM::beginDecode(int64_t batch, int64_t capacity,
                      const Quantizer *kv_fmt) const
{
    return body.beginDecode(batch, capacity, kv_fmt);
}

Tensor
CausalLM::forwardIncremental(QuantSession &qs,
                             const std::vector<int32_t> &ids,
                             DecodeState &state)
{
    QT8_TRACE_SCOPE("decode/causal_step");
    const Tensor x = body.forwardIncremental(qs, ids, state);
    return lm_head.forward(qs, x);
}

Tensor
CausalLM::forwardIncrementalSlots(QuantSession &qs,
                                  const std::vector<int32_t> &ids,
                                  const std::vector<int64_t> &positions,
                                  const std::vector<int32_t> &slots,
                                  std::vector<KVSlots> &self_kv)
{
    QT8_TRACE_SCOPE("decode/causal_slots");
    const Tensor x =
        body.forwardIncrementalSlots(qs, ids, positions, slots, self_kv);
    return lm_head.forward(qs, x);
}

Tensor
CausalLM::forwardPagedRows(QuantSession &qs,
                           const std::vector<int32_t> &ids,
                           const std::vector<int64_t> &positions,
                           const std::vector<PagedRowRef> &rows,
                           std::vector<KVPagePanels> &self_kv,
                           const std::vector<int64_t> &logit_rows)
{
    QT8_TRACE_SCOPE("decode/causal_paged");
    const Tensor x =
        body.forwardPagedRows(qs, ids, positions, rows, self_kv);
    // Row selection before the head: lm_head (and every quant point)
    // is row-independent, so computing logits only for the sampled
    // rows is bit-identical to slicing the full-head output — and
    // skips the O(d * vocab) head GEMM for prefill-interior rows.
    const int64_t d = x.dim(1);
    const int64_t k = static_cast<int64_t>(logit_rows.size());
    Tensor sel({k, d});
    for (int64_t j = 0; j < k; ++j) {
        const int64_t r = logit_rows[static_cast<size_t>(j)];
        assert(r >= 0 && r < x.dim(0));
        std::copy_n(x.data() + r * d, d, sel.data() + j * d);
    }
    return lm_head.forward(qs, sel);
}

void
CausalLM::backward(QuantSession &qs, const Tensor &dlogits)
{
    const Tensor gx = lm_head.backward(qs, dlogits);
    body.backward(qs, gx);
}

void
CausalLM::collectParams(ParamList &out)
{
    body.collectParams(out);
    lm_head.collectParams(out);
}

Seq2Seq::Seq2Seq(const ModelConfig &cfg, uint64_t seed)
    : encoder(cfg, seed),
      dec_embed(cfg.vocab, cfg.max_seq, cfg.d_model,
                encoder.buildCtx().rng, cfg.name + ".dec_embed"),
      lm_head(cfg.d_model, cfg.vocab, encoder.buildCtx().rng,
              cfg.name + ".lm_head", encoder.buildCtx().slot()),
      cfg_(cfg)
{
    lm_head.markAsHead();
    dec_embed_ln = std::make_unique<LayerNorm>(
        cfg.d_model, cfg.name + ".dec_embed_ln",
        encoder.buildCtx().slot());
    for (int l = 0; l < cfg.n_dec_layers; ++l) {
        dec_blocks.push_back(std::make_unique<DecoderBlock>(
            cfg.d_model, cfg.n_heads, cfg.d_ff, encoder.buildCtx(),
            cfg.name + ".dec" + std::to_string(l)));
    }
}

Tensor
Seq2Seq::forward(QuantSession &qs, const std::vector<int32_t> &src_ids,
                 int64_t batch, int64_t seq_src,
                 const uint8_t *src_pad_mask,
                 const std::vector<int32_t> &tgt_ids, int64_t seq_tgt)
{
    b_ = batch;
    ss_ = seq_src;
    st_ = seq_tgt;
    memory_ = encoder.forward(qs, src_ids, batch, seq_src, src_pad_mask);
    Tensor x = dec_embed.forward(qs, tgt_ids, batch, seq_tgt);
    x = dec_embed_ln->forward(qs, x);
    for (auto &block : dec_blocks) {
        x = block->forward(qs, x, batch, seq_tgt, memory_, seq_src,
                           src_pad_mask);
    }
    return lm_head.forward(qs, x);
}

void
Seq2Seq::backward(QuantSession &qs, const Tensor &dlogits)
{
    Tensor g = lm_head.backward(qs, dlogits);
    Tensor gmem({b_ * ss_, cfg_.d_model});
    for (auto it = dec_blocks.rbegin(); it != dec_blocks.rend(); ++it)
        g = (*it)->backward(qs, g, gmem);
    g = dec_embed_ln->backward(qs, g);
    dec_embed.backward(qs, g);
    encoder.backward(qs, gmem);
}

void
Seq2Seq::collectParams(ParamList &out)
{
    encoder.collectParams(out);
    dec_embed.collectParams(out);
    dec_embed_ln->collectParams(out);
    for (auto &block : dec_blocks)
        block->collectParams(out);
    lm_head.collectParams(out);
}

DecodeState
Seq2Seq::beginDecode(QuantSession &qs,
                     const std::vector<int32_t> &src_ids, int64_t batch,
                     int64_t seq_src, const uint8_t *src_pad_mask,
                     int64_t max_len)
{
    assert(max_len <= cfg_.max_seq);
    DecodeState st;
    st.batch = batch;
    st.seq_src = seq_src;
    st.memory = encoder.forward(qs, src_ids, batch, seq_src, src_pad_mask);
    st.self_kv.resize(dec_blocks.size());
    st.cross_kv.resize(dec_blocks.size());
    // Packed KV engages automatically whenever the session's config is
    // eligible (kv_packed on a packable grid forward format).
    const Quantizer *kv_fmt = qs.config().kvPackedFormat();
    for (auto &kv : st.self_kv)
        kv.reset(batch, max_len, cfg_.d_model, kv_fmt);
    for (auto &kv : st.cross_kv)
        kv.reset(batch, seq_src, cfg_.d_model, kv_fmt);
    return st;
}

Tensor
Seq2Seq::forwardIncremental(QuantSession &qs,
                            const std::vector<int32_t> &tgt_ids,
                            DecodeState &state,
                            const uint8_t *src_pad_mask)
{
    QT8_TRACE_SCOPE("decode/seq2seq_step");
    Tensor x = dec_embed.forward(qs, tgt_ids, state.batch, 1, state.pos);
    x = dec_embed_ln->forward(qs, x);
    for (size_t l = 0; l < dec_blocks.size(); ++l) {
        x = dec_blocks[l]->forwardIncremental(
            qs, x, state.batch, state.self_kv[l], state.cross_kv[l],
            state.memory, state.seq_src, src_pad_mask);
    }
    ++state.pos;
    return lm_head.forward(qs, x);
}

Tensor
Seq2Seq::encodeOne(QuantSession &qs, const std::vector<int32_t> &src_ids,
                   int64_t seq_src, const uint8_t *src_pad_mask)
{
    return encoder.forward(qs, src_ids, 1, seq_src, src_pad_mask);
}

bool
Seq2Seq::primeCrossSlots(QuantSession &qs, const Tensor &memory,
                         int64_t seq_src, std::vector<KVSlots> &cross_kv,
                         int32_t slot)
{
    assert(cross_kv.size() == dec_blocks.size());
    for (size_t l = 0; l < dec_blocks.size(); ++l) {
        if (!dec_blocks[l]->primeCrossSlot(qs, memory, seq_src,
                                           cross_kv[l], slot))
            return false;
    }
    return true;
}

bool
Seq2Seq::primeCrossPages(QuantSession &qs, const Tensor &memory,
                         int64_t seq_src,
                         std::vector<KVPagePanels> &cross_kv,
                         const int32_t *pages, int64_t n_pages)
{
    assert(cross_kv.size() == dec_blocks.size());
    for (size_t l = 0; l < dec_blocks.size(); ++l) {
        if (!dec_blocks[l]->primeCrossPages(qs, memory, seq_src,
                                            cross_kv[l], pages, n_pages))
            return false;
    }
    return true;
}

Tensor
Seq2Seq::forwardPagedRows(QuantSession &qs,
                          const std::vector<int32_t> &tgt_ids,
                          const std::vector<int64_t> &positions,
                          const std::vector<PagedRowRef> &self_rows,
                          std::vector<KVPagePanels> &self_kv,
                          const std::vector<PagedRowRef> &cross_rows,
                          std::vector<KVPagePanels> &cross_kv,
                          const uint8_t *const *mem_pad_masks)
{
    QT8_TRACE_SCOPE("decode/seq2seq_paged");
    assert(self_kv.size() == dec_blocks.size());
    Tensor x = dec_embed.forwardAt(qs, tgt_ids, positions);
    x = dec_embed_ln->forward(qs, x);
    for (size_t l = 0; l < dec_blocks.size(); ++l) {
        x = dec_blocks[l]->forwardPagedRows(qs, x, self_rows, self_kv[l],
                                            cross_rows, cross_kv[l],
                                            mem_pad_masks);
    }
    return lm_head.forward(qs, x);
}

Tensor
Seq2Seq::forwardIncrementalSlots(QuantSession &qs,
                                 const std::vector<int32_t> &tgt_ids,
                                 const std::vector<int64_t> &positions,
                                 const std::vector<int32_t> &slots,
                                 std::vector<KVSlots> &self_kv,
                                 std::vector<KVSlots> &cross_kv,
                                 const uint8_t *const *mem_pad_masks)
{
    QT8_TRACE_SCOPE("decode/seq2seq_slots");
    assert(self_kv.size() == dec_blocks.size());
    Tensor x = dec_embed.forwardAt(qs, tgt_ids, positions);
    x = dec_embed_ln->forward(qs, x);
    for (size_t l = 0; l < dec_blocks.size(); ++l) {
        x = dec_blocks[l]->forwardIncrementalSlots(
            qs, x, slots, self_kv[l], cross_kv[l], mem_pad_masks);
    }
    return lm_head.forward(qs, x);
}

std::vector<std::vector<int32_t>>
Seq2Seq::greedyDecode(QuantSession &qs,
                      const std::vector<int32_t> &src_ids, int64_t batch,
                      int64_t seq_src, const uint8_t *src_pad_mask,
                      int64_t max_len, int32_t bos, int32_t eos)
{
    std::vector<std::vector<int32_t>> out(static_cast<size_t>(batch));
    std::vector<int32_t> cur(static_cast<size_t>(batch), bos);
    std::vector<bool> done(static_cast<size_t>(batch), false);

    DecodeState st =
        beginDecode(qs, src_ids, batch, seq_src, src_pad_mask, max_len);

    // O(T) single-token steps: each consumes one position through the
    // KV caches instead of re-running the teacher-forced forward over
    // the whole prefix (and the encoder) every step.
    for (int64_t t = 1; t <= max_len; ++t) {
        const Tensor logits =
            forwardIncremental(qs, cur, st, src_pad_mask);
        bool all_done = true;
        for (int64_t b = 0; b < batch; ++b) {
            const int32_t id = static_cast<int32_t>(rowArgmax(logits, b));
            cur[static_cast<size_t>(b)] = id;
            if (!done[static_cast<size_t>(b)]) {
                if (id == eos) {
                    done[static_cast<size_t>(b)] = true;
                } else {
                    out[static_cast<size_t>(b)].push_back(id);
                }
            }
            all_done = all_done && done[static_cast<size_t>(b)];
        }
        if (all_done)
            break;
    }
    return out;
}

std::vector<std::vector<int32_t>>
Seq2Seq::greedyDecodeReference(QuantSession &qs,
                               const std::vector<int32_t> &src_ids,
                               int64_t batch, int64_t seq_src,
                               const uint8_t *src_pad_mask,
                               int64_t max_len, int32_t bos, int32_t eos)
{
    std::vector<std::vector<int32_t>> out(static_cast<size_t>(batch));
    std::vector<int32_t> tgt(static_cast<size_t>(batch), bos);
    std::vector<bool> done(static_cast<size_t>(batch), false);

    for (int64_t t = 1; t <= max_len; ++t) {
        // Teacher input so far: [batch, t] prefix.
        const Tensor logits = forward(qs, src_ids, batch, seq_src,
                                      src_pad_mask, tgt, t);
        std::vector<int32_t> next(static_cast<size_t>(batch));
        bool all_done = true;
        for (int64_t b = 0; b < batch; ++b) {
            const int64_t row = b * t + (t - 1); // last position
            const int32_t id =
                static_cast<int32_t>(rowArgmax(logits, row));
            next[static_cast<size_t>(b)] = id;
            if (!done[static_cast<size_t>(b)]) {
                if (id == eos) {
                    done[static_cast<size_t>(b)] = true;
                } else {
                    out[static_cast<size_t>(b)].push_back(id);
                }
            }
            all_done = all_done && done[static_cast<size_t>(b)];
        }
        if (all_done || t == max_len)
            break;
        // Extend targets: append one token per sequence.
        std::vector<int32_t> new_tgt(static_cast<size_t>(batch * (t + 1)));
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t i = 0; i < t; ++i)
                new_tgt[static_cast<size_t>(b * (t + 1) + i)] =
                    tgt[static_cast<size_t>(b * t + i)];
            new_tgt[static_cast<size_t>(b * (t + 1) + t)] =
                next[static_cast<size_t>(b)];
        }
        tgt = std::move(new_tgt);
    }
    return out;
}

} // namespace qt8
