/**
 * @file
 * Layer normalization over the feature dimension with quantization of
 * its inputs as an op class (paper Figure 5 / Table 1: "LayerNorm").
 */
#ifndef QT8_NN_LAYER_NORM_H
#define QT8_NN_LAYER_NORM_H

#include "nn/param.h"
#include "quant/config.h"
#include "tensor/tensor.h"

namespace qt8 {

/// y = gamma * (x - mean) / sqrt(var + eps) + beta, row-wise.
class LayerNorm
{
  public:
    LayerNorm(int64_t dim, const std::string &name, int slot);

    /// x: [m, dim] -> [m, dim]. Caches normalized values for backward.
    Tensor forward(QuantSession &qs, const Tensor &x);

    /// gy: [m, dim] -> dL/dx. Accumulates gamma/beta gradients.
    Tensor backward(QuantSession &qs, const Tensor &gy);

    void collectParams(ParamList &out);

    Param gamma;
    Param beta;

  private:
    int64_t dim_;
    int slot_;
    float eps_ = 1e-5f;

    Tensor norm_;   ///< Cached normalized activations.
    Tensor invstd_; ///< Cached per-row 1/sqrt(var+eps).
};

} // namespace qt8

#endif // QT8_NN_LAYER_NORM_H
