/**
 * @file
 * Trainable parameter: a value tensor with its gradient accumulator.
 * Modules own their Params and register pointers with the model so the
 * optimizer can iterate them; LoRA fine-tuning simply marks the frozen
 * base weights non-trainable.
 */
#ifndef QT8_NN_PARAM_H
#define QT8_NN_PARAM_H

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace qt8 {

/// A named trainable tensor and its gradient.
struct Param
{
    std::string name;
    Tensor value;
    Tensor grad;
    bool trainable = true;

    void
    init(std::string param_name, Tensor v)
    {
        name = std::move(param_name);
        grad = Tensor(v.shape());
        value = std::move(v);
    }

    void zeroGrad() { grad.zero(); }

    int64_t numel() const { return value.numel(); }
};

/// Flat list of parameter pointers (model -> optimizer hand-off).
using ParamList = std::vector<Param *>;

/// Count trainable elements in a list.
int64_t countTrainable(const ParamList &params);

/// Count all elements in a list.
int64_t countTotal(const ParamList &params);

/// Copy parameter values src -> dst (same architecture, e.g. loading a
/// pre-trained backbone into a downstream model before fine-tuning).
/// Lists must match in length and per-entry shape.
void copyParamValues(const ParamList &dst, const ParamList &src);

} // namespace qt8

#endif // QT8_NN_PARAM_H
