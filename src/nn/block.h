/**
 * @file
 * Transformer blocks: feed-forward network, encoder block (with the
 * MobileBERT-style *stacked FFN* option whose wider activation
 * distributions drive the paper's Table 1/2 sensitivity results), and
 * decoder block (causal self-attention + cross-attention) for the
 * seq2seq experiments.
 */
#ifndef QT8_NN_BLOCK_H
#define QT8_NN_BLOCK_H

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "quant/config.h"

namespace qt8 {

/// Residual addition with its quant point (both inputs quantized when
/// the residual op class is active).
Tensor residualAdd(QuantSession &qs, const Tensor &skip,
                   const Tensor &branch);

/// Backward of the residual quant point (applied once to the incoming
/// gradient, which then flows to both branches).
void residualBackward(QuantSession &qs, Tensor &g, int slot);

/// Linear -> GeLU -> Linear with the activation quant point on the
/// GeLU input.
class FeedForward
{
  public:
    FeedForward(int64_t d_model, int64_t d_ff, BuildCtx &ctx,
                const std::string &name);

    /**
     * Forward; when @p skip is non-null the residual addition
     * (residualAdd(qs, *skip, ffn_out)) is performed here too, so that
     * the packed-weight path can fuse the GeLU tail into fc1's GEMM and
     * the residual tail into fc2's GEMM. Bit-identical to calling
     * forward without @p skip followed by residualAdd. Fusion engages
     * only when both Linears are packedUsable and no fwd_tap is
     * installed (taps must observe the pre-quantization tensors).
     */
    Tensor forward(QuantSession &qs, const Tensor &x,
                   const Tensor *skip = nullptr);
    Tensor backward(QuantSession &qs, const Tensor &gy);
    void collectParams(ParamList &out);
    void enableLora(int rank, float alpha, Rng &rng);
    void freeze();

    Linear fc1;
    Linear fc2;

  private:
    int slot_act_;
    Tensor hq_; ///< Cached (quantized) GeLU input.
};

/// Encoder block: self-attention + residual + LN, then n_ffn stacked
/// FFN sublayers. With ln_inner=false (MobileBERT-like) the FFN stack
/// uses residual-only connections and a single LayerNorm at the end,
/// letting magnitudes grow through the stack.
class EncoderBlock
{
  public:
    EncoderBlock(int64_t d_model, int n_heads, int64_t d_ff, int n_ffn,
                 bool ln_inner, BuildCtx &ctx, const std::string &name);

    /// @param causal Apply causal masking (decoder-only LM usage).
    Tensor forward(QuantSession &qs, const Tensor &x, int64_t batch,
                   int64_t seq, const uint8_t *key_pad_mask,
                   bool causal = false);

    /// Single-position causal forward over the KV cache (decoder-only
    /// LM decode): x is [B, d] for the newest position.
    Tensor forwardIncremental(QuantSession &qs, const Tensor &x,
                              int64_t batch, KVCache &self_kv);

    /// Slot-indexed single-position forward over a pooled cache
    /// (continuous batching): row i of x belongs to pool slot slots[i].
    Tensor forwardIncrementalSlots(QuantSession &qs, const Tensor &x,
                                   const std::vector<int32_t> &slots,
                                   KVSlots &self_kv);

    /// Page-table forward over a paged pool (chunked prefill + decode):
    /// row i of x is the query at rows[i].pos of its sequence.
    Tensor forwardPagedRows(QuantSession &qs, const Tensor &x,
                            const std::vector<PagedRowRef> &rows,
                            KVPagePanels &self_kv);

    Tensor backward(QuantSession &qs, const Tensor &gy);
    void collectParams(ParamList &out);
    void enableLora(int rank, float alpha, Rng &rng, bool all_dense);
    void freeze();

    MultiHeadAttention attn;
    LayerNorm ln_attn;
    std::vector<std::unique_ptr<FeedForward>> ffns;
    std::vector<std::unique_ptr<LayerNorm>> ffn_lns;

  private:
    /// The stacked-FFN tail shared by all three forward variants:
    /// n_ffn x (FFN + residual [+ LayerNorm]) applied to @p cur.
    Tensor ffnStack(QuantSession &qs, Tensor cur);

    bool ln_inner_;
    int slot_res_attn_;
    std::vector<int> slot_res_ffn_;
};

/// Decoder block: causal self-attention, cross-attention over encoder
/// memory, FFN; post-LN arrangement matching the encoder block.
class DecoderBlock
{
  public:
    DecoderBlock(int64_t d_model, int n_heads, int64_t d_ff, BuildCtx &ctx,
                 const std::string &name);

    /**
     * @param x Decoder-side input [B*T, d].
     * @param memory Encoder output [B*S, d].
     * @param mem_pad_mask Padding mask over encoder positions (B*S).
     */
    Tensor forward(QuantSession &qs, const Tensor &x, int64_t batch,
                   int64_t seq_tgt, const Tensor &memory, int64_t seq_src,
                   const uint8_t *mem_pad_mask);

    /**
     * Single-position decode step: x is [B, d] for the newest target
     * position. @p self_kv grows by one row; @p cross_kv is primed from
     * @p memory on first use and reused afterwards.
     */
    Tensor forwardIncremental(QuantSession &qs, const Tensor &x,
                              int64_t batch, KVCache &self_kv,
                              KVCache &cross_kv, const Tensor &memory,
                              int64_t seq_src,
                              const uint8_t *mem_pad_mask);

    /**
     * Slot-indexed single-position decode step over pooled caches: row
     * i of x is the newest target position of the sequence in slot
     * slots[i]. The cross slots must have been primed (primeCrossSlot)
     * at admission; @p mem_pad_masks carries one per-row source padding
     * mask pointer (or nullptr entries / nullptr entirely).
     */
    Tensor forwardIncrementalSlots(QuantSession &qs, const Tensor &x,
                                   const std::vector<int32_t> &slots,
                                   KVSlots &self_kv, KVSlots &cross_kv,
                                   const uint8_t *const *mem_pad_masks);

    /// Project one sequence's encoder memory ([S, d]) into this block's
    /// cross-attention K/V pool slot. Returns false if S exceeds the
    /// pool capacity.
    bool primeCrossSlot(QuantSession &qs, const Tensor &memory,
                        int64_t seq_src, KVSlots &cross_kv, int32_t slot);

    /// Page-table decode step over paged pools: self rows grow through
    /// self_rows' page tables, cross rows read primed cross pages.
    Tensor forwardPagedRows(QuantSession &qs, const Tensor &x,
                            const std::vector<PagedRowRef> &self_rows,
                            KVPagePanels &self_kv,
                            const std::vector<PagedRowRef> &cross_rows,
                            KVPagePanels &cross_kv,
                            const uint8_t *const *mem_pad_masks);

    /// Project one sequence's encoder memory ([S, d]) into this block's
    /// cross-attention pages (primePages). Returns false if S exceeds
    /// the page span.
    bool primeCrossPages(QuantSession &qs, const Tensor &memory,
                         int64_t seq_src, KVPagePanels &cross_kv,
                         const int32_t *pages, int64_t n_pages);

    /// @param gmemory Accumulates the gradient w.r.t. the encoder
    /// memory ([B*S, d], preallocated).
    Tensor backward(QuantSession &qs, const Tensor &gy, Tensor &gmemory);

    void collectParams(ParamList &out);
    void freeze();

    MultiHeadAttention self_attn;
    LayerNorm ln_self;
    MultiHeadAttention cross_attn;
    LayerNorm ln_cross;
    FeedForward ffn;
    LayerNorm ln_ffn;

  private:
    int slot_res_self_, slot_res_cross_, slot_res_ffn_;
};

} // namespace qt8

#endif // QT8_NN_BLOCK_H
