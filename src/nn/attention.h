/**
 * @file
 * Multi-head attention with every quantization point of the paper's
 * Figure 5 made explicit:
 *
 *   QKV projections  -> GEMM quant (inputs + weights)
 *   Q.K^T            -> GEMM quant
 *   unscaled scores  -> attention-scaling quant point  <- most sensitive
 *   scaled scores    -> activation quant point (softmax input)
 *   softmax          -> exact or posit-approximate (section 4.1/5.2)
 *   P.V              -> GEMM quant
 *   output proj      -> GEMM quant
 *
 * Backward mirrors the schedule, including the re-derived softmax
 * gradient for the posit piece-wise-linear reciprocal (Eq. 4/5) and
 * per-tensor scaled gradient quantization.
 */
#ifndef QT8_NN_ATTENTION_H
#define QT8_NN_ATTENTION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/linear.h"
#include "quant/config.h"

namespace qt8 {

/// Build-time context shared by module constructors: the weight-init
/// RNG stream and the allocator for backward-scaling slot ids.
struct BuildCtx
{
    explicit BuildCtx(uint64_t seed) : rng(seed) {}

    Rng rng;
    int slots = 0;

    int slot() { return slots++; }
};

/// Multi-head attention (self- or cross-).
class MultiHeadAttention
{
  public:
    MultiHeadAttention(int64_t d_model, int n_heads, BuildCtx &ctx,
                       const std::string &name);

    /**
     * @param x Query-side input, [B*S, d].
     * @param batch B.
     * @param seq_q S.
     * @param memory Key/value-side input for cross-attention
     *   ([B*T, d]); nullptr for self-attention (keys = x, T = S).
     * @param seq_kv T (ignored for self-attention).
     * @param key_pad_mask Optional B*T bytes, 1 = key is padding.
     * @param causal Apply causal (autoregressive) masking.
     * @return [B*S, d].
     */
    Tensor forward(QuantSession &qs, const Tensor &x, int64_t batch,
                   int64_t seq_q, const Tensor *memory = nullptr,
                   int64_t seq_kv = 0,
                   const uint8_t *key_pad_mask = nullptr,
                   bool causal = false);

    /**
     * @param gy Gradient of the output, [B*S, d].
     * @param gmemory For cross-attention: receives (accumulates) the
     *   gradient w.r.t. the memory input; must be preallocated [B*T, d].
     * @return Gradient w.r.t. x.
     */
    Tensor backward(QuantSession &qs, const Tensor &gy,
                    Tensor *gmemory = nullptr);

    void collectParams(ParamList &out);

    /// Enable LoRA on the query and value projections (the RoBERTa
    /// recipe) or on all four projections (the MobileBERT recipe).
    void enableLora(int rank, float alpha, Rng &rng, bool all_proj);

    /// Mean absolute unscaled-attention magnitude from the last forward
    /// (used by the distribution benches).
    double lastUnscaledAmax() const { return last_unscaled_amax_; }

    Linear q_proj;
    Linear k_proj;
    Linear v_proj;
    Linear out_proj;

  private:
    int64_t d_model_;
    int n_heads_;
    int64_t d_head_;
    float scale_;
    int slot_ctx_, slot_act_, slot_scale_;

    // Forward cache.
    int64_t b_ = 0, sq_ = 0, skv_ = 0;
    bool self_attn_ = true;
    Tensor qq_, kq_, vq_;   ///< GEMM-quantized projection outputs.
    Tensor probs_;          ///< Softmax outputs [B*H*S, T].
    Tensor probs_q_;        ///< GEMM-quantized probs.
    Tensor e_cache_;        ///< Approx-softmax exponentials.
    std::vector<double> sums_; ///< Approx-softmax row sums.
    double last_unscaled_amax_ = 0.0;
};

} // namespace qt8

#endif // QT8_NN_ATTENTION_H
